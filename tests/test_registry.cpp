// Unit tests for the dance::registry layer: MANIFEST parsing (full
// validation before activation, partial/corrupt files rejected), monotonic
// generation numbering across publish/promote/reload, the pin/unpin
// lifetime contract (a pinned generation keeps answering, bit-identically,
// across later publishes), generation-scoped cache keys, and the
// registry-aware wire front-end. Suite names carry a lowercase "registry_"
// prefix so `ctest -R registry` selects the whole stack.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <sys/stat.h>
#include <unistd.h>

#include "arch/backbone.h"
#include "evalnet/evaluator.h"
#include "hwgen/search_space.h"
#include "registry/manifest.h"
#include "registry/registry.h"
#include "registry/serving.h"
#include "serve/service.h"
#include "serve/types.h"
#include "util/fs.h"
#include "util/rng.h"

namespace {

using namespace dance;

/// Fresh scratch directory per call; tests never share registry state.
std::string test_dir(const char* tag) {
  static int counter = 0;
  std::string path = "/tmp/dance_registry_test_" + std::to_string(getpid()) +
                     "_" + tag + "_" + std::to_string(counter++);
  mkdir(path.c_str(), 0755);
  return path;
}

hwgen::HwSearchSpace small_space() {
  return hwgen::HwSearchSpace(
      {.pe_min = 8, .pe_max = 10, .rf_min = 8, .rf_max = 16, .rf_step = 8});
}

/// Small evaluator geometry: the tests exercise registry mechanics, not
/// predictive quality, so tiny nets keep the suite fast.
evalnet::Evaluator::Options small_opts() {
  evalnet::Evaluator::Options opts;
  opts.hwgen.hidden_dim = 16;
  opts.hwgen.num_layers = 2;
  opts.cost.hidden_dim = 16;
  opts.cost.num_layers = 2;
  return opts;
}

evalnet::Evaluator make_evaluator(const hwgen::HwSearchSpace& space,
                                  std::uint64_t seed) {
  arch::ArchSpace arch_space(arch::cifar10_backbone());
  util::Rng rng(seed);
  return evalnet::Evaluator(arch_space.encoding_width(), space, rng,
                            small_opts());
}

std::vector<float> some_encoding(std::uint64_t seed) {
  arch::ArchSpace space(arch::cifar10_backbone());
  util::Rng rng(seed);
  return space.encode(space.random(rng));
}

bool bit_equal_double(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

bool bit_equal_response(const serve::Response& a, const serve::Response& b) {
  return bit_equal_double(a.metrics.latency_ms, b.metrics.latency_ms) &&
         bit_equal_double(a.metrics.energy_mj, b.metrics.energy_mj) &&
         bit_equal_double(a.metrics.area_mm2, b.metrics.area_mm2) &&
         a.config == b.config;
}

// --- MANIFEST ---------------------------------------------------------------

TEST(registry_manifest, SerializeParseRoundTrip) {
  registry::Manifest m;
  registry::ManifestModel& model = m.models["default"];
  model.name = "default";
  model.arch_width = 63;
  model.opts = small_opts();
  model.generations[1] = "default-gen1";
  model.generations[2] = "default-gen2";
  model.live = 2;
  model.candidate = 1;

  const registry::Manifest back = registry::Manifest::parse(m.serialize());
  ASSERT_EQ(back.models.size(), 1U);
  const registry::ManifestModel& b = back.models.at("default");
  EXPECT_EQ(b.arch_width, 63);
  EXPECT_EQ(b.live, 2U);
  EXPECT_EQ(b.candidate, 1U);
  ASSERT_EQ(b.generations.size(), 2U);
  EXPECT_EQ(b.generations.at(1), "default-gen1");
  EXPECT_EQ(b.generations.at(2), "default-gen2");
  EXPECT_EQ(b.opts.hwgen.hidden_dim, 16);
  EXPECT_EQ(b.opts.cost.num_layers, 2);
}

TEST(registry_manifest, EmptyRegistryRoundTrips) {
  const registry::Manifest m =
      registry::Manifest::parse(registry::Manifest{}.serialize());
  EXPECT_TRUE(m.models.empty());
}

TEST(registry_manifest, RejectsMissingHeader) {
  EXPECT_THROW((void)registry::Manifest::parse("end\n"),
               registry::ManifestError);
  EXPECT_THROW((void)registry::Manifest::parse(""), registry::ManifestError);
}

TEST(registry_manifest, RejectsTruncatedFile) {
  // A manifest without the trailing `end` marker is a torn write even if
  // every record line is well-formed; it must never activate.
  std::string text = registry::Manifest{}.serialize();
  ASSERT_NE(text.find("end"), std::string::npos);
  text = text.substr(0, text.find("end"));
  EXPECT_THROW((void)registry::Manifest::parse(text),
               registry::ManifestError);
}

TEST(registry_manifest, RejectsUnknownRecordsAndKeys) {
  EXPECT_THROW(
      (void)registry::Manifest::parse("DANCE-REGISTRY v1\nbogus record\nend\n"),
      registry::ManifestError);
}

TEST(registry_manifest, RejectsDanglingReferences) {
  // `gen` for a model never declared.
  EXPECT_THROW((void)registry::Manifest::parse(
                   "DANCE-REGISTRY v1\ngen ghost 1 ghost-gen1\nend\n"),
               registry::ManifestError);
  // live pointing at a generation with no `gen` record.
  registry::Manifest m;
  registry::ManifestModel& model = m.models["m"];
  model.name = "m";
  model.arch_width = 4;
  model.generations[1] = "m-gen1";
  model.live = 7;
  EXPECT_THROW((void)registry::Manifest::parse(m.serialize()),
               registry::ManifestError);
}

TEST(registry_manifest, RejectsGenerationZero) {
  registry::Manifest m;
  registry::ManifestModel& model = m.models["m"];
  model.name = "m";
  model.arch_width = 4;
  model.generations[0] = "m-gen0";  // 0 is the "none" sentinel, reserved
  EXPECT_THROW((void)registry::Manifest::parse(m.serialize()),
               registry::ManifestError);
}

TEST(registry_manifest, RegistryOpensFullyOrNotAtAll) {
  const std::string dir = test_dir("torn");
  registry::ModelRegistry::init(dir);
  // Tear the manifest on disk: opening must throw, not half-load.
  util::atomic_write_file(registry::Manifest::path_in(dir),
                          "DANCE-REGISTRY v1\n");
  const hwgen::HwSearchSpace space = small_space();
  EXPECT_THROW((void)registry::ModelRegistry(dir, space),
               registry::ManifestError);
}

// --- generations ------------------------------------------------------------

TEST(registry_generations, PublishAssignsMonotonicGenerations) {
  const std::string dir = test_dir("mono");
  registry::ModelRegistry::init(dir);
  const hwgen::HwSearchSpace space = small_space();
  registry::ModelRegistry reg(dir, space);

  evalnet::Evaluator e1 = make_evaluator(space, 1);
  evalnet::Evaluator e2 = make_evaluator(space, 2);
  evalnet::Evaluator e3 = make_evaluator(space, 3);
  EXPECT_EQ(reg.publish("default", e1), 1U);
  EXPECT_EQ(reg.publish("default", e2), 2U);
  EXPECT_EQ(reg.publish("default", e3), 3U);
  EXPECT_EQ(reg.live_generation("default"), 3U);
  ASSERT_EQ(reg.models().size(), 1U);
  EXPECT_EQ(reg.models()[0], "default");

  // A second model numbers independently.
  evalnet::Evaluator other = make_evaluator(space, 4);
  EXPECT_EQ(reg.publish("other", other), 1U);
  EXPECT_EQ(reg.live_generation("default"), 3U);
}

TEST(registry_generations, CandidateStagingAndPromotion) {
  const std::string dir = test_dir("cand");
  registry::ModelRegistry::init(dir);
  const hwgen::HwSearchSpace space = small_space();
  registry::ModelRegistry reg(dir, space);

  evalnet::Evaluator e1 = make_evaluator(space, 5);
  evalnet::Evaluator e2 = make_evaluator(space, 6);
  ASSERT_EQ(reg.publish("m", e1), 1U);
  EXPECT_EQ(reg.promote("m"), 0U);  // nothing staged yet

  ASSERT_EQ(reg.publish("m", e2, /*as_candidate=*/true), 2U);
  EXPECT_EQ(reg.live_generation("m"), 1U);  // staging leaves live untouched
  ASSERT_NE(reg.pin_candidate("m"), nullptr);
  EXPECT_EQ(reg.pin_candidate("m")->generation(), 2U);

  EXPECT_EQ(reg.promote("m"), 2U);
  EXPECT_EQ(reg.live_generation("m"), 2U);
  EXPECT_EQ(reg.pin_candidate("m"), nullptr);
  EXPECT_EQ(reg.pin("m")->generation(), 2U);
}

TEST(registry_generations, ReloadPicksUpExternalPublish) {
  const std::string dir = test_dir("reload");
  registry::ModelRegistry::init(dir);
  const hwgen::HwSearchSpace space = small_space();
  registry::ModelRegistry writer(dir, space);
  registry::ModelRegistry reader(dir, space);  // a second "process"

  evalnet::Evaluator e1 = make_evaluator(space, 7);
  ASSERT_EQ(writer.publish("m", e1), 1U);
  EXPECT_EQ(reader.live_generation("m"), 0U);  // not visible until reload

  EXPECT_GE(reader.reload(), 1U);
  EXPECT_EQ(reader.live_generation("m"), 1U);
  EXPECT_EQ(reader.pin("m")->generation(), 1U);
  EXPECT_EQ(reader.reload(), 0U);  // idempotent: nothing new to swap
}

// --- pin / unpin lifecycle --------------------------------------------------

TEST(registry_pins, PinnedGenerationSurvivesPublish) {
  const std::string dir = test_dir("pin");
  registry::ModelRegistry::init(dir);
  const hwgen::HwSearchSpace space = small_space();
  registry::ModelRegistry reg(dir, space);

  evalnet::Evaluator e1 = make_evaluator(space, 11);
  ASSERT_EQ(reg.publish("m", e1), 1U);

  const registry::VersionPtr old = reg.pin("m");
  const std::vector<float> enc = some_encoding(42);
  const std::vector<serve::Request> reqs = {
      registry::ModelRegistry::make_request(old, enc)};
  const serve::Response before = old->answer(reqs)[0];
  EXPECT_EQ(before.generation, 1U);

  evalnet::Evaluator e2 = make_evaluator(space, 12);
  ASSERT_EQ(reg.publish("m", e2), 2U);

  // The retired generation, still pinned, answers bit-identically.
  const serve::Response after = old->answer(reqs)[0];
  EXPECT_EQ(after.generation, 1U);
  EXPECT_TRUE(bit_equal_response(before, after));

  // A fresh pin sees the new generation — and (different weights) answers
  // differently scoped requests.
  const registry::VersionPtr fresh = reg.pin("m");
  EXPECT_EQ(fresh->generation(), 2U);
  const std::vector<serve::Request> reqs2 = {
      registry::ModelRegistry::make_request(fresh, enc)};
  EXPECT_EQ(fresh->answer(reqs2)[0].generation, 2U);
}

TEST(registry_pins, ResidencyTracksPinsNotPublishes) {
  const std::string dir = test_dir("resident");
  registry::ModelRegistry::init(dir);
  const hwgen::HwSearchSpace space = small_space();
  const std::uint64_t base = registry::ModelVersion::resident_count();
  {
    registry::ModelRegistry reg(dir, space);
    evalnet::Evaluator e1 = make_evaluator(space, 13);
    evalnet::Evaluator e2 = make_evaluator(space, 14);
    ASSERT_EQ(reg.publish("m", e1), 1U);
    registry::VersionPtr pinned = reg.pin("m");
    ASSERT_EQ(reg.publish("m", e2), 2U);
    // Gen 1 is retired but pinned; gen 2 is live: both resident.
    EXPECT_EQ(registry::ModelVersion::resident_count(), base + 2);
    pinned.reset();
    // The RCU drop: the last pin frees the retired generation.
    EXPECT_EQ(registry::ModelVersion::resident_count(), base + 1);
  }
  EXPECT_EQ(registry::ModelVersion::resident_count(), base);
}

TEST(registry_pins, UnknownOrUnpublishedModelsThrow) {
  const std::string dir = test_dir("missing");
  registry::ModelRegistry::init(dir);
  const hwgen::HwSearchSpace space = small_space();
  registry::ModelRegistry reg(dir, space);
  EXPECT_THROW((void)reg.pin("ghost"), std::runtime_error);
  EXPECT_EQ(reg.pin_candidate("ghost"), nullptr);

  // Candidate-only model: staged for shadow, not yet live -> pin() throws.
  evalnet::Evaluator e = make_evaluator(space, 15);
  ASSERT_EQ(reg.publish("staged", e, /*as_candidate=*/true), 1U);
  EXPECT_THROW((void)reg.pin("staged"), std::runtime_error);
  ASSERT_NE(reg.pin_candidate("staged"), nullptr);
}

// --- cache-key namespacing --------------------------------------------------

TEST(registry_keys, ScopeFoldsIntoCanonicalKey) {
  const std::string dir = test_dir("keys");
  registry::ModelRegistry::init(dir);
  const hwgen::HwSearchSpace space = small_space();
  registry::ModelRegistry reg(dir, space);
  evalnet::Evaluator e1 = make_evaluator(space, 16);
  evalnet::Evaluator e2 = make_evaluator(space, 17);
  ASSERT_EQ(reg.publish("m", e1), 1U);
  const registry::VersionPtr v1 = reg.pin("m");
  ASSERT_EQ(reg.publish("m", e2), 2U);
  const registry::VersionPtr v2 = reg.pin("m");

  const std::vector<float> enc = some_encoding(77);
  const auto k1 =
      serve::canonical_key(registry::ModelRegistry::make_request(v1, enc));
  const auto k2 =
      serve::canonical_key(registry::ModelRegistry::make_request(v2, enc));
  // Same encoding, different generation: a cross-generation cache hit is
  // impossible because the keys differ in their scope prefix.
  EXPECT_FALSE(serve::KeyEq{}(k1, k2));
  EXPECT_EQ(k1.size(), enc.size() + 4);

  // Unscoped requests produce exactly the legacy key (snapshot compat).
  const serve::Request plain{enc};
  EXPECT_TRUE(serve::KeyEq{}(serve::canonical_key(plain),
                             serve::canonical_key(enc)));
}

TEST(registry_keys, BackendRejectsUnpinnedRequests) {
  registry::RegistryBackend backend;
  const std::vector<serve::Request> reqs = {serve::Request{{1.0F, 2.0F}}};
  EXPECT_THROW((void)backend.query_batch(reqs), std::runtime_error);
}

// --- wire front-end ---------------------------------------------------------

TEST(registry_wire, FrontendServesReloadsAndRoutes) {
  const std::string dir = test_dir("wire");
  registry::ModelRegistry::init(dir);
  const hwgen::HwSearchSpace space = small_space();
  {
    registry::ModelRegistry writer(dir, space);
    evalnet::Evaluator e = make_evaluator(space, 18);
    ASSERT_EQ(writer.publish("default", e), 1U);
  }
  registry::ModelRegistry reg(dir, space);
  registry::RegistryBackend backend;
  serve::Service service(backend);
  registry::Frontend frontend(reg, service, "default");
  arch::ArchSpace arch_space(arch::cifar10_backbone());

  const std::string line = R"({"id": 1, "arch": [0, 1, 2, 3, 4, 5, 6, 0, 1]})";
  const std::string answer = frontend.answer_line(line, arch_space);
  EXPECT_NE(answer.find("\"generation\": 1"), std::string::npos) << answer;
  EXPECT_EQ(answer.find("error"), std::string::npos) << answer;

  // Unknown model -> error line, not an exception.
  const std::string routed = frontend.answer_line(
      R"({"id": 2, "model": "ghost", "arch": [0, 1, 2, 3, 4, 5, 6, 0, 1]})",
      arch_space);
  EXPECT_NE(routed.find("error"), std::string::npos) << routed;

  // Reload over the wire; nothing new on disk -> 0 swaps.
  const std::string reloaded =
      frontend.answer_line(R"({"cmd": "reload"})", arch_space);
  EXPECT_NE(reloaded.find("\"reloaded\": true"), std::string::npos);
  EXPECT_NE(reloaded.find("\"swaps\": 0"), std::string::npos);

  // Blank lines are skipped, like serve::wire::answer_line.
  EXPECT_TRUE(frontend.answer_line("   ", arch_space).empty());
}

}  // namespace
