// Property suite: the dance::registry hot-swap contracts.
//
//  * registry_hotswap — client threads hammer a Service backed by the
//    RegistryBackend while a publisher thread hot-swaps the live generation
//    twice. Every response must be attributable to exactly ONE generation
//    (the one its request pinned), and bit-identical to that generation's
//    serial answer — i.e. a publish never drops, blends, or cross-pollutes
//    in-flight queries, even when the micro-batcher coalesces requests that
//    straddle a swap.
//  * registry_shadow — the shadow mirror's seeded sampling selects the
//    configured fraction of the stream (within binomial tolerance) and is
//    exactly reproducible for a fixed seed.
//
// Suite names carry a lowercase "registry_" prefix so `ctest -R registry`
// selects them alongside the unit suites; CI runs them under TSan.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <sys/stat.h>
#include <unistd.h>

#include "arch/backbone.h"
#include "evalnet/evaluator.h"
#include "hwgen/search_space.h"
#include "registry/registry.h"
#include "registry/shadow.h"
#include "serve/service.h"
#include "serve/types.h"
#include "testing/property.h"
#include "util/rng.h"

namespace testing_ = dance::testing;

namespace {

using namespace dance;

std::string test_dir(const char* tag) {
  static std::atomic<int> counter{0};
  std::string path = "/tmp/dance_registry_pbt_" + std::to_string(getpid()) +
                     "_" + tag + "_" + std::to_string(counter.fetch_add(1));
  mkdir(path.c_str(), 0755);
  return path;
}

hwgen::HwSearchSpace small_space() {
  return hwgen::HwSearchSpace(
      {.pe_min = 8, .pe_max = 10, .rf_min = 8, .rf_max = 16, .rf_step = 8});
}

evalnet::Evaluator make_evaluator(const hwgen::HwSearchSpace& space,
                                  std::uint64_t seed) {
  arch::ArchSpace arch_space(arch::cifar10_backbone());
  evalnet::Evaluator::Options opts;
  opts.hwgen.hidden_dim = 16;
  opts.hwgen.num_layers = 2;
  opts.cost.hidden_dim = 16;
  opts.cost.num_layers = 2;
  util::Rng rng(seed);
  return evalnet::Evaluator(arch_space.encoding_width(), space, rng, opts);
}

bool bit_equal_double(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

bool bit_equal_response(const serve::Response& a, const serve::Response& b) {
  return bit_equal_double(a.metrics.latency_ms, b.metrics.latency_ms) &&
         bit_equal_double(a.metrics.energy_mj, b.metrics.energy_mj) &&
         bit_equal_double(a.metrics.area_mm2, b.metrics.area_mm2) &&
         a.config == b.config;
}

/// Reduced-trial config: every trial spins up a registry directory, three
/// published generations and a thread herd; the default 100 trials would
/// dominate the TSan job for no extra coverage.
testing_::PbtConfig concurrency_config(int cap) {
  auto cfg = testing_::PbtConfig::from_env();
  cfg.trials = std::min(cfg.trials, cap);
  return cfg;
}

// --- hot swap under concurrency ---------------------------------------------

TEST(registry_hotswap, EveryResponseBitIdenticalToItsPinnedGeneration) {
  arch::ArchSpace arch_space(arch::cifar10_backbone());

  testing_::Generator<long> gen;
  gen.sample = [](util::Rng& rng) {
    return static_cast<long>(rng.randint(1, 4));  // unique encodings in play
  };
  gen.shrink = [](const long& v) { return testing_::shrink_toward(v, 1); };
  gen.show = [](const long& v) { return std::to_string(v) + " unique keys"; };

  const auto result = testing_::check<long>(
      "hot swap: one generation per response, bit-identical", gen,
      [&](const long& unique, util::Rng& rng) -> std::string {
        const std::string dir = test_dir("swap");
        registry::ModelRegistry::init(dir);
        const hwgen::HwSearchSpace space = small_space();
        registry::ModelRegistry reg(dir, space);

        // Generation oracle: every published version is pinned here, so the
        // post-check can replay any response serially on the exact
        // generation that answered it.
        std::map<std::uint64_t, registry::VersionPtr> versions;
        {
          evalnet::Evaluator e = make_evaluator(space, static_cast<std::uint64_t>(rng.randint(1, 1 << 30)));
          const std::uint64_t g = reg.publish("m", e);
          versions[g] = reg.pin("m");
        }

        std::vector<std::vector<float>> encodings;
        for (long k = 0; k < unique; ++k) {
          encodings.push_back(arch_space.encode(arch_space.random(rng)));
        }

        registry::RegistryBackend backend;
        serve::Service::Options opts;
        opts.batch.max_batch = 4;  // batches CAN straddle a swap
        opts.batch.max_wait_us = 100;
        opts.cache_capacity = 64;
        serve::Service service(backend, opts);

        struct Record {
          std::uint64_t expected_gen = 0;
          std::size_t key = 0;
          serve::Response response;
        };
        constexpr int kThreads = 4;
        std::vector<std::vector<Record>> records(kThreads);
        std::vector<std::string> errors(kThreads);
        std::atomic<bool> done{false};

        std::vector<std::thread> clients;
        clients.reserve(kThreads);
        for (int t = 0; t < kThreads; ++t) {
          clients.emplace_back([&, t] {
            int after_done = 0;
            for (int i = 0; i < 2000 && after_done < 8; ++i) {
              if (done.load(std::memory_order_relaxed)) ++after_done;
              const std::size_t k =
                  static_cast<std::size_t>(i) % encodings.size();
              const registry::VersionPtr pin = reg.pin("m");
              const serve::Request request =
                  registry::ModelRegistry::make_request(pin, encodings[k]);
              const serve::Response r = service.query(request);
              if (r.generation != pin->generation()) {
                errors[static_cast<std::size_t>(t)] =
                    "response generation " + std::to_string(r.generation) +
                    " != pinned generation " +
                    std::to_string(pin->generation());
                return;
              }
              records[static_cast<std::size_t>(t)].push_back(
                  Record{pin->generation(), k, r});
            }
          });
        }

        // The publisher: two hot swaps while the herd is in flight.
        const std::uint64_t seed2 = static_cast<std::uint64_t>(rng.randint(1, 1 << 30));
        const std::uint64_t seed3 = static_cast<std::uint64_t>(rng.randint(1, 1 << 30));
        std::thread publisher([&] {
          for (const std::uint64_t seed : {seed2, seed3}) {
            std::this_thread::sleep_for(std::chrono::milliseconds(3));
            evalnet::Evaluator e = make_evaluator(space, seed);
            const std::uint64_t g = reg.publish("m", e);
            versions[g] = reg.pin("m");
          }
          done.store(true, std::memory_order_relaxed);
        });
        publisher.join();
        for (auto& c : clients) c.join();
        for (const auto& e : errors) {
          if (!e.empty()) return e;
        }

        // Replay every recorded response serially on its own generation:
        // bit-identity means no blending, no stale weights, no torn swap.
        std::size_t total = 0;
        for (const auto& per_thread : records) {
          for (const Record& rec : per_thread) {
            ++total;
            const auto it = versions.find(rec.expected_gen);
            if (it == versions.end()) {
              return "response claims unknown generation " +
                     std::to_string(rec.expected_gen);
            }
            const std::vector<serve::Request> one = {
                registry::ModelRegistry::make_request(it->second,
                                                      encodings[rec.key])};
            const serve::Response serial = it->second->answer(one)[0];
            if (!bit_equal_response(rec.response, serial)) {
              return "key " + std::to_string(rec.key) + " on generation " +
                     std::to_string(rec.expected_gen) +
                     " diverged from the serial answer";
            }
          }
        }
        if (total == 0) return "no responses recorded; property vacuous";
        if (reg.live_generation("m") != 3) {
          return "publisher did not reach generation 3";
        }
        return "";
      },
      concurrency_config(8));
  EXPECT_TRUE(result.ok) << result.report;
}

// --- shadow sampling --------------------------------------------------------

TEST(registry_shadow, SeededSamplingHitsTheConfiguredFraction) {
  arch::ArchSpace arch_space(arch::cifar10_backbone());

  testing_::Generator<long> gen;
  gen.sample = [](util::Rng& rng) {
    return static_cast<long>(rng.randint(10, 90));  // pct, in percent
  };
  gen.shrink = [](const long& v) { return testing_::shrink_toward(v, 50); };
  gen.show = [](const long& v) { return std::to_string(v) + "% mirror rate"; };

  const auto result = testing_::check<long>(
      "shadow sampling fraction and reproducibility", gen,
      [&](const long& pct, util::Rng& rng) -> std::string {
        const std::string dir = test_dir("shadow");
        registry::ModelRegistry::init(dir);
        const hwgen::HwSearchSpace space = small_space();
        registry::ModelRegistry reg(dir, space);
        {
          evalnet::Evaluator live = make_evaluator(space, static_cast<std::uint64_t>(rng.randint(1, 1 << 30)));
          evalnet::Evaluator cand = make_evaluator(space, static_cast<std::uint64_t>(rng.randint(1, 1 << 30)));
          if (reg.publish("m", live) != 1) return "live publish != gen 1";
          if (reg.publish("m", cand, /*as_candidate=*/true) != 2) {
            return "candidate publish != gen 2";
          }
        }
        const registry::VersionPtr live = reg.pin("m");

        constexpr int kStream = 400;
        std::vector<std::vector<float>> encodings;
        std::vector<serve::Response> answers;
        for (int i = 0; i < kStream; ++i) {
          encodings.push_back(arch_space.encode(arch_space.random(rng)));
          const std::vector<serve::Request> one = {
              registry::ModelRegistry::make_request(live, encodings.back())};
          answers.push_back(live->answer(one)[0]);
        }

        registry::ShadowMirror::Options opts;
        opts.pct = static_cast<double>(pct) / 100.0;
        opts.seed = static_cast<std::uint64_t>(rng.randint(1, 1 << 30));
        opts.synchronous = true;  // compare inline; stats exact at return

        const auto run_stream = [&](registry::ShadowMirror& mirror) {
          for (int i = 0; i < kStream; ++i) {
            mirror.observe("m", encodings[i], answers[i]);
          }
          mirror.drain();
          return mirror.stats();
        };

        registry::ShadowMirror mirror(reg, opts);
        const auto stats = run_stream(mirror);

        // Binomial check: at N=400 the worst-case standard deviation is
        // 0.025, so a 0.10 tolerance is ~4 sigma — tight enough to catch a
        // broken coin, loose enough to never flake on a healthy one.
        const double frac =
            static_cast<double>(stats.sampled) / static_cast<double>(kStream);
        if (std::abs(frac - opts.pct) > 0.10) {
          return "sampled fraction " + std::to_string(frac) +
                 " is not within 0.10 of configured " +
                 std::to_string(opts.pct);
        }
        // A candidate is staged, so every sampled query is mirrored.
        if (stats.mirrored != stats.sampled) {
          return "mirrored " + std::to_string(stats.mirrored) +
                 " != sampled " + std::to_string(stats.sampled);
        }
        if (stats.disagreements > stats.mirrored) {
          return "disagreements exceed mirrored count";
        }

        // Same seed, same stream -> exactly the same sampling decisions.
        registry::ShadowMirror replay(reg, opts);
        const auto replay_stats = run_stream(replay);
        if (replay_stats.sampled != stats.sampled ||
            replay_stats.mirrored != stats.mirrored ||
            replay_stats.disagreements != stats.disagreements) {
          return "fixed-seed replay diverged: sampled " +
                 std::to_string(replay_stats.sampled) + " vs " +
                 std::to_string(stats.sampled);
        }
        return "";
      },
      concurrency_config(10));
  EXPECT_TRUE(result.ok) << result.report;
}

}  // namespace
