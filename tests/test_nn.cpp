#include <gtest/gtest.h>

#include <cmath>

#include "nn/batchnorm.h"
#include "nn/linear.h"
#include "nn/mlp.h"
#include "nn/optim.h"

namespace {

using dance::tensor::Tensor;
using dance::tensor::Variable;
namespace ops = dance::tensor::ops;
namespace nn = dance::nn;

/// Central-difference gradient check of a scalar loss w.r.t. one parameter
/// entry.
double numeric_grad(const std::function<double()>& loss_fn, float& param,
                    float eps = 1e-3F) {
  const float saved = param;
  param = saved + eps;
  const double hi = loss_fn();
  param = saved - eps;
  const double lo = loss_fn();
  param = saved;
  return (hi - lo) / (2.0 * eps);
}

TEST(Linear, ForwardShapeAndBias) {
  dance::util::Rng rng(1);
  nn::Linear layer(4, 3, rng);
  Variable x(Tensor::zeros({2, 4}));
  Variable y = layer.forward(x);
  EXPECT_EQ(y.value().rows(), 2);
  EXPECT_EQ(y.value().cols(), 3);
  // zero input -> bias (zero-initialized)
  for (std::size_t i = 0; i < y.value().numel(); ++i) {
    EXPECT_FLOAT_EQ(y.value()[i], 0.0F);
  }
}

TEST(Linear, GradientMatchesNumeric) {
  dance::util::Rng rng(2);
  nn::Linear layer(3, 2, rng);
  Tensor xt = Tensor::randn({4, 3}, rng);
  Tensor target = Tensor::randn({4, 2}, rng);

  auto loss_fn = [&]() {
    Variable x(xt);
    Variable out = layer.forward(x);
    return static_cast<double>(ops::mse(out, target).value()[0]);
  };

  Variable x(xt);
  Variable loss = ops::mse(layer.forward(x), target);
  layer.zero_grad();
  loss.backward();

  // Check a few weight entries and one bias entry.
  auto& w = layer.weight();
  for (std::size_t i : {0UL, 3UL, 5UL}) {
    const double num = numeric_grad(loss_fn, w.value()[i]);
    EXPECT_NEAR(w.grad()[i], num, 5e-3) << "weight " << i;
  }
  const double numb = numeric_grad(loss_fn, layer.bias().value()[1]);
  EXPECT_NEAR(layer.bias().grad()[1], numb, 5e-3);
}

TEST(BatchNorm, NormalizesTrainingBatch) {
  nn::BatchNorm1d bn(3);
  dance::util::Rng rng(3);
  Variable x(Tensor::randn({64, 3}, rng, 5.0F, 2.0F));
  bn.set_training(true);
  Variable y = bn.forward(x);
  for (int c = 0; c < 3; ++c) {
    double m = 0.0;
    for (int r = 0; r < 64; ++r) m += y.value().at(r, c);
    m /= 64.0;
    double v = 0.0;
    for (int r = 0; r < 64; ++r) {
      v += (y.value().at(r, c) - m) * (y.value().at(r, c) - m);
    }
    v /= 64.0;
    EXPECT_NEAR(m, 0.0, 1e-4);
    EXPECT_NEAR(v, 1.0, 1e-3);
  }
}

TEST(BatchNorm, EvalModeUsesRunningStats) {
  nn::BatchNorm1d bn(2);
  dance::util::Rng rng(4);
  // Update running stats with a few training batches.
  bn.set_training(true);
  for (int i = 0; i < 50; ++i) {
    Variable x(Tensor::randn({32, 2}, rng, 3.0F, 1.0F));
    (void)bn.forward(x);
  }
  EXPECT_NEAR(bn.running_mean()[0], 3.0F, 0.3F);
  // In eval mode a single constant row should map near (x - 3)/1.
  bn.set_training(false);
  Variable x(Tensor::from({1, 2}, {4.0F, 4.0F}));
  Variable y = bn.forward(x);
  EXPECT_NEAR(y.value()[0], 1.0F, 0.3F);
}

TEST(BatchNorm, GradientMatchesNumeric) {
  nn::BatchNorm1d bn(2);
  dance::util::Rng rng(5);
  Tensor xt = Tensor::randn({8, 2}, rng);
  Tensor target = Tensor::randn({8, 2}, rng);

  // Fresh running buffers every call would differ; gradient check uses the
  // training-mode batch statistics, which are deterministic per input.
  auto params = bn.parameters();
  auto& gamma = params[0];
  auto loss_fn = [&]() {
    bn.set_training(true);
    Variable x(xt);
    return static_cast<double>(ops::mse(bn.forward(x), target).value()[0]);
  };

  bn.set_training(true);
  Variable x(xt, true);
  Variable loss = ops::mse(bn.forward(x), target);
  bn.zero_grad();
  loss.backward();
  const double num = numeric_grad(loss_fn, gamma.value()[0]);
  EXPECT_NEAR(gamma.grad()[0], num, 5e-3);
}

TEST(ResidualMlp, ForwardShape) {
  dance::util::Rng rng(6);
  nn::ResidualMlpConfig cfg;
  cfg.in_dim = 10;
  cfg.hidden_dim = 16;
  cfg.num_layers = 5;
  cfg.out_dim = 3;
  nn::ResidualMlp mlp(cfg, rng);
  Variable x(Tensor::randn({7, 10}, rng));
  Variable y = mlp.forward(x);
  EXPECT_EQ(y.value().rows(), 7);
  EXPECT_EQ(y.value().cols(), 3);
}

TEST(ResidualMlp, ParameterCountMatchesArchitecture) {
  dance::util::Rng rng(7);
  nn::ResidualMlpConfig cfg;
  cfg.in_dim = 4;
  cfg.hidden_dim = 8;
  cfg.num_layers = 5;  // input + 3 hidden + output
  cfg.out_dim = 2;
  nn::ResidualMlp mlp(cfg, rng);
  // input: 4*8+8; hidden x3: 8*8+8; output: 8*2+2
  const std::size_t expected = (4 * 8 + 8) + 3 * (8 * 8 + 8) + (8 * 2 + 2);
  EXPECT_EQ(mlp.parameter_count(), expected);
}

TEST(ResidualMlp, RejectsTooFewLayers) {
  dance::util::Rng rng(8);
  nn::ResidualMlpConfig cfg;
  cfg.num_layers = 1;
  EXPECT_THROW(nn::ResidualMlp(cfg, rng), std::invalid_argument);
}

TEST(Sgd, ConvergesOnQuadratic) {
  // minimize (w - 3)^2 via mse against constant target
  Variable w(Tensor::from({1, 1}, {0.0F}), true);
  nn::Sgd opt({w}, {.lr = 0.1F});
  Tensor target = Tensor::from({1, 1}, {3.0F});
  for (int i = 0; i < 200; ++i) {
    Variable loss = ops::mse(w, target);
    opt.zero_grad();
    loss.backward();
    opt.step();
  }
  EXPECT_NEAR(w.value()[0], 3.0F, 1e-3F);
}

TEST(Sgd, WeightDecayShrinksUnusedWeight) {
  Variable w(Tensor::from({1, 1}, {1.0F}), true);
  nn::Sgd opt({w}, {.lr = 0.1F, .weight_decay = 0.5F});
  // gradient from loss is 0: only decay acts
  Variable loss = ops::mse(w, w.value());
  opt.zero_grad();
  loss.backward();
  opt.step();
  EXPECT_LT(w.value()[0], 1.0F);
}

TEST(Adam, ConvergesOnQuadratic) {
  Variable w(Tensor::from({1, 2}, {-2.0F, 5.0F}), true);
  nn::Adam opt({w}, {.lr = 0.05F});
  Tensor target = Tensor::from({1, 2}, {1.0F, -1.0F});
  for (int i = 0; i < 600; ++i) {
    Variable loss = ops::mse(w, target);
    opt.zero_grad();
    loss.backward();
    opt.step();
  }
  EXPECT_NEAR(w.value()[0], 1.0F, 1e-2F);
  EXPECT_NEAR(w.value()[1], -1.0F, 1e-2F);
}

TEST(Optimizer, RejectsNonGradParameters) {
  Variable w(Tensor::zeros({1}), false);
  EXPECT_THROW(nn::Sgd({w}, {}), std::invalid_argument);
}

TEST(Schedules, CosineEndpoints) {
  nn::CosineSchedule s(1.0F, 100);
  EXPECT_NEAR(s.lr(0), 1.0F, 1e-6F);
  EXPECT_NEAR(s.lr(100), 0.0F, 1e-6F);
  EXPECT_NEAR(s.lr(50), 0.5F, 1e-6F);
}

TEST(Schedules, StepDecay) {
  nn::StepSchedule s(1.0F, 0.1F, 50);
  EXPECT_FLOAT_EQ(s.lr(0), 1.0F);
  EXPECT_FLOAT_EQ(s.lr(49), 1.0F);
  EXPECT_NEAR(s.lr(50), 0.1F, 1e-6F);
  EXPECT_NEAR(s.lr(100), 0.01F, 1e-7F);
}

/// Property sweep: the residual MLP gradient matches numeric differentiation
/// across configurations (with and without batch norm, varying depth).
class MlpGradParam : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(MlpGradParam, GradientMatchesNumeric) {
  const auto [layers, batch_norm] = GetParam();
  dance::util::Rng rng(100 + layers);
  nn::ResidualMlpConfig cfg;
  cfg.in_dim = 3;
  cfg.hidden_dim = 6;
  cfg.num_layers = layers;
  cfg.out_dim = 2;
  cfg.batch_norm = batch_norm;
  nn::ResidualMlp mlp(cfg, rng);
  mlp.set_training(true);
  Tensor xt = Tensor::randn({5, 3}, rng);
  Tensor target = Tensor::randn({5, 2}, rng);

  auto loss_fn = [&]() {
    Variable x(xt);
    return static_cast<double>(ops::mse(mlp.forward(x), target).value()[0]);
  };

  Variable loss = ops::mse(mlp.forward(Variable(xt)), target);
  mlp.zero_grad();
  loss.backward();

  auto params = mlp.parameters();
  // Spot-check the first weight of the first and last parameter tensors.
  for (auto* p : {&params.front(), &params.back()}) {
    const double num = numeric_grad(loss_fn, p->value()[0]);
    EXPECT_NEAR(p->grad()[0], num, 2e-2);
  }
}

INSTANTIATE_TEST_SUITE_P(DepthsAndNorm, MlpGradParam,
                         ::testing::Combine(::testing::Values(2, 3, 5),
                                            ::testing::Bool()));

}  // namespace
