// Property suite for util::Rng::categorical's degenerate-weight handling:
// an empty weight vector must throw, an all-zero vector must fall back to
// a uniform in-range draw, and any draw from a partially-positive vector
// must land on an index whose weight is positive (std::discrete_distribution
// left the first two cases implementation-defined, which is how the
// original bug slipped in).
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "testing/property.h"
#include "util/rng.h"

namespace testing_ = dance::testing;

namespace {

using namespace dance;

TEST(rng_properties, CategoricalHandlesDegenerateWeightVectors) {
  testing_::Generator<std::vector<float>> gen;
  gen.sample = [](util::Rng& rng) {
    const int n = rng.randint(1, 8);
    std::vector<float> weights(static_cast<std::size_t>(n), 0.0F);
    // Roughly half the trials are all-zero; the rest mix zero and positive.
    if (rng.randint(0, 1) == 1) {
      for (float& w : weights) {
        if (rng.randint(0, 1) == 1) w = rng.uniform(0.1F, 2.0F);
      }
    }
    return weights;
  };
  gen.show = [](const std::vector<float>& w) {
    std::ostringstream os;
    os << "[";
    for (std::size_t i = 0; i < w.size(); ++i) os << (i ? ", " : "") << w[i];
    os << "]";
    return os.str();
  };

  const auto result = testing_::check<std::vector<float>>(
      "categorical degenerate weights", gen,
      [](const std::vector<float>& weights, util::Rng& rng) -> std::string {
        bool any_positive = false;
        for (float w : weights) any_positive = any_positive || w > 0.0F;
        for (int draw = 0; draw < 16; ++draw) {
          const int idx = rng.categorical(weights);
          if (idx < 0 || idx >= static_cast<int>(weights.size())) {
            return "index " + std::to_string(idx) + " out of range";
          }
          if (any_positive && weights[static_cast<std::size_t>(idx)] <= 0.0F) {
            return "drew zero-weight index " + std::to_string(idx) +
                   " despite positive weights being present";
          }
        }
        return "";
      });
  EXPECT_TRUE(result.ok) << result.report;
}

TEST(rng_properties, CategoricalEmptyVectorAlwaysThrows) {
  util::Rng rng(1);
  EXPECT_THROW((void)rng.categorical({}), std::invalid_argument);
}

TEST(rng_properties, CategoricalAllZeroCoversEveryIndex) {
  // The uniform fallback must be able to reach every index (the old
  // behavior was implementation-defined; common implementations pinned the
  // draw to index 0).
  util::Rng rng(42);
  const std::vector<float> zeros(5, 0.0F);
  std::vector<int> seen(5, 0);
  for (int i = 0; i < 400; ++i) {
    ++seen[static_cast<std::size_t>(rng.categorical(zeros))];
  }
  for (int i = 0; i < 5; ++i) {
    EXPECT_GT(seen[static_cast<std::size_t>(i)], 0)
        << "index " << i << " never drawn by the uniform fallback";
  }
}

}  // namespace
