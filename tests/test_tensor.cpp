#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "tensor/variable.h"

namespace {

using dance::tensor::Tensor;
using dance::tensor::Variable;
namespace ops = dance::tensor::ops;

TEST(Tensor, ZerosShapeAndFill) {
  Tensor t = Tensor::zeros({2, 3});
  EXPECT_EQ(t.numel(), 6U);
  EXPECT_EQ(t.rows(), 2);
  EXPECT_EQ(t.cols(), 3);
  for (std::size_t i = 0; i < t.numel(); ++i) EXPECT_FLOAT_EQ(t[i], 0.0F);
  t.fill(2.5F);
  EXPECT_FLOAT_EQ(t.at(1, 2), 2.5F);
}

TEST(Tensor, FromValuesRoundTrip) {
  Tensor t = Tensor::from({2, 2}, {1.0F, 2.0F, 3.0F, 4.0F});
  EXPECT_FLOAT_EQ(t.at(0, 0), 1.0F);
  EXPECT_FLOAT_EQ(t.at(0, 1), 2.0F);
  EXPECT_FLOAT_EQ(t.at(1, 0), 3.0F);
  EXPECT_FLOAT_EQ(t.at(1, 1), 4.0F);
}

TEST(Tensor, FromThrowsOnSizeMismatch) {
  EXPECT_THROW(Tensor::from({2, 2}, {1.0F}), std::invalid_argument);
}

TEST(Tensor, AddInPlaceAndScale) {
  Tensor a = Tensor::from({3}, {1.0F, 2.0F, 3.0F});
  Tensor b = Tensor::from({3}, {10.0F, 20.0F, 30.0F});
  a.add_(b);
  a.scale_(0.5F);
  EXPECT_FLOAT_EQ(a[0], 5.5F);
  EXPECT_FLOAT_EQ(a[2], 16.5F);
}

TEST(Tensor, AddInPlaceShapeMismatchThrows) {
  Tensor a = Tensor::zeros({3});
  Tensor b = Tensor::zeros({4});
  EXPECT_THROW(a.add_(b), std::invalid_argument);
}

TEST(Autograd, AddBackward) {
  Variable a(Tensor::from({1, 2}, {1.0F, 2.0F}), true);
  Variable b(Tensor::from({1, 2}, {3.0F, 4.0F}), true);
  Variable s = ops::sum_all(ops::add(a, b));
  EXPECT_FLOAT_EQ(s.value()[0], 10.0F);
  s.backward();
  EXPECT_FLOAT_EQ(a.grad()[0], 1.0F);
  EXPECT_FLOAT_EQ(b.grad()[1], 1.0F);
}

TEST(Autograd, MatmulForwardValues) {
  Variable a(Tensor::from({2, 2}, {1.0F, 2.0F, 3.0F, 4.0F}), true);
  Variable b(Tensor::from({2, 2}, {5.0F, 6.0F, 7.0F, 8.0F}), true);
  Variable c = ops::matmul(a, b);
  EXPECT_FLOAT_EQ(c.value().at(0, 0), 19.0F);
  EXPECT_FLOAT_EQ(c.value().at(0, 1), 22.0F);
  EXPECT_FLOAT_EQ(c.value().at(1, 0), 43.0F);
  EXPECT_FLOAT_EQ(c.value().at(1, 1), 50.0F);
}

TEST(Autograd, MatmulBackward) {
  Variable a(Tensor::from({1, 2}, {1.0F, 2.0F}), true);
  Variable b(Tensor::from({2, 1}, {3.0F, 4.0F}), true);
  Variable s = ops::sum_all(ops::matmul(a, b));
  s.backward();
  // d(a.b)/da = b^T, d/db = a^T
  EXPECT_FLOAT_EQ(a.grad()[0], 3.0F);
  EXPECT_FLOAT_EQ(a.grad()[1], 4.0F);
  EXPECT_FLOAT_EQ(b.grad()[0], 1.0F);
  EXPECT_FLOAT_EQ(b.grad()[1], 2.0F);
}

TEST(Autograd, MatmulForwardPropagatesNaNAndInfThroughZeros) {
  // Regression: the forward zero-skip dropped 0 * NaN and 0 * inf terms,
  // silently un-poisoning results that IEEE arithmetic says are NaN.
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const float inf = std::numeric_limits<float>::infinity();
  Variable a(Tensor::from({1, 2}, {0.0F, 1.0F}), false);
  Variable b(Tensor::from({2, 2}, {nan, inf, 2.0F, 3.0F}), false);
  Variable c = ops::matmul(a, b);
  EXPECT_TRUE(std::isnan(c.value().at(0, 0)));  // 0*NaN + 1*2
  EXPECT_TRUE(std::isnan(c.value().at(0, 1)));  // 0*inf + 1*3
}

TEST(Autograd, MatmulBackwardPropagatesNaNGradPastZeroActivations) {
  // Regression: the dB zero-skip dropped 0 * NaN upstream-gradient terms, so
  // a poisoned loss produced a clean-looking (all-zero) dB for zero
  // activations. scale-by-NaN seeds the NaN into matmul's upstream gradient.
  const float nan = std::numeric_limits<float>::quiet_NaN();
  Variable a(Tensor::from({1, 2}, {0.0F, 0.0F}), false);
  Variable b(Tensor::from({2, 1}, {3.0F, 4.0F}), true);
  Variable s = ops::sum_all(ops::scale(ops::matmul(a, b), nan));
  s.backward();
  EXPECT_TRUE(std::isnan(b.grad()[0]));
  EXPECT_TRUE(std::isnan(b.grad()[1]));
}

TEST(Autograd, ReluMasksNegative) {
  Variable a(Tensor::from({1, 3}, {-1.0F, 0.5F, 2.0F}), true);
  Variable r = ops::relu(a);
  EXPECT_FLOAT_EQ(r.value()[0], 0.0F);
  EXPECT_FLOAT_EQ(r.value()[1], 0.5F);
  Variable s = ops::sum_all(r);
  s.backward();
  EXPECT_FLOAT_EQ(a.grad()[0], 0.0F);
  EXPECT_FLOAT_EQ(a.grad()[1], 1.0F);
  EXPECT_FLOAT_EQ(a.grad()[2], 1.0F);
}

TEST(Autograd, SoftmaxRowsSumToOne) {
  Variable a(Tensor::from({2, 3}, {1.0F, 2.0F, 3.0F, -1.0F, 0.0F, 1.0F}), true);
  Variable p = ops::softmax_rows(a);
  for (int r = 0; r < 2; ++r) {
    float sum = 0.0F;
    for (int c = 0; c < 3; ++c) sum += p.value().at(r, c);
    EXPECT_NEAR(sum, 1.0F, 1e-6F);
  }
}

TEST(Autograd, CrossEntropyMatchesManual) {
  Variable logits(Tensor::from({1, 2}, {0.0F, 0.0F}), true);
  Variable loss = ops::cross_entropy(logits, {0});
  EXPECT_NEAR(loss.value()[0], std::log(2.0F), 1e-5F);
  loss.backward();
  // grad = p - onehot
  EXPECT_NEAR(logits.grad()[0], 0.5F - 1.0F, 1e-5F);
  EXPECT_NEAR(logits.grad()[1], 0.5F, 1e-5F);
}

TEST(Autograd, MseValueAndGrad) {
  Variable p(Tensor::from({1, 2}, {1.0F, 3.0F}), true);
  Tensor t = Tensor::from({1, 2}, {0.0F, 0.0F});
  Variable loss = ops::mse(p, t);
  EXPECT_NEAR(loss.value()[0], (1.0F + 9.0F) / 2.0F, 1e-5F);
  loss.backward();
  EXPECT_NEAR(p.grad()[0], 1.0F, 1e-5F);
  EXPECT_NEAR(p.grad()[1], 3.0F, 1e-5F);
}

TEST(Autograd, MsreIsScaleInvariant) {
  // 10% error on a small and a large target produce the same loss.
  Variable p1(Tensor::from({1, 1}, {1.1F}), true);
  Variable p2(Tensor::from({1, 1}, {1100.0F}), true);
  Variable l1 = ops::msre(p1, Tensor::from({1, 1}, {1.0F}));
  Variable l2 = ops::msre(p2, Tensor::from({1, 1}, {1000.0F}));
  EXPECT_NEAR(l1.value()[0], l2.value()[0], 1e-5F);
  EXPECT_NEAR(l1.value()[0], 0.01F, 1e-5F);
}

TEST(Autograd, ScaleByBroadcastsScalar) {
  Variable a(Tensor::from({1, 2}, {2.0F, 4.0F}), true);
  Variable s(Tensor::from({1, 1}, {0.5F}), true);
  Variable out = ops::scale_by(a, s);
  EXPECT_FLOAT_EQ(out.value()[0], 1.0F);
  ops::sum_all(out).backward();
  EXPECT_FLOAT_EQ(a.grad()[0], 0.5F);
  EXPECT_FLOAT_EQ(s.grad()[0], 6.0F);  // sum of a
}

TEST(Autograd, ConcatAndSliceRoundTrip) {
  Variable a(Tensor::from({1, 2}, {1.0F, 2.0F}), true);
  Variable b(Tensor::from({1, 3}, {3.0F, 4.0F, 5.0F}), true);
  Variable cat = ops::concat_cols({a, b});
  ASSERT_EQ(cat.value().cols(), 5);
  Variable back = ops::slice_cols(cat, 2, 5);
  EXPECT_FLOAT_EQ(back.value()[0], 3.0F);
  EXPECT_FLOAT_EQ(back.value()[2], 5.0F);
  ops::sum_all(back).backward();
  EXPECT_FLOAT_EQ(a.grad()[0], 0.0F);
  EXPECT_FLOAT_EQ(b.grad()[0], 1.0F);
}

TEST(Autograd, BackwardRequiresScalar) {
  Variable a(Tensor::from({1, 2}, {1.0F, 2.0F}), true);
  Variable b = ops::relu(a);
  EXPECT_THROW(b.backward(), std::logic_error);
}

TEST(Autograd, GumbelSoftmaxRowsSumToOne) {
  dance::util::Rng rng(3);
  Variable a(Tensor::from({2, 4}, {0.0F, 1.0F, 2.0F, 3.0F, 1.0F, 1.0F, 1.0F, 1.0F}),
             true);
  Variable g = ops::gumbel_softmax(a, 0.7F, false, rng);
  for (int r = 0; r < 2; ++r) {
    float sum = 0.0F;
    for (int c = 0; c < 4; ++c) sum += g.value().at(r, c);
    EXPECT_NEAR(sum, 1.0F, 1e-5F);
  }
}

TEST(Autograd, GumbelSoftmaxHardIsOneHot) {
  dance::util::Rng rng(5);
  Variable a(Tensor::from({3, 4}, std::vector<float>(12, 0.0F)), true);
  Variable g = ops::gumbel_softmax(a, 1.0F, true, rng);
  for (int r = 0; r < 3; ++r) {
    int ones = 0;
    for (int c = 0; c < 4; ++c) {
      const float v = g.value().at(r, c);
      EXPECT_TRUE(v == 0.0F || v == 1.0F);
      ones += v == 1.0F ? 1 : 0;
    }
    EXPECT_EQ(ones, 1);
  }
}

TEST(Autograd, HardMaxStraightThrough) {
  Variable a(Tensor::from({1, 3}, {0.1F, 0.9F, 0.3F}), true);
  Variable h = ops::hard_max_st(a);
  EXPECT_FLOAT_EQ(h.value()[0], 0.0F);
  EXPECT_FLOAT_EQ(h.value()[1], 1.0F);
  ops::sum_all(h).backward();
  // straight-through: all-ones gradient
  EXPECT_FLOAT_EQ(a.grad()[0], 1.0F);
  EXPECT_FLOAT_EQ(a.grad()[2], 1.0F);
}

}  // namespace
