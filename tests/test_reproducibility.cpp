// Bit-level reproducibility: the whole pipeline is deterministic given its
// seeds (a core requirement for the recorded experiment tables).
#include <gtest/gtest.h>

#include "arch/cost_table.h"
#include "evalnet/trainer.h"
#include "search/baselines.h"

namespace {

using namespace dance;

TEST(Reproducibility, BaselineSearchIsDeterministic) {
  data::SyntheticTaskConfig dcfg;
  dcfg.input_dim = 12;
  dcfg.num_classes = 5;
  dcfg.train_samples = 256;
  dcfg.val_samples = 64;
  const auto task = data::make_synthetic_task(dcfg);

  arch::ArchSpace arch_space(arch::cifar10_backbone());
  hwgen::HwSearchSpace hw_space(
      {.pe_min = 8, .pe_max = 10, .rf_min = 16, .rf_max = 32, .rf_step = 16});
  accel::CostModel model;
  arch::CostTable table(arch_space, hw_space, model);

  nas::SuperNetConfig cfg;
  cfg.input_dim = 12;
  cfg.num_classes = 5;
  cfg.width = 16;
  cfg.num_blocks = 9;

  search::BaselineOptions opts;
  opts.search_epochs = 2;
  opts.retrain.epochs = 2;
  opts.seed = 123;
  const auto a = search::run_baseline(task, table, cfg, opts);
  const auto b = search::run_baseline(task, table, cfg, opts);
  EXPECT_EQ(a.architecture, b.architecture);
  EXPECT_EQ(a.hardware, b.hardware);
  EXPECT_DOUBLE_EQ(a.val_accuracy_pct, b.val_accuracy_pct);

  opts.seed = 124;
  const auto c = search::run_baseline(task, table, cfg, opts);
  // Different seed is allowed to (and in practice does) differ somewhere;
  // only assert it stays valid.
  EXPECT_EQ(c.architecture.size(), 9U);
}

TEST(Reproducibility, EvaluatorTrainingIsDeterministic) {
  arch::ArchSpace arch_space(arch::cifar10_backbone());
  hwgen::HwSearchSpace hw_space(
      {.pe_min = 8, .pe_max = 10, .rf_min = 16, .rf_max = 32, .rf_step = 16});
  accel::CostModel model;
  arch::CostTable table(arch_space, hw_space, model);

  auto train_once = [&]() {
    util::Rng rng(55);
    evalnet::CostNet::Options o;
    o.feature_forwarding = false;
    o.hidden_dim = 32;
    evalnet::CostNet net(arch_space.encoding_width(), hw_space.encoding_width(),
                         rng, o);
    auto ds = evalnet::generate_evaluator_dataset(table, accel::edap_cost(),
                                                  120, rng);
    auto [train, val] = evalnet::split_dataset(ds, 0.8);
    evalnet::TrainOptions topts;
    topts.epochs = 5;
    topts.batch_size = 32;
    return evalnet::train_cost_net(net, train, val, topts);
  };
  const auto r1 = train_once();
  const auto r2 = train_once();
  for (int m = 0; m < 3; ++m) {
    EXPECT_DOUBLE_EQ(r1.metric_accuracy_pct[static_cast<std::size_t>(m)],
                     r2.metric_accuracy_pct[static_cast<std::size_t>(m)]);
  }
}

}  // namespace
