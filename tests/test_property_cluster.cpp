// Property-based tests for the serve cluster. Lowercase "cluster" in the
// suite names keeps `ctest -R cluster` selecting these (as
// "property.cluster_*") alongside the unit suites.
//
// The invariants:
//   * ring stability: adding a shard remaps only keys stolen BY the new
//     shard, and only about 1/(N+1) of them; removing a shard leaves every
//     key that was not on the removed shard exactly where it was.
//   * fuzz safety: a byte stream of valid requests, binary garbage and a
//     possibly-truncated tail, delivered in arbitrary chunk sizes, never
//     crashes or desyncs the server — every complete line is answered with
//     exactly the bytes the shared wire pipeline produces, in order, on
//     one surviving connection.
//   * bit-identity: a 2-shard cluster behind a consistent-hash router
//     answers randomized replays (repeats included, so the caches engage)
//     byte-for-byte like a single-process serve::Service.
//   * chaos absorption: with 10% injected faults on every net.* site, a
//     retrying client sees zero errors and correct metrics.
//
// The socket properties are stateful across trials (shared caches, like a
// long-lived server), so they deliberately register no shrinker: shrinking
// would re-run the property against mutated state and lie about the
// counterexample.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

#include "accel/cost_function.h"
#include "arch/backbone.h"
#include "arch/cost_table.h"
#include "cluster/ring.h"
#include "cluster/router.h"
#include "cluster/shard.h"
#include "fault/fault.h"
#include "net/client.h"
#include "net/frame.h"
#include "net/server.h"
#include "net/socket.h"
#include "serve/backend.h"
#include "serve/service.h"
#include "serve/types.h"
#include "serve/wire.h"
#include "testing/property.h"
#include "util/rng.h"

namespace testing_ = dance::testing;

namespace {

using namespace dance;

std::string pbt_socket_path(const char* tag) {
  static std::atomic<int> counter{0};
  return "/tmp/dance_pbt_" + std::to_string(getpid()) + "_" + tag + "_" +
         std::to_string(counter.fetch_add(1)) + ".sock";
}

/// Exact-backend fixture shared by the socket properties (the LUT is
/// immutable once built; services wrap it per test).
struct ExactFixture {
  arch::ArchSpace arch_space{arch::cifar10_backbone()};
  hwgen::HwSearchSpace hw_space{
      {.pe_min = 8, .pe_max = 10, .rf_min = 8, .rf_max = 16, .rf_step = 8}};
  accel::CostModel model;  ///< CostTable keeps a reference; must outlive it
  arch::CostTable table{arch_space, hw_space, model};
};

ExactFixture& fixture() {
  static ExactFixture f;
  return f;
}

std::string arch_line(int id, const arch::Architecture& a) {
  std::string line = "{\"id\": " + std::to_string(id) + ", \"arch\": [";
  for (std::size_t s = 0; s < a.size(); ++s) {
    if (s > 0) line += ", ";
    line += std::to_string(static_cast<int>(a[s]));
  }
  return line + "]}";
}

// --- ring stability ---------------------------------------------------------

struct RingCase {
  int shards = 2;
  int vnodes = 64;
  std::uint64_t key_seed = 0;
};

TEST(cluster_ring, AddOrRemoveOneShardRemapsBoundedFraction) {
  testing_::Generator<RingCase> gen;
  gen.sample = [](util::Rng& rng) {
    RingCase c;
    c.shards = rng.randint(2, 8);
    c.vnodes = 1 << rng.randint(4, 7);  // 16..128
    c.key_seed = static_cast<std::uint64_t>(rng.randint(1, 1 << 30));
    return c;
  };
  gen.show = [](const RingCase& c) {
    std::ostringstream os;
    os << "shards=" << c.shards << " vnodes=" << c.vnodes
       << " key_seed=" << c.key_seed;
    return os.str();
  };

  const auto property = [](const RingCase& c, util::Rng& rng) -> std::string {
    std::vector<int> ids(static_cast<std::size_t>(c.shards));
    for (int i = 0; i < c.shards; ++i) ids[static_cast<std::size_t>(i)] = i;
    const cluster::HashRing before(ids, c.vnodes);

    // Deterministic key sample from the case, not the aux rng, so the
    // failure report pins the exact key set.
    std::vector<std::uint64_t> keys(2000);
    std::uint64_t x = c.key_seed;
    for (auto& k : keys) {
      // splitmix64 stream
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      k = z ^ (z >> 31);
    }

    // Add one shard: the only legal change is "stolen by the newcomer",
    // and the stolen fraction stays near 1/(N+1).
    std::vector<int> grown = ids;
    grown.push_back(c.shards);
    const cluster::HashRing after_add(grown, c.vnodes);
    int moved = 0;
    for (const std::uint64_t k : keys) {
      const int was = before.lookup(k);
      const int now = after_add.lookup(k);
      if (was == now) continue;
      if (now != c.shards) {
        std::ostringstream os;
        os << "adding shard " << c.shards << " moved key " << k
           << " from shard " << was << " to OLD shard " << now;
        return os.str();
      }
      ++moved;
    }
    const double fraction =
        static_cast<double>(moved) / static_cast<double>(keys.size());
    const double fair = 1.0 / static_cast<double>(c.shards + 1);
    if (fraction > 3.0 * fair) {
      std::ostringstream os;
      os << "adding one shard remapped " << fraction << " of keys; fair share "
         << fair << " (bound 3x)";
      return os.str();
    }

    // Remove one shard: every key that was NOT on it keeps its mapping
    // exactly (the defining consistent-hashing property).
    const int removed = rng.randint(0, c.shards - 1);
    std::vector<int> shrunk;
    for (const int id : ids) {
      if (id != removed) shrunk.push_back(id);
    }
    const cluster::HashRing after_remove(shrunk, c.vnodes);
    for (const std::uint64_t k : keys) {
      const int was = before.lookup(k);
      if (was == removed) continue;
      const int now = after_remove.lookup(k);
      if (now != was) {
        std::ostringstream os;
        os << "removing shard " << removed << " moved unrelated key " << k
           << " from shard " << was << " to shard " << now;
        return os.str();
      }
    }
    return "";
  };

  const auto result =
      testing_::check<RingCase>("cluster-ring-stability", gen, property);
  EXPECT_TRUE(result.ok) << result.report;
}

// --- socket fuzz ------------------------------------------------------------

/// One fuzz scenario: a sequence of logical frames plus a chunking plan.
struct FuzzCase {
  std::vector<std::string> lines;  ///< decoded payloads, '\n'-free
  bool truncate_tail = false;      ///< drop the final '\n' (partial frame)
  std::uint64_t chunk_seed = 0;    ///< drives the write-split sizes
};

std::string garbage_token(util::Rng& rng) {
  static const char kAlphabet[] =
      "{}[]\":,. abcdefghijklmnopqrstuvwxyz0123456789-+eE\x01\x7f";
  const int len = rng.randint(0, 40);
  std::string s;
  s.reserve(static_cast<std::size_t>(len));
  for (int i = 0; i < len; ++i) {
    s += kAlphabet[rng.randint(0, static_cast<int>(sizeof(kAlphabet)) - 2)];
  }
  return s;
}

TEST(cluster_fuzz, ServerSurvivesSplitsGarbageAndTruncation) {
  ExactFixture& f = fixture();
  // One long-lived server and one reference service: both see the same
  // line sequence in the same order across every trial, so their caches —
  // and therefore the "cached" response flags — evolve identically.
  static serve::ExactBackend backend(f.table, accel::edap_cost());
  static serve::Service socket_service(backend);
  static serve::Service reference(backend);
  net::Server::Options sopts;
  sopts.workers = 2;
  static net::Server server(
      [&](const std::string& line) {
        return serve::wire::answer_line(line, fixture().arch_space,
                                        socket_service);
      },
      sopts);
  static const net::Endpoint ep =
      server.start(net::Endpoint::unix_path(pbt_socket_path("fuzz")));

  static std::atomic<int> next_id{0};

  testing_::Generator<FuzzCase> gen;
  gen.sample = [](util::Rng& rng) {
    FuzzCase c;
    const int n = rng.randint(1, 12);
    for (int i = 0; i < n; ++i) {
      switch (rng.randint(0, 3)) {
        case 0:
        case 1:  // valid request (weighted: the happy path must stay hot)
          c.lines.push_back(arch_line(
              next_id.fetch_add(1), fixture().arch_space.random(rng)));
          break;
        case 2:  // garbage bytes
          c.lines.push_back(garbage_token(rng));
          break;
        default:  // blank
          c.lines.emplace_back();
          break;
      }
    }
    c.truncate_tail = rng.randint(0, 3) == 0;
    c.chunk_seed = static_cast<std::uint64_t>(rng.randint(1, 1 << 30));
    return c;
  };
  gen.show = [](const FuzzCase& c) {
    std::ostringstream os;
    os << c.lines.size() << " frames (truncate_tail=" << c.truncate_tail
       << " chunk_seed=" << c.chunk_seed << "):";
    for (const auto& l : c.lines) os << "\n  [" << l << "]";
    return os.str();
  };
  // No shrinker: trials share server/cache state (see file comment).

  const auto property = [](const FuzzCase& c, util::Rng&) -> std::string {
    // Expected transcript: the wire pipeline over the reference service,
    // in frame order. A truncated tail frame is never completed, so the
    // server owes nothing for it (and the reference must skip it too).
    std::vector<std::string> expected;
    const std::size_t complete =
        c.lines.size() - (c.truncate_tail ? 1U : 0U);
    std::string stream;
    for (std::size_t i = 0; i < c.lines.size(); ++i) {
      stream += c.lines[i];
      if (i < complete) stream += '\n';
      if (i < complete) {
        const std::string r = serve::wire::answer_line(
            c.lines[i], fixture().arch_space, reference);
        if (!r.empty()) expected.push_back(r);
      }
    }

    // Deliver the stream in adversarial chunk sizes, then half-close so
    // the server sees EOF but can still answer.
    net::Fd fd = net::dial(ep);
    util::Rng chunk_rng(c.chunk_seed);
    std::size_t off = 0;
    while (off < stream.size()) {
      const std::size_t n = std::min<std::size_t>(
          static_cast<std::size_t>(chunk_rng.randint(1, 7)),
          stream.size() - off);
      net::write_all(fd.get(), stream.data() + off, n);
      off += n;
    }
    ::shutdown(fd.get(), SHUT_WR);

    net::LineReader reader(1 << 20);
    for (std::size_t i = 0; i < expected.size(); ++i) {
      const auto got = net::read_line(fd.get(), reader);
      if (!got.has_value()) {
        std::ostringstream os;
        os << "connection died after " << i << " of " << expected.size()
           << " responses";
        return os.str();
      }
      if (*got != expected[i]) {
        std::ostringstream os;
        os << "response " << i << " desynced:\n  got  [" << *got
           << "]\n  want [" << expected[i] << "]";
        return os.str();
      }
    }
    // No extra bytes owed: EOF must follow the last response.
    const auto extra = net::read_line(fd.get(), reader);
    if (extra.has_value()) {
      return "server produced an unexpected extra response: [" + *extra + "]";
    }
    return "";
  };

  const auto result =
      testing_::check<FuzzCase>("cluster-socket-fuzz", gen, property);
  EXPECT_TRUE(result.ok) << result.report;
  server.stop();
}

// --- end-to-end bit-identity ------------------------------------------------

/// A replay: indices into a growing shared pool of request lines, so
/// repeats (and therefore cache hits) occur within and across trials.
struct ReplayCase {
  std::vector<std::string> lines;
};

TEST(cluster_identity, TwoShardClusterMatchesSingleProcessByteForByte) {
  ExactFixture& f = fixture();
  static serve::ExactBackend backend(f.table, accel::edap_cost());
  static serve::Service s0(backend);
  static serve::Service s1(backend);
  static serve::Service single(backend);  // the single-process oracle
  static cluster::ShardServer shard0(s0, f.arch_space,
                                     cluster::ShardServer::Options{});
  static cluster::ShardServer shard1(s1, f.arch_space,
                                     cluster::ShardServer::Options{});
  static const net::Endpoint ep0 =
      shard0.start(net::Endpoint::unix_path(pbt_socket_path("id0")));
  static const net::Endpoint ep1 =
      shard1.start(net::Endpoint::unix_path(pbt_socket_path("id1")));
  static cluster::Router router(f.arch_space, {{0, ep0}, {1, ep1}});

  // The shared pool: repeats draw from here so both sides see cache hits.
  static std::vector<std::string> pool;
  static std::atomic<int> next_id{0};

  testing_::Generator<ReplayCase> gen;
  gen.sample = [](util::Rng& rng) {
    ReplayCase c;
    const int n = rng.randint(4, 16);
    for (int i = 0; i < n; ++i) {
      const int kind = rng.randint(0, 9);
      if (kind < 5 || pool.empty()) {  // fresh architecture
        pool.push_back(arch_line(next_id.fetch_add(1),
                                 fixture().arch_space.random(rng)));
        c.lines.push_back(pool.back());
      } else if (kind < 9) {  // repeat: must come back "cached" everywhere
        c.lines.push_back(
            pool[static_cast<std::size_t>(rng.randint(
                0, static_cast<int>(pool.size()) - 1))]);
      } else {  // malformed: the router answers these itself
        c.lines.push_back("{\"id\": " + std::to_string(next_id.fetch_add(1)) +
                          ", \"arch\": [1, 2]}");
      }
    }
    return c;
  };
  gen.show = [](const ReplayCase& c) {
    std::ostringstream os;
    os << c.lines.size() << " lines:";
    for (const auto& l : c.lines) os << "\n  " << l;
    return os.str();
  };
  // No shrinker: trials share cluster/cache state (see file comment).

  const auto property = [](const ReplayCase& c, util::Rng&) -> std::string {
    for (std::size_t i = 0; i < c.lines.size(); ++i) {
      const std::string via_cluster = router.handle_line(c.lines[i]);
      const std::string via_single =
          serve::wire::answer_line(c.lines[i], fixture().arch_space, single);
      if (via_cluster != via_single) {
        std::ostringstream os;
        os << "line " << i << " diverged:\n  request [" << c.lines[i]
           << "]\n  cluster [" << via_cluster << "]\n  single  ["
           << via_single << "]";
        return os.str();
      }
    }
    return "";
  };

  const auto result = testing_::check<ReplayCase>(
      "cluster-single-process-bit-identity", gen, property);
  EXPECT_TRUE(result.ok) << result.report;
  EXPECT_TRUE(shard0.drain_and_stop(10000));
  EXPECT_TRUE(shard1.drain_and_stop(10000));
}

// --- chaos over sockets -----------------------------------------------------

/// Replays under injected connection faults. A resend can legitimately turn
/// a cache miss into a hit (the first answer was computed, then lost on the
/// wire), so the "cached" flag is masked before comparing; everything else
/// must match the fault-free oracle byte-for-byte.
std::string mask_cached(std::string line) {
  for (const char* flag : {"\"cached\": true", "\"cached\": false"}) {
    const auto at = line.find(flag);
    if (at != std::string::npos) {
      line.replace(at, std::string(flag).size(), "\"cached\": ?");
    }
  }
  return line;
}

struct ChaosCase {
  std::vector<std::string> lines;
  std::uint64_t fault_seed = 0;
};

TEST(cluster_chaos, RetryingClientAbsorbsTenPercentNetFaults) {
  ExactFixture& f = fixture();
  static serve::ExactBackend backend(f.table, accel::edap_cost());
  static std::atomic<std::uint64_t> faults_taken{0};
  static std::atomic<int> next_id{0};

  testing_::Generator<ChaosCase> gen;
  gen.sample = [](util::Rng& rng) {
    ChaosCase c;
    const int n = rng.randint(8, 24);
    std::vector<std::string> pool;
    for (int i = 0; i < n; ++i) {
      if (pool.empty() || rng.randint(0, 2) != 0) {
        pool.push_back(arch_line(next_id.fetch_add(1),
                                 fixture().arch_space.random(rng)));
        c.lines.push_back(pool.back());
      } else {
        c.lines.push_back(
            pool[static_cast<std::size_t>(rng.randint(
                0, static_cast<int>(pool.size()) - 1))]);
      }
    }
    c.fault_seed = static_cast<std::uint64_t>(rng.randint(1, 1 << 30));
    return c;
  };
  gen.show = [](const ChaosCase& c) {
    std::ostringstream os;
    os << c.lines.size() << " lines, fault_seed=" << c.fault_seed;
    return os.str();
  };
  // No shrinker: server construction per trial is heavy and the property
  // depends on the injector's visit sequence, not the replay shape.

  const auto property = [](const ChaosCase& c, util::Rng&) -> std::string {
    ExactFixture& fx = fixture();
    // Fault-free oracle for this trial's replay.
    serve::Service oracle(backend);
    // The shard under chaos: 10% error on every connection-layer site.
    serve::Service service(backend);
    net::Server::Options sopts;
    sopts.workers = 2;
    sopts.injector = std::make_shared<fault::FaultInjector>(
        fault::FaultSpec::parse(
            "net.accept:error=0.1;net.read:error=0.1;net.write:error=0.1"),
        c.fault_seed);
    cluster::ShardServer::Options shopts;
    shopts.net = sopts;
    cluster::ShardServer shard(service, fx.arch_space, shopts);
    const auto ep =
        shard.start(net::Endpoint::unix_path(pbt_socket_path("chaos")));

    net::Client::Options copts;
    copts.retries = 12;  // generous: the point is zero caller-visible errors
    copts.backoff_us = 200;
    net::Client client(ep, copts);

    std::string failure;
    for (std::size_t i = 0; i < c.lines.size() && failure.empty(); ++i) {
      std::string got;
      try {
        got = client.roundtrip(c.lines[i]);
      } catch (const net::NetError& e) {
        std::ostringstream os;
        os << "caller-visible error on line " << i << ": " << e.what();
        failure = os.str();
        break;
      }
      const std::string want =
          serve::wire::answer_line(c.lines[i], fx.arch_space, oracle);
      if (mask_cached(got) != mask_cached(want)) {
        std::ostringstream os;
        os << "line " << i << " wrong under faults:\n  got  [" << got
           << "]\n  want [" << want << "]";
        failure = os.str();
      }
    }
    faults_taken.fetch_add(shard.net_stats().faults);
    (void)shard.drain_and_stop(10000);
    return failure;
  };

  // Per-trial servers are expensive; a reduced trial count still lands
  // hundreds of injected faults (asserted below, so the test can never go
  // vacuously green).
  auto cfg = testing_::PbtConfig::from_env();
  cfg.trials = std::min(cfg.trials, 20);
  const auto result =
      testing_::check<ChaosCase>("cluster-chaos-absorption", gen, property, cfg);
  EXPECT_TRUE(result.ok) << result.report;
  EXPECT_GT(faults_taken.load(), 0U) << "chaos run injected no faults";
}

}  // namespace
