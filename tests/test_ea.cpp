#include <gtest/gtest.h>

#include "arch/cost_table.h"
#include "search/ea.h"

namespace {

using namespace dance;

TEST(EaCoExploration, RunsAndCountsCandidates) {
  data::SyntheticTaskConfig dcfg;
  dcfg.input_dim = 12;
  dcfg.num_classes = 6;
  dcfg.train_samples = 384;
  dcfg.val_samples = 128;
  const data::SyntheticTask task = data::make_synthetic_task(dcfg);

  arch::ArchSpace arch_space(arch::cifar10_backbone());
  hwgen::HwSearchSpace hw_space(
      {.pe_min = 8, .pe_max = 12, .rf_min = 8, .rf_max = 32, .rf_step = 8});
  accel::CostModel model;
  arch::CostTable table(arch_space, hw_space, model);

  nas::SuperNetConfig net_config;
  net_config.input_dim = 12;
  net_config.num_classes = 6;
  net_config.width = 24;
  net_config.num_blocks = 9;

  search::EaOptions opts;
  opts.population = 4;
  opts.generations = 2;
  opts.proxy_epochs = 1;
  opts.retrain.epochs = 2;
  const search::SearchOutcome out =
      search::run_ea_coexploration(task, table, net_config, opts);
  // population + generations * population proxy trainings
  EXPECT_EQ(out.trained_candidates, 4 + 2 * 4);
  EXPECT_EQ(out.architecture.size(), 9U);
  EXPECT_NO_THROW(hw_space.index_of(out.hardware));
  EXPECT_GT(out.metrics.latency_ms, 0.0);
  // Reported metrics must match the cost table for the reported design.
  const auto check =
      table.metrics(hw_space.index_of(out.hardware), out.architecture);
  EXPECT_NEAR(check.edap(), out.metrics.edap(), 1e-12);
}

TEST(EaCoExploration, BadOptionsThrow) {
  data::SyntheticTaskConfig dcfg;
  dcfg.train_samples = 32;
  dcfg.val_samples = 16;
  const data::SyntheticTask task = data::make_synthetic_task(dcfg);
  arch::ArchSpace arch_space(arch::cifar10_backbone());
  hwgen::HwSearchSpace hw_space(
      {.pe_min = 8, .pe_max = 9, .rf_min = 8, .rf_max = 8, .rf_step = 4});
  accel::CostModel model;
  arch::CostTable table(arch_space, hw_space, model);
  nas::SuperNetConfig cfg;
  cfg.num_blocks = 9;
  search::EaOptions opts;
  opts.population = 1;  // too small
  EXPECT_THROW(search::run_ea_coexploration(task, table, cfg, opts),
               std::invalid_argument);
}

}  // namespace
