#include <gtest/gtest.h>

#include "accel/cost_function.h"
#include "hwgen/exhaustive.h"
#include "hwgen/random_search.h"

namespace {

using namespace dance;
using namespace dance::hwgen;

std::vector<accel::ConvShape> tiny_network() {
  return {
      accel::ConvShape{1, 32, 16, 16, 16, 3, 3, 1, 1},
      accel::ConvShape{1, 64, 64, 8, 8, 5, 5, 1, 64},
      accel::ConvShape{1, 48, 64, 8, 8, 1, 1, 1, 1},
  };
}

class HeuristicSearchTest : public ::testing::Test {
 protected:
  HeuristicSearchTest()
      : space_({.pe_min = 8, .pe_max = 14, .rf_min = 8, .rf_max = 32,
                .rf_step = 8}),
        exact_(space_, model_) {}

  HwSearchSpace space_;
  accel::CostModel model_;
  ExhaustiveSearch exact_;
  accel::HwCostFn cost_fn_ = accel::edap_cost();
};

TEST_F(HeuristicSearchTest, RandomSearchNeverBeatsExhaustive) {
  util::Rng rng(5);
  RandomSearch rs(space_, model_, /*budget=*/64);
  const auto layers = tiny_network();
  const double exact_cost = exact_.run(layers, cost_fn_).cost;
  for (int trial = 0; trial < 3; ++trial) {
    const HwSearchResult r = rs.run(layers, cost_fn_, rng);
    EXPECT_GE(r.cost, exact_cost - 1e-12);
    EXPECT_DOUBLE_EQ(cost_fn_(r.metrics), r.cost);
  }
}

TEST_F(HeuristicSearchTest, RandomSearchImprovesWithBudget) {
  const auto layers = tiny_network();
  // Average over seeds: a 128-sample search should do at least as well as a
  // 2-sample search in expectation; we assert on the mean of a few trials.
  double small_total = 0.0;
  double large_total = 0.0;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    util::Rng r1(seed);
    util::Rng r2(seed);
    small_total += RandomSearch(space_, model_, 2).run(layers, cost_fn_, r1).cost;
    large_total += RandomSearch(space_, model_, 128).run(layers, cost_fn_, r2).cost;
  }
  EXPECT_LE(large_total, small_total + 1e-12);
}

TEST_F(HeuristicSearchTest, AnnealingNearOptimal) {
  util::Rng rng(7);
  SimulatedAnnealing sa(space_, model_);
  const auto layers = tiny_network();
  const double exact_cost = exact_.run(layers, cost_fn_).cost;
  const HwSearchResult r = sa.run(layers, cost_fn_, rng);
  EXPECT_GE(r.cost, exact_cost - 1e-12);
  EXPECT_LE(r.cost, 1.3 * exact_cost);
}

TEST_F(HeuristicSearchTest, AnnealingRespectsSpaceBounds) {
  util::Rng rng(8);
  SimulatedAnnealing sa(space_, model_, {.steps = 200});
  const HwSearchResult r = sa.run(tiny_network(), cost_fn_, rng);
  EXPECT_NO_THROW(space_.index_of(r.config));
}

TEST_F(HeuristicSearchTest, BadOptionsThrow) {
  EXPECT_THROW(RandomSearch(space_, model_, 0), std::invalid_argument);
  EXPECT_THROW(SimulatedAnnealing(space_, model_, {.steps = 0}),
               std::invalid_argument);
  EXPECT_THROW(SimulatedAnnealing(space_, model_, {.cooling = 1.5}),
               std::invalid_argument);
  util::Rng rng(1);
  RandomSearch rs(space_, model_, 4);
  EXPECT_THROW(rs.run({}, cost_fn_, rng), std::invalid_argument);
}

TEST(CostBreakdown, TotalsAgreeWithLayerCost) {
  accel::CostModel model;
  const accel::ConvShape s{1, 64, 64, 32, 32, 3, 3, 1, 1};
  for (auto df : accel::kAllDataflows) {
    const accel::AcceleratorConfig cfg{12, 20, 24, df};
    const auto b = model.explain(cfg, s);
    const auto lc = model.layer_cost(cfg, s);
    EXPECT_DOUBLE_EQ(b.total_cycles(), lc.cycles);
    EXPECT_DOUBLE_EQ(b.total_energy_pj(), lc.energy_pj);
    // Components are non-negative and the bottleneck label is consistent.
    EXPECT_GE(b.mac_pj, 0.0);
    EXPECT_GE(b.static_pj, 0.0);
    const std::string bn = b.bottleneck();
    if (bn == "compute") {
      EXPECT_DOUBLE_EQ(b.total_cycles(), b.compute_cycles);
    } else if (bn == "gb") {
      EXPECT_DOUBLE_EQ(b.total_cycles(), b.gb_cycles);
    } else {
      EXPECT_DOUBLE_EQ(b.total_cycles(), b.dram_cycles);
    }
  }
}

TEST(CostBreakdown, MacEnergyMatchesMacCount) {
  accel::CostModel model;
  const accel::ConvShape s{1, 16, 8, 8, 8, 3, 3, 1, 1};
  const accel::AcceleratorConfig cfg{8, 8, 16, accel::Dataflow::kRowStationary};
  const auto b = model.explain(cfg, s);
  EXPECT_DOUBLE_EQ(b.mac_pj,
                   static_cast<double>(s.macs()) * model.tech().mac_energy_pj);
  EXPECT_DOUBLE_EQ(b.rf_accesses, 3.0 * static_cast<double>(s.macs()));
}

}  // namespace
