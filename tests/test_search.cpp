#include <gtest/gtest.h>

#include "arch/cost_table.h"
#include "evalnet/trainer.h"
#include "search/baselines.h"
#include "search/cost_term.h"
#include "search/dance.h"
#include "search/rl.h"
#include "search/warmup.h"

namespace {

using namespace dance;
using search::CostKind;

TEST(Warmup, HoldsThenRamps) {
  const search::LambdaWarmup w(0.0F, 2.0F, 5, 4);
  EXPECT_FLOAT_EQ(w.value(0), 0.0F);
  EXPECT_FLOAT_EQ(w.value(4), 0.0F);
  EXPECT_FLOAT_EQ(w.value(5), 0.0F);   // ramp starts
  EXPECT_FLOAT_EQ(w.value(7), 1.0F);   // halfway up
  EXPECT_FLOAT_EQ(w.value(9), 2.0F);
  EXPECT_FLOAT_EQ(w.value(100), 2.0F);
}

TEST(Warmup, NonZeroInitial) {
  const search::LambdaWarmup w(0.5F, 1.5F, 2, 2);
  EXPECT_FLOAT_EQ(w.value(1), 0.5F);
  EXPECT_FLOAT_EQ(w.value(3), 1.0F);
}

TEST(CostTerm, LinearMatchesScalarFn) {
  tensor::Variable metrics(
      tensor::Tensor::from({1, 3}, {2.0F, 3.0F, 4.0F}), true);
  accel::LinearCostWeights w{1.0, 2.0, 0.5};
  const tensor::Variable cost =
      search::hw_cost_variable(metrics, CostKind::kLinear, w);
  EXPECT_NEAR(cost.value()[0], 1.0 * 2.0 + 2.0 * 3.0 + 0.5 * 4.0, 1e-5);
  const accel::HwCostFn fn = search::make_cost_fn(CostKind::kLinear, w);
  EXPECT_NEAR(fn(accel::CostMetrics{2.0, 3.0, 4.0}), cost.value()[0], 1e-5);
}

TEST(CostTerm, EdapMatchesScalarFnAndBackprops) {
  tensor::Variable metrics(
      tensor::Tensor::from({1, 3}, {2.0F, 3.0F, 4.0F}), true);
  const tensor::Variable cost =
      search::hw_cost_variable(metrics, CostKind::kEdap);
  EXPECT_NEAR(cost.value()[0], 24.0, 1e-4);
  tensor::ops::sum_all(cost).backward();
  // d(L*E*A)/dL = E*A etc.
  EXPECT_NEAR(metrics.grad()[0], 12.0F, 1e-4F);
  EXPECT_NEAR(metrics.grad()[1], 8.0F, 1e-4F);
  EXPECT_NEAR(metrics.grad()[2], 6.0F, 1e-4F);
}

TEST(CostTerm, Names) {
  EXPECT_STREQ(search::to_string(CostKind::kLinear), "linear");
  EXPECT_STREQ(search::to_string(CostKind::kEdap), "EDAP");
}

/// Shared fixture for the (slow) integration smokes: tiny task, tiny
/// hardware space, tiny supernet.
class SearchIntegration : public ::testing::Test {
 protected:
  SearchIntegration()
      : arch_space_(arch::cifar10_backbone()),
        hw_space_({.pe_min = 8, .pe_max = 12, .rf_min = 8, .rf_max = 32,
                   .rf_step = 8}),
        table_(arch_space_, hw_space_, model_) {
    data::SyntheticTaskConfig dcfg;
    dcfg.input_dim = 12;
    dcfg.num_classes = 6;
    dcfg.train_samples = 512;
    dcfg.val_samples = 192;
    task_ = data::make_synthetic_task(dcfg);

    net_config_.input_dim = 12;
    net_config_.num_classes = 6;
    net_config_.width = 24;
    net_config_.num_blocks = 9;  // must match the backbone's searchable count
  }

  arch::ArchSpace arch_space_;
  hwgen::HwSearchSpace hw_space_;
  accel::CostModel model_;
  arch::CostTable table_;
  data::SyntheticTask task_;
  nas::SuperNetConfig net_config_;
};

TEST_F(SearchIntegration, BaselineProducesValidOutcome) {
  search::BaselineOptions opts;
  opts.search_epochs = 3;
  opts.batch_size = 128;
  opts.retrain.epochs = 6;
  const search::SearchOutcome out =
      search::run_baseline(task_, table_, net_config_, opts);
  EXPECT_EQ(out.architecture.size(), 9U);
  EXPECT_EQ(out.trained_candidates, 1);
  EXPECT_GT(out.metrics.latency_ms, 0.0);
  EXPECT_GT(out.val_accuracy_pct, 100.0 / 6.0);  // better than chance
  // Reported hardware must be the exact optimum for the reported arch.
  const auto exact = table_.optimal(out.architecture, accel::edap_cost());
  EXPECT_EQ(exact.config, out.hardware);
}

TEST_F(SearchIntegration, FlopsPenaltyShrinksNetwork) {
  search::BaselineOptions opts;
  opts.search_epochs = 4;
  opts.retrain.epochs = 2;
  opts.seed = 3;
  const auto plain = search::run_baseline(task_, table_, net_config_, opts);
  opts.flops_weight = 3.0F;  // strong penalty
  const auto penalized = search::run_baseline(task_, table_, net_config_, opts);
  EXPECT_LE(arch_space_.macs(penalized.architecture),
            arch_space_.macs(plain.architecture));
}

TEST_F(SearchIntegration, DanceRunsAndReportsExactHardware) {
  util::Rng rng(21);
  evalnet::Evaluator::Options eopts;
  eopts.hwgen.hidden_dim = 32;
  eopts.cost.hidden_dim = 32;
  evalnet::Evaluator evaluator(arch_space_.encoding_width(), hw_space_, rng,
                               eopts);
  // Quick pre-training so the evaluator is not random noise.
  auto ds = evalnet::generate_evaluator_dataset(table_, accel::edap_cost(), 200,
                                                rng);
  auto [train, val] = evalnet::split_dataset(ds, 0.8);
  evalnet::TrainOptions topts;
  topts.epochs = 8;
  topts.batch_size = 64;
  evalnet::train_hwgen_net(evaluator.hwgen_net(), train, val, topts);
  topts.lr = 3e-3F;
  evalnet::train_cost_net(evaluator.cost_net(), train, val, topts);

  search::DanceOptions opts;
  opts.search_epochs = 4;
  opts.warmup_epochs = 1;
  opts.lambda2 = 0.5F;
  opts.retrain.epochs = 6;
  search::DanceSearch dance(task_, table_, evaluator, net_config_, opts);
  const search::SearchOutcome out = dance.run();
  EXPECT_EQ(out.architecture.size(), 9U);
  EXPECT_EQ(out.trained_candidates, 1);
  const auto exact = table_.optimal(out.architecture, accel::edap_cost());
  EXPECT_EQ(exact.config, out.hardware);
  EXPECT_NEAR(exact.metrics.edap(), out.metrics.edap(), 1e-9);
  EXPECT_FALSE(dance.final_probs().empty());
}

TEST_F(SearchIntegration, RlCountsTrainedCandidates) {
  search::RlOptions opts;
  opts.num_candidates = 6;
  opts.proxy_epochs = 1;
  opts.retrain.epochs = 2;
  const search::SearchOutcome out =
      search::run_rl_coexploration(task_, table_, net_config_, opts);
  EXPECT_EQ(out.trained_candidates, 6);
  EXPECT_EQ(out.architecture.size(), 9U);
  // The RL candidate's hardware is part of the sampled joint design.
  EXPECT_NO_THROW(hw_space_.index_of(out.hardware));
}

}  // namespace
