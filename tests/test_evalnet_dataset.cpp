// Distributional and determinism properties of the evaluator ground-truth
// corpus generation.
#include <gtest/gtest.h>

#include <set>

#include "accel/cost_function.h"
#include "arch/cost_table.h"
#include "evalnet/dataset.h"

namespace {

using namespace dance;

class EvalDatasetTest : public ::testing::Test {
 protected:
  EvalDatasetTest()
      : arch_space_(arch::cifar10_backbone()),
        hw_space_({.pe_min = 8, .pe_max = 14, .rf_min = 8, .rf_max = 48,
                   .rf_step = 8}),
        table_(arch_space_, hw_space_, model_) {}

  arch::ArchSpace arch_space_;
  hwgen::HwSearchSpace hw_space_;
  accel::CostModel model_;
  arch::CostTable table_;
};

TEST_F(EvalDatasetTest, DeterministicGivenSeed) {
  util::Rng r1(99);
  util::Rng r2(99);
  const auto a = evalnet::generate_evaluator_dataset(table_, accel::edap_cost(),
                                                     30, r1);
  const auto b = evalnet::generate_evaluator_dataset(table_, accel::edap_cost(),
                                                     30, r2);
  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (std::size_t i = 0; i < a.samples.size(); ++i) {
    EXPECT_EQ(a.samples[i].arch_enc, b.samples[i].arch_enc);
    EXPECT_EQ(a.samples[i].hw_labels, b.samples[i].hw_labels);
    EXPECT_DOUBLE_EQ(a.samples[i].metrics[0], b.samples[i].metrics[0]);
  }
}

TEST_F(EvalDatasetTest, ArchitecturesAreDiverse) {
  util::Rng rng(7);
  const auto ds = evalnet::generate_evaluator_dataset(table_, accel::edap_cost(),
                                                      50, rng);
  std::set<std::vector<float>> distinct;
  for (const auto& s : ds.samples) distinct.insert(s.arch_enc);
  EXPECT_GT(distinct.size(), 45U);  // collisions vanishingly unlikely
}

TEST_F(EvalDatasetTest, MetricsArePositiveAndOrdered) {
  util::Rng rng(8);
  const auto ds = evalnet::generate_evaluator_dataset(table_, accel::edap_cost(),
                                                      40, rng);
  for (const auto& s : ds.samples) {
    EXPECT_GT(s.metrics[0], 0.0);  // latency
    EXPECT_GT(s.metrics[1], 0.0);  // energy
    EXPECT_GT(s.metrics[2], 0.0);  // area
  }
}

TEST_F(EvalDatasetTest, DifferentCostFnsYieldDifferentOptima) {
  // The EDAP-optimal and latency-optimal labels must differ somewhere;
  // otherwise the hardware generation problem would be degenerate.
  util::Rng r1(9);
  util::Rng r2(9);
  const auto edap = evalnet::generate_evaluator_dataset(
      table_, accel::edap_cost(), 40, r1);
  const auto lat = evalnet::generate_evaluator_dataset(
      table_, [](const accel::CostMetrics& m) { return m.latency_ms; }, 40, r2);
  int diff = 0;
  for (std::size_t i = 0; i < edap.samples.size(); ++i) {
    if (edap.samples[i].hw_labels != lat.samples[i].hw_labels) ++diff;
  }
  EXPECT_GT(diff, 0);
}

TEST_F(EvalDatasetTest, LabelsWithinHeadRanges) {
  util::Rng rng(10);
  const auto ds = evalnet::generate_evaluator_dataset(table_, accel::edap_cost(),
                                                      25, rng);
  for (const auto& s : ds.samples) {
    EXPECT_LT(s.hw_labels[0], hw_space_.num_pe_choices());
    EXPECT_LT(s.hw_labels[1], hw_space_.num_pe_choices());
    EXPECT_LT(s.hw_labels[2], hw_space_.num_rf_choices());
    EXPECT_LT(s.hw_labels[3], 3);
    for (int h = 0; h < 4; ++h) EXPECT_GE(s.hw_labels[static_cast<std::size_t>(h)], 0);
  }
}

}  // namespace
