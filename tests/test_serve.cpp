// Unit tests for the dance::serve cost-query service layer: sharded LRU
// cache semantics, micro-batcher coalescing, backend correctness against the
// ground-truth toolchain and the Service facade wiring. Suite names carry a
// lowercase "serve_" prefix on purpose: `ctest -R serve` selects exactly the
// serve suites (including the concurrent property suites, which CI runs
// under TSan).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <initializer_list>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "accel/cost_function.h"
#include "arch/backbone.h"
#include "arch/cost_table.h"
#include "serve/backend.h"
#include "serve/batcher.h"
#include "serve/cache.h"
#include "serve/service.h"
#include "util/rng.h"

namespace {

using namespace dance;
using serve::Request;
using serve::Response;

serve::ShardedLruCache::Key key_of(std::initializer_list<float> vals) {
  return std::vector<float>(vals);
}

Response response_with_latency(double latency_ms) {
  Response r;
  r.metrics.latency_ms = latency_ms;
  return r;
}

TEST(serve_cache, PutGetRoundTripAndCounters) {
  serve::ShardedLruCache cache(8, 2);
  EXPECT_FALSE(cache.get(key_of({1.0F})).has_value());
  cache.put(key_of({1.0F}), response_with_latency(3.5));
  const auto hit = cache.get(key_of({1.0F}));
  ASSERT_TRUE(hit.has_value());
  EXPECT_DOUBLE_EQ(hit->metrics.latency_ms, 3.5);

  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1U);
  EXPECT_EQ(stats.misses, 1U);
  EXPECT_EQ(stats.entries, 1U);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 0.5);
}

TEST(serve_cache, EvictsLeastRecentlyUsedPerShard) {
  // One shard, capacity 2: inserting a third key evicts the stalest.
  serve::ShardedLruCache cache(2, 1);
  cache.put(key_of({1.0F}), response_with_latency(1.0));
  cache.put(key_of({2.0F}), response_with_latency(2.0));
  // Touch key 1 so key 2 becomes the LRU entry.
  ASSERT_TRUE(cache.get(key_of({1.0F})).has_value());
  cache.put(key_of({3.0F}), response_with_latency(3.0));

  EXPECT_TRUE(cache.get(key_of({1.0F})).has_value());
  EXPECT_FALSE(cache.get(key_of({2.0F})).has_value());
  EXPECT_TRUE(cache.get(key_of({3.0F})).has_value());
  EXPECT_EQ(cache.stats().evictions, 1U);
  EXPECT_EQ(cache.stats().entries, 2U);
}

TEST(serve_cache, OverwriteRefreshesInsteadOfGrowing) {
  serve::ShardedLruCache cache(2, 1);
  cache.put(key_of({1.0F}), response_with_latency(1.0));
  cache.put(key_of({1.0F}), response_with_latency(9.0));
  EXPECT_EQ(cache.stats().entries, 1U);
  EXPECT_DOUBLE_EQ(cache.get(key_of({1.0F}))->metrics.latency_ms, 9.0);
  EXPECT_EQ(cache.stats().evictions, 0U);
}

TEST(serve_cache, ShardCountClampsToCapacity) {
  // 64 shards over 4 entries must not create starved zero-capacity shards.
  serve::ShardedLruCache cache(4, 64);
  EXPECT_LE(cache.num_shards(), 4);
  for (float v = 0.0F; v < 4.0F; v += 1.0F) {
    cache.put(key_of({v}), response_with_latency(v));
  }
  int present = 0;
  for (float v = 0.0F; v < 4.0F; v += 1.0F) {
    present += cache.get(key_of({v})).has_value() ? 1 : 0;
  }
  EXPECT_GE(present, 1);
  EXPECT_LE(cache.stats().entries, 4U);
}

TEST(serve_cache, ClearDropsEntriesAndCounters) {
  serve::ShardedLruCache cache(4, 2);
  cache.put(key_of({1.0F}), response_with_latency(1.0));
  (void)cache.get(key_of({1.0F}));
  cache.clear();
  const auto stats = cache.stats();
  EXPECT_EQ(stats.entries, 0U);
  EXPECT_EQ(stats.hits, 0U);
  EXPECT_FALSE(cache.get(key_of({1.0F})).has_value());
}

TEST(serve_cache, NegativeZeroCanonicalizesToPositiveZero) {
  const std::vector<float> with_neg = {-0.0F, 1.0F};
  const std::vector<float> with_pos = {0.0F, 1.0F};
  EXPECT_EQ(serve::canonical_key(with_neg), with_pos);
  EXPECT_EQ(serve::KeyHash{}(serve::canonical_key(with_neg)),
            serve::KeyHash{}(with_pos));
}

/// Deterministic fake backend: answers latency = sum of the encoding, and
/// records every batch size it was asked for.
class FakeBackend : public serve::CostQueryBackend {
 public:
  std::vector<Response> query_batch(
      std::span<const Request> requests) override {
    {
      std::lock_guard<std::mutex> lk(mu_);
      batch_sizes_.push_back(requests.size());
    }
    calls_ += requests.size();
    std::vector<Response> out;
    out.reserve(requests.size());
    for (const Request& r : requests) {
      double sum = 0.0;
      for (float v : r.encoding) sum += v;
      out.push_back(response_with_latency(sum));
    }
    return out;
  }
  const char* name() const override { return "fake"; }

  std::vector<std::size_t> batch_sizes() {
    std::lock_guard<std::mutex> lk(mu_);
    return batch_sizes_;
  }
  std::atomic<std::uint64_t> calls_{0};

 private:
  std::mutex mu_;
  std::vector<std::size_t> batch_sizes_;
};

TEST(serve_batcher, InlineModeAnswersWithoutWorker) {
  FakeBackend backend;
  serve::MicroBatcher batcher(backend, {.max_batch = 1, .max_wait_us = 0});
  const Response r = batcher.query(Request{{2.0F, 3.0F}});
  EXPECT_DOUBLE_EQ(r.metrics.latency_ms, 5.0);
  EXPECT_EQ(batcher.stats().batches, 1U);
  EXPECT_EQ(batcher.stats().max_batch_seen, 1U);
}

TEST(serve_batcher, CoalescesConcurrentRequests) {
  FakeBackend backend;
  // Generous deadline: the count trigger should fire, not the clock.
  serve::MicroBatcher batcher(backend, {.max_batch = 4, .max_wait_us = 200000});
  constexpr int kClients = 8;
  std::vector<Request> requests;
  requests.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    requests.push_back(Request{{static_cast<float>(i), 1.0F}});
  }
  std::vector<Response> responses(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] { responses[static_cast<std::size_t>(i)] =
                                      batcher.query(requests[static_cast<std::size_t>(i)]); });
  }
  for (auto& t : clients) t.join();

  for (int i = 0; i < kClients; ++i) {
    EXPECT_DOUBLE_EQ(responses[static_cast<std::size_t>(i)].metrics.latency_ms,
                     static_cast<double>(i) + 1.0);
  }
  const auto stats = batcher.stats();
  EXPECT_EQ(stats.requests, static_cast<std::uint64_t>(kClients));
  EXPECT_LE(stats.max_batch_seen, 4U);
  // 8 requests with batches capped at 4 means at least two backend calls.
  EXPECT_GE(stats.batches, 2U);
}

TEST(serve_batcher, DeadlineFlushesPartialBatch) {
  FakeBackend backend;
  // Count trigger unreachable (max_batch 64); the 1 ms deadline must flush.
  serve::MicroBatcher batcher(backend, {.max_batch = 64, .max_wait_us = 1000});
  const Response r = batcher.query(Request{{4.0F}});
  EXPECT_DOUBLE_EQ(r.metrics.latency_ms, 4.0);
  EXPECT_EQ(batcher.stats().batches, 1U);
}

TEST(serve_batcher, QuerySpanSlicesIntoMaxBatchChunks) {
  FakeBackend backend;
  serve::MicroBatcher batcher(backend, {.max_batch = 4, .max_wait_us = 0});
  std::vector<Request> requests;
  for (int i = 0; i < 10; ++i) {
    requests.push_back(Request{{static_cast<float>(i)}});
  }
  const auto responses = batcher.query_span(requests);
  ASSERT_EQ(responses.size(), 10U);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(responses[static_cast<std::size_t>(i)].metrics.latency_ms,
                     static_cast<double>(i));
  }
  const auto sizes = backend.batch_sizes();
  ASSERT_EQ(sizes.size(), 3U);  // 4 + 4 + 2
  EXPECT_EQ(sizes[0], 4U);
  EXPECT_EQ(sizes[2], 2U);
}

/// Throwing backend: batcher must propagate the error to every waiter.
class ThrowingBackend : public serve::CostQueryBackend {
 public:
  std::vector<Response> query_batch(std::span<const Request>) override {
    throw std::runtime_error("backend unavailable");
  }
  const char* name() const override { return "throwing"; }
};

TEST(serve_batcher, BackendExceptionReachesCaller) {
  ThrowingBackend backend;
  serve::MicroBatcher batcher(backend, {.max_batch = 2, .max_wait_us = 100});
  EXPECT_THROW((void)batcher.query(Request{{1.0F}}), std::runtime_error);
}

/// Backend whose first call blocks long enough for more requests to pile up
/// behind the drain worker; later calls answer instantly.
class SlowFirstCallBackend : public serve::CostQueryBackend {
 public:
  std::vector<Response> query_batch(
      std::span<const Request> requests) override {
    if (calls_.fetch_add(1) == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(300));
    }
    std::vector<Response> out;
    out.reserve(requests.size());
    for (const Request& r : requests) {
      double sum = 0.0;
      for (float v : r.encoding) sum += v;
      out.push_back(response_with_latency(sum));
    }
    return out;
  }
  const char* name() const override { return "slow-first"; }

 private:
  std::atomic<int> calls_{0};
};

TEST(serve_batcher, LeftoverAfterPartialDrainKeepsOldestDeadline) {
  // Regression: a request left behind by a partial drain must keep its
  // original arrival time for the deadline trigger. The old code restarted
  // the clock at drain time, so the leftover below paid the backend's busy
  // window ~300 ms *plus* a fresh 400 ms wait instead of 400 ms total.
  SlowFirstCallBackend backend;
  serve::MicroBatcher batcher(backend, {.max_batch = 2, .max_wait_us = 400000});
  auto query_in_thread = [&batcher](float v) {
    return std::thread([&batcher, v] { (void)batcher.query(Request{{v}}); });
  };
  // A+B form the first batch (count trigger) and the backend blocks ~300 ms.
  // C, D and E pile up behind it; on wake the worker drains C+D (count
  // trigger again) leaving E as the partial-drain leftover.
  std::thread a = query_in_thread(1.0F);
  std::thread b = query_in_thread(2.0F);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  std::thread c = query_in_thread(3.0F);
  std::thread d = query_in_thread(4.0F);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  std::atomic<long> e_latency_ms{0};
  std::thread e([&] {
    const auto start = std::chrono::steady_clock::now();
    (void)batcher.query(Request{{5.0F}});
    e_latency_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  });
  for (std::thread* t : {&a, &b, &c, &d, &e}) t->join();
  // E enqueued ~220 ms before the partial drain, so with its original
  // deadline it answers ~400 ms after its own arrival; the pre-fix clock
  // restart pushed that past ~620 ms. 550 ms splits the two with slack.
  EXPECT_LT(e_latency_ms.load(), 550);
  // The deadline trigger (not the count trigger) must have answered E.
  EXPECT_GT(e_latency_ms.load(), 250);
}

TEST(serve_batcher, ShedsWhenPendingQueueFull) {
  FakeBackend backend;
  std::thread client;
  {
    // Count trigger unreachable (needs 3) and a 10 s deadline: the parked
    // request holds the single pending slot for the whole test.
    serve::MicroBatcher batcher(
        backend,
        {.max_batch = 3, .max_wait_us = 10'000'000, .max_pending = 1});
    client = std::thread([&batcher] { (void)batcher.query(Request{{1.0F}}); });
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    EXPECT_THROW((void)batcher.query(Request{{2.0F}}), serve::Overloaded);
    EXPECT_EQ(batcher.stats().shed, 1U);
    // Shed requests never count toward the request/batch totals.
    EXPECT_EQ(batcher.stats().requests, 0U);
  }  // destructor drains the parked request, releasing the client thread
  client.join();
  EXPECT_EQ(backend.calls_.load(), 1U);
}

/// Small ground-truth fixture shared by the backend/service tests (same
/// shape as the EvalNetTest fixture: tiny HW space keeps the LUT build
/// fast).
class serve_service : public ::testing::Test {
 protected:
  serve_service()
      : arch_space_(arch::cifar10_backbone()),
        hw_space_({.pe_min = 8, .pe_max = 10, .rf_min = 8, .rf_max = 16,
                   .rf_step = 8}),
        table_(arch_space_, hw_space_, model_) {}

  Request request_for_seed(int seed) const {
    util::Rng rng(static_cast<std::uint64_t>(seed));
    return Request::from_architecture(arch_space_, arch_space_.random(rng));
  }

  arch::ArchSpace arch_space_;
  hwgen::HwSearchSpace hw_space_;
  accel::CostModel model_;
  arch::CostTable table_;
};

TEST_F(serve_service, ExactBackendMatchesDirectLutQuery) {
  serve::ExactBackend backend(table_, accel::edap_cost());
  const Request req = request_for_seed(1);
  const auto responses = backend.query_batch({&req, 1});
  ASSERT_EQ(responses.size(), 1U);

  const auto direct =
      table_.optimal(arch_space_.decode(req.encoding), accel::edap_cost());
  EXPECT_EQ(responses[0].config, direct.config);
  EXPECT_DOUBLE_EQ(responses[0].metrics.latency_ms, direct.metrics.latency_ms);
  EXPECT_DOUBLE_EQ(responses[0].metrics.energy_mj, direct.metrics.energy_mj);
  EXPECT_DOUBLE_EQ(responses[0].metrics.area_mm2, direct.metrics.area_mm2);
}

TEST_F(serve_service, ExactBackendRejectsWrongWidth) {
  serve::ExactBackend backend(table_, accel::edap_cost());
  const Request bad{{1.0F, 2.0F}};
  EXPECT_THROW((void)backend.query_batch({&bad, 1}), std::invalid_argument);
}

TEST_F(serve_service, SecondIdenticalQueryIsACacheHit) {
  serve::ExactBackend backend(table_, accel::edap_cost());
  serve::Service::Options opts;
  opts.batch.max_batch = 1;  // inline; this test is about the cache
  serve::Service service(backend, opts);

  const Request req = request_for_seed(2);
  const Response first = service.query(req);
  EXPECT_FALSE(first.cached);
  const Response second = service.query(req);
  EXPECT_TRUE(second.cached);
  EXPECT_EQ(second.config, first.config);
  EXPECT_DOUBLE_EQ(second.metrics.latency_ms, first.metrics.latency_ms);

  const auto stats = service.stats();
  EXPECT_EQ(stats.queries, 2U);
  EXPECT_EQ(stats.cache.hits, 1U);
  EXPECT_EQ(stats.cache.misses, 1U);
  EXPECT_EQ(stats.batcher.requests, 1U);  // only the miss reached the backend
}

TEST_F(serve_service, DisabledCacheAlwaysQueriesBackend) {
  serve::ExactBackend backend(table_, accel::edap_cost());
  serve::Service::Options opts;
  opts.enable_cache = false;
  opts.batch.max_batch = 1;
  serve::Service service(backend, opts);

  const Request req = request_for_seed(3);
  (void)service.query(req);
  const Response again = service.query(req);
  EXPECT_FALSE(again.cached);
  EXPECT_EQ(service.stats().batcher.requests, 2U);
}

TEST_F(serve_service, QueryManyPreservesOrderAndMemoizes) {
  serve::ExactBackend backend(table_, accel::edap_cost());
  serve::Service::Options opts;
  opts.batch.max_batch = 4;
  serve::Service service(backend, opts);

  // 8 requests over 4 unique keys: within-call dedup answers the second
  // half by memoization even on a cold cache.
  std::vector<Request> requests;
  for (int i = 0; i < 8; ++i) requests.push_back(request_for_seed(10 + i % 4));
  const auto responses = service.query_many(requests);
  ASSERT_EQ(responses.size(), 8U);
  for (int i = 0; i < 4; ++i) {
    const auto& fresh = responses[static_cast<std::size_t>(i)];
    const auto& repeat = responses[static_cast<std::size_t>(i + 4)];
    EXPECT_FALSE(fresh.cached);
    EXPECT_TRUE(repeat.cached);
    EXPECT_EQ(repeat.config, fresh.config);
    EXPECT_DOUBLE_EQ(repeat.metrics.latency_ms, fresh.metrics.latency_ms);
    // Per-request answers match the direct ground-truth query.
    const auto direct = table_.optimal(
        arch_space_.decode(requests[static_cast<std::size_t>(i)].encoding),
        accel::edap_cost());
    EXPECT_EQ(fresh.config, direct.config);
  }
  // Only the 4 unique keys reached the backend.
  EXPECT_EQ(service.stats().batcher.requests, 4U);

  // A second replay is answered entirely from the memoization cache.
  const auto replayed = service.query_many(requests);
  for (const auto& r : replayed) EXPECT_TRUE(r.cached);
  EXPECT_EQ(service.stats().cache.hits, 8U);
  EXPECT_EQ(service.stats().batcher.requests, 4U);
}

TEST_F(serve_service, StatsReportMentionsEveryBlock) {
  serve::ExactBackend backend(table_, accel::edap_cost());
  serve::Service::Options opts;
  opts.batch.max_batch = 1;
  serve::Service service(backend, opts);
  (void)service.query(request_for_seed(4));
  const std::string report = service.stats_report();
  EXPECT_NE(report.find("QPS"), std::string::npos);
  EXPECT_NE(report.find("hit rate"), std::string::npos);
  EXPECT_NE(report.find("p50"), std::string::npos);
  EXPECT_NE(report.find("p95"), std::string::npos);

  service.reset_stats();
  EXPECT_EQ(service.stats().queries, 0U);
}

TEST(serve_options, FromEnvParsesAndIgnoresGarbage) {
  setenv("DANCE_SERVE_CACHE_CAP", "128", 1);
  setenv("DANCE_SERVE_SHARDS", "3", 1);
  setenv("DANCE_SERVE_MAX_BATCH", "7", 1);
  setenv("DANCE_SERVE_MAX_WAIT_US", "0", 1);
  setenv("DANCE_SERVE_CACHE", "0", 1);
  auto opts = serve::Service::Options::from_env();
  EXPECT_EQ(opts.cache_capacity, 128U);
  EXPECT_EQ(opts.cache_shards, 3);
  EXPECT_EQ(opts.batch.max_batch, 7);
  EXPECT_EQ(opts.batch.max_wait_us, 0);
  EXPECT_FALSE(opts.enable_cache);

  setenv("DANCE_SERVE_CACHE_CAP", "garbage", 1);
  setenv("DANCE_SERVE_MAX_BATCH", "-4", 1);
  setenv("DANCE_SERVE_CACHE", "1", 1);
  opts = serve::Service::Options::from_env();
  EXPECT_EQ(opts.cache_capacity, serve::Service::Options{}.cache_capacity);
  EXPECT_EQ(opts.batch.max_batch, serve::Service::Options{}.batch.max_batch);
  EXPECT_TRUE(opts.enable_cache);

  unsetenv("DANCE_SERVE_CACHE_CAP");
  unsetenv("DANCE_SERVE_SHARDS");
  unsetenv("DANCE_SERVE_MAX_BATCH");
  unsetenv("DANCE_SERVE_MAX_WAIT_US");
  unsetenv("DANCE_SERVE_CACHE");
}

}  // namespace
