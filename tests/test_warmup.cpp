#include <gtest/gtest.h>

#include "search/warmup.h"
#include "testing/property.h"
#include "util/rng.h"

namespace {

using dance::search::LambdaWarmup;

TEST(LambdaWarmup, HoldsInitialValueThroughWarmup) {
  const LambdaWarmup w(0.01F, 0.8F, /*warmup_epochs=*/5, /*ramp_epochs=*/4);
  for (int e = 0; e < 5; ++e) {
    EXPECT_FLOAT_EQ(w.value(e), 0.01F) << "epoch " << e;
  }
}

TEST(LambdaWarmup, RampsLinearlyBetweenWarmupAndTarget) {
  const LambdaWarmup w(0.0F, 1.0F, /*warmup_epochs=*/2, /*ramp_epochs=*/4);
  EXPECT_FLOAT_EQ(w.value(2), 0.0F);
  EXPECT_FLOAT_EQ(w.value(3), 0.25F);
  EXPECT_FLOAT_EQ(w.value(4), 0.5F);
  EXPECT_FLOAT_EQ(w.value(5), 0.75F);
  EXPECT_FLOAT_EQ(w.value(6), 1.0F);
}

TEST(LambdaWarmup, ClampsAtTargetForever) {
  const LambdaWarmup w(0.1F, 0.6F, 3, 2);
  for (int e = 5; e < 100; e += 7) {
    EXPECT_FLOAT_EQ(w.value(e), 0.6F) << "epoch " << e;
  }
}

TEST(LambdaWarmup, ZeroRampEpochsJumpsStraightToTarget) {
  // ramp_epochs is clamped to >= 1, so the first post-warmup epoch is the
  // last initial-valued one and the next is the target.
  const LambdaWarmup w(0.2F, 0.9F, 4, 0);
  EXPECT_FLOAT_EQ(w.value(3), 0.2F);
  EXPECT_FLOAT_EQ(w.value(4), 0.2F);
  EXPECT_FLOAT_EQ(w.value(5), 0.9F);
}

TEST(LambdaWarmup, MonotoneForRandomSchedules) {
  // Property: for target >= initial the schedule never decreases (and never
  // leaves [initial, target]); mirrored for target < initial. A collapse of
  // lambda2 mid-search (§3.4) would show up as a violation here.
  struct Schedule {
    float initial, target;
    int warmup, ramp;
    std::string show() const {
      return "Schedule(init=" + std::to_string(initial) +
             " target=" + std::to_string(target) +
             " warmup=" + std::to_string(warmup) +
             " ramp=" + std::to_string(ramp) + ")";
    }
  };
  dance::testing::Generator<Schedule> gen;
  gen.sample = [](dance::util::Rng& rng) {
    return Schedule{rng.uniform(0.0F, 2.0F), rng.uniform(0.0F, 2.0F),
                    rng.randint(0, 10), rng.randint(0, 8)};
  };
  gen.show = [](const Schedule& s) { return s.show(); };

  const auto result = dance::testing::check<Schedule>(
      "lambda warmup monotonicity", gen,
      [](const Schedule& s, dance::util::Rng&) -> std::string {
        const LambdaWarmup w(s.initial, s.target, s.warmup, s.ramp);
        const float lo = std::min(s.initial, s.target);
        const float hi = std::max(s.initial, s.target);
        float prev = w.value(0);
        for (int e = 0; e <= s.warmup + s.ramp + 5; ++e) {
          const float v = w.value(e);
          if (v < lo - 1e-6F || v > hi + 1e-6F) {
            return "epoch " + std::to_string(e) + " value " +
                   std::to_string(v) + " escapes [initial, target]";
          }
          const bool ok = s.target >= s.initial ? v >= prev - 1e-6F
                                                : v <= prev + 1e-6F;
          if (!ok) {
            return "epoch " + std::to_string(e) + ": " + std::to_string(prev) +
                   " -> " + std::to_string(v) + " breaks monotonicity";
          }
          prev = v;
        }
        return "";
      });
  EXPECT_TRUE(result.ok) << result.report;
}

}  // namespace
