// Property sweep of the analytical cost model across representative layer
// types and every dataflow: conservation laws and utilization bounds that
// any credible Timeloop-like model must satisfy.
#include <gtest/gtest.h>

#include "accel/cost_model.h"

namespace {

using namespace dance::accel;

struct LayerCase {
  const char* name;
  ConvShape shape;
};

const LayerCase kLayers[] = {
    {"pointwise", ConvShape{1, 128, 64, 16, 16, 1, 1, 1, 1}},
    {"dense3x3", ConvShape{1, 64, 64, 32, 32, 3, 3, 1, 1}},
    {"depthwise3x3", ConvShape{1, 96, 96, 16, 16, 3, 3, 1, 96}},
    {"strided5x5", ConvShape{1, 48, 24, 32, 32, 5, 5, 2, 1}},
    {"large7x7", ConvShape{1, 32, 16, 56, 56, 7, 7, 1, 1}},
    {"batch4", ConvShape{4, 32, 32, 16, 16, 3, 3, 1, 1}},
};

class CostModelSweep
    : public ::testing::TestWithParam<std::tuple<int, Dataflow>> {
 protected:
  const LayerCase& layer() const {
    return kLayers[static_cast<std::size_t>(std::get<0>(GetParam()))];
  }
  Dataflow dataflow() const { return std::get<1>(GetParam()); }
};

TEST_P(CostModelSweep, ComputeCyclesRespectPeCount) {
  // No configuration can do better than perfect utilization of all PEs:
  // compute_cycles * num_pes >= total MACs.
  CostModel model;
  const AcceleratorConfig cfg{16, 16, 32, dataflow()};
  const CostBreakdown b = model.explain(cfg, layer().shape);
  EXPECT_GE(b.compute_cycles * cfg.num_pes(),
            static_cast<double>(layer().shape.macs()) * (1.0 - 1e-9))
      << layer().name;
}

TEST_P(CostModelSweep, BreakdownComponentsNonNegative) {
  CostModel model;
  const AcceleratorConfig cfg{12, 20, 16, dataflow()};
  const CostBreakdown b = model.explain(cfg, layer().shape);
  for (double v : {b.compute_cycles, b.gb_cycles, b.dram_cycles, b.gb_words,
                   b.dram_words, b.rf_accesses, b.mac_pj, b.rf_pj, b.gb_pj,
                   b.dram_pj, b.noc_pj, b.static_pj}) {
    EXPECT_GE(v, 0.0) << layer().name;
  }
}

TEST_P(CostModelSweep, DramTrafficCoversTensorVolumes) {
  // Every operand has to cross DRAM at least once.
  CostModel model;
  const AcceleratorConfig cfg{16, 16, 32, dataflow()};
  const CostBreakdown b = model.explain(cfg, layer().shape);
  const double min_traffic =
      static_cast<double>(layer().shape.weight_volume() +
                          layer().shape.input_volume() +
                          layer().shape.output_volume());
  EXPECT_GE(b.dram_words, min_traffic * (1.0 - 1e-9)) << layer().name;
}

TEST_P(CostModelSweep, GbTrafficAtLeastDramTraffic) {
  // Everything that crosses DRAM also crosses the global buffer port at
  // least once on its way to the array.
  CostModel model;
  const AcceleratorConfig cfg{16, 16, 32, dataflow()};
  const CostBreakdown b = model.explain(cfg, layer().shape);
  EXPECT_GE(b.gb_words, b.dram_words * (1.0 - 1e-9)) << layer().name;
}

TEST_P(CostModelSweep, LatencyDeterministic) {
  CostModel model;
  const AcceleratorConfig cfg{10, 14, 24, dataflow()};
  const LayerCost a = model.layer_cost(cfg, layer().shape);
  const LayerCost b = model.layer_cost(cfg, layer().shape);
  EXPECT_DOUBLE_EQ(a.cycles, b.cycles);
  EXPECT_DOUBLE_EQ(a.energy_pj, b.energy_pj);
}

INSTANTIATE_TEST_SUITE_P(
    LayersByDataflow, CostModelSweep,
    ::testing::Combine(::testing::Range(0, 6),
                       ::testing::Values(Dataflow::kWeightStationary,
                                         Dataflow::kOutputStationary,
                                         Dataflow::kRowStationary)),
    [](const auto& info) {
      return std::string(kLayers[static_cast<std::size_t>(
                             std::get<0>(info.param))].name) +
             "_" + to_string(std::get<1>(info.param));
    });

}  // namespace
