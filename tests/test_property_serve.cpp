// Property suite 4: the dance::serve determinism contracts.
//
//  * serve_batch — Evaluator::forward_batch is bit-identical to row-by-row
//    Evaluator::forward_deterministic for randomized batches of arch
//    encodings (evaluator.h's deterministic inference contract). This is
//    the property that makes micro-batching legal: a query's answer must
//    not depend on which batch it rode in on.
//  * serve_cache_transparency — a Service answer is bit-identical to a
//    direct backend answer no matter how many threads hammer the cache
//    concurrently, both from runtime::global_pool() jobs (inline
//    max_batch=1 mode — the pool-reentrancy-safe configuration, see
//    docs/serve.md) and from plain std::threads riding the batched path.
//
// Suite names carry a lowercase "serve" so `ctest -R serve` selects these
// alongside the unit suites; CI runs them under TSan.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "accel/cost_function.h"
#include "arch/cost_table.h"
#include "arch/ops.h"
#include "evalnet/evaluator.h"
#include "serve/backend.h"
#include "serve/service.h"
#include "testing/generators.h"
#include "testing/property.h"
#include "util/parallel.h"

namespace testing_ = dance::testing;

namespace {

using namespace dance;
using serve::Request;
using serve::Response;

/// Bitwise float comparison (covers -0.0 and NaN payloads).
bool bit_equal(const float* a, const float* b, std::size_t n) {
  return n == 0 || std::memcmp(a, b, n * sizeof(float)) == 0;
}

bool bit_equal_double(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

/// Exact (bitwise) response equality; the transparency properties demand
/// bit-identity, not approximate agreement.
bool bit_equal_response(const Response& a, const Response& b) {
  return bit_equal_double(a.metrics.latency_ms, b.metrics.latency_ms) &&
         bit_equal_double(a.metrics.energy_mj, b.metrics.energy_mj) &&
         bit_equal_double(a.metrics.area_mm2, b.metrics.area_mm2) &&
         a.config == b.config;
}

/// Shared ground-truth fixture: tiny HW space so the LUT builds fast, one
/// copy for the whole binary (the table is immutable once built).
struct ExactFixture {
  arch::ArchSpace arch_space{arch::cifar10_backbone()};
  hwgen::HwSearchSpace hw_space{
      {.pe_min = 8, .pe_max = 10, .rf_min = 8, .rf_max = 16, .rf_step = 8}};
  accel::CostModel model;
  arch::CostTable table{arch_space, hw_space, model};
};

ExactFixture& exact_fixture() {
  static ExactFixture f;
  return f;
}

/// Shared frozen evaluator in eval mode — the deterministic-inference
/// configuration. Small hidden layers keep 100 trials cheap; the property
/// is about bit-identity, not predictive quality.
evalnet::Evaluator& frozen_evaluator() {
  static evalnet::Evaluator* ev = [] {
    auto& f = exact_fixture();
    util::Rng rng(0xba7c4ed);
    evalnet::Evaluator::Options opts;
    opts.hwgen.hidden_dim = 32;
    opts.hwgen.num_layers = 2;
    opts.cost.hidden_dim = 32;
    opts.cost.num_layers = 2;
    auto* e = new evalnet::Evaluator(f.arch_space.encoding_width(), f.hw_space,
                                     rng, opts);
    e->set_frozen(true);
    e->set_training(false);
    return e;
  }();
  return *ev;
}

TEST(serve_batch, ForwardBatchBitIdenticalToRowByRow) {
  auto& f = exact_fixture();
  auto& evaluator = frozen_evaluator();
  const int num_blocks = f.arch_space.num_searchable();
  const auto gen = testing_::arch_encoding_gen(num_blocks, arch::kNumCandidateOps);

  const auto result = testing_::check<tensor::Tensor>(
      "forward_batch vs row-by-row bit-identity", gen,
      [&](const tensor::Tensor& enc, util::Rng& rng) -> std::string {
        // Batch: the generated (possibly shrunk) encoding first, then a few
        // extra rows from the auxiliary stream, so batch composition varies
        // while the property stays a pure function of the trial.
        const int extra = rng.randint(0, 4);
        std::vector<std::vector<float>> rows;
        rows.emplace_back(enc.data(), enc.data() + enc.numel());
        for (int i = 0; i < extra; ++i) {
          const tensor::Tensor t = gen.sample(rng);
          rows.emplace_back(t.data(), t.data() + t.numel());
        }

        const auto batched = evaluator.forward_batch(rows);
        const int width = static_cast<int>(rows[0].size());
        const int hw_width = batched.hw_encoding.value().cols();
        for (std::size_t r = 0; r < rows.size(); ++r) {
          tensor::Variable row(tensor::Tensor::from({1, width}, rows[r]));
          const auto single = evaluator.forward_deterministic(row);
          if (!bit_equal(single.metrics.value().data(),
                         batched.metrics.value().data() + r * 3, 3)) {
            return "metrics row " + std::to_string(r) +
                   " diverges from the single-row forward";
          }
          if (!bit_equal(single.hw_encoding.value().data(),
                         batched.hw_encoding.value().data() +
                             r * static_cast<std::size_t>(hw_width),
                         static_cast<std::size_t>(hw_width))) {
            return "hw_encoding row " + std::to_string(r) +
                   " diverges from the single-row forward";
          }
        }
        return "";
      });
  EXPECT_TRUE(result.ok) << result.report;
  EXPECT_GE(result.trials_run, 100);
}

TEST(serve_batch, DeterministicForwardIsReproducible) {
  // Same encoding, queried twice with unrelated work in between, must give
  // the same bits — forward_deterministic draws no randomness and mutates no
  // state. (This is what makes memoization sound for the surrogate backend.)
  auto& f = exact_fixture();
  auto& evaluator = frozen_evaluator();
  const auto gen =
      testing_::arch_encoding_gen(f.arch_space.num_searchable(),
                                  arch::kNumCandidateOps);

  const auto result = testing_::check<tensor::Tensor>(
      "forward_deterministic reproducibility", gen,
      [&](const tensor::Tensor& enc, util::Rng& rng) -> std::string {
        tensor::Variable row(enc);
        const auto first = evaluator.forward_deterministic(row);
        // Interleave an unrelated query to move any hidden state, if there
        // were any.
        const tensor::Tensor other = gen.sample(rng);
        (void)evaluator.forward_deterministic(tensor::Variable(other));
        const auto second = evaluator.forward_deterministic(row);
        if (!bit_equal(first.metrics.value().data(),
                       second.metrics.value().data(),
                       first.metrics.value().numel())) {
          return "metrics changed between two identical queries";
        }
        if (!bit_equal(first.hw_encoding.value().data(),
                       second.hw_encoding.value().data(),
                       first.hw_encoding.value().numel())) {
          return "hw_encoding changed between two identical queries";
        }
        return "";
      });
  EXPECT_TRUE(result.ok) << result.report;
  EXPECT_GE(result.trials_run, 100);
}

/// Per-trial workload for the transparency fuzz: how many distinct keys the
/// hammering threads share.
testing_::Generator<long> unique_key_gen() {
  testing_::Generator<long> g;
  g.sample = [](util::Rng& rng) { return static_cast<long>(rng.randint(1, 6)); };
  g.shrink = [](const long& v) { return testing_::shrink_toward(v, 1); };
  g.show = [](const long& v) { return std::to_string(v) + " unique keys"; };
  return g;
}

/// Reduced-trial config: each trial spins up threads (or a pool sweep), so
/// the default 100 trials would dominate the TSan job for no extra coverage.
testing_::PbtConfig concurrency_config() {
  auto cfg = testing_::PbtConfig::from_env();
  cfg.trials = std::min(cfg.trials, 20);
  return cfg;
}

TEST(serve_cache_transparency, PoolHammeringMatchesDirectBackend) {
  // Inline mode (max_batch = 1): Service::query calls the backend on the
  // calling thread, which is the safe configuration for callers that are
  // themselves pool-job bodies. Hammer the cache from global-pool jobs and
  // demand every answer bit-match a direct (uncached) backend query.
  auto& f = exact_fixture();
  const auto result = testing_::check<long>(
      "cache transparency under pool hammering", unique_key_gen(),
      [&](const long& unique, util::Rng& rng) -> std::string {
        serve::ExactBackend backend(f.table, accel::edap_cost());
        std::vector<Request> keys;
        std::vector<Response> reference;
        for (long k = 0; k < unique; ++k) {
          keys.push_back(
              Request::from_architecture(f.arch_space, f.arch_space.random(rng)));
          reference.push_back(backend.query_batch({&keys.back(), 1})[0]);
        }

        serve::Service::Options opts;
        opts.batch.max_batch = 1;
        opts.cache_capacity = 64;
        serve::Service service(backend, opts);

        const long n = 4 * unique + 8;
        std::vector<int> ok(static_cast<std::size_t>(n), 0);
        util::parallel_for(0, n, [&](long lo, long hi) {
          for (long i = lo; i < hi; ++i) {
            const std::size_t k = static_cast<std::size_t>(i % unique);
            const Response r = service.query(keys[k]);
            ok[static_cast<std::size_t>(i)] =
                bit_equal_response(r, reference[k]) ? 1 : 0;
          }
        }, /*grain=*/1);

        for (long i = 0; i < n; ++i) {
          if (!ok[static_cast<std::size_t>(i)]) {
            return "query " + std::to_string(i) +
                   " diverged from the direct backend answer";
          }
        }
        if (service.stats().cache.hits == 0) {
          return "hammering produced no cache hits; the property checked nothing";
        }
        return "";
      },
      concurrency_config());
  EXPECT_TRUE(result.ok) << result.report;
}

TEST(serve_cache_transparency, ThreadedBatchedHammeringMatchesDirectBackend) {
  // The batched path (max_batch > 1) from plain std::threads: concurrent
  // queries coalesce into shared backend batches, race into the cache, and
  // must still each come back bit-identical to a direct query.
  auto& f = exact_fixture();
  const auto result = testing_::check<long>(
      "cache transparency under batched hammering", unique_key_gen(),
      [&](const long& unique, util::Rng& rng) -> std::string {
        serve::ExactBackend backend(f.table, accel::edap_cost());
        std::vector<Request> keys;
        std::vector<Response> reference;
        for (long k = 0; k < unique; ++k) {
          keys.push_back(
              Request::from_architecture(f.arch_space, f.arch_space.random(rng)));
          reference.push_back(backend.query_batch({&keys.back(), 1})[0]);
        }

        serve::Service::Options opts;
        opts.batch.max_batch = 4;
        opts.batch.max_wait_us = 100;
        opts.cache_capacity = 64;
        serve::Service service(backend, opts);

        constexpr int kThreads = 4;
        constexpr int kQueriesPerThread = 8;
        std::vector<std::string> errors(kThreads);
        std::vector<std::thread> clients;
        clients.reserve(kThreads);
        for (int t = 0; t < kThreads; ++t) {
          clients.emplace_back([&, t] {
            for (int q = 0; q < kQueriesPerThread; ++q) {
              const std::size_t k =
                  static_cast<std::size_t>((t * kQueriesPerThread + q) % unique);
              const Response r = service.query(keys[k]);
              if (!bit_equal_response(r, reference[k])) {
                errors[static_cast<std::size_t>(t)] =
                    "thread " + std::to_string(t) + " query " +
                    std::to_string(q) + " diverged from the direct answer";
                return;
              }
            }
          });
        }
        for (auto& c : clients) c.join();
        for (const auto& e : errors) {
          if (!e.empty()) return e;
        }
        return "";
      },
      concurrency_config());
  EXPECT_TRUE(result.ok) << result.report;
}

TEST(serve_cache_transparency, QueryManyMatchesSingleQueries) {
  // Bulk replay equals one-at-a-time: query_many (cache probe + span
  // slicing) must agree bitwise with a fresh service answering the same
  // requests singly.
  auto& f = exact_fixture();
  const auto result = testing_::check<long>(
      "query_many vs single-query bit-identity", unique_key_gen(),
      [&](const long& unique, util::Rng& rng) -> std::string {
        serve::ExactBackend backend(f.table, accel::edap_cost());
        std::vector<Request> requests;
        for (long k = 0; k < 3 * unique; ++k) {
          if (k < unique) {
            requests.push_back(Request::from_architecture(
                f.arch_space, f.arch_space.random(rng)));
          } else {
            requests.push_back(requests[static_cast<std::size_t>(k % unique)]);
          }
        }

        serve::Service::Options opts;
        opts.batch.max_batch = 4;
        serve::Service bulk_service(backend, opts);
        const auto bulk = bulk_service.query_many(requests);

        serve::Service::Options single_opts;
        single_opts.batch.max_batch = 1;
        serve::Service single_service(backend, single_opts);
        for (std::size_t i = 0; i < requests.size(); ++i) {
          const Response r = single_service.query(requests[i]);
          if (!bit_equal_response(bulk[i], r)) {
            return "request " + std::to_string(i) +
                   " differs between query_many and query";
          }
        }
        return "";
      },
      concurrency_config());
  EXPECT_TRUE(result.ok) << result.report;
}

}  // namespace
