#include <gtest/gtest.h>

#include "arch/backbone.h"
#include "arch/cost_table.h"
#include "arch/ops.h"
#include "arch/space.h"

namespace {

using namespace dance;
using namespace dance::arch;

TEST(CandidateOps, KernelAndExpandTables) {
  EXPECT_EQ(kernel_size(CandidateOp::kMbConv3x3E3), 3);
  EXPECT_EQ(kernel_size(CandidateOp::kMbConv7x7E6), 7);
  EXPECT_EQ(expand_ratio(CandidateOp::kMbConv5x5E3), 3);
  EXPECT_EQ(expand_ratio(CandidateOp::kMbConv5x5E6), 6);
  EXPECT_TRUE(is_zero(CandidateOp::kZero));
  EXPECT_FALSE(is_zero(CandidateOp::kMbConv3x3E3));
  EXPECT_EQ(to_string(CandidateOp::kMbConv7x7E3), "MBConv7x7_e3");
}

TEST(Backbone, Cifar10Structure) {
  const BackboneSpec spec = cifar10_backbone();
  EXPECT_EQ(spec.layers.size(), 13U);          // 13 layers (§4.1)
  EXPECT_EQ(spec.num_searchable(), 9);         // 9 searchable middle layers
  EXPECT_EQ(spec.input_resolution, 32);
  // Channels rise every three searchable layers.
  const auto pos = spec.searchable_positions();
  ASSERT_EQ(pos.size(), 9U);
  const int c0 = spec.layers[static_cast<std::size_t>(pos[0])].out_channels;
  const int c3 = spec.layers[static_cast<std::size_t>(pos[3])].out_channels;
  const int c6 = spec.layers[static_cast<std::size_t>(pos[6])].out_channels;
  EXPECT_LT(c0, c3);
  EXPECT_LT(c3, c6);
  // Resolution is consistent: each layer's input dims follow the strides.
  int h = 32;
  for (const auto& l : spec.layers) {
    EXPECT_EQ(l.in_h, h);
    h = (h + l.stride - 1) / l.stride;
  }
}

TEST(Backbone, ImagenetIsBigger) {
  const BackboneSpec c = cifar10_backbone();
  const BackboneSpec i = imagenet_backbone();
  EXPECT_EQ(i.layers.size(), 13U);
  EXPECT_EQ(i.num_searchable(), 9);
  EXPECT_GT(i.input_resolution, c.input_resolution);
  EXPECT_GT(i.layers.back().out_channels, c.layers.back().out_channels);
}

TEST(ArchSpace, EncodingWidthAndRoundTrip) {
  ArchSpace space(cifar10_backbone());
  EXPECT_EQ(space.encoding_width(), 9 * kNumCandidateOps);
  util::Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    const Architecture a = space.random(rng);
    const auto enc = space.encode(a);
    EXPECT_EQ(space.decode(enc), a);
    float sum = 0.0F;
    for (float v : enc) sum += v;
    EXPECT_FLOAT_EQ(sum, 9.0F);  // one-hot per slot
  }
}

TEST(ArchSpace, ValidateRejectsWrongLength) {
  ArchSpace space(cifar10_backbone());
  EXPECT_THROW(space.encode(Architecture{CandidateOp::kZero}),
               std::invalid_argument);
}

TEST(Lowering, MbConvTriplet) {
  LayerSpec l;
  l.in_channels = 16;
  l.out_channels = 24;
  l.in_h = l.in_w = 32;
  l.stride = 2;
  const auto shapes = lower_layer(l, 1, CandidateOp::kMbConv5x5E6);
  ASSERT_EQ(shapes.size(), 3U);
  // expand 1x1: 16 -> 96
  EXPECT_EQ(shapes[0].c, 16);
  EXPECT_EQ(shapes[0].k, 96);
  EXPECT_EQ(shapes[0].r, 1);
  // depthwise 5x5, stride 2, groups = 96
  EXPECT_EQ(shapes[1].groups, 96);
  EXPECT_EQ(shapes[1].r, 5);
  EXPECT_EQ(shapes[1].stride, 2);
  // project 1x1 at halved resolution
  EXPECT_EQ(shapes[2].k, 24);
  EXPECT_EQ(shapes[2].h, 16);
  for (const auto& s : shapes) EXPECT_TRUE(s.valid());
}

TEST(Lowering, ExpandOneSkipsPointwise) {
  LayerSpec l;
  l.in_channels = 16;
  l.out_channels = 16;
  l.in_h = l.in_w = 8;
  l.fixed_kernel = 3;
  l.fixed_expand = 1;
  const auto shapes = lower_fixed_layer(l, 1);
  EXPECT_EQ(shapes.size(), 2U);  // depthwise + project only
}

TEST(Lowering, ZeroContributesNothing) {
  LayerSpec l;
  l.in_channels = 16;
  l.out_channels = 24;
  l.in_h = l.in_w = 8;
  EXPECT_TRUE(lower_layer(l, 1, CandidateOp::kZero).empty());
}

TEST(ArchSpace, MacsOrderingMatchesCapacity) {
  ArchSpace space(cifar10_backbone());
  const Architecture small(9, CandidateOp::kMbConv3x3E3);
  const Architecture big(9, CandidateOp::kMbConv7x7E6);
  const Architecture zero(9, CandidateOp::kZero);
  EXPECT_LT(space.macs(zero), space.macs(small));
  EXPECT_LT(space.macs(small), space.macs(big));
  EXPECT_GT(space.macs(zero), 0);  // fixed stem/tail still cost MACs
}

TEST(CostTable, MatchesDirectCostModel) {
  // The LUT must be exactly equivalent to running the cost model directly.
  ArchSpace arch_space(cifar10_backbone());
  hwgen::HwSearchSpace hw_space(
      {.pe_min = 8, .pe_max = 10, .rf_min = 16, .rf_max = 32, .rf_step = 16});
  accel::CostModel model;
  CostTable table(arch_space, hw_space, model);

  util::Rng rng(7);
  for (int trial = 0; trial < 5; ++trial) {
    const Architecture a = arch_space.random(rng);
    const auto layers = arch_space.lower(a);
    for (std::size_t ci = 0; ci < hw_space.size(); ci += 5) {
      const accel::CostMetrics direct =
          model.network_cost(hw_space.config_at(ci), layers);
      const accel::CostMetrics lut = table.metrics(ci, a);
      EXPECT_NEAR(lut.latency_ms, direct.latency_ms, 1e-9 * direct.latency_ms);
      EXPECT_NEAR(lut.energy_mj, direct.energy_mj, 1e-9 * direct.energy_mj);
      EXPECT_DOUBLE_EQ(lut.area_mm2, direct.area_mm2);
    }
  }
}

TEST(CostTable, OptimalMatchesExhaustive) {
  ArchSpace arch_space(cifar10_backbone());
  hwgen::HwSearchSpace hw_space(
      {.pe_min = 8, .pe_max = 12, .rf_min = 8, .rf_max = 32, .rf_step = 8});
  accel::CostModel model;
  CostTable table(arch_space, hw_space, model);
  hwgen::ExhaustiveSearch exact(hw_space, model);

  util::Rng rng(11);
  const Architecture a = arch_space.random(rng);
  const auto layers = arch_space.lower(a);
  const auto cost_fn = accel::edap_cost();
  const auto via_table = table.optimal(a, cost_fn);
  const auto via_direct = exact.run(layers, cost_fn);
  EXPECT_EQ(via_table.config, via_direct.config);
  EXPECT_NEAR(via_table.cost, via_direct.cost, 1e-9 * via_direct.cost);
}

TEST(CostTable, ExpectedMetricsAtOneHotEqualsMetrics) {
  ArchSpace arch_space(cifar10_backbone());
  hwgen::HwSearchSpace hw_space(
      {.pe_min = 8, .pe_max = 9, .rf_min = 16, .rf_max = 16, .rf_step = 4});
  accel::CostModel model;
  CostTable table(arch_space, hw_space, model);
  util::Rng rng(13);
  const Architecture a = arch_space.random(rng);
  std::vector<std::vector<double>> probs(
      9, std::vector<double>(kNumCandidateOps, 0.0));
  for (int s = 0; s < 9; ++s) {
    probs[static_cast<std::size_t>(s)][static_cast<std::size_t>(
        a[static_cast<std::size_t>(s)])] = 1.0;
  }
  const auto expected = table.expected_metrics(0, probs);
  const auto exact = table.metrics(0, a);
  EXPECT_NEAR(expected.latency_ms, exact.latency_ms, 1e-12);
  EXPECT_NEAR(expected.energy_mj, exact.energy_mj, 1e-12);
}

TEST(CostTable, ZeroHeavyArchIsCheaper) {
  ArchSpace arch_space(cifar10_backbone());
  hwgen::HwSearchSpace hw_space(
      {.pe_min = 12, .pe_max = 12, .rf_min = 32, .rf_max = 32, .rf_step = 4});
  accel::CostModel model;
  CostTable table(arch_space, hw_space, model);
  const Architecture zero(9, CandidateOp::kZero);
  const Architecture big(9, CandidateOp::kMbConv7x7E6);
  const auto mz = table.metrics(0, zero);
  const auto mb = table.metrics(0, big);
  EXPECT_LT(mz.latency_ms, mb.latency_ms);
  EXPECT_LT(mz.energy_mj, mb.energy_mj);
  EXPECT_DOUBLE_EQ(mz.area_mm2, mb.area_mm2);
}

}  // namespace
