#include <gtest/gtest.h>

#include <limits>

#include "search/design_points.h"

namespace {

using namespace dance;

search::SearchOutcome make(double acc, double latency) {
  search::SearchOutcome o;
  o.val_accuracy_pct = acc;
  o.metrics = accel::CostMetrics{latency, 1.0, 1.0};
  return o;
}

const accel::HwCostFn kLatency = [](const accel::CostMetrics& m) {
  return m.latency_ms;
};

TEST(DesignPoints, PicksMostAccurateAsA) {
  const std::vector<search::SearchOutcome> sweep = {
      make(90.0, 5.0), make(94.0, 8.0), make(92.0, 3.0)};
  const auto p = search::select_design_points(sweep, kLatency, 1.0);
  EXPECT_DOUBLE_EQ(p.accuracy_oriented.val_accuracy_pct, 94.0);
}

TEST(DesignPoints, PicksCheapestWithinBudgetAsB) {
  const std::vector<search::SearchOutcome> sweep = {
      make(94.0, 8.0), make(93.5, 3.0), make(90.0, 1.0)};
  const auto p = search::select_design_points(sweep, kLatency, 1.0);
  // 93.5 is within 1%p of 94 and cheaper; 90.0 is cheaper still but over
  // budget.
  EXPECT_DOUBLE_EQ(p.efficiency_oriented.val_accuracy_pct, 93.5);
  EXPECT_DOUBLE_EQ(p.efficiency_oriented.metrics.latency_ms, 3.0);
}

TEST(DesignPoints, BFallsBackToAWhenNothingCheaper) {
  const std::vector<search::SearchOutcome> sweep = {
      make(94.0, 2.0), make(93.9, 5.0)};
  const auto p = search::select_design_points(sweep, kLatency, 1.0);
  EXPECT_DOUBLE_EQ(p.efficiency_oriented.metrics.latency_ms, 2.0);
}

TEST(DesignPoints, WiderBudgetUnlocksCheaperB) {
  const std::vector<search::SearchOutcome> sweep = {
      make(94.0, 8.0), make(90.0, 1.0)};
  const auto tight = search::select_design_points(sweep, kLatency, 1.0);
  const auto loose = search::select_design_points(sweep, kLatency, 5.0);
  EXPECT_DOUBLE_EQ(tight.efficiency_oriented.metrics.latency_ms, 8.0);
  EXPECT_DOUBLE_EQ(loose.efficiency_oriented.metrics.latency_ms, 1.0);
}

TEST(DesignPoints, EmptySweepThrows) {
  EXPECT_THROW(search::select_design_points({}, kLatency), std::invalid_argument);
}

// --- Non-finite outcome regressions ----------------------------------------
// A sweep entry whose retrain diverged (NaN accuracy) or whose metrics are
// poisoned used to propagate silently: NaN compares false against every
// candidate, so whichever outcome the scan happened to visit first "won".
// Non-finite entries are now skipped; an all-non-finite sweep throws.

TEST(DesignPoints, NanAccuracySeedDoesNotWinA) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  std::vector<search::SearchOutcome> sweep = {make(nan, 5.0),
                                              make(91.0, 6.0)};
  const auto p = search::select_design_points(sweep, kLatency, 1.0);
  EXPECT_DOUBLE_EQ(p.accuracy_oriented.val_accuracy_pct, 91.0);
}

TEST(DesignPoints, NanMetricsDoNotPoisonB) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  std::vector<search::SearchOutcome> sweep = {make(94.0, 8.0),
                                              make(93.8, nan),
                                              make(93.5, 3.0)};
  const auto p = search::select_design_points(sweep, kLatency, 1.0);
  // The NaN-latency entry is within the accuracy budget but must not be
  // selected (NaN cost compares false against everything).
  EXPECT_DOUBLE_EQ(p.efficiency_oriented.metrics.latency_ms, 3.0);
}

TEST(DesignPoints, InfiniteCostOutcomeIsSkipped) {
  const double inf = std::numeric_limits<double>::infinity();
  std::vector<search::SearchOutcome> sweep = {make(95.0, inf),
                                              make(92.0, 4.0)};
  const auto p = search::select_design_points(sweep, kLatency, 5.0);
  EXPECT_DOUBLE_EQ(p.accuracy_oriented.val_accuracy_pct, 92.0);
  EXPECT_DOUBLE_EQ(p.efficiency_oriented.metrics.latency_ms, 4.0);
}

TEST(DesignPoints, AllNonFiniteThrows) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const std::vector<search::SearchOutcome> sweep = {make(nan, 1.0),
                                                    make(90.0, nan)};
  EXPECT_THROW(search::select_design_points(sweep, kLatency),
               std::invalid_argument);
}

}  // namespace
