#include <gtest/gtest.h>

#include "data/synthetic.h"

namespace {

using namespace dance::data;

TEST(Synthetic, ShapesAndLabels) {
  SyntheticTaskConfig cfg;
  cfg.train_samples = 100;
  cfg.val_samples = 40;
  const SyntheticTask task = make_synthetic_task(cfg);
  EXPECT_EQ(task.train.size(), 100);
  EXPECT_EQ(task.val.size(), 40);
  EXPECT_EQ(task.train.x.cols(), cfg.input_dim);
  for (int y : task.train.y) {
    EXPECT_GE(y, 0);
    EXPECT_LT(y, cfg.num_classes);
  }
}

TEST(Synthetic, DeterministicForSameSeed) {
  SyntheticTaskConfig cfg;
  cfg.train_samples = 50;
  cfg.val_samples = 10;
  const SyntheticTask a = make_synthetic_task(cfg);
  const SyntheticTask b = make_synthetic_task(cfg);
  for (std::size_t i = 0; i < a.train.x.numel(); ++i) {
    EXPECT_FLOAT_EQ(a.train.x[i], b.train.x[i]);
  }
  EXPECT_EQ(a.train.y, b.train.y);
}

TEST(Synthetic, DifferentSeedsDiffer) {
  SyntheticTaskConfig cfg;
  cfg.train_samples = 50;
  cfg.val_samples = 10;
  const SyntheticTask a = make_synthetic_task(cfg);
  cfg.seed = 999;
  const SyntheticTask b = make_synthetic_task(cfg);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.train.x.numel(); ++i) {
    if (a.train.x[i] != b.train.x[i]) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Synthetic, AllClassesPresent) {
  SyntheticTaskConfig cfg;
  cfg.train_samples = 2000;
  cfg.val_samples = 10;
  const SyntheticTask task = make_synthetic_task(cfg);
  std::vector<int> counts(static_cast<std::size_t>(cfg.num_classes), 0);
  for (int y : task.train.y) counts[static_cast<std::size_t>(y)]++;
  for (int c : counts) EXPECT_GT(c, 0);
}

TEST(Synthetic, BatchGather) {
  SyntheticTaskConfig cfg;
  cfg.train_samples = 20;
  cfg.val_samples = 5;
  const SyntheticTask task = make_synthetic_task(cfg);
  auto [x, y] = task.train.batch({3, 7, 11});
  EXPECT_EQ(x.rows(), 3);
  EXPECT_EQ(x.cols(), cfg.input_dim);
  EXPECT_FLOAT_EQ(x.at(1, 0), task.train.x.at(7, 0));
  EXPECT_EQ(y[2], task.train.y[11]);
}

TEST(Synthetic, BatchOutOfRangeThrows) {
  SyntheticTaskConfig cfg;
  cfg.train_samples = 10;
  cfg.val_samples = 5;
  const SyntheticTask task = make_synthetic_task(cfg);
  EXPECT_THROW(task.train.batch({10}), std::out_of_range);
}

TEST(Synthetic, BadConfigThrows) {
  SyntheticTaskConfig cfg;
  cfg.num_classes = 1;
  EXPECT_THROW(make_synthetic_task(cfg), std::invalid_argument);
}

}  // namespace
