// Unit suites for dance::obs: the instrument registry, histogram semantics,
// trace spans, the JSON/Prometheus exporters, the typed util::env readers
// that feed the registry's config section, and the util::Table styles shared
// by profiler_report and Service::stats_report.
//
// Suite names carry a lowercase "obs" so `ctest -R obs` selects these
// alongside the property suite in test_property_obs.cpp.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "arch/ops.h"
#include "data/synthetic.h"
#include "nas/fixed_net.h"
#include "nas/supernet.h"
#include "nas/trainer.h"
#include "obs/export.h"
#include "obs/registry.h"
#include "obs/span.h"
#include "runtime/profiler.h"
#include "util/env.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using namespace dance;

// --- Registry ---------------------------------------------------------------

TEST(obs_registry, CounterIdentityAndAccumulation) {
  auto& reg = obs::Registry::global();
  obs::Counter& a = reg.counter("test.obs.counter_identity");
  obs::Counter& b = reg.counter("test.obs.counter_identity");
  EXPECT_EQ(&a, &b);  // same name -> same instrument, forever

  const std::uint64_t before = a.value();
  a.inc();
  b.inc(4);
  EXPECT_EQ(a.value(), before + 5);
}

TEST(obs_registry, GaugeLastWriteWins) {
  obs::Gauge& g = obs::Registry::global().gauge("test.obs.gauge");
  g.set(1.5);
  g.set(-2.25);
  EXPECT_DOUBLE_EQ(g.value(), -2.25);
}

TEST(obs_registry, SnapshotSortedByName) {
  auto& reg = obs::Registry::global();
  (void)reg.counter("test.obs.zz");
  (void)reg.counter("test.obs.aa");
  const auto snap = reg.snapshot();
  ASSERT_GE(snap.counters.size(), 2U);
  for (std::size_t i = 1; i < snap.counters.size(); ++i) {
    EXPECT_LT(snap.counters[i - 1].first, snap.counters[i].first);
  }
}

TEST(obs_registry, ResetPrefixZeroesOnlyMatches) {
  auto& reg = obs::Registry::global();
  obs::Counter& in = reg.counter("test.obs.prefix.inside");
  obs::Counter& out = reg.counter("test.obs.outside");
  in.inc(3);
  out.inc(7);
  const std::uint64_t out_before = out.value();
  reg.reset_prefix("test.obs.prefix.");
  EXPECT_EQ(in.value(), 0U);
  EXPECT_EQ(out.value(), out_before);
}

// --- Histogram --------------------------------------------------------------

TEST(obs_histogram, StatsMatchPercentileOracle) {
  obs::Histogram& h = obs::Registry::global().histogram(
      "test.obs.hist_oracle", {1.0, 10.0, 100.0});
  std::vector<double> samples;
  for (int i = 1; i <= 200; ++i) {
    const double v = static_cast<double>(i) * 0.5;
    h.observe(v);
    samples.push_back(v);
  }
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 200U);
  EXPECT_DOUBLE_EQ(s.min, 0.5);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_DOUBLE_EQ(s.p50, util::percentile(samples, 50.0));
  EXPECT_DOUBLE_EQ(s.p95, util::percentile(samples, 95.0));
}

TEST(obs_histogram, BucketsAreCumulativeWithInfLast) {
  obs::Histogram& h = obs::Registry::global().histogram(
      "test.obs.hist_buckets", {1.0, 2.0, 4.0});
  for (double v : {0.5, 1.0, 1.5, 3.0, 100.0}) h.observe(v);
  const auto s = h.snapshot();
  ASSERT_EQ(s.bounds.size(), 3U);
  ASSERT_EQ(s.buckets.size(), 4U);  // 3 finite bounds + the +Inf bucket
  EXPECT_EQ(s.buckets[0], 2U);      // <= 1.0 (le is inclusive)
  EXPECT_EQ(s.buckets[1], 3U);      // <= 2.0
  EXPECT_EQ(s.buckets[2], 4U);      // <= 4.0
  EXPECT_EQ(s.buckets[3], s.count);  // +Inf == total
  // Cumulative: never decreasing.
  for (std::size_t i = 1; i < s.buckets.size(); ++i) {
    EXPECT_GE(s.buckets[i], s.buckets[i - 1]);
  }
}

TEST(obs_histogram, RegistryResetZeroesButKeepsIdentity) {
  auto& reg = obs::Registry::global();
  obs::Histogram& h = reg.histogram("test.obs.hist_reset", {1.0});
  h.observe(0.25);
  reg.reset_prefix("test.obs.hist_reset");
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 0U);
  EXPECT_DOUBLE_EQ(s.sum, 0.0);
  // Same reference still usable after reset.
  h.observe(2.0);
  EXPECT_EQ(h.snapshot().count, 1U);
  EXPECT_EQ(&h, &reg.histogram("test.obs.hist_reset"));
}

TEST(obs_histogram, ProfilerRidesTheRegistry) {
  runtime::profiler_reset();
  runtime::profiler_record("obs_test_op", 2.0);
  runtime::profiler_record("obs_test_op", 4.0);
  // The profiler's storage IS the registry histogram family.
  const auto s = obs::Registry::global()
                     .histogram(std::string(runtime::kProfilerMetricPrefix) +
                                "obs_test_op")
                     .snapshot();
  EXPECT_EQ(s.count, 2U);
  EXPECT_DOUBLE_EQ(s.sum, 6.0);
  const auto snap = runtime::profiler_snapshot();
  ASSERT_EQ(snap.size(), 1U);
  EXPECT_EQ(snap[0].first, "obs_test_op");
  EXPECT_EQ(snap[0].second.calls, 2U);
  runtime::profiler_reset();
  EXPECT_TRUE(runtime::profiler_snapshot().empty());
}

// --- Spans ------------------------------------------------------------------

TEST(obs_spans, NestedSpansRecordParentIds) {
  obs::clear_spans();
  {
    obs::ScopedSpan outer("obs_test.outer");
    obs::ScopedSpan inner("obs_test.inner");
  }
  const auto spans = obs::recent_spans();
  ASSERT_EQ(spans.size(), 2U);
  // Sorted by start time: outer starts first.
  EXPECT_EQ(spans[0].name, "obs_test.outer");
  EXPECT_EQ(spans[1].name, "obs_test.inner");
  EXPECT_EQ(spans[0].parent, 0U);             // root
  EXPECT_EQ(spans[1].parent, spans[0].id);    // nested under outer
  EXPECT_GE(spans[0].dur_ms, spans[1].dur_ms);
  obs::clear_spans();
}

TEST(obs_spans, TrainerEmitsEpochSpansAndLossGauge) {
  obs::clear_spans();
  data::SyntheticTaskConfig dcfg;
  dcfg.input_dim = 8;
  dcfg.num_classes = 4;
  dcfg.train_samples = 64;
  dcfg.val_samples = 16;
  const data::SyntheticTask task = data::make_synthetic_task(dcfg);
  nas::SuperNetConfig cfg;
  cfg.input_dim = 8;
  cfg.num_classes = 4;
  cfg.width = 8;
  cfg.num_blocks = 2;
  util::Rng rng(3);
  nas::FixedNet net(cfg, arch::Architecture(2, arch::CandidateOp::kMbConv3x3E3),
                    rng);
  nas::FixedTrainOptions opts;
  opts.epochs = 2;
  opts.batch_size = 32;
  (void)nas::train_fixed_net(net, task, opts);

  int epoch_spans = 0;
  for (const auto& s : obs::recent_spans()) {
    if (s.name == "nas.fixed.epoch") ++epoch_spans;
  }
  EXPECT_EQ(epoch_spans, 2);
  EXPECT_GT(obs::Registry::global().gauge("nas.fixed.loss").value(), 0.0);
  obs::clear_spans();
}

// --- Exporters --------------------------------------------------------------

TEST(obs_export, JsonHasEverySectionAndBalancedBraces) {
  obs::Registry::global().counter("test.obs.export_counter").inc();
  obs::Registry::global().histogram("test.obs.export_hist", {1.0}).observe(0.5);
  const std::string doc = obs::export_json();
  for (const char* key :
       {"\"build\"", "\"config\"", "\"counters\"", "\"gauges\"",
        "\"histograms\"", "\"spans\"", "\"test.obs.export_counter\"",
        "\"test.obs.export_hist\"", "\"+Inf\""}) {
    EXPECT_NE(doc.find(key), std::string::npos) << "missing " << key;
  }
  long depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < doc.size(); ++i) {
    const char c = doc[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
}

TEST(obs_export, PrometheusEmitsTypedFamiliesWithInfBucket) {
  obs::Registry::global().counter("test.obs.prom_counter").inc(2);
  obs::Registry::global().histogram("test.obs.prom_hist", {1.0}).observe(3.0);
  const std::string text = obs::export_prometheus();
  EXPECT_NE(text.find("# TYPE dance_test_obs_prom_counter counter"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE dance_test_obs_prom_hist histogram"),
            std::string::npos);
  EXPECT_NE(text.find("dance_test_obs_prom_hist_bucket{le=\"+Inf\"}"),
            std::string::npos);
  EXPECT_NE(text.find("dance_test_obs_prom_hist_sum"), std::string::npos);
  EXPECT_NE(text.find("dance_test_obs_prom_hist_count"), std::string::npos);
  // No raw dots survive in metric names.
  EXPECT_EQ(text.find("dance_test.obs"), std::string::npos);
}

TEST(obs_export, WriteJsonFileRoundTrips) {
  const std::string path = ::testing::TempDir() + "dance_obs_export_test.json";
  ASSERT_TRUE(obs::write_json_file(path));
  FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string content;
  char buf[4096];
  for (std::size_t n; (n = std::fread(buf, 1, sizeof(buf), f)) > 0;) {
    content.append(buf, n);
  }
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_FALSE(content.empty());
  EXPECT_NE(content.find("\"counters\""), std::string::npos);
  EXPECT_FALSE(obs::write_json_file("/nonexistent-dir/x/y.json"));
}

// --- util::env --------------------------------------------------------------

TEST(obs_env, TypedReadersParseValidateAndFallBack) {
  setenv("DANCE_OBS_TEST_INT", "42", 1);
  EXPECT_EQ(util::env_int("DANCE_OBS_TEST_INT", 7), 42);
  setenv("DANCE_OBS_TEST_INT", "garbage", 1);
  EXPECT_EQ(util::env_int("DANCE_OBS_TEST_INT", 7), 7);
  setenv("DANCE_OBS_TEST_INT", "-5", 1);
  // Out of range -> fallback, never clamped.
  EXPECT_EQ(util::env_int("DANCE_OBS_TEST_INT", 7, 1, 100), 7);
  unsetenv("DANCE_OBS_TEST_INT");
  EXPECT_EQ(util::env_int("DANCE_OBS_TEST_INT", 7), 7);

  setenv("DANCE_OBS_TEST_BOOL", "off", 1);
  EXPECT_FALSE(util::env_bool("DANCE_OBS_TEST_BOOL", true));
  setenv("DANCE_OBS_TEST_BOOL", "yes", 1);
  EXPECT_TRUE(util::env_bool("DANCE_OBS_TEST_BOOL", false));
  unsetenv("DANCE_OBS_TEST_BOOL");
  EXPECT_TRUE(util::env_bool("DANCE_OBS_TEST_BOOL", true));

  setenv("DANCE_OBS_TEST_U64", "0x10", 1);
  EXPECT_EQ(util::env_u64("DANCE_OBS_TEST_U64", 1), 16U);
  unsetenv("DANCE_OBS_TEST_U64");

  setenv("DANCE_OBS_TEST_DBL", "2.5", 1);
  EXPECT_DOUBLE_EQ(util::env_double("DANCE_OBS_TEST_DBL", 1.0), 2.5);
  setenv("DANCE_OBS_TEST_DBL", "1000", 1);
  EXPECT_DOUBLE_EQ(util::env_double("DANCE_OBS_TEST_DBL", 1.0, 0.0, 10.0), 1.0);
  unsetenv("DANCE_OBS_TEST_DBL");

  setenv("DANCE_OBS_TEST_STR", "hello", 1);
  EXPECT_EQ(util::env_string("DANCE_OBS_TEST_STR", "d"), "hello");
  unsetenv("DANCE_OBS_TEST_STR");
  EXPECT_EQ(util::env_string("DANCE_OBS_TEST_STR", "d"), "d");
}

TEST(obs_env, EveryReadIsRecordedInTheRegistry) {
  setenv("DANCE_OBS_TEST_RECORDED", "123", 1);
  (void)util::env_int("DANCE_OBS_TEST_RECORDED", 0);
  unsetenv("DANCE_OBS_TEST_RECORDED");
  (void)util::env_string("DANCE_OBS_TEST_FELL_BACK", "d");  // unset -> default
  const auto snap = obs::Registry::global().snapshot();
  bool found_env = false;
  bool found_default = false;
  for (const auto& [name, knob] : snap.env) {
    if (name == "DANCE_OBS_TEST_RECORDED") {
      found_env = knob.from_env && knob.value == "123";
    }
    if (name == "DANCE_OBS_TEST_FELL_BACK") {
      found_default = !knob.from_env && knob.value == "d";
    }
  }
  EXPECT_TRUE(found_env);
  EXPECT_TRUE(found_default);
}

// --- util::Table styles -----------------------------------------------------

TEST(obs_table, PlainStyleAlignsWithoutPipes) {
  util::Table t({"metric", "value"});
  t.set_align({util::Table::Align::kLeft, util::Table::Align::kRight});
  t.add_row({"queries", "3"});
  t.add_row({"latency p95 us", "361.0"});
  const std::string plain = t.to_string(util::Table::Style::plain());
  EXPECT_EQ(plain.find('|'), std::string::npos);
  EXPECT_NE(plain.find("metric"), std::string::npos);
  EXPECT_NE(plain.find("-----"), std::string::npos);
  // Right alignment: the short value ends at the same column as the header.
  const std::string md = t.to_string();  // default markdown look preserved
  EXPECT_NE(md.find("| metric"), std::string::npos);
  EXPECT_NE(md.find("|----"), std::string::npos);
}

}  // namespace
