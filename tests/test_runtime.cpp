// Correctness of the dance::runtime execution layer: the persistent thread
// pool (coverage, reentrancy, concurrent callers, grain handling, serial
// bit-identity) and the op-level profiler aggregation.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <vector>

#include "accel/cost_function.h"
#include "arch/cost_table.h"
#include "evalnet/dataset.h"
#include "hwgen/exhaustive.h"
#include "runtime/profiler.h"
#include "runtime/thread_pool.h"
#include "tensor/ops.h"
#include "util/parallel.h"

namespace {

using namespace dance;

TEST(ThreadPool, CoversWholeRangeExactlyOnce) {
  runtime::ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(10000);
  pool.parallel_for(0, 10000, /*grain=*/64, [&](long lo, long hi) {
    for (long i = lo; i < hi; ++i) hits[static_cast<std::size_t>(i)]++;
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, EmptyAndReversedRangesAreNoops) {
  runtime::ThreadPool pool(4);
  bool called = false;
  pool.parallel_for(5, 5, 1, [&](long, long) { called = true; });
  pool.parallel_for(7, 3, 1, [&](long, long) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, SmallRangeRunsInlineAsOneChunk) {
  runtime::ThreadPool pool(4);
  std::atomic<int> calls{0};
  long seen_lo = -1;
  long seen_hi = -1;
  pool.parallel_for(0, 100, /*grain=*/1024, [&](long lo, long hi) {
    ++calls;
    seen_lo = lo;
    seen_hi = hi;
  });
  EXPECT_EQ(calls.load(), 1);
  EXPECT_EQ(seen_lo, 0);
  EXPECT_EQ(seen_hi, 100);
}

TEST(ThreadPool, GrainBoundsChunkCount) {
  runtime::ThreadPool pool(4);
  std::atomic<int> calls{0};
  std::atomic<long> covered{0};
  pool.parallel_for(0, 4096, /*grain=*/1024, [&](long lo, long hi) {
    ++calls;
    covered += hi - lo;
  });
  EXPECT_LE(calls.load(), 4);
  EXPECT_GE(calls.load(), 1);
  EXPECT_EQ(covered.load(), 4096);
}

TEST(ThreadPool, NestedCallsOnSamePoolRunInline) {
  runtime::ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(256);
  pool.parallel_for(0, 16, /*grain=*/1, [&](long lo, long hi) {
    for (long i = lo; i < hi; ++i) {
      // Inner loop on the same pool must execute inline on this lane
      // rather than deadlock waiting for busy workers.
      pool.parallel_for(i * 16, (i + 1) * 16, 1, [&](long ilo, long ihi) {
        for (long j = ilo; j < ihi; ++j) hits[static_cast<std::size_t>(j)]++;
      });
    }
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ConcurrentCallersFromAnotherPoolAreSerializedSafely) {
  // Lanes of a driver pool all submit to a second shared pool at once;
  // jobs must serialize without loss, duplication, or deadlock.
  runtime::ThreadPool driver(4);
  runtime::ThreadPool shared(4);
  constexpr long kCallers = 8;
  constexpr long kPerCaller = 2048;
  std::vector<std::atomic<int>> hits(kCallers * kPerCaller);
  driver.parallel_for(0, kCallers, /*grain=*/1, [&](long lo, long hi) {
    for (long c = lo; c < hi; ++c) {
      shared.parallel_for(c * kPerCaller, (c + 1) * kPerCaller, /*grain=*/64,
                          [&](long ilo, long ihi) {
                            for (long j = ilo; j < ihi; ++j) {
                              hits[static_cast<std::size_t>(j)]++;
                            }
                          });
    }
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, OneLaneAndManyLanesAreBitIdentical) {
  // A float computation whose per-index result is independent of the
  // partitioning must agree bitwise between a 1-lane and an N-lane pool.
  runtime::ThreadPool p1(1);
  runtime::ThreadPool p4(4);
  const long n = 5000;
  std::vector<float> a(static_cast<std::size_t>(n));
  std::vector<float> b(static_cast<std::size_t>(n));
  const auto body = [](std::vector<float>& out) {
    return [&out](long lo, long hi) {
      for (long i = lo; i < hi; ++i) {
        const float x = static_cast<float>(i) * 0.37F;
        out[static_cast<std::size_t>(i)] = std::sin(x) * std::exp(-x * 1e-3F);
      }
    };
  };
  p1.parallel_for(0, n, 16, body(a));
  p4.parallel_for(0, n, 16, body(b));
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(ThreadPool, SerialGuardForcesInlineExecution) {
  runtime::ThreadPool pool(4);
  std::atomic<int> calls{0};
  {
    runtime::SerialGuard guard;
    pool.parallel_for(0, 100000, /*grain=*/1, [&](long, long) { ++calls; });
  }
  EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPool, DefaultNumThreadsHonorsEnvOverride) {
  ::setenv("DANCE_NUM_THREADS", "3", 1);
  EXPECT_EQ(runtime::default_num_threads(), 3);
  ::setenv("DANCE_NUM_THREADS", "0", 1);  // invalid -> hardware default
  EXPECT_GE(runtime::default_num_threads(), 1);
  ::unsetenv("DANCE_NUM_THREADS");
  EXPECT_GE(runtime::default_num_threads(), 1);
}

TEST(ParallelFor, DefaultGrainKeepsTinyRangesInline) {
  std::atomic<int> calls{0};
  util::parallel_for(0, 100, [&](long, long) { ++calls; });
  EXPECT_EQ(calls.load(), 1);
}

class RuntimeGroundTruthTest : public ::testing::Test {
 protected:
  RuntimeGroundTruthTest()
      : arch_space_(arch::cifar10_backbone()),
        hw_space_({.pe_min = 8, .pe_max = 12, .rf_min = 8, .rf_max = 32,
                   .rf_step = 8}),
        table_(arch_space_, hw_space_, model_) {}

  arch::ArchSpace arch_space_;
  hwgen::HwSearchSpace hw_space_;
  accel::CostModel model_;
  arch::CostTable table_;
};

TEST_F(RuntimeGroundTruthTest, ExhaustiveSearchMatchesSerialBitwise) {
  hwgen::ExhaustiveSearch search(hw_space_, model_);
  util::Rng rng(42);
  const auto layers = arch_space_.lower(arch_space_.random(rng));
  const auto cost_fn = accel::edap_cost();

  hwgen::HwSearchResult serial;
  std::vector<accel::CostMetrics> serial_all;
  {
    runtime::SerialGuard guard;
    serial = search.run(layers, cost_fn);
    serial_all = search.evaluate_all(layers);
  }
  const hwgen::HwSearchResult parallel = search.run(layers, cost_fn);
  const auto parallel_all = search.evaluate_all(layers);

  EXPECT_EQ(serial.config.pe_x, parallel.config.pe_x);
  EXPECT_EQ(serial.config.pe_y, parallel.config.pe_y);
  EXPECT_EQ(serial.config.rf_size, parallel.config.rf_size);
  EXPECT_EQ(serial.config.dataflow, parallel.config.dataflow);
  EXPECT_EQ(serial.cost, parallel.cost);
  EXPECT_EQ(serial.metrics.latency_ms, parallel.metrics.latency_ms);
  EXPECT_EQ(serial.metrics.energy_mj, parallel.metrics.energy_mj);
  EXPECT_EQ(serial.metrics.area_mm2, parallel.metrics.area_mm2);

  ASSERT_EQ(serial_all.size(), parallel_all.size());
  for (std::size_t i = 0; i < serial_all.size(); ++i) {
    EXPECT_EQ(serial_all[i].latency_ms, parallel_all[i].latency_ms);
    EXPECT_EQ(serial_all[i].energy_mj, parallel_all[i].energy_mj);
    EXPECT_EQ(serial_all[i].area_mm2, parallel_all[i].area_mm2);
  }
}

TEST_F(RuntimeGroundTruthTest, CostTableOptimalMatchesSerialBitwise) {
  util::Rng rng(7);
  const arch::Architecture a = arch_space_.random(rng);
  const auto cost_fn = accel::edap_cost();
  hwgen::HwSearchResult serial;
  {
    runtime::SerialGuard guard;
    serial = table_.optimal(a, cost_fn);
  }
  const hwgen::HwSearchResult parallel = table_.optimal(a, cost_fn);
  EXPECT_EQ(hw_space_.index_of(serial.config), hw_space_.index_of(parallel.config));
  EXPECT_EQ(serial.cost, parallel.cost);
  EXPECT_EQ(serial.metrics.latency_ms, parallel.metrics.latency_ms);
}

TEST_F(RuntimeGroundTruthTest, DatasetGenerationMatchesSerialBitwise) {
  const auto cost_fn = accel::edap_cost();
  util::Rng r1(123);
  util::Rng r2(123);
  evalnet::EvaluatorDataset serial;
  {
    runtime::SerialGuard guard;
    serial = evalnet::generate_evaluator_dataset(table_, cost_fn, 20, r1);
  }
  const auto parallel = evalnet::generate_evaluator_dataset(table_, cost_fn, 20, r2);
  ASSERT_EQ(serial.samples.size(), parallel.samples.size());
  for (std::size_t i = 0; i < serial.samples.size(); ++i) {
    EXPECT_EQ(serial.samples[i].arch_enc, parallel.samples[i].arch_enc);
    EXPECT_EQ(serial.samples[i].hw_labels, parallel.samples[i].hw_labels);
    EXPECT_EQ(serial.samples[i].hw_enc, parallel.samples[i].hw_enc);
    for (int m = 0; m < 3; ++m) {
      EXPECT_EQ(serial.samples[i].metrics[static_cast<std::size_t>(m)],
                parallel.samples[i].metrics[static_cast<std::size_t>(m)]);
    }
  }
}

TEST(RuntimeTensorOps, ParallelizedOpsMatchSerialBitwise) {
  using tensor::Tensor;
  using tensor::Variable;
  util::Rng rng(5);
  Tensor x({64, 48});
  Tensor y({48, 32});
  for (std::size_t i = 0; i < x.numel(); ++i) x[i] = rng.normal();
  for (std::size_t i = 0; i < y.numel(); ++i) y[i] = rng.normal();

  // Exercises the pooled loops end to end: softmax / log-softmax rows,
  // matmul forward + backward, and batchnorm forward + backward.
  const auto run_all = [&]() {
    Variable xv(x, /*requires_grad=*/true);
    Variable yv(y, /*requires_grad=*/true);
    Variable gamma(Tensor::full({48}, 1.0F), /*requires_grad=*/true);
    Variable beta(Tensor::zeros({48}), /*requires_grad=*/true);
    Tensor running_mean = Tensor::zeros({48});
    Tensor running_var = Tensor::full({48}, 1.0F);
    const Variable bn =
        tensor::ops::batchnorm(xv, gamma, beta, running_mean, running_var,
                               0.1F, 1e-5F, /*training=*/true);
    const Variable sm = tensor::ops::softmax_rows(bn);
    const Variable lsm = tensor::ops::log_softmax_rows(yv);
    const Variable m = tensor::ops::matmul(sm, lsm);
    const Variable loss = tensor::ops::mean_all(m);
    loss.backward();
    std::vector<float> out;
    for (std::size_t i = 0; i < m.value().numel(); ++i) out.push_back(m.value()[i]);
    for (std::size_t i = 0; i < xv.grad().numel(); ++i) out.push_back(xv.grad()[i]);
    for (std::size_t i = 0; i < yv.grad().numel(); ++i) out.push_back(yv.grad()[i]);
    for (std::size_t i = 0; i < running_mean.numel(); ++i) out.push_back(running_mean[i]);
    for (std::size_t i = 0; i < running_var.numel(); ++i) out.push_back(running_var[i]);
    return out;
  };

  std::vector<float> serial;
  {
    runtime::SerialGuard guard;
    serial = run_all();
  }
  const std::vector<float> parallel = run_all();
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) EXPECT_EQ(serial[i], parallel[i]);
}

TEST(Profiler, AggregatesCallsAndRespectsEnableFlag) {
  runtime::profiler_reset();
  runtime::set_profiling_enabled(false);
  { DANCE_PROFILE_SCOPE("test.disabled_op"); }
  EXPECT_TRUE(runtime::profiler_snapshot().empty());
  EXPECT_TRUE(runtime::profiler_report().empty());

  runtime::set_profiling_enabled(true);
  for (int i = 0; i < 3; ++i) {
    DANCE_PROFILE_SCOPE("test.op_a");
  }
  { DANCE_PROFILE_SCOPE("test.op_b"); }
  runtime::set_profiling_enabled(false);

  const auto snap = runtime::profiler_snapshot();
  ASSERT_EQ(snap.size(), 2U);
  std::uint64_t calls_a = 0;
  std::uint64_t calls_b = 0;
  for (const auto& [name, stats] : snap) {
    EXPECT_GE(stats.total_ms, 0.0);
    EXPECT_GE(stats.max_ms, stats.min_ms);
    EXPECT_LE(stats.mean_ms() * static_cast<double>(stats.calls),
              stats.total_ms + 1e-9);
    if (name == "test.op_a") calls_a = stats.calls;
    if (name == "test.op_b") calls_b = stats.calls;
  }
  EXPECT_EQ(calls_a, 3U);
  EXPECT_EQ(calls_b, 1U);

  const std::string report = runtime::profiler_report();
  EXPECT_NE(report.find("test.op_a"), std::string::npos);
  EXPECT_NE(report.find("calls"), std::string::npos);

  runtime::profiler_reset();
  EXPECT_TRUE(runtime::profiler_snapshot().empty());
}

TEST(Profiler, AggregatesExactlyUnderPooledConcurrency) {
  // Torn aggregation under the pool is the profiler's main hazard: every
  // worker lane records into the same aggregates. One profiled scope per
  // index must produce an exact call count and internally consistent
  // statistics at any thread count. (This test runs under the TSan CI job,
  // which turns any unlocked aggregate update into a hard failure.)
  const bool was_enabled = runtime::profiling_enabled();
  runtime::profiler_reset();
  runtime::set_profiling_enabled(true);

  constexpr long kIndices = 20000;
  constexpr int kRounds = 3;
  runtime::ThreadPool pool(8);
  std::atomic<long> executed{0};
  for (int round = 0; round < kRounds; ++round) {
    pool.parallel_for(0, kIndices, /*grain=*/64, [&](long lo, long hi) {
      for (long i = lo; i < hi; ++i) {
        DANCE_PROFILE_SCOPE("test.pooled_scope");
        executed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  runtime::set_profiling_enabled(was_enabled);
  EXPECT_EQ(executed.load(), kRounds * kIndices);

  bool found = false;
  for (const auto& [name, stats] : runtime::profiler_snapshot()) {
    if (name != "test.pooled_scope") continue;
    found = true;
    EXPECT_EQ(stats.calls, static_cast<std::uint64_t>(kRounds * kIndices));
    // Internal consistency: no partially-written accumulator survives.
    EXPECT_GE(stats.min_ms, 0.0);
    EXPECT_GE(stats.max_ms, stats.min_ms);
    EXPECT_GE(stats.total_ms, stats.max_ms);
    EXPECT_LE(stats.total_ms,
              stats.max_ms * static_cast<double>(stats.calls) + 1e-9);
  }
  EXPECT_TRUE(found);
  runtime::profiler_reset();
}

TEST(Profiler, ConcurrentDistinctNamesStaySeparate) {
  // Two op names recorded from interleaved pooled bodies must not bleed
  // counts into each other.
  const bool was_enabled = runtime::profiling_enabled();
  runtime::profiler_reset();
  runtime::set_profiling_enabled(true);

  runtime::ThreadPool pool(6);
  pool.parallel_for(0, 6000, /*grain=*/16, [&](long lo, long hi) {
    for (long i = lo; i < hi; ++i) {
      if (i % 2 == 0) {
        DANCE_PROFILE_SCOPE("test.even_scope");
      } else {
        DANCE_PROFILE_SCOPE("test.odd_scope");
      }
    }
  });

  runtime::set_profiling_enabled(was_enabled);
  std::uint64_t even = 0;
  std::uint64_t odd = 0;
  for (const auto& [name, stats] : runtime::profiler_snapshot()) {
    if (name == "test.even_scope") even = stats.calls;
    if (name == "test.odd_scope") odd = stats.calls;
  }
  EXPECT_EQ(even, 3000U);
  EXPECT_EQ(odd, 3000U);
  runtime::profiler_reset();
}

TEST(Profiler, RecordAccumulatesTotals) {
  runtime::profiler_reset();
  runtime::profiler_record("test.manual", 1.5);
  runtime::profiler_record("test.manual", 2.5);
  const auto snap = runtime::profiler_snapshot();
  ASSERT_EQ(snap.size(), 1U);
  EXPECT_EQ(snap[0].first, "test.manual");
  EXPECT_EQ(snap[0].second.calls, 2U);
  EXPECT_DOUBLE_EQ(snap[0].second.total_ms, 4.0);
  EXPECT_DOUBLE_EQ(snap[0].second.min_ms, 1.5);
  EXPECT_DOUBLE_EQ(snap[0].second.max_ms, 2.5);
  EXPECT_DOUBLE_EQ(snap[0].second.mean_ms(), 2.0);
  // Percentiles interpolate over the recorded samples (R-7 ranks).
  EXPECT_DOUBLE_EQ(snap[0].second.p50_ms, 2.0);
  EXPECT_DOUBLE_EQ(snap[0].second.p95_ms, 2.45);
  runtime::profiler_reset();
}

TEST(Profiler, ReportIncludesPercentileColumns) {
  runtime::profiler_reset();
  runtime::profiler_record("test.percentiles", 1.0);
  const std::string report = runtime::profiler_report();
  EXPECT_NE(report.find("p50_ms"), std::string::npos);
  EXPECT_NE(report.find("p95_ms"), std::string::npos);
  runtime::profiler_reset();
}

}  // namespace
