// The differentiable Cost_HW term (search/cost_term.h) must agree with the
// scalar cost functions used for exact hardware generation (Eq. 3 linear,
// Eq. 4 EDAP): a mismatch would mean the gradient search optimizes a
// different objective than the generator selecting the final accelerator.
#include <gtest/gtest.h>

#include <cmath>

#include "search/cost_term.h"
#include "testing/property.h"
#include "util/rng.h"

namespace testing_ = dance::testing;

namespace {

using namespace dance;
using search::CostKind;
using tensor::Tensor;
using tensor::Variable;

Tensor metrics_tensor(double lat, double energy, double area) {
  Tensor t({1, 3});
  t[0] = static_cast<float>(lat);
  t[1] = static_cast<float>(energy);
  t[2] = static_cast<float>(area);
  return t;
}

struct MetricsCase {
  double lat, energy, area;
  std::string show() const {
    return "Metrics(lat=" + std::to_string(lat) +
           " energy=" + std::to_string(energy) +
           " area=" + std::to_string(area) + ")";
  }
};

testing_::Generator<MetricsCase> metrics_gen() {
  testing_::Generator<MetricsCase> gen;
  gen.sample = [](util::Rng& rng) {
    // Log-uniform over the realistic metric magnitudes (sub-ms .. seconds,
    // and similar spreads for energy/area).
    const auto log_uniform = [&rng](float lo, float hi) {
      return std::pow(10.0, static_cast<double>(rng.uniform(lo, hi)));
    };
    return MetricsCase{log_uniform(-3.0F, 1.5F), log_uniform(-3.0F, 1.5F),
                       log_uniform(-1.0F, 2.0F)};
  };
  gen.show = [](const MetricsCase& m) { return m.show(); };
  return gen;
}

TEST(CostTerm, LinearVariableMatchesScalarCost) {
  const auto result = testing_::check<MetricsCase>(
      "Eq. 3 variable/scalar consistency", metrics_gen(),
      [](const MetricsCase& m, util::Rng&) -> std::string {
        const accel::LinearCostWeights w;
        const Variable mv(metrics_tensor(m.lat, m.energy, m.area));
        const double var_cost = static_cast<double>(
            search::hw_cost_variable(mv, CostKind::kLinear, w).value()[0]);

        accel::CostMetrics cm;
        cm.latency_ms = static_cast<double>(static_cast<float>(m.lat));
        cm.energy_mj = static_cast<double>(static_cast<float>(m.energy));
        cm.area_mm2 = static_cast<double>(static_cast<float>(m.area));
        const double fn_cost = search::make_cost_fn(CostKind::kLinear, w)(cm);
        // The variable path computes in float32; compare at float precision.
        if (std::abs(var_cost - fn_cost) > 1e-5 * (1.0 + std::abs(fn_cost))) {
          return "linear cost diverged: variable " + std::to_string(var_cost) +
                 " vs scalar " + std::to_string(fn_cost);
        }
        return "";
      });
  EXPECT_TRUE(result.ok) << result.report;
  EXPECT_GE(result.trials_run, 100);
}

TEST(CostTerm, EdapVariableMatchesScalarCost) {
  const auto result = testing_::check<MetricsCase>(
      "Eq. 4 variable/scalar consistency", metrics_gen(),
      [](const MetricsCase& m, util::Rng&) -> std::string {
        const Variable mv(metrics_tensor(m.lat, m.energy, m.area));
        const double var_cost = static_cast<double>(
            search::hw_cost_variable(mv, CostKind::kEdap).value()[0]);

        accel::CostMetrics cm;
        cm.latency_ms = static_cast<double>(static_cast<float>(m.lat));
        cm.energy_mj = static_cast<double>(static_cast<float>(m.energy));
        cm.area_mm2 = static_cast<double>(static_cast<float>(m.area));
        const double fn_cost = search::make_cost_fn(CostKind::kEdap)(cm);
        if (std::abs(var_cost - fn_cost) > 1e-4 * (1.0 + std::abs(fn_cost))) {
          return "EDAP cost diverged: variable " + std::to_string(var_cost) +
                 " vs scalar " + std::to_string(fn_cost);
        }
        return "";
      });
  EXPECT_TRUE(result.ok) << result.report;
  EXPECT_GE(result.trials_run, 100);
}

TEST(CostTerm, LinearGradientIsTheWeights) {
  // d(Cost)/d(metrics) for Eq. 3 is exactly (lambda_l, lambda_e, lambda_a).
  const accel::LinearCostWeights w;
  Variable metrics(metrics_tensor(1.5, 2.5, 3.5), /*requires_grad=*/true);
  search::hw_cost_variable(metrics, CostKind::kLinear, w).backward();
  EXPECT_NEAR(metrics.grad()[0], static_cast<float>(w.lambda_l), 1e-6);
  EXPECT_NEAR(metrics.grad()[1], static_cast<float>(w.lambda_e), 1e-6);
  EXPECT_NEAR(metrics.grad()[2], static_cast<float>(w.lambda_a), 1e-6);
}

TEST(CostTerm, EdapGradientIsTheProductRule) {
  // d(L*E*A)/dL = E*A, etc. This is the gradient that steers the
  // architecture away from expensive designs in Eq. 1.
  Variable metrics(metrics_tensor(2.0, 3.0, 5.0), /*requires_grad=*/true);
  search::hw_cost_variable(metrics, CostKind::kEdap).backward();
  EXPECT_NEAR(metrics.grad()[0], 15.0F, 1e-4);  // E*A
  EXPECT_NEAR(metrics.grad()[1], 10.0F, 1e-4);  // L*A
  EXPECT_NEAR(metrics.grad()[2], 6.0F, 1e-4);   // L*E
}

TEST(CostTerm, ToStringNamesBothKinds) {
  EXPECT_STREQ(search::to_string(CostKind::kLinear), "linear");
  EXPECT_STREQ(search::to_string(CostKind::kEdap), "EDAP");
}

}  // namespace
