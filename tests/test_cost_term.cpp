// The differentiable Cost_HW term (search/cost_term.h) must agree with the
// scalar cost functions used for exact hardware generation (Eq. 3 linear,
// Eq. 4 EDAP): a mismatch would mean the gradient search optimizes a
// different objective than the generator selecting the final accelerator.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "search/cost_term.h"
#include "search/warmup.h"
#include "testing/property.h"
#include "util/rng.h"

namespace testing_ = dance::testing;

namespace {

using namespace dance;
using search::CostKind;
using tensor::Tensor;
using tensor::Variable;

Tensor metrics_tensor(double lat, double energy, double area) {
  Tensor t({1, 3});
  t[0] = static_cast<float>(lat);
  t[1] = static_cast<float>(energy);
  t[2] = static_cast<float>(area);
  return t;
}

struct MetricsCase {
  double lat, energy, area;
  std::string show() const {
    return "Metrics(lat=" + std::to_string(lat) +
           " energy=" + std::to_string(energy) +
           " area=" + std::to_string(area) + ")";
  }
};

testing_::Generator<MetricsCase> metrics_gen() {
  testing_::Generator<MetricsCase> gen;
  gen.sample = [](util::Rng& rng) {
    // Log-uniform over the realistic metric magnitudes (sub-ms .. seconds,
    // and similar spreads for energy/area).
    const auto log_uniform = [&rng](float lo, float hi) {
      return std::pow(10.0, static_cast<double>(rng.uniform(lo, hi)));
    };
    return MetricsCase{log_uniform(-3.0F, 1.5F), log_uniform(-3.0F, 1.5F),
                       log_uniform(-1.0F, 2.0F)};
  };
  gen.show = [](const MetricsCase& m) { return m.show(); };
  return gen;
}

TEST(CostTerm, LinearVariableMatchesScalarCost) {
  const auto result = testing_::check<MetricsCase>(
      "Eq. 3 variable/scalar consistency", metrics_gen(),
      [](const MetricsCase& m, util::Rng&) -> std::string {
        const accel::LinearCostWeights w;
        const Variable mv(metrics_tensor(m.lat, m.energy, m.area));
        const double var_cost = static_cast<double>(
            search::hw_cost_variable(mv, CostKind::kLinear, w).value()[0]);

        accel::CostMetrics cm;
        cm.latency_ms = static_cast<double>(static_cast<float>(m.lat));
        cm.energy_mj = static_cast<double>(static_cast<float>(m.energy));
        cm.area_mm2 = static_cast<double>(static_cast<float>(m.area));
        const double fn_cost = search::make_cost_fn(CostKind::kLinear, w)(cm);
        // The variable path computes in float32; compare at float precision.
        if (std::abs(var_cost - fn_cost) > 1e-5 * (1.0 + std::abs(fn_cost))) {
          return "linear cost diverged: variable " + std::to_string(var_cost) +
                 " vs scalar " + std::to_string(fn_cost);
        }
        return "";
      });
  EXPECT_TRUE(result.ok) << result.report;
  EXPECT_GE(result.trials_run, 100);
}

TEST(CostTerm, EdapVariableMatchesScalarCost) {
  const auto result = testing_::check<MetricsCase>(
      "Eq. 4 variable/scalar consistency", metrics_gen(),
      [](const MetricsCase& m, util::Rng&) -> std::string {
        const Variable mv(metrics_tensor(m.lat, m.energy, m.area));
        const double var_cost = static_cast<double>(
            search::hw_cost_variable(mv, CostKind::kEdap).value()[0]);

        accel::CostMetrics cm;
        cm.latency_ms = static_cast<double>(static_cast<float>(m.lat));
        cm.energy_mj = static_cast<double>(static_cast<float>(m.energy));
        cm.area_mm2 = static_cast<double>(static_cast<float>(m.area));
        const double fn_cost = search::make_cost_fn(CostKind::kEdap)(cm);
        if (std::abs(var_cost - fn_cost) > 1e-4 * (1.0 + std::abs(fn_cost))) {
          return "EDAP cost diverged: variable " + std::to_string(var_cost) +
                 " vs scalar " + std::to_string(fn_cost);
        }
        return "";
      });
  EXPECT_TRUE(result.ok) << result.report;
  EXPECT_GE(result.trials_run, 100);
}

TEST(CostTerm, LinearGradientIsTheWeights) {
  // d(Cost)/d(metrics) for Eq. 3 is exactly (lambda_l, lambda_e, lambda_a).
  const accel::LinearCostWeights w;
  Variable metrics(metrics_tensor(1.5, 2.5, 3.5), /*requires_grad=*/true);
  search::hw_cost_variable(metrics, CostKind::kLinear, w).backward();
  EXPECT_NEAR(metrics.grad()[0], static_cast<float>(w.lambda_l), 1e-6);
  EXPECT_NEAR(metrics.grad()[1], static_cast<float>(w.lambda_e), 1e-6);
  EXPECT_NEAR(metrics.grad()[2], static_cast<float>(w.lambda_a), 1e-6);
}

TEST(CostTerm, EdapGradientIsTheProductRule) {
  // d(L*E*A)/dL = E*A, etc. This is the gradient that steers the
  // architecture away from expensive designs in Eq. 1.
  Variable metrics(metrics_tensor(2.0, 3.0, 5.0), /*requires_grad=*/true);
  search::hw_cost_variable(metrics, CostKind::kEdap).backward();
  EXPECT_NEAR(metrics.grad()[0], 15.0F, 1e-4);  // E*A
  EXPECT_NEAR(metrics.grad()[1], 10.0F, 1e-4);  // L*A
  EXPECT_NEAR(metrics.grad()[2], 6.0F, 1e-4);   // L*E
}

TEST(CostTerm, ToStringNamesBothKinds) {
  EXPECT_STREQ(search::to_string(CostKind::kLinear), "linear");
  EXPECT_STREQ(search::to_string(CostKind::kEdap), "EDAP");
}

// --- LambdaWarmup edge-case audit ------------------------------------------
// Regressions pinned table-style: negative warmup_epochs used to shift the
// ramp into negative epochs (and `epoch - warmup_epochs` overflowed for
// epochs near INT_MAX — signed UB the UBSan job would trip on); down-ramps
// (initial > target) are a supported schedule, not an accident.

TEST(CostTerm, LambdaWarmupEdgeCaseTable) {
  struct Case {
    const char* name;
    float initial, target;
    int warmup, ramp;
    int epoch;
    float expected;
  };
  const Case cases[] = {
      // Negative warmup behaves exactly like warmup 0.
      {"negative warmup, epoch 0", 0.0F, 1.0F, -5, 4, 0, 0.0F},
      {"negative warmup, mid-ramp", 0.0F, 1.0F, -5, 4, 2, 0.5F},
      {"negative warmup, past ramp", 0.0F, 1.0F, -5, 4, 10, 1.0F},
      // Epochs far past the ramp end clamp to the target — including
      // INT_MAX, which used to overflow the ramp-progress subtraction.
      {"INT_MAX epoch", 0.1F, 0.9F, 3, 5, std::numeric_limits<int>::max(),
       0.9F},
      {"INT_MAX epoch, negative warmup", 0.0F, 2.0F, -1, 2,
       std::numeric_limits<int>::max(), 2.0F},
      // Down-ramp: initial > target anneals monotonically down.
      {"down-ramp start", 2.0F, 0.5F, 2, 3, 1, 2.0F},
      {"down-ramp mid", 2.0F, 0.5F, 2, 3, 4, 1.0F},
      {"down-ramp end", 2.0F, 0.5F, 2, 3, 5, 0.5F},
      {"down-ramp far past end", 2.0F, 0.5F, 2, 3, 1000, 0.5F},
      // ramp < 1 behaves like a one-epoch jump.
      {"zero ramp holds through warmup", 0.2F, 0.9F, 4, 0, 3, 0.2F},
      {"zero ramp jumps after warmup", 0.2F, 0.9F, 4, 0, 5, 0.9F},
      {"negative ramp jumps after warmup", 0.2F, 0.9F, 4, -3, 5, 0.9F},
  };
  for (const Case& c : cases) {
    const search::LambdaWarmup w(c.initial, c.target, c.warmup, c.ramp);
    EXPECT_FLOAT_EQ(w.value(c.epoch), c.expected) << c.name;
  }
}

// --- Hard constraints (ConstraintSpec) --------------------------------------

TEST(Constraints, UnsetSpecIsDisabledAndAlwaysFeasible) {
  const search::ConstraintSpec spec;
  EXPECT_FALSE(spec.enabled());
  EXPECT_TRUE(spec.feasible(accel::CostMetrics{1e9, 1e9, 1e9}));
  EXPECT_DOUBLE_EQ(spec.violation(accel::CostMetrics{1e9, 1e9, 1e9}), 0.0);
}

TEST(Constraints, FeasibilityAndViolation) {
  search::ConstraintSpec spec;
  spec.area_budget_mm2 = 10.0;
  spec.latency_slo_ms = 2.0;
  EXPECT_TRUE(spec.enabled());
  EXPECT_TRUE(spec.feasible(accel::CostMetrics{2.0, 5.0, 10.0}));
  EXPECT_FALSE(spec.feasible(accel::CostMetrics{2.5, 5.0, 10.0}));
  EXPECT_FALSE(spec.feasible(accel::CostMetrics{2.0, 5.0, 15.0}));
  EXPECT_DOUBLE_EQ(spec.violation(accel::CostMetrics{2.0, 5.0, 10.0}), 0.0);
  // 25% over SLO + 50% over area budget.
  EXPECT_NEAR(spec.violation(accel::CostMetrics{2.5, 5.0, 15.0}), 0.75, 1e-12);
}

TEST(Constraints, NanMetricsAreNeverFeasible) {
  search::ConstraintSpec spec;
  spec.area_budget_mm2 = 10.0;
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(spec.feasible(accel::CostMetrics{nan, 1.0, 1.0}));
  EXPECT_FALSE(spec.feasible(accel::CostMetrics{1.0, 1.0, nan}));
  EXPECT_TRUE(std::isinf(spec.violation(accel::CostMetrics{nan, 1.0, 1.0})));
}

TEST(Constraints, ConstrainedCostFnOrdersByFeasibilityFirst) {
  search::ConstraintSpec spec;
  spec.latency_slo_ms = 2.0;
  const accel::HwCostFn fn =
      search::constrained_cost_fn(accel::edap_cost(), spec);
  // Feasible metrics keep the base cost.
  const accel::CostMetrics ok{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(fn(ok), accel::edap_cost()(ok));
  // Any infeasible cost dwarfs any feasible one, and worse violations cost
  // more (so "least violating" wins when nothing is feasible).
  const double bad1 = fn(accel::CostMetrics{2.5, 1.0, 1.0});
  const double bad2 = fn(accel::CostMetrics{4.0, 1.0, 1.0});
  EXPECT_GE(bad1, search::kInfeasibleCost);
  EXPECT_GT(bad2, bad1);
  EXPECT_LT(fn(ok), bad1);
}

TEST(Constraints, DisabledSpecReturnsBaseFnUnchanged) {
  const accel::HwCostFn fn = search::constrained_cost_fn(
      accel::edap_cost(), search::ConstraintSpec{});
  const accel::CostMetrics m{7.0, 11.0, 13.0};
  EXPECT_DOUBLE_EQ(fn(m), accel::edap_cost()(m));
}

TEST(Constraints, PenaltyVariableZeroInsideFeasibleRegion) {
  search::ConstraintSpec spec;
  spec.latency_slo_ms = 4.0;
  spec.area_budget_mm2 = 20.0;
  Variable metrics(metrics_tensor(2.0, 3.0, 10.0), /*requires_grad=*/true);
  const Variable p = search::constraint_penalty_variable(metrics, spec);
  EXPECT_FLOAT_EQ(p.value()[0], 0.0F);
  p.backward();
  for (int i = 0; i < 3; ++i) EXPECT_FLOAT_EQ(metrics.grad()[i], 0.0F);
}

TEST(Constraints, PenaltyVariableGradientPushesTowardBudget) {
  search::ConstraintSpec spec;
  spec.latency_slo_ms = 2.0;
  spec.area_budget_mm2 = 10.0;
  // Latency 3.0 > SLO 2.0 (violation 0.5), area 15 > 10 (violation 0.5).
  Variable metrics(metrics_tensor(3.0, 1.0, 15.0), /*requires_grad=*/true);
  const Variable p = search::constraint_penalty_variable(metrics, spec);
  EXPECT_NEAR(p.value()[0], 1.0F, 1e-5F);
  p.backward();
  // d relu(lat/SLO - 1)/d lat = 1/SLO, d relu(area/budget - 1)/d area =
  // 1/budget; energy is unconstrained.
  EXPECT_NEAR(metrics.grad()[0], 0.5F, 1e-5F);
  EXPECT_FLOAT_EQ(metrics.grad()[1], 0.0F);
  EXPECT_NEAR(metrics.grad()[2], 0.1F, 1e-5F);
}

TEST(Constraints, PenaltyVariableNoFiniteBudgetIsInertZero) {
  Variable metrics(metrics_tensor(3.0, 1.0, 15.0), /*requires_grad=*/true);
  const Variable p = search::constraint_penalty_variable(
      metrics, search::ConstraintSpec{});
  EXPECT_FLOAT_EQ(p.value()[0], 0.0F);
}

}  // namespace
