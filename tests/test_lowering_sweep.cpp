// Property sweep over every (searchable slot, candidate op) pair of both
// backbones: the lowering must produce valid shapes with consistent channel
// plumbing, and MACs must be ordered by kernel size and expansion ratio.
#include <gtest/gtest.h>

#include "arch/space.h"

namespace {

using namespace dance;
using arch::CandidateOp;

class LoweringSweep
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {
 protected:
  static arch::BackboneSpec spec() {
    return std::get<0>(GetParam()) == "cifar10" ? arch::cifar10_backbone()
                                                : arch::imagenet_backbone();
  }
};

TEST_P(LoweringSweep, AllOpsLowerToValidShapes) {
  const arch::ArchSpace space(spec());
  const int slot = std::get<1>(GetParam());
  for (const auto op : arch::kAllCandidateOps) {
    const auto shapes = space.lower_choice(slot, op);
    if (arch::is_zero(op)) {
      EXPECT_TRUE(shapes.empty());
      continue;
    }
    ASSERT_EQ(shapes.size(), 3U) << arch::to_string(op);
    for (const auto& s : shapes) EXPECT_TRUE(s.valid()) << s.to_string();
    // Channel plumbing: expand -> depthwise -> project.
    EXPECT_EQ(shapes[0].k, shapes[1].c);
    EXPECT_EQ(shapes[1].groups, shapes[1].c);  // depthwise
    EXPECT_EQ(shapes[1].k, shapes[2].c);
    // Depthwise kernel matches the op.
    EXPECT_EQ(shapes[1].r, arch::kernel_size(op));
  }
}

TEST_P(LoweringSweep, MacsOrderedByKernelAndExpand) {
  const arch::ArchSpace space(spec());
  const int slot = std::get<1>(GetParam());
  auto macs_of = [&](CandidateOp op) {
    std::int64_t total = 0;
    for (const auto& s : space.lower_choice(slot, op)) total += s.macs();
    return total;
  };
  // Expansion dominates: e6 > e3 at equal kernel.
  EXPECT_GT(macs_of(CandidateOp::kMbConv3x3E6), macs_of(CandidateOp::kMbConv3x3E3));
  EXPECT_GT(macs_of(CandidateOp::kMbConv5x5E6), macs_of(CandidateOp::kMbConv5x5E3));
  EXPECT_GT(macs_of(CandidateOp::kMbConv7x7E6), macs_of(CandidateOp::kMbConv7x7E3));
  // Kernel grows MACs at equal expansion.
  EXPECT_GT(macs_of(CandidateOp::kMbConv5x5E3), macs_of(CandidateOp::kMbConv3x3E3));
  EXPECT_GT(macs_of(CandidateOp::kMbConv7x7E6), macs_of(CandidateOp::kMbConv5x5E6));
  EXPECT_EQ(macs_of(CandidateOp::kZero), 0);
}

INSTANTIATE_TEST_SUITE_P(
    BothBackbonesAllSlots, LoweringSweep,
    ::testing::Combine(::testing::Values(std::string("cifar10"),
                                         std::string("imagenet")),
                       ::testing::Range(0, 9)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_slot" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
