// Property suite 2: central-difference gradcheck generalized to every
// nn::Module through the Module interface (testing::gradcheck_module), over
// randomized module configurations and inputs. This extends
// test_ops_gradcheck.cpp (per-op checks) to whole trainable components,
// including the supernet mixture whose architecture-parameter gradients are
// what DANCE differentiates through.
#include <gtest/gtest.h>

#include <memory>

#include "nas/supernet.h"
#include "nn/batchnorm.h"
#include "nn/linear.h"
#include "nn/mlp.h"
#include "testing/generators.h"
#include "testing/gradcheck.h"
#include "testing/property.h"

namespace testing_ = dance::testing;

namespace {

using namespace dance;
using tensor::Tensor;
using tensor::Variable;

/// One randomized gradcheck case: module hyper-parameters + an input batch,
/// derived entirely from a seed so shrinking the seed-determined dims keeps
/// the case reproducible.
struct ModuleCase {
  int batch = 2;
  int in_dim = 2;
  int out_dim = 2;
  int depth = 2;        ///< ResidualMlp num_layers
  bool batch_norm = false;
  std::uint64_t init_seed = 1;

  [[nodiscard]] std::string to_string() const {
    return "ModuleCase(batch=" + std::to_string(batch) +
           " in=" + std::to_string(in_dim) + " out=" + std::to_string(out_dim) +
           " depth=" + std::to_string(depth) +
           " bn=" + std::to_string(batch_norm) +
           " init_seed=" + std::to_string(init_seed) + ")";
  }
};

testing_::Generator<ModuleCase> module_case_gen() {
  testing_::Generator<ModuleCase> gen;
  gen.sample = [](util::Rng& rng) {
    ModuleCase c;
    // Batch >= 2 keeps training-mode batch norm statistics well-defined.
    c.batch = rng.randint(2, 6);
    c.in_dim = rng.randint(1, 5);
    c.out_dim = rng.randint(1, 4);
    c.depth = rng.randint(2, 4);
    c.batch_norm = rng.uniform() < 0.5F;
    c.init_seed = static_cast<std::uint64_t>(rng.randint(1, 1 << 20));
    return c;
  };
  gen.shrink = [](const ModuleCase& c) {
    std::vector<ModuleCase> out;
    const auto shrink_field = [&](int ModuleCase::*field, int target) {
      for (long v : testing_::shrink_toward(c.*field, target)) {
        ModuleCase t = c;
        t.*field = static_cast<int>(v);
        out.push_back(t);
      }
    };
    if (c.batch_norm) {
      ModuleCase t = c;
      t.batch_norm = false;
      out.push_back(t);
    }
    shrink_field(&ModuleCase::batch, 2);
    shrink_field(&ModuleCase::in_dim, 1);
    shrink_field(&ModuleCase::out_dim, 1);
    shrink_field(&ModuleCase::depth, 2);
    return out;
  };
  gen.show = [](const ModuleCase& c) { return c.to_string(); };
  return gen;
}

/// Deterministic input batch for a case (offset away from ReLU kinks, like
/// the op-level gradcheck does, to keep central differences smooth).
Tensor case_input(const ModuleCase& c, util::Rng& rng) {
  Tensor x = Tensor::randn({c.batch, c.in_dim}, rng);
  for (std::size_t i = 0; i < x.numel(); ++i) x[i] += 0.1F;
  return x;
}

TEST(ModuleGradcheck, Linear) {
  const auto result = testing_::check<ModuleCase>(
      "Linear gradcheck", module_case_gen(),
      [](const ModuleCase& c, util::Rng& rng) {
        util::Rng init(c.init_seed);
        nn::Linear m(c.in_dim, c.out_dim, init, /*bias=*/c.batch_norm);
        return testing_::gradcheck_module(m, case_input(c, rng), rng);
      });
  EXPECT_TRUE(result.ok) << result.report;
  EXPECT_GE(result.trials_run, 100);
}

TEST(ModuleGradcheck, BatchNorm) {
  const auto result = testing_::check<ModuleCase>(
      "BatchNorm1d gradcheck", module_case_gen(),
      [](const ModuleCase& c, util::Rng& rng) {
        nn::BatchNorm1d m(c.in_dim);
        testing_::GradcheckOptions opts;
        // Batch-norm gradients divide by the batch stddev; a slightly larger
        // tolerance absorbs the float32 cancellation that division amplifies.
        opts.tol = 4e-2;
        return testing_::gradcheck_module(m, case_input(c, rng), rng, opts);
      });
  EXPECT_TRUE(result.ok) << result.report;
  EXPECT_GE(result.trials_run, 100);
}

TEST(ModuleGradcheck, ResidualMlp) {
  const auto result = testing_::check<ModuleCase>(
      "ResidualMlp gradcheck", module_case_gen(),
      [](const ModuleCase& c, util::Rng& rng) {
        nn::ResidualMlpConfig cfg;
        cfg.in_dim = c.in_dim;
        cfg.hidden_dim = 4;
        cfg.num_layers = c.depth;
        cfg.out_dim = c.out_dim;
        cfg.batch_norm = c.batch_norm;
        util::Rng init(c.init_seed);
        nn::ResidualMlp m(cfg, init);
        testing_::GradcheckOptions opts;
        opts.tol = 4e-2;
        return testing_::gradcheck_module(m, case_input(c, rng), rng, opts);
      });
  EXPECT_TRUE(result.ok) << result.report;
  EXPECT_GE(result.trials_run, 100);
}

TEST(ModuleGradcheck, SupernetMixture) {
  // The supernet is not itself a Module (its forward takes gates); the
  // LambdaModule adapter exposes the softmax-gated mixture — the exact
  // computation DANCE's architecture gradients flow through — as a Module so
  // the same generic harness applies. Parameters cover both the block
  // weights and the architecture parameters alpha.
  const auto result = testing_::check<ModuleCase>(
      "supernet mixture gradcheck", module_case_gen(),
      [](const ModuleCase& c, util::Rng& rng) {
        nas::SuperNetConfig cfg;
        cfg.input_dim = c.in_dim;
        cfg.num_classes = c.out_dim + 1;  // >= 2 classes
        cfg.width = 4;
        cfg.num_blocks = 1 + c.depth % 2;
        cfg.expand_units = 2;
        cfg.kernel_units = 1;
        util::Rng init(c.init_seed);
        nas::SuperNet net(cfg, init);

        std::vector<nn::NamedParameter> params;
        std::size_t i = 0;
        for (auto& p : net.weight_parameters()) {
          params.push_back({"weight." + std::to_string(i++), p});
        }
        i = 0;
        for (auto& p : net.arch_parameters()) {
          params.push_back({"alpha." + std::to_string(i++), p});
        }
        testing_::LambdaModule m(
            [&net](const Variable& x) {
              return net.forward(x, net.softmax_gates());
            },
            std::move(params));
        testing_::GradcheckOptions opts;
        opts.tol = 4e-2;
        opts.coords_per_tensor = 2;
        return testing_::gradcheck_module(m, case_input(c, rng), rng, opts);
      });
  EXPECT_TRUE(result.ok) << result.report;
  EXPECT_GE(result.trials_run, 100);
}

}  // namespace
