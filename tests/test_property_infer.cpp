// Property suite for dance::infer — the frozen-inference compiler contracts.
//
//  * infer_fused — the fused fp32 plan is bit-identical to the autograd
//    Evaluator on randomized checkpoints (hidden width, depth, feature
//    forwarding, output scales) and randomized batch shapes. This is the
//    contract that lets serve swap tiers without invalidating its cache.
//  * infer_gemm — the blocked, cache-tiled GEMM is bit-identical to the
//    naive triple loop over randomized shapes and values, including the
//    zero-skip/non-finite-B poisoning corner.
//  * infer_int8 — the calibrated int8 tier tracks the fp32 plan within
//    magnitude-scaled error bands (|log10| ratio for large values) and its
//    argmin-by-latency choice is near-tie-equivalent to fp32's.
//  * infer_hammer — concurrent Plan::run calls with per-thread Arenas are
//    race-free (TSan) and bit-identical to a serial reference.
//
// Suite names carry a lowercase "infer" so `ctest -R infer` selects these
// alongside the unit suites; CI runs them under TSan as well.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "evalnet/evaluator.h"
#include "hwgen/search_space.h"
#include "infer/plan.h"
#include "tensor/gemm.h"
#include "testing/generators.h"
#include "testing/property.h"

namespace testing_ = dance::testing;

namespace {

using namespace dance;

bool bit_equal(const float* a, const float* b, std::size_t n) {
  return n == 0 || std::memcmp(a, b, n * sizeof(float)) == 0;
}

/// Reduced-trial config for properties that build a fresh evaluator or spin
/// up threads per trial.
testing_::PbtConfig heavy_config(int cap) {
  auto cfg = testing_::PbtConfig::from_env();
  cfg.trials = std::min(cfg.trials, cap);
  return cfg;
}

/// One randomized frozen checkpoint + batch: the generated value is just the
/// trial's shape/seed tuple; the property materializes the evaluator from it
/// so shrinking reduces the *configuration*, not an opaque object.
struct CheckpointCase {
  int arch_width = 8;
  int hwgen_hidden = 16;
  int cost_hidden = 16;
  int num_layers = 2;
  bool feature_forwarding = true;
  int batch = 1;
  std::uint64_t seed = 1;

  [[nodiscard]] std::string to_string() const {
    return "arch_width=" + std::to_string(arch_width) +
           " hwgen_hidden=" + std::to_string(hwgen_hidden) +
           " cost_hidden=" + std::to_string(cost_hidden) +
           " num_layers=" + std::to_string(num_layers) +
           " ff=" + std::to_string(feature_forwarding) +
           " batch=" + std::to_string(batch) +
           " seed=" + std::to_string(seed);
  }
};

testing_::Generator<CheckpointCase> checkpoint_gen() {
  testing_::Generator<CheckpointCase> gen;
  gen.sample = [](util::Rng& rng) {
    CheckpointCase c;
    c.arch_width = rng.randint(2, 24);
    c.hwgen_hidden = rng.randint(4, 40);
    c.cost_hidden = rng.randint(4, 40);
    c.num_layers = rng.randint(2, 5);
    c.feature_forwarding = rng.randint(0, 1) == 1;
    c.batch = rng.randint(1, 9);
    c.seed = static_cast<std::uint64_t>(rng.randint(1, 1 << 30));
    return c;
  };
  gen.shrink = [](const CheckpointCase& c) {
    std::vector<CheckpointCase> out;
    const auto push = [&out](CheckpointCase v) { out.push_back(v); };
    if (c.num_layers > 2) { auto v = c; v.num_layers = 2; push(v); }
    if (c.batch > 1) { auto v = c; v.batch = 1; push(v); }
    if (c.hwgen_hidden > 4) { auto v = c; v.hwgen_hidden /= 2; push(v); }
    if (c.cost_hidden > 4) { auto v = c; v.cost_hidden /= 2; push(v); }
    if (c.arch_width > 2) { auto v = c; v.arch_width /= 2; push(v); }
    if (!c.feature_forwarding) { auto v = c; v.feature_forwarding = true; push(v); }
    return out;
  };
  gen.show = [](const CheckpointCase& c) { return c.to_string(); };
  return gen;
}

hwgen::HwSearchSpace tiny_space() {
  return hwgen::HwSearchSpace(
      {.pe_min = 8, .pe_max = 10, .rf_min = 8, .rf_max = 16, .rf_step = 8});
}

std::unique_ptr<evalnet::Evaluator> build_evaluator(
    const CheckpointCase& c, const hwgen::HwSearchSpace& space) {
  util::Rng rng(c.seed);
  evalnet::Evaluator::Options opts;
  opts.hwgen.hidden_dim = c.hwgen_hidden;
  opts.hwgen.num_layers = c.num_layers;
  opts.cost.hidden_dim = c.cost_hidden;
  opts.cost.num_layers = c.num_layers;
  opts.cost.feature_forwarding = c.feature_forwarding;
  auto ev = std::make_unique<evalnet::Evaluator>(c.arch_width, space, rng, opts);
  // Randomized output scales so the fused scale multiply is exercised with
  // non-unit values (deterministic per checkpoint seed).
  ev->cost_net().set_output_scale(
      {0.5 + rng.uniform(), 1.0 + rng.uniform(), 0.25 + rng.uniform()});
  ev->set_frozen(true);
  ev->set_training(false);
  return ev;
}

std::vector<std::vector<float>> sample_rows(int n, int width, util::Rng& rng) {
  std::vector<std::vector<float>> rows(static_cast<std::size_t>(n));
  for (auto& row : rows) {
    row.resize(static_cast<std::size_t>(width));
    for (auto& v : row) {
      // Mix of one-hot-ish and soft values, the encodings serving sees.
      v = rng.randint(0, 2) == 0 ? static_cast<float>(rng.randint(0, 1))
                                 : rng.uniform();
    }
  }
  return rows;
}

TEST(infer_fused, BitIdenticalToAutogradAcrossCheckpoints) {
  const auto space = tiny_space();
  const auto result = testing_::check<CheckpointCase>(
      "fused plan vs autograd bit-identity", checkpoint_gen(),
      [&](const CheckpointCase& c, util::Rng& rng) -> std::string {
        auto ev = build_evaluator(c, space);
        const infer::Plan plan = infer::Plan::compile(*ev);
        const auto rows = sample_rows(c.batch, c.arch_width, rng);

        const auto autograd = ev->forward_batch(rows);
        const tensor::Tensor stacked = evalnet::Evaluator::stack_rows(rows);
        infer::Arena arena;
        std::vector<float> metrics(static_cast<std::size_t>(c.batch) * 3);
        std::vector<float> hw(static_cast<std::size_t>(c.batch) *
                              plan.hw_width());
        plan.run(stacked.data(), c.batch, metrics.data(), hw.data(), arena);

        if (!bit_equal(autograd.metrics.value().data(), metrics.data(),
                       metrics.size())) {
          return "fused metrics differ from autograd bits";
        }
        if (!bit_equal(autograd.hw_encoding.value().data(), hw.data(),
                       hw.size())) {
          return "fused hw one-hot differs from autograd bits";
        }
        return "";
      },
      heavy_config(120));
  EXPECT_TRUE(result.ok) << result.report;
  EXPECT_GE(result.trials_run, 100);
}

/// Randomized GEMM case for the blocked-vs-naive differential.
struct GemmCase {
  int n = 1, k = 1, m = 1;
  bool poison_b = false;   ///< inject a non-finite into B
  float zero_frac = 0.0F;  ///< fraction of A entries forced to 0
  std::uint64_t seed = 1;

  [[nodiscard]] std::string to_string() const {
    return "n=" + std::to_string(n) + " k=" + std::to_string(k) +
           " m=" + std::to_string(m) +
           " poison_b=" + std::to_string(poison_b) +
           " zero_frac=" + std::to_string(zero_frac) +
           " seed=" + std::to_string(seed);
  }
};

testing_::Generator<GemmCase> gemm_gen() {
  testing_::Generator<GemmCase> gen;
  gen.sample = [](util::Rng& rng) {
    GemmCase c;
    // Straddle the 32x32 block boundaries: sizes up to 70.
    c.n = rng.randint(1, 70);
    c.k = rng.randint(1, 70);
    c.m = rng.randint(1, 40);
    c.poison_b = rng.randint(0, 4) == 0;
    c.zero_frac = rng.uniform(0.0F, 0.6F);
    c.seed = static_cast<std::uint64_t>(rng.randint(1, 1 << 30));
    return c;
  };
  gen.shrink = [](const GemmCase& c) {
    std::vector<GemmCase> out;
    if (c.n > 1) { auto v = c; v.n = std::max(1, c.n / 2); out.push_back(v); }
    if (c.k > 1) { auto v = c; v.k = std::max(1, c.k / 2); out.push_back(v); }
    if (c.m > 1) { auto v = c; v.m = std::max(1, c.m / 2); out.push_back(v); }
    if (c.poison_b) { auto v = c; v.poison_b = false; out.push_back(v); }
    return out;
  };
  gen.show = [](const GemmCase& c) { return c.to_string(); };
  return gen;
}

TEST(infer_gemm, BlockedBitIdenticalToNaive) {
  const auto result = testing_::check<GemmCase>(
      "blocked GEMM vs naive bit-identity", gemm_gen(),
      [&](const GemmCase& c, util::Rng&) -> std::string {
        util::Rng rng(c.seed);
        std::vector<float> a(static_cast<std::size_t>(c.n) * c.k);
        std::vector<float> b(static_cast<std::size_t>(c.k) * c.m);
        for (auto& v : a) {
          v = rng.uniform() < c.zero_frac ? 0.0F : rng.normal();
        }
        for (auto& v : b) v = rng.normal();
        if (c.poison_b && !b.empty()) {
          const auto at = static_cast<std::size_t>(
              rng.randint(0, static_cast<int>(b.size()) - 1));
          b[at] = rng.randint(0, 1) == 0
                      ? std::numeric_limits<float>::quiet_NaN()
                      : std::numeric_limits<float>::infinity();
        }

        // Naive i/kk/j reference WITHOUT zero-skip: the historical autograd
        // semantics the kernel must reproduce — including 0 * NaN poison.
        std::vector<float> ref(static_cast<std::size_t>(c.n) * c.m, 0.0F);
        for (int i = 0; i < c.n; ++i) {
          for (int kk = 0; kk < c.k; ++kk) {
            const float av = a[static_cast<std::size_t>(i) * c.k + kk];
            if (av == 0.0F && !c.poison_b) continue;  // matches kernel's skip
            for (int j = 0; j < c.m; ++j) {
              ref[static_cast<std::size_t>(i) * c.m + j] +=
                  av * b[static_cast<std::size_t>(kk) * c.m + j];
            }
          }
        }

        std::vector<float> out(static_cast<std::size_t>(c.n) * c.m, 0.0F);
        tensor::gemm::gemm(a.data(), b.data(), out.data(), c.n, c.k, c.m);
        if (!bit_equal(ref.data(), out.data(), ref.size())) {
          return "blocked result differs from naive bits";
        }
        return "";
      });
  EXPECT_TRUE(result.ok) << result.report;
  EXPECT_GE(result.trials_run, 100);
}

TEST(infer_int8, TracksFp32WithinMagnitudeBands) {
  const auto space = tiny_space();
  const auto result = testing_::check<CheckpointCase>(
      "int8 tier error bands + argmin agreement", checkpoint_gen(),
      [&](const CheckpointCase& c_in, util::Rng& rng) -> std::string {
        CheckpointCase c = c_in;
        c.batch = std::max(c.batch, 4);  // argmin needs a real batch
        // Input-width floor: a width-<=4 "architecture encoding" drives the
        // untrained trunks with so little signal that the metric dynamic
        // range collapses toward zero and the relative bands lose meaning.
        // Real encodings are tens of columns (layers x choices); the
        // fused/hammer properties keep the full width range.
        c.arch_width = std::max(c.arch_width, 6);
        auto ev = build_evaluator(c, space);
        infer::Plan plan = infer::Plan::compile(*ev);
        plan.calibrate(sample_rows(32, c.arch_width, rng));

        const auto rows = sample_rows(c.batch, c.arch_width, rng);
        const tensor::Tensor stacked = evalnet::Evaluator::stack_rows(rows);
        const auto n = static_cast<std::size_t>(c.batch);
        const auto hw_w = static_cast<std::size_t>(plan.hw_width());
        infer::Arena arena;
        std::vector<float> fp32(n * 3), int8(n * 3);
        std::vector<float> hw_f(n * hw_w), hw_q(n * hw_w);
        plan.run(stacked.data(), c.batch, fp32.data(), hw_f.data(), arena);
        plan.run(stacked.data(), c.batch, int8.data(), hw_q.data(), arena,
                 infer::Mode::kInt8);

        // Quantization noise can flip a near-tied hardware head, and under
        // feature forwarding that discontinuously changes the cost input —
        // the int8 metric then describes a *different* (still valid) config,
        // so the continuous error bands only apply to rows where both tiers
        // chose the same config. Flip rate on near-tied untrained logits is
        // what the serve bench reports as the agreement column.
        std::vector<bool> same_config(n);
        for (std::size_t r = 0; r < n; ++r) {
          same_config[r] =
              bit_equal(hw_f.data() + r * hw_w, hw_q.data() + r * hw_w, hw_w);
        }

        // Magnitude-scaled bands per metric column for config-agreeing rows:
        // int8 must stay within 25% of the column's dynamic range, and
        // within a factor of 2 (|log10 ratio| <= log10 2) wherever the fp32
        // value dominates the column scale. Untrained residual trunks are
        // the worst case — quantization noise compounds through every block
        // — so the bands bound that, not the (much tighter) trained
        // behavior.
        for (int col = 0; col < 3; ++col) {
          float scale = 0.0F;
          for (std::size_t r = 0; r < n; ++r) {
            scale = std::max(scale, std::fabs(fp32[r * 3 + col]));
          }
          for (std::size_t r = 0; r < n; ++r) {
            const float q = int8[r * 3 + col];
            if (!std::isfinite(q)) return "int8 produced non-finite metric";
            if (!same_config[r]) continue;
            const float f = fp32[r * 3 + col];
            const float err = std::fabs(q - f);
            if (err > 0.25F * scale + 1e-3F) {
              return "int8 error outside absolute band (col " +
                     std::to_string(col) + ": fp32=" + std::to_string(f) +
                     " int8=" + std::to_string(q) + ")";
            }
            if (std::fabs(f) >= 0.5F * scale && f * q > 0.0F) {
              const float ratio =
                  std::fabs(std::log10(std::fabs(q) / std::fabs(f)));
              if (ratio > std::log10(2.0F)) {
                return "int8 outside |log10| band (col " +
                       std::to_string(col) + ": fp32=" + std::to_string(f) +
                       " int8=" + std::to_string(q) + ")";
              }
            }
          }
        }

        // Cost-ordering agreement over the config-agreeing rows: the row
        // int8 ranks cheapest (by latency) must be a near-tie with the fp32
        // minimum — exact index equality is deliberately not required (ties
        // flip on untrained nets).
        std::vector<std::size_t> agreeing;
        for (std::size_t r = 0; r < n; ++r) {
          if (same_config[r]) agreeing.push_back(r);
        }
        if (agreeing.size() >= 2) {
          const auto argmin = [&agreeing](const std::vector<float>& m) {
            std::size_t best = agreeing.front();
            for (const std::size_t r : agreeing) {
              if (m[r * 3] < m[best * 3]) best = r;
            }
            return best;
          };
          float lat_scale = 0.0F;
          for (const std::size_t r : agreeing) {
            lat_scale = std::max(lat_scale, std::fabs(fp32[r * 3]));
          }
          const float true_min = fp32[argmin(fp32) * 3];
          const float chosen = fp32[argmin(int8) * 3];
          if (chosen - true_min > 0.25F * lat_scale + 1e-3F) {
            return "int8 argmin picked a row far from the fp32 optimum";
          }
        }
        return "";
      },
      heavy_config(40));
  EXPECT_TRUE(result.ok) << result.report;
}

TEST(infer_hammer, ConcurrentRunsWithPrivateArenasAreRaceFreeAndExact) {
  // One immutable Plan shared across threads, one Arena per thread: every
  // concurrent result must bit-match the serial reference. Runs under TSan
  // in CI; each Plan::run also fans out over runtime::global_pool()
  // internally, so this exercises nested pool use from plain threads.
  const auto space = tiny_space();
  const auto result = testing_::check<CheckpointCase>(
      "concurrent plan runs vs serial reference", checkpoint_gen(),
      [&](const CheckpointCase& c, util::Rng& rng) -> std::string {
        auto ev = build_evaluator(c, space);
        const infer::Plan plan = infer::Plan::compile(*ev);
        const auto rows = sample_rows(c.batch, c.arch_width, rng);
        const tensor::Tensor stacked = evalnet::Evaluator::stack_rows(rows);
        const auto n = static_cast<std::size_t>(c.batch);
        const auto hw_n = n * static_cast<std::size_t>(plan.hw_width());

        std::vector<float> ref_metrics(n * 3);
        std::vector<float> ref_hw(hw_n);
        infer::Arena ref_arena;
        plan.run(stacked.data(), c.batch, ref_metrics.data(), ref_hw.data(),
                 ref_arena);

        constexpr int kThreads = 4;
        constexpr int kReps = 8;
        std::vector<std::string> failures(kThreads);
        std::vector<std::thread> threads;
        threads.reserve(kThreads);
        for (int t = 0; t < kThreads; ++t) {
          threads.emplace_back([&, t] {
            infer::Arena arena;
            std::vector<float> metrics(n * 3);
            std::vector<float> hw(hw_n);
            for (int rep = 0; rep < kReps; ++rep) {
              plan.run(stacked.data(), c.batch, metrics.data(), hw.data(),
                       arena);
              if (!bit_equal(ref_metrics.data(), metrics.data(),
                             metrics.size()) ||
                  !bit_equal(ref_hw.data(), hw.data(), hw.size())) {
                failures[static_cast<std::size_t>(t)] =
                    "thread result differs from serial reference";
                return;
              }
            }
          });
        }
        for (auto& th : threads) th.join();
        for (const auto& f : failures) {
          if (!f.empty()) return f;
        }
        return "";
      },
      heavy_config(10));
  EXPECT_TRUE(result.ok) << result.report;
}

}  // namespace
