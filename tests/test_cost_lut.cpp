// LUT-compiled cost model (DANCE_COST=lut) and the DCTB cost-table
// artifact pipeline. Suite names carry the "costtable" tag so
// `ctest -R costtable` runs exactly these suites plus the property fuzz
// (tests/test_property_costtable.cpp).
//
// The LUT contract under test (src/accel/cost_model.h):
//   - table entries are computed with the exact expressions, so paths whose
//     operands stay in range and whose reciprocals are exactly
//     representable answer bit-identically to kExact;
//   - operands at or past kCostLutBins fall back to the exact divide — no
//     extrapolation past the last bin;
//   - genuine divergence (reciprocal-multiply rounding on non-power-of-two
//     denominators) stays far inside the |log10| bands the backend
//     differential suite calibrates.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include <unistd.h>

#include "accel/cost_function.h"
#include "accel/cost_model.h"
#include "arch/cost_artifact.h"
#include "arch/cost_table.h"
#include "util/fs.h"
#include "util/rng.h"

namespace {

using namespace dance;

// --- DANCE_COST knob --------------------------------------------------------

TEST(costtable_lut, EnvKnobParsing) {
  ASSERT_EQ(unsetenv("DANCE_COST"), 0);
  EXPECT_EQ(accel::cost_mode_from_env(), accel::CostMode::kExact);
  ASSERT_EQ(setenv("DANCE_COST", "exact", 1), 0);
  EXPECT_EQ(accel::cost_mode_from_env(), accel::CostMode::kExact);
  ASSERT_EQ(setenv("DANCE_COST", "lut", 1), 0);
  EXPECT_EQ(accel::cost_mode_from_env(), accel::CostMode::kLut);
  // Unknown values fall back to exact — never a crash, never a clamp.
  ASSERT_EQ(setenv("DANCE_COST", "fast-but-wrong", 1), 0);
  EXPECT_EQ(accel::cost_mode_from_env(), accel::CostMode::kExact);
  ASSERT_EQ(unsetenv("DANCE_COST"), 0);

  EXPECT_EQ(accel::to_string(accel::CostMode::kExact), "exact");
  EXPECT_EQ(accel::to_string(accel::CostMode::kLut), "lut");

  const accel::CostModel exact(accel::TechnologyParams{},
                               accel::CostMode::kExact);
  const accel::CostModel lut(accel::TechnologyParams{}, accel::CostMode::kLut);
  EXPECT_EQ(exact.mode(), accel::CostMode::kExact);
  EXPECT_EQ(lut.mode(), accel::CostMode::kLut);
}

// --- LUT accuracy -----------------------------------------------------------

std::vector<accel::ConvShape> probe_shapes() {
  return {
      // dense 3x3, odd channel counts (non-power-of-two divides)
      {.n = 1, .k = 96, .c = 36, .h = 17, .w = 17, .r = 3, .s = 3, .stride = 1, .groups = 1},
      // depthwise 5x5 stride 2 (groups == c, the MBConv middle stage)
      {.n = 1, .k = 144, .c = 144, .h = 28, .w = 28, .r = 5, .s = 5, .stride = 2, .groups = 144},
      // pointwise expansion
      {.n = 4, .k = 240, .c = 40, .h = 14, .w = 14, .r = 1, .s = 1, .stride = 1, .groups = 1},
      // grouped conv, groups neither 1 nor c
      {.n = 2, .k = 48, .c = 24, .h = 31, .w = 29, .r = 3, .s = 7, .stride = 2, .groups = 12},
  };
}

std::vector<accel::AcceleratorConfig> probe_configs() {
  using accel::Dataflow;
  return {
      {8, 8, 4, Dataflow::kWeightStationary},
      {16, 16, 32, Dataflow::kOutputStationary},
      {24, 24, 64, Dataflow::kRowStationary},
      {11, 13, 24, Dataflow::kOutputStationary},
  };
}

TEST(costtable_lut, LutWithinBandOfExact) {
  const accel::CostModel exact(accel::TechnologyParams{},
                               accel::CostMode::kExact);
  const accel::CostModel lut(accel::TechnologyParams{}, accel::CostMode::kLut);
  // Reciprocal-multiply rounding is a couple of ulps; the band here is
  // absurdly tighter than the 3.0 |log10| cross-backend tolerance, on
  // purpose — the LUT is a compilation of the same model, not a new model.
  constexpr double kBand = 1e-9;
  for (const auto& cfg : probe_configs()) {
    for (const auto& s : probe_shapes()) {
      const auto a = exact.layer_cost(cfg, s);
      const auto b = lut.layer_cost(cfg, s);
      EXPECT_LT(std::fabs(std::log10(b.cycles / a.cycles)), kBand)
          << cfg.to_string() << " x " << s.to_string();
      EXPECT_LT(std::fabs(std::log10(b.energy_pj / a.energy_pj)), kBand)
          << cfg.to_string() << " x " << s.to_string();
    }
    // The area model has no divides; it must not move at all.
    EXPECT_EQ(exact.area_mm2(cfg), lut.area_mm2(cfg));
  }
}

TEST(costtable_lut, NonDividingDataflowsAreBitIdentical) {
  // Weight- and row-stationary mappings never route through div_by_int, and
  // the default bandwidths (16, 64) have exactly representable reciprocals,
  // so for those dataflows "lut" must be a bit-identical spelling of
  // "exact" — any drift means a table entry was not built with the exact
  // expression.
  const accel::CostModel exact(accel::TechnologyParams{},
                               accel::CostMode::kExact);
  const accel::CostModel lut(accel::TechnologyParams{}, accel::CostMode::kLut);
  for (const auto& cfg : probe_configs()) {
    if (cfg.dataflow == accel::Dataflow::kOutputStationary) continue;
    for (const auto& s : probe_shapes()) {
      const auto a = exact.layer_cost(cfg, s);
      const auto b = lut.layer_cost(cfg, s);
      EXPECT_EQ(std::memcmp(&a, &b, sizeof(a)), 0)
          << cfg.to_string() << " x " << s.to_string();
    }
  }
}

TEST(costtable_lut, BinEdgeClampFallsBackToExact) {
  // div_by_int's denominators are the filter width and the group count
  // (output-stationary mapping). A group count at or past kCostLutBins must
  // take the exact-divide fallback, making the whole layer bit-identical
  // across modes; just inside the edge the LUT path is exercised.
  const accel::CostModel exact(accel::TechnologyParams{},
                               accel::CostMode::kExact);
  const accel::CostModel lut(accel::TechnologyParams{}, accel::CostMode::kLut);
  const accel::AcceleratorConfig os{16, 16, 32,
                                    accel::Dataflow::kOutputStationary};

  const auto grouped = [](int groups) {
    accel::ConvShape s;
    s.k = groups;
    s.c = groups;
    s.h = 7;
    s.w = 7;
    s.r = 3;
    s.s = 1;  // filter-width denominator 1: reciprocal exact
    s.groups = groups;
    return s;
  };

  // At the boundary and beyond: fallback, so bitwise equality.
  for (const int g : {static_cast<int>(accel::kCostLutBins),
                      static_cast<int>(accel::kCostLutBins) + 1,
                      2 * static_cast<int>(accel::kCostLutBins)}) {
    const auto shape = grouped(g);
    ASSERT_TRUE(shape.valid());
    const auto a = exact.layer_cost(os, shape);
    const auto b = lut.layer_cost(os, shape);
    EXPECT_EQ(std::memcmp(&a, &b, sizeof(a)), 0) << "groups=" << g;
  }

  // Just inside the boundary: the LUT path answers and stays in band.
  const auto shape = grouped(static_cast<int>(accel::kCostLutBins) - 1);
  ASSERT_TRUE(shape.valid());
  const auto a = exact.layer_cost(os, shape);
  const auto b = lut.layer_cost(os, shape);
  EXPECT_LT(std::fabs(std::log10(b.cycles / a.cycles)), 1e-9);
  EXPECT_LT(std::fabs(std::log10(b.energy_pj / a.energy_pj)), 1e-9);
}

// --- batched evaluation -----------------------------------------------------

TEST(costtable_batch, BatchMatchesPerLayerBitwise) {
  util::Rng rng(0xba7c);
  for (const auto mode : {accel::CostMode::kExact, accel::CostMode::kLut}) {
    const accel::CostModel model(accel::TechnologyParams{}, mode);
    for (const auto& cfg : probe_configs()) {
      std::vector<accel::ConvShape> shapes;
      for (int i = 0; i < 40; ++i) {  // > the 32-shape network_cost chunk
        auto s = probe_shapes()[static_cast<std::size_t>(rng.randint(0, 3))];
        s.h = rng.randint(1, 32);
        s.w = rng.randint(1, 32);
        shapes.push_back(s);
      }
      std::vector<accel::LayerCost> batch(shapes.size());
      model.layer_cost_batch(cfg, shapes, batch);
      for (std::size_t i = 0; i < shapes.size(); ++i) {
        const auto one = model.layer_cost(cfg, shapes[i]);
        EXPECT_EQ(std::memcmp(&one, &batch[i], sizeof(one)), 0)
            << accel::to_string(mode) << " layer " << i;
      }
      // network_cost is routed through the same batch path; its sums must
      // match the per-layer accumulation exactly (same order, same terms).
      const auto net = model.network_cost(cfg, shapes);
      double cycles = 0.0;
      double pj = 0.0;
      for (const auto& lc : batch) {
        cycles += lc.cycles;
        pj += lc.energy_pj;
      }
      EXPECT_EQ(net.latency_ms, cycles / (model.tech().clock_ghz * 1e6));
      EXPECT_EQ(net.energy_mj, pj * 1e-9);
    }
  }
}

TEST(costtable_batch, RejectsShortOutputSpan) {
  const accel::CostModel model;
  const std::vector<accel::ConvShape> shapes(3);
  std::vector<accel::LayerCost> out(2);
  EXPECT_THROW(
      model.layer_cost_batch(accel::AcceleratorConfig{}, shapes, out),
      std::invalid_argument);
}

// --- DCTB artifact save / load ----------------------------------------------

struct costtable_artifact : ::testing::Test {
  arch::ArchSpace arch_space{arch::cifar10_backbone()};
  hwgen::HwSearchSpace hw_space{
      {.pe_min = 8, .pe_max = 12, .rf_min = 8, .rf_max = 32, .rf_step = 8}};
  accel::CostModel model;
  std::string path;

  void SetUp() override {
    path = ::testing::TempDir() + "cost_lut_artifact_" +
           std::to_string(getpid()) + ".dctb";
  }
  void TearDown() override { std::remove(path.c_str()); }

  [[nodiscard]] std::string slurp() const {
    std::ifstream in(path, std::ios::binary);
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
  }
  void dump(const std::string& bytes) const {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  /// FNV-1a over everything before the trailer — same function the artifact
  /// uses, reimplemented here so header-field tests can re-seal a tampered
  /// file and reach the structural checks behind the checksum gate.
  static std::uint64_t fnv1a(const std::string& bytes, std::size_t len) {
    std::uint64_t h = 1469598103934665603ULL;
    for (std::size_t i = 0; i < len; ++i) {
      h ^= static_cast<unsigned char>(bytes[i]);
      h *= 1099511628211ULL;
    }
    return h;
  }
  void reseal(std::string& bytes) const {
    const std::uint64_t h = fnv1a(bytes, bytes.size() - 8);
    std::memcpy(bytes.data() + bytes.size() - 8, &h, 8);
  }
};

TEST_F(costtable_artifact, RoundTripIsBitIdentical) {
  const arch::CostTable table =
      arch::build_cost_table(arch_space, hw_space, model);
  const std::uint64_t checksum = arch::save_cost_table(table, path);
  const auto mapped = arch::load_cost_table(path, arch_space);
  EXPECT_EQ(mapped->checksum(), checksum);
  EXPECT_EQ(mapped->path(), path);
  EXPECT_EQ(mapped->hw_space().size(), hw_space.size());
  EXPECT_GT(mapped->mapped_bytes(), 0U);

  util::Rng rng(0xdc7b);
  const auto cost_fn = accel::edap_cost();
  for (int trial = 0; trial < 8; ++trial) {
    const arch::Architecture a = arch_space.random(rng);
    const auto mem = table.evaluate_all(a);
    const auto mm = mapped->evaluate_all(a);
    ASSERT_EQ(mem.size(), mm.size());
    EXPECT_EQ(std::memcmp(mem.data(), mm.data(),
                          mem.size() * sizeof(accel::CostMetrics)),
              0);
    const auto best_mem = table.optimal(a, cost_fn);
    const auto best_mm = mapped->optimal(a, cost_fn);
    EXPECT_EQ(best_mem.config, best_mm.config);
    EXPECT_EQ(best_mem.cost, best_mm.cost);
  }
}

TEST_F(costtable_artifact, ChecksumMismatchCarriesDiagnostics) {
  const arch::CostTable table =
      arch::build_cost_table(arch_space, hw_space, model);
  const std::uint64_t checksum = arch::save_cost_table(table, path);
  std::string bytes = slurp();
  bytes[bytes.size() / 2] ^= 0x40;  // one payload bit flip
  dump(bytes);
  try {
    (void)arch::load_cost_table(path, arch_space);
    FAIL() << "corrupt artifact was accepted";
  } catch (const arch::ArtifactError& e) {
    EXPECT_EQ(e.path(), path);
    EXPECT_EQ(e.expected_checksum(), checksum);
    EXPECT_NE(e.actual_checksum(), checksum);
    EXPECT_EQ(e.offset(), bytes.size() - 8);
    EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos);
  }
}

TEST_F(costtable_artifact, CorruptionAnywhereIsRejected) {
  const arch::CostTable table =
      arch::build_cost_table(arch_space, hw_space, model);
  arch::save_cost_table(table, path);
  const std::string good = slurp();
  // Every header byte, a stride through the payload, and the trailer: a
  // single flipped bit anywhere must be caught before the first query.
  std::vector<std::size_t> offsets;
  for (std::size_t i = 0; i < 64; ++i) offsets.push_back(i);
  for (std::size_t i = 64; i < good.size() - 8; i += 4093) offsets.push_back(i);
  for (std::size_t i = good.size() - 8; i < good.size(); ++i)
    offsets.push_back(i);
  for (const std::size_t at : offsets) {
    std::string bad = good;
    bad[at] ^= 0x01;
    dump(bad);
    EXPECT_THROW((void)arch::load_cost_table(path, arch_space),
                 arch::ArtifactError)
        << "flip at offset " << at << " was accepted";
  }
}

TEST_F(costtable_artifact, TruncationAndTrailingBytesAreRejected) {
  const arch::CostTable table =
      arch::build_cost_table(arch_space, hw_space, model);
  arch::save_cost_table(table, path);
  const std::string good = slurp();
  for (const std::size_t len :
       {std::size_t{0}, std::size_t{10}, std::size_t{63}, std::size_t{64},
        good.size() / 2, good.size() - 9, good.size() - 1}) {
    dump(good.substr(0, len));
    EXPECT_THROW((void)arch::load_cost_table(path, arch_space),
                 arch::ArtifactError)
        << "truncation to " << len << " bytes was accepted";
  }
  dump(good + std::string(8, '\0'));
  EXPECT_THROW((void)arch::load_cost_table(path, arch_space),
               arch::ArtifactError)
      << "trailing garbage was accepted";
}

TEST_F(costtable_artifact, StructuralMismatchesAreRejected) {
  const arch::CostTable table =
      arch::build_cost_table(arch_space, hw_space, model);
  arch::save_cost_table(table, path);
  const std::string good = slurp();

  const auto expect_reject_at = [&](std::size_t offset, std::uint32_t value) {
    std::string bad = good;
    std::memcpy(bad.data() + offset, &value, sizeof(value));
    reseal(bad);  // valid checksum: the structural check must fire, not it
    dump(bad);
    try {
      (void)arch::load_cost_table(path, arch_space);
      FAIL() << "mismatch at offset " << offset << " was accepted";
    } catch (const arch::ArtifactError& e) {
      EXPECT_EQ(e.offset(), offset) << e.what();
    }
  };

  expect_reject_at(0, 0x42545344);   // wrong magic
  expect_reject_at(4, 2);            // unknown version
  expect_reject_at(8, 8);            // table built for a different slot count
  expect_reject_at(12, 5);           // different candidate-op set
  expect_reject_at(44, 9 * 5);       // encoding width of a different space
}

TEST_F(costtable_artifact, MissingFileIsRejected) {
  try {
    (void)arch::load_cost_table(path + ".does-not-exist", arch_space);
    FAIL() << "missing file was accepted";
  } catch (const arch::ArtifactError& e) {
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos);
    EXPECT_EQ(e.path(), path + ".does-not-exist");
  }
}

}  // namespace
