// Correctness of the supernet's gated-mixture semantics.
#include <gtest/gtest.h>

#include "nas/supernet.h"

namespace {

using namespace dance;
using arch::CandidateOp;
using tensor::Tensor;
using tensor::Variable;

nas::SuperNetConfig one_block_config() {
  nas::SuperNetConfig cfg;
  cfg.input_dim = 6;
  cfg.num_classes = 3;
  cfg.width = 12;
  cfg.num_blocks = 1;
  return cfg;
}

/// With a single block and a linear classifier, a 50/50 gate over two ops
/// must equal the average of the two single-op outputs (affinity of the
/// classifier over the block output).
TEST(SuperNetMixture, HalfHalfGateIsAverageOfPaths) {
  util::Rng rng(1);
  nas::SuperNet net(one_block_config(), rng);
  Variable x(Tensor::randn({5, 6}, rng));

  auto onehot_out = [&](CandidateOp op) {
    return net.forward(x, net.onehot_gates({op}));
  };
  const Variable ya = onehot_out(CandidateOp::kMbConv3x3E3);
  const Variable yb = onehot_out(CandidateOp::kMbConv7x7E6);

  Tensor g = Tensor::zeros({1, arch::kNumCandidateOps});
  g.at(0, static_cast<int>(CandidateOp::kMbConv3x3E3)) = 0.5F;
  g.at(0, static_cast<int>(CandidateOp::kMbConv7x7E6)) = 0.5F;
  nas::Gates gates;
  gates.emplace_back(std::move(g), /*requires_grad=*/false);
  // Gate tensors without gradients and exact zeros skip untouched ops, but a
  // 0.5 entry must be honoured.
  const Variable ymix = net.forward(x, gates);

  for (std::size_t i = 0; i < ymix.value().numel(); ++i) {
    EXPECT_NEAR(ymix.value()[i], 0.5F * (ya.value()[i] + yb.value()[i]), 1e-4F);
  }
}

TEST(SuperNetMixture, ZeroGateEqualsZeroOp) {
  util::Rng rng(2);
  nas::SuperNet net(one_block_config(), rng);
  Variable x(Tensor::randn({4, 6}, rng));
  const Variable y_zero_op = net.forward(x, net.onehot_gates({CandidateOp::kZero}));
  const Variable y_fixed = net.forward_fixed(x, {CandidateOp::kZero});
  for (std::size_t i = 0; i < y_zero_op.value().numel(); ++i) {
    EXPECT_FLOAT_EQ(y_zero_op.value()[i], y_fixed.value()[i]);
  }
}

TEST(SuperNetMixture, GateScalesResidualBranchOnly) {
  // Scaling the single active gate from 1 to 0 must interpolate between the
  // op output and the pure skip path.
  util::Rng rng(3);
  nas::SuperNet net(one_block_config(), rng);
  Variable x(Tensor::randn({3, 6}, rng));
  const Variable skip = net.forward_fixed(x, {CandidateOp::kZero});
  const Variable full = net.forward_fixed(x, {CandidateOp::kMbConv5x5E6});

  Tensor g = Tensor::zeros({1, arch::kNumCandidateOps});
  g.at(0, static_cast<int>(CandidateOp::kMbConv5x5E6)) = 0.25F;
  nas::Gates gates;
  gates.emplace_back(std::move(g), false);
  const Variable quarter = net.forward(x, gates);
  for (std::size_t i = 0; i < quarter.value().numel(); ++i) {
    const float expect = skip.value()[i] + 0.25F * (full.value()[i] - skip.value()[i]);
    EXPECT_NEAR(quarter.value()[i], expect, 1e-4F);
  }
}

TEST(SuperNetMixture, WeightParameterCountMatchesOps) {
  util::Rng rng(4);
  const nas::SuperNetConfig cfg = one_block_config();
  nas::SuperNet net(cfg, rng);
  // stem + classifier + 6 non-Zero ops x 2 linears each.
  std::size_t expected = static_cast<std::size_t>(6 * 12 + 12)   // stem
                         + static_cast<std::size_t>(12 * 3 + 3);  // classifier
  for (const auto op : arch::kAllCandidateOps) {
    if (arch::is_zero(op)) continue;
    const int h = nas::SuperNet::op_hidden_dim(cfg, op);
    expected += static_cast<std::size_t>(12 * h + h + h * 12 + 12);
  }
  std::size_t actual = 0;
  for (auto& p : net.weight_parameters()) actual += p.value().numel();
  EXPECT_EQ(actual, expected);
}

TEST(SuperNetMixture, ArchParamsExactlyOnePerBlock) {
  util::Rng rng(5);
  nas::SuperNetConfig cfg = one_block_config();
  cfg.num_blocks = 4;
  nas::SuperNet net(cfg, rng);
  const auto alphas = net.arch_parameters();
  ASSERT_EQ(alphas.size(), 4U);
  for (const auto& a : alphas) {
    EXPECT_EQ(a.value().rows(), 1);
    EXPECT_EQ(a.value().cols(), arch::kNumCandidateOps);
    EXPECT_TRUE(a.requires_grad());
  }
}

}  // namespace
