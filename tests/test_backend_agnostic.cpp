// §3.3: "DANCE can be applied to any differentiable NAS framework, using any
// evaluation software such as simulators or schedulers." This test swaps the
// analytical cost model for the ScaleSim-style systolic simulator as the
// ground-truth generator and checks the cost estimation network still
// learns the cost surface.
#include <gtest/gtest.h>

#include "accel/systolic_sim.h"
#include "evalnet/trainer.h"

namespace {

using namespace dance;

evalnet::EvaluatorDataset simulator_dataset(const arch::ArchSpace& arch_space,
                                            const hwgen::HwSearchSpace& hw_space,
                                            const accel::SystolicSimulator& sim,
                                            int count, util::Rng& rng) {
  // Brute-force hardware generation against the simulator backend.
  evalnet::EvaluatorDataset ds;
  ds.arch_encoding_width = arch_space.encoding_width();
  ds.hw_encoding_width = hw_space.encoding_width();
  const auto cost_fn = accel::edap_cost();
  for (int i = 0; i < count; ++i) {
    const arch::Architecture a = arch_space.random(rng);
    const auto layers = arch_space.lower(a);
    double best_cost = 1e300;
    accel::AcceleratorConfig best_cfg;
    accel::CostMetrics best_metrics;
    for (std::size_t ci = 0; ci < hw_space.size(); ++ci) {
      const accel::AcceleratorConfig cfg = hw_space.config_at(ci);
      const accel::CostMetrics m = sim.simulate_network(cfg, layers);
      if (const double c = cost_fn(m); c < best_cost) {
        best_cost = c;
        best_cfg = cfg;
        best_metrics = m;
      }
    }
    evalnet::EvalSample s;
    s.arch_enc = arch_space.encode(a);
    s.hw_labels = {hw_space.pe_index(best_cfg.pe_x),
                   hw_space.pe_index(best_cfg.pe_y),
                   hw_space.rf_index(best_cfg.rf_size),
                   hw_space.dataflow_index(best_cfg.dataflow)};
    s.hw_enc = hw_space.encode(best_cfg);
    s.metrics = {best_metrics.latency_ms, best_metrics.energy_mj,
                 best_metrics.area_mm2};
    ds.samples.push_back(std::move(s));
  }
  return ds;
}

TEST(BackendAgnostic, CostNetLearnsSimulatorGroundTruth) {
  arch::ArchSpace arch_space(arch::cifar10_backbone());
  hwgen::HwSearchSpace hw_space(
      {.pe_min = 8, .pe_max = 12, .rf_min = 16, .rf_max = 32, .rf_step = 16});
  accel::SystolicSimulator sim;
  util::Rng rng(17);
  const auto ds = simulator_dataset(arch_space, hw_space, sim, 250, rng);
  auto [train, val] = evalnet::split_dataset(ds, 0.8);

  evalnet::CostNet::Options opts;
  opts.feature_forwarding = false;
  opts.hidden_dim = 64;
  evalnet::CostNet net(arch_space.encoding_width(), hw_space.encoding_width(),
                       rng, opts);
  evalnet::TrainOptions topts;
  topts.epochs = 30;
  topts.batch_size = 64;
  topts.lr = 4e-3F;
  const auto eval = evalnet::train_cost_net(net, train, val, topts);
  // Tiny corpus: only require clearly-better-than-noise on every metric.
  for (int m = 0; m < 3; ++m) {
    EXPECT_GT(eval.metric_accuracy_pct[static_cast<std::size_t>(m)], 35.0);
  }
}

TEST(BackendAgnostic, SimulatorAndModelAgreeOnDepthwisePenalty) {
  // Both backends must agree on the qualitative interaction the paper's
  // motivation rests on (separable convs hurt on WS arrays).
  arch::ArchSpace space(arch::cifar10_backbone());
  const arch::Architecture a(9, arch::CandidateOp::kMbConv3x3E6);
  const auto layers = space.lower(a);
  accel::CostModel model;
  accel::SystolicSimulator sim;
  const accel::AcceleratorConfig ws{16, 16, 32,
                                    accel::Dataflow::kWeightStationary};
  const accel::AcceleratorConfig os{16, 16, 32,
                                    accel::Dataflow::kOutputStationary};
  // MBConv-heavy networks (dominated by depthwise + pointwise) should not
  // prefer WS over OS dramatically differently across the two backends:
  // compare the WS/OS latency ratios.
  const double model_ratio = model.network_cost(ws, layers).latency_ms /
                             model.network_cost(os, layers).latency_ms;
  const double sim_ratio = sim.simulate_network(ws, layers).latency_ms /
                           sim.simulate_network(os, layers).latency_ms;
  // Coarse agreement: the backends' WS/OS preference ratios stay within a
  // factor of five of each other (they model fill/drain very differently).
  EXPECT_LT(std::abs(std::log(model_ratio / sim_ratio)), std::log(5.0));
}

}  // namespace
