// Cross-module integration properties that tie the whole pipeline together.
#include <gtest/gtest.h>

#include "arch/cost_table.h"
#include "evalnet/trainer.h"
#include "search/dance.h"

namespace {

using namespace dance;

class PipelineIntegration : public ::testing::Test {
 protected:
  PipelineIntegration()
      : arch_space_(arch::cifar10_backbone()),
        hw_space_({.pe_min = 8, .pe_max = 12, .rf_min = 8, .rf_max = 32,
                   .rf_step = 8}),
        table_(arch_space_, hw_space_, model_) {
    data::SyntheticTaskConfig dcfg;
    dcfg.input_dim = 12;
    dcfg.num_classes = 6;
    dcfg.train_samples = 512;
    dcfg.val_samples = 128;
    task_ = data::make_synthetic_task(dcfg);
    net_config_.input_dim = 12;
    net_config_.num_classes = 6;
    net_config_.width = 24;
    net_config_.num_blocks = 9;
  }

  evalnet::Evaluator make_trained_evaluator(util::Rng& rng) {
    evalnet::Evaluator::Options eopts;
    eopts.hwgen.hidden_dim = 32;
    eopts.cost.hidden_dim = 48;
    evalnet::Evaluator ev(arch_space_.encoding_width(), hw_space_, rng, eopts);
    auto ds = evalnet::generate_evaluator_dataset(table_, accel::edap_cost(),
                                                  600, rng);
    auto [train, val] = evalnet::split_dataset(ds, 0.8);
    evalnet::TrainOptions opts;
    opts.epochs = 15;
    opts.batch_size = 64;
    opts.lr = 0.05F;
    evalnet::train_hwgen_net(ev.hwgen_net(), train, val, opts);
    opts.lr = 4e-3F;
    evalnet::train_cost_net(ev.cost_net(), train, val, opts);
    return ev;
  }

  arch::ArchSpace arch_space_;
  hwgen::HwSearchSpace hw_space_;
  accel::CostModel model_;
  arch::CostTable table_;
  data::SyntheticTask task_;
  nas::SuperNetConfig net_config_;
};

TEST_F(PipelineIntegration, HugeLambda2MinimizesEvaluatorPredictedCost) {
  // The §3.4 failure mode at integration level: with a huge hardware weight
  // from step 0 the architecture parameters follow the evaluator's cost
  // gradient, so the derived architecture must have a lower *predicted*
  // cost than the one found by the same search without the hardware term.
  // (Whether that coincides with all-Zero depends on evaluator fidelity,
  // which a test-sized evaluator cannot guarantee.)
  util::Rng rng(3);
  evalnet::Evaluator ev = make_trained_evaluator(rng);

  auto run_with_lambda = [&](float lambda2) {
    search::DanceOptions opts;
    opts.search_epochs = 8;
    opts.warmup_epochs = 0;
    opts.lambda2 = lambda2;
    // Adam makes the update size scale-invariant, so movement is governed
    // by arch_lr x steps rather than lambda2's magnitude.
    opts.arch_lr = 0.1F;
    opts.retrain.epochs = 1;
    opts.arch_update_period = 1;
    opts.seed = 77;
    search::DanceSearch dance(task_, table_, ev, net_config_, opts);
    return dance.run();
  };
  const auto free_run = run_with_lambda(0.0F);
  const auto pressed_run = run_with_lambda(500.0F);

  auto predicted_edap = [&](const arch::Architecture& a) {
    ev.set_training(false);
    util::Rng eval_rng(5);
    tensor::Variable enc(tensor::Tensor::from(
        {1, arch_space_.encoding_width()}, arch_space_.encode(a)));
    const auto out = ev.forward(enc, eval_rng);
    return static_cast<double>(out.metrics.value().at(0, 0)) *
           out.metrics.value().at(0, 1) * out.metrics.value().at(0, 2);
  };
  EXPECT_LE(predicted_edap(pressed_run.architecture),
            predicted_edap(free_run.architecture) + 1e-6);
}

TEST_F(PipelineIntegration, LambdaZeroMatchesNoPenaltySearchCostProfile) {
  // With lambda2 == 0 the evaluator is never invoked; the search must still
  // produce a valid outcome whose hardware is the exact post-hoc optimum.
  util::Rng rng(4);
  evalnet::Evaluator ev = make_trained_evaluator(rng);
  search::DanceOptions opts;
  opts.search_epochs = 2;
  opts.lambda2 = 0.0F;
  opts.warmup_epochs = 0;
  opts.retrain.epochs = 2;
  search::DanceSearch dance(task_, table_, ev, net_config_, opts);
  const auto out = dance.run();
  const auto exact = table_.optimal(out.architecture, accel::edap_cost());
  EXPECT_EQ(exact.config, out.hardware);
}

TEST_F(PipelineIntegration, BinarizedTwoPathUpdateRuns) {
  util::Rng rng(5);
  evalnet::Evaluator ev = make_trained_evaluator(rng);
  search::DanceOptions opts;
  opts.search_epochs = 3;
  opts.warmup_epochs = 1;
  opts.lambda2 = 1.0F;
  opts.retrain.epochs = 2;
  opts.arch_update = search::ArchUpdate::kBinarizedTwoPath;
  search::DanceSearch dance(task_, table_, ev, net_config_, opts);
  const auto out = dance.run();
  EXPECT_EQ(out.architecture.size(), 9U);
  EXPECT_EQ(out.trained_candidates, 1);
}

TEST_F(PipelineIntegration, EvaluatorPredictionsTrackTableOrdering) {
  // A trained evaluator must rank a clearly-expensive architecture above a
  // clearly-cheap one on predicted cost, matching the exact table.
  util::Rng rng(6);
  evalnet::Evaluator ev = make_trained_evaluator(rng);
  ev.set_training(false);

  const arch::Architecture cheap(9, arch::CandidateOp::kZero);
  const arch::Architecture costly(9, arch::CandidateOp::kMbConv7x7E6);
  auto predict_latency = [&](const arch::Architecture& a) {
    tensor::Variable enc(tensor::Tensor::from(
        {1, arch_space_.encoding_width()}, arch_space_.encode(a)));
    return ev.forward(enc, rng).metrics.value().at(0, 0);
  };
  EXPECT_LT(predict_latency(cheap), predict_latency(costly));

  const auto exact_cheap = table_.optimal(cheap, accel::edap_cost());
  const auto exact_costly = table_.optimal(costly, accel::edap_cost());
  EXPECT_LT(exact_cheap.metrics.latency_ms, exact_costly.metrics.latency_ms);
}

}  // namespace
