// Unit tests for the dance::fault injection layer and the serve-side
// resilience decorator: spec parsing, seeded injector determinism, the
// chaos backend wrapper, retry/fallback/breaker/deadline behavior, and the
// 10k-query replay acceptance check (10% injected errors, zero
// caller-visible exceptions, exact-path answers bit-identical to a
// fault-free run). Suite names carry a lowercase "fault" prefix on
// purpose: `ctest -R fault` selects these plus the fault property suites,
// which CI runs under TSan.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <limits>
#include <memory>
#include <span>
#include <stdexcept>
#include <thread>
#include <vector>

#include "accel/cost_function.h"
#include "arch/backbone.h"
#include "arch/cost_table.h"
#include "evalnet/evaluator.h"
#include "fault/fault.h"
#include "fault/faulty_backend.h"
#include "runtime/thread_pool.h"
#include "serve/backend.h"
#include "serve/resilient.h"
#include "serve/service.h"
#include "util/rng.h"

namespace {

using namespace dance;
using serve::Request;
using serve::Response;

// --- FaultSpec parsing ------------------------------------------------------

TEST(fault_spec, ClauseWithoutSitePrefixTargetsBackend) {
  const auto spec = fault::FaultSpec::parse("error=0.25");
  ASSERT_EQ(spec.sites.size(), 1U);
  ASSERT_TRUE(spec.sites.count(fault::kBackendSite));
  EXPECT_DOUBLE_EQ(spec.sites.at(fault::kBackendSite).error_rate, 0.25);
  EXPECT_TRUE(spec.active_at(fault::kBackendSite));
  EXPECT_FALSE(spec.active_at(fault::kPoolSite));
}

TEST(fault_spec, ParsesMultiSiteMultiKindClauses) {
  const auto spec = fault::FaultSpec::parse(
      " backend: error=0.1 , latency=0.5:2000 ; pool: hang=1:500 ");
  ASSERT_EQ(spec.sites.size(), 2U);
  const auto& backend = spec.sites.at("backend");
  EXPECT_DOUBLE_EQ(backend.error_rate, 0.1);
  EXPECT_DOUBLE_EQ(backend.latency_rate, 0.5);
  EXPECT_EQ(backend.latency_us, 2000);
  const auto& pool = spec.sites.at("pool");
  EXPECT_DOUBLE_EQ(pool.hang_rate, 1.0);
  EXPECT_EQ(pool.hang_us, 500);
  EXPECT_TRUE(spec.active_at(fault::kPoolSite));
}

TEST(fault_spec, TimedKindsDefaultTheirDurations) {
  const auto spec = fault::FaultSpec::parse("latency=0.5,hang=0.25");
  const auto& s = spec.sites.at("backend");
  EXPECT_EQ(s.latency_us, 1000);   // documented default
  EXPECT_EQ(s.hang_us, 50000);     // documented default
  EXPECT_DOUBLE_EQ(s.latency_rate, 0.5);
  EXPECT_DOUBLE_EQ(s.hang_rate, 0.25);
}

TEST(fault_spec, MalformedSpecsThrowInsteadOfDegrading) {
  EXPECT_THROW((void)fault::FaultSpec::parse("error=1.5"),
               std::invalid_argument);  // rate out of [0, 1]
  EXPECT_THROW((void)fault::FaultSpec::parse("error=abc"),
               std::invalid_argument);
  EXPECT_THROW((void)fault::FaultSpec::parse("explode=0.5"),
               std::invalid_argument);  // unknown kind
  EXPECT_THROW((void)fault::FaultSpec::parse("error"),
               std::invalid_argument);  // missing '='
  EXPECT_THROW((void)fault::FaultSpec::parse("latency=0.5:-3"),
               std::invalid_argument);  // non-positive duration
  EXPECT_THROW((void)fault::FaultSpec::parse(":error=0.1"),
               std::invalid_argument);  // empty site name
}

TEST(fault_spec, EmptyAndWhitespaceSpecsParseEmpty) {
  EXPECT_TRUE(fault::FaultSpec::parse("").empty());
  EXPECT_TRUE(fault::FaultSpec::parse(" ; ; ").empty());
}

// --- FaultInjector ----------------------------------------------------------

/// Visits `site` n times and records which visits threw.
std::vector<bool> fault_pattern(fault::FaultInjector& injector,
                                const std::string& site, int n) {
  std::vector<bool> pattern;
  pattern.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    bool threw = false;
    try {
      injector.at(site);
    } catch (const fault::InjectedFault&) {
      threw = true;
    }
    pattern.push_back(threw);
  }
  return pattern;
}

TEST(fault_injector, SameSeedReplaysTheSameFaultSequence) {
  const auto spec = fault::FaultSpec::parse("error=0.5");
  fault::FaultInjector a(spec, 0xFA17);
  fault::FaultInjector b(spec, 0xFA17);
  const auto pa = fault_pattern(a, fault::kBackendSite, 200);
  const auto pb = fault_pattern(b, fault::kBackendSite, 200);
  EXPECT_EQ(pa, pb);
  EXPECT_GT(a.stats().errors, 0U);
  EXPECT_EQ(a.stats().errors, b.stats().errors);
  EXPECT_EQ(a.stats().visits, 200U);
}

TEST(fault_injector, DifferentSeedsProduceDifferentSequences) {
  const auto spec = fault::FaultSpec::parse("error=0.5");
  fault::FaultInjector a(spec, 1);
  fault::FaultInjector b(spec, 2);
  EXPECT_NE(fault_pattern(a, fault::kBackendSite, 200),
            fault_pattern(b, fault::kBackendSite, 200));
}

TEST(fault_injector, ErrorRateIsRoughlyRespected) {
  fault::FaultInjector injector(fault::FaultSpec::parse("error=0.5"), 7);
  const auto pattern = fault_pattern(injector, fault::kBackendSite, 1000);
  const auto errors = injector.stats().errors;
  EXPECT_GT(errors, 350U);
  EXPECT_LT(errors, 650U);
  (void)pattern;
}

TEST(fault_injector, UnconfiguredSiteIsANoOp) {
  fault::FaultInjector injector(fault::FaultSpec::parse("error=1"), 7);
  for (int i = 0; i < 50; ++i) {
    EXPECT_NO_THROW(injector.at("some-other-site"));
  }
  EXPECT_EQ(injector.stats().visits, 0U);
  EXPECT_EQ(injector.stats().errors, 0U);
}

TEST(fault_injector, LatencyInjectionSleepsForTheConfiguredSpike) {
  fault::FaultInjector injector(
      fault::FaultSpec::parse("latency=1:20000"), 7);
  const auto start = std::chrono::steady_clock::now();
  injector.at(fault::kBackendSite);
  const auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  EXPECT_GE(elapsed, 15000);  // rate 1.0: the spike always fires
  EXPECT_EQ(injector.stats().latency_spikes, 1U);
  EXPECT_EQ(injector.stats().errors, 0U);
}

// --- Test backends ----------------------------------------------------------

/// Deterministic echo: latency = sum of the encoding + a fixed offset (the
/// offset distinguishes primary answers from fallback answers).
class EchoBackend : public serve::CostQueryBackend {
 public:
  explicit EchoBackend(double offset = 0.0) : offset_(offset) {}
  std::vector<Response> query_batch(
      std::span<const Request> requests) override {
    calls_.fetch_add(1, std::memory_order_relaxed);
    std::vector<Response> out;
    out.reserve(requests.size());
    for (const Request& r : requests) {
      double sum = offset_;
      for (float v : r.encoding) sum += v;
      Response resp;
      resp.metrics.latency_ms = sum;
      out.push_back(resp);
    }
    return out;
  }
  const char* name() const override { return "echo"; }
  [[nodiscard]] int calls() const {
    return calls_.load(std::memory_order_relaxed);
  }

 private:
  double offset_;
  std::atomic<int> calls_{0};
};

/// Fails its first `fail_first` calls with a transient error, then answers
/// like EchoBackend. fail_first = INT_MAX makes it always fail.
class FlakyBackend : public serve::CostQueryBackend {
 public:
  explicit FlakyBackend(int fail_first) : fail_first_(fail_first) {}
  std::vector<Response> query_batch(
      std::span<const Request> requests) override {
    const int call = calls_.fetch_add(1, std::memory_order_relaxed);
    if (call < fail_first_) throw std::runtime_error("flaky: transient");
    return echo_.query_batch(requests);
  }
  const char* name() const override { return "flaky"; }
  [[nodiscard]] int calls() const {
    return calls_.load(std::memory_order_relaxed);
  }

 private:
  int fail_first_;
  std::atomic<int> calls_{0};
  EchoBackend echo_;
};

/// Answers like EchoBackend after a fixed sleep — for deadline tests.
class SlowBackend : public serve::CostQueryBackend {
 public:
  explicit SlowBackend(long sleep_us) : sleep_us_(sleep_us) {}
  std::vector<Response> query_batch(
      std::span<const Request> requests) override {
    std::this_thread::sleep_for(std::chrono::microseconds(sleep_us_));
    return echo_.query_batch(requests);
  }
  const char* name() const override { return "slow"; }

 private:
  long sleep_us_;
  EchoBackend echo_;
};

class PermanentErrorBackend : public serve::CostQueryBackend {
 public:
  std::vector<Response> query_batch(std::span<const Request>) override {
    calls_.fetch_add(1, std::memory_order_relaxed);
    throw std::invalid_argument("permanent: malformed request");
  }
  const char* name() const override { return "permanent"; }
  [[nodiscard]] int calls() const {
    return calls_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<int> calls_{0};
};

serve::ResilientBackend::Options fast_resilience() {
  serve::ResilientBackend::Options opts;
  opts.backoff_us = 0;  // unit tests measure logic, not sleeps
  return opts;
}

// --- FaultyBackend ----------------------------------------------------------

TEST(fault_backend, ZeroRatesPassThroughBitIdentical) {
  EchoBackend inner;
  auto injector = std::make_shared<fault::FaultInjector>(
      fault::FaultSpec::parse("error=0"), 7);
  fault::FaultyBackend faulty(inner, injector);
  EXPECT_STREQ(faulty.name(), "faulty(echo)");

  const std::vector<Request> requests = {Request{{1.0F, 2.0F}},
                                         Request{{0.5F, 0.25F}}};
  const auto direct = inner.query_batch(requests);
  const auto decorated = faulty.query_batch(requests);
  ASSERT_EQ(decorated.size(), direct.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(std::memcmp(&decorated[i].metrics, &direct[i].metrics,
                          sizeof(direct[i].metrics)),
              0);
  }
}

TEST(fault_backend, CertainErrorRateFaultsEveryCall) {
  EchoBackend inner;
  auto injector = std::make_shared<fault::FaultInjector>(
      fault::FaultSpec::parse("error=1"), 7);
  fault::FaultyBackend faulty(inner, injector);
  const Request req{{1.0F}};
  for (int i = 0; i < 10; ++i) {
    EXPECT_THROW((void)faulty.query_batch({&req, 1}), fault::InjectedFault);
  }
  EXPECT_EQ(inner.calls(), 0);  // faults fire before delegation
}

// --- ResilientBackend -------------------------------------------------------

TEST(fault_resilient, RetriesTransientFailuresUntilSuccess) {
  FlakyBackend primary(2);
  auto opts = fast_resilience();
  opts.retries = 3;
  serve::ResilientBackend resilient(primary, nullptr, opts);

  const Request req{{1.0F, 2.0F}};
  const auto responses = resilient.query_batch({&req, 1});
  ASSERT_EQ(responses.size(), 1U);
  EXPECT_DOUBLE_EQ(responses[0].metrics.latency_ms, 3.0);
  EXPECT_FALSE(responses[0].degraded);
  EXPECT_EQ(primary.calls(), 3);  // 2 failures + 1 success
  const auto stats = resilient.stats();
  EXPECT_EQ(stats.retries, 2U);
  EXPECT_EQ(stats.primary_calls, 3U);
  EXPECT_EQ(stats.fallbacks, 0U);
}

TEST(fault_resilient, ExhaustedRetriesFallBackDegraded) {
  FlakyBackend primary(std::numeric_limits<int>::max());
  EchoBackend fallback(1000.0);
  auto opts = fast_resilience();
  opts.retries = 1;
  serve::ResilientBackend resilient(primary, &fallback, opts);
  EXPECT_STREQ(resilient.name(), "resilient(flaky|echo)");

  const Request req{{1.0F}};
  const auto responses = resilient.query_batch({&req, 1});
  ASSERT_EQ(responses.size(), 1U);
  EXPECT_TRUE(responses[0].degraded);
  EXPECT_DOUBLE_EQ(responses[0].metrics.latency_ms, 1001.0);
  EXPECT_EQ(primary.calls(), 2);  // first try + 1 retry
  EXPECT_EQ(resilient.stats().fallbacks, 1U);
}

TEST(fault_resilient, ExhaustedRetriesWithoutFallbackRethrow) {
  FlakyBackend primary(std::numeric_limits<int>::max());
  auto opts = fast_resilience();
  opts.retries = 2;
  serve::ResilientBackend resilient(primary, nullptr, opts);
  const Request req{{1.0F}};
  EXPECT_THROW((void)resilient.query_batch({&req, 1}), std::runtime_error);
  EXPECT_EQ(primary.calls(), 3);
}

TEST(fault_resilient, PermanentErrorsAreNotRetriedOrDegraded) {
  PermanentErrorBackend primary;
  EchoBackend fallback;
  auto opts = fast_resilience();
  opts.retries = 5;
  serve::ResilientBackend resilient(primary, &fallback, opts);
  const Request req{{1.0F}};
  EXPECT_THROW((void)resilient.query_batch({&req, 1}), std::invalid_argument);
  EXPECT_EQ(primary.calls(), 1);  // no retries: the request is the problem
  EXPECT_EQ(resilient.stats().retries, 0U);
  EXPECT_EQ(resilient.stats().fallbacks, 0U);
}

TEST(fault_resilient, BreakerOpensAfterThresholdAndSkipsPrimary) {
  FlakyBackend primary(std::numeric_limits<int>::max());
  EchoBackend fallback(1000.0);
  auto opts = fast_resilience();
  opts.retries = 0;
  opts.breaker_threshold = 2;
  opts.breaker_cooldown_us = 60L * 1000 * 1000;  // effectively forever
  serve::ResilientBackend resilient(primary, &fallback, opts);

  const Request req{{1.0F}};
  for (int i = 0; i < 5; ++i) {
    const auto responses = resilient.query_batch({&req, 1});
    EXPECT_TRUE(responses[0].degraded);
  }
  EXPECT_EQ(primary.calls(), 2);  // threshold hit; the rest skipped it
  const auto stats = resilient.stats();
  EXPECT_EQ(stats.breaker_opens, 1U);
  EXPECT_EQ(stats.breaker_closes, 0U);
  EXPECT_EQ(stats.fallbacks, 5U);
}

TEST(fault_resilient, HalfOpenProbeClosesBreakerOnSuccess) {
  FlakyBackend primary(1);  // fail once, then recover
  EchoBackend fallback(1000.0);
  auto opts = fast_resilience();
  opts.retries = 0;
  opts.breaker_threshold = 1;
  opts.breaker_cooldown_us = 0;  // half-open on the very next call
  serve::ResilientBackend resilient(primary, &fallback, opts);

  const Request req{{1.0F}};
  EXPECT_TRUE(resilient.query_batch({&req, 1})[0].degraded);   // opens
  EXPECT_FALSE(resilient.query_batch({&req, 1})[0].degraded);  // probe wins
  EXPECT_FALSE(resilient.query_batch({&req, 1})[0].degraded);  // closed
  const auto stats = resilient.stats();
  EXPECT_EQ(stats.breaker_opens, 1U);
  EXPECT_EQ(stats.breaker_closes, 1U);
  EXPECT_EQ(primary.calls(), 3);
}

TEST(fault_resilient, FailedProbeReopensBreaker) {
  FlakyBackend primary(2);  // the first probe also fails
  EchoBackend fallback(1000.0);
  auto opts = fast_resilience();
  opts.retries = 0;
  opts.breaker_threshold = 1;
  opts.breaker_cooldown_us = 0;
  serve::ResilientBackend resilient(primary, &fallback, opts);

  const Request req{{1.0F}};
  EXPECT_TRUE(resilient.query_batch({&req, 1})[0].degraded);   // opens
  EXPECT_TRUE(resilient.query_batch({&req, 1})[0].degraded);   // probe fails
  EXPECT_FALSE(resilient.query_batch({&req, 1})[0].degraded);  // next probe ok
  const auto stats = resilient.stats();
  EXPECT_EQ(stats.breaker_opens, 2U);  // initial open + reopen
  EXPECT_EQ(stats.breaker_closes, 1U);
}

TEST(fault_resilient, DeadlineExpiryDegradesInsteadOfBlocking) {
  SlowBackend primary(200000);  // 200 ms per call
  EchoBackend fallback(1000.0);
  auto opts = fast_resilience();
  opts.retries = 3;
  opts.deadline_us = 20000;  // 20 ms budget
  serve::ResilientBackend resilient(primary, &fallback, opts);

  const Request req{{1.0F}};
  const auto start = std::chrono::steady_clock::now();
  const auto responses = resilient.query_batch({&req, 1});
  const auto elapsed_us =
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count();
  ASSERT_EQ(responses.size(), 1U);
  EXPECT_TRUE(responses[0].degraded);
  EXPECT_LT(elapsed_us, 150000);  // gave up well before the 200 ms backend
  const auto stats = resilient.stats();
  EXPECT_EQ(stats.deadline_expired, 1U);
  EXPECT_EQ(stats.primary_calls, 1U);  // the expiry consumed the budget
}

// --- Pool-site injection ----------------------------------------------------

TEST(fault_pool_site, GlobalInstallArmsAndDisarmsThePoolHook) {
  auto injector = std::make_shared<fault::FaultInjector>(
      fault::FaultSpec::parse("pool:error=1"), 7);
  fault::install_global(injector);
  EXPECT_EQ(fault::global_injector(), injector);

  auto& pool = runtime::global_pool();
  std::atomic<int> ran{0};
  EXPECT_THROW(
      pool.parallel_for(0, 16, 1, [&](long lo, long hi) {
        ran.fetch_add(static_cast<int>(hi - lo));
      }),
      fault::InjectedFault);
  EXPECT_EQ(ran.load(), 0);  // the fault fired before any chunk ran
  EXPECT_GE(injector->stats().errors, 1U);

  fault::install_global(nullptr);
  EXPECT_EQ(fault::global_injector(), nullptr);
  pool.parallel_for(0, 16, 1, [&](long lo, long hi) {
    ran.fetch_add(static_cast<int>(hi - lo));
  });
  EXPECT_EQ(ran.load(), 16);  // disarmed: loops run clean again
}

// --- 10k-query replay acceptance --------------------------------------------

/// Ground-truth fixture (same tiny space as the serve_service tests).
class fault_replay : public ::testing::Test {
 protected:
  fault_replay()
      : arch_space_(arch::cifar10_backbone()),
        hw_space_({.pe_min = 8, .pe_max = 10, .rf_min = 8, .rf_max = 16,
                   .rf_step = 8}),
        table_(arch_space_, hw_space_, model_) {}

  arch::ArchSpace arch_space_;
  hwgen::HwSearchSpace hw_space_;
  accel::CostModel model_;
  arch::CostTable table_;
};

TEST_F(fault_replay, TenKQueriesUnderTenPercentErrorsStayCorrect) {
  constexpr int kQueries = 10000;
  constexpr std::size_t kWindow = 256;

  util::Rng rng(0xDA5CE);
  std::vector<Request> trace;
  trace.reserve(kQueries);
  for (int i = 0; i < kQueries; ++i) {
    trace.push_back(
        Request::from_architecture(arch_space_, arch_space_.random(rng)));
  }

  // Fault-free ground truth, straight through the exact backend.
  serve::ExactBackend exact(table_, accel::edap_cost());
  std::vector<Response> expected;
  expected.reserve(trace.size());
  for (std::size_t at = 0; at < trace.size(); at += kWindow) {
    const std::size_t hi = std::min(at + kWindow, trace.size());
    auto chunk = exact.query_batch(
        std::span<const Request>(trace.data() + at, hi - at));
    expected.insert(expected.end(), chunk.begin(), chunk.end());
  }

  // Faulted run: 10% injected errors on the exact backend, retries absorb
  // almost all of them, the surrogate catches the rest. Cache disabled so
  // every request actually exercises the faulted path.
  serve::ExactBackend exact_again(table_, accel::edap_cost());
  auto injector = std::make_shared<fault::FaultInjector>(
      fault::FaultSpec::parse("backend:error=0.1"), 0xFA17);
  fault::FaultyBackend faulty(exact_again, injector);
  util::Rng eval_rng(17);
  evalnet::Evaluator evaluator(arch_space_.encoding_width(), hw_space_,
                               eval_rng);
  serve::SurrogateBackend surrogate(evaluator);
  auto ropts = fast_resilience();
  ropts.retries = 4;
  serve::ResilientBackend resilient(faulty, &surrogate, ropts);

  serve::Service::Options sopts;
  sopts.enable_cache = false;
  sopts.batch.max_batch = 4;
  serve::Service service(resilient, sopts);

  std::size_t degraded = 0;
  std::size_t mismatched = 0;
  for (std::size_t at = 0; at < trace.size(); at += kWindow) {
    const std::size_t hi = std::min(at + kWindow, trace.size());
    // Acceptance: this must never throw — that is the whole point.
    const auto window = service.query_many(
        std::span<const Request>(trace.data() + at, hi - at));
    for (std::size_t i = 0; i < window.size(); ++i) {
      const Response& got = window[i];
      if (got.degraded) {
        ++degraded;
        continue;
      }
      const Response& want = expected[at + i];
      const bool same =
          got.config == want.config &&
          std::memcmp(&got.metrics, &want.metrics, sizeof(want.metrics)) == 0;
      if (!same) ++mismatched;
    }
  }

  // Faults were actually injected and retried…
  EXPECT_GT(injector->stats().errors, 0U);
  EXPECT_GT(resilient.stats().retries, 0U);
  // …yet >= 99% of responses are full-fidelity…
  EXPECT_LT(degraded, static_cast<std::size_t>(kQueries / 100));
  // …and every exact-path answer is bit-identical to the fault-free run.
  EXPECT_EQ(mismatched, 0U);
}

}  // namespace
