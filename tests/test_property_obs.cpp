// Property suite 5: concurrency safety of the dance::obs registry.
//
//  * obs_concurrent — randomized fleets of threads hammer one counter and
//    one histogram; afterwards the instruments must agree exactly with a
//    serial oracle (totals, per-bucket counts, min/max, sum). Sample values
//    are multiples of 0.5, which add exactly in double no matter the
//    interleaving, so even `sum` is compared bit-for-bit.
//
// Suite names carry a lowercase "obs" so `ctest -R obs` selects these
// alongside the unit suites in test_obs.cpp; CI runs them under TSan, which
// is where the relaxed-atomic and mutex paths earn their keep.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/registry.h"
#include "obs/span.h"
#include "testing/property.h"
#include "util/stats.h"

namespace testing_ = dance::testing;

namespace {

using namespace dance;

/// One randomized stress plan: `threads` workers, each observing its own
/// slice of `per_thread` values derived from the trial seed.
struct Plan {
  int threads = 2;
  int per_thread = 64;
  std::uint64_t seed = 0;
};

testing_::Generator<Plan> plan_generator() {
  testing_::Generator<Plan> gen;
  gen.sample = [](util::Rng& rng) {
    Plan p;
    p.threads = rng.randint(2, 8);
    p.per_thread = rng.randint(1, 256);
    p.seed = rng.engine()();
    return p;
  };
  gen.show = [](const Plan& p) {
    std::ostringstream os;
    os << "{threads=" << p.threads << ", per_thread=" << p.per_thread
       << ", seed=0x" << std::hex << p.seed << "}";
    return os.str();
  };
  return gen;
}

/// The value thread t observes at step i: deterministic, exactly
/// representable (multiple of 0.5), spread across the bucket bounds.
double planned_value(const Plan& p, int t, int i) {
  const std::uint64_t h = testing_::mix_seed(
      p.seed, static_cast<std::uint64_t>(t) * 100003ULL +
                  static_cast<std::uint64_t>(i));
  return 0.5 * static_cast<double>(h % 41);  // 0.0 .. 20.0 step 0.5
}

TEST(obs_concurrent, CounterAndHistogramMatchSerialOracle) {
  static int unique_id = 0;
  const auto result = testing_::check<Plan>(
      "obs_concurrent_matches_oracle", plan_generator(),
      [](const Plan& p, util::Rng&) -> std::string {
        // Fresh instruments per trial: registry names are process-global.
        const std::string tag = "test.pbt.obs." + std::to_string(unique_id++);
        auto& reg = obs::Registry::global();
        obs::Counter& counter = reg.counter(tag + ".counter");
        obs::Histogram& hist =
            reg.histogram(tag + ".hist", {2.0, 5.0, 10.0, 15.0});

        std::vector<std::thread> workers;
        workers.reserve(static_cast<std::size_t>(p.threads));
        for (int t = 0; t < p.threads; ++t) {
          workers.emplace_back([&, t] {
            obs::ScopedSpan span("pbt.obs.worker");
            for (int i = 0; i < p.per_thread; ++i) {
              counter.inc();
              hist.observe(planned_value(p, t, i));
            }
          });
        }
        for (auto& w : workers) w.join();

        // Serial oracle over the same planned values.
        std::uint64_t n = 0;
        double sum = 0.0;
        double mn = 0.0;
        double mx = 0.0;
        std::vector<std::uint64_t> buckets(5, 0);  // 4 bounds + Inf
        const double bounds[4] = {2.0, 5.0, 10.0, 15.0};
        for (int t = 0; t < p.threads; ++t) {
          for (int i = 0; i < p.per_thread; ++i) {
            const double v = planned_value(p, t, i);
            ++n;
            sum += v;
            mn = (n == 1) ? v : std::min(mn, v);
            mx = (n == 1) ? v : std::max(mx, v);
            std::size_t b = 4;
            for (std::size_t k = 0; k < 4; ++k) {
              if (v <= bounds[k]) { b = k; break; }
            }
            ++buckets[b];
          }
        }

        const std::uint64_t got_count = counter.value();
        const auto s = hist.snapshot();
        std::ostringstream err;
        if (got_count != n) {
          err << "counter=" << got_count << " want " << n << "; ";
        }
        if (s.count != n) err << "hist count=" << s.count << " want " << n << "; ";
        if (s.sum != sum) err << "hist sum=" << s.sum << " want " << sum << "; ";
        if (s.min != mn) err << "hist min=" << s.min << " want " << mn << "; ";
        if (s.max != mx) err << "hist max=" << s.max << " want " << mx << "; ";
        // Snapshot buckets are cumulative; the oracle's are per-bucket.
        std::uint64_t cum = 0;
        for (std::size_t k = 0; k < buckets.size(); ++k) {
          cum += buckets[k];
          if (s.buckets.size() <= k || s.buckets[k] != cum) {
            err << "bucket[" << k << "] mismatch; ";
            break;
          }
        }
        return err.str();
      });
  EXPECT_TRUE(result.ok) << result.report;
}

TEST(obs_concurrent, SpansFromManyThreadsAllSurface) {
  obs::clear_spans();
  constexpr int kThreads = 8;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([] { obs::ScopedSpan span("pbt.obs.span_fanout"); });
  }
  for (auto& w : workers) w.join();
  int seen = 0;
  for (const auto& s : obs::recent_spans()) {
    if (s.name == "pbt.obs.span_fanout") ++seen;
  }
  // Each thread has its own ring, so none of the 8 can evict another's span.
  EXPECT_EQ(seen, kThreads);
  obs::clear_spans();
}

}  // namespace
