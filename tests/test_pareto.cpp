// Multi-objective co-search (search/pareto.h): front computation with
// deterministic tie-breaking, the constrained exhaustive oracle, the
// history-penalty bookkeeping, and the front CSV. Suite names carry a
// lowercase "pareto" so `ctest -R pareto` selects exactly these plus the
// property suites (tests/test_property_pareto.cpp).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>

#include "arch/cost_table.h"
#include "evalnet/trainer.h"
#include "search/pareto.h"

namespace {

using namespace dance;

search::SearchOutcome outcome4(double error, double lat, double energy,
                               double area) {
  search::SearchOutcome o;
  o.val_accuracy_pct = 100.0 - error;
  o.metrics = accel::CostMetrics{lat, energy, area};
  return o;
}

TEST(pareto_front, DominanceRequiresStrictImprovementSomewhere) {
  const auto a = outcome4(1.0, 2.0, 3.0, 4.0);
  const auto b = outcome4(1.0, 2.0, 3.0, 4.0);
  EXPECT_FALSE(search::dominates_outcome(a, b));  // equal: no strict edge
  const auto c = outcome4(1.0, 2.0, 3.0, 5.0);
  EXPECT_TRUE(search::dominates_outcome(a, c));
  EXPECT_FALSE(search::dominates_outcome(c, a));
  const auto d = outcome4(0.5, 9.0, 3.0, 4.0);  // trade-off: neither wins
  EXPECT_FALSE(search::dominates_outcome(a, d));
  EXPECT_FALSE(search::dominates_outcome(d, a));
}

TEST(pareto_front, NonFiniteOutcomesDominateNothingAndNeverJoinTheFront) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const auto poisoned = outcome4(nan, 0.0, 0.0, 0.0);
  const auto real = outcome4(5.0, 5.0, 5.0, 5.0);
  EXPECT_FALSE(search::dominates_outcome(poisoned, real));
  EXPECT_FALSE(search::finite_objectives(poisoned));
  const std::vector<search::SearchOutcome> outcomes = {poisoned, real};
  const auto front = search::pareto_front_indices(outcomes);
  ASSERT_EQ(front.size(), 1U);
  EXPECT_EQ(front[0], 1U);
}

TEST(pareto_front, ComputesNonDominatedSubset) {
  const std::vector<search::SearchOutcome> outcomes = {
      outcome4(1.0, 4.0, 1.0, 1.0),  // front (best error)
      outcome4(4.0, 1.0, 1.0, 1.0),  // front (best latency)
      outcome4(4.0, 4.0, 4.0, 4.0),  // dominated by both
      outcome4(2.0, 2.0, 1.0, 1.0),  // front (trade-off)
  };
  const auto front = search::pareto_front_indices(outcomes);
  // Sorted by (error, latency, energy, area, index).
  const std::vector<std::size_t> expected = {0, 3, 1};
  EXPECT_EQ(front, expected);
}

TEST(pareto_front, DuplicateObjectiveVectorsKeepEarliestIndex) {
  const std::vector<search::SearchOutcome> outcomes = {
      outcome4(2.0, 2.0, 2.0, 2.0),
      outcome4(2.0, 2.0, 2.0, 2.0),  // exact duplicate of 0
      outcome4(1.0, 3.0, 2.0, 2.0),
  };
  const auto front = search::pareto_front_indices(outcomes);
  const std::vector<std::size_t> expected = {2, 0};  // 1 deduped away
  EXPECT_EQ(front, expected);
}

TEST(pareto_front, Lambda2SweepBuildsOneEntryPerValue) {
  const std::vector<float> ladder = {0.1F, 0.5F, 2.0F};
  const auto sweep = search::lambda2_sweep(ladder, search::CostKind::kEdap);
  ASSERT_EQ(sweep.size(), 3U);
  EXPECT_FLOAT_EQ(sweep[1].lambda2, 0.5F);
  EXPECT_EQ(sweep[2].cost_kind, search::CostKind::kEdap);
  EXPECT_EQ(sweep[0].seed, 0U);  // derive from base seed + position
}

TEST(pareto_csv, FrontRowsFirstThenRestInSweepOrder) {
  search::ParetoResult result;
  result.points.resize(3);
  result.points[0].outcome = outcome4(3.0, 3.0, 3.0, 3.0);
  result.points[0].feasible = true;
  result.points[1].outcome = outcome4(1.0, 1.0, 1.0, 1.0);
  result.points[1].feasible = true;
  result.points[1].on_front = true;
  result.points[2].outcome = outcome4(0.5, 0.5, 0.5, 0.5);
  result.points[2].feasible = false;  // best numbers but over budget
  result.front = {1};

  const auto path = std::filesystem::temp_directory_path() /
                    "dance_test_pareto_front.csv";
  search::write_front_csv(path.string(), result);
  std::ifstream in(path);
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line)) lines.push_back(line);
  std::filesystem::remove(path);

  ASSERT_EQ(lines.size(), 4U);  // header + 3 points
  EXPECT_EQ(lines[0].substr(0, 14), "series,lambda2");
  EXPECT_EQ(lines[1].substr(0, 6), "front,");
  EXPECT_EQ(lines[2].substr(0, 10), "dominated,");
  EXPECT_EQ(lines[3].substr(0, 11), "infeasible,");
}

TEST(pareto_history, ArchHistoryCountsSlotOpVisits) {
  const arch::ArchSpace space(arch::cifar10_backbone());
  search::ArchHistory history(space);
  util::Rng rng(7);
  const arch::Architecture a = space.random(rng);
  history.record(a);
  history.record(a);
  EXPECT_EQ(history.visits(0, static_cast<int>(a[0])), 2);
  // Unvisited (slot, op) pairs stay at zero penalty.
  const auto row = history.penalty_encoding(1.0);
  ASSERT_EQ(row.size(), static_cast<std::size_t>(space.encoding_width()));
  int nonzero = 0;
  for (const float v : row) nonzero += v > 0.0F ? 1 : 0;
  EXPECT_EQ(nonzero, space.num_searchable());
  EXPECT_FLOAT_EQ(row[static_cast<std::size_t>(a[0])], 2.0F);
}

TEST(pareto_history, ArchHistoryPenaltyGrowsWithExponent) {
  const arch::ArchSpace space(arch::cifar10_backbone());
  search::ArchHistory history(space);
  util::Rng rng(7);
  const arch::Architecture a = space.random(rng);
  for (int i = 0; i < 3; ++i) history.record(a);
  const auto mild = history.penalty_encoding(1.0);
  const auto steep = history.penalty_encoding(2.0);
  const auto idx = static_cast<std::size_t>(a[0]);
  EXPECT_FLOAT_EQ(mild[idx], 3.0F);
  EXPECT_FLOAT_EQ(steep[idx], 9.0F);
}

TEST(pareto_history, HwHistoryBumpsNeighborhoodRegion) {
  const hwgen::HwSearchSpace space(
      {.pe_min = 8, .pe_max = 12, .rf_min = 8, .rf_max = 32, .rf_step = 8});
  search::HwHistory history(space);
  accel::AcceleratorConfig c;
  c.pe_x = 10;
  c.pe_y = 10;
  c.rf_size = 16;
  c.dataflow = accel::Dataflow::kRowStationary;
  history.record(c);
  EXPECT_EQ(history.visits(c), 1);
  // A ±1 neighbor in every dimension is part of the recorded region...
  accel::AcceleratorConfig near = c;
  near.pe_x = 11;
  near.rf_size = 24;
  EXPECT_EQ(history.visits(near), 1);
  // ...but a different dataflow or a 2-step neighbor is not.
  accel::AcceleratorConfig far = c;
  far.pe_x = 8;
  EXPECT_EQ(history.visits(far), 0);
  accel::AcceleratorConfig other_df = c;
  other_df.dataflow = accel::Dataflow::kWeightStationary;
  EXPECT_EQ(history.visits(other_df), 0);

  EXPECT_DOUBLE_EQ(history.penalty_factor(space.index_of(far), 0.5, 2.0), 1.0);
  EXPECT_DOUBLE_EQ(history.penalty_factor(space.index_of(c), 0.5, 2.0), 1.5);
}

/// Fixture with a real (tiny) cost table for the oracle and integration
/// smokes — same scale as tests/test_search.cpp.
class pareto_integration : public ::testing::Test {
 protected:
  pareto_integration()
      : arch_space_(arch::cifar10_backbone()),
        hw_space_({.pe_min = 8, .pe_max = 12, .rf_min = 8, .rf_max = 32,
                   .rf_step = 8}),
        table_(arch_space_, hw_space_, model_) {
    data::SyntheticTaskConfig dcfg;
    dcfg.input_dim = 12;
    dcfg.num_classes = 6;
    dcfg.train_samples = 512;
    dcfg.val_samples = 192;
    task_ = data::make_synthetic_task(dcfg);

    net_config_.input_dim = 12;
    net_config_.num_classes = 6;
    net_config_.width = 24;
    net_config_.num_blocks = 9;
  }

  arch::ArchSpace arch_space_;
  hwgen::HwSearchSpace hw_space_;
  accel::CostModel model_;
  arch::CostTable table_;
  data::SyntheticTask task_;
  nas::SuperNetConfig net_config_;
};

TEST_F(pareto_integration, ConstrainedOptimalMatchesPenalizedArgmin) {
  util::Rng rng(11);
  const accel::HwCostFn base = accel::edap_cost();
  for (int trial = 0; trial < 5; ++trial) {
    const arch::Architecture a = arch_space_.random(rng);
    // Pick a budget that excludes part (but not all) of the space: the
    // median area across configurations.
    const auto all = table_.evaluate_all(a);
    std::vector<double> areas;
    for (const auto& m : all) areas.push_back(m.area_mm2);
    std::sort(areas.begin(), areas.end());
    search::ConstraintSpec spec;
    spec.area_budget_mm2 = areas[areas.size() / 2];

    const auto oracle = search::constrained_optimal(table_, a, base, spec);
    const auto penalized =
        table_.optimal(a, search::constrained_cost_fn(base, spec));
    EXPECT_EQ(oracle.config, penalized.config) << "trial " << trial;
    EXPECT_TRUE(spec.feasible(oracle.metrics));
  }
}

TEST_F(pareto_integration, ConstrainedOptimalFallsBackToLeastViolating) {
  util::Rng rng(13);
  const arch::Architecture a = arch_space_.random(rng);
  search::ConstraintSpec spec;
  spec.area_budget_mm2 = 1e-9;  // nothing fits
  const auto oracle =
      search::constrained_optimal(table_, a, accel::edap_cost(), spec);
  // Least-violating == smallest area when only area is constrained.
  const auto all = table_.evaluate_all(a);
  double min_area = std::numeric_limits<double>::infinity();
  for (const auto& m : all) min_area = std::min(min_area, m.area_mm2);
  EXPECT_DOUBLE_EQ(oracle.metrics.area_mm2, min_area);
  // The penalized arg-min agrees even when the whole space is infeasible.
  const auto penalized = table_.optimal(
      a, search::constrained_cost_fn(accel::edap_cost(), spec));
  EXPECT_EQ(oracle.config, penalized.config);
}

TEST_F(pareto_integration, EmptySweepThrows) {
  util::Rng rng(3);
  evalnet::Evaluator evaluator(arch_space_.encoding_width(), hw_space_, rng);
  search::ParetoOptions opts;
  search::ParetoCoSearch co(task_, table_, evaluator, net_config_, opts);
  EXPECT_THROW((void)co.run(), std::invalid_argument);
}

TEST_F(pareto_integration, SweepProducesVerifiedFront) {
  util::Rng rng(21);
  evalnet::Evaluator::Options eopts;
  eopts.hwgen.hidden_dim = 32;
  eopts.cost.hidden_dim = 32;
  evalnet::Evaluator evaluator(arch_space_.encoding_width(), hw_space_, rng,
                               eopts);
  auto ds = evalnet::generate_evaluator_dataset(table_, accel::edap_cost(),
                                                200, rng);
  auto [train, val] = evalnet::split_dataset(ds, 0.8);
  evalnet::TrainOptions topts;
  topts.epochs = 6;
  topts.batch_size = 64;
  evalnet::train_hwgen_net(evaluator.hwgen_net(), train, val, topts);
  topts.lr = 3e-3F;
  evalnet::train_cost_net(evaluator.cost_net(), train, val, topts);

  search::ParetoOptions opts;
  opts.base.search_epochs = 3;
  opts.base.warmup_epochs = 1;
  opts.base.retrain.epochs = 4;
  const std::vector<float> ladder = {0.0F, 1.0F};
  opts.sweep = search::lambda2_sweep(ladder);
  const search::ParetoResult result =
      search::ParetoCoSearch(task_, table_, evaluator, net_config_, opts)
          .run();
  ASSERT_EQ(result.points.size(), 2U);
  EXPECT_FALSE(result.front.empty());
  for (const auto& p : result.points) {
    EXPECT_EQ(p.outcome.architecture.size(), 9U);
    EXPECT_TRUE(p.feasible);  // no constraints set
  }
  const std::string err =
      search::verify_front(result, table_, opts.base.constraints);
  EXPECT_TRUE(err.empty()) << err;
}

}  // namespace
