// Unit tests for the dance::infer frozen-inference compiler: mode knob
// parsing, freeze/compile surface, the fused plan's bit-identity to the
// autograd path on a fixed checkpoint, the int8 tier's calibration
// lifecycle, the shared blocked GEMM and the SurrogateBackend tier routing.
// Suite names carry a lowercase "infer" prefix on purpose: `ctest -R infer`
// selects exactly these suites (plus the randomized property suites in
// test_property_infer.cpp).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "arch/backbone.h"
#include "arch/ops.h"
#include "evalnet/evaluator.h"
#include "infer/plan.h"
#include "serve/backend.h"
#include "tensor/gemm.h"
#include "util/rng.h"

namespace {

using namespace dance;

/// Bitwise float comparison (covers -0.0 and NaN payloads).
bool bit_equal(const float* a, const float* b, std::size_t n) {
  return n == 0 || std::memcmp(a, b, n * sizeof(float)) == 0;
}

/// Small evaluator in frozen eval mode; fresh per call so tests can mutate.
evalnet::Evaluator make_evaluator(const hwgen::HwSearchSpace& space, int width,
                                  std::uint64_t seed = 0x1f3e) {
  util::Rng rng(seed);
  evalnet::Evaluator::Options opts;
  opts.hwgen.hidden_dim = 24;
  opts.hwgen.num_layers = 3;
  opts.cost.hidden_dim = 24;
  opts.cost.num_layers = 3;
  evalnet::Evaluator ev(width, space, rng, opts);
  ev.set_frozen(true);
  ev.set_training(false);
  return ev;
}

hwgen::HwSearchSpace small_space() {
  return hwgen::HwSearchSpace(
      {.pe_min = 8, .pe_max = 10, .rf_min = 8, .rf_max = 16, .rf_step = 8});
}

std::vector<std::vector<float>> random_rows(int n, int width,
                                            std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::vector<float>> rows(static_cast<std::size_t>(n));
  for (auto& row : rows) {
    row.resize(static_cast<std::size_t>(width));
    for (auto& v : row) v = rng.uniform();
  }
  return rows;
}

TEST(infer_mode, ToStringAndParseRoundTrip) {
  for (const auto mode :
       {infer::Mode::kAutograd, infer::Mode::kFused, infer::Mode::kInt8}) {
    infer::Mode parsed{};
    ASSERT_TRUE(infer::parse_mode(infer::to_string(mode), parsed));
    EXPECT_EQ(parsed, mode);
  }
}

TEST(infer_mode, ParseRejectsUnknownAndLeavesOutputUntouched) {
  infer::Mode mode = infer::Mode::kInt8;
  EXPECT_FALSE(infer::parse_mode("FUSED", mode));
  EXPECT_FALSE(infer::parse_mode("", mode));
  EXPECT_FALSE(infer::parse_mode("int4", mode));
  EXPECT_EQ(mode, infer::Mode::kInt8);
}

TEST(infer_mode, EnvKnobSelectsTierAndDegradesToAutograd) {
  ::setenv("DANCE_INFER", "fused", 1);
  EXPECT_EQ(infer::mode_from_env(), infer::Mode::kFused);
  ::setenv("DANCE_INFER", "int8", 1);
  EXPECT_EQ(infer::mode_from_env(), infer::Mode::kInt8);
  ::setenv("DANCE_INFER", "warp-speed", 1);
  EXPECT_EQ(infer::mode_from_env(), infer::Mode::kAutograd);
  ::unsetenv("DANCE_INFER");
  EXPECT_EQ(infer::mode_from_env(), infer::Mode::kAutograd);
}

TEST(infer_gemm, BlockedMatchesNaiveTripleLoop) {
  util::Rng rng(0x6e44);
  const int n = 7, k = 33, m = 19;  // straddles both block boundaries
  std::vector<float> a(static_cast<std::size_t>(n) * k);
  std::vector<float> b(static_cast<std::size_t>(k) * m);
  for (auto& v : a) v = rng.normal();
  for (auto& v : b) v = rng.normal();
  a[5] = 0.0F;  // exercise the zero-skip
  a[40] = 0.0F;

  std::vector<float> ref(static_cast<std::size_t>(n) * m, 0.0F);
  for (int i = 0; i < n; ++i) {
    for (int kk = 0; kk < k; ++kk) {
      const float av = a[static_cast<std::size_t>(i) * k + kk];
      for (int j = 0; j < m; ++j) {
        ref[static_cast<std::size_t>(i) * m + j] +=
            av * b[static_cast<std::size_t>(kk) * m + j];
      }
    }
  }

  std::vector<float> c(static_cast<std::size_t>(n) * m, 0.0F);
  tensor::gemm::gemm(a.data(), b.data(), c.data(), n, k, m);
  EXPECT_TRUE(bit_equal(ref.data(), c.data(), ref.size()));
}

TEST(infer_gemm, ZeroTimesNonFinitePoisons) {
  // 0 * NaN must land NaN in C (the PR 5 matmul regression): the zero-skip
  // is only legal while B is finite everywhere.
  const int n = 1, k = 2, m = 1;
  const float a[2] = {0.0F, 0.0F};
  const float b[2] = {std::nanf(""), 1.0F};
  float c[1] = {0.0F};
  tensor::gemm::gemm(a, b, c, n, k, m);
  EXPECT_TRUE(std::isnan(c[0]));
  EXPECT_FALSE(tensor::gemm::all_finite(b, 2));
  EXPECT_TRUE(tensor::gemm::all_finite(a, 2));
}

TEST(infer_plan, CompileExposesCheckpointGeometry) {
  const auto space = small_space();
  arch::ArchSpace arch_space{arch::cifar10_backbone()};
  const int width = arch_space.encoding_width();
  auto ev = make_evaluator(space, width);
  const infer::Plan plan = infer::Plan::compile(ev);

  EXPECT_EQ(plan.arch_width(), width);
  EXPECT_EQ(plan.hw_width(), space.encoding_width());
  // 3-layer trunks: input + one hidden block + head, twice.
  EXPECT_EQ(plan.num_steps(), 6U);
  EXPECT_GT(plan.floats_per_row(), 0U);
  EXPECT_FALSE(plan.int8_ready());
  EXPECT_EQ(plan.head_ranges(), ev.hwgen_net().head_ranges());
}

TEST(infer_plan, FreezeRequiresEvalMode) {
  const auto space = small_space();
  auto ev = make_evaluator(space, 8);
  ev.set_training(true);
  EXPECT_THROW((void)ev.freeze(), std::logic_error);
  EXPECT_THROW((void)infer::Plan::compile(ev), std::logic_error);
}

TEST(infer_plan, RunValidatesModeAndBatch) {
  const auto space = small_space();
  auto ev = make_evaluator(space, 8);
  const infer::Plan plan = infer::Plan::compile(ev);
  infer::Arena arena;
  std::vector<float> in(8, 0.5F);
  std::vector<float> metrics(3);
  std::vector<float> hw(static_cast<std::size_t>(plan.hw_width()));

  EXPECT_THROW(
      plan.run(in.data(), 0, metrics.data(), hw.data(), arena),
      std::invalid_argument);
  EXPECT_THROW(plan.run(in.data(), 1, metrics.data(), hw.data(), arena,
                        infer::Mode::kAutograd),
               std::invalid_argument);
  // int8 before calibrate(): the tier does not exist yet.
  EXPECT_THROW(plan.run(in.data(), 1, metrics.data(), hw.data(), arena,
                        infer::Mode::kInt8),
               std::logic_error);
}

TEST(infer_plan, FusedBitIdenticalToAutogradOnFixture) {
  const auto space = small_space();
  arch::ArchSpace arch_space{arch::cifar10_backbone()};
  const int width = arch_space.encoding_width();
  auto ev = make_evaluator(space, width);
  const infer::Plan plan = infer::Plan::compile(ev);

  const auto rows = random_rows(5, width, 0xfeed);
  const auto autograd = ev.forward_batch(rows);

  const tensor::Tensor stacked = evalnet::Evaluator::stack_rows(rows);
  infer::Arena arena;
  std::vector<float> metrics(5 * 3);
  std::vector<float> hw(5 * static_cast<std::size_t>(plan.hw_width()));
  plan.run(stacked.data(), 5, metrics.data(), hw.data(), arena);

  EXPECT_TRUE(bit_equal(autograd.metrics.value().data(), metrics.data(),
                        metrics.size()));
  EXPECT_TRUE(
      bit_equal(autograd.hw_encoding.value().data(), hw.data(), hw.size()));
}

TEST(infer_plan, ArenaGrowsMonotonicallyAndIsReused) {
  const auto space = small_space();
  auto ev = make_evaluator(space, 8);
  const infer::Plan plan = infer::Plan::compile(ev);
  infer::Arena arena;
  std::vector<float> in(8 * 16, 0.25F);
  std::vector<float> metrics(3 * 16);
  std::vector<float> hw(static_cast<std::size_t>(plan.hw_width()) * 16);

  plan.run(in.data(), 4, metrics.data(), hw.data(), arena);
  const std::size_t after_four = arena.bytes();
  plan.run(in.data(), 16, metrics.data(), hw.data(), arena);
  const std::size_t after_sixteen = arena.bytes();
  EXPECT_GE(after_sixteen, after_four);
  // Steady state: a smaller batch must not reallocate.
  plan.run(in.data(), 2, metrics.data(), hw.data(), arena);
  EXPECT_EQ(arena.bytes(), after_sixteen);
}

TEST(infer_plan, Int8CalibratesAndAnswersDeterministically) {
  const auto space = small_space();
  arch::ArchSpace arch_space{arch::cifar10_backbone()};
  const int width = arch_space.encoding_width();
  auto ev = make_evaluator(space, width);
  infer::Plan plan = infer::Plan::compile(ev);

  EXPECT_THROW(plan.calibrate({}), std::invalid_argument);
  plan.calibrate(random_rows(16, width, 0xca1b));
  EXPECT_TRUE(plan.int8_ready());

  const auto rows = random_rows(4, width, 0xabcd);
  const tensor::Tensor stacked = evalnet::Evaluator::stack_rows(rows);
  infer::Arena arena_a, arena_b;
  std::vector<float> m_a(4 * 3), m_b(4 * 3);
  std::vector<float> hw_a(4 * static_cast<std::size_t>(plan.hw_width()));
  std::vector<float> hw_b(hw_a.size());
  plan.run(stacked.data(), 4, m_a.data(), hw_a.data(), arena_a,
           infer::Mode::kInt8);
  plan.run(stacked.data(), 4, m_b.data(), hw_b.data(), arena_b,
           infer::Mode::kInt8);
  // Same plan, same input -> bit-identical int8 answers (determinism; the
  // approximation-quality bands live in the property suite).
  EXPECT_TRUE(bit_equal(m_a.data(), m_b.data(), m_a.size()));
  EXPECT_TRUE(bit_equal(hw_a.data(), hw_b.data(), hw_a.size()));
  for (float v : m_a) EXPECT_TRUE(std::isfinite(v));
}

TEST(infer_stack_rows, SingleRowBatchBitIdenticalToForwardDeterministic) {
  // The documented degenerate case: a drained micro-batcher regularly
  // produces one-row batches; they must answer exactly like a single query.
  const auto space = small_space();
  arch::ArchSpace arch_space{arch::cifar10_backbone()};
  const int width = arch_space.encoding_width();
  auto ev = make_evaluator(space, width);

  const auto rows = random_rows(1, width, 0x5eed1);
  const auto batched = ev.forward_batch(rows);
  tensor::Variable single(tensor::Tensor::from({1, width}, rows[0]));
  const auto direct = ev.forward_deterministic(single);

  EXPECT_TRUE(bit_equal(batched.metrics.value().data(),
                        direct.metrics.value().data(),
                        direct.metrics.value().numel()));
  EXPECT_TRUE(bit_equal(batched.hw_encoding.value().data(),
                        direct.hw_encoding.value().data(),
                        direct.hw_encoding.value().numel()));
}

TEST(infer_stack_rows, ValidatesAndLaysOutRowMajor) {
  EXPECT_THROW((void)evalnet::Evaluator::stack_rows({}),
               std::invalid_argument);
  EXPECT_THROW(
      (void)evalnet::Evaluator::stack_rows({{1.0F, 2.0F}, {3.0F}}),
      std::invalid_argument);

  const tensor::Tensor t =
      evalnet::Evaluator::stack_rows({{1.0F, 2.0F}, {3.0F, 4.0F}});
  ASSERT_EQ(t.rows(), 2);
  ASSERT_EQ(t.cols(), 2);
  EXPECT_EQ(t.at(0, 0), 1.0F);
  EXPECT_EQ(t.at(0, 1), 2.0F);
  EXPECT_EQ(t.at(1, 0), 3.0F);
  EXPECT_EQ(t.at(1, 1), 4.0F);
}

TEST(infer_backend, FusedTierBitIdenticalToAutogradTier) {
  const auto space = small_space();
  arch::ArchSpace arch_space{arch::cifar10_backbone()};
  const int width = arch_space.encoding_width();
  auto ev_a = make_evaluator(space, width);
  auto ev_b = make_evaluator(space, width);  // same seed -> same checkpoint

  serve::SurrogateBackend autograd(ev_a, infer::Mode::kAutograd);
  serve::SurrogateBackend fused(ev_b, infer::Mode::kFused);
  EXPECT_EQ(autograd.infer_mode(), infer::Mode::kAutograd);
  EXPECT_EQ(fused.infer_mode(), infer::Mode::kFused);
  EXPECT_EQ(autograd.plan(), nullptr);
  ASSERT_NE(fused.plan(), nullptr);

  const auto rows = random_rows(6, width, 0xb17);
  std::vector<serve::Request> requests;
  for (const auto& r : rows) requests.push_back(serve::Request{r});

  const auto resp_a = autograd.query_batch(requests);
  const auto resp_f = fused.query_batch(requests);
  ASSERT_EQ(resp_a.size(), resp_f.size());
  for (std::size_t i = 0; i < resp_a.size(); ++i) {
    EXPECT_EQ(resp_a[i].metrics.latency_ms, resp_f[i].metrics.latency_ms);
    EXPECT_EQ(resp_a[i].metrics.energy_mj, resp_f[i].metrics.energy_mj);
    EXPECT_EQ(resp_a[i].metrics.area_mm2, resp_f[i].metrics.area_mm2);
    EXPECT_EQ(resp_a[i].config, resp_f[i].config);
  }
}

TEST(infer_backend, Int8TierIsAPureFunctionOfTheRequest) {
  // Two independently constructed int8 backends over the same checkpoint
  // must answer identically (the serve cache/batcher determinism contract):
  // calibration is fixed-seed, not data-dependent.
  const auto space = small_space();
  arch::ArchSpace arch_space{arch::cifar10_backbone()};
  const int width = arch_space.encoding_width();
  auto ev_a = make_evaluator(space, width);
  auto ev_b = make_evaluator(space, width);

  serve::SurrogateBackend int8_a(ev_a, infer::Mode::kInt8);
  serve::SurrogateBackend int8_b(ev_b, infer::Mode::kInt8);
  ASSERT_NE(int8_a.plan(), nullptr);
  EXPECT_TRUE(int8_a.plan()->int8_ready());

  const auto rows = random_rows(5, width, 0x88);
  std::vector<serve::Request> requests;
  for (const auto& r : rows) requests.push_back(serve::Request{r});
  const auto resp_a = int8_a.query_batch(requests);
  const auto resp_b = int8_b.query_batch(requests);
  ASSERT_EQ(resp_a.size(), resp_b.size());
  for (std::size_t i = 0; i < resp_a.size(); ++i) {
    EXPECT_EQ(resp_a[i].metrics.latency_ms, resp_b[i].metrics.latency_ms);
    EXPECT_EQ(resp_a[i].metrics.energy_mj, resp_b[i].metrics.energy_mj);
    EXPECT_EQ(resp_a[i].metrics.area_mm2, resp_b[i].metrics.area_mm2);
    EXPECT_EQ(resp_a[i].config, resp_b[i].config);
  }
}

TEST(infer_backend, EnvKnobDrivesDefaultConstruction) {
  const auto space = small_space();
  auto ev = make_evaluator(space, 8);
  ::setenv("DANCE_INFER", "fused", 1);
  serve::SurrogateBackend backend(ev);
  EXPECT_EQ(backend.infer_mode(), infer::Mode::kFused);
  ::unsetenv("DANCE_INFER");
}

}  // namespace
