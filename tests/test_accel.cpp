#include <gtest/gtest.h>

#include "accel/cost_function.h"
#include "accel/cost_model.h"

namespace {

using namespace dance::accel;

ConvShape standard_conv() {
  // 32x32x64 -> 64 channels, 3x3.
  return ConvShape{1, 64, 64, 32, 32, 3, 3, 1, 1};
}

ConvShape depthwise_conv() {
  return ConvShape{1, 96, 96, 16, 16, 3, 3, 1, 96};
}

TEST(ConvShape, MacsAndVolumes) {
  const ConvShape s = standard_conv();
  EXPECT_EQ(s.macs(), 1LL * 64 * 64 * 32 * 32 * 9);
  EXPECT_EQ(s.weight_volume(), 64LL * 64 * 9);
  EXPECT_EQ(s.input_volume(), 64LL * 32 * 32);
  EXPECT_EQ(s.output_volume(), 64LL * 32 * 32);
}

TEST(ConvShape, DepthwiseGroupsReduceMacs) {
  const ConvShape s = depthwise_conv();
  EXPECT_EQ(s.c_per_group(), 1);
  EXPECT_EQ(s.macs(), 96LL * 16 * 16 * 9);
}

TEST(ConvShape, StridedOutputDims) {
  ConvShape s = standard_conv();
  s.stride = 2;
  EXPECT_EQ(s.out_h(), 16);
  s.h = 33;
  EXPECT_EQ(s.out_h(), 17);  // ceil
}

TEST(ConvShape, Validity) {
  EXPECT_TRUE(standard_conv().valid());
  ConvShape bad = standard_conv();
  bad.c = 0;
  EXPECT_FALSE(bad.valid());
  bad = standard_conv();
  bad.groups = 3;  // 64 % 3 != 0
  EXPECT_FALSE(bad.valid());
}

TEST(CostModel, RejectsInvalidInputs) {
  CostModel model;
  ConvShape bad = standard_conv();
  bad.k = -1;
  AcceleratorConfig cfg;
  EXPECT_THROW(model.layer_cost(cfg, bad), std::invalid_argument);
  cfg.pe_x = 0;
  EXPECT_THROW(model.layer_cost(cfg, standard_conv()), std::invalid_argument);
}

TEST(CostModel, PositiveCosts) {
  CostModel model;
  const AcceleratorConfig cfg{16, 16, 32, Dataflow::kRowStationary};
  const LayerCost lc = model.layer_cost(cfg, standard_conv());
  EXPECT_GT(lc.cycles, 0.0);
  EXPECT_GT(lc.energy_pj, 0.0);
  EXPECT_GT(model.area_mm2(cfg), 0.0);
}

TEST(CostModel, AreaMonotoneInPesAndRf) {
  CostModel model;
  AcceleratorConfig small{8, 8, 4, Dataflow::kRowStationary};
  AcceleratorConfig more_pes{16, 16, 4, Dataflow::kRowStationary};
  AcceleratorConfig more_rf{8, 8, 64, Dataflow::kRowStationary};
  EXPECT_LT(model.area_mm2(small), model.area_mm2(more_pes));
  EXPECT_LT(model.area_mm2(small), model.area_mm2(more_rf));
}

TEST(CostModel, AreaIndependentOfDataflow) {
  CostModel model;
  AcceleratorConfig a{12, 20, 24, Dataflow::kWeightStationary};
  AcceleratorConfig b = a;
  b.dataflow = Dataflow::kOutputStationary;
  EXPECT_DOUBLE_EQ(model.area_mm2(a), model.area_mm2(b));
}

TEST(CostModel, MacEnergyIsLowerBound) {
  CostModel model;
  const AcceleratorConfig cfg{16, 16, 32, Dataflow::kOutputStationary};
  const ConvShape s = standard_conv();
  const LayerCost lc = model.layer_cost(cfg, s);
  EXPECT_GT(lc.energy_pj, static_cast<double>(s.macs()) *
                              model.tech().mac_energy_pj);
}

TEST(CostModel, DepthwiseUnderutilizesWeightStationary) {
  // The separable-convolution-on-TPU effect: WS strands the input-channel
  // dimension of the array for depthwise convs, so its latency per MAC is
  // far worse than RS/OS on the same array.
  CostModel model;
  const AcceleratorConfig ws{16, 16, 32, Dataflow::kWeightStationary};
  const AcceleratorConfig os{16, 16, 32, Dataflow::kOutputStationary};
  const ConvShape dw = depthwise_conv();
  const double ws_cyc = model.layer_cost(ws, dw).cycles;
  const double os_cyc = model.layer_cost(os, dw).cycles;
  EXPECT_GT(ws_cyc, 2.0 * os_cyc);
}

TEST(CostModel, WeightStationaryLikesManyChannels) {
  // For a channel-heavy 1x1 conv, WS should be at least competitive with OS
  // on a wide-X array.
  CostModel model;
  const AcceleratorConfig cfg{24, 24, 32, Dataflow::kWeightStationary};
  const AcceleratorConfig cfg_os{24, 24, 32, Dataflow::kOutputStationary};
  const ConvShape pw{1, 256, 256, 8, 8, 1, 1, 1, 1};
  EXPECT_LT(model.layer_cost(cfg, pw).cycles,
            model.layer_cost(cfg_os, pw).cycles);
}

TEST(CostModel, NetworkCostSumsLayers) {
  CostModel model;
  const AcceleratorConfig cfg{12, 12, 16, Dataflow::kRowStationary};
  const std::vector<ConvShape> one = {standard_conv()};
  const std::vector<ConvShape> two = {standard_conv(), standard_conv()};
  const CostMetrics m1 = model.network_cost(cfg, one);
  const CostMetrics m2 = model.network_cost(cfg, two);
  EXPECT_NEAR(m2.latency_ms, 2.0 * m1.latency_ms, 1e-9);
  EXPECT_NEAR(m2.energy_mj, 2.0 * m1.energy_mj, 1e-9);
  EXPECT_DOUBLE_EQ(m2.area_mm2, m1.area_mm2);  // area is config-only
}

TEST(CostMetrics, EdapIsProduct) {
  CostMetrics m{2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(m.edap(), 24.0);
}

TEST(CostFunction, LinearUsesPaperWeights) {
  const HwCostFn fn = linear_cost();
  const CostMetrics m{1.0, 1.0, 1.0};
  EXPECT_NEAR(fn(m), 4.1 + 4.8 + 1.0, 1e-12);
}

TEST(CostFunction, EdapMatchesMetric) {
  const HwCostFn fn = edap_cost();
  const CostMetrics m{1.5, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(fn(m), m.edap());
}

/// Property sweep: latency is weakly monotone non-increasing as the PE array
/// grows, for every dataflow (quantization can plateau it, never raise it).
class LatencyMonotone : public ::testing::TestWithParam<Dataflow> {};

TEST_P(LatencyMonotone, MorePesNeverSlower) {
  CostModel model;
  const Dataflow df = GetParam();
  const ConvShape s = standard_conv();
  for (int pe = 8; pe < 24; ++pe) {
    const AcceleratorConfig smaller{pe, 16, 32, df};
    const AcceleratorConfig bigger{pe + 1, 16, 32, df};
    EXPECT_LE(model.layer_cost(bigger, s).cycles,
              model.layer_cost(smaller, s).cycles + 1e-9)
        << "pe_x " << pe << " df " << to_string(df);
    const AcceleratorConfig smaller_y{16, pe, 32, df};
    const AcceleratorConfig bigger_y{16, pe + 1, 32, df};
    EXPECT_LE(model.layer_cost(bigger_y, s).cycles,
              model.layer_cost(smaller_y, s).cycles + 1e-9)
        << "pe_y " << pe << " df " << to_string(df);
  }
}

TEST_P(LatencyMonotone, BiggerRfNeverSlower) {
  CostModel model;
  const Dataflow df = GetParam();
  const ConvShape s = standard_conv();
  for (int rf = 4; rf < 64; rf += 4) {
    const AcceleratorConfig smaller{16, 16, rf, df};
    const AcceleratorConfig bigger{16, 16, rf + 4, df};
    EXPECT_LE(model.layer_cost(bigger, s).cycles,
              model.layer_cost(smaller, s).cycles + 1e-9)
        << "rf " << rf << " df " << to_string(df);
  }
}

INSTANTIATE_TEST_SUITE_P(AllDataflows, LatencyMonotone,
                         ::testing::Values(Dataflow::kWeightStationary,
                                           Dataflow::kOutputStationary,
                                           Dataflow::kRowStationary));

}  // namespace
