#include <gtest/gtest.h>

#include <limits>

#include "accel/cost_function.h"
#include "hwgen/coordinate_descent.h"
#include "hwgen/exhaustive.h"
#include "hwgen/pareto.h"
#include "hwgen/search_space.h"

namespace {

using namespace dance;
using namespace dance::hwgen;

std::vector<accel::ConvShape> tiny_network() {
  return {
      accel::ConvShape{1, 32, 16, 16, 16, 3, 3, 1, 1},
      accel::ConvShape{1, 64, 64, 8, 8, 3, 3, 1, 64},  // depthwise
      accel::ConvShape{1, 64, 32, 8, 8, 1, 1, 1, 1},
  };
}

TEST(HwSearchSpace, PaperDefaults) {
  HwSearchSpace space;
  EXPECT_EQ(space.num_pe_choices(), 17);   // 8..24
  EXPECT_EQ(space.num_rf_choices(), 16);   // 4,8,...,64
  EXPECT_EQ(space.num_dataflow_choices(), 3);
  EXPECT_EQ(space.size(), 17U * 17U * 16U * 3U);
  EXPECT_EQ(space.encoding_width(), 17 + 17 + 16 + 3);
}

TEST(HwSearchSpace, IndexRoundTripAll) {
  HwSearchSpace space;
  for (std::size_t i = 0; i < space.size(); i += 7) {
    const accel::AcceleratorConfig c = space.config_at(i);
    EXPECT_EQ(space.index_of(c), i);
  }
}

TEST(HwSearchSpace, ValueIndexRoundTrip) {
  HwSearchSpace space;
  for (int pe = 8; pe <= 24; ++pe) EXPECT_EQ(space.pe_value(space.pe_index(pe)), pe);
  for (int rf = 4; rf <= 64; rf += 4) EXPECT_EQ(space.rf_value(space.rf_index(rf)), rf);
  for (auto df : accel::kAllDataflows) {
    EXPECT_EQ(space.dataflow_value(space.dataflow_index(df)), df);
  }
}

TEST(HwSearchSpace, OutOfRangeThrows) {
  HwSearchSpace space;
  EXPECT_THROW(space.pe_index(7), std::out_of_range);
  EXPECT_THROW(space.pe_index(25), std::out_of_range);
  EXPECT_THROW(space.rf_index(5), std::out_of_range);  // not a multiple of step
  EXPECT_THROW(space.config_at(space.size()), std::out_of_range);
}

TEST(HwSearchSpace, EncodeIsFourHot) {
  HwSearchSpace space;
  const accel::AcceleratorConfig c{10, 22, 36, accel::Dataflow::kOutputStationary};
  const auto enc = space.encode(c);
  ASSERT_EQ(static_cast<int>(enc.size()), space.encoding_width());
  float sum = 0.0F;
  for (float v : enc) {
    EXPECT_TRUE(v == 0.0F || v == 1.0F);
    sum += v;
  }
  EXPECT_FLOAT_EQ(sum, 4.0F);  // one per head
  EXPECT_FLOAT_EQ(enc[static_cast<std::size_t>(space.pe_index(10))], 1.0F);
}

TEST(HwSearchSpace, CustomRanges) {
  HwSearchSpace space({.pe_min = 2, .pe_max = 4, .rf_min = 8, .rf_max = 16,
                       .rf_step = 8});
  EXPECT_EQ(space.num_pe_choices(), 3);
  EXPECT_EQ(space.num_rf_choices(), 2);
  EXPECT_EQ(space.size(), 3U * 3U * 2U * 3U);
  EXPECT_THROW(HwSearchSpace({.pe_min = 5, .pe_max = 4}), std::invalid_argument);
}

TEST(ExhaustiveSearch, FindsGlobalMinimum) {
  // Small space so a brute-force cross-check stays fast.
  HwSearchSpace space({.pe_min = 8, .pe_max = 12, .rf_min = 8, .rf_max = 32,
                       .rf_step = 8});
  accel::CostModel model;
  ExhaustiveSearch search(space, model);
  const auto layers = tiny_network();
  const auto cost_fn = accel::edap_cost();
  const HwSearchResult best = search.run(layers, cost_fn);

  double brute = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < space.size(); ++i) {
    brute = std::min(brute, cost_fn(model.network_cost(space.config_at(i), layers)));
  }
  EXPECT_DOUBLE_EQ(best.cost, brute);
  EXPECT_DOUBLE_EQ(cost_fn(best.metrics), best.cost);
}

TEST(ExhaustiveSearch, PrecomputedMatchesDirect) {
  HwSearchSpace space({.pe_min = 8, .pe_max = 10, .rf_min = 8, .rf_max = 16,
                       .rf_step = 8});
  accel::CostModel model;
  ExhaustiveSearch search(space, model);
  const auto layers = tiny_network();
  const auto all = search.evaluate_all(layers);
  const auto cost_fn = accel::linear_cost();
  const HwSearchResult direct = search.run(layers, cost_fn);
  const HwSearchResult pre = search.run_precomputed(all, cost_fn);
  EXPECT_EQ(direct.config, pre.config);
  EXPECT_DOUBLE_EQ(direct.cost, pre.cost);
}

TEST(ExhaustiveSearch, EmptyNetworkThrows) {
  HwSearchSpace space;
  accel::CostModel model;
  ExhaustiveSearch search(space, model);
  EXPECT_THROW(search.run({}, accel::edap_cost()), std::invalid_argument);
}

TEST(CoordinateDescent, NeverBeatsExhaustiveAndIsClose) {
  HwSearchSpace space;
  accel::CostModel model;
  ExhaustiveSearch exact(space, model);
  CoordinateDescent cd(space, model, /*restarts=*/4);
  const auto layers = tiny_network();
  const auto cost_fn = accel::edap_cost();
  const double exact_cost = exact.run(layers, cost_fn).cost;
  const HwSearchResult approx = cd.run(layers, cost_fn);
  EXPECT_GE(approx.cost, exact_cost - 1e-12);
  EXPECT_LE(approx.cost, 1.5 * exact_cost);  // should land near the optimum
  // And it should evaluate far fewer points than the exhaustive search.
  EXPECT_LT(cd.evaluations(), static_cast<long>(space.size()) / 4);
}

TEST(Pareto, DominatesSemantics) {
  accel::CostMetrics a{1.0, 1.0, 1.0};
  accel::CostMetrics b{2.0, 1.0, 1.0};
  EXPECT_TRUE(dominates(a, b));
  EXPECT_FALSE(dominates(b, a));
  EXPECT_FALSE(dominates(a, a));  // equal does not dominate
}

TEST(Pareto, FrontIsMutuallyNonDominated) {
  HwSearchSpace space({.pe_min = 8, .pe_max = 12, .rf_min = 8, .rf_max = 32,
                       .rf_step = 8});
  accel::CostModel model;
  ExhaustiveSearch search(space, model);
  const auto metrics = search.evaluate_all(tiny_network());
  const auto front = pareto_front(space, metrics);
  ASSERT_FALSE(front.empty());
  for (const auto& p : front) {
    for (const auto& q : front) {
      EXPECT_FALSE(dominates(p.metrics, q.metrics) &&
                   !(p.config == q.config));
    }
  }
  // The EDAP optimum must sit on the front.
  const HwSearchResult best = search.run(tiny_network(), accel::edap_cost());
  bool found = false;
  for (const auto& p : front) {
    if (p.config == best.config) found = true;
  }
  EXPECT_TRUE(found);
}

}  // namespace
