// Property-based tests for the fault-injection layer and the resilience
// decorator. Lowercase "fault" in the suite names keeps `ctest -R fault`
// selecting these (as "property.fault_*") alongside the unit suites.
//
// The invariants:
//   * resilience-never-lies: under any error rate, every query either
//     returns the primary's bit-exact answer (degraded=false) or is
//     honestly flagged degraded — and never throws while a fallback exists.
//   * replay determinism: an injector is a pure function of (spec, seed,
//     visit sequence).
//   * breaker model: with an always-failing primary and an effectively
//     infinite cooldown, the primary sees exactly `threshold` calls no
//     matter how much traffic arrives.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <span>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "fault/fault.h"
#include "fault/faulty_backend.h"
#include "serve/backend.h"
#include "serve/resilient.h"
#include "testing/property.h"
#include "util/rng.h"

namespace testing_ = dance::testing;

namespace {

using namespace dance;
using serve::Request;
using serve::Response;

/// Deterministic echo backend: latency = offset + sum(encoding).
class EchoBackend : public serve::CostQueryBackend {
 public:
  explicit EchoBackend(double offset = 0.0) : offset_(offset) {}
  std::vector<Response> query_batch(
      std::span<const Request> requests) override {
    calls_.fetch_add(1, std::memory_order_relaxed);
    std::vector<Response> out;
    out.reserve(requests.size());
    for (const Request& r : requests) {
      double sum = offset_;
      for (float v : r.encoding) sum += v;
      Response resp;
      resp.metrics.latency_ms = sum;
      out.push_back(resp);
    }
    return out;
  }
  const char* name() const override { return "echo"; }
  [[nodiscard]] int calls() const {
    return calls_.load(std::memory_order_relaxed);
  }

 private:
  double offset_;
  std::atomic<int> calls_{0};
};

class AlwaysFailBackend : public serve::CostQueryBackend {
 public:
  std::vector<Response> query_batch(std::span<const Request>) override {
    calls_.fetch_add(1, std::memory_order_relaxed);
    throw std::runtime_error("always down");
  }
  const char* name() const override { return "down"; }
  [[nodiscard]] int calls() const {
    return calls_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<int> calls_{0};
};

struct FaultScenario {
  double error_rate = 0.0;
  std::uint64_t seed = 0;
  int queries = 0;
};

testing_::Generator<FaultScenario> scenario_generator() {
  testing_::Generator<FaultScenario> gen;
  gen.sample = [](util::Rng& rng) {
    FaultScenario s;
    s.error_rate = static_cast<double>(rng.uniform(0.0F, 0.9F));
    s.seed = static_cast<std::uint64_t>(rng.randint(0, 1 << 20));
    s.queries = rng.randint(1, 40);
    return s;
  };
  gen.show = [](const FaultScenario& s) {
    std::ostringstream os;
    os << "{error_rate=" << s.error_rate << ", seed=" << s.seed
       << ", queries=" << s.queries << "}";
    return os.str();
  };
  return gen;
}

TEST(fault_properties, ResilientResponsesAreExactOrHonestlyDegraded) {
  const auto result = testing_::check<FaultScenario>(
      "resilience never lies", scenario_generator(),
      [](const FaultScenario& s, util::Rng& rng) -> std::string {
        std::ostringstream spec;
        spec << "backend:error=" << s.error_rate;
        auto injector = std::make_shared<fault::FaultInjector>(
            fault::FaultSpec::parse(spec.str()), s.seed);
        EchoBackend primary_inner;            // truth: latency = sum
        EchoBackend fallback(1000000.0);      // tier-2: clearly offset
        fault::FaultyBackend faulty(primary_inner, injector);
        serve::ResilientBackend::Options opts;
        opts.retries = 2;
        opts.backoff_us = 0;
        serve::ResilientBackend resilient(faulty, &fallback, opts);

        for (int q = 0; q < s.queries; ++q) {
          std::vector<float> enc = {rng.uniform(), rng.uniform(),
                                    rng.uniform()};
          const Request req{enc};
          // With a fallback tier configured, the decorator must never
          // throw (the check harness counts exceptions as failures).
          const auto responses = resilient.query_batch({&req, 1});
          if (responses.size() != 1) return "response count mismatch";
          const auto truth = primary_inner.query_batch({&req, 1});
          const double got = responses[0].metrics.latency_ms;
          if (responses[0].degraded) {
            // Honest degradation: the answer is the fallback's.
            if (got != truth[0].metrics.latency_ms + 1000000.0) {
              return "degraded response is not the fallback's answer";
            }
          } else if (got != truth[0].metrics.latency_ms) {
            return "non-degraded response diverges from the primary";
          }
        }
        return "";
      });
  EXPECT_TRUE(result.ok) << result.report;
}

TEST(fault_properties, InjectorIsAPureFunctionOfSpecSeedAndVisits) {
  const auto result = testing_::check<FaultScenario>(
      "fault replay determinism", scenario_generator(),
      [](const FaultScenario& s, util::Rng&) -> std::string {
        std::ostringstream spec_text;
        spec_text << "backend:error=" << s.error_rate
                  << ";pool:error=" << s.error_rate / 2.0;
        const auto spec = fault::FaultSpec::parse(spec_text.str());
        fault::FaultInjector a(spec, s.seed);
        fault::FaultInjector b(spec, s.seed);
        const int visits = 50 + s.queries;
        std::vector<bool> pa;
        std::vector<bool> pb;
        for (int i = 0; i < visits; ++i) {
          const std::string site =
              (i % 3 == 0) ? fault::kPoolSite : fault::kBackendSite;
          for (auto* pattern : {&pa, &pb}) {
            fault::FaultInjector& inj = (pattern == &pa) ? a : b;
            bool threw = false;
            try {
              inj.at(site);
            } catch (const fault::InjectedFault&) {
              threw = true;
            }
            pattern->push_back(threw);
          }
        }
        if (pa != pb) return "identical seeds produced different faults";
        if (a.stats().errors != b.stats().errors) {
          return "identical seeds produced different error counts";
        }
        return "";
      });
  EXPECT_TRUE(result.ok) << result.report;
}

TEST(fault_properties, BreakerAdmitsExactlyThresholdCallsWhileOpen) {
  testing_::Generator<int> gen;
  gen.sample = [](util::Rng& rng) { return rng.randint(1, 6); };
  gen.shrink = [](const int& v) {
    std::vector<int> out;
    for (long c : testing_::shrink_toward(v, 1)) out.push_back(static_cast<int>(c));
    return out;
  };
  gen.show = [](const int& v) { return "threshold=" + std::to_string(v); };

  const auto result = testing_::check<int>(
      "breaker state machine", gen,
      [](const int& threshold, util::Rng& rng) -> std::string {
        AlwaysFailBackend primary;
        EchoBackend fallback;
        serve::ResilientBackend::Options opts;
        opts.retries = 0;
        opts.backoff_us = 0;
        opts.breaker_threshold = threshold;
        opts.breaker_cooldown_us = 3600L * 1000 * 1000;  // never half-opens
        serve::ResilientBackend resilient(primary, &fallback, opts);

        const int traffic = threshold + rng.randint(1, 20);
        const Request req{{1.0F}};
        for (int i = 0; i < traffic; ++i) {
          const auto responses = resilient.query_batch({&req, 1});
          if (responses.size() != 1 || !responses[0].degraded) {
            return "always-failing primary produced a non-degraded answer";
          }
        }
        if (primary.calls() != threshold) {
          return "primary saw " + std::to_string(primary.calls()) +
                 " calls, expected exactly " + std::to_string(threshold);
        }
        const auto stats = resilient.stats();
        if (stats.breaker_opens != 1) {
          return "breaker opened " + std::to_string(stats.breaker_opens) +
                 " times, expected once";
        }
        if (stats.breaker_closes != 0) return "breaker closed unexpectedly";
        return "";
      });
  EXPECT_TRUE(result.ok) << result.report;
}

}  // namespace
