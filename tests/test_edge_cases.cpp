// Assorted edge cases across the library surface.
#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "nas/trainer.h"
#include "nn/optim.h"
#include "tensor/ops.h"
#include "util/table.h"

namespace {

using namespace dance;
using tensor::Tensor;
using tensor::Variable;
namespace ops = tensor::ops;

TEST(EdgeCases, MsreSkipsZeroTargets) {
  Variable p(Tensor::from({1, 3}, {5.0F, 2.0F, 7.0F}), true);
  // Middle target is zero: excluded from the mean AND from gradients.
  Tensor t = Tensor::from({1, 3}, {4.0F, 0.0F, 7.0F});
  Variable loss = ops::msre(p, t);
  // Valid elements are 0 and 2; element 2 is exact, so
  // loss = ((1 - 5/4)^2 + 0) / 2 = 0.03125.
  EXPECT_NEAR(loss.value()[0], 0.03125F, 1e-5F);
  loss.backward();
  EXPECT_FLOAT_EQ(p.grad()[1], 0.0F);
  EXPECT_NE(p.grad()[0], 0.0F);
}

TEST(EdgeCases, MsreAllZeroTargetsIsZeroLoss) {
  Variable p(Tensor::from({1, 2}, {5.0F, 2.0F}), true);
  Variable loss = ops::msre(p, Tensor::zeros({1, 2}));
  EXPECT_FLOAT_EQ(loss.value()[0], 0.0F);
}

TEST(EdgeCases, AccuracyPctHandlesRaggedLastBatch) {
  data::SyntheticTaskConfig cfg;
  cfg.input_dim = 4;
  cfg.num_classes = 3;
  cfg.train_samples = 10;
  cfg.val_samples = 7;  // not divisible by batch size 4
  const auto task = data::make_synthetic_task(cfg);
  const auto fwd = [&](const Variable& x) {
    Tensor logits({x.value().rows(), 3});
    for (int r = 0; r < x.value().rows(); ++r) logits.at(r, 1) = 1.0F;
    return Variable(std::move(logits));
  };
  const double acc = nas::accuracy_pct(fwd, task.val, 4);
  // Predicting class 1 always: accuracy equals the fraction of 1-labels.
  int ones = 0;
  for (int y : task.val.y) ones += y == 1 ? 1 : 0;
  EXPECT_NEAR(acc, 100.0 * ones / 7.0, 1e-9);
}

TEST(EdgeCases, SgdNesterovSingleStepFormula) {
  // v1 = g ; update = g + mu*v1 for Nesterov on the first step.
  Variable w(Tensor::from({1}, {1.0F}), true);
  nn::Sgd opt({w}, {.lr = 0.1F, .momentum = 0.5F, .nesterov = true});
  w.node()->ensure_grad();
  w.node()->grad[0] = 2.0F;
  opt.step();
  // update = 2 + 0.5*2 = 3 -> w = 1 - 0.1*3
  EXPECT_NEAR(w.value()[0], 0.7F, 1e-6F);
}

TEST(EdgeCases, AdamWeightDecayPullsTowardZero) {
  Variable w(Tensor::from({1}, {4.0F}), true);
  nn::Adam opt({w}, {.lr = 0.01F, .weight_decay = 0.1F});
  // Zero loss-gradient: only decay drives the update.
  for (int i = 0; i < 50; ++i) {
    w.node()->ensure_grad();
    w.node()->grad.fill(0.0F);
    opt.step();
  }
  EXPECT_LT(w.value()[0], 4.0F);
  EXPECT_GT(w.value()[0], 0.0F);
}

TEST(EdgeCases, TableFmtNegativeAndZero) {
  EXPECT_EQ(util::Table::fmt(-1.5, 1), "-1.5");
  EXPECT_EQ(util::Table::fmt(0.0, 2), "0.00");
}

TEST(EdgeCases, SliceColsFullRangeIsIdentity) {
  Variable a(Tensor::from({2, 2}, {1.0F, 2.0F, 3.0F, 4.0F}), true);
  const Variable s = ops::slice_cols(a, 0, 2);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(s.value()[i], a.value()[i]);
  EXPECT_THROW(ops::slice_cols(a, 1, 1), std::invalid_argument);
  EXPECT_THROW(ops::slice_cols(a, 0, 3), std::invalid_argument);
}

TEST(EdgeCases, ConcatSingleInputIsIdentity) {
  Variable a(Tensor::from({1, 3}, {1.0F, 2.0F, 3.0F}), true);
  const Variable c = ops::concat_cols({a});
  for (std::size_t i = 0; i < 3; ++i) EXPECT_FLOAT_EQ(c.value()[i], a.value()[i]);
  EXPECT_THROW(ops::concat_cols({}), std::invalid_argument);
}

TEST(EdgeCases, GumbelSoftmaxRejectsBadTau) {
  util::Rng rng(1);
  Variable a(Tensor::zeros({1, 3}), true);
  EXPECT_THROW(ops::gumbel_softmax(a, 0.0F, false, rng), std::invalid_argument);
  EXPECT_THROW(ops::gumbel_softmax(a, -1.0F, false, rng), std::invalid_argument);
}

TEST(EdgeCases, MatmulShapeMismatchThrows) {
  Variable a(Tensor::zeros({2, 3}));
  Variable b(Tensor::zeros({4, 2}));
  EXPECT_THROW(ops::matmul(a, b), std::invalid_argument);
}

TEST(EdgeCases, LeafGradientsAccumulateAcrossGraphs) {
  // Two backward passes over fresh graphs without zero_grad accumulate into
  // the shared leaf — the semantics optimizers rely on for grad averaging.
  Variable a(Tensor::from({1, 1}, {3.0F}), true);
  ops::sum_all(ops::scale(a, 2.0F)).backward();
  EXPECT_FLOAT_EQ(a.grad()[0], 2.0F);
  ops::sum_all(ops::scale(a, 2.0F)).backward();
  EXPECT_FLOAT_EQ(a.grad()[0], 4.0F);
  a.zero_grad();
  EXPECT_FLOAT_EQ(a.grad()[0], 0.0F);
}

}  // namespace
