#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "evalnet/cost_net.h"
#include "hwgen/search_space.h"
#include "nn/mlp.h"
#include "nn/serialize.h"

namespace {

using namespace dance;
using tensor::Tensor;
using tensor::Variable;

nn::ResidualMlpConfig small_cfg() {
  nn::ResidualMlpConfig cfg;
  cfg.in_dim = 4;
  cfg.hidden_dim = 8;
  cfg.num_layers = 3;
  cfg.out_dim = 2;
  cfg.batch_norm = true;
  return cfg;
}

TEST(Serialize, RoundTripRestoresValues) {
  const std::string path = "/tmp/dance_ckpt_roundtrip.bin";
  util::Rng rng(1);
  nn::ResidualMlp a(small_cfg(), rng);
  nn::ResidualMlp b(small_cfg(), rng);  // different init

  auto pa = a.parameters();
  auto pb = b.parameters();
  nn::save_parameters(path, pa);
  nn::load_parameters(path, pb);

  for (std::size_t k = 0; k < pa.size(); ++k) {
    ASSERT_EQ(pa[k].value().shape(), pb[k].value().shape());
    for (std::size_t i = 0; i < pa[k].value().numel(); ++i) {
      EXPECT_FLOAT_EQ(pa[k].value()[i], pb[k].value()[i]);
    }
  }
  // Loaded model computes the same function.
  a.set_training(false);
  b.set_training(false);
  util::Rng xr(2);
  Variable x(Tensor::randn({3, 4}, xr));
  const auto ya = a.forward(x);
  const auto yb = b.forward(x);
  for (std::size_t i = 0; i < ya.value().numel(); ++i) {
    EXPECT_FLOAT_EQ(ya.value()[i], yb.value()[i]);
  }
  std::filesystem::remove(path);
}

TEST(Serialize, CompatibilityCheck) {
  const std::string path = "/tmp/dance_ckpt_compat.bin";
  util::Rng rng(3);
  nn::ResidualMlp a(small_cfg(), rng);
  auto pa = a.parameters();
  EXPECT_FALSE(nn::checkpoint_compatible(path, pa));  // does not exist yet
  nn::save_parameters(path, pa);
  EXPECT_TRUE(nn::checkpoint_compatible(path, pa));

  // A differently-shaped model must be rejected.
  nn::ResidualMlpConfig other = small_cfg();
  other.hidden_dim = 16;
  nn::ResidualMlp b(other, rng);
  auto pb = b.parameters();
  EXPECT_FALSE(nn::checkpoint_compatible(path, pb));
  EXPECT_THROW(nn::load_parameters(path, pb), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(Serialize, RejectsGarbageFile) {
  const std::string path = "/tmp/dance_ckpt_garbage.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "not a checkpoint";
  }
  util::Rng rng(4);
  nn::ResidualMlp a(small_cfg(), rng);
  auto pa = a.parameters();
  EXPECT_FALSE(nn::checkpoint_compatible(path, pa));
  EXPECT_THROW(nn::load_parameters(path, pa), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(Serialize, CostNetFullStateRoundTrip) {
  const std::string path = "/tmp/dance_ckpt_costnet.bin";
  dance::hwgen::HwSearchSpace space(
      {.pe_min = 8, .pe_max = 9, .rf_min = 8, .rf_max = 8, .rf_step = 4});
  util::Rng rng(6);
  dance::evalnet::CostNet::Options opts;
  opts.feature_forwarding = false;
  opts.hidden_dim = 16;
  dance::evalnet::CostNet a(10, space.encoding_width(), rng, opts);
  a.set_output_scale({2.0, 3.0, 4.0});
  // Push some batches through so running stats differ from init.
  a.set_training(true);
  for (int i = 0; i < 5; ++i) {
    (void)a.forward(Variable(Tensor::randn({8, 10}, rng)), Variable{});
  }
  a.save(path);

  dance::evalnet::CostNet b(10, space.encoding_width(), rng, opts);
  b.load(path);
  EXPECT_DOUBLE_EQ(b.output_scale()[1], 3.0);
  // Identical eval-mode outputs (running stats restored too).
  a.set_training(false);
  b.set_training(false);
  Variable x(Tensor::randn({4, 10}, rng));
  const auto ya = a.forward(x, Variable{});
  const auto yb = b.forward(x, Variable{});
  for (std::size_t i = 0; i < ya.value().numel(); ++i) {
    EXPECT_FLOAT_EQ(ya.value()[i], yb.value()[i]);
  }
  std::filesystem::remove(path);
}

TEST(Serialize, MissingFileThrows) {
  util::Rng rng(5);
  nn::ResidualMlp a(small_cfg(), rng);
  auto pa = a.parameters();
  EXPECT_THROW(nn::load_parameters("/tmp/definitely_missing_ckpt.bin", pa),
               std::runtime_error);
}

}  // namespace
