// Property suite 4: checkpoint round-trip properties for nn::serialize and
// the evalnet checkpoint paths. Random tensor lists (including ±0, ±inf,
// NaN and denormal payloads) must survive save/load byte-exactly; random
// evaluator-network configurations must reload into functionally identical
// models; and *no* truncation of a valid checkpoint may crash the loader —
// it must throw std::runtime_error.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "evalnet/cost_net.h"
#include "evalnet/hwgen_net.h"
#include "hwgen/search_space.h"
#include "nn/mlp.h"
#include "nn/serialize.h"
#include "testing/generators.h"
#include "testing/property.h"

namespace testing_ = dance::testing;

namespace {

using namespace dance;
using tensor::Tensor;
using tensor::Variable;

std::string temp_path(const char* tag) {
  return (std::filesystem::temp_directory_path() /
          (std::string("dance_pbt_") + tag + "_" +
           std::to_string(::getpid()) + ".bin"))
      .string();
}

bool bytes_equal(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape() &&
         (a.numel() == 0 ||
          std::memcmp(a.data(), b.data(), a.numel() * sizeof(float)) == 0);
}

TEST(SerializeRoundTrip, TensorListsSurviveByteExactly) {
  const std::string path = temp_path("tensors");
  const auto result = testing_::check<std::vector<Tensor>>(
      "tensor list save/load round trip", testing_::tensor_list_gen(),
      [&](const std::vector<Tensor>& ts, util::Rng&) -> std::string {
        std::vector<const Tensor*> src;
        for (const auto& t : ts) src.push_back(&t);
        nn::save_tensors(path, src);

        std::vector<Tensor> loaded;
        for (const auto& t : ts) loaded.emplace_back(t.shape());
        std::vector<Tensor*> dst;
        for (auto& t : loaded) dst.push_back(&t);
        nn::load_tensors(path, dst);

        for (std::size_t i = 0; i < ts.size(); ++i) {
          if (!bytes_equal(ts[i], loaded[i])) {
            return "tensor " + std::to_string(i) +
                   " changed bytes across the round trip";
          }
        }
        return "";
      });
  std::filesystem::remove(path);
  EXPECT_TRUE(result.ok) << result.report;
  EXPECT_GE(result.trials_run, 100);
}

TEST(SerializeRoundTrip, TruncatedCheckpointsThrowNeverCrash) {
  // Differential fuzz of the load path: cut a valid checkpoint at a random
  // byte offset. Every prefix must be rejected with std::runtime_error —
  // no crash, no hang, no silent partial load into a *fresh* model.
  const std::string path = temp_path("trunc");
  const auto result = testing_::check<std::vector<Tensor>>(
      "truncated checkpoint rejection", testing_::tensor_list_gen(4, 8),
      [&](const std::vector<Tensor>& ts, util::Rng& rng) -> std::string {
        std::vector<const Tensor*> src;
        for (const auto& t : ts) src.push_back(&t);
        nn::save_tensors(path, src);
        const auto full_size =
            static_cast<long>(std::filesystem::file_size(path));
        if (full_size <= 1) return "";
        const long cut = rng.randint(0, static_cast<int>(full_size) - 1);

        // Rewrite a truncated copy.
        std::vector<char> bytes(static_cast<std::size_t>(full_size));
        {
          std::ifstream in(path, std::ios::binary);
          in.read(bytes.data(), full_size);
        }
        {
          std::ofstream out(path, std::ios::binary | std::ios::trunc);
          out.write(bytes.data(), cut);
        }

        std::vector<Tensor> loaded;
        for (const auto& t : ts) loaded.emplace_back(t.shape());
        std::vector<Tensor*> dst;
        for (auto& t : loaded) dst.push_back(&t);
        try {
          nn::load_tensors(path, dst);
          // A cut before any payload byte can only succeed for zero tensors.
          if (!ts.empty()) {
            return "loader accepted a checkpoint truncated at byte " +
                   std::to_string(cut) + " of " + std::to_string(full_size);
          }
        } catch (const std::runtime_error&) {
          // expected
        }
        return "";
      });
  std::filesystem::remove(path);
  EXPECT_TRUE(result.ok) << result.report;
  EXPECT_GE(result.trials_run, 100);
}

/// Random small evaluator-network shapes.
struct NetCase {
  int arch_width = 4;
  int hidden = 8;
  int layers = 3;
  bool feature_forwarding = false;
  bool batch_norm = false;
  std::uint64_t seed = 1;

  [[nodiscard]] std::string to_string() const {
    return "NetCase(arch_width=" + std::to_string(arch_width) +
           " hidden=" + std::to_string(hidden) +
           " layers=" + std::to_string(layers) +
           " ff=" + std::to_string(feature_forwarding) +
           " bn=" + std::to_string(batch_norm) +
           " seed=" + std::to_string(seed) + ")";
  }
};

testing_::Generator<NetCase> net_case_gen() {
  testing_::Generator<NetCase> gen;
  gen.sample = [](util::Rng& rng) {
    NetCase c;
    c.arch_width = rng.randint(1, 8);
    c.hidden = rng.randint(2, 12);
    c.layers = rng.randint(2, 5);
    c.feature_forwarding = rng.uniform() < 0.5F;
    c.batch_norm = rng.uniform() < 0.5F;
    c.seed = static_cast<std::uint64_t>(rng.randint(1, 1 << 20));
    return c;
  };
  gen.shrink = [](const NetCase& c) {
    std::vector<NetCase> out;
    const auto shrink_field = [&](int NetCase::*field, int target) {
      for (long v : testing_::shrink_toward(c.*field, target)) {
        NetCase t = c;
        t.*field = static_cast<int>(v);
        out.push_back(t);
      }
    };
    for (bool NetCase::*flag :
         {&NetCase::feature_forwarding, &NetCase::batch_norm}) {
      if (c.*flag) {
        NetCase t = c;
        t.*flag = false;
        out.push_back(t);
      }
    }
    shrink_field(&NetCase::arch_width, 1);
    shrink_field(&NetCase::hidden, 2);
    shrink_field(&NetCase::layers, 2);
    return out;
  };
  gen.show = [](const NetCase& c) { return c.to_string(); };
  return gen;
}

TEST(SerializeRoundTrip, ResidualMlpParametersReloadFunctionally) {
  const std::string path = temp_path("mlp");
  const auto result = testing_::check<NetCase>(
      "ResidualMlp parameter round trip", net_case_gen(),
      [&](const NetCase& c, util::Rng& rng) -> std::string {
        nn::ResidualMlpConfig cfg;
        cfg.in_dim = c.arch_width;
        cfg.hidden_dim = c.hidden;
        cfg.num_layers = c.layers;
        cfg.out_dim = 2;
        cfg.batch_norm = c.batch_norm;
        util::Rng init_a(c.seed);
        util::Rng init_b(c.seed + 1);  // different init on purpose
        nn::ResidualMlp a(cfg, init_a);
        nn::ResidualMlp b(cfg, init_b);

        const auto pa = a.parameters();
        auto pb = b.parameters();
        nn::save_parameters(path, pa);
        if (!nn::checkpoint_compatible(path, pb)) {
          return "checkpoint_compatible rejected a same-config model";
        }
        nn::load_parameters(path, pb);

        a.set_training(false);
        b.set_training(false);
        const Tensor x = Tensor::randn({3, c.arch_width}, rng);
        const Variable ya = a.forward(Variable(x));
        const Variable yb = b.forward(Variable(x));
        if (!bytes_equal(ya.value(), yb.value())) {
          // Eval-mode batch-norm uses running buffers, which
          // save_parameters intentionally does not carry; both models are
          // at init statistics here, so outputs must still agree.
          return "reloaded model computes a different function";
        }
        return "";
      });
  std::filesystem::remove(path);
  EXPECT_TRUE(result.ok) << result.report;
  EXPECT_GE(result.trials_run, 100);
}

TEST(SerializeRoundTrip, EvalnetCheckpointsRestoreFullState) {
  // CostNet::save / load carry parameters, batch-norm running statistics and
  // the output scale; HwGenNet::save / load carry parameters. After a few
  // training-mode forwards (to move the running stats off init), a reloaded
  // model must be functionally identical in eval mode.
  const std::string path = temp_path("evalnet");
  hwgen::HwSearchSpace space(
      {.pe_min = 8, .pe_max = 9, .rf_min = 8, .rf_max = 8, .rf_step = 4});
  const auto result = testing_::check<NetCase>(
      "evalnet checkpoint full-state round trip", net_case_gen(),
      [&](const NetCase& c, util::Rng& rng) -> std::string {
        util::Rng init_a(c.seed);
        util::Rng init_b(c.seed + 99);
        if (c.batch_norm) {
          evalnet::CostNet::Options opts;
          opts.hidden_dim = c.hidden;
          opts.feature_forwarding = false;
          evalnet::CostNet a(c.arch_width, space.encoding_width(), init_a, opts);
          evalnet::CostNet b(c.arch_width, space.encoding_width(), init_b, opts);
          a.set_output_scale({1.5, 2.5, 3.5});
          a.set_training(true);
          for (int i = 0; i < 3; ++i) {
            (void)a.forward(Variable(Tensor::randn({4, c.arch_width}, rng)),
                            Variable{});
          }
          a.save(path);
          b.load(path);
          if (b.output_scale() != std::array<double, 3>{1.5, 2.5, 3.5}) {
            return "output scale not restored";
          }
          a.set_training(false);
          b.set_training(false);
          const Variable x(Tensor::randn({2, c.arch_width}, rng));
          if (!bytes_equal(a.forward(x, Variable{}).value(),
                           b.forward(x, Variable{}).value())) {
            return "CostNet reload is not functionally identical";
          }
        } else {
          evalnet::HwGenNet::Options opts;
          opts.hidden_dim = c.hidden;
          opts.num_layers = c.layers;
          evalnet::HwGenNet a(c.arch_width, space, init_a, opts);
          evalnet::HwGenNet b(c.arch_width, space, init_b, opts);
          a.save(path);
          b.load(path);
          a.set_training(false);
          b.set_training(false);
          const Variable x(Tensor::randn({2, c.arch_width}, rng));
          if (!bytes_equal(a.logits(x).value(), b.logits(x).value())) {
            return "HwGenNet reload is not functionally identical";
          }
        }
        return "";
      });
  std::filesystem::remove(path);
  EXPECT_TRUE(result.ok) << result.report;
  EXPECT_GE(result.trials_run, 100);
}

}  // namespace
