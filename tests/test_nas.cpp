#include <gtest/gtest.h>

#include "nas/fixed_net.h"
#include "nas/supernet.h"
#include "nas/trainer.h"

namespace {

using namespace dance;
using arch::CandidateOp;
using tensor::Tensor;
using tensor::Variable;

nas::SuperNetConfig tiny_config() {
  nas::SuperNetConfig cfg;
  cfg.input_dim = 8;
  cfg.num_classes = 4;
  cfg.width = 16;
  cfg.num_blocks = 3;
  return cfg;
}

TEST(SuperNet, OpHiddenDimOrdering) {
  const nas::SuperNetConfig cfg = tiny_config();
  // Capacity must rise with expansion and kernel size, mirroring MBConv MACs.
  EXPECT_LT(nas::SuperNet::op_hidden_dim(cfg, CandidateOp::kMbConv3x3E3),
            nas::SuperNet::op_hidden_dim(cfg, CandidateOp::kMbConv3x3E6));
  EXPECT_LT(nas::SuperNet::op_hidden_dim(cfg, CandidateOp::kMbConv3x3E6),
            nas::SuperNet::op_hidden_dim(cfg, CandidateOp::kMbConv7x7E6));
  EXPECT_EQ(nas::SuperNet::op_hidden_dim(cfg, CandidateOp::kZero), 0);
}

TEST(SuperNet, ForwardShape) {
  util::Rng rng(1);
  nas::SuperNet net(tiny_config(), rng);
  Variable x(Tensor::randn({5, 8}, rng));
  const auto gates = net.softmax_gates();
  const Variable y = net.forward(x, gates);
  EXPECT_EQ(y.value().rows(), 5);
  EXPECT_EQ(y.value().cols(), 4);
}

TEST(SuperNet, OneHotGatesMatchFixedForward) {
  util::Rng rng(2);
  nas::SuperNet net(tiny_config(), rng);
  const arch::Architecture a = {CandidateOp::kMbConv5x5E6, CandidateOp::kZero,
                                CandidateOp::kMbConv3x3E3};
  Variable x(Tensor::randn({4, 8}, rng));
  const Variable via_gates = net.forward(x, net.onehot_gates(a));
  const Variable via_fixed = net.forward_fixed(x, a);
  for (std::size_t i = 0; i < via_gates.value().numel(); ++i) {
    EXPECT_NEAR(via_gates.value()[i], via_fixed.value()[i], 1e-5F);
  }
}

TEST(SuperNet, DeriveFollowsAlphaArgmax) {
  util::Rng rng(3);
  nas::SuperNet net(tiny_config(), rng);
  auto alphas = net.arch_parameters();
  alphas[0].value().at(0, static_cast<int>(CandidateOp::kZero)) = 5.0F;
  alphas[1].value().at(0, static_cast<int>(CandidateOp::kMbConv7x7E6)) = 5.0F;
  const arch::Architecture a = net.derive();
  EXPECT_EQ(a[0], CandidateOp::kZero);
  EXPECT_EQ(a[1], CandidateOp::kMbConv7x7E6);
}

TEST(SuperNet, ArchProbsAreDistributions) {
  util::Rng rng(4);
  nas::SuperNet net(tiny_config(), rng);
  for (const auto& p : net.arch_probs()) {
    double sum = 0.0;
    for (double v : p) {
      EXPECT_GE(v, 0.0);
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(SuperNet, GatesEncodingWidth) {
  util::Rng rng(5);
  nas::SuperNet net(tiny_config(), rng);
  const auto gates = net.sample_gates(1.0F, true, rng);
  const Variable enc = nas::SuperNet::encode_gates(gates);
  EXPECT_EQ(enc.value().cols(), 3 * arch::kNumCandidateOps);
}

TEST(SuperNet, ArchGradientFlowsThroughGumbelGates) {
  util::Rng rng(6);
  nas::SuperNet net(tiny_config(), rng);
  Variable x(Tensor::randn({4, 8}, rng));
  auto gates = net.sample_gates(1.0F, /*hard=*/true, rng);
  const Variable loss =
      tensor::ops::cross_entropy(net.forward(x, gates), {0, 1, 2, 3});
  for (auto& a : net.arch_parameters()) a.zero_grad();
  loss.backward();
  bool any = false;
  for (auto& a : net.arch_parameters()) {
    for (std::size_t i = 0; i < a.grad().numel(); ++i) {
      if (a.grad()[i] != 0.0F) any = true;
    }
  }
  EXPECT_TRUE(any);
}

TEST(SuperNet, TwoPathSampleIsValid) {
  util::Rng rng(11);
  nas::SuperNet net(tiny_config(), rng);
  const auto samples = net.sample_two_paths(rng);
  ASSERT_EQ(samples.size(), 3U);
  for (const auto& s : samples) {
    EXPECT_NE(s.op_a, s.op_b);  // two distinct paths
    EXPECT_GE(s.op_a, 0);
    EXPECT_LT(s.op_a, arch::kNumCandidateOps);
    // Gate is a 2-way distribution.
    EXPECT_NEAR(s.gate.value()[0] + s.gate.value()[1], 1.0F, 1e-5F);
  }
}

TEST(SuperNet, TwoPathForwardAndEncodingGradients) {
  util::Rng rng(12);
  nas::SuperNet net(tiny_config(), rng);
  Variable x(Tensor::randn({4, 8}, rng));
  const auto samples = net.sample_two_paths(rng);
  const Variable logits = net.forward_two_path(x, samples);
  EXPECT_EQ(logits.value().cols(), 4);
  const Variable enc = nas::SuperNet::encode_two_path(samples);
  EXPECT_EQ(enc.value().cols(), 3 * arch::kNumCandidateOps);
  // Encoding rows are distributions over ops per block.
  for (int b = 0; b < 3; ++b) {
    float sum = 0.0F;
    for (int j = 0; j < arch::kNumCandidateOps; ++j) {
      sum += enc.value().at(0, b * arch::kNumCandidateOps + j);
    }
    EXPECT_NEAR(sum, 1.0F, 1e-5F);
  }
  // Gradients reach the architecture parameters through the encoding. The
  // weighting must differ across ops (a uniform weight has zero gradient
  // through the 2-way softmax since the gate entries sum to 1).
  for (auto& a : net.arch_parameters()) a.zero_grad();
  Tensor w({1, 3 * arch::kNumCandidateOps});
  for (std::size_t i = 0; i < w.numel(); ++i) w[i] = 0.1F * static_cast<float>(i);
  tensor::ops::sum_all(tensor::ops::mul(enc, Variable(w))).backward();
  bool any = false;
  for (auto& a : net.arch_parameters()) {
    for (std::size_t i = 0; i < a.grad().numel(); ++i) {
      if (a.grad()[i] != 0.0F) any = true;
    }
  }
  EXPECT_TRUE(any);
}

TEST(SuperNet, RejectsWrongGateCount) {
  util::Rng rng(7);
  nas::SuperNet net(tiny_config(), rng);
  Variable x(Tensor::randn({2, 8}, rng));
  EXPECT_THROW(net.forward(x, {}), std::invalid_argument);
}

TEST(FixedNet, ZeroBlocksAreIdentity) {
  util::Rng rng(8);
  const nas::SuperNetConfig cfg = tiny_config();
  const arch::Architecture all_zero(3, CandidateOp::kZero);
  nas::FixedNet net(cfg, all_zero, rng);
  // With all-Zero blocks the net is stem + classifier only.
  // parameters: stem (8*16+16) + classifier (16*4+4)
  std::size_t count = 0;
  for (auto& p : net.parameters()) count += p.value().numel();
  EXPECT_EQ(count, static_cast<std::size_t>(8 * 16 + 16 + 16 * 4 + 4));
}

TEST(FixedNet, TrainingLearnsSeparableTask) {
  data::SyntheticTaskConfig dcfg;
  dcfg.input_dim = 8;
  dcfg.num_classes = 4;
  dcfg.clusters_per_class = 1;
  dcfg.train_samples = 512;
  dcfg.val_samples = 128;
  dcfg.noise = 0.3F;
  const data::SyntheticTask task = make_synthetic_task(dcfg);

  util::Rng rng(9);
  nas::SuperNetConfig cfg = tiny_config();
  const arch::Architecture a(3, CandidateOp::kMbConv5x5E6);
  nas::FixedNet net(cfg, a, rng);
  nas::FixedTrainOptions opts;
  opts.epochs = 20;
  opts.batch_size = 64;
  const auto result = nas::train_fixed_net(net, task, opts);
  EXPECT_GT(result.val_accuracy_pct, 85.0);
}

TEST(FixedNet, CapacityOrderingShowsOnHardTask) {
  // A higher-capacity architecture should fit a hard task at least as well
  // as the all-Zero one (which is just a linear-ish stem+classifier).
  data::SyntheticTaskConfig dcfg;
  dcfg.input_dim = 8;
  dcfg.num_classes = 4;
  dcfg.clusters_per_class = 4;
  dcfg.train_samples = 768;
  dcfg.val_samples = 256;
  dcfg.noise = 0.5F;
  dcfg.warp = 1.2F;
  const data::SyntheticTask task = make_synthetic_task(dcfg);

  util::Rng rng(10);
  nas::SuperNetConfig cfg = tiny_config();
  nas::FixedTrainOptions opts;
  opts.epochs = 20;
  opts.batch_size = 64;

  nas::FixedNet zero_net(cfg, arch::Architecture(3, CandidateOp::kZero), rng);
  nas::FixedNet big_net(cfg, arch::Architecture(3, CandidateOp::kMbConv7x7E6), rng);
  const double zero_acc = nas::train_fixed_net(zero_net, task, opts).val_accuracy_pct;
  const double big_acc = nas::train_fixed_net(big_net, task, opts).val_accuracy_pct;
  EXPECT_GE(big_acc + 3.0, zero_acc);  // big should not be meaningfully worse
}

TEST(Trainer, AccuracyPctBounds) {
  data::SyntheticTaskConfig dcfg;
  dcfg.input_dim = 4;
  dcfg.num_classes = 3;
  dcfg.train_samples = 30;
  dcfg.val_samples = 30;
  const data::SyntheticTask task = make_synthetic_task(dcfg);
  // A constant-forward "model" must land at chance-ish accuracy in [0, 100].
  const auto fwd = [&](const Variable& x) {
    return Variable(Tensor::zeros({x.value().rows(), 3}));
  };
  const double acc = nas::accuracy_pct(fwd, task.val, 16);
  EXPECT_GE(acc, 0.0);
  EXPECT_LE(acc, 100.0);
}

}  // namespace
