// Property suite: the cost-table pipeline end to end. Fuzzes the claims the
// LUT-compiled model and the DCTB artifact make (src/accel/cost_model.h,
// src/arch/cost_artifact.h):
//   - DANCE_COST=lut stays inside a tight |log10| band of exact and agrees
//     with it on the EDAP arg-min (Eq. 4) for >= 99% of random
//     architectures — the property that makes the LUT safe for search;
//   - an MmapCostTable answers bit-identically to the in-memory CostTable
//     it was compiled from, on randomized architectures and soft
//     distributions;
//   - the pool-parallel table build is bit-identical to a serial build
//     (checksum equality over the whole storage);
//   - a random single-byte corruption anywhere in a DCTB file is rejected
//     before anything is served from it.
// Suite name carries the "costtable" tag so `ctest -R costtable` includes
// this fuzz next to the example-based suites in tests/test_cost_lut.cpp.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <memory>
#include <string>
#include <vector>

#include <unistd.h>

#include "accel/cost_function.h"
#include "accel/cost_model.h"
#include "arch/cost_artifact.h"
#include "arch/cost_table.h"
#include "runtime/thread_pool.h"
#include "testing/generators.h"
#include "testing/property.h"

namespace testing_ = dance::testing;

namespace {

using namespace dance;

/// One shared small-space environment: the 300-config hardware space keeps
/// each optimal() sweep cheap enough to fuzz hundreds of architectures.
struct Env {
  arch::ArchSpace arch_space{arch::cifar10_backbone()};
  hwgen::HwSearchSpace hw_space{
      {.pe_min = 8, .pe_max = 12, .rf_min = 8, .rf_max = 32, .rf_step = 8}};
  accel::CostModel exact_model{accel::TechnologyParams{},
                               accel::CostMode::kExact};
  accel::CostModel lut_model{accel::TechnologyParams{}, accel::CostMode::kLut};
  arch::CostTable exact_table{arch_space, hw_space, exact_model};
  arch::CostTable lut_table{arch_space, hw_space, lut_model};
};

Env& env() {
  static Env e;
  return e;
}

testing_::Generator<arch::Architecture> architecture_gen() {
  testing_::Generator<arch::Architecture> gen;
  gen.sample = [](util::Rng& rng) { return env().arch_space.random(rng); };
  gen.show = [](const arch::Architecture& a) {
    std::string out;
    for (const auto op : a) {
      if (!out.empty()) out += ",";
      out += std::to_string(static_cast<int>(op));
    }
    return out;
  };
  return gen;
}

TEST(costtable_property, LutTracksExactAndAgreesOnArgmin) {
  Env& e = env();
  const auto config = testing_::PbtConfig::from_env();
  const auto cost_fn = accel::edap_cost();
  const auto gen = architecture_gen();
  int agreements = 0;
  int trials = 0;
  std::string first_disagreement;
  for (int t = 0; t < std::max(100, config.trials); ++t) {
    util::Rng rng(testing_::mix_seed(config.seed, static_cast<std::uint64_t>(t)));
    const arch::Architecture a = gen.sample(rng);
    ++trials;

    // Band: every config's LUT metrics within 1e-9 |log10| of exact.
    const auto exact_all = e.exact_table.evaluate_all(a);
    const auto lut_all = e.lut_table.evaluate_all(a);
    ASSERT_EQ(exact_all.size(), lut_all.size());
    for (std::size_t ci = 0; ci < exact_all.size(); ++ci) {
      ASSERT_LT(std::fabs(std::log10(lut_all[ci].latency_ms /
                                     exact_all[ci].latency_ms)),
                1e-9)
          << "arch " << gen.show(a) << " config " << ci;
      ASSERT_LT(std::fabs(std::log10(lut_all[ci].energy_mj /
                                     exact_all[ci].energy_mj)),
                1e-9)
          << "arch " << gen.show(a) << " config " << ci;
      ASSERT_EQ(lut_all[ci].area_mm2, exact_all[ci].area_mm2);
    }

    // Arg-min agreement: the LUT's winning config is the exact winner, or
    // at least exactly ties it under the exact costs (tie-break order may
    // legitimately differ when two configs cost the same).
    const auto argmin = [&](const std::vector<accel::CostMetrics>& all) {
      std::size_t best = 0;
      double best_cost = cost_fn(all[0]);
      for (std::size_t ci = 1; ci < all.size(); ++ci) {
        const double c = cost_fn(all[ci]);
        if (c < best_cost) {
          best_cost = c;
          best = ci;
        }
      }
      return best;
    };
    const std::size_t ie = argmin(exact_all);
    const std::size_t il = argmin(lut_all);
    if (ie == il || cost_fn(exact_all[il]) == cost_fn(exact_all[ie])) {
      ++agreements;
    } else if (first_disagreement.empty()) {
      first_disagreement = gen.show(a);
    }
    // The provider's own optimal() must agree with the manual scan.
    const auto best_exact = e.exact_table.optimal(a, cost_fn);
    EXPECT_EQ(cost_fn(exact_all[ie]), best_exact.cost) << gen.show(a);
  }
  const double rate = static_cast<double>(agreements) / trials;
  EXPECT_GE(rate, 0.99) << "EDAP arg-min agreement " << agreements << "/"
                        << trials << "; first disagreement on arch "
                        << first_disagreement;
}

struct MappedEnv {
  std::string path;
  std::unique_ptr<arch::MmapCostTable> mapped;

  MappedEnv() {
    path = ::testing::TempDir() + "costtable_property_" +
           std::to_string(getpid()) + ".dctb";
    arch::save_cost_table(env().exact_table, path);
    mapped = arch::load_cost_table(path, env().arch_space);
  }
  ~MappedEnv() { std::remove(path.c_str()); }
};

MappedEnv& mapped_env() {
  static MappedEnv m;
  return m;
}

TEST(costtable_property, MmapBitIdenticalToInMemoryOnRandomArchs) {
  Env& e = env();
  const arch::MmapCostTable& mapped = *mapped_env().mapped;
  const auto cost_fn = accel::edap_cost();
  const auto result = testing_::check<arch::Architecture>(
      "mmap vs in-memory cost table", architecture_gen(),
      [&](const arch::Architecture& a, util::Rng& rng) -> std::string {
        const auto mem = e.exact_table.evaluate_all(a);
        const auto mm = mapped.evaluate_all(a);
        if (mem.size() != mm.size()) return "evaluate_all size mismatch";
        if (std::memcmp(mem.data(), mm.data(),
                        mem.size() * sizeof(accel::CostMetrics)) != 0) {
          return "evaluate_all not bit-identical";
        }
        const auto best_mem = e.exact_table.optimal(a, cost_fn);
        const auto best_mm = mapped.optimal(a, cost_fn);
        if (!(best_mem.config == best_mm.config) ||
            best_mem.cost != best_mm.cost) {
          return "optimal() disagrees";
        }
        // Random soft per-slot distribution: the expected-metrics query the
        // differentiable search uses.
        std::vector<std::vector<double>> probs(
            static_cast<std::size_t>(e.arch_space.num_searchable()));
        for (auto& slot : probs) {
          slot.resize(arch::kNumCandidateOps);
          double total = 0.0;
          for (auto& p : slot) {
            p = rng.uniform();
            total += p;
          }
          for (auto& p : slot) p /= total;
        }
        const std::size_t ci = static_cast<std::size_t>(
            rng.randint(0, static_cast<int>(e.hw_space.size()) - 1));
        const auto em = e.exact_table.expected_metrics(ci, probs);
        const auto mmx = mapped.expected_metrics(ci, probs);
        if (std::memcmp(&em, &mmx, sizeof(em)) != 0) {
          return "expected_metrics not bit-identical";
        }
        return "";
      });
  EXPECT_TRUE(result.ok) << result.report;
  EXPECT_GE(result.trials_run, 100);
}

TEST(costtable_property, PooledBuildBitIdenticalToSerial) {
  Env& e = env();
  // Checksum equality over the serialized image is a complete comparison of
  // every table entry: the parallel_for sweep must land the exact same
  // bits as an inline serial build, per shape, per lane split.
  const std::string pooled_path = ::testing::TempDir() + "costtable_pooled_" +
                                  std::to_string(getpid()) + ".dctb";
  const std::string serial_path = ::testing::TempDir() + "costtable_serial_" +
                                  std::to_string(getpid()) + ".dctb";
  const std::uint64_t pooled_sum =
      arch::save_cost_table(e.exact_table, pooled_path);
  {
    const runtime::SerialGuard serial;
    const arch::CostTable serial_table =
        arch::build_cost_table(e.arch_space, e.hw_space, e.exact_model);
    const std::uint64_t serial_sum =
        arch::save_cost_table(serial_table, serial_path);
    EXPECT_EQ(pooled_sum, serial_sum);
  }
  std::remove(pooled_path.c_str());
  std::remove(serial_path.c_str());
}

TEST(costtable_property, SingleByteCorruptionAnywhereIsRejected) {
  MappedEnv& m = mapped_env();
  std::string good;
  {
    std::ifstream in(m.path, std::ios::binary);
    good.assign(std::istreambuf_iterator<char>(in),
                std::istreambuf_iterator<char>());
  }
  ASSERT_GT(good.size(), 72U);
  const std::string bad_path = ::testing::TempDir() + "costtable_corrupt_" +
                               std::to_string(getpid()) + ".dctb";

  struct Flip {
    std::size_t offset = 0;
    unsigned char bits = 1;
  };
  testing_::Generator<Flip> flip_gen;
  flip_gen.sample = [&](util::Rng& rng) {
    return Flip{static_cast<std::size_t>(
                    rng.randint(0, static_cast<int>(good.size()) - 1)),
                static_cast<unsigned char>(rng.randint(1, 255))};
  };
  flip_gen.show = [](const Flip& f) {
    return "offset " + std::to_string(f.offset) + " xor " +
           std::to_string(static_cast<int>(f.bits));
  };

  const auto result = testing_::check<Flip>(
      "single-byte DCTB corruption", flip_gen,
      [&](const Flip& f, util::Rng&) -> std::string {
        std::string bad = good;
        bad[f.offset] = static_cast<char>(
            static_cast<unsigned char>(bad[f.offset]) ^ f.bits);
        {
          std::ofstream out(bad_path, std::ios::binary | std::ios::trunc);
          out.write(bad.data(), static_cast<std::streamsize>(bad.size()));
        }
        try {
          (void)arch::load_cost_table(bad_path, env().arch_space);
          return "corrupt artifact was accepted";
        } catch (const arch::ArtifactError&) {
          return "";
        }
      });
  std::remove(bad_path.c_str());
  EXPECT_TRUE(result.ok) << result.report;
  EXPECT_GE(result.trials_run, 100);
}

}  // namespace
