#include <gtest/gtest.h>

#include <cmath>

#include "nn/optim.h"
#include "tensor/ops.h"

namespace {

using dance::tensor::Tensor;
using dance::tensor::Variable;
namespace nn = dance::nn;
namespace ops = dance::tensor::ops;

TEST(ClipGradNorm, ScalesDownLargeGradients) {
  Variable w(Tensor::from({1, 2}, {0.0F, 0.0F}), true);
  nn::Sgd opt({w}, {.lr = 1.0F});
  // Force a gradient of norm 5 (3-4-5 triangle).
  w.node()->ensure_grad();
  w.node()->grad[0] = 3.0F;
  w.node()->grad[1] = 4.0F;
  const double pre = opt.clip_grad_norm(1.0);
  EXPECT_NEAR(pre, 5.0, 1e-6);
  const double post = std::hypot(w.grad()[0], w.grad()[1]);
  EXPECT_NEAR(post, 1.0, 1e-5);
  // Direction preserved.
  EXPECT_NEAR(w.grad()[0] / w.grad()[1], 0.75F, 1e-5F);
}

TEST(ClipGradNorm, LeavesSmallGradientsAlone) {
  Variable w(Tensor::from({2}, {0.0F, 0.0F}), true);
  nn::Adam opt({w}, {});
  w.node()->ensure_grad();
  w.node()->grad[0] = 0.1F;
  const double pre = opt.clip_grad_norm(1.0);
  EXPECT_NEAR(pre, 0.1, 1e-6);
  EXPECT_FLOAT_EQ(w.grad()[0], 0.1F);
}

TEST(Sgd, NesterovConvergesFasterOnQuadraticValley) {
  // Same lr/momentum; Nesterov should not be slower on a smooth quadratic.
  auto run = [](bool nesterov) {
    Variable w(Tensor::from({1, 1}, {10.0F}), true);
    nn::Sgd opt({w}, {.lr = 0.02F, .momentum = 0.9F, .nesterov = nesterov});
    Tensor target = Tensor::from({1, 1}, {0.0F});
    for (int i = 0; i < 60; ++i) {
      Variable loss = ops::mse(w, target);
      opt.zero_grad();
      loss.backward();
      opt.step();
    }
    return std::abs(w.value()[0]);
  };
  EXPECT_LE(run(true), run(false) + 0.15F);
}

TEST(Adam, EarlyStepsAreBiasCorrected) {
  // First Adam step with gradient g moves by ~lr regardless of |g| (after
  // bias correction, m_hat/sqrt(v_hat) == sign(g) for a constant gradient).
  Variable w(Tensor::from({1, 1}, {0.0F}), true);
  nn::Adam opt({w}, {.lr = 0.1F});
  w.node()->ensure_grad();
  w.node()->grad[0] = 1e-3F;  // tiny gradient
  opt.step();
  EXPECT_NEAR(w.value()[0], -0.1F, 1e-3F);
}

TEST(Optimizer, ZeroGradClearsBuffers) {
  Variable w(Tensor::from({3}, {1.0F, 2.0F, 3.0F}), true);
  nn::Sgd opt({w}, {});
  w.node()->ensure_grad();
  w.node()->grad.fill(7.0F);
  opt.zero_grad();
  for (std::size_t i = 0; i < 3; ++i) EXPECT_FLOAT_EQ(w.grad()[i], 0.0F);
}

TEST(Optimizer, SkipsParametersWithoutAccumulatedGrads) {
  // A parameter whose grad buffer was never allocated must not be touched.
  Variable w(Tensor::from({1}, {5.0F}), true);
  nn::Sgd opt({w}, {.lr = 1.0F, .weight_decay = 1.0F});
  opt.step();  // no backward ran
  EXPECT_FLOAT_EQ(w.value()[0], 5.0F);
}

/// Cosine schedule is monotone non-increasing over its domain.
class CosineMonotone : public ::testing::TestWithParam<int> {};

TEST_P(CosineMonotone, NonIncreasing) {
  const int total = GetParam();
  nn::CosineSchedule s(0.5F, total);
  for (int e = 0; e < total; ++e) {
    EXPECT_GE(s.lr(e), s.lr(e + 1) - 1e-7F);
  }
  EXPECT_THROW(nn::CosineSchedule(0.1F, 0), std::invalid_argument);
}

INSTANTIATE_TEST_SUITE_P(Lengths, CosineMonotone, ::testing::Values(1, 7, 40));

TEST(Rng, GumbelMeanIsEulerMascheroni) {
  dance::util::Rng rng(42);
  double acc = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) acc += rng.gumbel();
  EXPECT_NEAR(acc / n, 0.5772, 0.02);
}

TEST(Rng, NormalMoments) {
  dance::util::Rng rng(43);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(2.0F, 3.0F);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.05);
}

}  // namespace
