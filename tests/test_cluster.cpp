// Unit tests for the dance::cluster layer: consistent-hash ring shape,
// router shard selection and local error answering, cache snapshot
// round-trips (including corruption rejection), and the ShardServer
// lifecycle — end-to-end over a unix socket, warm start from a snapshot,
// and graceful drain. Suite names carry a lowercase "cluster_" prefix so
// `ctest -R cluster` selects the whole stack.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include <unistd.h>

#include "accel/cost_function.h"
#include "arch/backbone.h"
#include "arch/cost_table.h"
#include "cluster/ring.h"
#include "cluster/router.h"
#include "cluster/shard.h"
#include "cluster/snapshot.h"
#include "net/client.h"
#include "serve/backend.h"
#include "serve/service.h"
#include "serve/wire.h"
#include "util/rng.h"

#include <random>

namespace {

using namespace dance;

std::string test_path(const char* tag) {
  static int counter = 0;
  return "/tmp/dance_cluster_test_" + std::to_string(getpid()) + "_" + tag +
         "_" + std::to_string(counter++);
}

// --- hash ring --------------------------------------------------------------

TEST(cluster_ring, LookupIsDeterministicAcrossInstances) {
  const cluster::HashRing a({0, 1, 2}, 64);
  const cluster::HashRing b({2, 0, 1}, 64);  // order must not matter
  std::mt19937_64 rng(7);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t h = rng();
    EXPECT_EQ(a.lookup(h), b.lookup(h));
  }
}

TEST(cluster_ring, SpreadsKeysAcrossShards) {
  const int n = 4;
  const cluster::HashRing ring({0, 1, 2, 3}, 64);
  std::unordered_map<int, int> load;
  std::mt19937_64 rng(11);
  const int keys = 20000;
  for (int i = 0; i < keys; ++i) ++load[ring.lookup(rng())];
  EXPECT_EQ(static_cast<int>(load.size()), n);  // nobody starves
  for (const auto& [shard, count] : load) {
    // 64 vnodes keeps shard load within a loose band of fair share.
    EXPECT_GT(count, keys / n / 3) << "shard " << shard << " underloaded";
    EXPECT_LT(count, keys * 3 / n) << "shard " << shard << " overloaded";
  }
}

TEST(cluster_ring, VnodeCountAndIdsShapeTheRing) {
  const cluster::HashRing ring({5, 9}, 16);
  EXPECT_EQ(ring.size(), 32U);
  EXPECT_EQ(ring.num_shards(), 2);
  const cluster::HashRing dedup({3, 3, 3}, 8);
  EXPECT_EQ(dedup.num_shards(), 1);
  EXPECT_EQ(dedup.size(), 8U);
  std::mt19937_64 rng(3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(dedup.lookup(rng()), 3);
}

// --- snapshot ---------------------------------------------------------------

serve::Response snapshot_response(float seed) {
  serve::Response r;
  r.metrics.latency_ms = 1.5 * seed;
  r.metrics.energy_mj = 2.5 * seed;
  r.metrics.area_mm2 = 3.5 * seed;
  r.config.pe_x = 8 + static_cast<int>(seed);
  r.config.pe_y = 12;
  r.config.rf_size = 16;
  r.config.dataflow = accel::Dataflow::kOutputStationary;
  return r;
}

TEST(cluster_snapshot, RoundTripsEntriesAndRecency) {
  serve::ShardedLruCache cache(64, 4);
  for (int k = 0; k < 10; ++k) {
    cache.put({static_cast<float>(k), 2.0F},
              snapshot_response(static_cast<float>(k)));
  }
  const std::string path = test_path("snap");
  EXPECT_EQ(cluster::save_snapshot(cache, 2, path), 10U);

  serve::ShardedLruCache restored(64, 4);
  EXPECT_EQ(cluster::load_snapshot(path, 2, restored), 10U);
  for (int k = 0; k < 10; ++k) {
    const auto got = restored.get({static_cast<float>(k), 2.0F});
    ASSERT_TRUE(got.has_value()) << "key " << k;
    const auto want = snapshot_response(static_cast<float>(k));
    EXPECT_DOUBLE_EQ(got->metrics.latency_ms, want.metrics.latency_ms);
    EXPECT_DOUBLE_EQ(got->metrics.energy_mj, want.metrics.energy_mj);
    EXPECT_DOUBLE_EQ(got->metrics.area_mm2, want.metrics.area_mm2);
    EXPECT_EQ(got->config, want.config);
  }
  std::remove(path.c_str());
}

TEST(cluster_snapshot, RejectsWrongWidthAndMissingFile) {
  serve::ShardedLruCache cache(8, 1);
  cache.put({1.0F, 2.0F}, snapshot_response(1.0F));
  const std::string path = test_path("snapw");
  (void)cluster::save_snapshot(cache, 2, path);

  serve::ShardedLruCache target(8, 1);
  EXPECT_THROW((void)cluster::load_snapshot(path, 3, target),
               cluster::SnapshotError);
  EXPECT_THROW((void)cluster::load_snapshot(test_path("absent"), 2, target),
               cluster::SnapshotError);
  EXPECT_EQ(target.stats().entries, 0U);  // failed loads leave it untouched
  std::remove(path.c_str());
}

TEST(cluster_snapshot, RejectsCorruptionEverywhere) {
  serve::ShardedLruCache cache(16, 2);
  for (int k = 0; k < 5; ++k) {
    cache.put({static_cast<float>(k)}, snapshot_response(2.0F));
  }
  const std::string path = test_path("snapc");
  (void)cluster::save_snapshot(cache, 1, path);

  // Read the good image once.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string image;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) image.append(buf, n);
  std::fclose(f);

  // Flipping any single byte must be rejected (checksum), as must
  // truncation at any boundary. A handful of positions keeps this fast.
  for (std::size_t at : {std::size_t{0}, image.size() / 3, image.size() / 2,
                         image.size() - 1}) {
    std::string bad = image;
    bad[at] = static_cast<char>(bad[at] ^ 0x5A);
    std::FILE* w = std::fopen(path.c_str(), "wb");
    ASSERT_NE(w, nullptr);
    std::fwrite(bad.data(), 1, bad.size(), w);
    std::fclose(w);
    serve::ShardedLruCache target(16, 2);
    EXPECT_THROW((void)cluster::load_snapshot(path, 1, target),
                 cluster::SnapshotError)
        << "flip at " << at;
    EXPECT_EQ(target.stats().entries, 0U);
  }
  for (std::size_t keep : {std::size_t{3}, image.size() / 2, image.size() - 2}) {
    std::FILE* w = std::fopen(path.c_str(), "wb");
    ASSERT_NE(w, nullptr);
    std::fwrite(image.data(), 1, keep, w);
    std::fclose(w);
    serve::ShardedLruCache target(16, 2);
    EXPECT_THROW((void)cluster::load_snapshot(path, 1, target),
                 cluster::SnapshotError)
        << "truncated to " << keep;
    EXPECT_EQ(target.stats().entries, 0U);
  }
  std::remove(path.c_str());
}

// --- shard server + router over sockets -------------------------------------

/// Tiny exact-backend fixture shared by the socket tests (the LUT is
/// immutable once built; each test makes its own Service around it).
struct ExactFixture {
  arch::ArchSpace arch_space{arch::cifar10_backbone()};
  hwgen::HwSearchSpace hw_space{
      {.pe_min = 8, .pe_max = 10, .rf_min = 8, .rf_max = 16, .rf_step = 8}};
  accel::CostModel model;
  arch::CostTable table{arch_space, hw_space, model};
};

ExactFixture& fixture() {
  static ExactFixture f;
  return f;
}

std::string arch_line(int id, const arch::Architecture& a) {
  std::string line = "{\"id\": " + std::to_string(id) + ", \"arch\": [";
  for (std::size_t s = 0; s < a.size(); ++s) {
    if (s > 0) line += ", ";
    line += std::to_string(static_cast<int>(a[s]));
  }
  return line + "]}";
}

TEST(cluster_shard, AnswersMatchTheWirePipelineExactly) {
  ExactFixture& f = fixture();
  serve::ExactBackend backend(f.table, accel::edap_cost());
  serve::Service socket_service(backend);
  serve::Service local_service(backend);

  cluster::ShardServer shard(socket_service, f.arch_space,
                             cluster::ShardServer::Options{});
  const auto ep =
      shard.start(net::Endpoint::unix_path(test_path("shard") + ".sock"));

  net::Client client(ep);
  util::Rng rng(23);
  for (int i = 0; i < 20; ++i) {
    const std::string line = arch_line(i, f.arch_space.random(rng));
    EXPECT_EQ(client.roundtrip(line),
              serve::wire::answer_line(line, f.arch_space, local_service));
  }
  // Malformed lines come back as the same error bytes too.
  EXPECT_EQ(client.roundtrip("{\"id\": 7}"),
            serve::wire::answer_line("{\"id\": 7}", f.arch_space, local_service));
  EXPECT_TRUE(shard.drain_and_stop(10000));
}

TEST(cluster_shard, WarmStartRestoresCacheFromSnapshot) {
  ExactFixture& f = fixture();
  const std::string snap = test_path("warm") + ".snap";
  util::Rng rng(29);
  std::vector<std::string> lines;
  for (int i = 0; i < 8; ++i) {
    lines.push_back(arch_line(i, f.arch_space.random(rng)));
  }

  // First life: serve some queries, drain (which saves the snapshot).
  {
    serve::ExactBackend backend(f.table, accel::edap_cost());
    serve::Service service(backend);
    cluster::ShardServer::Options opts;
    opts.snapshot_path = snap;
    cluster::ShardServer shard(service, f.arch_space, opts);
    const auto ep =
        shard.start(net::Endpoint::unix_path(test_path("w1") + ".sock"));
    EXPECT_EQ(shard.warm_entries(), 0U);  // no snapshot yet: cold
    net::Client client(ep);
    for (const auto& line : lines) (void)client.roundtrip(line);
    EXPECT_TRUE(shard.drain_and_stop(10000));
  }

  // Second life: the snapshot pre-populates the cache, so the very first
  // query of a previously-seen key reports "cached": true.
  {
    serve::ExactBackend backend(f.table, accel::edap_cost());
    serve::Service service(backend);
    cluster::ShardServer::Options opts;
    opts.snapshot_path = snap;
    cluster::ShardServer shard(service, f.arch_space, opts);
    const auto ep =
        shard.start(net::Endpoint::unix_path(test_path("w2") + ".sock"));
    EXPECT_GT(shard.warm_entries(), 0U);
    net::Client client(ep);
    const std::string response = client.roundtrip(lines[0]);
    EXPECT_NE(response.find("\"cached\": true"), std::string::npos)
        << response;
    EXPECT_TRUE(shard.drain_and_stop(10000));
  }
  std::remove(snap.c_str());
}

TEST(cluster_router, RoutesByRingAndAnswersParseErrorsLocally) {
  ExactFixture& f = fixture();
  // Two live shards behind the router.
  serve::ExactBackend backend(f.table, accel::edap_cost());
  serve::Service s0(backend);
  serve::Service s1(backend);
  cluster::ShardServer shard0(s0, f.arch_space, cluster::ShardServer::Options{});
  cluster::ShardServer shard1(s1, f.arch_space, cluster::ShardServer::Options{});
  const auto ep0 =
      shard0.start(net::Endpoint::unix_path(test_path("r0") + ".sock"));
  const auto ep1 =
      shard1.start(net::Endpoint::unix_path(test_path("r1") + ".sock"));

  cluster::Router router(f.arch_space, {{0, ep0}, {1, ep1}});
  serve::Service local(backend);

  // Routing agrees with the ring, and every answer matches the wire
  // pipeline byte-for-byte regardless of which shard served it.
  util::Rng rng(31);
  bool saw[2] = {false, false};
  for (int i = 0; i < 40; ++i) {
    const auto a = f.arch_space.random(rng);
    const std::string line = arch_line(i, a);
    const int shard = router.shard_for_key(
        serve::canonical_key(f.arch_space.encode(a)));
    ASSERT_TRUE(shard == 0 || shard == 1);
    saw[shard] = true;
    EXPECT_EQ(router.handle_line(line),
              serve::wire::answer_line(line, f.arch_space, local));
  }
  EXPECT_TRUE(saw[0] && saw[1]) << "40 random keys never hit one shard";

  // Parse errors are answered by the router itself (no shard involved).
  EXPECT_EQ(router.handle_line("not json"),
            serve::wire::answer_line("not json", f.arch_space, local));
  EXPECT_EQ(router.handle_line(""), "");

  // The shard counters show the forwards landed on the shard the ring
  // picked (the router never re-routes).
  (void)shard0.drain_and_stop(10000);
  (void)shard1.drain_and_stop(10000);
  EXPECT_GT(shard0.net_stats().requests + shard1.net_stats().requests, 0U);
}

TEST(cluster_router, UnreachableShardYieldsErrorLineNotCrash) {
  ExactFixture& f = fixture();
  net::Client::Options copts;
  copts.retries = 1;
  copts.backoff_us = 100;
  copts.dial_timeout_ms = 50;
  cluster::Router::Options opts;
  opts.client = copts;
  cluster::Router router(
      f.arch_space,
      {{0, net::Endpoint::unix_path(test_path("ghost") + ".sock")}}, opts);
  const std::string response = router.handle_line(
      "{\"id\": 3, \"arch\": [0, 0, 0, 0, 0, 0, 0, 0, 0]}");
  EXPECT_NE(response.find("\"error\""), std::string::npos) << response;
  EXPECT_NE(response.find("\"id\": 3"), std::string::npos) << response;
}

}  // namespace
