#include <gtest/gtest.h>

#include "accel/systolic_sim.h"

namespace {

using namespace dance::accel;

ConvShape medium_conv() { return ConvShape{1, 64, 32, 16, 16, 3, 3, 1, 1}; }

TEST(SystolicSim, CyclesAboveIdealBound) {
  SystolicSimulator sim;
  for (auto df : kAllDataflows) {
    const AcceleratorConfig cfg{16, 16, 32, df};
    const LayerCost lc = sim.simulate_layer(cfg, medium_conv());
    EXPECT_GE(lc.cycles,
              SystolicSimulator::ideal_cycles(cfg, medium_conv()) * (1.0 - 1e-9))
        << to_string(df);
    EXPECT_GT(lc.energy_pj, 0.0);
  }
}

TEST(SystolicSim, UtilizationConvergesForLargeLayers) {
  // Fill/drain overhead is amortized as the streamed dimension grows: the
  // ratio simulated/ideal must shrink from a small layer to a large one.
  SystolicSimulator sim;
  const AcceleratorConfig cfg{16, 16, 32, Dataflow::kOutputStationary};
  const ConvShape small{1, 16, 8, 8, 8, 1, 1, 1, 1};
  const ConvShape large{1, 256, 256, 32, 32, 3, 3, 1, 1};
  const double r_small = sim.simulate_layer(cfg, small).cycles /
                         SystolicSimulator::ideal_cycles(cfg, small);
  const double r_large = sim.simulate_layer(cfg, large).cycles /
                         SystolicSimulator::ideal_cycles(cfg, large);
  EXPECT_LT(r_large, r_small);
  EXPECT_LT(r_large, 3.0);  // large layers approach full utilization
}

TEST(SystolicSim, MorePesNotSlowerOnBigLayer) {
  SystolicSimulator sim;
  const ConvShape s{1, 128, 128, 32, 32, 3, 3, 1, 1};
  const AcceleratorConfig small{8, 8, 32, Dataflow::kWeightStationary};
  const AcceleratorConfig big{24, 24, 32, Dataflow::kWeightStationary};
  EXPECT_LT(sim.simulate_layer(big, s).cycles,
            sim.simulate_layer(small, s).cycles);
}

TEST(SystolicSim, NetworkSumsLayersAndSharesAreaModel) {
  SystolicSimulator sim;
  CostModel analytical;
  const AcceleratorConfig cfg{12, 12, 16, Dataflow::kRowStationary};
  const std::vector<ConvShape> one = {medium_conv()};
  const std::vector<ConvShape> two = {medium_conv(), medium_conv()};
  const CostMetrics m1 = sim.simulate_network(cfg, one);
  const CostMetrics m2 = sim.simulate_network(cfg, two);
  EXPECT_NEAR(m2.latency_ms, 2.0 * m1.latency_ms, 1e-9);
  EXPECT_DOUBLE_EQ(m1.area_mm2, analytical.area_mm2(cfg));
}

TEST(SystolicSim, AgreesWithAnalyticalModelWithinFactor) {
  // The two backends disagree in detail but must tell the same coarse
  // story: per-layer latencies within an order of magnitude of each other.
  SystolicSimulator sim;
  CostModel analytical;
  const AcceleratorConfig cfg{16, 16, 32, Dataflow::kWeightStationary};
  const double sim_cycles = sim.simulate_layer(cfg, medium_conv()).cycles;
  const double ana_cycles = analytical.layer_cost(cfg, medium_conv()).cycles;
  EXPECT_LT(sim_cycles / ana_cycles, 10.0);
  EXPECT_GT(sim_cycles / ana_cycles, 0.1);
}

TEST(SystolicSim, RejectsInvalidInputs) {
  SystolicSimulator sim;
  AcceleratorConfig cfg;
  ConvShape bad = medium_conv();
  bad.h = 0;
  EXPECT_THROW(sim.simulate_layer(cfg, bad), std::invalid_argument);
  cfg.pe_x = 0;
  EXPECT_THROW(sim.simulate_layer(cfg, medium_conv()), std::invalid_argument);
}

TEST(SystolicSim, DepthwisePunishedOnWeightStationary) {
  // The im2col window of a depthwise conv is tiny (c/groups == 1), stranding
  // the WS array rows — same qualitative effect as the analytical model.
  SystolicSimulator sim;
  const ConvShape dw{1, 96, 96, 16, 16, 3, 3, 1, 96};
  const AcceleratorConfig ws{16, 16, 32, Dataflow::kWeightStationary};
  const AcceleratorConfig os{16, 16, 32, Dataflow::kOutputStationary};
  EXPECT_GT(sim.simulate_layer(ws, dw).cycles,
            sim.simulate_layer(os, dw).cycles);
}

}  // namespace
