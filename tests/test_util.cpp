#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <limits>
#include <stdexcept>
#include <vector>

#include "util/csv.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using namespace dance::util;

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(99);
  Rng b(99);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FLOAT_EQ(a.uniform(), b.uniform());
  }
}

TEST(Rng, RandintWithinBounds) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const int v = rng.randint(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
  }
}

TEST(Rng, PermutationIsPermutation) {
  Rng rng(2);
  const auto p = rng.permutation(50);
  std::vector<bool> seen(50, false);
  for (int v : p) {
    ASSERT_GE(v, 0);
    ASSERT_LT(v, 50);
    EXPECT_FALSE(seen[static_cast<std::size_t>(v)]);
    seen[static_cast<std::size_t>(v)] = true;
  }
}

TEST(Rng, CategoricalRespectsZeroWeights) {
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(rng.categorical({0.0F, 1.0F, 0.0F}), 1);
  }
}

TEST(Rng, CategoricalDegenerateWeights) {
  // Regression: std::discrete_distribution leaves empty and all-zero weight
  // vectors implementation-defined. The contract is now explicit: empty
  // throws, all-zero falls back to a uniform in-range draw.
  Rng rng(3);
  EXPECT_THROW((void)rng.categorical({}), std::invalid_argument);
  std::vector<int> seen(3, 0);
  for (int i = 0; i < 300; ++i) {
    const int idx = rng.categorical({0.0F, 0.0F, 0.0F});
    ASSERT_GE(idx, 0);
    ASSERT_LT(idx, 3);
    ++seen[static_cast<std::size_t>(idx)];
  }
  for (int i = 0; i < 3; ++i) EXPECT_GT(seen[static_cast<std::size_t>(i)], 0);
}

TEST(Rng, GumbelSamplesAreFinite) {
  Rng rng(4);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_TRUE(std::isfinite(rng.gumbel()));
  }
}

TEST(Stats, MeanAndStddev) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_NEAR(stddev(xs), 1.2909944, 1e-6);
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
  EXPECT_DOUBLE_EQ(stddev(std::vector<double>{5.0}), 0.0);
}

TEST(Stats, PercentileInterpolatesBetweenRanks) {
  // Unsorted on purpose: percentile sorts a copy.
  const std::vector<double> xs = {40.0, 10.0, 30.0, 20.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 25.0);   // midpoint of 20 and 30
  EXPECT_DOUBLE_EQ(percentile(xs, 25.0), 17.5);   // rank 0.75 between 10, 20
  EXPECT_DOUBLE_EQ(percentile(xs, 95.0), 38.5);   // rank 2.85 between 30, 40
}

TEST(Stats, PercentileEdgeCases) {
  EXPECT_DOUBLE_EQ(percentile(std::vector<double>{}, 50.0), 0.0);
  EXPECT_DOUBLE_EQ(percentile(std::vector<double>{7.0}, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(percentile(std::vector<double>{7.0}, 100.0), 7.0);
  // Out-of-range p clamps instead of reading out of bounds.
  const std::vector<double> xs = {1.0, 2.0};
  EXPECT_DOUBLE_EQ(percentile(xs, -10.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 250.0), 2.0);
}

TEST(Stats, PercentileIgnoresNonFiniteSamples) {
  // Regression: NaN samples used to reach std::sort, whose ordering (and
  // therefore every percentile) is undefined with unordered elements — the
  // reported p50/p95 depended on the seed-dependent position of the NaNs.
  // Non-finite samples are now dropped before sorting.
  std::vector<double> xs;
  const double nan = std::numeric_limits<double>::quiet_NaN();
  for (int i = 0; i < 64; ++i) xs.push_back(nan);  // enough to derail sort
  xs.push_back(2.0);
  xs.insert(xs.begin(), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 1.5);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 2.0);

  const std::vector<double> with_inf = {
      3.0, std::numeric_limits<double>::infinity(), 1.0,
      -std::numeric_limits<double>::infinity(), 2.0};
  EXPECT_DOUBLE_EQ(percentile(with_inf, 50.0), 2.0);
  EXPECT_DOUBLE_EQ(percentile(with_inf, 100.0), 3.0);
}

TEST(Stats, PercentileAllNonFiniteReturnsZero) {
  const std::vector<double> xs = {std::numeric_limits<double>::quiet_NaN(),
                                  std::numeric_limits<double>::infinity()};
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 0.0);
}

TEST(Stats, MeanRelativeError) {
  const std::vector<double> pred = {110.0, 90.0};
  const std::vector<double> truth = {100.0, 100.0};
  EXPECT_NEAR(mean_relative_error(pred, truth), 0.1, 1e-12);
}

TEST(Stats, RegressionAccuracyClamped) {
  const std::vector<double> pred = {300.0};
  const std::vector<double> truth = {100.0};
  EXPECT_DOUBLE_EQ(regression_accuracy_pct(pred, truth), 0.0);  // 200% error
  EXPECT_DOUBLE_EQ(regression_accuracy_pct(truth, truth), 100.0);
}

TEST(Stats, ClassificationAccuracy) {
  const std::vector<int> pred = {1, 2, 3, 4};
  const std::vector<int> truth = {1, 2, 0, 4};
  EXPECT_DOUBLE_EQ(classification_accuracy_pct(pred, truth), 75.0);
}

TEST(Stats, SizeMismatchThrows) {
  const std::vector<double> a = {1.0};
  const std::vector<double> b = {1.0, 2.0};
  EXPECT_THROW(mean_relative_error(a, b), std::invalid_argument);
}

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "2.50"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| name"), std::string::npos);
  EXPECT_NE(s.find("| longer"), std::string::npos);
  EXPECT_NE(s.find("|----"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, FmtPrecision) {
  EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Table::fmt(2.0, 0), "2");
}

TEST(Csv, WritesHeaderAndRows) {
  const std::string path = "/tmp/dance_test_csv.csv";
  {
    CsvWriter w(path, {"a", "b"});
    w.add_row({"1", "2"});
    w.flush();
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2");
  std::filesystem::remove(path);
}

TEST(Parallel, CoversWholeRangeOnce) {
  std::vector<std::atomic<int>> hits(1000);
  dance::util::parallel_for(0, 1000, [&](long lo, long hi) {
    for (long i = lo; i < hi; ++i) hits[static_cast<std::size_t>(i)]++;
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Parallel, EmptyRangeIsNoop) {
  bool called = false;
  dance::util::parallel_for(5, 5, [&](long, long) { called = true; });
  EXPECT_FALSE(called);
}

}  // namespace
