// Property suite 3: differential fuzz of the runtime thread pool against
// serial execution. docs/runtime.md promises bit-identical results to a
// serial run for bodies that write disjoint per-index outputs, at *any*
// thread count and grain — this suite hammers that contract with randomized
// workloads, lane counts, grains and three float-arithmetic bodies whose
// results would change if the pool ever regrouped, dropped or duplicated
// indices.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstring>
#include <vector>

#include "runtime/thread_pool.h"
#include "testing/generators.h"
#include "testing/property.h"
#include "util/parallel.h"

namespace testing_ = dance::testing;

namespace {

using namespace dance;
using testing_::PoolWorkload;

/// Per-index float bodies. Each index's value chains enough non-associative
/// float operations that any cross-index regrouping, double execution or
/// skipped index changes the bits.
void run_body(int body, long lo, long hi, std::vector<float>& out) {
  switch (body) {
    case 0:
      for (long i = lo; i < hi; ++i) {
        const float x = static_cast<float>(i) * 0.37F;
        out[static_cast<std::size_t>(i)] = std::sin(x) * std::exp(-x * 1e-3F);
      }
      break;
    case 1:
      // In-body accumulation: a chained sum over a per-index window, kept
      // inside one body invocation as the contract requires.
      for (long i = lo; i < hi; ++i) {
        float acc = 0.0F;
        for (long j = 0; j <= i % 7; ++j) {
          acc += 1.0F / (static_cast<float>(i + j) + 1.0F);
        }
        out[static_cast<std::size_t>(i)] = acc;
      }
      break;
    default:
      // Mixed transcendental chain with sign flips.
      for (long i = lo; i < hi; ++i) {
        const float x = static_cast<float>(i % 113) - 56.0F;
        out[static_cast<std::size_t>(i)] =
            std::tanh(x * 0.1F) + std::sqrt(std::abs(x)) * 0.01F;
      }
      break;
  }
}

constexpr int kNumBodies = 3;

/// Bitwise comparison (covers -0.0 and any NaN payloads).
bool bit_equal(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0);
}

TEST(PoolBitIdentity, PooledMatchesSerialAtAnyThreadCountAndGrain) {
  const auto result = testing_::check<PoolWorkload>(
      "pool vs serial bit-identity", testing_::pool_workload_gen(kNumBodies),
      [](const PoolWorkload& w, util::Rng&) -> std::string {
        std::vector<float> serial(static_cast<std::size_t>(w.n));
        run_body(w.body, 0, w.n, serial);

        runtime::ThreadPool pool(w.threads);
        std::vector<float> pooled(static_cast<std::size_t>(w.n));
        pool.parallel_for(0, w.n, w.grain, [&](long lo, long hi) {
          run_body(w.body, lo, hi, pooled);
        });
        if (!bit_equal(serial, pooled)) {
          return "pooled result diverged from the serial loop";
        }

        // The same pool under SerialGuard must also match bitwise.
        std::vector<float> guarded(static_cast<std::size_t>(w.n));
        {
          runtime::SerialGuard guard;
          pool.parallel_for(0, w.n, w.grain, [&](long lo, long hi) {
            run_body(w.body, lo, hi, guarded);
          });
        }
        if (!bit_equal(serial, guarded)) {
          return "SerialGuard result diverged from the serial loop";
        }
        return "";
      });
  EXPECT_TRUE(result.ok) << result.report;
  EXPECT_GE(result.trials_run, 100);
}

TEST(PoolBitIdentity, ThreadCountsAgreePairwise) {
  // The determinism contract is thread-count independent: two pools with
  // *different* lane counts must produce bit-identical outputs, not just
  // pool-vs-serial.
  const auto result = testing_::check<PoolWorkload>(
      "pairwise thread-count bit-identity",
      testing_::pool_workload_gen(kNumBodies),
      [](const PoolWorkload& w, util::Rng& rng) -> std::string {
        const int other_threads = rng.randint(1, 8);
        runtime::ThreadPool a(w.threads);
        runtime::ThreadPool b(other_threads);
        std::vector<float> out_a(static_cast<std::size_t>(w.n));
        std::vector<float> out_b(static_cast<std::size_t>(w.n));
        a.parallel_for(0, w.n, w.grain, [&](long lo, long hi) {
          run_body(w.body, lo, hi, out_a);
        });
        b.parallel_for(0, w.n, w.grain, [&](long lo, long hi) {
          run_body(w.body, lo, hi, out_b);
        });
        if (!bit_equal(out_a, out_b)) {
          return "pools with " + std::to_string(w.threads) + " and " +
                 std::to_string(other_threads) + " lanes disagree";
        }
        return "";
      });
  EXPECT_TRUE(result.ok) << result.report;
  EXPECT_GE(result.trials_run, 100);
}

TEST(PoolBitIdentity, EveryIndexVisitedExactlyOnce) {
  // Coverage fuzz: count per-index visits under randomized (n, grain, lanes).
  const auto result = testing_::check<PoolWorkload>(
      "exactly-once coverage", testing_::pool_workload_gen(kNumBodies),
      [](const PoolWorkload& w, util::Rng&) -> std::string {
        runtime::ThreadPool pool(w.threads);
        std::vector<std::atomic<int>> hits(static_cast<std::size_t>(w.n));
        pool.parallel_for(0, w.n, w.grain, [&](long lo, long hi) {
          for (long i = lo; i < hi; ++i) hits[static_cast<std::size_t>(i)]++;
        });
        for (std::size_t i = 0; i < hits.size(); ++i) {
          if (hits[i].load() != 1) {
            return "index " + std::to_string(i) + " visited " +
                   std::to_string(hits[i].load()) + " times";
          }
        }
        return "";
      });
  EXPECT_TRUE(result.ok) << result.report;
  EXPECT_GE(result.trials_run, 100);
}

TEST(PoolBitIdentity, GlobalParallelForMatchesSerialGuard) {
  // util::parallel_for on the global pool — the entry point the tensor ops
  // actually use — against the SerialGuard escape hatch.
  const auto result = testing_::check<PoolWorkload>(
      "util::parallel_for vs SerialGuard",
      testing_::pool_workload_gen(kNumBodies),
      [](const PoolWorkload& w, util::Rng&) -> std::string {
        std::vector<float> pooled(static_cast<std::size_t>(w.n));
        util::parallel_for(0, w.n, [&](long lo, long hi) {
          run_body(w.body, lo, hi, pooled);
        }, w.grain);

        std::vector<float> serial(static_cast<std::size_t>(w.n));
        {
          runtime::SerialGuard guard;
          util::parallel_for(0, w.n, [&](long lo, long hi) {
            run_body(w.body, lo, hi, serial);
          }, w.grain);
        }
        if (!bit_equal(serial, pooled)) {
          return "global pool diverged from SerialGuard execution";
        }
        return "";
      });
  EXPECT_TRUE(result.ok) << result.report;
  EXPECT_GE(result.trials_run, 100);
}

}  // namespace
