// Systematic numerical gradient verification for every differentiable op.
//
// Strategy: for op f and scalar reduction L = sum(f(x)), compare autograd's
// dL/dx against central differences. Stochastic ops (Gumbel) are made
// deterministic by reseeding an identical Rng for every evaluation.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "tensor/ops.h"

namespace {

using dance::tensor::Tensor;
using dance::tensor::Variable;
namespace ops = dance::tensor::ops;

/// Build a deterministic pseudo-random test tensor with entries in ~[-1, 1],
/// offset away from ReLU kinks.
Tensor make_input(std::vector<int> shape, float scale = 1.0F, float bias = 0.1F) {
  Tensor t(std::move(shape));
  for (std::size_t i = 0; i < t.numel(); ++i) {
    t[i] = scale * std::sin(0.7F * static_cast<float>(i) + 0.3F) + bias;
  }
  return t;
}

/// Compare autograd gradient of L = sum(f(x)) against central differences.
void check_gradient(const std::function<Variable(const Variable&)>& f,
                    Tensor x0, float tol = 2e-2F, float eps = 1e-3F) {
  Variable x(x0, /*requires_grad=*/true);
  Variable loss = ops::sum_all(f(x));
  loss.backward();

  for (std::size_t i = 0; i < x0.numel(); ++i) {
    auto eval = [&](float v) {
      Tensor xt = x0;
      xt[i] = v;
      Variable xv(xt);
      return static_cast<double>(ops::sum_all(f(xv)).value()[0]);
    };
    const double num = (eval(x0[i] + eps) - eval(x0[i] - eps)) / (2.0 * eps);
    EXPECT_NEAR(x.grad()[i], num, tol) << "element " << i;
  }
}

TEST(GradCheck, Add) {
  const Tensor other = make_input({2, 3}, 0.5F);
  check_gradient([&](const Variable& x) { return ops::add(x, Variable(other)); },
                 make_input({2, 3}));
}

TEST(GradCheck, Sub) {
  const Tensor other = make_input({2, 3}, 0.5F);
  check_gradient([&](const Variable& x) { return ops::sub(x, Variable(other)); },
                 make_input({2, 3}));
}

TEST(GradCheck, MulBothSides) {
  const Tensor other = make_input({2, 3}, 0.8F, 0.4F);
  check_gradient([&](const Variable& x) { return ops::mul(x, Variable(other)); },
                 make_input({2, 3}));
  check_gradient([&](const Variable& x) { return ops::mul(Variable(other), x); },
                 make_input({2, 3}));
}

TEST(GradCheck, MulSelf) {
  // x*x exercises gradient accumulation through two parent slots.
  check_gradient([&](const Variable& x) { return ops::mul(x, x); },
                 make_input({2, 2}));
}

TEST(GradCheck, Scale) {
  check_gradient([](const Variable& x) { return ops::scale(x, -2.5F); },
                 make_input({3, 2}));
}

TEST(GradCheck, ScaleByScalarVariable) {
  const Tensor base = make_input({2, 3}, 0.7F, 0.2F);
  // gradient w.r.t. the scalar gate
  check_gradient(
      [&](const Variable& s) { return ops::scale_by(Variable(base), s); },
      make_input({1, 1}, 0.5F, 0.3F));
  // gradient w.r.t. the tensor
  const Tensor gate = make_input({1, 1}, 0.5F, 0.4F);
  check_gradient(
      [&](const Variable& x) { return ops::scale_by(x, Variable(gate)); },
      make_input({2, 3}));
}

TEST(GradCheck, AddRowvecBothSides) {
  const Tensor bias = make_input({3}, 0.4F);
  check_gradient(
      [&](const Variable& x) { return ops::add_rowvec(x, Variable(bias)); },
      make_input({2, 3}));
  const Tensor mat = make_input({2, 3}, 0.6F);
  check_gradient(
      [&](const Variable& b) { return ops::add_rowvec(Variable(mat), b); },
      make_input({3}));
}

TEST(GradCheck, MulRowvecConstant) {
  const Tensor row = make_input({3}, 0.9F, 0.5F);
  check_gradient([&](const Variable& x) { return ops::mul_rowvec(x, row); },
                 make_input({2, 3}));
}

TEST(GradCheck, AddConst) {
  const Tensor c = make_input({2, 2}, 2.0F);
  check_gradient([&](const Variable& x) { return ops::add_const(x, c); },
                 make_input({2, 2}));
}

TEST(GradCheck, MatmulBothSides) {
  const Tensor b = make_input({3, 4}, 0.5F);
  check_gradient([&](const Variable& x) { return ops::matmul(x, Variable(b)); },
                 make_input({2, 3}));
  const Tensor a = make_input({2, 3}, 0.5F);
  check_gradient([&](const Variable& x) { return ops::matmul(Variable(a), x); },
                 make_input({3, 4}));
}

TEST(GradCheck, Relu) {
  check_gradient([](const Variable& x) { return ops::relu(x); },
                 make_input({3, 3}, 1.0F, 0.15F));
}

TEST(GradCheck, Sigmoid) {
  check_gradient([](const Variable& x) { return ops::sigmoid(x); },
                 make_input({2, 3}));
}

TEST(GradCheck, SoftmaxRows) {
  // Sum over softmax is constant, so weight it to get a nontrivial loss.
  const Tensor w = make_input({2, 4}, 1.0F, 0.5F);
  check_gradient(
      [&](const Variable& x) {
        return ops::mul(ops::softmax_rows(x), Variable(w));
      },
      make_input({2, 4}, 2.0F));
}

TEST(GradCheck, LogSoftmaxRows) {
  const Tensor w = make_input({2, 4}, 1.0F, 0.5F);
  check_gradient(
      [&](const Variable& x) {
        return ops::mul(ops::log_softmax_rows(x), Variable(w));
      },
      make_input({2, 4}, 2.0F));
}

TEST(GradCheck, ConcatCols) {
  const Tensor other = make_input({2, 2}, 0.5F);
  check_gradient(
      [&](const Variable& x) {
        return ops::mul(ops::concat_cols({x, Variable(other)}),
                        ops::concat_cols({x, Variable(other)}));
      },
      make_input({2, 3}));
}

TEST(GradCheck, SliceCols) {
  check_gradient(
      [](const Variable& x) {
        const Variable s = ops::slice_cols(x, 1, 3);
        return ops::mul(s, s);
      },
      make_input({2, 4}));
}

TEST(GradCheck, MeanAll) {
  check_gradient(
      [](const Variable& x) {
        const Variable m = ops::mean_all(x);
        return ops::mul(m, m);
      },
      make_input({2, 3}));
}

TEST(GradCheck, CrossEntropy) {
  check_gradient(
      [](const Variable& x) { return ops::cross_entropy(x, {1, 0}); },
      make_input({2, 3}, 1.5F), /*tol=*/1e-2F);
}

TEST(GradCheck, Mse) {
  const Tensor target = make_input({2, 3}, 0.7F, -0.2F);
  check_gradient([&](const Variable& x) { return ops::mse(x, target); },
                 make_input({2, 3}));
}

TEST(GradCheck, Msre) {
  Tensor target = make_input({2, 3}, 0.3F, 1.0F);  // strictly positive
  check_gradient([&](const Variable& x) { return ops::msre(x, target); },
                 make_input({2, 3}, 0.3F, 1.1F));
}

TEST(GradCheck, BatchNormInput) {
  // Training-mode batch norm with fixed gamma/beta; running buffers are
  // mutated per call but don't affect the training-mode output.
  Variable gamma(Tensor::full({3}, 1.3F));
  Variable beta(Tensor::full({3}, -0.2F));
  const Tensor w = make_input({4, 3}, 1.0F, 0.5F);
  check_gradient(
      [&](const Variable& x) {
        Tensor rm = Tensor::zeros({3});
        Tensor rv = Tensor::full({3}, 1.0F);
        return ops::mul(ops::batchnorm(x, gamma, beta, rm, rv, 0.1F, 1e-5F, true),
                        Variable(w));
      },
      make_input({4, 3}, 1.2F), /*tol=*/3e-2F);
}

TEST(GradCheck, GumbelSoftmaxSoftDeterministicNoise) {
  // Re-seeding makes the Gumbel noise identical across evaluations, so the
  // straight-through gradient must match the numerical one exactly.
  const Tensor w = make_input({2, 4}, 1.0F, 0.5F);
  check_gradient(
      [&](const Variable& x) {
        dance::util::Rng rng(1234);
        return ops::mul(ops::gumbel_softmax(x, 0.8F, false, rng), Variable(w));
      },
      make_input({2, 4}, 1.5F));
}

TEST(GradCheck, SumAll) {
  check_gradient(
      [](const Variable& x) {
        const Variable s = ops::sum_all(x);
        return ops::mul(s, s);
      },
      make_input({2, 2}), /*tol=*/5e-2F);
}

}  // namespace
