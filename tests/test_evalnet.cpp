#include <gtest/gtest.h>

#include "accel/cost_function.h"
#include "arch/cost_table.h"
#include "evalnet/trainer.h"

namespace {

using namespace dance;

/// Shared small fixture: tiny HW space so ground truth generation is fast.
class EvalNetTest : public ::testing::Test {
 protected:
  EvalNetTest()
      : arch_space_(arch::cifar10_backbone()),
        hw_space_({.pe_min = 8, .pe_max = 12, .rf_min = 8, .rf_max = 32,
                   .rf_step = 8}),
        table_(arch_space_, hw_space_, model_) {}

  arch::ArchSpace arch_space_;
  hwgen::HwSearchSpace hw_space_;
  accel::CostModel model_;
  arch::CostTable table_;
};

TEST_F(EvalNetTest, DatasetGenerationShapesAndConsistency) {
  util::Rng rng(3);
  const auto ds = evalnet::generate_evaluator_dataset(table_, accel::edap_cost(),
                                                      20, rng);
  EXPECT_EQ(ds.samples.size(), 20U);
  EXPECT_EQ(ds.arch_encoding_width, arch_space_.encoding_width());
  EXPECT_EQ(ds.hw_encoding_width, hw_space_.encoding_width());
  for (const auto& s : ds.samples) {
    EXPECT_EQ(static_cast<int>(s.arch_enc.size()), ds.arch_encoding_width);
    EXPECT_EQ(static_cast<int>(s.hw_enc.size()), ds.hw_encoding_width);
    // The stored labels must re-encode to the stored one-hot.
    const accel::AcceleratorConfig c{
        hw_space_.pe_value(s.hw_labels[0]), hw_space_.pe_value(s.hw_labels[1]),
        hw_space_.rf_value(s.hw_labels[2]), hw_space_.dataflow_value(s.hw_labels[3])};
    EXPECT_EQ(hw_space_.encode(c), s.hw_enc);
    // The stored metrics must be optimal: no config may beat them on EDAP.
    const arch::Architecture a = arch_space_.decode(s.arch_enc);
    const auto best = table_.optimal(a, accel::edap_cost());
    EXPECT_NEAR(best.metrics.latency_ms, s.metrics[0], 1e-12);
  }
}

TEST_F(EvalNetTest, SplitPreservesCountsAndWidths) {
  util::Rng rng(4);
  const auto ds = evalnet::generate_evaluator_dataset(table_, accel::edap_cost(),
                                                      10, rng);
  const auto [train, val] = evalnet::split_dataset(ds, 0.7);
  EXPECT_EQ(train.samples.size(), 7U);
  EXPECT_EQ(val.samples.size(), 3U);
  EXPECT_EQ(train.arch_encoding_width, ds.arch_encoding_width);
  EXPECT_THROW(evalnet::split_dataset(ds, 1.5), std::invalid_argument);
}

TEST_F(EvalNetTest, HwGenNetShapesAndPredict) {
  util::Rng rng(5);
  evalnet::HwGenNet net(arch_space_.encoding_width(), hw_space_, rng);
  const arch::Architecture a = arch_space_.random(rng);
  tensor::Variable enc(tensor::Tensor::from({1, arch_space_.encoding_width()},
                                            arch_space_.encode(a)));
  const auto lg = net.logits(enc);
  EXPECT_EQ(lg.value().cols(), hw_space_.encoding_width());
  const auto ranges = net.head_ranges();
  EXPECT_EQ(ranges[3].second, hw_space_.encoding_width());
  // predict() must return a config inside the space.
  const auto preds = net.predict(enc);
  ASSERT_EQ(preds.size(), 1U);
  EXPECT_NO_THROW(hw_space_.index_of(preds[0]));
}

TEST_F(EvalNetTest, ForwardEncodedHardIsValidConfigEncoding) {
  util::Rng rng(6);
  evalnet::HwGenNet net(arch_space_.encoding_width(), hw_space_, rng);
  tensor::Variable enc(
      tensor::Tensor::from({2, arch_space_.encoding_width()},
                           std::vector<float>(
                               static_cast<std::size_t>(2 * arch_space_.encoding_width()), 0.1F)));
  const auto out = net.forward_encoded(enc, 1.0F, /*hard=*/true, rng);
  EXPECT_EQ(out.value().cols(), hw_space_.encoding_width());
  for (int r = 0; r < 2; ++r) {
    float sum = 0.0F;
    for (int c = 0; c < out.value().cols(); ++c) sum += out.value().at(r, c);
    EXPECT_FLOAT_EQ(sum, 4.0F);  // one 1 per head
  }
}

TEST_F(EvalNetTest, CostNetFeatureForwardingValidation) {
  util::Rng rng(7);
  evalnet::CostNet::Options ff;
  ff.feature_forwarding = true;
  ff.hidden_dim = 32;
  evalnet::CostNet net(arch_space_.encoding_width(), hw_space_.encoding_width(),
                       rng, ff);
  tensor::Variable enc(tensor::Tensor::zeros({2, arch_space_.encoding_width()}));
  EXPECT_THROW(net.forward(enc, tensor::Variable{}), std::invalid_argument);
  tensor::Variable hw(tensor::Tensor::zeros({2, hw_space_.encoding_width()}));
  const auto out = net.forward(enc, hw);
  EXPECT_EQ(out.value().cols(), 3);
}

TEST_F(EvalNetTest, CostNetOutputScaleApplied) {
  util::Rng rng(8);
  evalnet::CostNet::Options opts;
  opts.feature_forwarding = false;
  opts.hidden_dim = 16;
  evalnet::CostNet net(arch_space_.encoding_width(), hw_space_.encoding_width(),
                       rng, opts);
  net.set_training(false);
  tensor::Variable enc(tensor::Tensor::full({2, arch_space_.encoding_width()}, 0.3F));
  const auto base = net.forward(enc, tensor::Variable{});
  net.set_output_scale({2.0, 3.0, 4.0});
  const auto scaled = net.forward(enc, tensor::Variable{});
  EXPECT_NEAR(scaled.value().at(0, 0), 2.0F * base.value().at(0, 0), 1e-5F);
  EXPECT_NEAR(scaled.value().at(1, 2), 4.0F * base.value().at(1, 2), 1e-5F);
  EXPECT_THROW(net.set_output_scale({0.0, 1.0, 1.0}), std::invalid_argument);
}

TEST_F(EvalNetTest, EvaluatorFrozenStopsParameterGradsButNotInputGrads) {
  util::Rng rng(9);
  evalnet::Evaluator::Options opts;
  opts.hwgen.hidden_dim = 32;
  opts.cost.hidden_dim = 32;
  evalnet::Evaluator ev(arch_space_.encoding_width(), hw_space_, rng, opts);
  ev.set_frozen(true);
  ev.set_training(false);

  tensor::Variable enc(
      tensor::Tensor::full({1, arch_space_.encoding_width()}, 0.14F), true);
  const auto out = ev.forward(enc, rng);
  tensor::ops::sum_all(out.metrics).backward();

  // Input got a gradient (this is the path DANCE uses)...
  bool any_input_grad = false;
  for (std::size_t i = 0; i < enc.grad().numel(); ++i) {
    if (enc.grad()[i] != 0.0F) any_input_grad = true;
  }
  EXPECT_TRUE(any_input_grad);
  // ...while frozen parameters accumulate none.
  for (auto& p : ev.cost_net().parameters()) {
    EXPECT_EQ(p.grad().numel(), 0U);
  }
}

TEST_F(EvalNetTest, TrainingImprovesHwGenAccuracy) {
  util::Rng rng(10);
  auto ds = evalnet::generate_evaluator_dataset(table_, accel::edap_cost(), 300,
                                                rng);
  auto [train, val] = evalnet::split_dataset(ds, 0.8);
  evalnet::HwGenNet::Options small;
  small.hidden_dim = 64;
  evalnet::HwGenNet net(arch_space_.encoding_width(), hw_space_, rng, small);
  const auto before = evalnet::evaluate_hwgen_net(net, val);
  evalnet::TrainOptions opts;
  opts.epochs = 15;
  opts.batch_size = 64;
  opts.lr = 0.05F;
  const auto after = evalnet::train_hwgen_net(net, train, val, opts);
  double gain = 0.0;
  for (int h = 0; h < 4; ++h) {
    gain += after.head_accuracy_pct[static_cast<std::size_t>(h)] -
            before.head_accuracy_pct[static_cast<std::size_t>(h)];
  }
  EXPECT_GT(gain, 0.0);
  // The concentrated optimum makes high accuracy reachable even when tiny.
  EXPECT_GT(after.head_accuracy_pct[3], 60.0);  // dataflow head
}

TEST_F(EvalNetTest, TrainingReducesCostError) {
  util::Rng rng(11);
  auto ds = evalnet::generate_evaluator_dataset(table_, accel::edap_cost(), 300,
                                                rng);
  auto [train, val] = evalnet::split_dataset(ds, 0.8);
  evalnet::CostNet::Options small;
  small.feature_forwarding = false;
  small.hidden_dim = 64;
  evalnet::CostNet net(arch_space_.encoding_width(), hw_space_.encoding_width(),
                       rng, small);
  evalnet::TrainOptions opts;
  opts.epochs = 25;
  opts.batch_size = 64;
  opts.lr = 3e-3F;
  const auto after = evalnet::train_cost_net(net, train, val, opts);
  // 240 training samples is deliberately tiny; the full-scale runs live in
  // bench_table1_evaluator. Here we only require clearly-better-than-noise.
  for (int m = 0; m < 3; ++m) {
    EXPECT_GT(after.metric_accuracy_pct[static_cast<std::size_t>(m)], 40.0);
  }
}

TEST_F(EvalNetTest, EmptyDatasetThrows) {
  util::Rng rng(12);
  evalnet::HwGenNet net(arch_space_.encoding_width(), hw_space_, rng);
  evalnet::EvaluatorDataset empty;
  empty.arch_encoding_width = arch_space_.encoding_width();
  empty.hw_encoding_width = hw_space_.encoding_width();
  EXPECT_THROW(evalnet::evaluate_hwgen_net(net, empty), std::invalid_argument);
}

}  // namespace
