// Property suite 1: differential testing of the two accelerator-evaluation
// backends. The analytical CostModel (Timeloop/Accelergy-style) and the
// SystolicSimulator (ScaleSim-style) are independent implementations of the
// same machine; DANCE trains its evaluator against the first, so a silent
// divergence here corrupts every downstream co-search result. Randomized
// (layer, config) points are cross-checked through testing::cross_check
// (ideal-roofline lower bounds, exact explain()/layer_cost agreement, ratio
// tolerance bands, bit-identical shared area model).
#include <gtest/gtest.h>

#include <cmath>

#include "testing/generators.h"
#include "testing/oracles.h"
#include "testing/property.h"

// gtest's namespace is ::testing; alias ours to avoid ambiguity in TU scope.
namespace testing_ = dance::testing;

namespace {

using namespace dance;

struct CasePoint {
  accel::AcceleratorConfig config;
  accel::ConvShape shape;
};

testing_::Generator<CasePoint> case_gen() {
  testing_::Generator<CasePoint> gen;
  const auto cfg = testing_::accel_config_gen();
  const auto shp = testing_::conv_shape_gen();
  gen.sample = [cfg, shp](util::Rng& rng) {
    return CasePoint{cfg.sample(rng), shp.sample(rng)};
  };
  gen.shrink = [cfg, shp](const CasePoint& p) {
    std::vector<CasePoint> out;
    for (auto& s : shp.shrink(p.shape)) out.push_back({p.config, s});
    for (auto& c : cfg.shrink(p.config)) out.push_back({c, p.shape});
    return out;
  };
  gen.show = [cfg, shp](const CasePoint& p) {
    return cfg.show(p.config) + " x " + shp.show(p.shape);
  };
  return gen;
}

TEST(CostModelDifferential, BackendsAgreeOnRandomizedLayers) {
  const accel::CostModel model;
  const accel::SystolicSimulator sim;
  const auto result = testing_::check<CasePoint>(
      "cost-model vs systolic-sim cross-check", case_gen(),
      [&](const CasePoint& p, util::Rng&) {
        return testing_::cross_check_backends(model, sim, p.config, p.shape);
      });
  EXPECT_TRUE(result.ok) << result.report;
  EXPECT_GE(result.trials_run, 100);
}

TEST(CostModelDifferential, NetworkCostIsSumOfLayerCosts) {
  // Internal consistency of the analytical backend: whole-network latency
  // and energy must be the sum over layers, area workload-independent.
  const accel::CostModel model;
  const auto cfg = testing_::accel_config_gen();
  const auto shp = testing_::conv_shape_gen();

  testing_::Generator<CasePoint> gen = case_gen();
  const auto result = testing_::check<CasePoint>(
      "network_cost == sum(layer_cost)", gen,
      [&](const CasePoint& p, util::Rng& rng) -> std::string {
        std::vector<accel::ConvShape> layers{p.shape};
        const int extra = rng.randint(0, 3);
        for (int i = 0; i < extra; ++i) layers.push_back(shp.sample(rng));

        double cycles = 0.0;
        double energy = 0.0;
        for (const auto& l : layers) {
          const auto lc = model.layer_cost(p.config, l);
          cycles += lc.cycles;
          energy += lc.energy_pj;
        }
        const auto net = model.network_cost(p.config, layers);
        const double lat_ms = cycles / (model.tech().clock_ghz * 1e6);
        const double en_mj = energy * 1e-9;
        if (std::abs(net.latency_ms - lat_ms) > 1e-9 * (1.0 + lat_ms)) {
          return "latency is not the sum of layers: " +
                 std::to_string(net.latency_ms) + " vs " + std::to_string(lat_ms);
        }
        if (std::abs(net.energy_mj - en_mj) > 1e-9 * (1.0 + en_mj)) {
          return "energy is not the sum of layers";
        }
        if (net.area_mm2 != model.area_mm2(p.config)) {
          return "area depends on the workload";
        }
        return "";
      });
  EXPECT_TRUE(result.ok) << result.report;
  EXPECT_GE(result.trials_run, 100);
}

TEST(CostModelDifferential, MorePesNeverSlower) {
  // Monotonicity oracle: growing the array (same RF, same dataflow) must not
  // increase the *compute* roofline term — ceil quantization can plateau but
  // never rise with more parallel lanes.
  const accel::CostModel model;
  const auto result = testing_::check<CasePoint>(
      "compute cycles monotone in PE count", case_gen(),
      [&](const CasePoint& p, util::Rng&) -> std::string {
        if (p.config.pe_x >= 24 && p.config.pe_y >= 24) return "";
        accel::AcceleratorConfig bigger = p.config;
        if (bigger.pe_x < 24) {
          bigger.pe_x++;
        } else {
          bigger.pe_y++;
        }
        const double small_cycles = model.explain(p.config, p.shape).compute_cycles;
        const double big_cycles = model.explain(bigger, p.shape).compute_cycles;
        if (big_cycles > small_cycles * (1.0 + 1e-12)) {
          return "growing the PE array increased compute cycles: " +
                 std::to_string(small_cycles) + " -> " +
                 std::to_string(big_cycles) + " at " + bigger.to_string();
        }
        return "";
      });
  EXPECT_TRUE(result.ok) << result.report;
  EXPECT_GE(result.trials_run, 100);
}

TEST(CostModelDifferential, DeterministicUnderFixedSeed) {
  // The whole suite replays bit-identically for a fixed base seed: same
  // generated cases, same verdicts, same trial count.
  testing_::PbtConfig config;
  config.seed = 1234;
  config.trials = 25;
  const auto gen = case_gen();
  std::vector<std::string> first;
  std::vector<std::string> second;
  for (auto* log : {&first, &second}) {
    for (int t = 0; t < config.trials; ++t) {
      util::Rng rng(testing_::mix_seed(config.seed, static_cast<std::uint64_t>(t)));
      log->push_back(gen.show(gen.sample(rng)));
    }
  }
  EXPECT_EQ(first, second);
}

}  // namespace
