// Cross-module contracts that several components silently rely on.
#include <gtest/gtest.h>

#include "arch/cost_table.h"
#include "evalnet/hwgen_net.h"
#include "nas/supernet.h"

namespace {

using namespace dance;

TEST(Contracts, HwEncodingAlignsWithHwGenHeadRanges) {
  // HwSearchSpace::encode and HwGenNet::head_ranges must agree on the
  // PEX | PEY | RF | dataflow layout — the cross-entropy training slices
  // and the one-hot feature forwarding depend on it.
  hwgen::HwSearchSpace space;
  util::Rng rng(1);
  evalnet::HwGenNet net(10, space, rng);
  const auto ranges = net.head_ranges();
  const accel::AcceleratorConfig c{11, 23, 44, accel::Dataflow::kRowStationary};
  const auto enc = space.encode(c);
  // Exactly one hot bit inside each head range.
  for (int h = 0; h < 4; ++h) {
    const auto [begin, end] = ranges[static_cast<std::size_t>(h)];
    int ones = 0;
    for (int i = begin; i < end; ++i) {
      ones += enc[static_cast<std::size_t>(i)] == 1.0F ? 1 : 0;
    }
    EXPECT_EQ(ones, 1) << "head " << h;
  }
  // And the hot positions decode back to the right values.
  EXPECT_FLOAT_EQ(enc[static_cast<std::size_t>(ranges[0].first +
                                               space.pe_index(11))], 1.0F);
  EXPECT_FLOAT_EQ(enc[static_cast<std::size_t>(ranges[1].first +
                                               space.pe_index(23))], 1.0F);
  EXPECT_FLOAT_EQ(enc[static_cast<std::size_t>(ranges[2].first +
                                               space.rf_index(44))], 1.0F);
  EXPECT_FLOAT_EQ(
      enc[static_cast<std::size_t>(
          ranges[3].first +
          space.dataflow_index(accel::Dataflow::kRowStationary))],
      1.0F);
}

TEST(Contracts, SupernetEncodingMatchesArchSpaceEncoding) {
  // SuperNet::encode_gates over one-hot gates must equal ArchSpace::encode
  // for the same architecture — the evaluator is trained on the latter and
  // consumed with the former.
  arch::ArchSpace space(arch::cifar10_backbone());
  util::Rng rng(2);
  nas::SuperNetConfig cfg;
  cfg.num_blocks = space.num_searchable();
  nas::SuperNet net(cfg, rng);
  const arch::Architecture a = space.random(rng);
  const auto enc_space = space.encode(a);
  const auto enc_gates = nas::SuperNet::encode_gates(net.onehot_gates(a));
  ASSERT_EQ(static_cast<int>(enc_space.size()), enc_gates.value().cols());
  for (std::size_t i = 0; i < enc_space.size(); ++i) {
    EXPECT_FLOAT_EQ(enc_space[i], enc_gates.value()[i]);
  }
}

TEST(Contracts, ExpectedMetricsBoundedByExtremes) {
  // The expected metrics under any per-slot distribution lie between the
  // all-cheapest and all-most-expensive architectures' metrics (linearity
  // of the relaxation per config).
  arch::ArchSpace space(arch::cifar10_backbone());
  hwgen::HwSearchSpace hw_space(
      {.pe_min = 10, .pe_max = 10, .rf_min = 16, .rf_max = 16, .rf_step = 4});
  accel::CostModel model;
  arch::CostTable table(space, hw_space, model);

  // Uniform distribution over ops in every slot.
  std::vector<std::vector<double>> uniform(
      9, std::vector<double>(arch::kNumCandidateOps,
                             1.0 / arch::kNumCandidateOps));
  const auto expected = table.expected_metrics(0, uniform);

  double min_lat = 1e300;
  double max_lat = 0.0;
  for (const auto op : arch::kAllCandidateOps) {
    const auto m = table.metrics(0, arch::Architecture(9, op));
    min_lat = std::min(min_lat, m.latency_ms);
    max_lat = std::max(max_lat, m.latency_ms);
  }
  EXPECT_GE(expected.latency_ms, min_lat);
  EXPECT_LE(expected.latency_ms, max_lat);
}

TEST(Contracts, SuperNetBlockCountMustMatchBackbone) {
  // The DANCE loop feeds supernet gate encodings into an evaluator trained
  // on ArchSpace encodings; widths only line up when block counts match.
  arch::ArchSpace space(arch::cifar10_backbone());
  nas::SuperNetConfig cfg;
  cfg.num_blocks = space.num_searchable();
  EXPECT_EQ(cfg.num_blocks * arch::kNumCandidateOps, space.encoding_width());
}

}  // namespace
