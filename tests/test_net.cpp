// Unit tests for the dance::net socket layer: newline framing and partial
// read reassembly (LineReader), endpoint parsing, short-write handling, the
// epoll/worker-pool Server over both transports, per-connection response
// ordering, graceful drain, and the retrying Client. Suite names carry a
// lowercase "cluster_" prefix on purpose: `ctest -R cluster` selects the
// whole cluster stack (net + routing + snapshot suites), which CI runs
// under all three sanitizers.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

#include "net/client.h"
#include "net/frame.h"
#include "net/server.h"
#include "net/socket.h"

namespace {

using namespace dance;

std::string test_socket_path(const char* tag) {
  static std::atomic<int> counter{0};
  return "/tmp/dance_test_" + std::to_string(getpid()) + "_" + tag + "_" +
         std::to_string(counter.fetch_add(1)) + ".sock";
}

// --- framing ----------------------------------------------------------------

TEST(cluster_frame, EncodeAppendsNewlineAndRejectsEmbedded) {
  EXPECT_EQ(net::encode_line("abc"), "abc\n");
  EXPECT_EQ(net::encode_line(""), "\n");
  EXPECT_THROW((void)net::encode_line("a\nb"), net::NetError);
}

TEST(cluster_frame, LineReaderReassemblesArbitrarySplits) {
  const std::string stream = "first\nsecond line\r\n\nlast\n";
  const std::vector<std::string> expect = {"first", "second line", "", "last"};
  // Every split position of the stream must yield the same lines.
  for (std::size_t split = 0; split <= stream.size(); ++split) {
    net::LineReader reader(1 << 10);
    std::vector<std::string> got;
    reader.feed(stream.data(), split);
    while (auto line = reader.next_line()) got.push_back(*line);
    reader.feed(stream.data() + split, stream.size() - split);
    while (auto line = reader.next_line()) got.push_back(*line);
    EXPECT_EQ(got, expect) << "split at " << split;
  }
}

TEST(cluster_frame, LineReaderKeepsPartialTail) {
  net::LineReader reader(1 << 10);
  reader.feed("unfinished", 10);
  EXPECT_FALSE(reader.next_line().has_value());
  EXPECT_EQ(reader.buffered(), 10U);
  reader.feed("\n", 1);
  const auto line = reader.next_line();
  ASSERT_TRUE(line.has_value());
  EXPECT_EQ(*line, "unfinished");
  EXPECT_EQ(reader.buffered(), 0U);
}

TEST(cluster_frame, LineReaderRejectsOversizeLine) {
  net::LineReader reader(8);
  const std::string big(16, 'x');
  EXPECT_THROW(reader.feed(big.data(), big.size()), net::NetError);
}

// --- endpoints --------------------------------------------------------------

TEST(cluster_endpoint, ParsesTcpAndUnixForms) {
  const auto tcp = net::Endpoint::parse("tcp:127.0.0.1:9000");
  EXPECT_EQ(tcp.kind, net::Endpoint::Kind::kTcp);
  EXPECT_EQ(tcp.host, "127.0.0.1");
  EXPECT_EQ(tcp.port, 9000);
  EXPECT_EQ(tcp.to_string(), "tcp:127.0.0.1:9000");

  const auto uds = net::Endpoint::parse("unix:/tmp/x.sock");
  EXPECT_EQ(uds.kind, net::Endpoint::Kind::kUnix);
  EXPECT_EQ(uds.path, "/tmp/x.sock");
  EXPECT_EQ(uds.to_string(), "unix:/tmp/x.sock");

  EXPECT_THROW((void)net::Endpoint::parse("http:foo"), std::invalid_argument);
  EXPECT_THROW((void)net::Endpoint::parse("tcp:nohost"), std::invalid_argument);
  EXPECT_THROW((void)net::Endpoint::parse("unix:"), std::invalid_argument);
}

// --- write_all --------------------------------------------------------------

TEST(cluster_socket, WriteAllSurvivesShortWritesAndBackpressure) {
  int fds[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  net::Fd a(fds[0]);
  net::Fd b(fds[1]);
  // A payload far larger than the socket buffers forces short writes; the
  // reader drains concurrently so write_all has to ride backpressure.
  const std::string payload(4 << 20, 'q');
  std::string received;
  received.reserve(payload.size());
  std::thread reader([&]() {
    char buf[65536];
    std::size_t n;
    while ((n = net::read_some(b.get(), buf, sizeof(buf))) > 0) {
      received.append(buf, n);
    }
  });
  net::write_all(a.get(), payload.data(), payload.size());
  a.reset();  // EOF for the reader
  reader.join();
  EXPECT_EQ(received.size(), payload.size());
  EXPECT_EQ(received, payload);
}

// --- server -----------------------------------------------------------------

net::Server::Options fast_options() {
  net::Server::Options o;
  o.workers = 2;
  return o;
}

TEST(cluster_net, EchoOverUnixSocket) {
  net::Server server([](const std::string& line) { return "echo:" + line; },
                     fast_options());
  const auto ep = server.start(net::Endpoint::unix_path(test_socket_path("echo")));

  net::Client client(ep);
  EXPECT_EQ(client.roundtrip("hello"), "echo:hello");
  EXPECT_EQ(client.roundtrip("world"), "echo:world");
  server.stop();
  const auto stats = server.stats();
  EXPECT_EQ(stats.requests, 2U);
  EXPECT_EQ(stats.accepted, 1U);
}

TEST(cluster_net, EchoOverTcpEphemeralPort) {
  net::Server server([](const std::string& line) { return line + "!"; },
                     fast_options());
  const auto ep = server.start(net::Endpoint::tcp("127.0.0.1", 0));
  EXPECT_GT(ep.port, 0);  // port 0 resolved to a concrete one

  net::Client client(ep);
  EXPECT_EQ(client.roundtrip("tcp"), "tcp!");
  server.stop();
}

TEST(cluster_net, PerConnectionResponseOrderIsPreserved) {
  // A handler with randomized latency: if the server answered a
  // connection's lines out of order, the pipelined reads below would
  // mismatch. Many connections run concurrently to make reordering likely
  // if the per-connection ownership discipline were broken.
  net::Server::Options opts;
  opts.workers = 4;
  net::Server server(
      [](const std::string& line) {
        if (line.size() % 3 == 0) {
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
        return line;
      },
      opts);
  const auto ep = server.start(net::Endpoint::unix_path(test_socket_path("ord")));

  constexpr int kConns = 4;
  constexpr int kLines = 50;
  std::vector<std::thread> threads;
  std::atomic<int> mismatches{0};
  for (int c = 0; c < kConns; ++c) {
    threads.emplace_back([&, c]() {
      net::Fd fd = net::dial(ep);
      // Pipeline: write every line up front, then read all responses.
      std::string out;
      for (int i = 0; i < kLines; ++i) {
        out += "conn" + std::to_string(c) + ":" + std::to_string(i) + "\n";
      }
      net::write_all(fd.get(), out.data(), out.size());
      net::LineReader reader(1 << 16);
      for (int i = 0; i < kLines; ++i) {
        const auto line = net::read_line(fd.get(), reader);
        if (!line.has_value() ||
            *line != "conn" + std::to_string(c) + ":" + std::to_string(i)) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
  server.stop();
}

TEST(cluster_net, BlankHandlerReturnMeansNoResponse) {
  net::Server server(
      [](const std::string& line) {
        return line.empty() ? std::string() : "got:" + line;
      },
      fast_options());
  const auto ep = server.start(net::Endpoint::unix_path(test_socket_path("blank")));
  net::Fd fd = net::dial(ep);
  const std::string out = "\n\nreal\n";  // two no-response lines, one real
  net::write_all(fd.get(), out.data(), out.size());
  net::LineReader reader(1 << 10);
  const auto line = net::read_line(fd.get(), reader);
  ASSERT_TRUE(line.has_value());
  EXPECT_EQ(*line, "got:real");
  server.stop();
}

TEST(cluster_net, DrainAnswersEverythingInFlight) {
  std::atomic<int> handled{0};
  net::Server server(
      [&](const std::string& line) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        handled.fetch_add(1);
        return line;
      },
      fast_options());
  const auto ep = server.start(net::Endpoint::unix_path(test_socket_path("drain")));

  constexpr int kLines = 32;
  net::Fd fd = net::dial(ep);
  std::string out;
  for (int i = 0; i < kLines; ++i) out += std::to_string(i) + "\n";
  net::write_all(fd.get(), out.data(), out.size());

  // Reader thread keeps the socket drained so responses never block the
  // server; drain() must not return before all 32 lines are answered.
  std::atomic<int> responses{0};
  std::thread reader([&]() {
    net::LineReader r(1 << 10);
    for (int i = 0; i < kLines; ++i) {
      if (net::read_line(fd.get(), r).has_value()) responses.fetch_add(1);
    }
  });
  // Drain answers lines already read off the socket; wait for the first
  // response so the single write above is known to be buffered server-side
  // (one read picks up all 32 lines) before asking for a graceful drain.
  while (handled.load() == 0) std::this_thread::yield();
  EXPECT_TRUE(server.drain(/*timeout_ms=*/10000));
  EXPECT_EQ(handled.load(), kLines);  // zero in-flight after drain
  reader.join();
  EXPECT_EQ(responses.load(), kLines);
  server.stop();
  EXPECT_EQ(server.stats().requests, static_cast<std::uint64_t>(kLines));
}

TEST(cluster_net, ClientReconnectsAcrossServerRestart) {
  const std::string path = test_socket_path("restart");
  auto server = std::make_unique<net::Server>(
      [](const std::string& line) { return "v1:" + line; }, fast_options());
  (void)server->start(net::Endpoint::unix_path(path));

  net::Client::Options copts;
  copts.retries = 5;
  copts.backoff_us = 1000;
  net::Client client(net::Endpoint::unix_path(path), copts);
  EXPECT_EQ(client.roundtrip("a"), "v1:a");

  // Restart: the established connection dies; the next roundtrip must
  // redial and resend transparently.
  server->stop();
  server = std::make_unique<net::Server>(
      [](const std::string& line) { return "v2:" + line; }, fast_options());
  (void)server->start(net::Endpoint::unix_path(path));
  EXPECT_EQ(client.roundtrip("b"), "v2:b");
  EXPECT_GE(client.stats().retries, 1U);
  server->stop();
}

TEST(cluster_net, OversizeLineCountsProtocolErrorAndDropsConn) {
  net::Server::Options opts;
  opts.workers = 1;
  opts.max_line_bytes = 64;
  net::Server server([](const std::string& line) { return line; }, opts);
  const auto ep = server.start(net::Endpoint::unix_path(test_socket_path("big")));

  net::Fd fd = net::dial(ep);
  const std::string big(256, 'x');
  net::write_all(fd.get(), big.data(), big.size());
  // The server detaches the connection; reads eventually see EOF/reset.
  net::LineReader reader(1 << 10);
  EXPECT_FALSE([&]() {
    try {
      return net::read_line(fd.get(), reader).has_value();
    } catch (const net::NetError&) {
      return false;
    }
  }());
  server.stop();
  EXPECT_EQ(server.stats().protocol_errors, 1U);
}

}  // namespace
