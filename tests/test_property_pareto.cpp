// Property suite: the multi-objective co-search (search/pareto.h).
//   - pareto_front_indices agrees with a brute-force O(n^2) oracle on
//     randomized outcome sets with coarse-grid ties, exact duplicates and
//     occasional NaN/inf poisoning — non-dominated AND complete;
//   - a constrained search never returns a constraint-violating design when
//     a feasible one exists (randomized architectures and budgets over a
//     real CostTable), and matches the filtered exhaustive oracle;
//   - a history-penalty restart run is bit-reproducible for a fixed seed
//     (seeded from DANCE_PBT_SEED), and the parallel sweep is bit-identical
//     to the serial one — the latter doubles as the TSan hammer on the
//     shared frozen evaluator.
// Suite names carry the "pareto" tag so `ctest -R pareto` includes this
// fuzz next to the example-based suites in tests/test_pareto.cpp.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <set>
#include <string>
#include <vector>

#include "arch/cost_table.h"
#include "search/pareto.h"
#include "testing/property.h"

namespace testing_ = dance::testing;

namespace {

using namespace dance;

/// One shared small-space environment (see tests/test_property_costtable.cpp
/// for the sizing rationale).
struct Env {
  arch::ArchSpace arch_space{arch::cifar10_backbone()};
  hwgen::HwSearchSpace hw_space{
      {.pe_min = 8, .pe_max = 12, .rf_min = 8, .rf_max = 32, .rf_step = 8}};
  accel::CostModel model{};
  arch::CostTable table{arch_space, hw_space, model};
};

Env& env() {
  static Env e;
  return e;
}

// --- Front vs O(n^2) oracle -------------------------------------------------

struct OutcomeSet {
  std::vector<search::SearchOutcome> outcomes;
  std::string show() const {
    std::string out = "[";
    for (const auto& o : outcomes) {
      const auto obj = search::objectives(o);
      out += "(" + std::to_string(obj[0]) + "," + std::to_string(obj[1]) +
             "," + std::to_string(obj[2]) + "," + std::to_string(obj[3]) +
             ") ";
    }
    return out + "]";
  }
};

testing_::Generator<OutcomeSet> outcome_set_gen() {
  testing_::Generator<OutcomeSet> gen;
  gen.sample = [](util::Rng& rng) {
    OutcomeSet set;
    const int n = rng.randint(0, 20);
    for (int i = 0; i < n; ++i) {
      // Coarse integer grid in [0, 4] forces ties and duplicates; ~10% of
      // coordinates are poisoned with NaN or inf.
      const auto coord = [&rng]() -> double {
        const int roll = rng.randint(0, 19);
        if (roll == 0) return std::numeric_limits<double>::quiet_NaN();
        if (roll == 1) return std::numeric_limits<double>::infinity();
        return static_cast<double>(rng.randint(0, 4));
      };
      search::SearchOutcome o;
      o.val_accuracy_pct = 100.0 - coord();
      o.metrics = accel::CostMetrics{coord(), coord(), coord()};
      set.outcomes.push_back(o);
    }
    return set;
  };
  gen.shrink = [](const OutcomeSet& set) {
    std::vector<OutcomeSet> candidates;
    for (std::size_t i = 0; i < set.outcomes.size(); ++i) {
      OutcomeSet smaller = set;
      smaller.outcomes.erase(smaller.outcomes.begin() +
                             static_cast<std::ptrdiff_t>(i));
      candidates.push_back(std::move(smaller));
    }
    return candidates;
  };
  gen.show = [](const OutcomeSet& s) { return s.show(); };
  return gen;
}

TEST(pareto_property, FrontMatchesBruteForceOracle) {
  const auto result = testing_::check<OutcomeSet>(
      "pareto front vs O(n^2) oracle", outcome_set_gen(),
      [](const OutcomeSet& set, util::Rng&) -> std::string {
        const auto& xs = set.outcomes;
        const auto front = search::pareto_front_indices(xs);

        // Oracle membership, spelled out independently: keep i iff it is
        // finite, no other finite j strictly dominates it, and no earlier j
        // has the identical objective vector.
        std::set<std::size_t> expected;
        for (std::size_t i = 0; i < xs.size(); ++i) {
          bool finite = true;
          for (const double v : search::objectives(xs[i])) {
            finite = finite && std::isfinite(v);
          }
          if (!finite) continue;
          bool keep = true;
          for (std::size_t j = 0; j < xs.size() && keep; ++j) {
            if (j == i) continue;
            bool jfinite = true;
            for (const double v : search::objectives(xs[j])) {
              jfinite = jfinite && std::isfinite(v);
            }
            if (!jfinite) continue;
            const auto oi = search::objectives(xs[i]);
            const auto oj = search::objectives(xs[j]);
            bool le = true;
            bool lt = false;
            for (std::size_t k = 0; k < 4; ++k) {
              le = le && oj[k] <= oi[k];
              lt = lt || oj[k] < oi[k];
            }
            if (le && lt) keep = false;          // dominated
            if (j < i && oj == oi) keep = false; // duplicate, earlier wins
          }
          if (keep) expected.insert(i);
        }

        const std::set<std::size_t> got(front.begin(), front.end());
        if (got != expected) {
          return "front size " + std::to_string(got.size()) +
                 " != oracle size " + std::to_string(expected.size());
        }
        // Returned order must be (error, latency, energy, area, index)
        // ascending.
        for (std::size_t k = 1; k < front.size(); ++k) {
          const auto prev = search::objectives(xs[front[k - 1]]);
          const auto cur = search::objectives(xs[front[k]]);
          if (prev > cur ||
              (prev == cur && front[k - 1] > front[k])) {
            return "front not dominance-sorted at position " +
                   std::to_string(k);
          }
        }
        return "";
      });
  EXPECT_TRUE(result.ok) << result.report;
  EXPECT_GE(result.trials_run, 100);
}

// --- Constrained hardware generation vs the filtered oracle -----------------

struct ConstrainedCase {
  arch::Architecture a;
  double area_quantile;
  double latency_quantile;
  std::string show() const {
    std::string out = "arch=[";
    for (const auto op : a) out += std::to_string(static_cast<int>(op)) + ",";
    return out + "] area_q=" + std::to_string(area_quantile) +
           " lat_q=" + std::to_string(latency_quantile);
  }
};

TEST(pareto_property, ConstrainedSearchNeverViolatesWhenFeasibleExists) {
  Env& e = env();
  testing_::Generator<ConstrainedCase> gen;
  gen.sample = [&e](util::Rng& rng) {
    // Quantile-derived budgets span "everything fits" through "nothing
    // fits" (quantile 0 puts the budget below the cheapest configuration).
    return ConstrainedCase{e.arch_space.random(rng),
                           static_cast<double>(rng.uniform(0.0F, 1.0F)),
                           static_cast<double>(rng.uniform(0.0F, 1.0F))};
  };
  gen.show = [](const ConstrainedCase& c) { return c.show(); };

  const auto result = testing_::check<ConstrainedCase>(
      "constrained optimal vs filtered oracle", gen,
      [&e](const ConstrainedCase& c, util::Rng&) -> std::string {
        const auto all = e.table.evaluate_all(c.a);
        std::vector<double> areas;
        std::vector<double> lats;
        for (const auto& m : all) {
          areas.push_back(m.area_mm2);
          lats.push_back(m.latency_ms);
        }
        std::sort(areas.begin(), areas.end());
        std::sort(lats.begin(), lats.end());
        const auto quantile = [](const std::vector<double>& xs, double q) {
          const auto idx = static_cast<std::size_t>(
              q * static_cast<double>(xs.size() - 1));
          return xs[idx] * 0.999;  // nudge below so the boundary config is out
        };
        search::ConstraintSpec spec;
        spec.area_budget_mm2 = quantile(areas, c.area_quantile);
        spec.latency_slo_ms = quantile(lats, c.latency_quantile);

        bool any_feasible = false;
        for (const auto& m : all) any_feasible |= spec.feasible(m);

        const accel::HwCostFn base = accel::edap_cost();
        const auto picked =
            e.table.optimal(c.a, search::constrained_cost_fn(base, spec));
        const auto oracle = search::constrained_optimal(e.table, c.a, base, spec);

        if (any_feasible && !spec.feasible(picked.metrics)) {
          return "picked a violating configuration although a feasible one "
                 "exists (violation " +
                 std::to_string(spec.violation(picked.metrics)) + ")";
        }
        if (!(oracle.config == picked.config)) {
          return "penalized arg-min disagrees with the filtered oracle";
        }
        return "";
      });
  EXPECT_TRUE(result.ok) << result.report;
  EXPECT_GE(result.trials_run, 100);
}

// --- Search-level determinism (one-shot, seeded from DANCE_PBT_SEED) --------

/// Tiny task/evaluator shared by the (expensive) search determinism checks.
/// The evaluator stays untrained: determinism does not depend on its weights
/// being meaningful, and skipping the pre-training keeps the TSan job fast.
struct SearchEnv {
  data::SyntheticTask task;
  nas::SuperNetConfig net_config;
  evalnet::Evaluator evaluator;

  SearchEnv()
      : evaluator(make_evaluator()) {
    data::SyntheticTaskConfig dcfg;
    dcfg.input_dim = 12;
    dcfg.num_classes = 6;
    dcfg.train_samples = 256;
    dcfg.val_samples = 96;
    task = data::make_synthetic_task(dcfg);
    net_config.input_dim = 12;
    net_config.num_classes = 6;
    net_config.width = 16;
    net_config.num_blocks = 9;
  }

  static evalnet::Evaluator make_evaluator() {
    util::Rng rng(5);
    evalnet::Evaluator::Options eopts;
    eopts.hwgen.hidden_dim = 16;
    eopts.cost.hidden_dim = 16;
    return evalnet::Evaluator(env().arch_space.encoding_width(),
                              env().hw_space, rng, eopts);
  }
};

SearchEnv& search_env() {
  static SearchEnv e;
  return e;
}

search::DanceOptions tiny_base(std::uint64_t seed) {
  search::DanceOptions base;
  base.search_epochs = 2;
  base.warmup_epochs = 1;
  base.batch_size = 128;
  base.retrain.epochs = 2;
  base.seed = seed;
  return base;
}

std::string compare_outcomes(const search::SearchOutcome& a,
                             const search::SearchOutcome& b,
                             const std::string& what) {
  if (a.architecture != b.architecture) return what + ": architectures differ";
  if (!(a.hardware == b.hardware)) return what + ": hardware differs";
  if (a.metrics.latency_ms != b.metrics.latency_ms ||
      a.metrics.energy_mj != b.metrics.energy_mj ||
      a.metrics.area_mm2 != b.metrics.area_mm2) {
    return what + ": metrics differ bitwise";
  }
  if (a.val_accuracy_pct != b.val_accuracy_pct) {
    return what + ": retrained accuracy differs bitwise";
  }
  return "";
}

TEST(pareto_property, HistoryPenaltyRestartsAreBitReproducible) {
  Env& e = env();
  SearchEnv& se = search_env();
  search::RestartOptions opts;
  opts.base = tiny_base(testing_::PbtConfig::from_env().seed);
  opts.restarts = 2;
  opts.history = true;
  opts.history_scale = 0.5;

  const auto run1 =
      search::run_restarts(se.task, e.table, se.evaluator, se.net_config, opts);
  const auto run2 =
      search::run_restarts(se.task, e.table, se.evaluator, se.net_config, opts);
  ASSERT_EQ(run1.outcomes.size(), run2.outcomes.size());
  for (std::size_t i = 0; i < run1.outcomes.size(); ++i) {
    const std::string err = compare_outcomes(
        run1.outcomes[i], run2.outcomes[i], "restart " + std::to_string(i));
    EXPECT_TRUE(err.empty()) << err;
  }
  EXPECT_EQ(run1.front, run2.front);
  EXPECT_EQ(run1.distinct_architectures, run2.distinct_architectures);
  EXPECT_DOUBLE_EQ(run1.mean_pairwise_arch_distance,
                   run2.mean_pairwise_arch_distance);
}

TEST(pareto_property, ParallelSweepBitIdenticalToSerial) {
  // Also the TSan hammer: the parallel run drives concurrent searches
  // through the one shared frozen evaluator.
  Env& e = env();
  SearchEnv& se = search_env();
  search::ParetoOptions opts;
  opts.base = tiny_base(testing_::PbtConfig::from_env().seed ^ 0xA5A5);
  const std::vector<float> ladder = {0.0F, 0.7F, 1.4F};
  opts.sweep = search::lambda2_sweep(ladder);

  opts.parallel = false;
  const auto serial =
      search::ParetoCoSearch(se.task, e.table, se.evaluator, se.net_config,
                             opts)
          .run();
  opts.parallel = true;
  const auto parallel =
      search::ParetoCoSearch(se.task, e.table, se.evaluator, se.net_config,
                             opts)
          .run();

  ASSERT_EQ(serial.points.size(), parallel.points.size());
  for (std::size_t i = 0; i < serial.points.size(); ++i) {
    const std::string err =
        compare_outcomes(serial.points[i].outcome, parallel.points[i].outcome,
                         "sweep entry " + std::to_string(i));
    EXPECT_TRUE(err.empty()) << err;
    EXPECT_EQ(serial.points[i].on_front, parallel.points[i].on_front);
  }
  EXPECT_EQ(serial.front, parallel.front);
}

}  // namespace
