// Sharded serve cluster: a router process consistent-hashing cost queries
// across N shard processes, each running its own serve::Service behind a
// socket server speaking the serve_jsonl line protocol.
//
// Default role spawns the whole cluster: fork+exec N shard processes
// (--role=shard, one unix socket each), wait for them to come up, then run
// the router on --listen. SIGTERM/SIGINT triggers the graceful path: the
// router drains in-flight forwards, each shard drains its queue (saving its
// cache snapshot when --snapshot-dir is set), and the parent reaps the
// children — no request received before the signal is dropped.
//
// Roles:
//   (default)            router + N forked shards
//   --role=shard         one shard (internal; spawned by the router role)
//   --client             stdin/stdout front-end: forward each line to
//                        --connect and print the response — serve_jsonl
//                        with the service behind a socket (the CI smoke
//                        byte-diffs the two)
//
// Flags:
//   --shards=N           shard count                      (default 2)
//   --listen=EP          router endpoint: tcp:HOST:PORT or unix:PATH
//                        (default unix:/tmp/dance_cluster_<pid>.sock)
//   --connect=EP         client mode: where the router listens
//   --backend=exact|surrogate   per-shard backend          (default exact)
//   --small              tiny hardware space (fast startup; CI smoke)
//   --table=PATH         every shard mmaps the compiled DCTB cost table at
//                        PATH (costtable_compile) instead of building its
//                        own copy: zero per-shard build time and one shared
//                        physical copy of the table across the cluster
//                        (exact backend only)
//   --snapshot-dir=DIR   per-shard warm-start snapshots (shard_<id>.snap)
//   --registry=DIR       registry mode: every shard serves pinned,
//                        generation-scoped queries out of the checkpoint
//                        registry in DIR (docs/registry.md). SIGHUP to the
//                        router hot-reloads every shard; --backend and
//                        --snapshot-dir do not apply.
//   --model=NAME         registry mode: default model        (default
//                        "default"; requests may override per line)
//   --shard-id=K         internal (shard role)
//
// Example:
//   ./build/examples/serve_cluster --shards=2 --small \
//       --listen=unix:/tmp/dance.sock &
//   ./build/examples/serve_cluster --client --connect=unix:/tmp/dance.sock \
//       < queries.jsonl
//   kill -TERM %1
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "arch/cost_artifact.h"
#include "arch/cost_table.h"
#include "cluster/router.h"
#include "cluster/shard.h"
#include "evalnet/evaluator.h"
#include "fault/fault.h"
#include "net/client.h"
#include "net/socket.h"
#include "registry/registry.h"
#include "registry/serving.h"
#include "registry/shadow.h"
#include "serve/backend.h"
#include "serve/service.h"
#include "serve/wire.h"
#include "util/env.h"

namespace {

using namespace dance;

const char* flag_value(const char* arg, const char* flag) {
  const std::size_t n = std::strlen(flag);
  return std::strncmp(arg, flag, n) == 0 ? arg + n : nullptr;
}

struct Args {
  std::string role = "router";
  int shards = 2;
  int shard_id = -1;
  std::string listen;
  std::string connect;
  std::string backend = "exact";
  std::string snapshot_dir;
  std::string registry_dir;
  std::string model = "default";
  std::string table_path;
  bool small = false;
};

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--shards=N] [--listen=EP] [--backend=exact|"
               "surrogate] [--small] [--snapshot-dir=DIR]\n"
               "       %s [--shards=N] [--listen=EP] --registry=DIR "
               "[--model=NAME] [--small]\n"
               "       %s --client --connect=EP\n"
               "  EP is tcp:HOST:PORT or unix:PATH\n",
               argv0, argv0, argv0);
  return 2;
}

// --- signals -> self-pipe ---------------------------------------------------
// The handler only writes one byte; all shutdown/reload logic runs on the
// main thread, blocked in read(2) on the pipe. SIGTERM/SIGINT write
// kSignalStop; SIGHUP writes kSignalReload (registry hot reload — the
// router forwards it to every shard, shards re-read the MANIFEST).

constexpr char kSignalStop = 1;
constexpr char kSignalReload = 2;

int g_signal_pipe[2] = {-1, -1};

void on_signal(int sig) {
  const char byte = sig == SIGHUP ? kSignalReload : kSignalStop;
  // Best effort; a full pipe already means a pending wakeup.
  (void)!write(g_signal_pipe[1], &byte, 1);
}

void arm_signal_pipe() {
  if (pipe(g_signal_pipe) != 0) {
    std::perror("pipe");
    std::exit(1);
  }
  struct sigaction sa{};
  sa.sa_handler = on_signal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESTART;
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGHUP, &sa, nullptr);
  signal(SIGPIPE, SIG_IGN);
}

char wait_for_signal() {
  char byte = kSignalStop;
  while (read(g_signal_pipe[0], &byte, 1) < 0 && errno == EINTR) {
  }
  return byte;
}

// --- shard backend construction ---------------------------------------------
// Mirrors serve_jsonl's --backend handling; every shard builds the same
// backend so the cluster's answers match the single-process baseline.

struct ShardStack {
  arch::ArchSpace arch_space{arch::cifar10_backbone()};
  hwgen::HwSearchSpace hw_space;
  accel::CostModel model;  ///< consulted only while building the table
  std::unique_ptr<arch::CostProvider> table;
  std::unique_ptr<evalnet::Evaluator> evaluator;
  std::unique_ptr<serve::CostQueryBackend> backend;
  std::unique_ptr<serve::Service> service;

  ShardStack(const std::string& backend_name, bool small,
             const std::string& table_path) {
    if (small) {
      hw_space = hwgen::HwSearchSpace({.pe_min = 8, .pe_max = 12, .rf_min = 8,
                                       .rf_max = 32, .rf_step = 8});
    }
    if (backend_name == "exact") {
      // --table: mmap the compiled artifact (shared pages, no build);
      // otherwise every shard builds its own private copy.
      table = table_path.empty()
                  ? std::unique_ptr<arch::CostProvider>(
                        std::make_unique<arch::CostTable>(arch_space, hw_space,
                                                          model))
                  : arch::load_cost_table(table_path, arch_space);
      backend =
          std::make_unique<serve::ExactBackend>(*table, accel::edap_cost());
    } else {
      util::Rng rng(17);  // serve_jsonl's seed: identical untrained weights
      evaluator = std::make_unique<evalnet::Evaluator>(
          arch_space.encoding_width(), hw_space, rng);
      backend = std::make_unique<serve::SurrogateBackend>(*evaluator);
    }
    service = std::make_unique<serve::Service>(*backend);
  }
};

std::string shard_socket_path(const net::Endpoint& listen, int shard_id) {
  const std::string base = listen.kind == net::Endpoint::Kind::kUnix
                               ? listen.path
                               : "/tmp/dance_cluster_" +
                                     std::to_string(getpid());
  return base + ".shard" + std::to_string(shard_id);
}

// --- roles ------------------------------------------------------------------

// Registry-mode shard: the same ShardServer transport, but every line goes
// through the registry front-end (pin -> generation-scoped cache -> wire)
// via Options::handler_override instead of the plain pipeline. SIGHUP
// (forwarded by the router) hot-reloads the MANIFEST without stopping the
// server; in-flight queries finish on the generation they pinned.
int run_shard_registry(const Args& args) {
  arm_signal_pipe();
  arch::ArchSpace arch_space(arch::cifar10_backbone());
  hwgen::HwSearchSpace hw_space;
  if (args.small) {
    hw_space = hwgen::HwSearchSpace({.pe_min = 8, .pe_max = 12, .rf_min = 8,
                                     .rf_max = 32, .rf_step = 8});
  }
  registry::ModelRegistry reg(args.registry_dir, hw_space);
  registry::RegistryBackend backend;
  serve::Service service(backend);
  std::unique_ptr<registry::ShadowMirror> shadow;
  const auto shadow_opts = registry::ShadowMirror::Options::from_env();
  if (shadow_opts.pct > 0.0) {
    shadow = std::make_unique<registry::ShadowMirror>(reg, shadow_opts);
  }
  registry::Frontend frontend(reg, service, args.model, shadow.get());

  cluster::ShardServer::Options opts = cluster::ShardServer::Options::from_env();
  // Generation-scoped cache keys don't fit the snapshot format's
  // width-derived layout; registry shards always start cold.
  opts.snapshot_path.clear();
  opts.handler_override = [&frontend, &arch_space](const std::string& line) {
    return frontend.answer_line(line, arch_space);
  };
  cluster::ShardServer shard(service, arch_space, opts);
  const net::Endpoint bound = shard.start(net::Endpoint::parse(args.listen));
  std::fprintf(stderr,
               "[shard %d] serving on %s (registry=%s, model=%s, live gen "
               "%llu)\n",
               args.shard_id, bound.to_string().c_str(),
               args.registry_dir.c_str(), args.model.c_str(),
               static_cast<unsigned long long>(
                   reg.live_generation(args.model)));

  for (;;) {
    const char byte = wait_for_signal();
    if (byte != kSignalReload) break;
    try {
      const std::size_t swaps = frontend.reload();
      std::fprintf(stderr, "[shard %d] SIGHUP reload: %zu swaps\n",
                   args.shard_id, swaps);
    } catch (const std::exception& e) {
      // A half-published MANIFEST must not take the shard down; keep
      // serving the pinned generations and retry on the next HUP.
      std::fprintf(stderr, "[shard %d] reload failed: %s\n", args.shard_id,
                   e.what());
    }
  }
  shard.drain_and_stop();
  if (shadow != nullptr) {
    shadow->drain();
    const auto s = shadow->stats();
    std::fprintf(stderr,
                 "[shard %d] shadow: sampled=%llu mirrored=%llu "
                 "disagreements=%llu agreement_rate=%.3f\n",
                 args.shard_id, static_cast<unsigned long long>(s.sampled),
                 static_cast<unsigned long long>(s.mirrored),
                 static_cast<unsigned long long>(s.disagreements),
                 s.agreement_rate());
  }
  const auto stats = shard.net_stats();
  std::fprintf(stderr,
               "[shard %d] drained: requests=%llu accepted=%llu "
               "protocol_errors=%llu\n",
               args.shard_id, static_cast<unsigned long long>(stats.requests),
               static_cast<unsigned long long>(stats.accepted),
               static_cast<unsigned long long>(stats.protocol_errors));
  std::fputs(service.stats_report().c_str(), stderr);
  return 0;
}

int run_shard(const Args& args) {
  if (!args.registry_dir.empty()) return run_shard_registry(args);
  arm_signal_pipe();
  ShardStack stack(args.backend, args.small, args.table_path);
  cluster::ShardServer::Options opts = cluster::ShardServer::Options::from_env();
  if (!args.snapshot_dir.empty()) {
    opts.snapshot_path =
        args.snapshot_dir + "/shard_" + std::to_string(args.shard_id) + ".snap";
  }
  cluster::ShardServer shard(*stack.service, stack.arch_space, opts);
  const net::Endpoint bound = shard.start(net::Endpoint::parse(args.listen));
  std::fprintf(stderr, "[shard %d] serving on %s (backend=%s, warm=%zu)\n",
               args.shard_id, bound.to_string().c_str(), args.backend.c_str(),
               shard.warm_entries());

  while (wait_for_signal() == kSignalReload) {
    // Plain shards have nothing to reload; ignore and keep serving.
  }
  shard.drain_and_stop();
  const auto stats = shard.net_stats();
  std::fprintf(stderr,
               "[shard %d] drained: requests=%llu accepted=%llu "
               "protocol_errors=%llu\n",
               args.shard_id, static_cast<unsigned long long>(stats.requests),
               static_cast<unsigned long long>(stats.accepted),
               static_cast<unsigned long long>(stats.protocol_errors));
  std::fputs(stack.service->stats_report().c_str(), stderr);
  return 0;
}

int run_router(const Args& args, const char* argv0) {
  arm_signal_pipe();
  const net::Endpoint listen = net::Endpoint::parse(args.listen);

  // Spawn the shards: fork+exec ourselves with --role=shard. Each shard gets
  // its own unix socket derived from the router's endpoint.
  std::vector<pid_t> children;
  std::vector<cluster::Router::ShardAddress> addresses;
  for (int id = 0; id < args.shards; ++id) {
    const std::string sock = shard_socket_path(listen, id);
    std::vector<std::string> child_args = {
        argv0,
        "--role=shard",
        "--shard-id=" + std::to_string(id),
        "--listen=unix:" + sock,
        "--backend=" + args.backend,
    };
    if (args.small) child_args.push_back("--small");
    if (!args.table_path.empty()) {
      child_args.push_back("--table=" + args.table_path);
    }
    if (!args.snapshot_dir.empty()) {
      child_args.push_back("--snapshot-dir=" + args.snapshot_dir);
    }
    if (!args.registry_dir.empty()) {
      child_args.push_back("--registry=" + args.registry_dir);
      child_args.push_back("--model=" + args.model);
    }
    const pid_t pid = fork();
    if (pid < 0) {
      std::perror("fork");
      return 1;
    }
    if (pid == 0) {
      std::vector<char*> argv;
      argv.reserve(child_args.size() + 1);
      for (auto& a : child_args) argv.push_back(a.data());
      argv.push_back(nullptr);
      execv(argv0, argv.data());
      std::perror("execv");
      _exit(127);
    }
    children.push_back(pid);
    addresses.push_back({id, net::Endpoint::parse("unix:" + sock)});
  }

  // Readiness: a successful dial to every shard (dial_retry spins while the
  // child is still building its cost table).
  for (const auto& a : addresses) {
    try {
      net::Fd probe = net::dial_retry(a.endpoint, /*timeout_ms=*/60000);
    } catch (const net::NetError& e) {
      std::fprintf(stderr, "[serve_cluster] shard %d never came up: %s\n",
                   a.id, e.what());
      for (pid_t pid : children) kill(pid, SIGKILL);
      return 1;
    }
  }

  // The router never queries a backend; it only needs the space for
  // parsing/validation. Every process uses the same fixed backbone.
  arch::ArchSpace space(arch::cifar10_backbone());
  cluster::Router router(space, std::move(addresses));
  const net::Endpoint bound = router.start(listen);
  std::fprintf(stderr, "[serve_cluster] router on %s, %d shards ready\n",
               bound.to_string().c_str(), args.shards);

  for (;;) {
    const char byte = wait_for_signal();
    if (byte != kSignalReload) break;
    // Registry hot reload: fan the HUP out to every shard; each re-reads
    // the shared MANIFEST. The router itself holds no model state.
    std::fprintf(stderr, "[serve_cluster] SIGHUP -> %zu shards\n",
                 children.size());
    for (pid_t pid : children) kill(pid, SIGHUP);
  }
  std::fprintf(stderr, "[serve_cluster] draining...\n");
  router.drain_and_stop();
  for (pid_t pid : children) kill(pid, SIGTERM);
  for (pid_t pid : children) {
    int status = 0;
    while (waitpid(pid, &status, 0) < 0 && errno == EINTR) {
    }
  }
  const auto stats = router.net_stats();
  std::fprintf(stderr,
               "[serve_cluster] drained: requests=%llu accepted=%llu\n",
               static_cast<unsigned long long>(stats.requests),
               static_cast<unsigned long long>(stats.accepted));
  return 0;
}

int run_client(const Args& args) {
  signal(SIGPIPE, SIG_IGN);
  net::Client client(net::Endpoint::parse(args.connect));
  std::string line;
  while (std::getline(std::cin, line)) {
    if (serve::wire::is_blank(line)) continue;  // serve_jsonl skips these too
    const std::string response = client.roundtrip(line);
    std::fwrite(response.data(), 1, response.size(), stdout);
    std::fputc('\n', stdout);
    std::fflush(stdout);
  }
  const auto& stats = client.stats();
  std::fprintf(stderr, "[client] roundtrips=%llu retries=%llu failures=%llu\n",
               static_cast<unsigned long long>(stats.roundtrips),
               static_cast<unsigned long long>(stats.retries),
               static_cast<unsigned long long>(stats.failures));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  bool client_mode = false;
  for (int i = 1; i < argc; ++i) {
    if (const char* v = flag_value(argv[i], "--role=")) {
      args.role = v;
    } else if (const char* v = flag_value(argv[i], "--shards=")) {
      args.shards = std::atoi(v);
    } else if (const char* v = flag_value(argv[i], "--shard-id=")) {
      args.shard_id = std::atoi(v);
    } else if (const char* v = flag_value(argv[i], "--listen=")) {
      args.listen = v;
    } else if (const char* v = flag_value(argv[i], "--connect=")) {
      args.connect = v;
    } else if (const char* v = flag_value(argv[i], "--backend=")) {
      args.backend = v;
    } else if (const char* v = flag_value(argv[i], "--snapshot-dir=")) {
      args.snapshot_dir = v;
    } else if (const char* v = flag_value(argv[i], "--registry=")) {
      args.registry_dir = v;
    } else if (const char* v = flag_value(argv[i], "--model=")) {
      args.model = v;
    } else if (const char* v = flag_value(argv[i], "--table=")) {
      args.table_path = v;
    } else if (std::strcmp(argv[i], "--small") == 0) {
      args.small = true;
    } else if (std::strcmp(argv[i], "--client") == 0) {
      client_mode = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return usage(argv[0]);
    }
  }
  if (args.backend != "exact" && args.backend != "surrogate") {
    std::fprintf(stderr, "--backend must be exact or surrogate\n");
    return 2;
  }
  if (!args.registry_dir.empty() && !args.snapshot_dir.empty()) {
    std::fprintf(stderr,
                 "--registry and --snapshot-dir are mutually exclusive "
                 "(registry cache keys are generation-scoped)\n");
    return 2;
  }
  if (client_mode) {
    if (args.connect.empty()) {
      std::fprintf(stderr, "--client needs --connect=EP\n");
      return 2;
    }
    return run_client(args);
  }
  if (args.listen.empty()) {
    args.listen = "unix:/tmp/dance_cluster_" + std::to_string(getpid()) +
                  ".sock";
  }
  if (args.role == "shard") {
    if (args.shard_id < 0) {
      std::fprintf(stderr, "--role=shard needs --shard-id=K\n");
      return 2;
    }
    return run_shard(args);
  }
  if (args.role != "router") {
    std::fprintf(stderr, "--role must be router or shard\n");
    return 2;
  }
  if (args.shards < 1) {
    std::fprintf(stderr, "--shards must be >= 1\n");
    return 2;
  }
  return run_router(args, argv[0]);
}
