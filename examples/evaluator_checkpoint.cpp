// Train the differentiable evaluator once, checkpoint it, and reload it in a
// fresh model — the workflow for reusing one evaluator across many searches
// (e.g. a lambda2 sweep like Fig. 5).
//
// Run: ./build/examples/evaluator_checkpoint
#include <cstdio>

#include "arch/cost_table.h"
#include "evalnet/trainer.h"
#include "nn/serialize.h"

int main() {
  using namespace dance;

  arch::ArchSpace arch_space(arch::cifar10_backbone());
  hwgen::HwSearchSpace hw_space;
  accel::CostModel model;
  arch::CostTable table(arch_space, hw_space, model);

  util::Rng rng(15);
  auto ds = evalnet::generate_evaluator_dataset(table, accel::edap_cost(), 2000,
                                                rng);
  auto [train, val] = evalnet::split_dataset(ds, 0.85);

  // Train a small evaluator.
  evalnet::Evaluator::Options opts;
  opts.hwgen.hidden_dim = 64;
  opts.cost.hidden_dim = 96;
  evalnet::Evaluator evaluator(arch_space.encoding_width(), hw_space, rng, opts);
  evalnet::TrainOptions hw_opts;
  hw_opts.epochs = 12;
  hw_opts.lr = 0.05F;
  evalnet::train_hwgen_net(evaluator.hwgen_net(), train, val, hw_opts);
  evalnet::TrainOptions cost_opts;
  cost_opts.epochs = 12;
  cost_opts.lr = 4e-3F;
  evalnet::train_cost_net(evaluator.cost_net(), train, val, cost_opts);
  const auto trained = evalnet::evaluate_evaluator(evaluator, val, rng);
  std::printf("trained evaluator accuracy: lat %.1f%% energy %.1f%% area %.1f%%\n",
              trained.metric_accuracy_pct[0], trained.metric_accuracy_pct[1],
              trained.metric_accuracy_pct[2]);

  // Checkpoint both sub-networks (parameters, batch-norm running statistics
  // and the cost net's output scale).
  evaluator.hwgen_net().save("evaluator_hwgen.ckpt");
  evaluator.cost_net().save("evaluator_cost.ckpt");
  std::printf("saved evaluator_hwgen.ckpt and evaluator_cost.ckpt\n");

  // Reload into a freshly constructed evaluator (same configuration).
  util::Rng rng2(999);  // different init seed on purpose
  evalnet::Evaluator reloaded(arch_space.encoding_width(), hw_space, rng2, opts);
  reloaded.hwgen_net().load("evaluator_hwgen.ckpt");
  reloaded.cost_net().load("evaluator_cost.ckpt");
  const auto reloaded_eval = evalnet::evaluate_evaluator(reloaded, val, rng2);
  std::printf("reloaded evaluator accuracy: lat %.1f%% energy %.1f%% area %.1f%%\n",
              reloaded_eval.metric_accuracy_pct[0],
              reloaded_eval.metric_accuracy_pct[1],
              reloaded_eval.metric_accuracy_pct[2]);
  return 0;
}
