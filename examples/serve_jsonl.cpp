// JSON-lines front-end for the dance::serve cost-query service.
//
// Reads one request per line from stdin, answers one JSON object per line on
// stdout, and prints the service stats report to stderr at EOF. Request
// forms (whitespace-insensitive, keys in any order):
//   {"id": 1, "arch": [0, 3, 6, 0, 1, 2, 4, 5, 0]}   per-slot op indices
//   {"id": 2, "encoding": [1.0, 0.0, ...]}           raw evaluator encoding
// Response:
//   {"id": 1, "latency_ms": ..., "energy_mj": ..., "area_mm2": ...,
//    "pe_x": 16, "pe_y": 16, "rf_size": 32, "dataflow": "RS",
//    "cached": false, "degraded": false}
// Malformed lines get {"id": <id or -1>, "error": "..."} and processing
// continues. "degraded" marks answers that came from the resilience
// fallback tier instead of the primary backend.
//
// Flags:
//   --backend=exact|surrogate  ground-truth LUT (default) or the evaluator
//                              (the surrogate's inference tier follows
//                              DANCE_INFER=autograd|fused|int8 and is printed
//                              in the banner and the EOF report)
//   --small                    tiny hardware space (fast startup; CI smoke)
//   --table=PATH               mmap a compiled DCTB cost table (see
//                              costtable_compile) instead of rebuilding the
//                              exact table at startup; the artifact defines
//                              the hardware space. Answers are byte-identical
//                              to the in-memory build. Used by the exact
//                              backend and the --recalibrate oracle.
//   --hwgen-ckpt=PATH          load HwGenNet weights  (surrogate only)
//   --cost-ckpt=PATH           load CostNet weights   (surrogate only)
//   --fault=SPEC               install a fault injector (same grammar as
//                              DANCE_FAULT; overrides the env variable)
//   --resilient                wrap the backend in serve::ResilientBackend
//                              (deadlines/retries/breaker via the
//                              DANCE_SERVE_* knobs); with --backend=exact a
//                              surrogate fallback tier is built so faulted
//                              queries degrade instead of erroring
//   --registry=DIR             serve from a model registry (docs/registry.md)
//                              instead of a single backend: requests pin the
//                              live generation of --model (or the request's
//                              own "model" field), {"cmd": "reload"} and
//                              SIGHUP hot-swap externally published
//                              generations, and responses carry
//                              "generation". Mutually exclusive with
//                              --backend/--fault/--resilient. Shadow A/B
//                              mirroring follows DANCE_REGISTRY_SHADOW_PCT.
//   --model=NAME               default model for --registry (default:
//                              "default")
//   --recalibrate              with --registry: label served queries with
//                              exact ground truth on a background thread and
//                              publish fine-tuned candidate generations
//                              (DANCE_REGISTRY_RECAL_* knobs)
//
// Examples:
//   printf '{"id":1,"arch":[0,1,2,3,4,5,6,0,1]}\n' |
//     ./build/examples/serve_jsonl --backend=exact --small
//   ./build/examples/serve_jsonl --backend=surrogate
//     --hwgen-ckpt=evaluator_hwgen.ckpt --cost-ckpt=evaluator_cost.ckpt < q.jsonl
//   ./build/examples/serve_jsonl --small --resilient
//     --fault='backend:error=0.2,latency=0.1:2000' < q.jsonl
#include <csignal>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "accel/cost_function.h"
#include "arch/cost_artifact.h"
#include "arch/cost_table.h"
#include "evalnet/evaluator.h"
#include "fault/fault.h"
#include "fault/faulty_backend.h"
#include "infer/plan.h"
#include "obs/span.h"
#include "registry/recalibrate.h"
#include "registry/registry.h"
#include "registry/serving.h"
#include "registry/shadow.h"
#include "serve/backend.h"
#include "serve/resilient.h"
#include "serve/service.h"
#include "serve/wire.h"
#include "util/env.h"

namespace {

using namespace dance;

volatile std::sig_atomic_t g_reload_requested = 0;

void on_sighup(int) { g_reload_requested = 1; }

/// SIGHUP triggers a registry reload between lines. SA_RESTART keeps the
/// blocking getline from failing with EINTR mid-stream.
void arm_sighup() {
  struct sigaction sa{};
  sa.sa_handler = on_sighup;
  sa.sa_flags = SA_RESTART;
  sigemptyset(&sa.sa_mask);
  sigaction(SIGHUP, &sa, nullptr);
}

// Request parsing and response serialization live in serve::wire — the same
// code path the socket servers (src/net, src/cluster) speak, so this
// stdin front-end and a cluster shard produce byte-identical lines.

const char* flag_value(const char* arg, const char* flag) {
  const std::size_t n = std::strlen(flag);
  return std::strncmp(arg, flag, n) == 0 ? arg + n : nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  std::string backend_name = "exact";
  std::string hwgen_ckpt;
  std::string cost_ckpt;
  std::string fault_spec_text;
  std::string registry_dir;
  std::string model_name = "default";
  std::string table_path;
  bool small = false;
  bool resilient_mode = false;
  bool recalibrate = false;
  for (int i = 1; i < argc; ++i) {
    if (const char* v = flag_value(argv[i], "--backend=")) {
      backend_name = v;
    } else if (const char* v = flag_value(argv[i], "--hwgen-ckpt=")) {
      hwgen_ckpt = v;
    } else if (const char* v = flag_value(argv[i], "--cost-ckpt=")) {
      cost_ckpt = v;
    } else if (const char* v = flag_value(argv[i], "--fault=")) {
      fault_spec_text = v;
    } else if (const char* v = flag_value(argv[i], "--registry=")) {
      registry_dir = v;
    } else if (const char* v = flag_value(argv[i], "--model=")) {
      model_name = v;
    } else if (const char* v = flag_value(argv[i], "--table=")) {
      table_path = v;
    } else if (std::strcmp(argv[i], "--recalibrate") == 0) {
      recalibrate = true;
    } else if (std::strcmp(argv[i], "--resilient") == 0) {
      resilient_mode = true;
    } else if (std::strcmp(argv[i], "--small") == 0) {
      small = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }
  if (backend_name != "exact" && backend_name != "surrogate") {
    std::fprintf(stderr, "--backend must be exact or surrogate\n");
    return 2;
  }
  if (!registry_dir.empty() &&
      (resilient_mode || !fault_spec_text.empty())) {
    std::fprintf(stderr,
                 "--registry is mutually exclusive with --fault/--resilient\n");
    return 2;
  }
  if (recalibrate && registry_dir.empty()) {
    std::fprintf(stderr, "--recalibrate requires --registry\n");
    return 2;
  }

  arch::ArchSpace arch_space(arch::cifar10_backbone());
  const hwgen::HwSearchSpace hw_space =
      small ? hwgen::HwSearchSpace({.pe_min = 8, .pe_max = 12, .rf_min = 8,
                                    .rf_max = 32, .rf_step = 8})
            : hwgen::HwSearchSpace();
  accel::CostModel model;

  // Ground-truth table: mmap the compiled artifact when --table is given
  // (zero build time, pages shared with every other process mapping it),
  // otherwise build in memory. Both answer bit-identically.
  const auto make_table = [&]() -> std::unique_ptr<arch::CostProvider> {
    if (!table_path.empty()) {
      auto mapped = arch::load_cost_table(table_path, arch_space);
      std::fprintf(stderr,
                   "[serve_jsonl] mapped cost table %s (%zu bytes, checksum "
                   "%016llx)\n",
                   mapped->path().c_str(), mapped->mapped_bytes(),
                   static_cast<unsigned long long>(mapped->checksum()));
      return mapped;
    }
    return std::make_unique<arch::CostTable>(arch_space, hw_space, model);
  };

  if (!registry_dir.empty()) {
    // Registry serving path: pinned generations, hot reload, shadow A/B,
    // optional continual recalibration. Kept as its own straight-line block
    // — the single-backend path below stays byte-identical to what the
    // cluster smoke diffs against.
    try {
      registry::ModelRegistry reg(registry_dir, hw_space);
      registry::RegistryBackend backend;
      serve::Service service(backend);  // options from DANCE_SERVE_* env

      const auto shadow_opts = registry::ShadowMirror::Options::from_env();
      std::unique_ptr<registry::ShadowMirror> shadow;
      if (shadow_opts.pct > 0.0) {
        shadow = std::make_unique<registry::ShadowMirror>(reg, shadow_opts);
      }
      std::unique_ptr<arch::CostProvider> oracle_table;
      std::unique_ptr<serve::ExactBackend> oracle;
      std::unique_ptr<registry::Recalibrator> recal;
      if (recalibrate) {
        oracle_table = make_table();
        oracle = std::make_unique<serve::ExactBackend>(*oracle_table,
                                                       accel::edap_cost());
        recal = std::make_unique<registry::Recalibrator>(
            reg, model_name, *oracle, registry::Recalibrator::Options::from_env());
      }
      registry::Frontend frontend(reg, service, model_name, shadow.get(),
                                  recal.get());
      arm_sighup();
      std::fprintf(stderr,
                   "[serve_jsonl] registry=%s model=%s live_generation=%llu "
                   "shadow_pct=%g recalibrate=%s, reading JSON lines from "
                   "stdin (SIGHUP or {\"cmd\": \"reload\"} hot-swaps)\n",
                   registry_dir.c_str(), model_name.c_str(),
                   static_cast<unsigned long long>(
                       reg.live_generation(model_name)),
                   shadow_opts.pct, recalibrate ? "on" : "off");

      obs::ScopedSpan stream_span("serve_jsonl.stream");
      std::string line;
      while (std::getline(std::cin, line)) {
        if (g_reload_requested != 0) {
          g_reload_requested = 0;
          try {
            const std::size_t swaps = frontend.reload();
            std::fprintf(stderr, "[serve_jsonl] SIGHUP reload: %zu swaps\n",
                         swaps);
          } catch (const std::exception& e) {
            std::fprintf(stderr, "[serve_jsonl] SIGHUP reload failed: %s\n",
                         e.what());
          }
        }
        const std::string out = frontend.answer_line(line, arch_space);
        if (out.empty()) continue;
        std::fwrite(out.data(), 1, out.size(), stdout);
        std::fputc('\n', stdout);
        std::fflush(stdout);
      }

      if (shadow) {
        shadow->drain();
        const auto ss = shadow->stats();
        std::fprintf(stderr,
                     "[serve_jsonl] shadow: sampled=%llu mirrored=%llu "
                     "disagreements=%llu agreement_rate=%.3f "
                     "order_agreement_rate=%.3f\n",
                     static_cast<unsigned long long>(ss.sampled),
                     static_cast<unsigned long long>(ss.mirrored),
                     static_cast<unsigned long long>(ss.disagreements),
                     ss.agreement_rate(), ss.order_agreement_rate());
      }
      if (recal) {
        const std::uint64_t published = recal->train_now();  // final flush
        const auto rs = recal->stats();
        std::fprintf(stderr,
                     "[serve_jsonl] recalibration: observed=%llu labeled=%llu "
                     "trainings=%llu last_candidate_generation=%llu%s\n",
                     static_cast<unsigned long long>(rs.observed),
                     static_cast<unsigned long long>(rs.labeled),
                     static_cast<unsigned long long>(rs.trainings),
                     static_cast<unsigned long long>(rs.last_published),
                     published != 0 ? " (published at EOF)" : "");
      }
      std::fputs(service.stats_report().c_str(), stderr);
      return 0;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "[serve_jsonl] registry startup failed: %s\n",
                   e.what());
      return 1;
    }
  }

  // Built lazily per backend: the LUT is only worth building for --backend=exact.
  std::unique_ptr<arch::CostProvider> table;
  std::unique_ptr<evalnet::Evaluator> evaluator;
  std::unique_ptr<serve::CostQueryBackend> backend;
  serve::SurrogateBackend* surrogate = nullptr;  // for tier reporting
  if (backend_name == "exact") {
    try {
      table = make_table();
    } catch (const arch::ArtifactError& e) {
      std::fprintf(stderr,
                   "[serve_jsonl] cost-table load failed: %s (path=%s "
                   "offset=%zu expected=%016llx actual=%016llx)\n",
                   e.what(), e.path().c_str(), e.offset(),
                   static_cast<unsigned long long>(e.expected_checksum()),
                   static_cast<unsigned long long>(e.actual_checksum()));
      return 1;
    }
    backend = std::make_unique<serve::ExactBackend>(*table, accel::edap_cost());
  } else {
    util::Rng rng(17);
    evaluator = std::make_unique<evalnet::Evaluator>(
        arch_space.encoding_width(), hw_space, rng);
    if (!hwgen_ckpt.empty()) evaluator->hwgen_net().load(hwgen_ckpt);
    if (!cost_ckpt.empty()) evaluator->cost_net().load(cost_ckpt);
    if (hwgen_ckpt.empty() && cost_ckpt.empty()) {
      std::fprintf(stderr,
                   "[serve_jsonl] note: surrogate backend running with "
                   "untrained weights (pass --hwgen-ckpt/--cost-ckpt)\n");
    }
    auto sb = std::make_unique<serve::SurrogateBackend>(*evaluator);
    surrogate = sb.get();
    backend = std::move(sb);
  }

  // Fault injection: --fault wins over DANCE_FAULT; either installs the
  // injector globally (arming the pool-site hook when the spec asks for it)
  // and decorates the backend with the "backend"-site chaos wrapper.
  std::shared_ptr<fault::FaultInjector> injector;
  try {
    if (!fault_spec_text.empty()) {
      injector = std::make_shared<fault::FaultInjector>(
          fault::FaultSpec::parse(fault_spec_text),
          util::env_u64("DANCE_FAULT_SEED", 0xFA17));
      fault::install_global(injector);
    } else {
      injector = fault::install_from_env();
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bad fault spec: %s\n", e.what());
    return 2;
  }
  std::unique_ptr<fault::FaultyBackend> faulty;
  serve::CostQueryBackend* primary = backend.get();
  if (injector) {
    faulty = std::make_unique<fault::FaultyBackend>(*backend, injector);
    primary = faulty.get();
    std::fprintf(stderr, "[serve_jsonl] fault injection armed (seed=0x%llx)\n",
                 static_cast<unsigned long long>(injector->seed()));
  }

  // Resilience: decorate the (possibly faulty) primary with deadlines,
  // retries and the breaker. With an exact primary, an untrained-or-loaded
  // surrogate acts as the degradation tier; a surrogate primary has no
  // cheaper tier to fall back to.
  std::unique_ptr<serve::SurrogateBackend> fallback;
  std::unique_ptr<serve::ResilientBackend> resilient;
  serve::CostQueryBackend* serving = primary;
  if (resilient_mode) {
    if (backend_name == "exact") {
      util::Rng rng(17);
      evaluator = std::make_unique<evalnet::Evaluator>(
          arch_space.encoding_width(), hw_space, rng);
      if (!hwgen_ckpt.empty()) evaluator->hwgen_net().load(hwgen_ckpt);
      if (!cost_ckpt.empty()) evaluator->cost_net().load(cost_ckpt);
      fallback = std::make_unique<serve::SurrogateBackend>(*evaluator);
    }
    resilient = std::make_unique<serve::ResilientBackend>(
        *primary, fallback.get(), serve::ResilientBackend::Options::from_env());
    serving = resilient.get();
  }

  serve::Service service(*serving);  // options from DANCE_SERVE_* env
  if (surrogate != nullptr) {
    std::fprintf(stderr,
                 "[serve_jsonl] backend=%s (inference tier: %s, DANCE_INFER), "
                 "reading JSON lines from stdin\n",
                 serving->name(), infer::to_string(surrogate->infer_mode()));
  } else {
    std::fprintf(stderr,
                 "[serve_jsonl] backend=%s, reading JSON lines from stdin\n",
                 serving->name());
  }
  const std::string metrics_path = util::env_string("DANCE_METRICS_JSON", "");
  if (!metrics_path.empty()) {
    std::fprintf(stderr, "[serve_jsonl] metrics will be exported to %s at exit\n",
                 metrics_path.c_str());
  }

  obs::ScopedSpan stream_span("serve_jsonl.stream");
  std::string line;
  while (std::getline(std::cin, line)) {
    const std::string out = serve::wire::answer_line(line, arch_space, service);
    if (out.empty()) continue;  // blank input line: no response owed
    std::fwrite(out.data(), 1, out.size(), stdout);
    std::fputc('\n', stdout);
    std::fflush(stdout);
  }

  std::fputs(service.stats_report().c_str(), stderr);
  if (surrogate != nullptr) {
    std::fprintf(stderr, "[serve_jsonl] surrogate inference tier: %s\n",
                 infer::to_string(surrogate->infer_mode()));
  }
  if (fallback) {
    std::fprintf(stderr, "[serve_jsonl] fallback surrogate inference tier: %s\n",
                 infer::to_string(fallback->infer_mode()));
  }
  if (resilient) {
    const auto rs = resilient->stats();
    std::fprintf(stderr,
                 "[serve_jsonl] resilience: primary_calls=%llu retries=%llu "
                 "fallbacks=%llu deadline_expired=%llu breaker_opens=%llu "
                 "breaker_closes=%llu shed=%llu\n",
                 static_cast<unsigned long long>(rs.primary_calls),
                 static_cast<unsigned long long>(rs.retries),
                 static_cast<unsigned long long>(rs.fallbacks),
                 static_cast<unsigned long long>(rs.deadline_expired),
                 static_cast<unsigned long long>(rs.breaker_opens),
                 static_cast<unsigned long long>(rs.breaker_closes),
                 static_cast<unsigned long long>(service.stats().batcher.shed));
  }
  if (injector) {
    const auto fs = injector->stats();
    std::fprintf(stderr,
                 "[serve_jsonl] faults injected: visits=%llu errors=%llu "
                 "latency_spikes=%llu hangs=%llu\n",
                 static_cast<unsigned long long>(fs.visits),
                 static_cast<unsigned long long>(fs.errors),
                 static_cast<unsigned long long>(fs.latency_spikes),
                 static_cast<unsigned long long>(fs.hangs));
    fault::install_global(nullptr);  // disarm the pool hook before teardown
  }
  return 0;
}
