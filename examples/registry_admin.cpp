// Admin CLI for the dance::registry checkpoint registry (docs/registry.md).
//
// Commands:
//   registry_admin init DIR
//       Create an empty registry MANIFEST in DIR (DIR must exist).
//   registry_admin publish DIR MODEL [--small] [--candidate] [--seed=N]
//                  [--hwgen-ckpt=PATH] [--cost-ckpt=PATH]
//       Publish the next generation of MODEL: an evaluator is constructed
//       (seeded randomly with --seed, or loaded from the given checkpoints),
//       its checkpoints are written into DIR and the MANIFEST is updated
//       atomically. By default the generation goes live; --candidate stages
//       it for shadow A/B instead. Running servers pick the change up via
//       SIGHUP or the {"cmd": "reload"} wire command.
//   registry_admin promote DIR MODEL
//       Promote MODEL's staged candidate to live.
//   registry_admin list DIR
//       Print every model with its generations and live/candidate marks.
//
// The tool shares the serving processes' registry code, so everything it
// writes is exactly what a shard will load.
#include <cstdio>
#include <cstring>
#include <string>

#include "arch/space.h"
#include "evalnet/evaluator.h"
#include "hwgen/search_space.h"
#include "registry/registry.h"
#include "util/rng.h"

namespace {

using namespace dance;

const char* flag_value(const char* arg, const char* flag) {
  const std::size_t n = std::strlen(flag);
  return std::strncmp(arg, flag, n) == 0 ? arg + n : nullptr;
}

hwgen::HwSearchSpace make_hw_space(bool small) {
  return small ? hwgen::HwSearchSpace({.pe_min = 8, .pe_max = 12, .rf_min = 8,
                                       .rf_max = 32, .rf_step = 8})
               : hwgen::HwSearchSpace();
}

int usage() {
  std::fprintf(stderr,
               "usage: registry_admin init DIR\n"
               "       registry_admin publish DIR MODEL [--small] "
               "[--candidate] [--seed=N] [--hwgen-ckpt=P] [--cost-ckpt=P]\n"
               "       registry_admin promote DIR MODEL [--small]\n"
               "       registry_admin list DIR [--small]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string cmd = argv[1];
  const std::string dir = argv[2];

  try {
    if (cmd == "init") {
      registry::ModelRegistry::init(dir);
      std::printf("initialized empty registry in %s\n", dir.c_str());
      return 0;
    }

    std::string model_name;
    std::string hwgen_ckpt;
    std::string cost_ckpt;
    bool small = false;
    bool candidate = false;
    unsigned long long seed = 17;
    for (int i = 3; i < argc; ++i) {
      if (std::strcmp(argv[i], "--small") == 0) {
        small = true;
      } else if (std::strcmp(argv[i], "--candidate") == 0) {
        candidate = true;
      } else if (const char* v = flag_value(argv[i], "--seed=")) {
        seed = std::strtoull(v, nullptr, 0);
      } else if (const char* v = flag_value(argv[i], "--hwgen-ckpt=")) {
        hwgen_ckpt = v;
      } else if (const char* v = flag_value(argv[i], "--cost-ckpt=")) {
        cost_ckpt = v;
      } else if (model_name.empty() && argv[i][0] != '-') {
        model_name = argv[i];
      } else {
        std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
        return 2;
      }
    }
    // `list`/`promote` allow MODEL as argv[3] too (parsed above); `publish`
    // requires it.
    if ((cmd == "publish" || cmd == "promote") && model_name.empty()) {
      if (argc > 3 && argv[3][0] != '-') model_name = argv[3];
      if (model_name.empty()) return usage();
    }

    const hwgen::HwSearchSpace hw_space = make_hw_space(small);
    registry::ModelRegistry reg(dir, hw_space);

    if (cmd == "publish") {
      arch::ArchSpace arch_space(arch::cifar10_backbone());
      util::Rng rng(seed);
      evalnet::Evaluator evaluator(arch_space.encoding_width(), hw_space, rng);
      if (!hwgen_ckpt.empty()) evaluator.hwgen_net().load(hwgen_ckpt);
      if (!cost_ckpt.empty()) evaluator.cost_net().load(cost_ckpt);
      const std::uint64_t gen = reg.publish(model_name, evaluator, candidate);
      std::printf("published %s generation %llu (%s)\n", model_name.c_str(),
                  static_cast<unsigned long long>(gen),
                  candidate ? "candidate" : "live");
      return 0;
    }
    if (cmd == "promote") {
      const std::uint64_t gen = reg.promote(model_name);
      if (gen == 0) {
        std::fprintf(stderr, "%s has no staged candidate\n",
                     model_name.c_str());
        return 1;
      }
      std::printf("promoted %s generation %llu to live\n", model_name.c_str(),
                  static_cast<unsigned long long>(gen));
      return 0;
    }
    if (cmd == "list") {
      for (const auto& name : reg.models()) {
        std::printf("%s live=%llu\n", name.c_str(),
                    static_cast<unsigned long long>(reg.live_generation(name)));
      }
      return 0;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "registry_admin: %s\n", e.what());
    return 1;
  }
  return usage();
}
