// Multi-objective Pareto co-search from the command line (docs/search.md).
//
// One invocation sweeps a lambda2 ladder across the pool, applies optional
// hard constraints (die-area budget, latency SLO), prints the non-dominated
// (error, latency, energy, area) front, verifies every front point against
// the exact cost provider, and writes the front CSV. With --restarts N it
// additionally compares history-penalty restarts against plain multi-seed
// restarts (the VLSIGR-style negotiated-congestion exploration).
//
// Usage:
//   pareto_search [--small] [--lambda2 0.5,1,2,4] [--area-budget MM2]
//                 [--latency-slo MS] [--restarts N] [--out front.csv]
//
// --small shrinks every knob for a seconds-scale smoke (the CI release job
// runs exactly that and asserts the CSV is non-empty and dominance-sorted).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "arch/cost_table.h"
#include "evalnet/trainer.h"
#include "search/pareto.h"
#include "util/table.h"

namespace {

using namespace dance;
using search::CostKind;

struct Args {
  bool small = false;
  std::vector<float> lambda2 = {0.5F, 1.0F, 2.0F, 4.0F};
  double area_budget = std::numeric_limits<double>::infinity();
  double latency_slo = std::numeric_limits<double>::infinity();
  int restarts = 0;
  std::string out = "pareto_front.csv";
};

std::vector<float> parse_list(const char* s) {
  std::vector<float> values;
  std::string token;
  for (const char* p = s;; ++p) {
    if (*p == ',' || *p == '\0') {
      if (!token.empty()) values.push_back(std::stof(token));
      token.clear();
      if (*p == '\0') break;
    } else {
      token += *p;
    }
  }
  return values;
}

Args parse_args(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", argv[i]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--small") == 0) {
      args.small = true;
    } else if (std::strcmp(argv[i], "--lambda2") == 0) {
      args.lambda2 = parse_list(value());
    } else if (std::strcmp(argv[i], "--area-budget") == 0) {
      args.area_budget = std::atof(value());
    } else if (std::strcmp(argv[i], "--latency-slo") == 0) {
      args.latency_slo = std::atof(value());
    } else if (std::strcmp(argv[i], "--restarts") == 0) {
      args.restarts = std::atoi(value());
    } else if (std::strcmp(argv[i], "--out") == 0) {
      args.out = value();
    } else {
      std::fprintf(stderr,
                   "usage: pareto_search [--small] [--lambda2 a,b,c] "
                   "[--area-budget MM2] [--latency-slo MS] [--restarts N] "
                   "[--out FILE]\n");
      std::exit(2);
    }
  }
  return args;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);

  // --- Spaces, task, cost table. ---
  arch::ArchSpace arch_space(arch::cifar10_backbone());
  const hwgen::HwSearchSpace hw_space =
      args.small ? hwgen::HwSearchSpace({.pe_min = 8, .pe_max = 12,
                                         .rf_min = 8, .rf_max = 32,
                                         .rf_step = 8})
                 : hwgen::HwSearchSpace();
  accel::CostModel model;
  arch::CostTable table(arch_space, hw_space, model);

  data::SyntheticTaskConfig dcfg;
  if (args.small) {
    dcfg.input_dim = 12;
    dcfg.num_classes = 6;
    dcfg.train_samples = 512;
    dcfg.val_samples = 192;
  }
  const data::SyntheticTask task = data::make_synthetic_task(dcfg);

  nas::SuperNetConfig net_config;
  net_config.input_dim = dcfg.input_dim;
  net_config.num_classes = dcfg.num_classes;
  net_config.width = args.small ? 24 : 48;
  net_config.num_blocks = arch_space.num_searchable();

  // --- Evaluator pre-training (shared by every sweep entry). ---
  util::Rng rng(23);
  evalnet::Evaluator::Options eopts;
  if (args.small) {
    eopts.hwgen.hidden_dim = 32;
    eopts.cost.hidden_dim = 32;
  }
  evalnet::Evaluator evaluator(arch_space.encoding_width(), hw_space, rng,
                               eopts);
  {
    auto ds = evalnet::generate_evaluator_dataset(
        table, search::make_cost_fn(CostKind::kEdap),
        args.small ? 200 : 4000, rng);
    auto [train, val] = evalnet::split_dataset(ds, 0.85);
    evalnet::TrainOptions topts;
    topts.epochs = args.small ? 6 : 20;
    evalnet::train_hwgen_net(evaluator.hwgen_net(), train, val, topts);
    topts.lr = 3e-3F;
    evalnet::train_cost_net(evaluator.cost_net(), train, val, topts);
  }

  // --- The Pareto sweep. ---
  search::ParetoOptions opts;
  opts.base.search_epochs = args.small ? 3 : 12;
  opts.base.warmup_epochs = args.small ? 1 : 3;
  opts.base.retrain.epochs = args.small ? 4 : 20;
  opts.base.constraints.area_budget_mm2 = args.area_budget;
  opts.base.constraints.latency_slo_ms = args.latency_slo;
  opts.sweep = search::lambda2_sweep(args.lambda2);

  std::printf("sweeping %zu lambda2 values (%s, %s)...\n", opts.sweep.size(),
              opts.parallel ? "parallel" : "serial",
              opts.base.constraints.enabled() ? "constrained"
                                              : "unconstrained");
  const search::ParetoResult result =
      search::ParetoCoSearch(task, table, evaluator, net_config, opts).run();

  util::Table t({"", "lambda2", "Error(%)", "Lat(ms)", "E(mJ)", "Area(mm2)",
                 "Feasible"});
  for (std::size_t i = 0; i < result.points.size(); ++i) {
    const auto& p = result.points[i];
    t.add_row({p.on_front ? "front" : (p.feasible ? "" : "infeasible"),
               util::Table::fmt(p.scalarization.lambda2, 2),
               util::Table::fmt(p.outcome.error_pct(), 2),
               util::Table::fmt(p.outcome.metrics.latency_ms, 3),
               util::Table::fmt(p.outcome.metrics.energy_mj, 3),
               util::Table::fmt(p.outcome.metrics.area_mm2, 2),
               p.feasible ? "yes" : "no"});
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("front size: %zu of %zu swept points\n", result.front.size(),
              result.points.size());

  // --- Verification against the exact provider. ---
  const std::string err =
      search::verify_front(result, table, opts.base.constraints);
  if (!err.empty()) {
    std::printf("front verification FAILED: %s\n", err.c_str());
    return 1;
  }
  std::printf("front verified: every point non-dominated against the "
              "constrained exhaustive sweep\n");

  search::write_front_csv(args.out, result);
  std::printf("front CSV written to %s\n", args.out.c_str());

  // --- Optional: history-penalty vs multi-seed restarts. ---
  if (args.restarts > 0) {
    std::printf("\ncomparing %d history-penalty restarts against plain "
                "multi-seed restarts...\n", args.restarts);
    search::RestartOptions ropts;
    ropts.base = opts.base;
    ropts.restarts = args.restarts;
    ropts.history = false;
    const auto multiseed = search::run_restarts(task, table, evaluator,
                                                net_config, ropts);
    ropts.history = true;
    const auto history = search::run_restarts(task, table, evaluator,
                                              net_config, ropts);
    util::Table rt({"Series", "DistinctArch", "DistinctHW", "MeanArchDist",
                    "FrontSize"});
    const auto row = [&rt](const char* name,
                           const search::RestartResult& r) {
      rt.add_row({name, std::to_string(r.distinct_architectures),
                  std::to_string(r.distinct_hardware),
                  util::Table::fmt(r.mean_pairwise_arch_distance, 3),
                  std::to_string(r.front.size())});
    };
    row("multi-seed", multiseed);
    row("history-penalty", history);
    std::printf("%s\n", rt.to_string().c_str());
    std::printf("expected shape: the history series explores more distinct "
                "(arch, HW) regions at comparable front quality.\n");
  }
  return 0;
}
