// Explore the accelerator design space for a fixed network:
//   - compare the three dataflows on each layer type,
//   - extract the 3-objective Pareto front over the whole space,
//   - show how the optimal accelerator changes with the cost function.
//
// Run: ./build/examples/hw_design_space
#include <algorithm>
#include <cstdio>

#include "accel/cost_function.h"
#include "arch/space.h"
#include "hwgen/exhaustive.h"
#include "hwgen/pareto.h"
#include "util/table.h"

int main() {
  using namespace dance;

  arch::ArchSpace space(arch::cifar10_backbone());
  // A mixed architecture: some big ops, some small, one skipped layer.
  arch::Architecture net = {
      arch::CandidateOp::kMbConv3x3E3, arch::CandidateOp::kMbConv5x5E6,
      arch::CandidateOp::kZero,        arch::CandidateOp::kMbConv3x3E6,
      arch::CandidateOp::kMbConv7x7E3, arch::CandidateOp::kMbConv3x3E3,
      arch::CandidateOp::kMbConv5x5E3, arch::CandidateOp::kZero,
      arch::CandidateOp::kMbConv7x7E6};
  const auto layers = space.lower(net);

  accel::CostModel model;

  // 1. Dataflow comparison on a fixed 16x16 array.
  std::printf("Dataflow comparison on a 16x16 array, RF 32 (whole network):\n");
  util::Table df_table({"Dataflow", "Latency(ms)", "Energy(mJ)"});
  for (const auto df : accel::kAllDataflows) {
    const accel::AcceleratorConfig cfg{16, 16, 32, df};
    const auto m = model.network_cost(cfg, layers);
    df_table.add_row({accel::to_string(df), util::Table::fmt(m.latency_ms, 3),
                      util::Table::fmt(m.energy_mj, 3)});
  }
  std::printf("%s\n", df_table.to_string().c_str());

  // 2. Pareto front over the whole space.
  hwgen::HwSearchSpace hw_space;
  hwgen::ExhaustiveSearch search(hw_space, model);
  const auto all = search.evaluate_all(layers);
  auto front = hwgen::pareto_front(hw_space, all);
  std::sort(front.begin(), front.end(), [](const auto& a, const auto& b) {
    return a.metrics.latency_ms < b.metrics.latency_ms;
  });
  std::printf("Pareto front: %zu of %zu configurations. A sample:\n",
              front.size(), hw_space.size());
  util::Table pf({"Config", "Latency(ms)", "Energy(mJ)", "Area(mm^2)"});
  const std::size_t step = std::max<std::size_t>(1, front.size() / 8);
  for (std::size_t i = 0; i < front.size(); i += step) {
    const auto& p = front[i];
    pf.add_row({p.config.to_string(), util::Table::fmt(p.metrics.latency_ms, 3),
                util::Table::fmt(p.metrics.energy_mj, 3),
                util::Table::fmt(p.metrics.area_mm2, 2)});
  }
  std::printf("%s\n", pf.to_string().c_str());

  // 3. Optimal accelerator per cost function.
  std::printf("Optimal accelerator per cost function:\n");
  util::Table opt({"Cost function", "Config", "Latency(ms)", "Energy(mJ)",
                   "Area(mm^2)", "EDAP"});
  const auto report = [&](const char* name, const accel::HwCostFn& fn) {
    const auto best = search.run_precomputed(all, fn);
    opt.add_row({name, best.config.to_string(),
                 util::Table::fmt(best.metrics.latency_ms, 3),
                 util::Table::fmt(best.metrics.energy_mj, 3),
                 util::Table::fmt(best.metrics.area_mm2, 2),
                 util::Table::fmt(best.metrics.edap(), 3)});
  };
  report("EDAP", accel::edap_cost());
  report("linear (paper Table 2)", accel::linear_cost());
  report("latency-only", [](const accel::CostMetrics& m) { return m.latency_ms; });
  report("energy-only", [](const accel::CostMetrics& m) { return m.energy_mj; });
  report("area-only", [](const accel::CostMetrics& m) { return m.area_mm2; });
  std::printf("%s", opt.to_string().c_str());
  return 0;
}
