// Quickstart: evaluate a hand-picked network on a hand-picked accelerator,
// then let the exhaustive hardware generation tool find the optimum.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "accel/cost_function.h"
#include "accel/cost_model.h"
#include "arch/space.h"
#include "hwgen/exhaustive.h"

int main() {
  using namespace dance;

  // The CIFAR-10 ProxylessNAS-style backbone with a concrete choice of ops.
  arch::ArchSpace space(arch::cifar10_backbone());
  arch::Architecture net(static_cast<std::size_t>(space.num_searchable()),
                         arch::CandidateOp::kMbConv3x3E6);
  net[2] = arch::CandidateOp::kMbConv5x5E3;
  net[5] = arch::CandidateOp::kZero;

  const auto layers = space.lower(net);
  std::printf("Network: %d searchable layers, %zu conv shapes, %.1f MMACs\n",
              space.num_searchable(), layers.size(),
              static_cast<double>(space.macs(net)) / 1e6);

  // Evaluate on a fixed Eyeriss-like configuration.
  accel::CostModel model;
  const accel::AcceleratorConfig config{16, 16, 32,
                                        accel::Dataflow::kRowStationary};
  const accel::CostMetrics m = model.network_cost(config, layers);
  std::printf("\nOn %s:\n  latency %.3f ms | energy %.3f mJ | area %.2f mm^2 "
              "| EDAP %.2f\n",
              config.to_string().c_str(), m.latency_ms, m.energy_mj, m.area_mm2,
              m.edap());

  // Ask the hardware generation tool for the EDAP-optimal accelerator.
  hwgen::HwSearchSpace hw_space;
  hwgen::ExhaustiveSearch search(hw_space, model);
  const hwgen::HwSearchResult best = search.run(layers, accel::edap_cost());
  std::printf("\nEDAP-optimal accelerator (%zu configs searched): %s\n",
              hw_space.size(), best.config.to_string().c_str());
  std::printf("  latency %.3f ms | energy %.3f mJ | area %.2f mm^2 | EDAP %.2f\n",
              best.metrics.latency_ms, best.metrics.energy_mj,
              best.metrics.area_mm2, best.metrics.edap());
  return 0;
}
