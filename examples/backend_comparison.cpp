// Compare the two accelerator evaluation backends — the Timeloop-style
// analytical model and the ScaleSim-style systolic simulator — on the same
// network across dataflows and array sizes. The absolute numbers differ (one
// is closed-form, the other walks tiles and pays pipeline fill/drain), but
// the orderings that drive co-exploration agree.
//
// A closing section times the *surrogate* cost backend on its active
// inference tier (DANCE_INFER=autograd|fused|int8; the tier is printed in
// the banner and the end-of-run report).
//
// Run: ./build/examples/backend_comparison
#include <chrono>
#include <cstdio>
#include <memory>
#include <span>
#include <vector>

#include "accel/cost_model.h"
#include "accel/systolic_sim.h"
#include "arch/space.h"
#include "evalnet/evaluator.h"
#include "infer/plan.h"
#include "serve/backend.h"
#include "util/rng.h"
#include "util/table.h"

int main() {
  using namespace dance;

  arch::ArchSpace space(arch::cifar10_backbone());
  const arch::Architecture net(9, arch::CandidateOp::kMbConv5x5E3);
  const auto layers = space.lower(net);

  accel::CostModel model;
  accel::SystolicSimulator sim;

  std::printf("Backend comparison on %zu conv layers (%.1f MMACs)\n",
              layers.size(), static_cast<double>(space.macs(net)) / 1e6);
  std::printf("surrogate inference tier: %s (DANCE_INFER)\n\n",
              infer::to_string(infer::mode_from_env()));

  util::Table t({"Config", "Analytical lat(ms)", "Simulated lat(ms)",
                 "Analytical E(mJ)", "Simulated E(mJ)"});
  for (const auto df : accel::kAllDataflows) {
    for (const int pe : {8, 16, 24}) {
      const accel::AcceleratorConfig cfg{pe, pe, 32, df};
      const auto ana = model.network_cost(cfg, layers);
      const auto s = sim.simulate_network(cfg, layers);
      t.add_row({cfg.to_string(), util::Table::fmt(ana.latency_ms, 3),
                 util::Table::fmt(s.latency_ms, 3),
                 util::Table::fmt(ana.energy_mj, 3),
                 util::Table::fmt(s.energy_mj, 3)});
    }
  }
  std::printf("%s\n", t.to_string().c_str());

  // Per-layer bottleneck report from the analytical model's breakdown.
  std::printf("Per-layer bottlenecks on a 16x16 RS array (first 8 layers):\n");
  util::Table b({"Layer", "MACs(K)", "Bottleneck", "Compute(cyc)", "GB(cyc)",
                 "DRAM(cyc)"});
  const accel::AcceleratorConfig cfg{16, 16, 32,
                                     accel::Dataflow::kRowStationary};
  for (std::size_t i = 0; i < layers.size() && i < 8; ++i) {
    const auto bd = model.explain(cfg, layers[i]);
    b.add_row({layers[i].to_string().substr(0, 40),
               util::Table::fmt(static_cast<double>(layers[i].macs()) / 1e3, 0),
               bd.bottleneck(), util::Table::fmt(bd.compute_cycles, 0),
               util::Table::fmt(bd.gb_cycles, 0),
               util::Table::fmt(bd.dram_cycles, 0)});
  }
  std::printf("%s\n", b.to_string().c_str());

  // Surrogate backend on the active inference tier: time single-query
  // answers (untrained weights — the numbers are meaningless, the cost of
  // producing them is the point).
  {
    hwgen::HwSearchSpace hw_space;
    util::Rng rng(17);
    auto evaluator = std::make_unique<evalnet::Evaluator>(
        space.encoding_width(), hw_space, rng);
    serve::SurrogateBackend backend(*evaluator);
    std::vector<serve::Request> reqs;
    for (int i = 0; i < 256; ++i) {
      reqs.push_back(serve::Request{space.encode(space.random(rng))});
    }
    const auto start = std::chrono::steady_clock::now();
    std::size_t answered = 0;
    for (const auto& req : reqs) {
      answered +=
          backend.query_batch(std::span<const serve::Request>(&req, 1)).size();
    }
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    std::printf("Surrogate single-query cost on the '%s' tier: %zu queries "
                "in %.3f ms (%.0f QPS)\n",
                infer::to_string(backend.infer_mode()), answered, 1e3 * secs,
                static_cast<double>(answered) / secs);
    std::printf("[backend_comparison] active inference tier: %s\n",
                infer::to_string(backend.infer_mode()));
  }
  return 0;
}
