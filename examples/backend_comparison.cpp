// Compare the two accelerator evaluation backends — the Timeloop-style
// analytical model and the ScaleSim-style systolic simulator — on the same
// network across dataflows and array sizes. The absolute numbers differ (one
// is closed-form, the other walks tiles and pays pipeline fill/drain), but
// the orderings that drive co-exploration agree.
//
// Run: ./build/examples/backend_comparison
#include <cstdio>

#include "accel/cost_model.h"
#include "accel/systolic_sim.h"
#include "arch/space.h"
#include "util/table.h"

int main() {
  using namespace dance;

  arch::ArchSpace space(arch::cifar10_backbone());
  const arch::Architecture net(9, arch::CandidateOp::kMbConv5x5E3);
  const auto layers = space.lower(net);

  accel::CostModel model;
  accel::SystolicSimulator sim;

  std::printf("Backend comparison on %zu conv layers (%.1f MMACs)\n\n",
              layers.size(), static_cast<double>(space.macs(net)) / 1e6);

  util::Table t({"Config", "Analytical lat(ms)", "Simulated lat(ms)",
                 "Analytical E(mJ)", "Simulated E(mJ)"});
  for (const auto df : accel::kAllDataflows) {
    for (const int pe : {8, 16, 24}) {
      const accel::AcceleratorConfig cfg{pe, pe, 32, df};
      const auto ana = model.network_cost(cfg, layers);
      const auto s = sim.simulate_network(cfg, layers);
      t.add_row({cfg.to_string(), util::Table::fmt(ana.latency_ms, 3),
                 util::Table::fmt(s.latency_ms, 3),
                 util::Table::fmt(ana.energy_mj, 3),
                 util::Table::fmt(s.energy_mj, 3)});
    }
  }
  std::printf("%s\n", t.to_string().c_str());

  // Per-layer bottleneck report from the analytical model's breakdown.
  std::printf("Per-layer bottlenecks on a 16x16 RS array (first 8 layers):\n");
  util::Table b({"Layer", "MACs(K)", "Bottleneck", "Compute(cyc)", "GB(cyc)",
                 "DRAM(cyc)"});
  const accel::AcceleratorConfig cfg{16, 16, 32,
                                     accel::Dataflow::kRowStationary};
  for (std::size_t i = 0; i < layers.size() && i < 8; ++i) {
    const auto bd = model.explain(cfg, layers[i]);
    b.add_row({layers[i].to_string().substr(0, 40),
               util::Table::fmt(static_cast<double>(layers[i].macs()) / 1e3, 0),
               bd.bottleneck(), util::Table::fmt(bd.compute_cycles, 0),
               util::Table::fmt(bd.gb_cycles, 0),
               util::Table::fmt(bd.dram_cycles, 0)});
  }
  std::printf("%s", b.to_string().c_str());
  return 0;
}
