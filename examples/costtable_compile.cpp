// Offline cost-table compiler: enumerates the full (slot, op, config)
// space through the analytical model and writes a DCTB-v1 artifact that
// serve_jsonl / serve_cluster can mmap at startup (--table=PATH) instead of
// rebuilding the table per process. See docs/cost_table.md.
//
// Flags:
//   --out=PATH   destination file (required; written atomically)
//   --small      tiny hardware space (CI smoke; must match the consumer's
//                --small — the artifact records the space either way)
//   --verify     reload the written artifact and check every (config, op)
//                entry answers bit-identically to the in-memory table
//
// The model's evaluation strategy follows DANCE_COST=exact|lut; the mode
// is baked into the emitted numbers, so compile with the mode you intend
// to serve.
//
// Example:
//   ./build/examples/costtable_compile --out=cost.dctb --verify
//   ./build/examples/serve_jsonl --backend=exact --table=cost.dctb
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include "accel/cost_model.h"
#include "arch/cost_artifact.h"
#include "arch/cost_table.h"

namespace {

const char* flag_value(const char* arg, const char* flag) {
  const std::size_t n = std::strlen(flag);
  return std::strncmp(arg, flag, n) == 0 ? arg + n : nullptr;
}

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dance;
  std::string out_path;
  bool small = false;
  bool verify = false;
  for (int i = 1; i < argc; ++i) {
    if (const char* v = flag_value(argv[i], "--out=")) {
      out_path = v;
    } else if (std::strcmp(argv[i], "--small") == 0) {
      small = true;
    } else if (std::strcmp(argv[i], "--verify") == 0) {
      verify = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }
  if (out_path.empty()) {
    std::fprintf(stderr, "usage: costtable_compile --out=PATH [--small] [--verify]\n");
    return 2;
  }

  arch::ArchSpace arch_space(arch::cifar10_backbone());
  const hwgen::HwSearchSpace hw_space =
      small ? hwgen::HwSearchSpace({.pe_min = 8, .pe_max = 12, .rf_min = 8,
                                    .rf_max = 32, .rf_step = 8})
            : hwgen::HwSearchSpace();
  const accel::CostModel model;

  const auto t_build = std::chrono::steady_clock::now();
  const arch::CostTable table = arch::build_cost_table(arch_space, hw_space, model);
  const double build_ms = ms_since(t_build);

  try {
    const auto t_save = std::chrono::steady_clock::now();
    const std::uint64_t checksum = arch::save_cost_table(table, out_path);
    const double save_ms = ms_since(t_save);
    std::fprintf(stderr,
                 "[costtable_compile] cost_mode=%s configs=%zu slots=%d "
                 "build_ms=%.1f save_ms=%.1f\n",
                 accel::to_string(model.mode()).c_str(), hw_space.size(),
                 arch_space.num_searchable(), build_ms, save_ms);
    // stdout carries the machine-readable line (CI captures it).
    std::printf("path=%s checksum=%016llx\n", out_path.c_str(),
                static_cast<unsigned long long>(checksum));

    if (verify) {
      const auto t_load = std::chrono::steady_clock::now();
      const auto mapped = arch::load_cost_table(out_path, arch_space);
      const double load_ms = ms_since(t_load);
      // Bit-exact sweep: every config of every single-op architecture, plus
      // the area/latency/energy conversions, through both providers.
      for (int op = 0; op < arch::kNumCandidateOps; ++op) {
        arch::Architecture a(
            static_cast<std::size_t>(arch_space.num_searchable()),
            arch::kAllCandidateOps[static_cast<std::size_t>(op)]);
        const auto mem = table.evaluate_all(a);
        const auto mm = mapped->evaluate_all(a);
        for (std::size_t ci = 0; ci < mem.size(); ++ci) {
          if (std::memcmp(&mem[ci].latency_ms, &mm[ci].latency_ms,
                          sizeof(double)) != 0 ||
              std::memcmp(&mem[ci].energy_mj, &mm[ci].energy_mj,
                          sizeof(double)) != 0 ||
              std::memcmp(&mem[ci].area_mm2, &mm[ci].area_mm2,
                          sizeof(double)) != 0) {
            std::fprintf(stderr,
                         "[costtable_compile] VERIFY FAILED at op=%d config=%zu\n",
                         op, ci);
            return 1;
          }
        }
      }
      std::fprintf(stderr,
                   "[costtable_compile] verify ok: mmap load_ms=%.2f, "
                   "bit-identical to in-memory table\n",
                   load_ms);
    }
  } catch (const arch::ArtifactError& e) {
    std::fprintf(stderr, "[costtable_compile] %s\n", e.what());
    return 1;
  }
  return 0;
}
