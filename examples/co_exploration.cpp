// End-to-end DANCE co-exploration on a small synthetic task:
//   1. build the network/hardware search spaces and the cost model,
//   2. generate exhaustive-search ground truth and train the evaluator,
//   3. run the differentiable co-exploration,
//   4. retrain the discovered network and report the discovered accelerator.
//
// Run: ./build/examples/co_exploration   (takes a couple of minutes)
#include <cstdio>

#include "arch/cost_table.h"
#include "evalnet/trainer.h"
#include "search/baselines.h"
#include "search/dance.h"

int main() {
  using namespace dance;

  // 1. Task + spaces. Small sizes keep this example snappy.
  data::SyntheticTaskConfig dcfg;
  dcfg.train_samples = 2048;
  dcfg.val_samples = 512;
  const data::SyntheticTask task = data::make_synthetic_task(dcfg);

  arch::ArchSpace arch_space(arch::cifar10_backbone());
  hwgen::HwSearchSpace hw_space;
  accel::CostModel model;
  std::printf("Building the per-choice cost table (%zu configs x %d slots x %d "
              "ops)...\n",
              hw_space.size(), arch_space.num_searchable(),
              arch::kNumCandidateOps);
  arch::CostTable table(arch_space, hw_space, model);

  // 2. Evaluator: ground truth from the exact tool, then two trainings.
  util::Rng rng(7);
  std::printf("Generating ground truth and training the evaluator...\n");
  evalnet::Evaluator evaluator(arch_space.encoding_width(), hw_space, rng);
  auto ds = evalnet::generate_evaluator_dataset(table, accel::edap_cost(), 3000,
                                                rng);
  auto [train, val] = evalnet::split_dataset(ds, 0.85);
  evalnet::TrainOptions hw_opts;
  hw_opts.epochs = 15;
  hw_opts.lr = 0.05F;
  const auto hw_eval =
      evalnet::train_hwgen_net(evaluator.hwgen_net(), train, val, hw_opts);
  evalnet::TrainOptions cost_opts;
  cost_opts.epochs = 15;
  cost_opts.lr = 4e-3F;
  const auto cost_eval =
      evalnet::train_cost_net(evaluator.cost_net(), train, val, cost_opts);
  std::printf("  hwgen acc: PEX %.1f%% PEY %.1f%% RF %.1f%% DF %.1f%%\n",
              hw_eval.head_accuracy_pct[0], hw_eval.head_accuracy_pct[1],
              hw_eval.head_accuracy_pct[2], hw_eval.head_accuracy_pct[3]);
  std::printf("  cost acc: latency %.1f%% energy %.1f%% area %.1f%%\n",
              cost_eval.metric_accuracy_pct[0], cost_eval.metric_accuracy_pct[1],
              cost_eval.metric_accuracy_pct[2]);

  // 3. Differentiable co-exploration.
  std::printf("Running DANCE...\n");
  nas::SuperNetConfig net_config;
  net_config.input_dim = dcfg.input_dim;
  net_config.num_classes = dcfg.num_classes;
  net_config.width = 48;
  net_config.num_blocks = arch_space.num_searchable();

  search::DanceOptions opts;
  opts.search_epochs = 8;
  opts.warmup_epochs = 2;
  opts.lambda2 = 2.5F;
  opts.retrain.epochs = 20;
  search::DanceSearch dance(task, table, evaluator, net_config, opts);
  const search::SearchOutcome out = dance.run();

  // 4. Report.
  std::printf("\nDiscovered architecture (9 searchable slots):\n");
  for (std::size_t i = 0; i < out.architecture.size(); ++i) {
    std::printf("  slot %zu: %s\n", i, arch::to_string(out.architecture[i]).c_str());
  }
  std::printf("\nDiscovered accelerator: %s\n", out.hardware.to_string().c_str());
  std::printf("Retrained accuracy: %.1f%%\n", out.val_accuracy_pct);
  std::printf("Latency %.3f ms | Energy %.3f mJ | Area %.2f mm^2 | EDAP %.3f\n",
              out.metrics.latency_ms, out.metrics.energy_mj, out.metrics.area_mm2,
              out.metrics.edap());
  std::printf("Search wall time: %.1f s, trained candidates: %d\n",
              out.search_seconds, out.trained_candidates);

  // For contrast: the same budget without any hardware term.
  std::printf("\nFor contrast, the hardware-oblivious baseline:\n");
  search::BaselineOptions bopts;
  bopts.search_epochs = 8;
  bopts.retrain.epochs = 20;
  const search::SearchOutcome base =
      search::run_baseline(task, table, net_config, bopts);
  std::printf("Baseline accuracy %.1f%%, EDAP %.3f (DANCE: %.1f%%, %.3f)\n",
              base.val_accuracy_pct, base.metrics.edap(), out.val_accuracy_pct,
              out.metrics.edap());
  return 0;
}
