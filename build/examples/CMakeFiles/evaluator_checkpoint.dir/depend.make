# Empty dependencies file for evaluator_checkpoint.
# This may be replaced when dependencies are built.
