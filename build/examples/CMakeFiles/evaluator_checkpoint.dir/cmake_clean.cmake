file(REMOVE_RECURSE
  "CMakeFiles/evaluator_checkpoint.dir/evaluator_checkpoint.cpp.o"
  "CMakeFiles/evaluator_checkpoint.dir/evaluator_checkpoint.cpp.o.d"
  "evaluator_checkpoint"
  "evaluator_checkpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evaluator_checkpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
