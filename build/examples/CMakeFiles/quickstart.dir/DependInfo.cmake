
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/search/CMakeFiles/dance_search.dir/DependInfo.cmake"
  "/root/repo/build/src/evalnet/CMakeFiles/dance_evalnet.dir/DependInfo.cmake"
  "/root/repo/build/src/nas/CMakeFiles/dance_nas.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/dance_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/hwgen/CMakeFiles/dance_hwgen.dir/DependInfo.cmake"
  "/root/repo/build/src/accel/CMakeFiles/dance_accel.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/dance_data.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/dance_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/dance_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dance_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
