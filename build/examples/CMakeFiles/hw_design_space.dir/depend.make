# Empty dependencies file for hw_design_space.
# This may be replaced when dependencies are built.
