file(REMOVE_RECURSE
  "CMakeFiles/hw_design_space.dir/hw_design_space.cpp.o"
  "CMakeFiles/hw_design_space.dir/hw_design_space.cpp.o.d"
  "hw_design_space"
  "hw_design_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_design_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
