# Empty dependencies file for co_exploration.
# This may be replaced when dependencies are built.
