file(REMOVE_RECURSE
  "CMakeFiles/co_exploration.dir/co_exploration.cpp.o"
  "CMakeFiles/co_exploration.dir/co_exploration.cpp.o.d"
  "co_exploration"
  "co_exploration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/co_exploration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
