
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_accel.cpp" "tests/CMakeFiles/dance_tests.dir/test_accel.cpp.o" "gcc" "tests/CMakeFiles/dance_tests.dir/test_accel.cpp.o.d"
  "/root/repo/tests/test_arch.cpp" "tests/CMakeFiles/dance_tests.dir/test_arch.cpp.o" "gcc" "tests/CMakeFiles/dance_tests.dir/test_arch.cpp.o.d"
  "/root/repo/tests/test_backend_agnostic.cpp" "tests/CMakeFiles/dance_tests.dir/test_backend_agnostic.cpp.o" "gcc" "tests/CMakeFiles/dance_tests.dir/test_backend_agnostic.cpp.o.d"
  "/root/repo/tests/test_contracts.cpp" "tests/CMakeFiles/dance_tests.dir/test_contracts.cpp.o" "gcc" "tests/CMakeFiles/dance_tests.dir/test_contracts.cpp.o.d"
  "/root/repo/tests/test_cost_model_sweep.cpp" "tests/CMakeFiles/dance_tests.dir/test_cost_model_sweep.cpp.o" "gcc" "tests/CMakeFiles/dance_tests.dir/test_cost_model_sweep.cpp.o.d"
  "/root/repo/tests/test_data.cpp" "tests/CMakeFiles/dance_tests.dir/test_data.cpp.o" "gcc" "tests/CMakeFiles/dance_tests.dir/test_data.cpp.o.d"
  "/root/repo/tests/test_design_points.cpp" "tests/CMakeFiles/dance_tests.dir/test_design_points.cpp.o" "gcc" "tests/CMakeFiles/dance_tests.dir/test_design_points.cpp.o.d"
  "/root/repo/tests/test_ea.cpp" "tests/CMakeFiles/dance_tests.dir/test_ea.cpp.o" "gcc" "tests/CMakeFiles/dance_tests.dir/test_ea.cpp.o.d"
  "/root/repo/tests/test_edge_cases.cpp" "tests/CMakeFiles/dance_tests.dir/test_edge_cases.cpp.o" "gcc" "tests/CMakeFiles/dance_tests.dir/test_edge_cases.cpp.o.d"
  "/root/repo/tests/test_evalnet.cpp" "tests/CMakeFiles/dance_tests.dir/test_evalnet.cpp.o" "gcc" "tests/CMakeFiles/dance_tests.dir/test_evalnet.cpp.o.d"
  "/root/repo/tests/test_evalnet_dataset.cpp" "tests/CMakeFiles/dance_tests.dir/test_evalnet_dataset.cpp.o" "gcc" "tests/CMakeFiles/dance_tests.dir/test_evalnet_dataset.cpp.o.d"
  "/root/repo/tests/test_hwgen.cpp" "tests/CMakeFiles/dance_tests.dir/test_hwgen.cpp.o" "gcc" "tests/CMakeFiles/dance_tests.dir/test_hwgen.cpp.o.d"
  "/root/repo/tests/test_hwgen_heuristics.cpp" "tests/CMakeFiles/dance_tests.dir/test_hwgen_heuristics.cpp.o" "gcc" "tests/CMakeFiles/dance_tests.dir/test_hwgen_heuristics.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/dance_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/dance_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_lowering_sweep.cpp" "tests/CMakeFiles/dance_tests.dir/test_lowering_sweep.cpp.o" "gcc" "tests/CMakeFiles/dance_tests.dir/test_lowering_sweep.cpp.o.d"
  "/root/repo/tests/test_nas.cpp" "tests/CMakeFiles/dance_tests.dir/test_nas.cpp.o" "gcc" "tests/CMakeFiles/dance_tests.dir/test_nas.cpp.o.d"
  "/root/repo/tests/test_nn.cpp" "tests/CMakeFiles/dance_tests.dir/test_nn.cpp.o" "gcc" "tests/CMakeFiles/dance_tests.dir/test_nn.cpp.o.d"
  "/root/repo/tests/test_ops_gradcheck.cpp" "tests/CMakeFiles/dance_tests.dir/test_ops_gradcheck.cpp.o" "gcc" "tests/CMakeFiles/dance_tests.dir/test_ops_gradcheck.cpp.o.d"
  "/root/repo/tests/test_optim_more.cpp" "tests/CMakeFiles/dance_tests.dir/test_optim_more.cpp.o" "gcc" "tests/CMakeFiles/dance_tests.dir/test_optim_more.cpp.o.d"
  "/root/repo/tests/test_reproducibility.cpp" "tests/CMakeFiles/dance_tests.dir/test_reproducibility.cpp.o" "gcc" "tests/CMakeFiles/dance_tests.dir/test_reproducibility.cpp.o.d"
  "/root/repo/tests/test_search.cpp" "tests/CMakeFiles/dance_tests.dir/test_search.cpp.o" "gcc" "tests/CMakeFiles/dance_tests.dir/test_search.cpp.o.d"
  "/root/repo/tests/test_serialize.cpp" "tests/CMakeFiles/dance_tests.dir/test_serialize.cpp.o" "gcc" "tests/CMakeFiles/dance_tests.dir/test_serialize.cpp.o.d"
  "/root/repo/tests/test_supernet_mixture.cpp" "tests/CMakeFiles/dance_tests.dir/test_supernet_mixture.cpp.o" "gcc" "tests/CMakeFiles/dance_tests.dir/test_supernet_mixture.cpp.o.d"
  "/root/repo/tests/test_systolic_sim.cpp" "tests/CMakeFiles/dance_tests.dir/test_systolic_sim.cpp.o" "gcc" "tests/CMakeFiles/dance_tests.dir/test_systolic_sim.cpp.o.d"
  "/root/repo/tests/test_tensor.cpp" "tests/CMakeFiles/dance_tests.dir/test_tensor.cpp.o" "gcc" "tests/CMakeFiles/dance_tests.dir/test_tensor.cpp.o.d"
  "/root/repo/tests/test_util.cpp" "tests/CMakeFiles/dance_tests.dir/test_util.cpp.o" "gcc" "tests/CMakeFiles/dance_tests.dir/test_util.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/search/CMakeFiles/dance_search.dir/DependInfo.cmake"
  "/root/repo/build/src/evalnet/CMakeFiles/dance_evalnet.dir/DependInfo.cmake"
  "/root/repo/build/src/nas/CMakeFiles/dance_nas.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/dance_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/hwgen/CMakeFiles/dance_hwgen.dir/DependInfo.cmake"
  "/root/repo/build/src/accel/CMakeFiles/dance_accel.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/dance_data.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/dance_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/dance_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dance_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
