# Empty dependencies file for dance_tests.
# This may be replaced when dependencies are built.
