# Empty dependencies file for bench_table2_cifar10.
# This may be replaced when dependencies are built.
