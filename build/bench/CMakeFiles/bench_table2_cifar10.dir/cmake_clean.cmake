file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_cifar10.dir/bench_table2_cifar10.cpp.o"
  "CMakeFiles/bench_table2_cifar10.dir/bench_table2_cifar10.cpp.o.d"
  "bench_table2_cifar10"
  "bench_table2_cifar10.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_cifar10.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
