# Empty dependencies file for bench_table1_evaluator.
# This may be replaced when dependencies are built.
