file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_evaluator.dir/bench_table1_evaluator.cpp.o"
  "CMakeFiles/bench_table1_evaluator.dir/bench_table1_evaluator.cpp.o.d"
  "bench_table1_evaluator"
  "bench_table1_evaluator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_evaluator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
