file(REMOVE_RECURSE
  "CMakeFiles/bench_hwgen_speed.dir/bench_hwgen_speed.cpp.o"
  "CMakeFiles/bench_hwgen_speed.dir/bench_hwgen_speed.cpp.o.d"
  "bench_hwgen_speed"
  "bench_hwgen_speed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hwgen_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
