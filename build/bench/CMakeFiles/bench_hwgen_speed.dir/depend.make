# Empty dependencies file for bench_hwgen_speed.
# This may be replaced when dependencies are built.
