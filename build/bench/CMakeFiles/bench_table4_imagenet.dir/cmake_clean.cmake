file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_imagenet.dir/bench_table4_imagenet.cpp.o"
  "CMakeFiles/bench_table4_imagenet.dir/bench_table4_imagenet.cpp.o.d"
  "bench_table4_imagenet"
  "bench_table4_imagenet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_imagenet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
