# Empty compiler generated dependencies file for dance_util.
# This may be replaced when dependencies are built.
