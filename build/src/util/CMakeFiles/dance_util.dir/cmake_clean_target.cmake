file(REMOVE_RECURSE
  "libdance_util.a"
)
