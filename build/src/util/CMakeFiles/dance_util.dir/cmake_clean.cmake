file(REMOVE_RECURSE
  "CMakeFiles/dance_util.dir/csv.cpp.o"
  "CMakeFiles/dance_util.dir/csv.cpp.o.d"
  "CMakeFiles/dance_util.dir/stats.cpp.o"
  "CMakeFiles/dance_util.dir/stats.cpp.o.d"
  "CMakeFiles/dance_util.dir/table.cpp.o"
  "CMakeFiles/dance_util.dir/table.cpp.o.d"
  "libdance_util.a"
  "libdance_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dance_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
