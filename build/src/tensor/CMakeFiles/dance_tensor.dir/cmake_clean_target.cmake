file(REMOVE_RECURSE
  "libdance_tensor.a"
)
