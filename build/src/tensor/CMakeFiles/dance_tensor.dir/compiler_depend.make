# Empty compiler generated dependencies file for dance_tensor.
# This may be replaced when dependencies are built.
