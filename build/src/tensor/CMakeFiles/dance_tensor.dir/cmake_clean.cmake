file(REMOVE_RECURSE
  "CMakeFiles/dance_tensor.dir/ops.cpp.o"
  "CMakeFiles/dance_tensor.dir/ops.cpp.o.d"
  "CMakeFiles/dance_tensor.dir/tensor.cpp.o"
  "CMakeFiles/dance_tensor.dir/tensor.cpp.o.d"
  "CMakeFiles/dance_tensor.dir/variable.cpp.o"
  "CMakeFiles/dance_tensor.dir/variable.cpp.o.d"
  "libdance_tensor.a"
  "libdance_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dance_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
