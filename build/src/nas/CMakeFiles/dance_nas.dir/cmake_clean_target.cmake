file(REMOVE_RECURSE
  "libdance_nas.a"
)
