file(REMOVE_RECURSE
  "CMakeFiles/dance_nas.dir/fixed_net.cpp.o"
  "CMakeFiles/dance_nas.dir/fixed_net.cpp.o.d"
  "CMakeFiles/dance_nas.dir/supernet.cpp.o"
  "CMakeFiles/dance_nas.dir/supernet.cpp.o.d"
  "CMakeFiles/dance_nas.dir/trainer.cpp.o"
  "CMakeFiles/dance_nas.dir/trainer.cpp.o.d"
  "libdance_nas.a"
  "libdance_nas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dance_nas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
