# Empty compiler generated dependencies file for dance_nas.
# This may be replaced when dependencies are built.
