# Empty compiler generated dependencies file for dance_evalnet.
# This may be replaced when dependencies are built.
