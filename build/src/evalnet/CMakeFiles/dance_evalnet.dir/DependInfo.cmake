
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/evalnet/cost_net.cpp" "src/evalnet/CMakeFiles/dance_evalnet.dir/cost_net.cpp.o" "gcc" "src/evalnet/CMakeFiles/dance_evalnet.dir/cost_net.cpp.o.d"
  "/root/repo/src/evalnet/dataset.cpp" "src/evalnet/CMakeFiles/dance_evalnet.dir/dataset.cpp.o" "gcc" "src/evalnet/CMakeFiles/dance_evalnet.dir/dataset.cpp.o.d"
  "/root/repo/src/evalnet/evaluator.cpp" "src/evalnet/CMakeFiles/dance_evalnet.dir/evaluator.cpp.o" "gcc" "src/evalnet/CMakeFiles/dance_evalnet.dir/evaluator.cpp.o.d"
  "/root/repo/src/evalnet/hwgen_net.cpp" "src/evalnet/CMakeFiles/dance_evalnet.dir/hwgen_net.cpp.o" "gcc" "src/evalnet/CMakeFiles/dance_evalnet.dir/hwgen_net.cpp.o.d"
  "/root/repo/src/evalnet/trainer.cpp" "src/evalnet/CMakeFiles/dance_evalnet.dir/trainer.cpp.o" "gcc" "src/evalnet/CMakeFiles/dance_evalnet.dir/trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/dance_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/dance_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/hwgen/CMakeFiles/dance_hwgen.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/dance_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/accel/CMakeFiles/dance_accel.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dance_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
