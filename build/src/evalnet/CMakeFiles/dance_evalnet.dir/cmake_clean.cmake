file(REMOVE_RECURSE
  "CMakeFiles/dance_evalnet.dir/cost_net.cpp.o"
  "CMakeFiles/dance_evalnet.dir/cost_net.cpp.o.d"
  "CMakeFiles/dance_evalnet.dir/dataset.cpp.o"
  "CMakeFiles/dance_evalnet.dir/dataset.cpp.o.d"
  "CMakeFiles/dance_evalnet.dir/evaluator.cpp.o"
  "CMakeFiles/dance_evalnet.dir/evaluator.cpp.o.d"
  "CMakeFiles/dance_evalnet.dir/hwgen_net.cpp.o"
  "CMakeFiles/dance_evalnet.dir/hwgen_net.cpp.o.d"
  "CMakeFiles/dance_evalnet.dir/trainer.cpp.o"
  "CMakeFiles/dance_evalnet.dir/trainer.cpp.o.d"
  "libdance_evalnet.a"
  "libdance_evalnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dance_evalnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
