file(REMOVE_RECURSE
  "libdance_evalnet.a"
)
