file(REMOVE_RECURSE
  "libdance_data.a"
)
