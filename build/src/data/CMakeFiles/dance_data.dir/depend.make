# Empty dependencies file for dance_data.
# This may be replaced when dependencies are built.
