file(REMOVE_RECURSE
  "CMakeFiles/dance_data.dir/synthetic.cpp.o"
  "CMakeFiles/dance_data.dir/synthetic.cpp.o.d"
  "libdance_data.a"
  "libdance_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dance_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
