file(REMOVE_RECURSE
  "libdance_hwgen.a"
)
