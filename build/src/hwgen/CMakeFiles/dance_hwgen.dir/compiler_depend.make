# Empty compiler generated dependencies file for dance_hwgen.
# This may be replaced when dependencies are built.
