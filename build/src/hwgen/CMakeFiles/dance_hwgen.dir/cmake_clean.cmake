file(REMOVE_RECURSE
  "CMakeFiles/dance_hwgen.dir/coordinate_descent.cpp.o"
  "CMakeFiles/dance_hwgen.dir/coordinate_descent.cpp.o.d"
  "CMakeFiles/dance_hwgen.dir/exhaustive.cpp.o"
  "CMakeFiles/dance_hwgen.dir/exhaustive.cpp.o.d"
  "CMakeFiles/dance_hwgen.dir/pareto.cpp.o"
  "CMakeFiles/dance_hwgen.dir/pareto.cpp.o.d"
  "CMakeFiles/dance_hwgen.dir/random_search.cpp.o"
  "CMakeFiles/dance_hwgen.dir/random_search.cpp.o.d"
  "CMakeFiles/dance_hwgen.dir/search_space.cpp.o"
  "CMakeFiles/dance_hwgen.dir/search_space.cpp.o.d"
  "libdance_hwgen.a"
  "libdance_hwgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dance_hwgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
