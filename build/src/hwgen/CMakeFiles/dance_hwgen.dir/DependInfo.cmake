
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hwgen/coordinate_descent.cpp" "src/hwgen/CMakeFiles/dance_hwgen.dir/coordinate_descent.cpp.o" "gcc" "src/hwgen/CMakeFiles/dance_hwgen.dir/coordinate_descent.cpp.o.d"
  "/root/repo/src/hwgen/exhaustive.cpp" "src/hwgen/CMakeFiles/dance_hwgen.dir/exhaustive.cpp.o" "gcc" "src/hwgen/CMakeFiles/dance_hwgen.dir/exhaustive.cpp.o.d"
  "/root/repo/src/hwgen/pareto.cpp" "src/hwgen/CMakeFiles/dance_hwgen.dir/pareto.cpp.o" "gcc" "src/hwgen/CMakeFiles/dance_hwgen.dir/pareto.cpp.o.d"
  "/root/repo/src/hwgen/random_search.cpp" "src/hwgen/CMakeFiles/dance_hwgen.dir/random_search.cpp.o" "gcc" "src/hwgen/CMakeFiles/dance_hwgen.dir/random_search.cpp.o.d"
  "/root/repo/src/hwgen/search_space.cpp" "src/hwgen/CMakeFiles/dance_hwgen.dir/search_space.cpp.o" "gcc" "src/hwgen/CMakeFiles/dance_hwgen.dir/search_space.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/accel/CMakeFiles/dance_accel.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dance_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
