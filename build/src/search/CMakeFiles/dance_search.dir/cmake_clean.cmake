file(REMOVE_RECURSE
  "CMakeFiles/dance_search.dir/baselines.cpp.o"
  "CMakeFiles/dance_search.dir/baselines.cpp.o.d"
  "CMakeFiles/dance_search.dir/dance.cpp.o"
  "CMakeFiles/dance_search.dir/dance.cpp.o.d"
  "CMakeFiles/dance_search.dir/design_points.cpp.o"
  "CMakeFiles/dance_search.dir/design_points.cpp.o.d"
  "CMakeFiles/dance_search.dir/ea.cpp.o"
  "CMakeFiles/dance_search.dir/ea.cpp.o.d"
  "CMakeFiles/dance_search.dir/rl.cpp.o"
  "CMakeFiles/dance_search.dir/rl.cpp.o.d"
  "libdance_search.a"
  "libdance_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dance_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
