file(REMOVE_RECURSE
  "libdance_search.a"
)
