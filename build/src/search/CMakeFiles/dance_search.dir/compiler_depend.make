# Empty compiler generated dependencies file for dance_search.
# This may be replaced when dependencies are built.
