
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/accel/conv_shape.cpp" "src/accel/CMakeFiles/dance_accel.dir/conv_shape.cpp.o" "gcc" "src/accel/CMakeFiles/dance_accel.dir/conv_shape.cpp.o.d"
  "/root/repo/src/accel/cost_model.cpp" "src/accel/CMakeFiles/dance_accel.dir/cost_model.cpp.o" "gcc" "src/accel/CMakeFiles/dance_accel.dir/cost_model.cpp.o.d"
  "/root/repo/src/accel/systolic_sim.cpp" "src/accel/CMakeFiles/dance_accel.dir/systolic_sim.cpp.o" "gcc" "src/accel/CMakeFiles/dance_accel.dir/systolic_sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/dance_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
