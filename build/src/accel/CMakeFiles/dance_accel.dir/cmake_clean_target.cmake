file(REMOVE_RECURSE
  "libdance_accel.a"
)
