file(REMOVE_RECURSE
  "CMakeFiles/dance_accel.dir/conv_shape.cpp.o"
  "CMakeFiles/dance_accel.dir/conv_shape.cpp.o.d"
  "CMakeFiles/dance_accel.dir/cost_model.cpp.o"
  "CMakeFiles/dance_accel.dir/cost_model.cpp.o.d"
  "CMakeFiles/dance_accel.dir/systolic_sim.cpp.o"
  "CMakeFiles/dance_accel.dir/systolic_sim.cpp.o.d"
  "libdance_accel.a"
  "libdance_accel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dance_accel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
