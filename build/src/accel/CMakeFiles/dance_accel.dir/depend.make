# Empty dependencies file for dance_accel.
# This may be replaced when dependencies are built.
