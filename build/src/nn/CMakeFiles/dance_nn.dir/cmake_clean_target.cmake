file(REMOVE_RECURSE
  "libdance_nn.a"
)
