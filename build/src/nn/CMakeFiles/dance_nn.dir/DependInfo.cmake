
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/batchnorm.cpp" "src/nn/CMakeFiles/dance_nn.dir/batchnorm.cpp.o" "gcc" "src/nn/CMakeFiles/dance_nn.dir/batchnorm.cpp.o.d"
  "/root/repo/src/nn/linear.cpp" "src/nn/CMakeFiles/dance_nn.dir/linear.cpp.o" "gcc" "src/nn/CMakeFiles/dance_nn.dir/linear.cpp.o.d"
  "/root/repo/src/nn/mlp.cpp" "src/nn/CMakeFiles/dance_nn.dir/mlp.cpp.o" "gcc" "src/nn/CMakeFiles/dance_nn.dir/mlp.cpp.o.d"
  "/root/repo/src/nn/module.cpp" "src/nn/CMakeFiles/dance_nn.dir/module.cpp.o" "gcc" "src/nn/CMakeFiles/dance_nn.dir/module.cpp.o.d"
  "/root/repo/src/nn/optim.cpp" "src/nn/CMakeFiles/dance_nn.dir/optim.cpp.o" "gcc" "src/nn/CMakeFiles/dance_nn.dir/optim.cpp.o.d"
  "/root/repo/src/nn/serialize.cpp" "src/nn/CMakeFiles/dance_nn.dir/serialize.cpp.o" "gcc" "src/nn/CMakeFiles/dance_nn.dir/serialize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/dance_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dance_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
