# Empty dependencies file for dance_nn.
# This may be replaced when dependencies are built.
