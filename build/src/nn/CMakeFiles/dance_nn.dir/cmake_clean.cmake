file(REMOVE_RECURSE
  "CMakeFiles/dance_nn.dir/batchnorm.cpp.o"
  "CMakeFiles/dance_nn.dir/batchnorm.cpp.o.d"
  "CMakeFiles/dance_nn.dir/linear.cpp.o"
  "CMakeFiles/dance_nn.dir/linear.cpp.o.d"
  "CMakeFiles/dance_nn.dir/mlp.cpp.o"
  "CMakeFiles/dance_nn.dir/mlp.cpp.o.d"
  "CMakeFiles/dance_nn.dir/module.cpp.o"
  "CMakeFiles/dance_nn.dir/module.cpp.o.d"
  "CMakeFiles/dance_nn.dir/optim.cpp.o"
  "CMakeFiles/dance_nn.dir/optim.cpp.o.d"
  "CMakeFiles/dance_nn.dir/serialize.cpp.o"
  "CMakeFiles/dance_nn.dir/serialize.cpp.o.d"
  "libdance_nn.a"
  "libdance_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dance_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
