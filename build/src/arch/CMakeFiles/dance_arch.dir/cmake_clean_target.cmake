file(REMOVE_RECURSE
  "libdance_arch.a"
)
