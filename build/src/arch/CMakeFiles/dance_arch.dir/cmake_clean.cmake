file(REMOVE_RECURSE
  "CMakeFiles/dance_arch.dir/backbone.cpp.o"
  "CMakeFiles/dance_arch.dir/backbone.cpp.o.d"
  "CMakeFiles/dance_arch.dir/cost_table.cpp.o"
  "CMakeFiles/dance_arch.dir/cost_table.cpp.o.d"
  "CMakeFiles/dance_arch.dir/ops.cpp.o"
  "CMakeFiles/dance_arch.dir/ops.cpp.o.d"
  "CMakeFiles/dance_arch.dir/space.cpp.o"
  "CMakeFiles/dance_arch.dir/space.cpp.o.d"
  "libdance_arch.a"
  "libdance_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dance_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
