
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arch/backbone.cpp" "src/arch/CMakeFiles/dance_arch.dir/backbone.cpp.o" "gcc" "src/arch/CMakeFiles/dance_arch.dir/backbone.cpp.o.d"
  "/root/repo/src/arch/cost_table.cpp" "src/arch/CMakeFiles/dance_arch.dir/cost_table.cpp.o" "gcc" "src/arch/CMakeFiles/dance_arch.dir/cost_table.cpp.o.d"
  "/root/repo/src/arch/ops.cpp" "src/arch/CMakeFiles/dance_arch.dir/ops.cpp.o" "gcc" "src/arch/CMakeFiles/dance_arch.dir/ops.cpp.o.d"
  "/root/repo/src/arch/space.cpp" "src/arch/CMakeFiles/dance_arch.dir/space.cpp.o" "gcc" "src/arch/CMakeFiles/dance_arch.dir/space.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/accel/CMakeFiles/dance_accel.dir/DependInfo.cmake"
  "/root/repo/build/src/hwgen/CMakeFiles/dance_hwgen.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dance_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
