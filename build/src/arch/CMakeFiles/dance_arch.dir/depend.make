# Empty dependencies file for dance_arch.
# This may be replaced when dependencies are built.
