#pragma once

#include <vector>

#include "tensor/variable.h"

namespace dance::nn {

/// Base optimizer: owns handles to parameter variables and updates their
/// values in place from accumulated gradients.
class Optimizer {
 public:
  explicit Optimizer(std::vector<tensor::Variable> params, float lr);
  virtual ~Optimizer() = default;

  virtual void step() = 0;
  void zero_grad();

  void set_lr(float lr) { lr_ = lr; }
  [[nodiscard]] float lr() const { return lr_; }

  /// Rescale all gradients so their global L2 norm is at most `max_norm`.
  /// Returns the pre-clip norm. Call between backward() and step().
  double clip_grad_norm(double max_norm);

 protected:
  std::vector<tensor::Variable> params_;
  float lr_;
};

/// SGD with momentum, optional Nesterov momentum and decoupled-from-loss L2
/// weight decay (the paper's ||w|| term in Eq. 1 is realized here).
class Sgd : public Optimizer {
 public:
  struct Options {
    float lr = 0.01F;
    float momentum = 0.0F;
    bool nesterov = false;
    float weight_decay = 0.0F;
    /// Global gradient-norm clip applied inside step(); 0 disables.
    float max_grad_norm = 0.0F;
  };

  Sgd(std::vector<tensor::Variable> params, const Options& opts);
  void step() override;

 private:
  Options opts_;
  std::vector<tensor::Tensor> velocity_;
};

/// Adam (Kingma & Ba) with optional L2 weight decay.
class Adam : public Optimizer {
 public:
  struct Options {
    float lr = 1e-3F;
    float beta1 = 0.9F;
    float beta2 = 0.999F;
    float eps = 1e-8F;
    float weight_decay = 0.0F;
  };

  Adam(std::vector<tensor::Variable> params, const Options& opts);
  void step() override;

 private:
  Options opts_;
  std::vector<tensor::Tensor> m_;
  std::vector<tensor::Tensor> v_;
  long step_count_ = 0;
};

/// Cosine annealing from `base_lr` to ~0 over `total_epochs`
/// (the paper's search schedule).
class CosineSchedule {
 public:
  CosineSchedule(float base_lr, int total_epochs);
  [[nodiscard]] float lr(int epoch) const;

 private:
  float base_lr_;
  int total_epochs_;
};

/// Step decay: lr = base * gamma^(epoch / step_size) (the paper's hardware
/// generation network schedule: 0.001, x0.1 every 50 epochs).
class StepSchedule {
 public:
  StepSchedule(float base_lr, float gamma, int step_size);
  [[nodiscard]] float lr(int epoch) const;

 private:
  float base_lr_;
  float gamma_;
  int step_size_;
};

}  // namespace dance::nn
