#pragma once

#include <string>
#include <vector>

#include "tensor/variable.h"

namespace dance::nn {

/// Save a tensor list to a binary checkpoint. Format: magic, tensor count,
/// then per tensor: rank, dims, float32 payload (host endianness; the
/// checkpoints are caches, not interchange files). The file is staged in
/// memory and written via util::atomic_write_file, so a crash mid-save
/// leaves the previous checkpoint intact rather than a torn prefix.
void save_tensors(const std::string& path,
                  const std::vector<const tensor::Tensor*>& tensors);

/// Load a checkpoint into existing tensors. Shapes must match exactly (the
/// model must be constructed with the same configuration). Throws
/// std::runtime_error naming the file, the expected-vs-actual byte counts,
/// and — when `names` is non-empty (parallel to `tensors`) — the tensor at
/// which parsing failed, so a bad checkpoint in a multi-model registry
/// directory is identifiable from the message alone.
void load_tensors(const std::string& path,
                  const std::vector<tensor::Tensor*>& tensors,
                  const std::vector<std::string>& names = {});

/// Convenience wrappers over parameter variables (no buffers).
void save_parameters(const std::string& path,
                     const std::vector<tensor::Variable>& params);
void load_parameters(const std::string& path,
                     std::vector<tensor::Variable>& params,
                     const std::vector<std::string>& names = {});

/// True if `path` exists and holds a checkpoint with matching parameter
/// shapes (cheap way to decide between loading a cache and retraining).
[[nodiscard]] bool checkpoint_compatible(
    const std::string& path, const std::vector<tensor::Variable>& params);

}  // namespace dance::nn
