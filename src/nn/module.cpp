#include "nn/module.h"

namespace dance::nn {

std::vector<NamedParameter> Module::named_parameters() {
  std::vector<NamedParameter> out;
  std::size_t i = 0;
  for (auto& p : parameters()) {
    out.push_back({"param." + std::to_string(i++), p});
  }
  return out;
}

std::size_t Module::parameter_count() {
  std::size_t n = 0;
  for (auto& p : parameters()) n += p.value().numel();
  return n;
}

void Module::zero_grad() {
  for (auto& p : parameters()) p.zero_grad();
}

}  // namespace dance::nn
