#pragma once

#include "nn/freeze.h"
#include "nn/module.h"
#include "util/rng.h"

namespace dance::nn {

/// Fully connected layer y = xW + b with Kaiming-uniform-style init.
class Linear : public Module {
 public:
  Linear(int in_features, int out_features, util::Rng& rng, bool bias = true);

  Variable forward(const Variable& x) override;
  [[nodiscard]] std::vector<Variable> parameters() override;
  [[nodiscard]] std::vector<NamedParameter> named_parameters() override;

  [[nodiscard]] int in_features() const { return in_; }
  [[nodiscard]] int out_features() const { return out_; }

  /// Value snapshot of the layer's inference state (nn/freeze.h). The
  /// returned struct owns copies of the tensors; later updates to the live
  /// parameters do not affect it.
  [[nodiscard]] FrozenLinear freeze() const;

  Variable& weight() { return weight_; }
  Variable& bias() { return bias_; }

 private:
  int in_;
  int out_;
  Variable weight_;  ///< [in, out]
  Variable bias_;    ///< [out], undefined when bias=false
};

}  // namespace dance::nn
