#pragma once

#include <string>
#include <utility>
#include <vector>

#include "tensor/ops.h"
#include "tensor/variable.h"

namespace dance::nn {

using tensor::Tensor;
using tensor::Variable;

/// A parameter with a human-readable path ("hidden.2.weight"), used by
/// generic tooling (gradcheck, checkpoint diffing) to report *which* tensor
/// misbehaved. The Variable aliases the module's parameter node.
struct NamedParameter {
  std::string name;
  Variable param;
};

/// Base class for trainable components. Parameters are exposed as autograd
/// variables so any optimizer can update them in place.
class Module {
 public:
  Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;
  virtual ~Module() = default;

  virtual Variable forward(const Variable& x) = 0;
  [[nodiscard]] virtual std::vector<Variable> parameters() = 0;

  /// Parameters with stable names, in the same order as `parameters()`.
  /// The default numbers them "param.0", "param.1", ...; subclasses override
  /// with real names. Generic harnesses (e.g. testing::gradcheck_module)
  /// rely on the ordering contract.
  [[nodiscard]] virtual std::vector<NamedParameter> named_parameters();

  /// Non-trainable state mutated by forward (batch-norm running statistics).
  /// Generic tooling snapshots and restores these to make repeated forwards
  /// side-effect free; checkpointing saves them alongside parameters.
  [[nodiscard]] virtual std::vector<Tensor*> buffers() { return {}; }

  /// Toggle train/eval behaviour (batch norm statistics).
  virtual void set_training(bool training) { training_ = training; }
  [[nodiscard]] bool training() const { return training_; }

  /// Total number of scalar parameters.
  [[nodiscard]] std::size_t parameter_count();

  void zero_grad();

 protected:
  bool training_ = true;
};

}  // namespace dance::nn
