#pragma once

#include <vector>

#include "tensor/ops.h"
#include "tensor/variable.h"

namespace dance::nn {

using tensor::Tensor;
using tensor::Variable;

/// Base class for trainable components. Parameters are exposed as autograd
/// variables so any optimizer can update them in place.
class Module {
 public:
  Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;
  virtual ~Module() = default;

  virtual Variable forward(const Variable& x) = 0;
  [[nodiscard]] virtual std::vector<Variable> parameters() = 0;

  /// Toggle train/eval behaviour (batch norm statistics).
  virtual void set_training(bool training) { training_ = training; }
  [[nodiscard]] bool training() const { return training_; }

  /// Total number of scalar parameters.
  [[nodiscard]] std::size_t parameter_count();

  void zero_grad();

 protected:
  bool training_ = true;
};

}  // namespace dance::nn
