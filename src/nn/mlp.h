#pragma once

#include <memory>

#include "nn/batchnorm.h"
#include "nn/linear.h"
#include "nn/module.h"
#include "util/rng.h"

namespace dance::nn {

/// Configuration for `ResidualMlp`, the building block of both evaluator
/// sub-networks (§3.3 of the paper).
struct ResidualMlpConfig {
  int in_dim = 1;
  int hidden_dim = 128;
  /// Number of Linear layers including input projection and output head.
  /// The paper uses five-layer perceptrons for both evaluator components.
  int num_layers = 5;
  int out_dim = 1;
  /// Batch norm on every hidden layer (the cost estimation network uses it;
  /// the hardware generation network does not).
  bool batch_norm = false;
};

/// Multi-layer perceptron with ReLU activations and residual connections
/// between the hidden layers:
///
///   h0 = relu([BN](W_in x))
///   h_{k+1} = relu([BN](W_k h_k)) + h_k        (hidden residual blocks)
///   y = W_out h_last
class ResidualMlp : public Module {
 public:
  ResidualMlp(const ResidualMlpConfig& config, util::Rng& rng);

  Variable forward(const Variable& x) override;
  [[nodiscard]] std::vector<Variable> parameters() override;
  [[nodiscard]] std::vector<NamedParameter> named_parameters() override;
  void set_training(bool training) override;

  /// Non-trainable state (batch-norm running statistics) for checkpointing.
  [[nodiscard]] std::vector<Tensor*> buffers() override;

  /// Flattens the trunk into a linear FrozenMlpLayer schedule (nn/freeze.h):
  /// the same op sequence `forward` executes, as data instead of control
  /// flow. This is the export surface the dance::infer compiler consumes —
  /// it never touches the module's private layers directly.
  [[nodiscard]] FrozenMlp freeze() const;

  [[nodiscard]] const ResidualMlpConfig& config() const { return config_; }

 private:
  ResidualMlpConfig config_;
  std::unique_ptr<Linear> input_;
  std::vector<std::unique_ptr<Linear>> hidden_;
  std::unique_ptr<Linear> output_;
  std::vector<std::unique_ptr<BatchNorm1d>> norms_;  ///< one per pre-output layer
};

}  // namespace dance::nn
