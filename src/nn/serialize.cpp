#include "nn/serialize.h"

#include <cstdint>
#include <fstream>
#include <stdexcept>

namespace dance::nn {

namespace {

constexpr std::uint32_t kMagic = 0xDA9CE001;

struct Header {
  std::uint32_t magic;
  std::uint32_t count;
};

bool read_shapes(std::ifstream& in, std::uint32_t count,
                 std::vector<std::vector<int>>& shapes) {
  shapes.clear();
  for (std::uint32_t p = 0; p < count; ++p) {
    std::uint32_t rank = 0;
    if (!in.read(reinterpret_cast<char*>(&rank), sizeof(rank))) return false;
    if (rank > 8) return false;
    std::vector<int> shape(rank);
    std::size_t numel = 1;
    for (auto& d : shape) {
      std::int32_t v = 0;
      if (!in.read(reinterpret_cast<char*>(&v), sizeof(v))) return false;
      if (v < 0) return false;
      d = v;
      numel *= static_cast<std::size_t>(v);
    }
    shapes.push_back(std::move(shape));
    in.seekg(static_cast<std::streamoff>(numel * sizeof(float)), std::ios::cur);
    if (!in) return false;
  }
  return true;
}

}  // namespace

void save_tensors(const std::string& path,
                  const std::vector<const tensor::Tensor*>& tensors) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("save_tensors: cannot open " + path);
  const Header h{kMagic, static_cast<std::uint32_t>(tensors.size())};
  out.write(reinterpret_cast<const char*>(&h), sizeof(h));
  for (const auto* t : tensors) {
    const std::uint32_t rank = static_cast<std::uint32_t>(t->rank());
    out.write(reinterpret_cast<const char*>(&rank), sizeof(rank));
    for (int d : t->shape()) {
      const std::int32_t v = d;
      out.write(reinterpret_cast<const char*>(&v), sizeof(v));
    }
    out.write(reinterpret_cast<const char*>(t->data()),
              static_cast<std::streamsize>(t->numel() * sizeof(float)));
  }
  if (!out) throw std::runtime_error("save_tensors: write failed " + path);
}

void load_tensors(const std::string& path,
                  const std::vector<tensor::Tensor*>& tensors) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_tensors: cannot open " + path);
  Header h{};
  if (!in.read(reinterpret_cast<char*>(&h), sizeof(h)) || h.magic != kMagic) {
    throw std::runtime_error("load_tensors: bad checkpoint " + path);
  }
  if (h.count != tensors.size()) {
    throw std::runtime_error("load_tensors: tensor count mismatch");
  }
  for (auto* t : tensors) {
    std::uint32_t rank = 0;
    in.read(reinterpret_cast<char*>(&rank), sizeof(rank));
    std::vector<int> shape(rank);
    for (auto& d : shape) {
      std::int32_t v = 0;
      in.read(reinterpret_cast<char*>(&v), sizeof(v));
      d = v;
    }
    if (shape != t->shape()) {
      throw std::runtime_error("load_tensors: shape mismatch");
    }
    in.read(reinterpret_cast<char*>(t->data()),
            static_cast<std::streamsize>(t->numel() * sizeof(float)));
    if (!in) throw std::runtime_error("load_tensors: truncated checkpoint");
  }
}

void save_parameters(const std::string& path,
                     const std::vector<tensor::Variable>& params) {
  std::vector<const tensor::Tensor*> ts;
  ts.reserve(params.size());
  for (const auto& p : params) ts.push_back(&p.value());
  save_tensors(path, ts);
}

void load_parameters(const std::string& path,
                     std::vector<tensor::Variable>& params) {
  std::vector<tensor::Tensor*> ts;
  ts.reserve(params.size());
  for (auto& p : params) ts.push_back(&p.value());
  load_tensors(path, ts);
}

bool checkpoint_compatible(const std::string& path,
                           const std::vector<tensor::Variable>& params) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  Header h{};
  if (!in.read(reinterpret_cast<char*>(&h), sizeof(h)) || h.magic != kMagic ||
      h.count != params.size()) {
    return false;
  }
  std::vector<std::vector<int>> shapes;
  if (!read_shapes(in, h.count, shapes)) return false;
  for (std::size_t i = 0; i < params.size(); ++i) {
    if (shapes[i] != params[i].value().shape()) return false;
  }
  return true;
}

}  // namespace dance::nn
