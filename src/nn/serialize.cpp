#include "nn/serialize.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <stdexcept>

#include "util/fs.h"

namespace dance::nn {

namespace {

constexpr std::uint32_t kMagic = 0xDA9CE001;

struct Header {
  std::uint32_t magic;
  std::uint32_t count;
};

bool read_shapes(std::ifstream& in, std::uint32_t count,
                 std::vector<std::vector<int>>& shapes) {
  shapes.clear();
  for (std::uint32_t p = 0; p < count; ++p) {
    std::uint32_t rank = 0;
    if (!in.read(reinterpret_cast<char*>(&rank), sizeof(rank))) return false;
    if (rank > 8) return false;
    std::vector<int> shape(rank);
    std::size_t numel = 1;
    for (auto& d : shape) {
      std::int32_t v = 0;
      if (!in.read(reinterpret_cast<char*>(&v), sizeof(v))) return false;
      if (v < 0) return false;
      d = v;
      numel *= static_cast<std::size_t>(v);
    }
    shapes.push_back(std::move(shape));
    in.seekg(static_cast<std::streamoff>(numel * sizeof(float)), std::ios::cur);
    if (!in) return false;
  }
  return true;
}

std::string shape_str(const std::vector<int>& shape) {
  std::string s = "[";
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i > 0) s += "x";
    s += std::to_string(shape[i]);
  }
  return s + "]";
}

/// Bounds-checked reader whose error messages carry the checkpoint path,
/// how many bytes the current read needed vs. how many remained, and which
/// tensor was being parsed — enough to pinpoint the bad file in a
/// directory of generations without a hexdump.
struct Cursor {
  const char* p;
  std::size_t left;
  const std::string& path;
  std::string where = "header";

  void raw(void* out, std::size_t n) {
    if (n > left) {
      throw std::runtime_error("load_tensors: truncated checkpoint " + path +
                               ": reading " + where + " needs " +
                               std::to_string(n) + " bytes but only " +
                               std::to_string(left) + " remain");
    }
    std::memcpy(out, p, n);
    p += n;
    left -= n;
  }
  template <typename T>
  T get() {
    T v;
    raw(&v, sizeof(v));
    return v;
  }
};

}  // namespace

void save_tensors(const std::string& path,
                  const std::vector<const tensor::Tensor*>& tensors) {
  std::string buf;
  auto put = [&buf](const void* p, std::size_t n) {
    buf.append(static_cast<const char*>(p), n);
  };
  const Header h{kMagic, static_cast<std::uint32_t>(tensors.size())};
  put(&h, sizeof(h));
  for (const auto* t : tensors) {
    const std::uint32_t rank = static_cast<std::uint32_t>(t->rank());
    put(&rank, sizeof(rank));
    for (int d : t->shape()) {
      const std::int32_t v = d;
      put(&v, sizeof(v));
    }
    put(t->data(), t->numel() * sizeof(float));
  }
  util::atomic_write_file(path, buf);
}

void load_tensors(const std::string& path,
                  const std::vector<tensor::Tensor*>& tensors,
                  const std::vector<std::string>& names) {
  if (!names.empty() && names.size() != tensors.size()) {
    throw std::runtime_error("load_tensors: " + std::to_string(names.size()) +
                             " names for " + std::to_string(tensors.size()) +
                             " tensors");
  }
  std::string bytes;
  try {
    bytes = util::read_file(path);
  } catch (const std::runtime_error& e) {
    throw std::runtime_error(std::string("load_tensors: ") + e.what());
  }

  Cursor cur{bytes.data(), bytes.size(), path};
  const auto h = cur.get<Header>();
  if (h.magic != kMagic) {
    throw std::runtime_error("load_tensors: bad checkpoint " + path +
                             ": magic mismatch (not a dance checkpoint)");
  }
  if (h.count != tensors.size()) {
    throw std::runtime_error(
        "load_tensors: tensor count mismatch in " + path + ": file has " +
        std::to_string(h.count) + ", model expects " +
        std::to_string(tensors.size()));
  }
  for (std::size_t i = 0; i < tensors.size(); ++i) {
    auto* t = tensors[i];
    const std::string name =
        names.empty() ? "tensor #" + std::to_string(i) : names[i];
    cur.where = name;
    const auto rank = cur.get<std::uint32_t>();
    if (rank > 8) {
      throw std::runtime_error("load_tensors: corrupt checkpoint " + path +
                               ": " + name + " has rank " +
                               std::to_string(rank));
    }
    std::vector<int> shape(rank);
    for (auto& d : shape) d = cur.get<std::int32_t>();
    if (shape != t->shape()) {
      throw std::runtime_error("load_tensors: shape mismatch in " + path +
                               ": " + name + " is " + shape_str(shape) +
                               " in file, " + shape_str(t->shape()) +
                               " in model");
    }
    cur.raw(t->data(), t->numel() * sizeof(float));
  }
  if (cur.left != 0) {
    throw std::runtime_error("load_tensors: corrupt checkpoint " + path +
                             ": " + std::to_string(cur.left) +
                             " trailing bytes after last tensor");
  }
}

void save_parameters(const std::string& path,
                     const std::vector<tensor::Variable>& params) {
  std::vector<const tensor::Tensor*> ts;
  ts.reserve(params.size());
  for (const auto& p : params) ts.push_back(&p.value());
  save_tensors(path, ts);
}

void load_parameters(const std::string& path,
                     std::vector<tensor::Variable>& params,
                     const std::vector<std::string>& names) {
  std::vector<tensor::Tensor*> ts;
  ts.reserve(params.size());
  for (auto& p : params) ts.push_back(&p.value());
  load_tensors(path, ts, names);
}

bool checkpoint_compatible(const std::string& path,
                           const std::vector<tensor::Variable>& params) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  Header h{};
  if (!in.read(reinterpret_cast<char*>(&h), sizeof(h)) || h.magic != kMagic ||
      h.count != params.size()) {
    return false;
  }
  std::vector<std::vector<int>> shapes;
  if (!read_shapes(in, h.count, shapes)) return false;
  for (std::size_t i = 0; i < params.size(); ++i) {
    if (shapes[i] != params[i].value().shape()) return false;
  }
  return true;
}

}  // namespace dance::nn
