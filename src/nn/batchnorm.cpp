#include "nn/batchnorm.h"

#include <cmath>

namespace dance::nn {

BatchNorm1d::BatchNorm1d(int features, float momentum, float eps)
    : momentum_(momentum),
      eps_(eps),
      gamma_(Tensor::full({features}, 1.0F), /*requires_grad=*/true),
      beta_(Tensor::zeros({features}), /*requires_grad=*/true),
      running_mean_(Tensor::zeros({features})),
      running_var_(Tensor::full({features}, 1.0F)) {}

Variable BatchNorm1d::forward(const Variable& x) {
  return tensor::ops::batchnorm(x, gamma_, beta_, running_mean_, running_var_,
                                momentum_, eps_, training_);
}

FrozenBatchNorm BatchNorm1d::freeze() const {
  FrozenBatchNorm f;
  f.gamma = gamma_.value();
  f.beta = beta_.value();
  f.mean = running_mean_;
  f.inv_std = Tensor(running_var_.shape());
  for (std::size_t c = 0; c < running_var_.numel(); ++c) {
    // Must match the eval branch of tensor::ops::batchnorm bit for bit.
    f.inv_std[c] = 1.0F / std::sqrt(running_var_[c] + eps_);
  }
  f.eps = eps_;
  return f;
}

std::vector<Variable> BatchNorm1d::parameters() { return {gamma_, beta_}; }

std::vector<NamedParameter> BatchNorm1d::named_parameters() {
  return {{"gamma", gamma_}, {"beta", beta_}};
}

}  // namespace dance::nn
