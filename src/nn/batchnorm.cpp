#include "nn/batchnorm.h"

namespace dance::nn {

BatchNorm1d::BatchNorm1d(int features, float momentum, float eps)
    : momentum_(momentum),
      eps_(eps),
      gamma_(Tensor::full({features}, 1.0F), /*requires_grad=*/true),
      beta_(Tensor::zeros({features}), /*requires_grad=*/true),
      running_mean_(Tensor::zeros({features})),
      running_var_(Tensor::full({features}, 1.0F)) {}

Variable BatchNorm1d::forward(const Variable& x) {
  return tensor::ops::batchnorm(x, gamma_, beta_, running_mean_, running_var_,
                                momentum_, eps_, training_);
}

std::vector<Variable> BatchNorm1d::parameters() { return {gamma_, beta_}; }

std::vector<NamedParameter> BatchNorm1d::named_parameters() {
  return {{"gamma", gamma_}, {"beta", beta_}};
}

}  // namespace dance::nn
