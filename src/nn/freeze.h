#pragma once

#include <vector>

#include "tensor/tensor.h"

namespace dance::nn {

/// Frozen parameter snapshots — the export surface the dance::infer compiler
/// consumes. Each struct is a value-type copy of a module's inference-time
/// state taken at freeze() time: the compiler never reaches into module
/// private state, and later training steps or checkpoint loads do not
/// retroactively change an already-compiled plan.

/// Linear layer y = xW + b.
struct FrozenLinear {
  tensor::Tensor weight;  ///< [in, out], row-major
  tensor::Tensor bias;    ///< [out]; numel()==0 when the layer has no bias
  int in = 0;
  int out = 0;

  [[nodiscard]] bool has_bias() const { return bias.numel() > 0; }
};

/// Eval-mode batch norm: y = gamma * (x - mean) * inv_std + beta with
/// inv_std = 1 / sqrt(running_var + eps). `inv_std` is precomputed here with
/// exactly the expression tensor::ops::batchnorm uses in eval mode, so a
/// consumer applying the affine form above stays bit-identical to the op.
struct FrozenBatchNorm {
  tensor::Tensor gamma;    ///< [features]
  tensor::Tensor beta;     ///< [features]
  tensor::Tensor mean;     ///< [features], running mean
  tensor::Tensor inv_std;  ///< [features], 1 / sqrt(running_var + eps)
  float eps = 0.0F;
};

/// One fused inference step of a ResidualMlp: Linear, then optional batch
/// norm, then optional ReLU, then optional residual add of the layer input.
/// The trunk layout (mlp.h) maps onto this as
///   input layer:   {linear, bn?, relu,  residual=false}
///   hidden blocks: {linear, bn?, relu,  residual=true}
///   output head:   {linear, -,   relu=false, residual=false}
struct FrozenMlpLayer {
  FrozenLinear linear;
  FrozenBatchNorm norm;  ///< valid iff has_norm
  bool has_norm = false;
  bool relu = false;
  bool residual = false;
};

/// A whole ResidualMlp flattened into a linear schedule of FrozenMlpLayer
/// steps, in execution order.
struct FrozenMlp {
  std::vector<FrozenMlpLayer> layers;
  int in_dim = 0;
  int hidden_dim = 0;
  int out_dim = 0;
};

}  // namespace dance::nn
