#include "nn/linear.h"

#include <cmath>

namespace dance::nn {

Linear::Linear(int in_features, int out_features, util::Rng& rng, bool bias)
    : in_(in_features), out_(out_features) {
  // He initialization for ReLU networks.
  const float stddev = std::sqrt(2.0F / static_cast<float>(in_features));
  weight_ = Variable(Tensor::randn({in_, out_}, rng, 0.0F, stddev),
                     /*requires_grad=*/true);
  if (bias) {
    bias_ = Variable(Tensor::zeros({out_}), /*requires_grad=*/true);
  }
}

Variable Linear::forward(const Variable& x) {
  Variable y = tensor::ops::matmul(x, weight_);
  if (bias_.defined()) y = tensor::ops::add_rowvec(y, bias_);
  return y;
}

FrozenLinear Linear::freeze() const {
  FrozenLinear f;
  f.weight = weight_.value();
  if (bias_.defined()) f.bias = bias_.value();
  f.in = in_;
  f.out = out_;
  return f;
}

std::vector<Variable> Linear::parameters() {
  std::vector<Variable> ps{weight_};
  if (bias_.defined()) ps.push_back(bias_);
  return ps;
}

std::vector<NamedParameter> Linear::named_parameters() {
  std::vector<NamedParameter> ps{{"weight", weight_}};
  if (bias_.defined()) ps.push_back({"bias", bias_});
  return ps;
}

}  // namespace dance::nn
