#include "nn/mlp.h"

#include <stdexcept>

namespace dance::nn {

ResidualMlp::ResidualMlp(const ResidualMlpConfig& config, util::Rng& rng)
    : config_(config) {
  if (config.num_layers < 2) {
    throw std::invalid_argument("ResidualMlp: need at least 2 layers");
  }
  input_ = std::make_unique<Linear>(config.in_dim, config.hidden_dim, rng);
  const int hidden_blocks = config.num_layers - 2;
  hidden_.reserve(static_cast<std::size_t>(hidden_blocks));
  for (int i = 0; i < hidden_blocks; ++i) {
    hidden_.push_back(
        std::make_unique<Linear>(config.hidden_dim, config.hidden_dim, rng));
  }
  output_ = std::make_unique<Linear>(config.hidden_dim, config.out_dim, rng);
  if (config.batch_norm) {
    for (int i = 0; i < hidden_blocks + 1; ++i) {
      norms_.push_back(std::make_unique<BatchNorm1d>(config.hidden_dim));
    }
  }
}

Variable ResidualMlp::forward(const Variable& x) {
  namespace ops = tensor::ops;
  Variable h = input_->forward(x);
  if (config_.batch_norm) h = norms_[0]->forward(h);
  h = ops::relu(h);
  for (std::size_t i = 0; i < hidden_.size(); ++i) {
    Variable z = hidden_[i]->forward(h);
    if (config_.batch_norm) z = norms_[i + 1]->forward(z);
    z = ops::relu(z);
    h = ops::add(z, h);  // residual connection
  }
  return output_->forward(h);
}

FrozenMlp ResidualMlp::freeze() const {
  FrozenMlp f;
  f.in_dim = config_.in_dim;
  f.hidden_dim = config_.hidden_dim;
  f.out_dim = config_.out_dim;
  f.layers.reserve(hidden_.size() + 2);

  FrozenMlpLayer input;
  input.linear = input_->freeze();
  if (config_.batch_norm) {
    input.norm = norms_[0]->freeze();
    input.has_norm = true;
  }
  input.relu = true;
  f.layers.push_back(std::move(input));

  for (std::size_t i = 0; i < hidden_.size(); ++i) {
    FrozenMlpLayer blk;
    blk.linear = hidden_[i]->freeze();
    if (config_.batch_norm) {
      blk.norm = norms_[i + 1]->freeze();
      blk.has_norm = true;
    }
    blk.relu = true;
    blk.residual = true;
    f.layers.push_back(std::move(blk));
  }

  FrozenMlpLayer head;
  head.linear = output_->freeze();
  f.layers.push_back(std::move(head));
  return f;
}

std::vector<Variable> ResidualMlp::parameters() {
  std::vector<Variable> ps = input_->parameters();
  for (auto& l : hidden_) {
    for (auto& p : l->parameters()) ps.push_back(p);
  }
  for (auto& p : output_->parameters()) ps.push_back(p);
  for (auto& n : norms_) {
    for (auto& p : n->parameters()) ps.push_back(p);
  }
  return ps;
}

std::vector<NamedParameter> ResidualMlp::named_parameters() {
  std::vector<NamedParameter> ps;
  const auto append = [&ps](const std::string& prefix, Module& m) {
    for (auto& [name, p] : m.named_parameters()) {
      ps.push_back({prefix + "." + name, p});
    }
  };
  append("input", *input_);
  for (std::size_t i = 0; i < hidden_.size(); ++i) {
    append("hidden." + std::to_string(i), *hidden_[i]);
  }
  append("output", *output_);
  for (std::size_t i = 0; i < norms_.size(); ++i) {
    append("norm." + std::to_string(i), *norms_[i]);
  }
  return ps;
}

std::vector<tensor::Tensor*> ResidualMlp::buffers() {
  std::vector<tensor::Tensor*> bs;
  for (auto& n : norms_) {
    for (auto* b : n->buffers()) bs.push_back(b);
  }
  return bs;
}

void ResidualMlp::set_training(bool training) {
  Module::set_training(training);
  for (auto& n : norms_) n->set_training(training);
}

}  // namespace dance::nn
