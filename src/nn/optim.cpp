#include "nn/optim.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace dance::nn {

Optimizer::Optimizer(std::vector<tensor::Variable> params, float lr)
    : params_(std::move(params)), lr_(lr) {
  for (const auto& p : params_) {
    if (!p.defined() || !p.requires_grad()) {
      throw std::invalid_argument("Optimizer: parameter without gradient");
    }
  }
}

void Optimizer::zero_grad() {
  for (auto& p : params_) p.zero_grad();
}

double Optimizer::clip_grad_norm(double max_norm) {
  double sq = 0.0;
  for (auto& p : params_) {
    const auto& g = p.node()->grad;
    for (std::size_t i = 0; i < g.numel(); ++i) {
      sq += static_cast<double>(g[i]) * static_cast<double>(g[i]);
    }
  }
  const double norm = std::sqrt(sq);
  if (max_norm > 0.0 && norm > max_norm) {
    const float scale = static_cast<float>(max_norm / (norm + 1e-12));
    for (auto& p : params_) {
      auto& g = p.node()->grad;
      if (g.numel() != 0) g.scale_(scale);
    }
  }
  return norm;
}

Sgd::Sgd(std::vector<tensor::Variable> params, const Options& opts)
    : Optimizer(std::move(params), opts.lr), opts_(opts) {
  velocity_.reserve(params_.size());
  for (const auto& p : params_) {
    velocity_.push_back(tensor::Tensor::zeros(p.value().shape()));
  }
}

void Sgd::step() {
  if (opts_.max_grad_norm > 0.0F) clip_grad_norm(opts_.max_grad_norm);
  for (std::size_t k = 0; k < params_.size(); ++k) {
    auto& node = *params_[k].node();
    if (node.grad.numel() == 0) continue;  // parameter unused this step
    auto& vel = velocity_[k];
    for (std::size_t i = 0; i < node.value.numel(); ++i) {
      float g = node.grad[i] + opts_.weight_decay * node.value[i];
      if (opts_.momentum != 0.0F) {
        vel[i] = opts_.momentum * vel[i] + g;
        g = opts_.nesterov ? g + opts_.momentum * vel[i] : vel[i];
      }
      node.value[i] -= lr_ * g;
    }
  }
}

Adam::Adam(std::vector<tensor::Variable> params, const Options& opts)
    : Optimizer(std::move(params), opts.lr), opts_(opts) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const auto& p : params_) {
    m_.push_back(tensor::Tensor::zeros(p.value().shape()));
    v_.push_back(tensor::Tensor::zeros(p.value().shape()));
  }
}

void Adam::step() {
  ++step_count_;
  const float bc1 = 1.0F - std::pow(opts_.beta1, static_cast<float>(step_count_));
  const float bc2 = 1.0F - std::pow(opts_.beta2, static_cast<float>(step_count_));
  for (std::size_t k = 0; k < params_.size(); ++k) {
    auto& node = *params_[k].node();
    if (node.grad.numel() == 0) continue;
    auto& m = m_[k];
    auto& v = v_[k];
    for (std::size_t i = 0; i < node.value.numel(); ++i) {
      const float g = node.grad[i] + opts_.weight_decay * node.value[i];
      m[i] = opts_.beta1 * m[i] + (1.0F - opts_.beta1) * g;
      v[i] = opts_.beta2 * v[i] + (1.0F - opts_.beta2) * g * g;
      const float mhat = m[i] / bc1;
      const float vhat = v[i] / bc2;
      node.value[i] -= lr_ * mhat / (std::sqrt(vhat) + opts_.eps);
    }
  }
}

CosineSchedule::CosineSchedule(float base_lr, int total_epochs)
    : base_lr_(base_lr), total_epochs_(total_epochs) {
  if (total_epochs <= 0) throw std::invalid_argument("CosineSchedule: epochs <= 0");
}

float CosineSchedule::lr(int epoch) const {
  const float t = static_cast<float>(std::min(epoch, total_epochs_)) /
                  static_cast<float>(total_epochs_);
  return 0.5F * base_lr_ * (1.0F + std::cos(std::numbers::pi_v<float> * t));
}

StepSchedule::StepSchedule(float base_lr, float gamma, int step_size)
    : base_lr_(base_lr), gamma_(gamma), step_size_(step_size) {
  if (step_size <= 0) throw std::invalid_argument("StepSchedule: step_size <= 0");
}

float StepSchedule::lr(int epoch) const {
  return base_lr_ * std::pow(gamma_, static_cast<float>(epoch / step_size_));
}

}  // namespace dance::nn
