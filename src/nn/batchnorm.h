#pragma once

#include "nn/freeze.h"
#include "nn/module.h"

namespace dance::nn {

/// 1-D batch normalization over the batch dimension of a [N, D] input.
class BatchNorm1d : public Module {
 public:
  explicit BatchNorm1d(int features, float momentum = 0.1F, float eps = 1e-5F);

  Variable forward(const Variable& x) override;
  [[nodiscard]] std::vector<Variable> parameters() override;
  [[nodiscard]] std::vector<NamedParameter> named_parameters() override;

  [[nodiscard]] const Tensor& running_mean() const { return running_mean_; }
  [[nodiscard]] const Tensor& running_var() const { return running_var_; }

  /// Non-trainable state (running statistics) for checkpointing.
  [[nodiscard]] std::vector<Tensor*> buffers() override {
    return {&running_mean_, &running_var_};
  }

  /// Eval-mode snapshot (nn/freeze.h): gamma/beta/mean copies plus inv_std
  /// precomputed with the exact expression the batchnorm op uses, so a
  /// consumer of the snapshot reproduces eval-mode forward bit for bit.
  [[nodiscard]] FrozenBatchNorm freeze() const;

 private:
  float momentum_;
  float eps_;
  Variable gamma_;
  Variable beta_;
  Tensor running_mean_;
  Tensor running_var_;
};

}  // namespace dance::nn
