#pragma once

#include <span>

#include "hwgen/exhaustive.h"

namespace dance::hwgen {

/// Approximate hardware generation via cyclic coordinate descent over the
/// four design dimensions (the strategy of Hao et al. 2019 in Table 3).
/// Much cheaper than exhaustive search but may return a local optimum;
/// `restarts` independent starting points mitigate that.
class CoordinateDescent {
 public:
  CoordinateDescent(const HwSearchSpace& space, const accel::CostModel& model,
                    int restarts = 4, int max_sweeps = 16);

  [[nodiscard]] HwSearchResult run(std::span<const accel::ConvShape> layers,
                                   const accel::HwCostFn& cost_fn) const;

  /// Number of cost-model network evaluations performed by the last run.
  [[nodiscard]] long evaluations() const { return evaluations_; }

 private:
  const HwSearchSpace& space_;
  const accel::CostModel& model_;
  int restarts_;
  int max_sweeps_;
  mutable long evaluations_ = 0;
};

}  // namespace dance::hwgen
