#include "hwgen/search_space.h"

#include <stdexcept>

namespace dance::hwgen {

HwSearchSpace::HwSearchSpace() : HwSearchSpace(Options{}) {}

HwSearchSpace::HwSearchSpace(const Options& opts) : opts_(opts) {
  if (opts.pe_min <= 0 || opts.pe_max < opts.pe_min) {
    throw std::invalid_argument("HwSearchSpace: bad PE range");
  }
  if (opts.rf_min <= 0 || opts.rf_max < opts.rf_min || opts.rf_step <= 0) {
    throw std::invalid_argument("HwSearchSpace: bad RF range");
  }
  pe_count_ = opts.pe_max - opts.pe_min + 1;
  rf_count_ = (opts.rf_max - opts.rf_min) / opts.rf_step + 1;
}

std::size_t HwSearchSpace::size() const {
  return static_cast<std::size_t>(pe_count_) * pe_count_ * rf_count_ * 3;
}

accel::AcceleratorConfig HwSearchSpace::config_at(std::size_t index) const {
  if (index >= size()) throw std::out_of_range("HwSearchSpace::config_at");
  const int df = static_cast<int>(index % 3);
  index /= 3;
  const int rf = static_cast<int>(index % static_cast<std::size_t>(rf_count_));
  index /= static_cast<std::size_t>(rf_count_);
  const int py = static_cast<int>(index % static_cast<std::size_t>(pe_count_));
  index /= static_cast<std::size_t>(pe_count_);
  const int px = static_cast<int>(index);
  return accel::AcceleratorConfig{pe_value(px), pe_value(py), rf_value(rf),
                                  dataflow_value(df)};
}

std::size_t HwSearchSpace::index_of(const accel::AcceleratorConfig& c) const {
  const std::size_t px = static_cast<std::size_t>(pe_index(c.pe_x));
  const std::size_t py = static_cast<std::size_t>(pe_index(c.pe_y));
  const std::size_t rf = static_cast<std::size_t>(rf_index(c.rf_size));
  const std::size_t df = static_cast<std::size_t>(dataflow_index(c.dataflow));
  return ((px * static_cast<std::size_t>(pe_count_) + py) *
              static_cast<std::size_t>(rf_count_) +
          rf) *
             3 +
         df;
}

int HwSearchSpace::pe_index(int pe) const {
  if (pe < opts_.pe_min || pe > opts_.pe_max) {
    throw std::out_of_range("HwSearchSpace::pe_index: " + std::to_string(pe));
  }
  return pe - opts_.pe_min;
}

int HwSearchSpace::rf_index(int rf) const {
  if (rf < opts_.rf_min || rf > opts_.rf_max ||
      (rf - opts_.rf_min) % opts_.rf_step != 0) {
    throw std::out_of_range("HwSearchSpace::rf_index: " + std::to_string(rf));
  }
  return (rf - opts_.rf_min) / opts_.rf_step;
}

int HwSearchSpace::dataflow_index(accel::Dataflow df) const {
  switch (df) {
    case accel::Dataflow::kWeightStationary: return 0;
    case accel::Dataflow::kOutputStationary: return 1;
    case accel::Dataflow::kRowStationary: return 2;
  }
  throw std::out_of_range("HwSearchSpace::dataflow_index");
}

int HwSearchSpace::pe_value(int index) const {
  if (index < 0 || index >= pe_count_) throw std::out_of_range("pe_value");
  return opts_.pe_min + index;
}

int HwSearchSpace::rf_value(int index) const {
  if (index < 0 || index >= rf_count_) throw std::out_of_range("rf_value");
  return opts_.rf_min + index * opts_.rf_step;
}

accel::Dataflow HwSearchSpace::dataflow_value(int index) const {
  switch (index) {
    case 0: return accel::Dataflow::kWeightStationary;
    case 1: return accel::Dataflow::kOutputStationary;
    case 2: return accel::Dataflow::kRowStationary;
    default: throw std::out_of_range("dataflow_value");
  }
}

std::vector<float> HwSearchSpace::encode(const accel::AcceleratorConfig& c) const {
  std::vector<float> v(static_cast<std::size_t>(encoding_width()), 0.0F);
  int off = 0;
  v[static_cast<std::size_t>(off + pe_index(c.pe_x))] = 1.0F;
  off += pe_count_;
  v[static_cast<std::size_t>(off + pe_index(c.pe_y))] = 1.0F;
  off += pe_count_;
  v[static_cast<std::size_t>(off + rf_index(c.rf_size))] = 1.0F;
  off += rf_count_;
  v[static_cast<std::size_t>(off + dataflow_index(c.dataflow))] = 1.0F;
  return v;
}

}  // namespace dance::hwgen
