#include "hwgen/exhaustive.h"

#include <limits>
#include <stdexcept>
#include <vector>

#include "runtime/profiler.h"
#include "runtime/thread_pool.h"

namespace dance::hwgen {

namespace {

/// With ~13.9k configs and a cost-model call per config, a handful of
/// configs per chunk keeps every lane busy without oversubmitting.
constexpr long kConfigGrain = 16;

/// Serial arg-min over a dense cost vector; keeps the first index at the
/// minimum (strict `<`), exactly like the historical serial scan.
std::size_t argmin_index(const std::vector<double>& costs) {
  std::size_t best = 0;
  double best_cost = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < costs.size(); ++i) {
    if (costs[i] < best_cost) {
      best_cost = costs[i];
      best = i;
    }
  }
  return best;
}

}  // namespace

ExhaustiveSearch::ExhaustiveSearch(const HwSearchSpace& space,
                                   const accel::CostModel& model)
    : space_(space), model_(model) {}

HwSearchResult ExhaustiveSearch::run(std::span<const accel::ConvShape> layers,
                                     const accel::HwCostFn& cost_fn) const {
  if (layers.empty()) throw std::invalid_argument("ExhaustiveSearch: no layers");
  DANCE_PROFILE_SCOPE("hwgen.exhaustive.run");
  // Each lane fills a disjoint slice of `costs`; the cost model is stateless
  // and `cost_fn` must be pure (all shipped cost functions are). The arg-min
  // itself stays serial, so the result is bit-identical to the serial scan
  // at any thread count.
  std::vector<double> costs(space_.size());
  runtime::global_pool().parallel_for(
      0, static_cast<long>(space_.size()), kConfigGrain,
      [&](long lo, long hi) {
        for (long i = lo; i < hi; ++i) {
          const auto idx = static_cast<std::size_t>(i);
          costs[idx] =
              cost_fn(model_.network_cost(space_.config_at(idx), layers));
        }
      });
  const std::size_t best = argmin_index(costs);
  HwSearchResult result;
  result.config = space_.config_at(best);
  result.metrics = model_.network_cost(result.config, layers);
  result.cost = costs[best];
  return result;
}

HwSearchResult ExhaustiveSearch::run_precomputed(
    std::span<const accel::CostMetrics> metrics,
    const accel::HwCostFn& cost_fn) const {
  if (metrics.size() != space_.size()) {
    throw std::invalid_argument("ExhaustiveSearch: metrics size mismatch");
  }
  HwSearchResult best;
  best.cost = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    const double cost = cost_fn(metrics[i]);
    if (cost < best.cost) {
      best = HwSearchResult{space_.config_at(i), metrics[i], cost};
    }
  }
  return best;
}

std::vector<accel::CostMetrics> ExhaustiveSearch::evaluate_all(
    std::span<const accel::ConvShape> layers) const {
  DANCE_PROFILE_SCOPE("hwgen.exhaustive.evaluate_all");
  std::vector<accel::CostMetrics> out(space_.size());
  runtime::global_pool().parallel_for(
      0, static_cast<long>(space_.size()), kConfigGrain,
      [&](long lo, long hi) {
        for (long i = lo; i < hi; ++i) {
          const auto idx = static_cast<std::size_t>(i);
          out[idx] = model_.network_cost(space_.config_at(idx), layers);
        }
      });
  return out;
}

}  // namespace dance::hwgen
