#include "hwgen/exhaustive.h"

#include <limits>
#include <stdexcept>

namespace dance::hwgen {

ExhaustiveSearch::ExhaustiveSearch(const HwSearchSpace& space,
                                   const accel::CostModel& model)
    : space_(space), model_(model) {}

HwSearchResult ExhaustiveSearch::run(std::span<const accel::ConvShape> layers,
                                     const accel::HwCostFn& cost_fn) const {
  if (layers.empty()) throw std::invalid_argument("ExhaustiveSearch: no layers");
  HwSearchResult best;
  best.cost = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < space_.size(); ++i) {
    const accel::AcceleratorConfig config = space_.config_at(i);
    const accel::CostMetrics m = model_.network_cost(config, layers);
    const double cost = cost_fn(m);
    if (cost < best.cost) {
      best = HwSearchResult{config, m, cost};
    }
  }
  return best;
}

HwSearchResult ExhaustiveSearch::run_precomputed(
    std::span<const accel::CostMetrics> metrics,
    const accel::HwCostFn& cost_fn) const {
  if (metrics.size() != space_.size()) {
    throw std::invalid_argument("ExhaustiveSearch: metrics size mismatch");
  }
  HwSearchResult best;
  best.cost = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    const double cost = cost_fn(metrics[i]);
    if (cost < best.cost) {
      best = HwSearchResult{space_.config_at(i), metrics[i], cost};
    }
  }
  return best;
}

std::vector<accel::CostMetrics> ExhaustiveSearch::evaluate_all(
    std::span<const accel::ConvShape> layers) const {
  std::vector<accel::CostMetrics> out(space_.size());
  for (std::size_t i = 0; i < space_.size(); ++i) {
    out[i] = model_.network_cost(space_.config_at(i), layers);
  }
  return out;
}

}  // namespace dance::hwgen
