#pragma once

#include <span>

#include "hwgen/exhaustive.h"
#include "util/rng.h"

namespace dance::hwgen {

/// Random-sampling hardware generation: evaluate `budget` uniformly sampled
/// configurations and keep the best. The standard cheap baseline against
/// which exact and learned generators are judged.
class RandomSearch {
 public:
  RandomSearch(const HwSearchSpace& space, const accel::CostModel& model,
               int budget = 256);

  [[nodiscard]] HwSearchResult run(std::span<const accel::ConvShape> layers,
                                   const accel::HwCostFn& cost_fn,
                                   util::Rng& rng) const;

  [[nodiscard]] int budget() const { return budget_; }

 private:
  const HwSearchSpace& space_;
  const accel::CostModel& model_;
  int budget_;
};

/// Simulated-annealing hardware generation: random walk over the four design
/// dimensions with a geometric temperature schedule. Stronger than random
/// sampling at equal budget, still far cheaper than exhaustive search.
class SimulatedAnnealing {
 public:
  struct Options {
    int steps = 512;
    double initial_temperature = 1.0;  ///< relative to the initial cost
    double cooling = 0.99;             ///< per-step temperature factor
  };

  SimulatedAnnealing(const HwSearchSpace& space, const accel::CostModel& model,
                     const Options& opts);
  SimulatedAnnealing(const HwSearchSpace& space, const accel::CostModel& model);

  [[nodiscard]] HwSearchResult run(std::span<const accel::ConvShape> layers,
                                   const accel::HwCostFn& cost_fn,
                                   util::Rng& rng) const;

 private:
  const HwSearchSpace& space_;
  const accel::CostModel& model_;
  Options opts_;
};

}  // namespace dance::hwgen
