#pragma once

#include <span>
#include <vector>

#include "accel/cost_model.h"
#include "hwgen/search_space.h"

namespace dance::hwgen {

/// A point of the hardware Pareto front: configuration + its metrics.
struct ParetoPoint {
  accel::AcceleratorConfig config;
  accel::CostMetrics metrics;
};

/// Extract the 3-objective (latency, energy, area) Pareto-optimal subset of
/// the whole design space for a fixed workload. `metrics[i]` must correspond
/// to `space.config_at(i)` (as returned by ExhaustiveSearch::evaluate_all).
[[nodiscard]] std::vector<ParetoPoint> pareto_front(
    const HwSearchSpace& space, std::span<const accel::CostMetrics> metrics);

/// True iff `a` dominates `b` (<= on all three metrics, < on at least one).
[[nodiscard]] bool dominates(const accel::CostMetrics& a,
                             const accel::CostMetrics& b);

}  // namespace dance::hwgen
