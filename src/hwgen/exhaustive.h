#pragma once

#include <span>

#include "accel/cost_function.h"
#include "accel/cost_model.h"
#include "hwgen/search_space.h"

namespace dance::hwgen {

/// Result of a hardware generation run: the optimal configuration for the
/// given workload together with its metrics and scalar cost.
struct HwSearchResult {
  accel::AcceleratorConfig config;
  accel::CostMetrics metrics;
  double cost = 0.0;
};

/// The paper's "hardware generation tool based on exhaustive search"
/// (§3.3): evaluate every configuration in H with the cost model and return
/// the arg-min of the scalar cost function. Exact, and therefore the ground
/// truth the hardware generation *network* is trained to imitate.
class ExhaustiveSearch {
 public:
  ExhaustiveSearch(const HwSearchSpace& space, const accel::CostModel& model);

  /// Optimal configuration for a network given as a list of layer shapes.
  [[nodiscard]] HwSearchResult run(std::span<const accel::ConvShape> layers,
                                   const accel::HwCostFn& cost_fn) const;

  /// Optimal configuration when per-config metrics were precomputed
  /// (`metrics[i]` corresponds to `space.config_at(i)`), e.g. via a cost
  /// lookup table. Exactness is preserved; only the cost-model calls are
  /// amortized.
  [[nodiscard]] HwSearchResult run_precomputed(
      std::span<const accel::CostMetrics> metrics,
      const accel::HwCostFn& cost_fn) const;

  /// Per-config network metrics for all configurations in space order.
  [[nodiscard]] std::vector<accel::CostMetrics> evaluate_all(
      std::span<const accel::ConvShape> layers) const;

  [[nodiscard]] const HwSearchSpace& space() const { return space_; }

 private:
  const HwSearchSpace& space_;
  const accel::CostModel& model_;
};

}  // namespace dance::hwgen
