#pragma once

#include <cstddef>
#include <vector>

#include "accel/accelerator.h"

namespace dance::hwgen {

/// The hardware design space H of §4.1: PE_X, PE_Y in [8, 24],
/// RF size in {4, 8, ..., 64} and three dataflows, enumerated with a flat
/// index so exhaustive tools and one-hot encoders agree on ordering.
class HwSearchSpace {
 public:
  struct Options {
    int pe_min = 8;
    int pe_max = 24;
    int rf_min = 4;
    int rf_max = 64;
    int rf_step = 4;
  };

  HwSearchSpace();  ///< paper defaults (§4.1)
  explicit HwSearchSpace(const Options& opts);

  [[nodiscard]] int num_pe_choices() const { return pe_count_; }
  [[nodiscard]] int num_rf_choices() const { return rf_count_; }
  [[nodiscard]] int num_dataflow_choices() const { return 3; }

  /// Total number of configurations.
  [[nodiscard]] std::size_t size() const;

  /// Flat-index <-> configuration mapping.
  [[nodiscard]] accel::AcceleratorConfig config_at(std::size_t index) const;
  [[nodiscard]] std::size_t index_of(const accel::AcceleratorConfig& c) const;

  /// Per-dimension choice indices (for classifier heads / one-hot encoding).
  [[nodiscard]] int pe_index(int pe) const;
  [[nodiscard]] int rf_index(int rf) const;
  [[nodiscard]] int dataflow_index(accel::Dataflow df) const;
  [[nodiscard]] int pe_value(int index) const;
  [[nodiscard]] int rf_value(int index) const;
  [[nodiscard]] accel::Dataflow dataflow_value(int index) const;

  /// Width of the concatenated one-hot encoding of a configuration
  /// (PEX + PEY + RF + Dataflow classes).
  [[nodiscard]] int encoding_width() const {
    return 2 * pe_count_ + rf_count_ + 3;
  }

  /// Concatenated one-hot encoding of a configuration.
  [[nodiscard]] std::vector<float> encode(const accel::AcceleratorConfig& c) const;

  [[nodiscard]] const Options& options() const { return opts_; }

 private:
  Options opts_;
  int pe_count_;
  int rf_count_;
};

}  // namespace dance::hwgen
