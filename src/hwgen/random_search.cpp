#include "hwgen/random_search.h"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace dance::hwgen {

RandomSearch::RandomSearch(const HwSearchSpace& space,
                           const accel::CostModel& model, int budget)
    : space_(space), model_(model), budget_(budget) {
  if (budget < 1) throw std::invalid_argument("RandomSearch: budget < 1");
}

HwSearchResult RandomSearch::run(std::span<const accel::ConvShape> layers,
                                 const accel::HwCostFn& cost_fn,
                                 util::Rng& rng) const {
  if (layers.empty()) throw std::invalid_argument("RandomSearch: no layers");
  HwSearchResult best;
  best.cost = std::numeric_limits<double>::infinity();
  for (int i = 0; i < budget_; ++i) {
    const std::size_t idx = static_cast<std::size_t>(
        rng.randint(0, static_cast<int>(space_.size()) - 1));
    const accel::AcceleratorConfig config = space_.config_at(idx);
    const accel::CostMetrics m = model_.network_cost(config, layers);
    const double cost = cost_fn(m);
    if (cost < best.cost) best = HwSearchResult{config, m, cost};
  }
  return best;
}

SimulatedAnnealing::SimulatedAnnealing(const HwSearchSpace& space,
                                       const accel::CostModel& model,
                                       const Options& opts)
    : space_(space), model_(model), opts_(opts) {
  if (opts.steps < 1 || opts.cooling <= 0.0 || opts.cooling >= 1.0) {
    throw std::invalid_argument("SimulatedAnnealing: bad options");
  }
}

SimulatedAnnealing::SimulatedAnnealing(const HwSearchSpace& space,
                                       const accel::CostModel& model)
    : SimulatedAnnealing(space, model, Options{}) {}

HwSearchResult SimulatedAnnealing::run(std::span<const accel::ConvShape> layers,
                                       const accel::HwCostFn& cost_fn,
                                       util::Rng& rng) const {
  if (layers.empty()) throw std::invalid_argument("SimulatedAnnealing: no layers");
  const auto& o = space_.options();

  auto evaluate = [&](const accel::AcceleratorConfig& c) {
    return cost_fn(model_.network_cost(c, layers));
  };
  auto neighbour = [&](accel::AcceleratorConfig c) {
    // Perturb one randomly chosen dimension by one step.
    switch (rng.randint(0, 3)) {
      case 0:
        c.pe_x = std::clamp(c.pe_x + (rng.randint(0, 1) ? 1 : -1), o.pe_min,
                            o.pe_max);
        break;
      case 1:
        c.pe_y = std::clamp(c.pe_y + (rng.randint(0, 1) ? 1 : -1), o.pe_min,
                            o.pe_max);
        break;
      case 2:
        c.rf_size = std::clamp(
            c.rf_size + (rng.randint(0, 1) ? o.rf_step : -o.rf_step), o.rf_min,
            o.rf_max);
        break;
      default:
        c.dataflow = space_.dataflow_value(rng.randint(0, 2));
        break;
    }
    return c;
  };

  accel::AcceleratorConfig cur = space_.config_at(static_cast<std::size_t>(
      rng.randint(0, static_cast<int>(space_.size()) - 1)));
  double cur_cost = evaluate(cur);
  HwSearchResult best{cur, model_.network_cost(cur, layers), cur_cost};
  double temperature = opts_.initial_temperature * cur_cost;

  for (int step = 0; step < opts_.steps; ++step) {
    const accel::AcceleratorConfig cand = neighbour(cur);
    const double cand_cost = evaluate(cand);
    const double delta = cand_cost - cur_cost;
    if (delta <= 0.0 ||
        (temperature > 0.0 &&
         rng.uniform() < std::exp(-delta / std::max(temperature, 1e-12)))) {
      cur = cand;
      cur_cost = cand_cost;
      if (cur_cost < best.cost) {
        best = HwSearchResult{cur, model_.network_cost(cur, layers), cur_cost};
      }
    }
    temperature *= opts_.cooling;
  }
  return best;
}

}  // namespace dance::hwgen
