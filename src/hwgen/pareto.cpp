#include "hwgen/pareto.h"

#include <stdexcept>

namespace dance::hwgen {

bool dominates(const accel::CostMetrics& a, const accel::CostMetrics& b) {
  const bool le = a.latency_ms <= b.latency_ms && a.energy_mj <= b.energy_mj &&
                  a.area_mm2 <= b.area_mm2;
  const bool lt = a.latency_ms < b.latency_ms || a.energy_mj < b.energy_mj ||
                  a.area_mm2 < b.area_mm2;
  return le && lt;
}

std::vector<ParetoPoint> pareto_front(const HwSearchSpace& space,
                                      std::span<const accel::CostMetrics> metrics) {
  if (metrics.size() != space.size()) {
    throw std::invalid_argument("pareto_front: metrics size mismatch");
  }
  std::vector<ParetoPoint> front;
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    bool dominated = false;
    for (std::size_t j = 0; j < metrics.size() && !dominated; ++j) {
      if (j != i && dominates(metrics[j], metrics[i])) dominated = true;
    }
    if (!dominated) front.push_back({space.config_at(i), metrics[i]});
  }
  return front;
}

}  // namespace dance::hwgen
