#include "hwgen/coordinate_descent.h"

#include <limits>
#include <stdexcept>

namespace dance::hwgen {

CoordinateDescent::CoordinateDescent(const HwSearchSpace& space,
                                     const accel::CostModel& model,
                                     int restarts, int max_sweeps)
    : space_(space), model_(model), restarts_(restarts), max_sweeps_(max_sweeps) {
  if (restarts < 1 || max_sweeps < 1) {
    throw std::invalid_argument("CoordinateDescent: bad iteration counts");
  }
}

HwSearchResult CoordinateDescent::run(std::span<const accel::ConvShape> layers,
                                      const accel::HwCostFn& cost_fn) const {
  if (layers.empty()) throw std::invalid_argument("CoordinateDescent: no layers");
  evaluations_ = 0;

  auto evaluate = [&](const accel::AcceleratorConfig& c) {
    ++evaluations_;
    return cost_fn(model_.network_cost(c, layers));
  };

  HwSearchResult global_best;
  global_best.cost = std::numeric_limits<double>::infinity();

  const auto& opts = space_.options();
  for (int restart = 0; restart < restarts_; ++restart) {
    // Deterministic spread of starting points across the space diagonal.
    const double t = restarts_ == 1
                         ? 0.5
                         : static_cast<double>(restart) / (restarts_ - 1);
    accel::AcceleratorConfig cur;
    cur.pe_x = space_.pe_value(
        static_cast<int>(t * (space_.num_pe_choices() - 1)));
    cur.pe_y = cur.pe_x;
    cur.rf_size = space_.rf_value(
        static_cast<int>(t * (space_.num_rf_choices() - 1)));
    cur.dataflow = space_.dataflow_value(restart % 3);
    double cur_cost = evaluate(cur);

    for (int sweep = 0; sweep < max_sweeps_; ++sweep) {
      bool improved = false;
      // Coordinate 1: PE_X.
      for (int px = opts.pe_min; px <= opts.pe_max; ++px) {
        accel::AcceleratorConfig c = cur;
        c.pe_x = px;
        if (const double cost = evaluate(c); cost < cur_cost) {
          cur = c;
          cur_cost = cost;
          improved = true;
        }
      }
      // Coordinate 2: PE_Y.
      for (int py = opts.pe_min; py <= opts.pe_max; ++py) {
        accel::AcceleratorConfig c = cur;
        c.pe_y = py;
        if (const double cost = evaluate(c); cost < cur_cost) {
          cur = c;
          cur_cost = cost;
          improved = true;
        }
      }
      // Coordinate 3: RF size.
      for (int rf = opts.rf_min; rf <= opts.rf_max; rf += opts.rf_step) {
        accel::AcceleratorConfig c = cur;
        c.rf_size = rf;
        if (const double cost = evaluate(c); cost < cur_cost) {
          cur = c;
          cur_cost = cost;
          improved = true;
        }
      }
      // Coordinate 4: dataflow.
      for (auto df : accel::kAllDataflows) {
        accel::AcceleratorConfig c = cur;
        c.dataflow = df;
        if (const double cost = evaluate(c); cost < cur_cost) {
          cur = c;
          cur_cost = cost;
          improved = true;
        }
      }
      if (!improved) break;
    }

    if (cur_cost < global_best.cost) {
      global_best.config = cur;
      global_best.cost = cur_cost;
      global_best.metrics = model_.network_cost(cur, layers);
    }
  }
  return global_best;
}

}  // namespace dance::hwgen
