#include "testing/generators.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

namespace dance::testing {

namespace {

/// Log-uniform-ish positive integer in [1, hi]: small values are common,
/// large ones still reachable — matches how layer dimensions distribute.
int log_randint(util::Rng& rng, int hi) {
  const float u = rng.uniform(0.0F, std::log2(static_cast<float>(hi) + 1.0F));
  const int v = static_cast<int>(std::exp2(u));
  return std::clamp(v, 1, hi);
}

void push_if_valid(std::vector<accel::ConvShape>& out, accel::ConvShape s) {
  if (s.valid()) out.push_back(s);
}

}  // namespace

Generator<accel::ConvShape> conv_shape_gen() {
  Generator<accel::ConvShape> gen;
  gen.sample = [](util::Rng& rng) {
    accel::ConvShape s;
    s.n = log_randint(rng, 4);
    s.h = log_randint(rng, 32);
    s.w = rng.uniform() < 0.7F ? s.h : log_randint(rng, 32);
    s.stride = rng.uniform() < 0.25F ? 2 : 1;

    const int kind = rng.randint(0, 3);
    if (kind == 0) {
      // Pointwise: 1x1 dense, channel-heavy.
      s.r = s.s = 1;
      s.c = log_randint(rng, 128);
      s.k = log_randint(rng, 128);
    } else if (kind == 1) {
      // Depthwise: groups == c == k, odd kernel.
      s.r = s.s = 2 * rng.randint(0, 3) + 1;
      s.c = s.k = s.groups = log_randint(rng, 64);
    } else if (kind == 2) {
      // Grouped: channels are per-group counts times the group count.
      s.groups = 1 << rng.randint(1, 3);
      s.c = log_randint(rng, 16) * s.groups;
      s.k = log_randint(rng, 16) * s.groups;
      s.r = s.s = 2 * rng.randint(0, 2) + 1;
    } else {
      // Dense square conv.
      s.r = s.s = 2 * rng.randint(0, 3) + 1;
      s.c = log_randint(rng, 64);
      s.k = log_randint(rng, 64);
    }
    return s;
  };
  gen.shrink = [](const accel::ConvShape& s) {
    std::vector<accel::ConvShape> out;
    // Degroup first: a failure that survives groups=1 is easier to read.
    if (s.groups > 1) {
      accel::ConvShape t = s;
      t.groups = 1;
      t.c = s.c / s.groups;
      t.k = s.k / s.groups;
      push_if_valid(out, t);
    }
    const auto shrink_field = [&](int accel::ConvShape::*field, int target) {
      for (long v : shrink_toward(s.*field, target)) {
        accel::ConvShape t = s;
        t.*field = static_cast<int>(v);
        if (t.groups > 1) {
          // Keep divisibility: only shrink c/k in whole group multiples.
          if ((field == &accel::ConvShape::c || field == &accel::ConvShape::k) &&
              t.*field % t.groups != 0) {
            continue;
          }
        }
        push_if_valid(out, t);
      }
    };
    shrink_field(&accel::ConvShape::n, 1);
    shrink_field(&accel::ConvShape::h, 1);
    shrink_field(&accel::ConvShape::w, 1);
    shrink_field(&accel::ConvShape::c, s.groups);
    shrink_field(&accel::ConvShape::k, s.groups);
    shrink_field(&accel::ConvShape::r, 1);
    shrink_field(&accel::ConvShape::s, 1);
    shrink_field(&accel::ConvShape::stride, 1);
    return out;
  };
  gen.show = [](const accel::ConvShape& s) { return s.to_string(); };
  return gen;
}

Generator<accel::AcceleratorConfig> accel_config_gen() {
  Generator<accel::AcceleratorConfig> gen;
  gen.sample = [](util::Rng& rng) {
    accel::AcceleratorConfig c;
    c.pe_x = rng.randint(8, 24);
    c.pe_y = rng.randint(8, 24);
    c.rf_size = 4 * rng.randint(1, 16);
    c.dataflow = accel::kAllDataflows[static_cast<std::size_t>(rng.randint(0, 2))];
    return c;
  };
  gen.shrink = [](const accel::AcceleratorConfig& c) {
    std::vector<accel::AcceleratorConfig> out;
    for (long v : shrink_toward(c.pe_x, 8)) {
      accel::AcceleratorConfig t = c;
      t.pe_x = static_cast<int>(v);
      out.push_back(t);
    }
    for (long v : shrink_toward(c.pe_y, 8)) {
      accel::AcceleratorConfig t = c;
      t.pe_y = static_cast<int>(v);
      out.push_back(t);
    }
    for (long v : shrink_toward(c.rf_size / 4, 1)) {
      accel::AcceleratorConfig t = c;
      t.rf_size = 4 * static_cast<int>(v);
      out.push_back(t);
    }
    return out;
  };
  gen.show = [](const accel::AcceleratorConfig& c) { return c.to_string(); };
  return gen;
}

std::string show_tensor(const tensor::Tensor& t) {
  std::ostringstream out;
  out << "Tensor" << t.shape_str() << " [";
  const std::size_t n = std::min<std::size_t>(t.numel(), 8);
  for (std::size_t i = 0; i < n; ++i) {
    if (i != 0) out << ", ";
    out << t[i];
  }
  if (t.numel() > n) out << ", ...";
  out << "]";
  return out.str();
}

Generator<tensor::Tensor> tensor_gen(int max_rows, int max_cols, float stddev) {
  Generator<tensor::Tensor> gen;
  gen.sample = [max_rows, max_cols, stddev](util::Rng& rng) {
    const int r = rng.randint(1, max_rows);
    const int c = rng.randint(1, max_cols);
    return tensor::Tensor::randn({r, c}, rng, 0.0F, stddev);
  };
  gen.shrink = [](const tensor::Tensor& t) {
    std::vector<tensor::Tensor> out;
    const int r = t.rows();
    const int c = t.cols();
    // Keep the top-left block at half the rows / half the cols.
    for (const auto [nr, nc] : {std::pair{(r + 1) / 2, c}, {r, (c + 1) / 2}}) {
      if (nr == r && nc == c) continue;
      tensor::Tensor s({nr, nc});
      for (int i = 0; i < nr; ++i) {
        for (int j = 0; j < nc; ++j) s.at(i, j) = t.at(i, j);
      }
      out.push_back(std::move(s));
    }
    // All-zeros of the same shape (the "simplest" tensor).
    bool all_zero = true;
    for (std::size_t i = 0; i < t.numel(); ++i) all_zero &= (t[i] == 0.0F);
    if (!all_zero) out.push_back(tensor::Tensor::zeros(t.shape()));
    return out;
  };
  gen.show = show_tensor;
  return gen;
}

Generator<std::vector<tensor::Tensor>> tensor_list_gen(int max_tensors,
                                                       int max_dim) {
  Generator<std::vector<tensor::Tensor>> gen;
  gen.sample = [max_tensors, max_dim](util::Rng& rng) {
    std::vector<tensor::Tensor> out;
    const int count = rng.randint(0, max_tensors);
    for (int t = 0; t < count; ++t) {
      tensor::Tensor ten = rng.uniform() < 0.3F
                               ? tensor::Tensor({rng.randint(1, max_dim)})
                               : tensor::Tensor({rng.randint(1, max_dim),
                                                 rng.randint(1, max_dim)});
      for (std::size_t i = 0; i < ten.numel(); ++i) {
        switch (rng.randint(0, 9)) {
          case 0: ten[i] = 0.0F; break;
          case 1: ten[i] = -0.0F; break;
          case 2: ten[i] = std::numeric_limits<float>::infinity(); break;
          case 3: ten[i] = -std::numeric_limits<float>::infinity(); break;
          case 4: ten[i] = std::numeric_limits<float>::quiet_NaN(); break;
          case 5: ten[i] = std::numeric_limits<float>::denorm_min(); break;
          default: ten[i] = rng.normal(0.0F, 10.0F); break;
        }
      }
      out.push_back(std::move(ten));
    }
    return out;
  };
  gen.shrink = [](const std::vector<tensor::Tensor>& ts) {
    std::vector<std::vector<tensor::Tensor>> out;
    // Drop one tensor at a time.
    for (std::size_t i = 0; i < ts.size(); ++i) {
      std::vector<tensor::Tensor> smaller;
      for (std::size_t j = 0; j < ts.size(); ++j) {
        if (j != i) smaller.push_back(ts[j]);
      }
      out.push_back(std::move(smaller));
    }
    return out;
  };
  gen.show = [](const std::vector<tensor::Tensor>& ts) {
    std::ostringstream out;
    out << ts.size() << " tensors {";
    for (std::size_t i = 0; i < ts.size(); ++i) {
      if (i != 0) out << "; ";
      out << show_tensor(ts[i]);
    }
    out << "}";
    return out.str();
  };
  return gen;
}

Generator<tensor::Tensor> arch_encoding_gen(int num_blocks, int num_ops) {
  Generator<tensor::Tensor> gen;
  gen.sample = [num_blocks, num_ops](util::Rng& rng) {
    tensor::Tensor enc({1, num_blocks * num_ops});
    for (int b = 0; b < num_blocks; ++b) {
      float* row = enc.data() + static_cast<std::ptrdiff_t>(b) * num_ops;
      if (rng.uniform() < 0.5F) {
        row[rng.randint(0, num_ops - 1)] = 1.0F;  // one-hot block
      } else {
        // Soft distribution: softmax of random logits.
        float maxv = -1e30F;
        std::vector<float> logits(static_cast<std::size_t>(num_ops));
        for (auto& l : logits) {
          l = rng.normal(0.0F, 2.0F);
          maxv = std::max(maxv, l);
        }
        float sum = 0.0F;
        for (auto& l : logits) {
          l = std::exp(l - maxv);
          sum += l;
        }
        for (int j = 0; j < num_ops; ++j) row[j] = logits[static_cast<std::size_t>(j)] / sum;
      }
    }
    return enc;
  };
  gen.shrink = [num_blocks, num_ops](const tensor::Tensor& enc) {
    std::vector<tensor::Tensor> out;
    // Collapse one soft block at a time to a first-op one-hot.
    for (int b = 0; b < num_blocks; ++b) {
      const float* row = enc.data() + static_cast<std::ptrdiff_t>(b) * num_ops;
      const bool already = row[0] == 1.0F;
      if (already) continue;
      tensor::Tensor t = enc;
      float* trow = t.data() + static_cast<std::ptrdiff_t>(b) * num_ops;
      for (int j = 0; j < num_ops; ++j) trow[j] = j == 0 ? 1.0F : 0.0F;
      out.push_back(std::move(t));
    }
    return out;
  };
  gen.show = show_tensor;
  return gen;
}

std::string PoolWorkload::to_string() const {
  std::ostringstream out;
  out << "PoolWorkload(n=" << n << " grain=" << grain << " threads=" << threads
      << " body=" << body << ")";
  return out.str();
}

Generator<PoolWorkload> pool_workload_gen(int num_bodies) {
  Generator<PoolWorkload> gen;
  gen.sample = [num_bodies](util::Rng& rng) {
    PoolWorkload w;
    // Mix tiny (inline) ranges, grain-boundary-straddling ranges and ranges
    // much larger than lane count * grain.
    w.n = static_cast<long>(log_randint(rng, 1 << 15)) - 1;
    w.grain = static_cast<long>(log_randint(rng, 4096));
    w.threads = rng.randint(1, 8);
    w.body = rng.randint(0, num_bodies - 1);
    return w;
  };
  gen.shrink = [](const PoolWorkload& w) {
    std::vector<PoolWorkload> out;
    for (long v : shrink_toward(w.n, 0)) {
      PoolWorkload t = w;
      t.n = v;
      out.push_back(t);
    }
    for (long v : shrink_toward(w.grain, 1)) {
      PoolWorkload t = w;
      t.grain = v;
      out.push_back(t);
    }
    for (long v : shrink_toward(w.threads, 1)) {
      PoolWorkload t = w;
      t.threads = static_cast<int>(v);
      out.push_back(t);
    }
    return out;
  };
  gen.show = [](const PoolWorkload& w) { return w.to_string(); };
  return gen;
}

}  // namespace dance::testing
