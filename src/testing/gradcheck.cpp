#include "testing/gradcheck.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "tensor/ops.h"

namespace dance::testing {

namespace {

namespace ops = tensor::ops;
using tensor::Tensor;
using tensor::Variable;

/// Weighted scalar reduction of a forward output. The weight tensor breaks
/// symmetries (a plain sum is constant through softmax-like outputs).
double loss_value(const Variable& y, const Tensor& w) {
  double loss = 0.0;
  for (std::size_t i = 0; i < y.value().numel(); ++i) {
    loss += static_cast<double>(y.value()[i]) * static_cast<double>(w[i]);
  }
  return loss;
}

struct BufferSnapshot {
  std::vector<Tensor*> live;
  std::vector<Tensor> saved;

  explicit BufferSnapshot(nn::Module& m) : live(m.buffers()) {
    saved.reserve(live.size());
    for (Tensor* t : live) saved.push_back(*t);
  }
  void restore() const {
    for (std::size_t i = 0; i < live.size(); ++i) *live[i] = saved[i];
  }
};

}  // namespace

std::string gradcheck_module(nn::Module& module, const tensor::Tensor& input,
                             util::Rng& rng, const GradcheckOptions& opts) {
  BufferSnapshot buffers(module);

  // Break the exactly-at-the-kink structure of freshly initialized modules
  // (zero biases + a dead upstream ReLU row put pre-activations at exactly 0,
  // where the loss is genuinely non-differentiable).
  if (opts.param_jitter > 0.0F) {
    for (auto& param : module.parameters()) {
      Tensor& value = param.value();
      for (std::size_t i = 0; i < value.numel(); ++i) {
        value[i] += rng.uniform(-opts.param_jitter, opts.param_jitter);
      }
    }
  }

  // Probe the output shape once to build the fixed weighting tensor.
  buffers.restore();
  const Variable probe = module.forward(Variable(input));
  Tensor w = Tensor::randn(probe.value().shape(), rng);

  // Analytic pass: L = sum(forward(x) .* w), backward through the module.
  module.zero_grad();
  Variable x(input, /*requires_grad=*/true);
  buffers.restore();
  const Variable loss = ops::sum_all(ops::mul(module.forward(x), Variable(w)));
  loss.backward();

  // Numeric loss as a pure function of the current parameter values and the
  // mutable working copy of the input.
  Tensor x_work = input;
  const auto eval_loss = [&]() {
    buffers.restore();
    return loss_value(module.forward(Variable(x_work)), w);
  };

  std::ostringstream fail;
  const auto compare = [&](const std::string& name, std::size_t index,
                           double analytic, double numeric) {
    const double scale = 1.0 + std::max(std::abs(analytic), std::abs(numeric));
    if (std::abs(analytic - numeric) <= opts.tol * scale &&
        std::isfinite(analytic) && std::isfinite(numeric)) {
      return true;
    }
    fail << name << "[" << index << "]: analytic " << analytic << " vs numeric "
         << numeric << " (eps=" << opts.eps << ", tol=" << opts.tol << ")";
    return false;
  };

  // Unperturbed loss, shared by every one-sided difference below.
  const double base_loss = eval_loss();

  // Central difference of the loss in `scalar`, with a kink guard: the
  // forward and backward one-sided differences agree to O(eps·f'') on smooth
  // regions but differ by the slope jump |d⁺ - d⁻| whenever a ReLU kink lies
  // anywhere inside [scalar-eps, scalar+eps] — no matter where, so this also
  // catches kinks that sit dead-center where multi-step central differences
  // all converge to the useless two-sided average. `smooth` is cleared in
  // that case and the caller skips the coordinate.
  const auto central_diff = [&](float& scalar, bool& smooth) {
    const float saved = scalar;
    scalar = saved + opts.eps;
    const double up = eval_loss();
    scalar = saved - opts.eps;
    const double down = eval_loss();
    scalar = saved;
    const double fwd = (up - base_loss) / static_cast<double>(opts.eps);
    const double bwd = (base_loss - down) / static_cast<double>(opts.eps);
    const double scale = 1.0 + std::max(std::abs(fwd), std::abs(bwd));
    smooth = std::abs(fwd - bwd) <= 0.25 * opts.tol * scale;
    return (up - down) / (2.0 * static_cast<double>(opts.eps));
  };

  // Parameter gradients, sampled coordinates.
  for (auto& [name, param] : module.named_parameters()) {
    if (!param.requires_grad()) continue;
    Tensor& value = param.value();
    const Tensor& grad = param.grad();
    const std::size_t numel = value.numel();
    if (numel == 0) continue;
    const int coords =
        std::min<int>(opts.coords_per_tensor, static_cast<int>(numel));
    for (int c = 0; c < coords; ++c) {
      const auto i = static_cast<std::size_t>(
          rng.randint(0, static_cast<int>(numel) - 1));
      bool smooth = false;
      const double numeric = central_diff(value[i], smooth);
      if (!smooth) continue;
      const double analytic =
          grad.numel() == 0 ? 0.0 : static_cast<double>(grad[i]);
      if (!compare(name, i, analytic, numeric)) return fail.str();
    }
  }

  // Input gradient, sampled coordinates (perturbing the working copy).
  if (opts.check_input && input.numel() != 0) {
    const int coords = std::min<int>(opts.coords_per_tensor,
                                     static_cast<int>(input.numel()));
    for (int c = 0; c < coords; ++c) {
      const auto i = static_cast<std::size_t>(
          rng.randint(0, static_cast<int>(input.numel()) - 1));
      bool smooth = false;
      const double numeric = central_diff(x_work[i], smooth);
      if (!smooth) continue;
      const double analytic = static_cast<double>(x.grad()[i]);
      if (!compare("input", i, analytic, numeric)) return fail.str();
    }
  }

  buffers.restore();
  module.zero_grad();
  return {};
}

}  // namespace dance::testing
