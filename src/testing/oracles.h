#pragma once

#include <string>

#include "accel/cost_model.h"
#include "accel/systolic_sim.h"

namespace dance::testing {

/// Tolerance policy of the analytical-model vs systolic-simulator latency
/// cross-check (see docs/testing.md, "Cost-model oracle tolerance").
///
/// The two backends are *independent* models of the same machine — a
/// closed-form roofline vs a tile-walking simulation — so they are expected
/// to agree in order of magnitude, not bitwise:
///  * both are bounded below by the ideal-utilization roofline
///    (MACs / #PEs), which this oracle checks exactly, and
///  * the simulator adds pipeline fill/drain and models DRAM streaming with
///    different reuse assumptions, so the latency and energy ratios are
///    bounded multiplicatively.
///
/// The default bands were calibrated over 2e4 random (config, shape) points
/// drawn from the same generators the property suite uses (seed 20260805):
/// |log10 ratio| medians are ~0.37 (latency) / ~0.33 (energy), p99 ~1.5 /
/// ~1.4, observed maxima 2.49 / 2.13 — the tail is depthwise layers, where
/// the roofline mapping exploits group sparsity the im2col GEMM lowering
/// gives up. 3.0 leaves ~3x headroom over the observed worst case; the
/// order-of-magnitude teeth of the oracle are invariants 1-4 and 6 below,
/// which are exact.
struct BackendTolerance {
  /// |log10(systolic_latency / analytical_latency)| bound.
  double latency_log10 = 3.0;
  /// |log10(systolic_energy / analytical_energy)| bound.
  double energy_log10 = 3.0;
};

/// Differential oracle: evaluates one (config, layer) point on both
/// accelerator backends and checks every cross-backend invariant:
///  1. both report finite, strictly positive cycles and energy,
///  2. `CostModel::explain` component totals equal `layer_cost` exactly,
///  3. analytical compute cycles >= MACs / #PEs (ceil quantization can only
///     lose utilization),
///  4. simulated cycles >= MACs / #PEs (fill/drain can only add cycles),
///  5. latency/energy ratios inside the `BackendTolerance` bands,
///  6. the two backends report the bit-identical area (shared area model).
///
/// Returns "" on success, else a diagnosis naming the violated invariant
/// with both backends' numbers — usable directly as a property body.
[[nodiscard]] std::string cross_check_backends(
    const accel::CostModel& model, const accel::SystolicSimulator& sim,
    const accel::AcceleratorConfig& config, const accel::ConvShape& shape,
    const BackendTolerance& tol = {});

}  // namespace dance::testing
