#pragma once

#include <string>
#include <vector>

#include "accel/accelerator.h"
#include "accel/conv_shape.h"
#include "tensor/tensor.h"
#include "testing/property.h"

namespace dance::testing {

// Seeded generators (with shrinkers and printers) for the domain objects the
// DANCE test suites fuzz over. All of them draw exclusively from the passed
// Rng, so a trial seed fully determines the generated value.

/// Randomized valid convolution layer, biased toward the kinds of layers the
/// MBConv backbone produces: pointwise (1x1), depthwise (groups == c) and
/// dense square convolutions, strides 1/2, small batches. Shrinks toward the
/// 1x1x1 unit layer while keeping `ConvShape::valid()` true.
[[nodiscard]] Generator<accel::ConvShape> conv_shape_gen();

/// Accelerator configuration from the paper's design space ranges
/// (PE in [8,24], RF in {4..64}, all three dataflows). Shrinks toward the
/// minimal 8x8/RF4 corner; the dataflow is preserved so a dataflow-specific
/// failure stays in its dataflow while shrinking.
[[nodiscard]] Generator<accel::AcceleratorConfig> accel_config_gen();

/// Random rank-2 tensor: shape in [1,max_rows] x [1,max_cols], i.i.d. normal
/// entries scaled by `stddev`. Shrinks the shape (halving rows/cols, keeping
/// the top-left block) before zeroing entries.
[[nodiscard]] Generator<tensor::Tensor> tensor_gen(int max_rows, int max_cols,
                                                   float stddev = 1.0F);

/// Random tensor *list* for checkpoint round-trips: up to `max_tensors`
/// tensors of rank 1 or 2, entries including the IEEE edge cases a byte-exact
/// round trip must preserve (±0, ±inf, NaN, denormals).
[[nodiscard]] Generator<std::vector<tensor::Tensor>> tensor_list_gen(
    int max_tensors = 6, int max_dim = 16);

/// Architecture encoding for evaluator inputs: [1, num_blocks * num_ops],
/// each block a distribution over ops — one-hot, softmax-soft, or mixed.
/// Shrinks toward the all-first-op one-hot encoding.
[[nodiscard]] Generator<tensor::Tensor> arch_encoding_gen(int num_blocks,
                                                          int num_ops);

/// Randomized `parallel_for` workload for the pool bit-identity fuzz:
/// range length, grain, lane count and which arithmetic body to run.
struct PoolWorkload {
  long n = 0;
  long grain = 1;
  int threads = 1;
  int body = 0;  ///< index into the fuzz harness's body table

  [[nodiscard]] std::string to_string() const;
};
[[nodiscard]] Generator<PoolWorkload> pool_workload_gen(int num_bodies);

/// Render helpers shared by the suites.
[[nodiscard]] std::string show_tensor(const tensor::Tensor& t);

}  // namespace dance::testing
