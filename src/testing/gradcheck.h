#pragma once

#include <functional>
#include <string>
#include <vector>

#include "nn/module.h"
#include "util/rng.h"

namespace dance::testing {

/// Options of the central-difference gradient check.
struct GradcheckOptions {
  float eps = 1e-3F;  ///< central-difference step
  /// Mixed tolerance: |analytic - numeric| <= tol * (1 + max(|a|, |n|)).
  double tol = 2e-2;
  /// Coordinates sampled per tensor (checking every scalar of a big module
  /// is O(numel) forwards; sampling keeps 100-trial property runs fast while
  /// different trials cover different coordinates).
  int coords_per_tensor = 3;
  bool check_input = true;  ///< also verify dL/dinput
  /// Uniform noise added to every parameter before the check. Fresh modules
  /// have exactly-zero biases, which place ReLU pre-activations exactly on
  /// the kink whenever an upstream unit dies (dL/dθ⁻ ≠ dL/dθ⁺ there, so no
  /// finite-difference scheme can agree with the one-sided analytic
  /// gradient). The jitter makes exact kinks a measure-zero event; near-kink
  /// coordinates are filtered by the two-step smoothness guard instead.
  float param_jitter = 0.05F;
};

/// Generic central-difference gradient verification for any `nn::Module`.
///
/// Builds the scalar loss L = sum(forward(x) ⊙ W) for a fixed random weight
/// tensor W (so gradients do not cancel through symmetric reductions),
/// back-propagates once, then compares dL/dθ for sampled coordinates of
/// every parameter — and of the input — against (L(θ+eps) - L(θ-eps))/2eps.
///
/// Buffers reported by `module.buffers()` are snapshotted and restored
/// around every forward, so stateful modules (batch norm running statistics)
/// behave as pure functions during the check.
///
/// Coordinates where the loss is locally non-smooth (a ReLU pre-activation
/// within eps of its kink) are detected by comparing the forward and
/// backward one-sided differences — they agree to O(eps) on smooth regions
/// but differ by the slope jump across a kink anywhere in the bracket — and
/// are skipped rather than failed: no finite-difference estimate is
/// meaningful there.
///
/// Returns an empty string when all sampled coordinates match, else a
/// description naming the offending parameter (via `named_parameters()`),
/// the flat coordinate and both gradient values — the signature plugs
/// directly into testing::check as a property body.
[[nodiscard]] std::string gradcheck_module(nn::Module& module,
                                           const tensor::Tensor& input,
                                           util::Rng& rng,
                                           const GradcheckOptions& opts = {});

/// Adapter turning a closure + explicit parameter list into a Module, so
/// composite differentiable systems that are not Modules themselves (the
/// supernet mixture with its architecture parameters, custom heads) can go
/// through `gradcheck_module` unchanged.
class LambdaModule : public nn::Module {
 public:
  using Forward = std::function<tensor::Variable(const tensor::Variable&)>;

  LambdaModule(Forward forward, std::vector<nn::NamedParameter> params,
               std::vector<tensor::Tensor*> buffers = {})
      : forward_(std::move(forward)),
        params_(std::move(params)),
        buffers_(std::move(buffers)) {}

  tensor::Variable forward(const tensor::Variable& x) override {
    return forward_(x);
  }
  [[nodiscard]] std::vector<tensor::Variable> parameters() override {
    std::vector<tensor::Variable> ps;
    ps.reserve(params_.size());
    for (auto& [name, p] : params_) ps.push_back(p);
    return ps;
  }
  [[nodiscard]] std::vector<nn::NamedParameter> named_parameters() override {
    return params_;
  }
  [[nodiscard]] std::vector<tensor::Tensor*> buffers() override {
    return buffers_;
  }

 private:
  Forward forward_;
  std::vector<nn::NamedParameter> params_;
  std::vector<tensor::Tensor*> buffers_;
};

}  // namespace dance::testing
