#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/rng.h"

namespace dance::testing {

/// Configuration of one property check. The defaults come from the
/// environment so a failing CI run can be replayed locally without touching
/// code:
///   DANCE_PBT_SEED    base seed (decimal or 0x-hex), default 0xDA5CE
///   DANCE_PBT_TRIALS  randomized trials per property, default 100
struct PbtConfig {
  std::uint64_t seed = 0xDA5CE;
  int trials = 100;
  /// Upper bound on accepted shrink steps; each step re-runs the property on
  /// every candidate, so this caps worst-case shrink cost.
  int max_shrink_steps = 64;

  [[nodiscard]] static PbtConfig from_env();
};

/// Deterministic per-trial seed stream: splitmix64 over (base seed, trial).
/// Trial t always sees the same generator input for a fixed base seed, no
/// matter how many trials run or in which order properties execute.
[[nodiscard]] std::uint64_t mix_seed(std::uint64_t base, std::uint64_t trial);

/// Outcome of a property check; `report` carries the replay seed and the
/// shrunk counterexample on failure. Intended use:
///   const auto r = check(...);
///   EXPECT_TRUE(r.ok) << r.report;
struct CheckResult {
  bool ok = true;
  int trials_run = 0;
  std::string report;
};

/// A value generator plus (optionally) a shrinker and a printer.
///
/// `sample` draws a random value; `shrink` proposes strictly "smaller"
/// candidates for a failing value (may be null); `show` renders the value in
/// the failure report (may be null).
template <typename T>
struct Generator {
  std::function<T(util::Rng&)> sample;
  std::function<std::vector<T>(const T&)> shrink;
  std::function<std::string(const T&)> show;
};

namespace detail {
/// Formats the failure banner. Kept out of line so the template below stays
/// header-light.
[[nodiscard]] std::string failure_report(const std::string& name, int trial,
                                         const PbtConfig& config,
                                         std::uint64_t trial_seed,
                                         int shrink_steps,
                                         const std::string& counterexample,
                                         const std::string& message);
/// Prints the replay line to stderr immediately (so the seed survives even
/// if a test harness swallows the assertion message).
void announce_failure(const std::string& report);
}  // namespace detail

/// Runs `property` against `config.trials` generated values.
///
/// The property receives the generated value and a deterministic auxiliary
/// Rng (for randomized checks inside the property, e.g. sampling coordinates
/// to finite-difference). The auxiliary Rng is reseeded identically for
/// every shrink candidate, so the property is a pure function of the value
/// during shrinking.
///
/// The property returns an empty string on success or a failure description;
/// thrown exceptions count as failures with the exception text.
template <typename T>
CheckResult check(const std::string& name, const Generator<T>& gen,
                  const std::function<std::string(const T&, util::Rng&)>& property,
                  const PbtConfig& config = PbtConfig::from_env()) {
  CheckResult result;
  for (int trial = 0; trial < config.trials; ++trial) {
    const std::uint64_t trial_seed =
        mix_seed(config.seed, static_cast<std::uint64_t>(trial));
    util::Rng gen_rng(trial_seed);
    T value = gen.sample(gen_rng);

    const auto run = [&](const T& v) -> std::string {
      // Distinct stream from the generator's, but fixed per trial.
      util::Rng prop_rng(mix_seed(trial_seed, 0x9e3779b97f4a7c15ULL));
      try {
        return property(v, prop_rng);
      } catch (const std::exception& e) {
        return std::string("unexpected exception: ") + e.what();
      }
    };

    std::string message = run(value);
    ++result.trials_run;
    if (message.empty()) continue;

    // Greedy shrink: accept the first failing candidate each round until no
    // candidate fails or the step budget runs out.
    int steps = 0;
    if (gen.shrink) {
      bool shrunk = true;
      while (shrunk && steps < config.max_shrink_steps) {
        shrunk = false;
        for (const T& candidate : gen.shrink(value)) {
          const std::string m = run(candidate);
          if (!m.empty()) {
            value = candidate;
            message = m;
            ++steps;
            shrunk = true;
            break;
          }
        }
      }
    }

    result.ok = false;
    result.report = detail::failure_report(
        name, trial, config, trial_seed, steps,
        gen.show ? gen.show(value) : std::string("<no printer>"), message);
    detail::announce_failure(result.report);
    return result;
  }
  return result;
}

// --- Generic shrink helpers -------------------------------------------------

/// Candidates for shrinking an integer toward `target`: the target itself,
/// then successive halvings of the distance. Empty when already there.
[[nodiscard]] std::vector<long> shrink_toward(long value, long target);

}  // namespace dance::testing
