#include "testing/oracles.h"

#include <cmath>
#include <sstream>

namespace dance::testing {

std::string cross_check_backends(const accel::CostModel& model,
                                 const accel::SystolicSimulator& sim,
                                 const accel::AcceleratorConfig& config,
                                 const accel::ConvShape& shape,
                                 const BackendTolerance& tol) {
  const accel::LayerCost analytical = model.layer_cost(config, shape);
  const accel::LayerCost simulated = sim.simulate_layer(config, shape);
  const accel::CostBreakdown breakdown = model.explain(config, shape);
  const double ideal = accel::SystolicSimulator::ideal_cycles(config, shape);

  std::ostringstream fail;
  const auto describe = [&]() -> std::string {
    fail << " [analytical cycles=" << analytical.cycles
         << " energy=" << analytical.energy_pj
         << "; simulated cycles=" << simulated.cycles
         << " energy=" << simulated.energy_pj << "; ideal=" << ideal << "]";
    return fail.str();
  };

  // 1. Finite, positive costs from both backends.
  for (const auto& [backend, cost] :
       {std::pair{"analytical", analytical}, {"systolic", simulated}}) {
    if (!std::isfinite(cost.cycles) || cost.cycles <= 0.0 ||
        !std::isfinite(cost.energy_pj) || cost.energy_pj <= 0.0) {
      fail << backend << " backend produced non-finite or non-positive cost";
      return describe();
    }
  }

  // 2. The breakdown's totals must equal layer_cost bit-exactly — the
  // explain() path recomputes the same mapping, so any divergence means the
  // two entry points drifted apart.
  if (breakdown.total_cycles() != analytical.cycles ||
      breakdown.total_energy_pj() != analytical.energy_pj) {
    fail << "explain() totals diverge from layer_cost(): breakdown cycles="
         << breakdown.total_cycles()
         << " energy=" << breakdown.total_energy_pj();
    return describe();
  }

  // 3./4. Ideal-utilization lower bound. The quantized analytical mapping
  // and the fill/drain-paying simulation can only be slower than
  // MACs / #PEs. Tiny relative slack absorbs double rounding in the
  // product-of-dimensions arithmetic.
  constexpr double kSlack = 1.0 - 1e-12;
  if (breakdown.compute_cycles < ideal * kSlack) {
    fail << "analytical compute cycles fell below the ideal roofline: "
         << breakdown.compute_cycles << " < " << ideal;
    return describe();
  }
  if (simulated.cycles < ideal * kSlack) {
    fail << "simulated cycles fell below the ideal roofline: "
         << simulated.cycles << " < " << ideal;
    return describe();
  }

  // 5. Cross-backend ratio bands (documented tolerance policy).
  const double lat_ratio = std::log10(simulated.cycles / analytical.cycles);
  if (std::abs(lat_ratio) > tol.latency_log10) {
    fail << "latency ratio outside tolerance: |log10(sys/analytical)| = "
         << std::abs(lat_ratio) << " > " << tol.latency_log10;
    return describe();
  }
  const double en_ratio = std::log10(simulated.energy_pj / analytical.energy_pj);
  if (std::abs(en_ratio) > tol.energy_log10) {
    fail << "energy ratio outside tolerance: |log10(sys/analytical)| = "
         << std::abs(en_ratio) << " > " << tol.energy_log10;
    return describe();
  }

  // 6. Shared area model: whole-network metrics must agree on area exactly.
  const accel::ConvShape layers[] = {shape};
  const double area_model = model.network_cost(config, layers).area_mm2;
  const double area_sim = sim.simulate_network(config, layers).area_mm2;
  if (area_model != area_sim) {
    fail << "area models diverged: analytical " << area_model << " vs systolic "
         << area_sim;
    return describe();
  }

  return {};
}

}  // namespace dance::testing
