#include "testing/property.h"

#include <cstdio>
#include <sstream>

#include "util/env.h"

namespace dance::testing {

namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

std::uint64_t mix_seed(std::uint64_t base, std::uint64_t trial) {
  return splitmix64(base ^ splitmix64(trial));
}

PbtConfig PbtConfig::from_env() {
  PbtConfig config;
  // env_u64 accepts decimal and 0x-prefixed hex (strtoull base 0).
  config.seed = util::env_u64("DANCE_PBT_SEED", config.seed);
  config.trials = util::env_int("DANCE_PBT_TRIALS", config.trials, 1);
  return config;
}

namespace detail {

std::string failure_report(const std::string& name, int trial,
                           const PbtConfig& config, std::uint64_t trial_seed,
                           int shrink_steps, const std::string& counterexample,
                           const std::string& message) {
  std::ostringstream out;
  out << "[property] FAIL: " << name << "\n"
      << "  trial " << trial << " of " << config.trials
      << " (trial seed " << trial_seed << ")\n"
      << "  replay: DANCE_PBT_SEED=" << config.seed
      << " DANCE_PBT_TRIALS=" << config.trials << "\n"
      << "  counterexample";
  if (shrink_steps > 0) out << " (after " << shrink_steps << " shrink steps)";
  out << ": " << counterexample << "\n"
      << "  failure: " << message;
  return out.str();
}

void announce_failure(const std::string& report) {
  std::fprintf(stderr, "%s\n", report.c_str());
  std::fflush(stderr);
}

}  // namespace detail

std::vector<long> shrink_toward(long value, long target) {
  std::vector<long> out;
  if (value == target) return out;
  out.push_back(target);
  // Halve the distance repeatedly; keep candidates distinct and ordered from
  // most to least aggressive.
  long delta = (value - target) / 2;
  while (delta != 0) {
    const long candidate = target + delta;
    if (candidate != value && (out.empty() || out.back() != candidate)) {
      out.push_back(candidate);
    }
    delta /= 2;
  }
  const long nudge = value > target ? value - 1 : value + 1;
  if (nudge != target && (out.empty() || out.back() != nudge)) {
    out.push_back(nudge);
  }
  return out;
}

}  // namespace dance::testing
