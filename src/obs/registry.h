#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace dance::obs {

/// Monotonic event counter. inc() is a relaxed atomic add, so counters can
/// sit on hot paths (cache probes, batch executions) without a lock.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  friend class Registry;
  Counter() = default;
  void reset() { v_.store(0, std::memory_order_relaxed); }
  std::atomic<std::uint64_t> v_{0};
};

/// Last-write-wins instantaneous value (loss, lambda, learning rate, ...).
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  friend class Registry;
  Gauge() = default;
  void reset() { v_.store(0.0, std::memory_order_relaxed); }
  std::atomic<double> v_{0.0};
};

/// Samples retained per histogram for the percentile columns. Matches the
/// runtime profiler's historical ring cap so percentile semantics carry over
/// unchanged: p50/p95 describe the most recent kHistogramSampleCap
/// observations, not the full history.
inline constexpr std::size_t kHistogramSampleCap = 4096;

/// Fixed-boundary histogram plus a bounded ring of recent samples.
///
/// The boundaries are upper bounds (Prometheus `le` semantics) and are fixed
/// at registration; observations land in the first bucket whose bound is
/// >= the value, or in the implicit +Inf bucket. count/sum/min/max cover the
/// full lifetime; p50/p95 come from the sample ring at snapshot time.
class Histogram {
 public:
  struct Snapshot {
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    std::vector<double> bounds;  ///< upper bounds, +Inf implied at the end
    /// Cumulative counts, Prometheus-style: buckets[i] counts observations
    /// <= bounds[i]; the final entry (+Inf bucket) equals `count`.
    std::vector<std::uint64_t> buckets;

    [[nodiscard]] double mean() const {
      return count == 0 ? 0.0 : sum / static_cast<double>(count);
    }
  };

  void observe(double v);
  [[nodiscard]] Snapshot snapshot() const;

 private:
  friend class Registry;
  explicit Histogram(std::vector<double> bounds);
  void reset();

  mutable std::mutex mu_;
  std::vector<double> bounds_;           ///< sorted upper bounds
  std::vector<std::uint64_t> buckets_;   ///< per-bucket (non-cumulative), +Inf last
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::vector<double> samples_;  ///< bounded ring for p50/p95
  std::size_t next_sample_ = 0;
};

/// One environment knob as observed by util::env: the effective value after
/// parsing/validation and whether it came from the environment or fell back
/// to the compiled-in default.
struct EnvKnob {
  std::string value;
  bool from_env = false;
};

/// Default boundaries for wall-clock histograms in milliseconds: roughly
/// log-spaced from 1us to 5s, enough resolution for both tensor ops and
/// whole search epochs.
[[nodiscard]] std::vector<double> default_time_bounds_ms();

/// Boundaries suited to microsecond-scale serving latencies.
[[nodiscard]] std::vector<double> default_latency_bounds_us();

/// Process-wide, thread-safe instrument registry.
///
/// Instruments are created on first use and live for the process lifetime,
/// so the returned references stay valid forever and can be cached by hot
/// paths. Names are dot-separated lowercase paths ("serve.cache.hits"); the
/// Prometheus exporter maps dots to underscores. Repeated registration of
/// the same name returns the same instrument (histogram boundaries are fixed
/// by the first registration).
class Registry {
 public:
  /// The process-global registry (never destroyed, safe during shutdown).
  /// First use also arms the DANCE_METRICS_JSON at-exit export when that
  /// variable names a writable path.
  static Registry& global();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name, std::vector<double> bounds);
  Histogram& histogram(const std::string& name) {
    return histogram(name, default_time_bounds_ms());
  }

  /// Record the effective value of one environment knob (util::env calls
  /// this on every read; later reads overwrite).
  void record_env(const std::string& name, std::string value, bool from_env);

  /// Point-in-time copy of every instrument, name-sorted within each kind.
  struct Snapshot {
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<std::pair<std::string, Histogram::Snapshot>> histograms;
    std::vector<std::pair<std::string, EnvKnob>> env;
  };
  [[nodiscard]] Snapshot snapshot() const;

  /// Zero every instrument (identities and env records survive; references
  /// handed out earlier remain valid).
  void reset();

  /// Zero only instruments whose name starts with `prefix` (the profiler's
  /// reset path: drop runtime.op_ms.* without disturbing serve counters).
  void reset_prefix(const std::string& prefix);

 private:
  Registry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, EnvKnob> env_;
};

}  // namespace dance::obs
