#include "obs/registry.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "obs/export.h"
#include "util/stats.h"

namespace dance::obs {

namespace {

/// Path for the at-exit JSON export; set once when the registry is created.
std::string& exit_path() {
  static std::string p;
  return p;
}

void export_at_exit() {
  if (exit_path().empty()) return;
  if (!write_json_file(exit_path())) {
    std::fprintf(stderr, "[obs] failed to write DANCE_METRICS_JSON=%s\n",
                 exit_path().c_str());
  }
}

}  // namespace

std::vector<double> default_time_bounds_ms() {
  return {0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0,
          5.0,   10.0,  50.0, 100.0, 500.0, 1000.0, 5000.0};
}

std::vector<double> default_latency_bounds_us() {
  return {1.0,    5.0,    10.0,    50.0,    100.0,   500.0,
          1000.0, 5000.0, 10000.0, 50000.0, 100000.0};
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  buckets_.assign(bounds_.size() + 1, 0);  // +1: the implicit +Inf bucket
  samples_.reserve(std::min<std::size_t>(kHistogramSampleCap, 64));
}

void Histogram::observe(double v) {
  std::lock_guard<std::mutex> lk(mu_);
  if (count_ == 0 || v < min_) min_ = v;
  if (count_ == 0 || v > max_) max_ = v;
  ++count_;
  sum_ += v;
  // First bound >= v is the owning `le` bucket; past the end -> +Inf.
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  ++buckets_[static_cast<std::size_t>(it - bounds_.begin())];
  if (samples_.size() < kHistogramSampleCap) {
    samples_.push_back(v);
  } else {
    samples_[next_sample_] = v;
    next_sample_ = (next_sample_ + 1) % kHistogramSampleCap;
  }
}

Histogram::Snapshot Histogram::snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  Snapshot s;
  s.count = count_;
  s.sum = sum_;
  s.min = min_;
  s.max = max_;
  s.p50 = util::percentile(samples_, 50.0);
  s.p95 = util::percentile(samples_, 95.0);
  s.bounds = bounds_;
  s.buckets.reserve(buckets_.size());
  std::uint64_t cumulative = 0;
  for (const std::uint64_t b : buckets_) {
    cumulative += b;
    s.buckets.push_back(cumulative);
  }
  return s;
}

void Histogram::reset() {
  std::lock_guard<std::mutex> lk(mu_);
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = min_ = max_ = 0.0;
  samples_.clear();
  next_sample_ = 0;
}

Registry& Registry::global() {
  // Leaked on purpose: instruments may be touched from atexit handlers and
  // static destructors, so the registry must outlive every other static.
  static Registry* r = [] {
    auto* reg = new Registry();
    const char* path = std::getenv("DANCE_METRICS_JSON");
    reg->record_env("DANCE_METRICS_JSON", path == nullptr ? "" : path,
                    path != nullptr);
    if (path != nullptr && *path != '\0') {
      exit_path() = path;
      std::atexit(export_at_exit);
    }
    return reg;
  }();
  return *r;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = counters_[name];
  if (!slot) slot.reset(new Counter());
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot.reset(new Gauge());
  return *slot;
}

Histogram& Registry::histogram(const std::string& name,
                               std::vector<double> bounds) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot.reset(new Histogram(std::move(bounds)));
  return *slot;
}

void Registry::record_env(const std::string& name, std::string value,
                          bool from_env) {
  std::lock_guard<std::mutex> lk(mu_);
  env_[name] = EnvKnob{std::move(value), from_env};
}

Registry::Snapshot Registry::snapshot() const {
  Snapshot out;
  std::lock_guard<std::mutex> lk(mu_);
  out.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    out.counters.emplace_back(name, c->value());
  }
  out.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) out.gauges.emplace_back(name, g->value());
  out.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    out.histograms.emplace_back(name, h->snapshot());
  }
  out.env.assign(env_.begin(), env_.end());
  return out;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

void Registry::reset_prefix(const std::string& prefix) {
  std::lock_guard<std::mutex> lk(mu_);
  const auto matches = [&prefix](const std::string& name) {
    return name.compare(0, prefix.size(), prefix) == 0;
  };
  for (auto& [name, c] : counters_) {
    if (matches(name)) c->reset();
  }
  for (auto& [name, g] : gauges_) {
    if (matches(name)) g->reset();
  }
  for (auto& [name, h] : histograms_) {
    if (matches(name)) h->reset();
  }
}

}  // namespace dance::obs
