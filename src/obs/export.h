#pragma once

#include <string>

namespace dance::obs {

/// One self-contained JSON document: build info, the effective configuration
/// (every env knob read through util::env), all counters/gauges/histograms,
/// and the recent spans of every thread. Keys are sorted, output is valid
/// JSON (python3 -m json.tool clean), and the document is safe to diff
/// between runs.
[[nodiscard]] std::string export_json();

/// Prometheus text exposition format (version 0.0.4): counters, gauges and
/// histograms with cumulative `le` buckets, `_sum` and `_count`. Instrument
/// names are prefixed with `dance_` and dots become underscores.
[[nodiscard]] std::string export_prometheus();

/// Write export_json() to `path`; false (with no throw) on I/O failure.
/// This is what the DANCE_METRICS_JSON at-exit hook calls.
bool write_json_file(const std::string& path);

}  // namespace dance::obs
