#include "obs/export.h"

#include <cmath>
#include <cstdio>
#include <string>

#include "obs/registry.h"
#include "obs/span.h"

namespace dance::obs {

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

/// JSON has no NaN/Inf literals; non-finite values become null.
void append_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  out += buf;
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  out += buf;
}

/// Prometheus metric names allow [a-zA-Z0-9_:]; everything else (the dots in
/// registry names, mostly) maps to '_'.
std::string prom_name(const std::string& name) {
  std::string out = "dance_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

std::string build_info_json() {
  std::string out = "  \"build\": {\n    \"compiler\": ";
#if defined(__VERSION__)
  append_escaped(out, __VERSION__);
#else
  out += "\"unknown\"";
#endif
  out += ",\n    \"standard\": ";
  append_u64(out, static_cast<std::uint64_t>(__cplusplus));
  out += ",\n    \"assertions\": ";
#if defined(NDEBUG)
  out += "false";
#else
  out += "true";
#endif
  out += ",\n    \"sanitizers\": \"";
#if defined(__SANITIZE_THREAD__)
  out += "thread";
#elif defined(__SANITIZE_ADDRESS__)
  out += "address";
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
  out += "thread";
#elif __has_feature(address_sanitizer)
  out += "address";
#else
  out += "none";
#endif
#else
  out += "none";
#endif
  out += "\"\n  }";
  return out;
}

}  // namespace

std::string export_json() {
  const Registry::Snapshot snap = Registry::global().snapshot();
  const std::vector<SpanRecord> spans = recent_spans();

  std::string out = "{\n";
  out += build_info_json();
  out += ",\n  \"config\": {";
  for (std::size_t i = 0; i < snap.env.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "    ";
    append_escaped(out, snap.env[i].first);
    out += ": {\"value\": ";
    append_escaped(out, snap.env[i].second.value);
    out += ", \"source\": ";
    out += snap.env[i].second.from_env ? "\"env\"" : "\"default\"";
    out += "}";
  }
  out += "\n  },\n  \"counters\": {";
  for (std::size_t i = 0; i < snap.counters.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "    ";
    append_escaped(out, snap.counters[i].first);
    out += ": ";
    append_u64(out, snap.counters[i].second);
  }
  out += "\n  },\n  \"gauges\": {";
  for (std::size_t i = 0; i < snap.gauges.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "    ";
    append_escaped(out, snap.gauges[i].first);
    out += ": ";
    append_number(out, snap.gauges[i].second);
  }
  out += "\n  },\n  \"histograms\": {";
  for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
    const auto& [name, h] = snap.histograms[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    ";
    append_escaped(out, name);
    out += ": {\"count\": ";
    append_u64(out, h.count);
    out += ", \"sum\": ";
    append_number(out, h.sum);
    out += ", \"min\": ";
    append_number(out, h.min);
    out += ", \"max\": ";
    append_number(out, h.max);
    out += ", \"p50\": ";
    append_number(out, h.p50);
    out += ", \"p95\": ";
    append_number(out, h.p95);
    out += ", \"buckets\": [";
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      if (b != 0) out += ", ";
      out += "{\"le\": ";
      if (b < h.bounds.size()) {
        append_number(out, h.bounds[b]);
      } else {
        out += "\"+Inf\"";
      }
      out += ", \"count\": ";
      append_u64(out, h.buckets[b]);
      out += "}";
    }
    out += "]}";
  }
  out += "\n  },\n  \"spans\": [";
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const SpanRecord& s = spans[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"name\": ";
    append_escaped(out, s.name);
    out += ", \"id\": ";
    append_u64(out, s.id);
    out += ", \"parent\": ";
    append_u64(out, s.parent);
    out += ", \"start_ms\": ";
    append_number(out, s.start_ms);
    out += ", \"dur_ms\": ";
    append_number(out, s.dur_ms);
    out += ", \"thread\": ";
    append_u64(out, s.thread);
    out += "}";
  }
  out += "\n  ]\n}\n";
  return out;
}

std::string export_prometheus() {
  const Registry::Snapshot snap = Registry::global().snapshot();
  std::string out;
  char line[256];
  for (const auto& [name, value] : snap.counters) {
    const std::string p = prom_name(name);
    out += "# TYPE " + p + " counter\n";
    std::snprintf(line, sizeof(line), "%s %llu\n", p.c_str(),
                  static_cast<unsigned long long>(value));
    out += line;
  }
  for (const auto& [name, value] : snap.gauges) {
    const std::string p = prom_name(name);
    out += "# TYPE " + p + " gauge\n";
    std::snprintf(line, sizeof(line), "%s %.9g\n", p.c_str(), value);
    out += line;
  }
  for (const auto& [name, h] : snap.histograms) {
    const std::string p = prom_name(name);
    out += "# TYPE " + p + " histogram\n";
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      if (b < h.bounds.size()) {
        std::snprintf(line, sizeof(line), "%s_bucket{le=\"%.9g\"} %llu\n",
                      p.c_str(), h.bounds[b],
                      static_cast<unsigned long long>(h.buckets[b]));
      } else {
        std::snprintf(line, sizeof(line), "%s_bucket{le=\"+Inf\"} %llu\n",
                      p.c_str(),
                      static_cast<unsigned long long>(h.buckets[b]));
      }
      out += line;
    }
    std::snprintf(line, sizeof(line), "%s_sum %.9g\n", p.c_str(), h.sum);
    out += line;
    std::snprintf(line, sizeof(line), "%s_count %llu\n", p.c_str(),
                  static_cast<unsigned long long>(h.count));
    out += line;
  }
  return out;
}

bool write_json_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string doc = export_json();
  const bool wrote = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
  const bool closed = std::fclose(f) == 0;
  return wrote && closed;
}

}  // namespace dance::obs
