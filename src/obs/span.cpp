#include "obs/span.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>

namespace dance::obs {

namespace {

std::chrono::steady_clock::time_point anchor() {
  static const auto t0 = std::chrono::steady_clock::now();
  return t0;
}

/// Per-thread ring of completed spans. Registered in a global list at first
/// use and kept alive by shared_ptr after the thread exits, so spans survive
/// into the end-of-process export.
struct ThreadBuffer {
  std::mutex mu;
  std::vector<SpanRecord> ring;
  std::size_t next = 0;
  std::uint32_t thread_index = 0;

  void push(SpanRecord record) {
    std::lock_guard<std::mutex> lk(mu);
    record.thread = thread_index;
    if (ring.size() < kSpanRingCap) {
      ring.push_back(std::move(record));
    } else {
      ring[next] = std::move(record);
      next = (next + 1) % kSpanRingCap;
    }
  }
};

struct BufferDirectory {
  std::mutex mu;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  std::uint32_t next_thread_index = 0;
};

BufferDirectory& directory() {
  // Leaked: thread_local destructors and atexit exporters may outlive any
  // static destruction order we could otherwise guarantee.
  static BufferDirectory* d = new BufferDirectory();
  return *d;
}

ThreadBuffer& local_buffer() {
  thread_local std::shared_ptr<ThreadBuffer> buf = [] {
    auto b = std::make_shared<ThreadBuffer>();
    BufferDirectory& dir = directory();
    std::lock_guard<std::mutex> lk(dir.mu);
    b->thread_index = dir.next_thread_index++;
    dir.buffers.push_back(b);
    return b;
  }();
  return *buf;
}

std::atomic<std::uint64_t> g_next_span_id{1};

// The innermost live span on this thread; children link to it as parent.
thread_local std::uint64_t tl_current_span = 0;

}  // namespace

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - anchor())
      .count();
}

ScopedSpan::ScopedSpan(std::string name)
    : name_(std::move(name)),
      id_(g_next_span_id.fetch_add(1, std::memory_order_relaxed)),
      parent_(tl_current_span),
      start_ms_(now_ms()) {
  tl_current_span = id_;
}

ScopedSpan::~ScopedSpan() {
  tl_current_span = parent_;
  SpanRecord record;
  record.name = std::move(name_);
  record.id = id_;
  record.parent = parent_;
  record.start_ms = start_ms_;
  record.dur_ms = now_ms() - start_ms_;
  local_buffer().push(std::move(record));
}

std::vector<SpanRecord> recent_spans() {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    BufferDirectory& dir = directory();
    std::lock_guard<std::mutex> lk(dir.mu);
    buffers = dir.buffers;
  }
  std::vector<SpanRecord> out;
  for (const auto& buf : buffers) {
    std::lock_guard<std::mutex> lk(buf->mu);
    out.insert(out.end(), buf->ring.begin(), buf->ring.end());
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const SpanRecord& a, const SpanRecord& b) {
                     return a.start_ms < b.start_ms;
                   });
  return out;
}

void clear_spans() {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    BufferDirectory& dir = directory();
    std::lock_guard<std::mutex> lk(dir.mu);
    buffers = dir.buffers;
  }
  for (const auto& buf : buffers) {
    std::lock_guard<std::mutex> lk(buf->mu);
    buf->ring.clear();
    buf->next = 0;
  }
}

}  // namespace dance::obs
