#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dance::obs {

/// Completed spans retained per thread. Old spans are overwritten ring-style,
/// so the export always shows the most recent activity of every thread.
inline constexpr std::size_t kSpanRingCap = 512;

/// One completed trace span. Times are milliseconds since the process trace
/// anchor (the first obs use in the process), so spans from different
/// threads order on one shared axis.
struct SpanRecord {
  std::string name;
  std::uint64_t id = 0;      ///< process-unique, 1-based
  std::uint64_t parent = 0;  ///< enclosing span's id; 0 for a root span
  double start_ms = 0.0;
  double dur_ms = 0.0;
  std::uint32_t thread = 0;  ///< small per-thread index, stable per thread
};

/// RAII trace span. Construction stamps the start and pushes this span as
/// the thread's current parent; destruction stamps the duration and commits
/// the record to the thread's ring buffer. Spans therefore nest naturally:
/// any span opened while another is alive on the same thread records it as
/// its parent. Cost when no exporter ever runs: one clock read each way and
/// one buffered record — cheap enough for per-epoch and per-request scopes,
/// not meant for per-element inner loops (use DANCE_PROFILE_SCOPE there).
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string name);
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  std::string name_;
  std::uint64_t id_ = 0;
  std::uint64_t parent_ = 0;
  double start_ms_ = 0.0;
};

/// Every retained span from every thread (including exited threads), sorted
/// by start time. Thread-safe snapshot.
[[nodiscard]] std::vector<SpanRecord> recent_spans();

/// Drop all retained spans (buffers stay registered; in-flight ScopedSpans
/// still commit on destruction).
void clear_spans();

/// Milliseconds since the process trace anchor (test/diagnostic hook; spans
/// use this clock internally).
[[nodiscard]] double now_ms();

}  // namespace dance::obs
