#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "obs/registry.h"
#include "serve/backend.h"
#include "util/rng.h"

namespace dance::serve {

/// Thrown (internally) when a primary attempt outlives the per-call
/// deadline budget; surfaces to the caller only when there is no fallback.
class DeadlineExpired : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Resilience decorator around a primary CostQueryBackend.
///
/// Per query_batch call, in order:
///   1. Circuit breaker gate. After `breaker_threshold` *consecutive*
///      exhausted primary calls the breaker opens and primary traffic is
///      skipped for `breaker_cooldown_us`; the first call after the
///      cooldown goes half-open and sends a single probe (concurrent calls
///      keep falling back). A successful probe closes the breaker, a
///      failed one reopens it for another cooldown.
///   2. Primary attempt with a deadline: when `deadline_us > 0` the whole
///      call (all attempts together) gets one budget; an attempt that
///      outlives it is abandoned to a watchdog-owned thread (joined in the
///      destructor) and counts as a deadline expiry, which consumes the
///      remaining budget — no further retries.
///   3. Bounded retry: transient failures (any std::exception except
///      std::invalid_argument) are retried up to `retries` times with
///      exponential backoff (base * mult^attempt, capped) plus seeded
///      jitter, clamped to the remaining deadline. std::invalid_argument
///      is permanent — a malformed request will not get better with
///      retries — and is rethrown immediately with no breaker effect.
///   4. Graceful degradation: when the primary path is exhausted (or the
///      breaker is open) and a fallback backend was provided, the fallback
///      answers and every response is stamped `degraded = true`. Without a
///      fallback the last primary error propagates.
///
/// Un-degraded responses are the primary's, byte for byte: the decorator
/// never rewrites a successful answer, preserving the backend determinism
/// contract (a faulted-then-retried call returns exactly what a fault-free
/// call would).
///
/// Every event mirrors into process-global obs counters:
///   serve.resilience.retries / .fallbacks / .deadline_expired
///   serve.resilience.breaker.opens / .breaker.closes
///
/// Thread-safe. Calls may come from the batcher worker and bulk callers
/// concurrently; breaker state and the jitter Rng sit behind mutexes.
class ResilientBackend : public CostQueryBackend {
 public:
  struct Options {
    int retries = 3;          ///< retry attempts after the first try
    long deadline_us = 0;     ///< whole-call budget; 0 disables deadlines
    long backoff_us = 500;    ///< base backoff before retry #1
    double backoff_mult = 2.0;
    long backoff_cap_us = 100000;  ///< per-sleep cap
    int breaker_threshold = 8;     ///< consecutive failures to open
    long breaker_cooldown_us = 250000;
    std::uint64_t jitter_seed = 0x5eed;

    /// Defaults overridden by DANCE_SERVE_RETRIES, DANCE_SERVE_DEADLINE_US,
    /// DANCE_SERVE_BACKOFF_US, DANCE_SERVE_BREAKER_THRESHOLD and
    /// DANCE_SERVE_BREAKER_COOLDOWN_US (util::env semantics: garbage or
    /// out-of-range values fall back to the defaults above).
    [[nodiscard]] static Options from_env();
  };

  struct Stats {
    std::uint64_t primary_calls = 0;  ///< attempts issued to the primary
    std::uint64_t retries = 0;
    std::uint64_t fallbacks = 0;  ///< responses answered degraded
    std::uint64_t deadline_expired = 0;
    std::uint64_t breaker_opens = 0;
    std::uint64_t breaker_closes = 0;
  };

  /// `fallback` may be null (no degradation tier: exhausted calls throw).
  /// Both backends must outlive this decorator.
  ResilientBackend(CostQueryBackend& primary, CostQueryBackend* fallback,
                   Options opts);

  /// Joins any watchdog-abandoned attempt threads. Injected hangs are
  /// bounded sleeps, so this terminates.
  ~ResilientBackend() override;

  ResilientBackend(const ResilientBackend&) = delete;
  ResilientBackend& operator=(const ResilientBackend&) = delete;

  [[nodiscard]] std::vector<Response> query_batch(
      std::span<const Request> requests) override;
  [[nodiscard]] const char* name() const override { return name_.c_str(); }

  [[nodiscard]] Stats stats() const;
  [[nodiscard]] const Options& options() const { return opts_; }

 private:
  enum class BreakerState { kClosed, kOpen, kHalfOpen };

  /// One primary attempt, possibly on a watchdog-supervised thread.
  /// Returns the responses or throws (DeadlineExpired on budget overrun).
  std::vector<Response> attempt_primary(
      std::span<const Request> requests,
      std::chrono::steady_clock::time_point deadline, bool has_deadline);

  /// Breaker admission for one call. Returns false when the primary must
  /// be skipped (open breaker / probe already in flight); sets *probing
  /// when this call carries the half-open probe.
  bool admit_primary(bool* probing);
  void on_primary_success(bool probing);
  void on_primary_exhausted(bool probing);
  void release_probe(bool probing);

  /// Backoff + jitter before retry number `attempt` (1-based), clamped to
  /// the remaining deadline. Returns false when the budget is already gone.
  bool backoff_sleep(int attempt,
                     std::chrono::steady_clock::time_point deadline,
                     bool has_deadline);

  std::vector<Response> answer_degraded(std::span<const Request> requests);

  CostQueryBackend& primary_;
  CostQueryBackend* fallback_;  ///< null = no degradation tier
  Options opts_;
  std::string name_;

  std::mutex breaker_mu_;
  BreakerState state_ = BreakerState::kClosed;
  int consecutive_failures_ = 0;
  bool probe_in_flight_ = false;
  std::chrono::steady_clock::time_point open_until_{};

  std::mutex rng_mu_;
  util::Rng rng_;  ///< jitter source (seeded: backoff schedules replay)

  std::mutex abandoned_mu_;
  std::vector<std::thread> abandoned_;  ///< deadline-orphaned attempts

  std::atomic<std::uint64_t> primary_calls_{0};
  std::atomic<std::uint64_t> retries_{0};
  std::atomic<std::uint64_t> fallbacks_{0};
  std::atomic<std::uint64_t> deadline_expired_{0};
  std::atomic<std::uint64_t> breaker_opens_{0};
  std::atomic<std::uint64_t> breaker_closes_{0};
  obs::Counter& obs_retries_;
  obs::Counter& obs_fallbacks_;
  obs::Counter& obs_deadline_;
  obs::Counter& obs_breaker_opens_;
  obs::Counter& obs_breaker_closes_;
};

}  // namespace dance::serve
