#include "serve/backend.h"

#include <array>
#include <stdexcept>
#include <utility>

namespace dance::serve {

ExactBackend::ExactBackend(const arch::CostTable& table,
                           accel::HwCostFn cost_fn)
    : table_(table), cost_fn_(std::move(cost_fn)) {
  if (!cost_fn_) {
    throw std::invalid_argument("ExactBackend: cost_fn must be callable");
  }
}

std::vector<Response> ExactBackend::query_batch(
    std::span<const Request> requests) {
  const arch::ArchSpace& space = table_.arch_space();
  std::vector<Response> out;
  out.reserve(requests.size());
  for (const Request& req : requests) {
    if (static_cast<int>(req.encoding.size()) != space.encoding_width()) {
      throw std::invalid_argument("ExactBackend: encoding width mismatch");
    }
    const arch::Architecture a = space.decode(req.encoding);
    const hwgen::HwSearchResult best = table_.optimal(a, cost_fn_);
    out.push_back(Response{best.metrics, best.config, /*cached=*/false});
  }
  return out;
}

SurrogateBackend::SurrogateBackend(evalnet::Evaluator& evaluator)
    : evaluator_(evaluator) {
  // Serving prerequisite: frozen parameters, eval-mode batch norm. Without
  // eval mode the deterministic forward throws (see evaluator.h).
  evaluator_.set_frozen(true);
  evaluator_.set_training(false);
}

std::vector<Response> SurrogateBackend::query_batch(
    std::span<const Request> requests) {
  std::vector<std::vector<float>> rows;
  rows.reserve(requests.size());
  for (const Request& req : requests) rows.push_back(req.encoding);

  const evalnet::Evaluator::Output out = evaluator_.forward_batch(rows);
  const auto& metrics = out.metrics.value();      // [N, 3]
  const auto& hw = out.hw_encoding.value();       // [N, hw_width] one-hot
  const auto ranges = evaluator_.hwgen_net().head_ranges();
  const hwgen::HwSearchSpace& space = evaluator_.hwgen_net().space();

  std::vector<Response> responses;
  responses.reserve(requests.size());
  for (int r = 0; r < metrics.rows(); ++r) {
    Response resp;
    resp.metrics.latency_ms = metrics.at(r, 0);
    resp.metrics.energy_mj = metrics.at(r, 1);
    resp.metrics.area_mm2 = metrics.at(r, 2);
    // The deterministic heads are exact one-hots; argmax recovers the index.
    std::array<int, 4> arg{};
    for (int h = 0; h < 4; ++h) {
      const auto [begin, end] = ranges[static_cast<std::size_t>(h)];
      int best = begin;
      for (int c = begin + 1; c < end; ++c) {
        if (hw.at(r, c) > hw.at(r, best)) best = c;
      }
      arg[static_cast<std::size_t>(h)] = best - begin;
    }
    resp.config = accel::AcceleratorConfig{
        space.pe_value(arg[0]), space.pe_value(arg[1]), space.rf_value(arg[2]),
        space.dataflow_value(arg[3])};
    responses.push_back(resp);
  }
  return responses;
}

}  // namespace dance::serve
