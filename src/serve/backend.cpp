#include "serve/backend.h"

#include <array>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "obs/registry.h"
#include "util/rng.h"

namespace dance::serve {

ExactBackend::ExactBackend(const arch::CostProvider& table,
                           accel::HwCostFn cost_fn)
    : table_(table), cost_fn_(std::move(cost_fn)) {
  if (!cost_fn_) {
    throw std::invalid_argument("ExactBackend: cost_fn must be callable");
  }
}

std::vector<Response> ExactBackend::query_batch(
    std::span<const Request> requests) {
  const arch::ArchSpace& space = table_.arch_space();
  std::vector<Response> out;
  out.reserve(requests.size());
  for (const Request& req : requests) {
    if (static_cast<int>(req.encoding.size()) != space.encoding_width()) {
      throw std::invalid_argument("ExactBackend: encoding width mismatch");
    }
    const arch::Architecture a = space.decode(req.encoding);
    const hwgen::HwSearchResult best = table_.optimal(a, cost_fn_);
    out.push_back(Response{best.metrics, best.config, /*cached=*/false});
  }
  return out;
}

namespace {

/// Decodes one response from contiguous [3] metrics and [hw_width] one-hot
/// rows — shared by the autograd (Tensor-backed) and plan (arena-backed)
/// paths so every tier builds responses identically.
Response decode_response(const float* metrics_row, const float* hw_row,
                         const std::array<std::pair<int, int>, 4>& ranges,
                         const hwgen::HwSearchSpace& space) {
  Response resp;
  resp.metrics.latency_ms = metrics_row[0];
  resp.metrics.energy_mj = metrics_row[1];
  resp.metrics.area_mm2 = metrics_row[2];
  // The deterministic heads are exact one-hots; argmax recovers the index.
  std::array<int, 4> arg{};
  for (int h = 0; h < 4; ++h) {
    const auto [begin, end] = ranges[static_cast<std::size_t>(h)];
    int best = begin;
    for (int c = begin + 1; c < end; ++c) {
      if (hw_row[c] > hw_row[best]) best = c;
    }
    arg[static_cast<std::size_t>(h)] = best - begin;
  }
  resp.config = accel::AcceleratorConfig{
      space.pe_value(arg[0]), space.pe_value(arg[1]), space.rf_value(arg[2]),
      space.dataflow_value(arg[3])};
  return resp;
}

/// Fixed-seed synthetic calibration rows for the int8 tier: uniform [0, 1)
/// values, the range one-hot(-ish) arch encodings occupy. Deterministic, so
/// two backends built from the same checkpoint answer identically.
std::vector<std::vector<float>> calibration_rows(int width) {
  constexpr int kRows = 64;
  util::Rng rng(0xCA11B8);
  std::vector<std::vector<float>> rows(kRows);
  for (auto& row : rows) {
    row.resize(static_cast<std::size_t>(width));
    for (auto& v : row) v = rng.uniform();
  }
  return rows;
}

}  // namespace

SurrogateBackend::SurrogateBackend(evalnet::Evaluator& evaluator)
    : SurrogateBackend(evaluator, infer::mode_from_env()) {}

SurrogateBackend::SurrogateBackend(evalnet::Evaluator& evaluator,
                                   infer::Mode mode)
    : evaluator_(evaluator), mode_(mode) {
  // Serving prerequisite: frozen parameters, eval-mode batch norm. Without
  // eval mode the deterministic forward throws (see evaluator.h).
  evaluator_.set_frozen(true);
  evaluator_.set_training(false);
  if (mode_ != infer::Mode::kAutograd) {
    plan_ = std::make_unique<infer::Plan>(infer::Plan::compile(evaluator_));
    if (mode_ == infer::Mode::kInt8) {
      plan_->calibrate(calibration_rows(plan_->arch_width()));
    }
  }
}

std::vector<Response> SurrogateBackend::query_autograd(
    std::span<const Request> requests) {
  std::vector<std::vector<float>> rows;
  rows.reserve(requests.size());
  for (const Request& req : requests) rows.push_back(req.encoding);

  const evalnet::Evaluator::Output out = evaluator_.forward_batch(rows);
  const auto& metrics = out.metrics.value();      // [N, 3]
  const auto& hw = out.hw_encoding.value();       // [N, hw_width] one-hot
  const auto ranges = evaluator_.hwgen_net().head_ranges();
  const hwgen::HwSearchSpace& space = evaluator_.hwgen_net().space();
  const int hw_width = hw.cols();

  std::vector<Response> responses;
  responses.reserve(requests.size());
  for (int r = 0; r < metrics.rows(); ++r) {
    responses.push_back(decode_response(metrics.data() + 3 * r,
                                        hw.data() + r * hw_width, ranges,
                                        space));
  }
  return responses;
}

std::vector<Response> SurrogateBackend::query_plan(
    std::span<const Request> requests) {
  const int n = static_cast<int>(requests.size());
  const int width = plan_->arch_width();
  float* input = arena_.stage_input(n, width);
  for (int i = 0; i < n; ++i) {
    const auto& enc = requests[static_cast<std::size_t>(i)].encoding;
    if (static_cast<int>(enc.size()) != width) {
      throw std::invalid_argument("SurrogateBackend: encoding width mismatch");
    }
    std::memcpy(input + static_cast<std::size_t>(i) * width, enc.data(),
                static_cast<std::size_t>(width) * sizeof(float));
  }
  metrics_.resize(static_cast<std::size_t>(n) * 3);
  hw_.resize(static_cast<std::size_t>(n) * plan_->hw_width());
  plan_->run(input, n, metrics_.data(), hw_.data(), arena_, mode_);

  const auto& ranges = plan_->head_ranges();
  const hwgen::HwSearchSpace& space = evaluator_.hwgen_net().space();
  std::vector<Response> responses;
  responses.reserve(requests.size());
  for (int r = 0; r < n; ++r) {
    responses.push_back(decode_response(
        metrics_.data() + 3 * r,
        hw_.data() + static_cast<std::size_t>(r) * plan_->hw_width(), ranges,
        space));
  }
  return responses;
}

std::vector<Response> SurrogateBackend::query_batch(
    std::span<const Request> requests) {
  auto& reg = obs::Registry::global();
  switch (mode_) {
    case infer::Mode::kAutograd:
      reg.counter("infer.batches.autograd").inc();
      reg.counter("infer.queries.autograd").inc(requests.size());
      return query_autograd(requests);
    case infer::Mode::kFused:
      reg.counter("infer.batches.fused").inc();
      reg.counter("infer.queries.fused").inc(requests.size());
      return query_plan(requests);
    case infer::Mode::kInt8:
      reg.counter("infer.batches.int8").inc();
      reg.counter("infer.queries.int8").inc(requests.size());
      return query_plan(requests);
  }
  throw std::logic_error("SurrogateBackend: unknown inference mode");
}

}  // namespace dance::serve
