#include "serve/service.h"

#include <unordered_map>
#include <utility>

#include "util/env.h"
#include "util/stats.h"
#include "util/table.h"

namespace dance::serve {

namespace {

constexpr std::size_t kLatencySampleCap = 1 << 16;

}  // namespace

Service::Options Service::Options::from_env() {
  Options opts;
  opts.cache_capacity = static_cast<std::size_t>(util::env_long(
      "DANCE_SERVE_CACHE_CAP", static_cast<long>(opts.cache_capacity), 1));
  opts.cache_shards = util::env_int("DANCE_SERVE_SHARDS", opts.cache_shards, 1);
  opts.enable_cache = util::env_bool("DANCE_SERVE_CACHE", opts.enable_cache);
  opts.batch.max_batch =
      util::env_int("DANCE_SERVE_MAX_BATCH", opts.batch.max_batch, 1);
  opts.batch.max_wait_us =
      util::env_long("DANCE_SERVE_MAX_WAIT_US", opts.batch.max_wait_us, 0);
  // 0 is in range: "disable load shedding".
  opts.batch.max_pending =
      util::env_long("DANCE_SERVE_MAX_PENDING", opts.batch.max_pending, 0);
  return opts;
}

Service::Service(CostQueryBackend& backend, Options opts)
    : opts_(opts),
      batcher_(backend, opts.batch),
      obs_queries_(obs::Registry::global().counter("serve.queries")),
      obs_latency_us_(obs::Registry::global().histogram(
          "serve.latency_us", obs::default_latency_bounds_us())) {
  if (opts_.enable_cache) {
    cache_ = std::make_unique<ShardedLruCache>(opts_.cache_capacity,
                                               opts_.cache_shards);
  }
  latency_ring_.reserve(kLatencySampleCap);
  window_start_ = std::chrono::steady_clock::now();
}

Response Service::query(const Request& request) {
  const auto start = std::chrono::steady_clock::now();
  const std::vector<float> key = canonical_key(request);

  Response response;
  bool from_cache = false;
  if (cache_) {
    if (auto hit = cache_->get(key)) {
      response = *hit;
      from_cache = true;
    }
  }
  if (!from_cache) {
    response = batcher_.query(request);
    response.cached = false;
    // Degraded (fallback-tier) answers are never memoized: once the primary
    // recovers, a repeat of this key should fetch — and then cache — the
    // exact answer instead of pinning the degraded one forever.
    if (cache_ && !response.degraded) cache_->put(key, response);
  }
  response.cached = from_cache;

  const auto end = std::chrono::steady_clock::now();
  record_latency_us(
      std::chrono::duration<double, std::micro>(end - start).count());
  return response;
}

std::vector<Response> Service::query_many(std::span<const Request> requests) {
  const auto start = std::chrono::steady_clock::now();

  std::vector<Response> out(requests.size());
  std::vector<Request> misses;  ///< one representative per unique missed key
  /// Positions to fill from `misses`; second = index into `misses`. Repeated
  /// keys within one bulk call are deduplicated here, so the backend sees
  /// each unique key once even on a cold cache.
  std::vector<std::pair<std::size_t, std::size_t>> miss_fill;
  std::unordered_map<std::vector<float>, std::size_t, KeyHash, KeyEq> pending;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    std::vector<float> key = canonical_key(requests[i]);
    if (cache_) {
      if (auto hit = cache_->get(key)) {
        out[i] = *hit;
        out[i].cached = true;
        continue;
      }
    }
    const auto [it, inserted] = pending.try_emplace(std::move(key), misses.size());
    if (inserted) misses.push_back(requests[i]);
    miss_fill.emplace_back(i, it->second);
  }

  if (!misses.empty()) {
    auto answered = batcher_.query_span(misses);
    std::vector<bool> first_fill(misses.size(), true);
    for (const auto& [position, m] : miss_fill) {
      out[position] = answered[m];
      // The first occurrence paid for the backend call; later occurrences of
      // the same key were answered by within-call memoization.
      out[position].cached = !first_fill[m];
      first_fill[m] = false;
    }
    for (std::size_t m = 0; m < misses.size(); ++m) {
      answered[m].cached = false;
      // Same rule as query(): degraded answers are not memoized.
      if (cache_ && !answered[m].degraded) {
        cache_->put(canonical_key(misses[m]), answered[m]);
      }
    }
  }

  const auto end = std::chrono::steady_clock::now();
  // One latency sample per request: the mean wall share of the bulk call
  // (per-request timing inside a bulk replay would mostly time the clock).
  const double per_request_us =
      requests.empty()
          ? 0.0
          : std::chrono::duration<double, std::micro>(end - start).count() /
                static_cast<double>(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    record_latency_us(per_request_us);
  }
  return out;
}

void Service::record_latency_us(double us) {
  obs_queries_.inc();
  obs_latency_us_.observe(us);
  std::lock_guard<std::mutex> lk(stats_mu_);
  ++queries_;
  if (latency_ring_.size() < kLatencySampleCap) {
    latency_ring_.push_back(us);
  } else {
    latency_ring_[latency_next_] = us;
    latency_next_ = (latency_next_ + 1) % kLatencySampleCap;
  }
}

ServiceStats Service::stats() const {
  ServiceStats s;
  {
    std::lock_guard<std::mutex> lk(stats_mu_);
    s.queries = queries_;
    s.window_seconds = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - window_start_)
                           .count();
    s.p50_us = util::percentile(latency_ring_, 50.0);
    s.p95_us = util::percentile(latency_ring_, 95.0);
  }
  s.qps = s.window_seconds > 0.0
              ? static_cast<double>(s.queries) / s.window_seconds
              : 0.0;
  if (cache_) s.cache = cache_->stats();
  s.batcher = batcher_.stats();
  return s;
}

std::string Service::stats_report() const {
  const ServiceStats s = stats();
  util::Table table({"metric", "value"});
  using Align = util::Table::Align;
  table.set_align({Align::kLeft, Align::kRight});
  table.add_row({"queries", std::to_string(s.queries)});
  table.add_row({"window s", util::Table::fmt(s.window_seconds, 3)});
  table.add_row({"QPS", util::Table::fmt(s.qps, 0)});
  table.add_row({"cache hits", std::to_string(s.cache.hits)});
  table.add_row({"cache misses", std::to_string(s.cache.misses)});
  table.add_row({"hit rate %", util::Table::fmt(100.0 * s.cache.hit_rate(), 1)});
  table.add_row({"cache entries", std::to_string(s.cache.entries) + "/" +
                                      std::to_string(s.cache.capacity)});
  table.add_row({"evictions", std::to_string(s.cache.evictions)});
  table.add_row({"batches", std::to_string(s.batcher.batches)});
  table.add_row({"mean batch", util::Table::fmt(s.batcher.mean_batch(), 1)});
  table.add_row({"max batch", std::to_string(s.batcher.max_batch_seen)});
  table.add_row({"shed", std::to_string(s.batcher.shed)});
  table.add_row({"latency p50 us", util::Table::fmt(s.p50_us, 1)});
  table.add_row({"latency p95 us", util::Table::fmt(s.p95_us, 1)});
  return table.to_string(util::Table::Style::plain());
}

void Service::reset_stats() {
  std::lock_guard<std::mutex> lk(stats_mu_);
  queries_ = 0;
  latency_ring_.clear();
  latency_next_ = 0;
  window_start_ = std::chrono::steady_clock::now();
}

}  // namespace dance::serve
