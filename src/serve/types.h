#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "accel/accelerator.h"
#include "accel/cost_model.h"
#include "arch/space.h"

namespace dance::serve {

/// One cost query: a canonical architecture encoding (the evaluator's input
/// format — num_searchable * kNumCandidateOps floats, one distribution per
/// slot). Soft distributions are legal inputs for the surrogate backend;
/// the exact backend argmax-decodes them (ArchSpace::decode semantics).
struct Request {
  Request() = default;
  explicit Request(std::vector<float> enc) : encoding(std::move(enc)) {}

  std::vector<float> encoding;

  /// Cache-namespace scope. Both zero (the default) means the legacy
  /// unscoped namespace — the canonical key is exactly the encoding bytes,
  /// so pre-registry snapshots and single-model deployments are unchanged.
  /// The registry layer sets (model-name hash, generation) before querying,
  /// which folds into the canonical key and makes a stale cross-generation
  /// cache hit impossible by construction: keys from different generations
  /// differ in their scope bytes. Old-namespace entries age out of the LRU
  /// lazily.
  std::uint64_t scope_model = 0;
  std::uint64_t scope_generation = 0;

  /// Opaque lifetime pin. The registry stores the pinned
  /// `shared_ptr<const ModelVersion>` here so the generation (evaluator +
  /// compiled plan) stays alive for this request's whole lifetime, across
  /// the batcher and into `query_batch`, even if `publish()` swaps the live
  /// pointer mid-flight. Unused (null) outside registry serving.
  std::shared_ptr<const void> pin;

  /// Canonical encoding of a concrete architecture.
  [[nodiscard]] static Request from_architecture(const arch::ArchSpace& space,
                                                 const arch::Architecture& a) {
    return Request{space.encode(a)};
  }
};

/// The answer: predicted (or exact) network metrics plus the hardware
/// configuration chosen for the query. `cached` is stamped by the Service so
/// clients and the JSON front-end can see which answers were memoized.
/// `degraded` is stamped by the ResilientBackend when the answer came from
/// the fallback backend (surrogate instead of exact): still a valid,
/// bounded-error response, but not the primary's. Degraded responses are
/// never memoized, so a later retry of the same key can cache the exact
/// answer once the primary recovers.
struct Response {
  accel::CostMetrics metrics;
  accel::AcceleratorConfig config;
  bool cached = false;
  bool degraded = false;
  /// Registry generation that answered (0 = non-registry serving). Stamped
  /// by the registry serving layer from the request's pinned version, so it
  /// is authoritative even for cache hits and snapshot-restored entries.
  std::uint64_t generation = 0;
};

/// Cache-key canonicalization: the memoization cache keys on the *bytes* of
/// the encoding, so float values that compare equal but differ in bits must
/// be collapsed first. The only such value a well-formed encoding can carry
/// is -0.0f (e.g. produced by upstream arithmetic), which is flushed to
/// +0.0f. NaNs are left untouched: a NaN-carrying encoding never equals
/// anything, including itself, which is the safe behavior for a poisoned
/// query (it simply never hits the cache).
inline std::vector<float> canonical_key(const std::vector<float>& encoding) {
  std::vector<float> key = encoding;
  for (float& v : key) {
    if (v == 0.0F) v = 0.0F;  // -0.0f -> +0.0f; +0.0f unchanged
  }
  return key;
}

/// Scoped canonicalization. An unscoped request ({0, 0}) produces exactly
/// the legacy key — bit-compatible with existing snapshots and the cluster
/// wire path. A scoped request prepends 4 floats carrying the raw bytes of
/// (scope_model, scope_generation). The scope floats are memcpy'd, NOT run
/// through the -0.0 flush: a scope half whose bit pattern happens to be
/// 0x80000000 must stay distinct from 0x00000000, and NaN-patterned scope
/// bytes still compare byte-wise equal under KeyEq (unlike encoding NaNs,
/// which is exactly what a namespace tag needs).
inline std::vector<float> canonical_key(const Request& request) {
  if (request.scope_model == 0 && request.scope_generation == 0) {
    return canonical_key(request.encoding);
  }
  std::vector<float> key(4 + request.encoding.size());
  static_assert(sizeof(std::uint64_t) == 2 * sizeof(float));
  std::memcpy(key.data(), &request.scope_model, sizeof(std::uint64_t));
  std::memcpy(key.data() + 2, &request.scope_generation,
              sizeof(std::uint64_t));
  for (std::size_t i = 0; i < request.encoding.size(); ++i) {
    const float v = request.encoding[i];
    key[4 + i] = (v == 0.0F) ? 0.0F : v;
  }
  return key;
}

/// FNV-1a over the key bytes. Used for shard selection and the per-shard
/// hash maps; byte-hashing is exact because keys are canonicalized.
struct KeyHash {
  std::size_t operator()(const std::vector<float>& key) const {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    const auto* bytes = reinterpret_cast<const unsigned char*>(key.data());
    for (std::size_t i = 0; i < key.size() * sizeof(float); ++i) {
      h ^= bytes[i];
      h *= 0x100000001b3ULL;
    }
    return static_cast<std::size_t>(h);
  }
};

/// Bytewise equality (exact, including NaN payloads — two requests with the
/// same NaN bits do hit the same entry, which is still deterministic).
struct KeyEq {
  bool operator()(const std::vector<float>& a,
                  const std::vector<float>& b) const {
    return a.size() == b.size() &&
           (a.empty() ||
            std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0);
  }
};

}  // namespace dance::serve
