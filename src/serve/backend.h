#pragma once

#include <memory>
#include <span>
#include <vector>

#include "accel/cost_function.h"
#include "arch/cost_provider.h"
#include "evalnet/evaluator.h"
#include "infer/plan.h"
#include "serve/types.h"

namespace dance::serve {

/// A cost-query answering backend. `query_batch` answers N requests in one
/// call — the batch is the unit the micro-batcher amortizes, so backends
/// should answer a batch cheaper than N single queries where they can
/// (the surrogate stacks all rows into one network forward; the exact
/// backend walks the LUT per request).
///
/// Determinism contract: both shipped backends are pure functions of the
/// request — answering the same encoding twice, in any order, at any batch
/// position, yields bit-identical responses. The memoization cache and the
/// batcher both rely on this.
class CostQueryBackend {
 public:
  virtual ~CostQueryBackend() = default;

  /// Answers `requests` in order; the result has exactly one response per
  /// request. Must be safe to call from one thread at a time (the Service
  /// serializes calls through the batcher).
  [[nodiscard]] virtual std::vector<Response> query_batch(
      std::span<const Request> requests) = 0;

  [[nodiscard]] virtual const char* name() const = 0;
};

/// Ground-truth backend: argmax-decodes the encoding to a concrete
/// architecture and runs exact hardware generation through the per-choice
/// cost LUT (bit-identical to direct cost-model evaluation).
class ExactBackend : public CostQueryBackend {
 public:
  ExactBackend(const arch::CostProvider& table, accel::HwCostFn cost_fn);

  [[nodiscard]] std::vector<Response> query_batch(
      std::span<const Request> requests) override;
  [[nodiscard]] const char* name() const override { return "exact"; }

 private:
  const arch::CostProvider& table_;
  accel::HwCostFn cost_fn_;
};

/// Trained-surrogate backend: one deterministic [N, W] forward per batch.
/// Construction puts the evaluator into frozen eval mode — the
/// deterministic-inference prerequisite. The hardware configuration is
/// decoded from the tau-frozen one-hot heads.
///
/// Inference tiers (docs/inference.md). The forward runs on one of three
/// implementations, selected at construction (default: the DANCE_INFER
/// environment knob, which defaults to autograd):
///   * autograd — Evaluator::forward_batch through the nn::Module graph;
///     the historical path.
///   * fused — infer::Plan compiled from the frozen checkpoint;
///     bit-identical responses to autograd (property-tested), ~the cost of
///     the raw GEMMs.
///   * int8 — the fused plan's quantized tier: approximate metrics, 4x
///     smaller weights; faster than autograd, though at these trunk widths
///     the blocked fp32 GEMM still beats the scalar int8 loops (see
///     bench/data/infer_tiers.csv). Weight quantization happens once at
///     construction on a fixed-seed synthetic row set, so the backend stays
///     a pure function of the request (the cache/batcher determinism
///     contract holds for every tier; int8 merely answers with different —
///     still deterministic — bits).
class SurrogateBackend : public CostQueryBackend {
 public:
  /// Tier from the DANCE_INFER environment knob.
  explicit SurrogateBackend(evalnet::Evaluator& evaluator);
  /// Explicit tier selection (benchmarks, tests, tier comparisons).
  SurrogateBackend(evalnet::Evaluator& evaluator, infer::Mode mode);

  [[nodiscard]] std::vector<Response> query_batch(
      std::span<const Request> requests) override;
  [[nodiscard]] const char* name() const override { return "surrogate"; }

  [[nodiscard]] infer::Mode infer_mode() const { return mode_; }
  /// The compiled plan (nullptr on the autograd tier).
  [[nodiscard]] const infer::Plan* plan() const { return plan_.get(); }

 private:
  std::vector<Response> query_autograd(std::span<const Request> requests);
  std::vector<Response> query_plan(std::span<const Request> requests);

  evalnet::Evaluator& evaluator_;
  infer::Mode mode_;
  std::unique_ptr<infer::Plan> plan_;
  infer::Arena arena_;  ///< reused scratch; query_batch is single-threaded
  std::vector<float> metrics_;  ///< [N, 3] plan output, reused per batch
  std::vector<float> hw_;       ///< [N, hw_width] plan output, reused
};

}  // namespace dance::serve
