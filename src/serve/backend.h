#pragma once

#include <span>
#include <vector>

#include "accel/cost_function.h"
#include "arch/cost_table.h"
#include "evalnet/evaluator.h"
#include "serve/types.h"

namespace dance::serve {

/// A cost-query answering backend. `query_batch` answers N requests in one
/// call — the batch is the unit the micro-batcher amortizes, so backends
/// should answer a batch cheaper than N single queries where they can
/// (the surrogate stacks all rows into one network forward; the exact
/// backend walks the LUT per request).
///
/// Determinism contract: both shipped backends are pure functions of the
/// request — answering the same encoding twice, in any order, at any batch
/// position, yields bit-identical responses. The memoization cache and the
/// batcher both rely on this.
class CostQueryBackend {
 public:
  virtual ~CostQueryBackend() = default;

  /// Answers `requests` in order; the result has exactly one response per
  /// request. Must be safe to call from one thread at a time (the Service
  /// serializes calls through the batcher).
  [[nodiscard]] virtual std::vector<Response> query_batch(
      std::span<const Request> requests) = 0;

  [[nodiscard]] virtual const char* name() const = 0;
};

/// Ground-truth backend: argmax-decodes the encoding to a concrete
/// architecture and runs exact hardware generation through the per-choice
/// cost LUT (bit-identical to direct cost-model evaluation).
class ExactBackend : public CostQueryBackend {
 public:
  ExactBackend(const arch::CostTable& table, accel::HwCostFn cost_fn);

  [[nodiscard]] std::vector<Response> query_batch(
      std::span<const Request> requests) override;
  [[nodiscard]] const char* name() const override { return "exact"; }

 private:
  const arch::CostTable& table_;
  accel::HwCostFn cost_fn_;
};

/// Trained-surrogate backend: one deterministic [N, W] evaluator forward per
/// batch (Evaluator::forward_batch). The hardware configuration is decoded
/// from the tau-frozen one-hot heads. Construction puts the evaluator into
/// frozen eval mode — the deterministic-inference prerequisite.
class SurrogateBackend : public CostQueryBackend {
 public:
  explicit SurrogateBackend(evalnet::Evaluator& evaluator);

  [[nodiscard]] std::vector<Response> query_batch(
      std::span<const Request> requests) override;
  [[nodiscard]] const char* name() const override { return "surrogate"; }

 private:
  evalnet::Evaluator& evaluator_;
};

}  // namespace dance::serve
