#include "serve/resilient.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/env.h"

namespace dance::serve {

ResilientBackend::Options ResilientBackend::Options::from_env() {
  Options opts;
  opts.retries = util::env_int("DANCE_SERVE_RETRIES", opts.retries, 0);
  opts.deadline_us =
      util::env_long("DANCE_SERVE_DEADLINE_US", opts.deadline_us, 0);
  opts.backoff_us = util::env_long("DANCE_SERVE_BACKOFF_US", opts.backoff_us, 0);
  opts.breaker_threshold = util::env_int("DANCE_SERVE_BREAKER_THRESHOLD",
                                         opts.breaker_threshold, 1);
  opts.breaker_cooldown_us = util::env_long("DANCE_SERVE_BREAKER_COOLDOWN_US",
                                            opts.breaker_cooldown_us, 0);
  return opts;
}

ResilientBackend::ResilientBackend(CostQueryBackend& primary,
                                   CostQueryBackend* fallback, Options opts)
    : primary_(primary),
      fallback_(fallback),
      opts_(opts),
      rng_(opts.jitter_seed),
      obs_retries_(obs::Registry::global().counter("serve.resilience.retries")),
      obs_fallbacks_(
          obs::Registry::global().counter("serve.resilience.fallbacks")),
      obs_deadline_(
          obs::Registry::global().counter("serve.resilience.deadline_expired")),
      obs_breaker_opens_(
          obs::Registry::global().counter("serve.resilience.breaker.opens")),
      obs_breaker_closes_(
          obs::Registry::global().counter("serve.resilience.breaker.closes")) {
  name_ = std::string("resilient(") + primary_.name();
  if (fallback_ != nullptr) name_ += std::string("|") + fallback_->name();
  name_ += ")";
}

ResilientBackend::~ResilientBackend() {
  std::lock_guard<std::mutex> lk(abandoned_mu_);
  for (std::thread& t : abandoned_) {
    if (t.joinable()) t.join();
  }
}

std::vector<Response> ResilientBackend::query_batch(
    std::span<const Request> requests) {
  const bool has_deadline = opts_.deadline_us > 0;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::microseconds(opts_.deadline_us);

  bool probing = false;
  if (!admit_primary(&probing)) {
    return answer_degraded(requests);
  }

  std::exception_ptr last_error;
  for (int attempt = 0; attempt <= opts_.retries; ++attempt) {
    if (attempt > 0) {
      if (!backoff_sleep(attempt, deadline, has_deadline)) break;
      retries_.fetch_add(1, std::memory_order_relaxed);
      obs_retries_.inc();
    }
    try {
      auto responses = attempt_primary(requests, deadline, has_deadline);
      on_primary_success(probing);
      return responses;
    } catch (const std::invalid_argument&) {
      // Permanent: a malformed request will not get better with retries,
      // and says nothing about backend health — no breaker effect.
      release_probe(probing);
      throw;
    } catch (const DeadlineExpired&) {
      last_error = std::current_exception();
      break;  // the budget is spent; retrying would blow it further
    } catch (const std::exception&) {
      last_error = std::current_exception();  // transient: retry
    }
  }

  on_primary_exhausted(probing);
  if (fallback_ != nullptr) return answer_degraded(requests);
  if (last_error) std::rethrow_exception(last_error);
  throw std::runtime_error("ResilientBackend: primary exhausted");  // unreachable
}

std::vector<Response> ResilientBackend::attempt_primary(
    std::span<const Request> requests,
    std::chrono::steady_clock::time_point deadline, bool has_deadline) {
  primary_calls_.fetch_add(1, std::memory_order_relaxed);
  if (!has_deadline) {
    return primary_.query_batch(requests);
  }

  // Watchdog mode: the attempt runs on its own thread so the caller can
  // give up at the deadline. The thread owns a *copy* of the requests —
  // after a timeout the caller's span dies while the attempt is still
  // running. An abandoned attempt may overlap a retry on the primary, so
  // deadline mode requires a primary whose query_batch tolerates
  // concurrent calls (both shipped backends are pure readers).
  struct Shared {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    std::vector<Request> requests;
    std::vector<Response> responses;
    std::exception_ptr error;
  };
  auto shared = std::make_shared<Shared>();
  shared->requests.assign(requests.begin(), requests.end());

  std::thread worker([shared, this] {
    std::vector<Response> responses;
    std::exception_ptr error;
    try {
      responses = primary_.query_batch(shared->requests);
    } catch (...) {
      error = std::current_exception();
    }
    std::lock_guard<std::mutex> lk(shared->mu);
    shared->responses = std::move(responses);
    shared->error = error;
    shared->done = true;
    shared->cv.notify_all();
  });

  std::unique_lock<std::mutex> lk(shared->mu);
  if (!shared->cv.wait_until(lk, deadline, [&] { return shared->done; })) {
    lk.unlock();
    {
      std::lock_guard<std::mutex> alk(abandoned_mu_);
      abandoned_.push_back(std::move(worker));
    }
    deadline_expired_.fetch_add(1, std::memory_order_relaxed);
    obs_deadline_.inc();
    throw DeadlineExpired(
        "ResilientBackend: primary attempt exceeded the deadline budget");
  }
  lk.unlock();
  worker.join();
  if (shared->error) std::rethrow_exception(shared->error);
  return std::move(shared->responses);
}

bool ResilientBackend::admit_primary(bool* probing) {
  std::lock_guard<std::mutex> lk(breaker_mu_);
  const auto now = std::chrono::steady_clock::now();
  if (state_ == BreakerState::kOpen && now >= open_until_) {
    state_ = BreakerState::kHalfOpen;
  }
  if (state_ == BreakerState::kOpen) return false;
  if (state_ == BreakerState::kHalfOpen) {
    if (probe_in_flight_) return false;  // one probe at a time
    probe_in_flight_ = true;
    *probing = true;
  }
  return true;
}

void ResilientBackend::on_primary_success(bool probing) {
  std::lock_guard<std::mutex> lk(breaker_mu_);
  consecutive_failures_ = 0;
  if (probing) {
    probe_in_flight_ = false;
    state_ = BreakerState::kClosed;
    breaker_closes_.fetch_add(1, std::memory_order_relaxed);
    obs_breaker_closes_.inc();
  }
}

void ResilientBackend::on_primary_exhausted(bool probing) {
  std::lock_guard<std::mutex> lk(breaker_mu_);
  const auto now = std::chrono::steady_clock::now();
  const auto cooldown = std::chrono::microseconds(opts_.breaker_cooldown_us);
  if (probing) {
    // Failed probe: straight back to open for another cooldown.
    probe_in_flight_ = false;
    state_ = BreakerState::kOpen;
    open_until_ = now + cooldown;
    breaker_opens_.fetch_add(1, std::memory_order_relaxed);
    obs_breaker_opens_.inc();
  } else {
    ++consecutive_failures_;
    if (state_ == BreakerState::kClosed &&
        consecutive_failures_ >= opts_.breaker_threshold) {
      state_ = BreakerState::kOpen;
      open_until_ = now + cooldown;
      breaker_opens_.fetch_add(1, std::memory_order_relaxed);
      obs_breaker_opens_.inc();
    }
  }
}

void ResilientBackend::release_probe(bool probing) {
  if (!probing) return;
  std::lock_guard<std::mutex> lk(breaker_mu_);
  probe_in_flight_ = false;  // breaker stays half-open for the next call
}

bool ResilientBackend::backoff_sleep(
    int attempt, std::chrono::steady_clock::time_point deadline,
    bool has_deadline) {
  double delay = static_cast<double>(opts_.backoff_us) *
                 std::pow(opts_.backoff_mult, attempt - 1);
  delay = std::min(delay, static_cast<double>(opts_.backoff_cap_us));
  double jitter = 0.0;
  {
    // Always draw, even when backoff is disabled: the jitter stream's
    // position stays a pure function of the retry count, so seeded runs
    // replay regardless of the backoff_us setting.
    std::lock_guard<std::mutex> lk(rng_mu_);
    jitter = static_cast<double>(rng_.uniform());
  }
  // Equal jitter: sleep in [delay/2, delay) — keeps some spacing while
  // decorrelating concurrent retriers.
  long sleep_us = static_cast<long>(delay * 0.5 + jitter * delay * 0.5);
  if (has_deadline) {
    const auto remaining = std::chrono::duration_cast<std::chrono::microseconds>(
                               deadline - std::chrono::steady_clock::now())
                               .count();
    if (remaining <= 0) return false;
    sleep_us = std::min<long>(sleep_us, remaining);
  }
  if (sleep_us > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(sleep_us));
  }
  return true;
}

std::vector<Response> ResilientBackend::answer_degraded(
    std::span<const Request> requests) {
  if (fallback_ == nullptr) {
    throw std::runtime_error(
        "ResilientBackend: primary unavailable (circuit open) and no "
        "fallback configured");
  }
  auto responses = fallback_->query_batch(requests);
  for (Response& r : responses) r.degraded = true;
  fallbacks_.fetch_add(responses.size(), std::memory_order_relaxed);
  obs_fallbacks_.inc(responses.size());
  return responses;
}

ResilientBackend::Stats ResilientBackend::stats() const {
  Stats out;
  out.primary_calls = primary_calls_.load(std::memory_order_relaxed);
  out.retries = retries_.load(std::memory_order_relaxed);
  out.fallbacks = fallbacks_.load(std::memory_order_relaxed);
  out.deadline_expired = deadline_expired_.load(std::memory_order_relaxed);
  out.breaker_opens = breaker_opens_.load(std::memory_order_relaxed);
  out.breaker_closes = breaker_closes_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace dance::serve
