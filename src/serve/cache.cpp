#include "serve/cache.h"

#include <algorithm>
#include <memory>

namespace dance::serve {

ShardedLruCache::ShardedLruCache(std::size_t capacity, int num_shards)
    : obs_hits_(obs::Registry::global().counter("serve.cache.hits")),
      obs_misses_(obs::Registry::global().counter("serve.cache.misses")),
      obs_evictions_(obs::Registry::global().counter("serve.cache.evictions")) {
  capacity_ = std::max<std::size_t>(1, capacity);
  const std::size_t shards = std::clamp<std::size_t>(
      num_shards < 1 ? 1 : static_cast<std::size_t>(num_shards), 1, capacity_);
  per_shard_capacity_ = (capacity_ + shards - 1) / shards;
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

std::optional<Response> ShardedLruCache::get(const Key& key) {
  Shard& s = shard_for(key);
  std::lock_guard<std::mutex> lk(s.mu);
  const auto it = s.map.find(key);
  if (it == s.map.end()) {
    ++s.misses;
    obs_misses_.inc();
    return std::nullopt;
  }
  ++s.hits;
  obs_hits_.inc();
  // Refresh recency: splice the node to the front without reallocating.
  s.lru.splice(s.lru.begin(), s.lru, it->second);
  return it->second->second;
}

void ShardedLruCache::put(const Key& key, const Response& response) {
  Shard& s = shard_for(key);
  std::lock_guard<std::mutex> lk(s.mu);
  const auto it = s.map.find(key);
  if (it != s.map.end()) {
    it->second->second = response;
    s.lru.splice(s.lru.begin(), s.lru, it->second);
    return;
  }
  s.lru.emplace_front(key, response);
  s.map.emplace(key, s.lru.begin());
  if (s.map.size() > per_shard_capacity_) {
    s.map.erase(s.lru.back().first);
    s.lru.pop_back();
    ++s.evictions;
    obs_evictions_.inc();
  }
}

ShardedLruCache::Stats ShardedLruCache::stats() const {
  Stats out;
  out.capacity = capacity_;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lk(shard->mu);
    out.hits += shard->hits;
    out.misses += shard->misses;
    out.evictions += shard->evictions;
    out.entries += shard->map.size();
  }
  return out;
}

std::vector<std::pair<ShardedLruCache::Key, Response>>
ShardedLruCache::entries() const {
  std::vector<std::pair<Key, Response>> out;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lk(shard->mu);
    // lru front is most recent; emit back-to-front so a replay of put()
    // calls ends with the most recent entry freshest.
    for (auto it = shard->lru.rbegin(); it != shard->lru.rend(); ++it) {
      out.push_back(*it);
    }
  }
  return out;
}

void ShardedLruCache::clear() {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lk(shard->mu);
    shard->map.clear();
    shard->lru.clear();
    shard->hits = shard->misses = shard->evictions = 0;
  }
}

}  // namespace dance::serve
