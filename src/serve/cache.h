#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "obs/registry.h"
#include "serve/types.h"

namespace dance::serve {

/// Thread-safe sharded LRU memoization cache for cost-query responses.
///
/// The key space is split across `num_shards` independent shards (selected
/// by the key hash), each with its own mutex, map and LRU list, so
/// concurrent lookups of different keys rarely contend on a lock. Each
/// shard holds at most ceil(capacity / num_shards) entries and evicts its
/// own least-recently-used entry on overflow; `get` refreshes recency.
///
/// Transparency contract: the cache stores responses verbatim and never
/// synthesizes one, so for a deterministic backend a cached answer is
/// bit-identical to an uncached one (tests/test_property_serve.cpp hammers
/// this from many threads). Keys must be canonicalized (`canonical_key`)
/// before insertion/lookup — the Service does this for every query.
class ShardedLruCache {
 public:
  using Key = std::vector<float>;

  /// Aggregate hit/miss/eviction counters across all shards, for THIS cache
  /// instance. The same events also feed the process-global obs counters
  /// serve.cache.{hits,misses,evictions}, which is what the JSON/Prometheus
  /// exporters report.
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::size_t entries = 0;
    std::size_t capacity = 0;

    [[nodiscard]] double hit_rate() const {
      const std::uint64_t total = hits + misses;
      return total == 0 ? 0.0
                        : static_cast<double>(hits) / static_cast<double>(total);
    }
  };

  /// `capacity` is the total entry budget (>= 1 enforced); `num_shards` is
  /// clamped to [1, capacity] so every shard can hold at least one entry.
  explicit ShardedLruCache(std::size_t capacity, int num_shards = 8);

  /// Lookup; refreshes the entry's recency on hit. Counts a hit or a miss.
  [[nodiscard]] std::optional<Response> get(const Key& key);

  /// Insert or overwrite. Evicts the shard's LRU entry on overflow.
  void put(const Key& key, const Response& response);

  [[nodiscard]] Stats stats() const;
  void clear();

  /// Every entry, least-recently-used first within each internal shard, so
  /// replaying `put` in the returned order reproduces contents *and*
  /// per-shard recency (exactly, when the reloading cache has the same
  /// shard count; approximately otherwise — cross-shard order is
  /// arbitrary either way). This is the cluster snapshot export path.
  [[nodiscard]] std::vector<std::pair<Key, Response>> entries() const;

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] int num_shards() const { return static_cast<int>(shards_.size()); }

 private:
  struct Shard {
    std::mutex mu;
    /// Most-recent at the front; holds the key so eviction can erase the
    /// map entry without a second copy of the key in the node.
    std::list<std::pair<Key, Response>> lru;
    std::unordered_map<Key, std::list<std::pair<Key, Response>>::iterator,
                       KeyHash, KeyEq>
        map;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
  };

  [[nodiscard]] Shard& shard_for(const Key& key) {
    return *shards_[KeyHash{}(key) % shards_.size()];
  }

  std::size_t capacity_ = 0;
  std::size_t per_shard_capacity_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;

  // Process-global counters (obs registry instruments are never destroyed,
  // so caching the references is safe and keeps the hot path lock-free).
  obs::Counter& obs_hits_;
  obs::Counter& obs_misses_;
  obs::Counter& obs_evictions_;
};

}  // namespace dance::serve
