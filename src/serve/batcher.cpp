#include "serve/batcher.h"

#include <algorithm>
#include <exception>
#include <utility>

namespace dance::serve {

MicroBatcher::MicroBatcher(CostQueryBackend& backend, Options opts)
    : backend_(backend),
      opts_(opts),
      obs_requests_(obs::Registry::global().counter("serve.batch.requests")),
      obs_batches_(obs::Registry::global().counter("serve.batch.executed")),
      obs_shed_(obs::Registry::global().counter("serve.resilience.shed")),
      obs_batch_size_(obs::Registry::global().histogram(
          "serve.batch.size", {1, 2, 4, 8, 16, 32, 64, 128, 256})) {
  if (opts_.max_batch > 1) {
    if (opts_.max_wait_us < 0) opts_.max_wait_us = 0;
    worker_ = std::thread([this] { drain_loop(); });
  }
}

MicroBatcher::~MicroBatcher() {
  if (worker_.joinable()) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    worker_.join();
  }
}

Response MicroBatcher::query(const Request& request) {
  if (opts_.max_batch <= 1) {
    // Inline mode: no worker, no future — the caller runs the backend.
    const Request* ptr = &request;
    auto responses = backend_.query_batch({ptr, 1});
    count_batch(1);
    return responses.front();
  }

  std::future<Response> future;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (opts_.max_pending > 0 &&
        pending_.size() >= static_cast<std::size_t>(opts_.max_pending)) {
      shed_.fetch_add(1, std::memory_order_relaxed);
      obs_shed_.inc();
      throw Overloaded("MicroBatcher: pending queue full (" +
                       std::to_string(pending_.size()) + " waiting, max_pending=" +
                       std::to_string(opts_.max_pending) + ")");
    }
    Pending p;
    p.request = &request;  // stays alive: the caller blocks on the future
    p.enqueue = std::chrono::steady_clock::now();
    future = p.promise.get_future();
    pending_.push_back(std::move(p));
  }
  cv_.notify_all();
  return future.get();
}

std::vector<Response> MicroBatcher::query_span(
    std::span<const Request> requests) {
  std::vector<Response> out;
  out.reserve(requests.size());
  const std::size_t step =
      static_cast<std::size_t>(std::max(1, opts_.max_batch));
  for (std::size_t i = 0; i < requests.size(); i += step) {
    const std::size_t n = std::min(step, requests.size() - i);
    auto chunk = backend_.query_batch(requests.subspan(i, n));
    count_batch(n);
    out.insert(out.end(), chunk.begin(), chunk.end());
  }
  return out;
}

MicroBatcher::Stats MicroBatcher::stats() const {
  Stats out;
  out.requests = requests_.load(std::memory_order_relaxed);
  out.batches = batches_.load(std::memory_order_relaxed);
  out.max_batch_seen = max_batch_seen_.load(std::memory_order_relaxed);
  out.shed = shed_.load(std::memory_order_relaxed);
  return out;
}

void MicroBatcher::count_batch(std::size_t n) {
  const auto sz = static_cast<std::uint64_t>(n);
  requests_.fetch_add(sz, std::memory_order_relaxed);
  batches_.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t seen = max_batch_seen_.load(std::memory_order_relaxed);
  while (seen < sz && !max_batch_seen_.compare_exchange_weak(
                          seen, sz, std::memory_order_relaxed)) {
  }
  obs_requests_.inc(sz);
  obs_batches_.inc();
  obs_batch_size_.observe(static_cast<double>(sz));
}

void MicroBatcher::drain_loop() {
  for (;;) {
    std::vector<Pending> batch;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [&] { return stop_ || !pending_.empty(); });
      if (stop_ && pending_.empty()) return;
      // A partial batch waits until the deadline of its *oldest* request —
      // pending_ is FIFO, so that is front().enqueue, which survives partial
      // drains (a leftover request keeps its original arrival time instead
      // of having its wait restarted). A full batch (or shutdown) goes
      // immediately.
      const auto deadline =
          pending_.front().enqueue + std::chrono::microseconds(opts_.max_wait_us);
      cv_.wait_until(lk, deadline, [&] {
        return stop_ ||
               pending_.size() >= static_cast<std::size_t>(opts_.max_batch);
      });
      if (stop_ && pending_.empty()) return;
      const std::size_t take = std::min<std::size_t>(
          pending_.size(), static_cast<std::size_t>(opts_.max_batch));
      batch.assign(std::make_move_iterator(pending_.begin()),
                   std::make_move_iterator(pending_.begin() +
                                           static_cast<std::ptrdiff_t>(take)));
      pending_.erase(pending_.begin(),
                     pending_.begin() + static_cast<std::ptrdiff_t>(take));
    }
    execute(std::move(batch));
  }
}

void MicroBatcher::execute(std::vector<Pending> batch) {
  std::vector<Request> requests;
  requests.reserve(batch.size());
  for (const Pending& p : batch) requests.push_back(*p.request);
  // Count the batch before fulfilling any promise: the promise/future pair
  // synchronizes-with the waiting caller, so a caller that has observed its
  // own response also observes this batch in stats() despite the relaxed
  // counter updates.
  count_batch(batch.size());
  try {
    auto responses = backend_.query_batch(requests);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      batch[i].promise.set_value(responses[i]);
    }
  } catch (...) {
    const std::exception_ptr err = std::current_exception();
    for (Pending& p : batch) p.promise.set_exception(err);
  }
}

}  // namespace dance::serve
