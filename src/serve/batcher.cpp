#include "serve/batcher.h"

#include <algorithm>
#include <exception>
#include <utility>

namespace dance::serve {

MicroBatcher::MicroBatcher(CostQueryBackend& backend, Options opts)
    : backend_(backend), opts_(opts) {
  if (opts_.max_batch > 1) {
    if (opts_.max_wait_us < 0) opts_.max_wait_us = 0;
    worker_ = std::thread([this] { drain_loop(); });
  }
}

MicroBatcher::~MicroBatcher() {
  if (worker_.joinable()) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    worker_.join();
  }
}

Response MicroBatcher::query(const Request& request) {
  if (opts_.max_batch <= 1) {
    // Inline mode: no worker, no future — the caller runs the backend.
    const Request* ptr = &request;
    auto responses = backend_.query_batch({ptr, 1});
    std::lock_guard<std::mutex> lk(stats_mu_);
    ++stats_.requests;
    ++stats_.batches;
    stats_.max_batch_seen = std::max<std::uint64_t>(stats_.max_batch_seen, 1);
    return responses.front();
  }

  std::future<Response> future;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (pending_.empty()) oldest_enqueue_ = std::chrono::steady_clock::now();
    Pending p;
    p.request = &request;  // stays alive: the caller blocks on the future
    future = p.promise.get_future();
    pending_.push_back(std::move(p));
  }
  cv_.notify_all();
  return future.get();
}

std::vector<Response> MicroBatcher::query_span(
    std::span<const Request> requests) {
  std::vector<Response> out;
  out.reserve(requests.size());
  const std::size_t step =
      static_cast<std::size_t>(std::max(1, opts_.max_batch));
  for (std::size_t i = 0; i < requests.size(); i += step) {
    const std::size_t n = std::min(step, requests.size() - i);
    auto chunk = backend_.query_batch(requests.subspan(i, n));
    {
      std::lock_guard<std::mutex> lk(stats_mu_);
      stats_.requests += n;
      ++stats_.batches;
      stats_.max_batch_seen = std::max(stats_.max_batch_seen,
                                       static_cast<std::uint64_t>(n));
    }
    out.insert(out.end(), chunk.begin(), chunk.end());
  }
  return out;
}

MicroBatcher::Stats MicroBatcher::stats() const {
  std::lock_guard<std::mutex> lk(stats_mu_);
  return stats_;
}

void MicroBatcher::drain_loop() {
  for (;;) {
    std::vector<Pending> batch;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [&] { return stop_ || !pending_.empty(); });
      if (stop_ && pending_.empty()) return;
      // A partial batch waits until the deadline of its *oldest* request;
      // a full batch (or shutdown) goes immediately.
      const auto deadline =
          oldest_enqueue_ + std::chrono::microseconds(opts_.max_wait_us);
      cv_.wait_until(lk, deadline, [&] {
        return stop_ ||
               pending_.size() >= static_cast<std::size_t>(opts_.max_batch);
      });
      if (stop_ && pending_.empty()) return;
      const std::size_t take = std::min<std::size_t>(
          pending_.size(), static_cast<std::size_t>(opts_.max_batch));
      batch.assign(std::make_move_iterator(pending_.begin()),
                   std::make_move_iterator(pending_.begin() +
                                           static_cast<std::ptrdiff_t>(take)));
      pending_.erase(pending_.begin(),
                     pending_.begin() + static_cast<std::ptrdiff_t>(take));
      if (!pending_.empty()) oldest_enqueue_ = std::chrono::steady_clock::now();
    }
    execute(std::move(batch));
  }
}

void MicroBatcher::execute(std::vector<Pending> batch) {
  std::vector<Request> requests;
  requests.reserve(batch.size());
  for (const Pending& p : batch) requests.push_back(*p.request);
  // Count the batch before fulfilling any promise: a caller that has observed
  // its own response must also observe this batch in stats().
  {
    std::lock_guard<std::mutex> lk(stats_mu_);
    stats_.requests += batch.size();
    ++stats_.batches;
    stats_.max_batch_seen = std::max(stats_.max_batch_seen,
                                     static_cast<std::uint64_t>(batch.size()));
  }
  try {
    auto responses = backend_.query_batch(requests);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      batch[i].promise.set_value(responses[i]);
    }
  } catch (...) {
    const std::exception_ptr err = std::current_exception();
    for (Pending& p : batch) p.promise.set_exception(err);
  }
}

}  // namespace dance::serve
