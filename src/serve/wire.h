#pragma once

#include <optional>
#include <string>
#include <vector>

#include "arch/space.h"
#include "serve/service.h"
#include "serve/types.h"

namespace dance::serve::wire {

/// The JSON-lines wire protocol shared by every front-end — the stdin
/// example (examples/serve_jsonl), the socket shard servers and the cluster
/// router all parse and serialize through these functions, so a request
/// answered over any transport produces byte-identical lines (the cluster
/// CI smoke literally `diff`s them).
///
/// Request (one object per line, whitespace-insensitive, keys any order):
///   {"id": 1, "arch": [0, 3, 6, 0, 1, 2, 4, 5, 0]}   per-slot op indices
///   {"id": 2, "encoding": [1.0, 0.0, ...]}           raw evaluator encoding
/// Response:
///   {"id": 1, "latency_ms": ..., "energy_mj": ..., "area_mm2": ...,
///    "pe_x": 16, "pe_y": 16, "rf_size": 32, "dataflow": "RS",
///    "cached": false, "degraded": false}
/// Registry-served responses append `, "generation": N` (N > 0). The field
/// is omitted when generation is 0 so non-registry deployments keep the
/// exact historical bytes (the cluster CI smoke diffs them).
/// Errors:
///   {"id": 1, "error": "..."}   (id -1 when the request carried none)

/// Low-level field scanners (exposed for tests and bespoke front-ends).
/// `parse_long_field` reads the integer value of `key`; `parse_array_field`
/// reads a float array value '[' number (',' number)* ']'.
[[nodiscard]] std::optional<long> parse_long_field(const std::string& line,
                                                   const char* key);
[[nodiscard]] std::optional<std::vector<float>> parse_array_field(
    const std::string& line, const char* key);
/// Reads a double-quoted string value (no escape handling — values are
/// identifiers like model names, not free text).
[[nodiscard]] std::optional<std::string> parse_string_field(
    const std::string& line, const char* key);

/// True for lines with nothing but whitespace — skipped, never answered.
[[nodiscard]] bool is_blank(const std::string& line);

/// A validated request: the id (-1 when absent) and the evaluator encoding,
/// already checked against the space (op-index range, encoding width).
struct ParsedRequest {
  long id = -1;
  std::vector<float> encoding;
};

/// Outcome of parsing one line: either a valid request or the error message
/// the caller must answer with (via `error_line(id, error)`).
struct ParseOutcome {
  bool ok = false;
  ParsedRequest request;
  std::string error;
};

[[nodiscard]] ParseOutcome parse_request(const std::string& line,
                                         const arch::ArchSpace& space);

/// Serializers. Exact output bytes are part of the protocol contract:
/// floats go through "%.6g", booleans are literal true/false.
[[nodiscard]] std::string response_line(long id, const Response& response);
[[nodiscard]] std::string error_line(long id, const std::string& message);

/// The full per-line pipeline: parse, query the service, serialize — the
/// single code path behind every front-end. Returns the response (or
/// error) line without a terminator, or an empty string for blank input
/// (no response owed). Service exceptions (Overloaded, backend failures)
/// become error lines; this function does not throw.
[[nodiscard]] std::string answer_line(const std::string& line,
                                      const arch::ArchSpace& space,
                                      Service& service);

}  // namespace dance::serve::wire
