#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "obs/registry.h"
#include "serve/backend.h"

namespace dance::serve {

/// Thrown by `MicroBatcher::query` when the pending queue is at
/// `max_pending`: the service is overloaded and sheds the request instead of
/// letting the queue (and every caller's latency) grow without bound.
/// Callers should treat it as back-pressure — retry later or route elsewhere.
class Overloaded : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Coalesces concurrent cost queries into batched backend calls.
///
/// Blocking `query` calls park their request in a pending list and wait on a
/// future; a dedicated drain worker forms a batch when either
///   * `max_batch` requests are pending (count trigger), or
///   * `max_wait_us` has elapsed since the oldest pending request arrived
///     (deadline trigger — bounds the latency a lone request pays for the
///     chance of being batched).
/// The worker executes the backend call itself; the heavy math inside the
/// backends (the evaluator's tensor ops, the LUT scans) fans out onto
/// `runtime::global_pool()` from there, so client threads never occupy pool
/// lanes while they sleep.
///
/// With `max_batch <= 1` no worker is spawned and `query` calls the backend
/// inline on the caller — the safe mode for callers that are themselves
/// pool-job bodies (see docs/serve.md on the deadlock hazard of blocking on
/// a future from inside a pool job).
class MicroBatcher {
 public:
  struct Options {
    int max_batch = 32;        ///< count trigger; <= 1 disables batching
    long max_wait_us = 200;    ///< deadline trigger for partial batches
    /// Load-shedding cap on the pending queue: a blocking `query` arriving
    /// while `max_pending` requests already wait throws `Overloaded` instead
    /// of enqueueing. <= 0 disables shedding. Inline mode (max_batch <= 1)
    /// never queues, so the cap does not apply there.
    long max_pending = 4096;
  };

  /// Per-instance counters for the stats report. The same events also feed
  /// the process-global obs counters serve.batch.{requests,executed} and the
  /// serve.batch.size histogram used by the exporters.
  struct Stats {
    std::uint64_t requests = 0;
    std::uint64_t batches = 0;
    std::uint64_t max_batch_seen = 0;
    std::uint64_t shed = 0;  ///< queries rejected by the max_pending cap

    [[nodiscard]] double mean_batch() const {
      return batches == 0 ? 0.0
                          : static_cast<double>(requests) /
                                static_cast<double>(batches);
    }
  };

  MicroBatcher(CostQueryBackend& backend, Options opts);
  ~MicroBatcher();

  MicroBatcher(const MicroBatcher&) = delete;
  MicroBatcher& operator=(const MicroBatcher&) = delete;

  /// Blocking single query; coalesced with concurrent callers. Backend
  /// exceptions propagate to every caller in the failed batch. Throws
  /// `Overloaded` (without blocking) when the pending queue is at
  /// `max_pending`.
  [[nodiscard]] Response query(const Request& request);

  /// Bulk entry point: answers all `requests` by slicing them directly into
  /// `max_batch`-sized backend calls on the calling thread — no deadline
  /// wait, no worker round-trip. Used by Service::query_many and the replay
  /// bench; safe from pool-job bodies (runs inline).
  [[nodiscard]] std::vector<Response> query_span(
      std::span<const Request> requests);

  [[nodiscard]] Stats stats() const;
  [[nodiscard]] const Options& options() const { return opts_; }
  [[nodiscard]] CostQueryBackend& backend() { return backend_; }

 private:
  struct Pending {
    const Request* request = nullptr;
    std::promise<Response> promise;
    /// Arrival time; the deadline trigger fires `max_wait_us` after the
    /// *front* entry's arrival, so a request left behind by a partial drain
    /// keeps its original deadline instead of restarting the clock.
    std::chrono::steady_clock::time_point enqueue{};
  };

  void drain_loop();
  void execute(std::vector<Pending> batch);

  /// Record one executed batch of `n` requests (instance atomics + the
  /// process-global obs instruments). Called before promises are fulfilled
  /// so a caller that observed its response also observes the batch.
  void count_batch(std::size_t n);

  CostQueryBackend& backend_;
  Options opts_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Pending> pending_;  ///< FIFO: front() is the oldest arrival
  bool stop_ = false;

  // Lock-free per-instance counters; stats() assembles a Stats from these.
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> max_batch_seen_{0};
  std::atomic<std::uint64_t> shed_{0};
  obs::Counter& obs_requests_;
  obs::Counter& obs_batches_;
  obs::Counter& obs_shed_;
  obs::Histogram& obs_batch_size_;

  std::thread worker_;  ///< last member: joins cleanly before state dies
};

}  // namespace dance::serve
