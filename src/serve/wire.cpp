#include "serve/wire.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "arch/ops.h"
#include "obs/span.h"

namespace dance::serve::wire {

namespace {

/// Finds `"key"` and returns the offset just past the following ':', or
/// npos when the key is absent.
std::size_t after_key(const std::string& line, const char* key) {
  const std::string quoted = std::string("\"") + key + "\"";
  const std::size_t at = line.find(quoted);
  if (at == std::string::npos) return std::string::npos;
  const std::size_t colon = line.find(':', at + quoted.size());
  return colon == std::string::npos ? std::string::npos : colon + 1;
}

}  // namespace

std::optional<long> parse_long_field(const std::string& line,
                                     const char* key) {
  const std::size_t from = after_key(line, key);
  if (from == std::string::npos) return std::nullopt;
  char* end = nullptr;
  const long v = std::strtol(line.c_str() + from, &end, 10);
  if (end == line.c_str() + from) return std::nullopt;
  return v;
}

std::optional<std::vector<float>> parse_array_field(const std::string& line,
                                                    const char* key) {
  std::size_t at = after_key(line, key);
  if (at == std::string::npos) return std::nullopt;
  while (at < line.size() &&
         std::isspace(static_cast<unsigned char>(line[at]))) {
    ++at;
  }
  if (at >= line.size() || line[at] != '[') return std::nullopt;
  ++at;
  std::vector<float> values;
  while (true) {
    while (at < line.size() &&
           (std::isspace(static_cast<unsigned char>(line[at])) ||
            line[at] == ',')) {
      ++at;
    }
    if (at >= line.size()) return std::nullopt;  // unterminated array
    if (line[at] == ']') return values;
    char* end = nullptr;
    const float v = std::strtof(line.c_str() + at, &end);
    if (end == line.c_str() + at) return std::nullopt;
    values.push_back(v);
    at = static_cast<std::size_t>(end - line.c_str());
  }
}

std::optional<std::string> parse_string_field(const std::string& line,
                                              const char* key) {
  std::size_t at = after_key(line, key);
  if (at == std::string::npos) return std::nullopt;
  while (at < line.size() &&
         std::isspace(static_cast<unsigned char>(line[at]))) {
    ++at;
  }
  if (at >= line.size() || line[at] != '"') return std::nullopt;
  const std::size_t close = line.find('"', at + 1);
  if (close == std::string::npos) return std::nullopt;
  return line.substr(at + 1, close - at - 1);
}

bool is_blank(const std::string& line) {
  return line.find_first_not_of(" \t\r") == std::string::npos;
}

ParseOutcome parse_request(const std::string& line,
                           const arch::ArchSpace& space) {
  ParseOutcome out;
  out.request.id = parse_long_field(line, "id").value_or(-1);

  if (auto enc = parse_array_field(line, "encoding")) {
    out.request.encoding = std::move(*enc);
  } else if (auto ops = parse_array_field(line, "arch")) {
    if (static_cast<int>(ops->size()) != space.num_searchable()) {
      out.error = "arch must list one op index per searchable slot";
      return out;
    }
    arch::Architecture a;
    for (float v : *ops) {
      const int op = static_cast<int>(v);
      if (op < 0 || op >= arch::kNumCandidateOps ||
          static_cast<float>(op) != v) {
        out.error = "arch entries must be integer op indices in [0, 6]";
        return out;
      }
      a.push_back(arch::kAllCandidateOps[static_cast<std::size_t>(op)]);
    }
    out.request.encoding = space.encode(a);
  } else {
    out.error = "request needs an 'encoding' or 'arch' array";
    return out;
  }

  if (static_cast<int>(out.request.encoding.size()) != space.encoding_width()) {
    out.error = "encoding has the wrong width";
    return out;
  }
  out.ok = true;
  return out;
}

std::string response_line(long id, const Response& r) {
  char buf[512];
  int n = std::snprintf(
      buf, sizeof(buf),
      "{\"id\": %ld, \"latency_ms\": %.6g, \"energy_mj\": %.6g, "
      "\"area_mm2\": %.6g, \"pe_x\": %d, \"pe_y\": %d, \"rf_size\": %d, "
      "\"dataflow\": \"%s\", \"cached\": %s, \"degraded\": %s",
      id, r.metrics.latency_ms, r.metrics.energy_mj, r.metrics.area_mm2,
      r.config.pe_x, r.config.pe_y, r.config.rf_size,
      accel::to_string(r.config.dataflow).c_str(), r.cached ? "true" : "false",
      r.degraded ? "true" : "false");
  if (r.generation != 0 && n > 0 && static_cast<std::size_t>(n) < sizeof(buf)) {
    n += std::snprintf(buf + n, sizeof(buf) - static_cast<std::size_t>(n),
                       ", \"generation\": %llu",
                       static_cast<unsigned long long>(r.generation));
  }
  if (n > 0 && static_cast<std::size_t>(n) < sizeof(buf) - 1) {
    buf[n] = '}';
    buf[n + 1] = '\0';
  }
  return buf;
}

std::string error_line(long id, const std::string& message) {
  return "{\"id\": " + std::to_string(id) + ", \"error\": \"" + message +
         "\"}";
}

std::string answer_line(const std::string& line, const arch::ArchSpace& space,
                        Service& service) {
  if (is_blank(line)) return "";
  const ParseOutcome parsed = parse_request(line, space);
  if (!parsed.ok) return error_line(parsed.request.id, parsed.error);
  try {
    obs::ScopedSpan request_span("serve.wire.request");
    return response_line(parsed.request.id,
                         service.query(Request{parsed.request.encoding}));
  } catch (const std::exception& e) {
    return error_line(parsed.request.id, e.what());
  }
}

}  // namespace dance::serve::wire
