#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "obs/registry.h"
#include "serve/batcher.h"
#include "serve/cache.h"

namespace dance::serve {

/// Snapshot of the service counters for one stats window (since start or the
/// last reset_stats()).
struct ServiceStats {
  std::uint64_t queries = 0;
  double window_seconds = 0.0;
  double qps = 0.0;
  ShardedLruCache::Stats cache;
  MicroBatcher::Stats batcher;
  /// Client-observed per-query latency percentiles (microseconds), over the
  /// most recent samples (bounded ring, like the runtime profiler).
  double p50_us = 0.0;
  double p95_us = 0.0;
};

/// The embeddable cost-query service: cache -> micro-batcher -> backend.
///
/// `query` is the hot path: canonicalize the encoding, probe the sharded
/// LRU cache, and on a miss ride the micro-batcher into a batched backend
/// call, memoizing the answer on the way out. Every query's wall latency is
/// recorded for the p50/p95 report. Thread-safe: any number of client
/// threads may call `query` concurrently.
///
/// Knobs (environment, read by Options::from_env; constructor args win):
///   DANCE_SERVE_CACHE_CAP   total cache entries        (default 65536)
///   DANCE_SERVE_SHARDS      cache shard count          (default 8)
///   DANCE_SERVE_CACHE       "0" disables the cache     (default on)
///   DANCE_SERVE_MAX_BATCH   batch count trigger        (default 32)
///   DANCE_SERVE_MAX_WAIT_US batch deadline trigger     (default 200)
///   DANCE_SERVE_MAX_PENDING load-shedding queue cap    (default 4096,
///                           0 disables shedding)
class Service {
 public:
  struct Options {
    std::size_t cache_capacity = 1 << 16;
    int cache_shards = 8;
    bool enable_cache = true;
    MicroBatcher::Options batch;

    /// Defaults overridden by any DANCE_SERVE_* variables that parse as a
    /// positive integer (DANCE_SERVE_MAX_WAIT_US accepts 0); garbage values
    /// are ignored. Reads go through util::env, so every knob is recorded in
    /// the obs registry with its effective value.
    [[nodiscard]] static Options from_env();
  };

  Service(CostQueryBackend& backend, Options opts);
  explicit Service(CostQueryBackend& backend)
      : Service(backend, Options::from_env()) {}

  /// Blocking single query. `cached` is set on the response iff it was
  /// answered from the memoization cache.
  [[nodiscard]] Response query(const Request& request);

  /// Bulk replay: cache-probes all requests, deduplicates the missed keys
  /// within the call (the backend sees each unique key once, even on a cold
  /// cache), then answers them in max_batch-sized backend slices on the
  /// calling thread (no deadline waits — the batch is already here).
  /// Responses are in request order; repeats of a missed key after its first
  /// occurrence come back with `cached` set, like a cache hit.
  [[nodiscard]] std::vector<Response> query_many(
      std::span<const Request> requests);

  [[nodiscard]] ServiceStats stats() const;
  /// Fixed-width text block (QPS, hit rate, batch shape, p50/p95), ready to
  /// print; rendered through the same util::Table formatter as
  /// runtime::profiler_report.
  [[nodiscard]] std::string stats_report() const;
  /// Restarts the stats window and latency samples (cache contents and
  /// cache/batcher lifetime counters are preserved).
  void reset_stats();

  [[nodiscard]] const Options& options() const { return opts_; }
  [[nodiscard]] CostQueryBackend& backend() { return batcher_.backend(); }
  /// The memoization cache, or nullptr when disabled. Exposed so the
  /// cluster snapshot layer can export/restore entries for warm starts.
  [[nodiscard]] ShardedLruCache* cache() { return cache_.get(); }

 private:
  void record_latency_us(double us);

  Options opts_;
  std::unique_ptr<ShardedLruCache> cache_;  ///< null when disabled
  MicroBatcher batcher_;

  mutable std::mutex stats_mu_;
  std::uint64_t queries_ = 0;
  std::vector<double> latency_ring_;
  std::size_t latency_next_ = 0;
  std::chrono::steady_clock::time_point window_start_;

  // Process-global mirrors of the per-instance counters above, for the
  // JSON/Prometheus exporters.
  obs::Counter& obs_queries_;
  obs::Histogram& obs_latency_us_;
};

}  // namespace dance::serve
