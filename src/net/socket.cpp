#include "net/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <thread>
#include <unistd.h>

namespace dance::net {

namespace {

[[noreturn]] void raise_errno(const std::string& what) {
  throw NetError(what + ": " + std::strerror(errno));
}

sockaddr_in tcp_addr(const Endpoint& ep) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(ep.port));
  if (::inet_pton(AF_INET, ep.host.c_str(), &addr.sin_addr) != 1) {
    throw NetError("bad IPv4 address: " + ep.host);
  }
  return addr;
}

sockaddr_un unix_addr(const Endpoint& ep) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (ep.path.empty() || ep.path.size() >= sizeof(addr.sun_path)) {
    throw NetError("unix socket path empty or too long: " + ep.path);
  }
  std::memcpy(addr.sun_path, ep.path.c_str(), ep.path.size() + 1);
  return addr;
}

Fd make_socket(const Endpoint& ep) {
  const int domain = ep.kind == Endpoint::Kind::kTcp ? AF_INET : AF_UNIX;
  Fd fd(::socket(domain, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) raise_errno("socket");
  return fd;
}

}  // namespace

Endpoint Endpoint::parse(const std::string& text) {
  if (text.rfind("unix:", 0) == 0) {
    const std::string path = text.substr(5);
    if (path.empty()) {
      throw std::invalid_argument("Endpoint: empty unix path in '" + text + "'");
    }
    return unix_path(path);
  }
  if (text.rfind("tcp:", 0) == 0) {
    const std::string rest = text.substr(4);
    const std::size_t colon = rest.rfind(':');
    if (colon == std::string::npos || colon == 0) {
      throw std::invalid_argument("Endpoint: expected tcp:HOST:PORT, got '" +
                                  text + "'");
    }
    const std::string port_text = rest.substr(colon + 1);
    char* end = nullptr;
    const long port = std::strtol(port_text.c_str(), &end, 10);
    if (port_text.empty() || end != port_text.c_str() + port_text.size() ||
        port < 0 || port > 65535) {
      throw std::invalid_argument("Endpoint: bad port in '" + text + "'");
    }
    return tcp(rest.substr(0, colon), static_cast<int>(port));
  }
  throw std::invalid_argument(
      "Endpoint: expected tcp:HOST:PORT or unix:PATH, got '" + text + "'");
}

std::string Endpoint::to_string() const {
  if (kind == Kind::kUnix) return "unix:" + path;
  return "tcp:" + host + ":" + std::to_string(port);
}

void Fd::reset(int fd) {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

Fd listen_on(const Endpoint& ep, int backlog) {
  Fd fd = make_socket(ep);
  if (ep.kind == Endpoint::Kind::kTcp) {
    const int one = 1;
    ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    const sockaddr_in addr = tcp_addr(ep);
    if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      raise_errno("bind " + ep.to_string());
    }
  } else {
    ::unlink(ep.path.c_str());  // stale socket from a previous run
    const sockaddr_un addr = unix_addr(ep);
    if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      raise_errno("bind " + ep.to_string());
    }
  }
  if (::listen(fd.get(), backlog) != 0) raise_errno("listen " + ep.to_string());
  return fd;
}

Endpoint local_endpoint(int fd, const Endpoint& requested) {
  if (requested.kind == Endpoint::Kind::kUnix) return requested;
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    raise_errno("getsockname");
  }
  Endpoint bound = requested;
  bound.port = static_cast<int>(ntohs(addr.sin_port));
  return bound;
}

Fd dial(const Endpoint& ep) {
  Fd fd = make_socket(ep);
  int rc = 0;
  if (ep.kind == Endpoint::Kind::kTcp) {
    const sockaddr_in addr = tcp_addr(ep);
    do {
      rc = ::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                     sizeof(addr));
    } while (rc != 0 && errno == EINTR);
  } else {
    const sockaddr_un addr = unix_addr(ep);
    do {
      rc = ::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                     sizeof(addr));
    } while (rc != 0 && errno == EINTR);
  }
  if (rc != 0) raise_errno("connect " + ep.to_string());
  if (ep.kind == Endpoint::Kind::kTcp) {
    const int one = 1;  // request/response lines want low latency, not Nagle
    ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  return fd;
}

Fd dial_retry(const Endpoint& ep, long timeout_ms, long backoff_us) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (true) {
    try {
      return dial(ep);
    } catch (const NetError&) {
      if (std::chrono::steady_clock::now() >= deadline) throw;
      std::this_thread::sleep_for(std::chrono::microseconds(backoff_us));
    }
  }
}

void set_nonblocking(int fd, bool on) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) raise_errno("fcntl(F_GETFL)");
  const int next = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (::fcntl(fd, F_SETFL, next) != 0) raise_errno("fcntl(F_SETFL)");
}

void write_all(int fd, const char* data, std::size_t n) {
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t rc = ::send(fd, data + sent, n - sent, MSG_NOSIGNAL);
    if (rc > 0) {
      sent += static_cast<std::size_t>(rc);
      continue;
    }
    if (rc < 0 && errno == EINTR) continue;
    if (rc < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd pfd{fd, POLLOUT, 0};
      const int pr = ::poll(&pfd, 1, -1);
      if (pr < 0 && errno != EINTR) raise_errno("poll(POLLOUT)");
      continue;
    }
    raise_errno("send");
  }
}

std::size_t read_some(int fd, char* buf, std::size_t n) {
  while (true) {
    const ssize_t rc = ::read(fd, buf, n);
    if (rc >= 0) return static_cast<std::size_t>(rc);
    if (errno == EINTR) continue;
    raise_errno("read");
  }
}

}  // namespace dance::net
