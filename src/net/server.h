#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <condition_variable>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "fault/fault.h"
#include "net/frame.h"
#include "net/socket.h"
#include "obs/registry.h"

namespace dance::net {

/// DANCE_FAULT sites wired into the connection layer (see fault::FaultSpec
/// grammar — dotted site names parse fine: "net.read:error=0.1"). An
/// injected error at accept drops the new connection; at read/write it
/// fails the connection, dropping its queued lines — exactly the failure
/// the retrying Client is built to absorb.
inline constexpr const char* kAcceptSite = "net.accept";
inline constexpr const char* kReadSite = "net.read";
inline constexpr const char* kWriteSite = "net.write";

/// Epoll + worker-pool line-protocol server (TCP or unix-domain).
///
/// One IO thread owns the epoll set: it accepts connections, reads whatever
/// bytes are available, reassembles complete lines (LineReader) and queues
/// them per connection. `workers` threads pull connections off a ready
/// queue and run the handler one line at a time; a connection is owned by
/// at most one worker at a time, so responses go back in request order even
/// though different connections progress in parallel. The handler returns
/// the response line (no terminator); an empty return means "no response"
/// (blank input lines). Handlers run concurrently across connections and
/// must be thread-safe — serve::Service is.
///
/// Shutdown: `drain()` stops accepting and reading, answers every line
/// already received, flushes the writes, and returns once zero requests are
/// in flight (the SIGTERM path). `stop()` then tears the threads down;
/// calling `stop()` without a prior drain abandons queued lines.
class Server {
 public:
  using Handler = std::function<std::string(const std::string& line)>;

  struct Options {
    int workers = 4;                      ///< handler threads
    int backlog = 64;                     ///< listen(2) backlog
    std::size_t max_line_bytes = 1 << 20; ///< oversize-frame cutoff
    /// Chaos source for the net.* sites; defaulted from
    /// fault::global_injector() at start() when unset.
    std::shared_ptr<fault::FaultInjector> injector;

    /// DANCE_CLUSTER_WORKERS / DANCE_CLUSTER_BACKLOG /
    /// DANCE_CLUSTER_MAX_LINE override the defaults (positive integers;
    /// garbage ignored).
    [[nodiscard]] static Options from_env();
  };

  /// Lifetime counters for THIS server instance. The same events feed the
  /// process-global obs counters cluster.net.{accepted,closed,requests,
  /// bytes_in,bytes_out,protocol_errors,faults} used by the exporters.
  struct Stats {
    std::uint64_t accepted = 0;
    std::uint64_t closed = 0;
    std::uint64_t requests = 0;  ///< handler invocations
    std::uint64_t bytes_in = 0;
    std::uint64_t bytes_out = 0;
    std::uint64_t protocol_errors = 0;  ///< oversize frames
    std::uint64_t faults = 0;           ///< injected net.* faults taken
  };

  Server(Handler handler, Options opts);
  explicit Server(Handler handler) : Server(std::move(handler), Options::from_env()) {}
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens and starts the IO + worker threads. Returns the bound
  /// endpoint (tcp port 0 resolved). One start per Server.
  Endpoint start(const Endpoint& listen_at);

  /// Graceful drain; returns true once no requests are in flight, false on
  /// timeout (timeout_ms < 0 waits forever). Idempotent.
  bool drain(long timeout_ms = -1);

  /// Stops threads and closes every fd. Implicit in the destructor.
  void stop();

  [[nodiscard]] Stats stats() const;
  [[nodiscard]] const Endpoint& endpoint() const { return bound_; }
  [[nodiscard]] const Options& options() const { return opts_; }

 private:
  struct Conn {
    explicit Conn(int f, std::size_t max_line) : fd(f), reader(max_line) {}
    const int fd;
    LineReader reader;               ///< IO thread only
    std::mutex write_mu;             ///< serializes response writes vs close
    // --- guarded by Server::mu_ ---
    std::deque<std::string> inbox;   ///< complete lines awaiting a worker
    bool scheduled = false;          ///< a worker currently owns this conn
    bool eof = false;                ///< peer half-closed; close when drained
    bool detached = false;           ///< out of the epoll set; close pending
  };
  using ConnPtr = std::shared_ptr<Conn>;

  void io_loop();
  void worker_loop();
  void handle_readable(const ConnPtr& conn);
  /// IO thread: remove from epoll; optionally drop queued lines; close the
  /// fd now if no worker holds the conn.
  void detach(const ConnPtr& conn, bool drop_inbox);
  /// IO thread: close + forget a detached conn that no worker holds.
  void finalize(const ConnPtr& conn);
  void wake_io();

  Handler handler_;
  Options opts_;
  Endpoint bound_;

  Fd listen_fd_;
  Fd epoll_fd_;
  Fd wake_fd_;  ///< eventfd: workers/drain/stop nudge the IO thread

  mutable std::mutex mu_;
  std::condition_variable worker_cv_;  ///< ready queue / stop
  std::condition_variable drain_cv_;   ///< pending_ == 0 while draining
  std::deque<ConnPtr> ready_;
  std::vector<int> finalize_fds_;      ///< worker -> IO thread close requests
  std::unordered_map<int, ConnPtr> conns_;  ///< IO thread writes, stats reads
  std::uint64_t pending_ = 0;  ///< received lines not yet fully answered
  bool draining_ = false;
  bool stop_ = false;
  bool started_ = false;

  Stats stats_;  ///< guarded by mu_

  obs::Counter& obs_accepted_;
  obs::Counter& obs_closed_;
  obs::Counter& obs_requests_;
  obs::Counter& obs_bytes_in_;
  obs::Counter& obs_bytes_out_;
  obs::Counter& obs_protocol_errors_;
  obs::Counter& obs_faults_;

  std::vector<std::thread> workers_;
  std::thread io_;  ///< joined in stop()
};

}  // namespace dance::net
