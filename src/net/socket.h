#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>

namespace dance::net {

/// Connection-level failure: dial refused, peer reset, write to a dead
/// socket, oversized frame. A plain runtime_error subtype so resilience
/// code (the retrying Client, the Router) can treat network trouble like
/// any other transient backend failure while tests catch it by exact type.
class NetError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Where a server listens or a client dials. Two transports:
///   tcp:HOST:PORT   e.g. tcp:127.0.0.1:9000 (port 0 = kernel-assigned;
///                   the bound Endpoint reports the concrete port)
///   unix:PATH       e.g. unix:/tmp/dance.sock
struct Endpoint {
  enum class Kind { kTcp, kUnix };

  Kind kind = Kind::kTcp;
  std::string host = "127.0.0.1";  ///< tcp only
  int port = 0;                    ///< tcp only
  std::string path;                ///< unix only

  /// Parses the textual form above. Throws std::invalid_argument on
  /// anything else (unknown scheme, missing port, empty path).
  [[nodiscard]] static Endpoint parse(const std::string& text);

  [[nodiscard]] static Endpoint tcp(std::string host, int port) {
    Endpoint e;
    e.kind = Kind::kTcp;
    e.host = std::move(host);
    e.port = port;
    return e;
  }
  [[nodiscard]] static Endpoint unix_path(std::string path) {
    Endpoint e;
    e.kind = Kind::kUnix;
    e.path = std::move(path);
    return e;
  }

  [[nodiscard]] std::string to_string() const;
};

/// Move-only RAII file descriptor.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }

  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }

  [[nodiscard]] int get() const { return fd_; }
  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  /// Releases ownership without closing.
  int release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void reset(int fd = -1);

 private:
  int fd_ = -1;
};

/// Creates, binds and listens. For unix endpoints a stale socket file at the
/// path is unlinked first (the caller owns the path). Throws NetError.
[[nodiscard]] Fd listen_on(const Endpoint& ep, int backlog);

/// The endpoint a listening fd is actually bound to: resolves tcp port 0 to
/// the kernel-assigned port; unix endpoints come back as requested.
[[nodiscard]] Endpoint local_endpoint(int fd, const Endpoint& requested);

/// One blocking connect attempt. Throws NetError on failure.
[[nodiscard]] Fd dial(const Endpoint& ep);

/// Redials with `backoff_us` sleeps until success or `timeout_ms` elapses
/// (then rethrows the last failure). The way callers wait for a server that
/// is still starting up.
[[nodiscard]] Fd dial_retry(const Endpoint& ep, long timeout_ms,
                            long backoff_us = 20000);

void set_nonblocking(int fd, bool on);

/// Writes all `n` bytes: loops over short writes and EINTR, polls for
/// writability on EAGAIN (so it is safe on the server's non-blocking
/// connection fds), and sends with MSG_NOSIGNAL so a dead peer surfaces as
/// NetError(EPIPE) instead of killing the process.
void write_all(int fd, const char* data, std::size_t n);

/// One read: returns the byte count, 0 on orderly EOF; retries EINTR.
/// Throws NetError on connection errors. On a non-blocking fd EAGAIN is
/// reported as NetError too — the epoll server uses raw ::read instead.
[[nodiscard]] std::size_t read_some(int fd, char* buf, std::size_t n);

}  // namespace dance::net
