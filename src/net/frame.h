#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>

#include "net/socket.h"

namespace dance::net {

/// Frame encoding for the wire protocol: one request or response per
/// '\n'-terminated line. `encode_line` is the only way bytes should enter a
/// socket — it rejects payloads that already contain the terminator, which
/// would silently desync the stream into two frames.
[[nodiscard]] std::string encode_line(std::string_view payload);

/// Incremental line reassembly over arbitrary read boundaries.
///
/// `feed` accepts whatever a socket read produced — half a line, three
/// lines and a prefix, one byte — and `next_line` yields each completed
/// line exactly once, terminator stripped (a trailing '\r' is stripped too,
/// so telnet-style clients work). Bytes after the last terminator stay
/// buffered for the next feed; `buffered` reports how many.
///
/// A line longer than `max_line_bytes` (terminator exclusive) raises
/// NetError from `feed`: an unbounded unterminated line is either a broken
/// or a hostile peer, and the server closes the connection rather than
/// buffering without limit.
class LineReader {
 public:
  explicit LineReader(std::size_t max_line_bytes = 1 << 20)
      : max_line_bytes_(max_line_bytes) {}

  void feed(const char* data, std::size_t n);
  void feed(std::string_view data) { feed(data.data(), data.size()); }

  /// The next complete line, or nullopt when none is buffered.
  [[nodiscard]] std::optional<std::string> next_line();

  /// Bytes of the trailing incomplete line currently buffered.
  [[nodiscard]] std::size_t buffered() const { return buf_.size() - head_; }

 private:
  std::size_t max_line_bytes_;
  std::string buf_;
  std::size_t head_ = 0;  ///< consumed prefix of buf_ (compacted lazily)
};

/// Blocking convenience used by clients: reads from `fd` until the reader
/// yields a line. Returns nullopt on orderly EOF with nothing buffered;
/// EOF in the middle of a line is a truncated frame and throws NetError.
[[nodiscard]] std::optional<std::string> read_line(int fd, LineReader& reader);

}  // namespace dance::net
