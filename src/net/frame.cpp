#include "net/frame.h"

namespace dance::net {

std::string encode_line(std::string_view payload) {
  if (payload.find('\n') != std::string_view::npos) {
    throw NetError("encode_line: payload contains the line terminator");
  }
  std::string out;
  out.reserve(payload.size() + 1);
  out.append(payload);
  out.push_back('\n');
  return out;
}

void LineReader::feed(const char* data, std::size_t n) {
  buf_.append(data, n);
  // The oversize check only needs to look at the trailing incomplete line,
  // but a cheap conservative test (whole buffer small) skips the scan on the
  // hot path.
  if (buf_.size() - head_ > max_line_bytes_) {
    const std::size_t last_nl = buf_.find_last_of('\n');
    const std::size_t tail_begin =
        last_nl == std::string::npos || last_nl < head_ ? head_ : last_nl + 1;
    if (buf_.size() - tail_begin > max_line_bytes_) {
      throw NetError("line exceeds max_line_bytes (" +
                     std::to_string(max_line_bytes_) + ")");
    }
  }
}

std::optional<std::string> LineReader::next_line() {
  const std::size_t nl = buf_.find('\n', head_);
  if (nl == std::string::npos) {
    // Compact once the consumed prefix dominates, so a long-lived
    // connection does not grow its buffer without bound.
    if (head_ > 4096 && head_ > buf_.size() / 2) {
      buf_.erase(0, head_);
      head_ = 0;
    }
    return std::nullopt;
  }
  std::size_t end = nl;
  if (end > head_ && buf_[end - 1] == '\r') --end;
  std::string line = buf_.substr(head_, end - head_);
  head_ = nl + 1;
  if (head_ == buf_.size()) {
    buf_.clear();
    head_ = 0;
  }
  return line;
}

std::optional<std::string> read_line(int fd, LineReader& reader) {
  if (auto line = reader.next_line()) return line;
  char buf[4096];
  while (true) {
    const std::size_t n = read_some(fd, buf, sizeof(buf));
    if (n == 0) {
      if (reader.buffered() > 0) {
        throw NetError("connection closed mid-line (truncated frame)");
      }
      return std::nullopt;
    }
    reader.feed(buf, n);
    if (auto line = reader.next_line()) return line;
  }
}

}  // namespace dance::net
