#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "net/frame.h"
#include "net/socket.h"
#include "obs/registry.h"

namespace dance::net {

/// Blocking request/response client for the line protocol, with the
/// resilience story the chaos tests lean on: any connection-level failure
/// (dial refused, reset, EOF mid-exchange, truncated frame) tears the
/// connection down and retries the whole exchange on a fresh one, up to
/// `retries` times with linear backoff. Safe because cost queries are pure
/// and idempotent — a resend can only re-answer, never double-apply.
///
/// Not thread-safe: callers own one Client per thread or pool them (the
/// Router keeps a small per-shard pool).
class Client {
 public:
  struct Options {
    int retries = 3;            ///< re-dial + resend attempts after the first
    long backoff_us = 2000;     ///< sleep between attempts (linear)
    long dial_timeout_ms = 5000;  ///< per-attempt budget for connect retries

    /// DANCE_CLUSTER_RETRIES / DANCE_CLUSTER_BACKOFF_US /
    /// DANCE_CLUSTER_DIAL_TIMEOUT_MS override the defaults.
    [[nodiscard]] static Options from_env();
  };

  explicit Client(Endpoint ep, Options opts = Options::from_env());

  /// Sends `payload` as one frame and blocks for the one response line.
  /// Lazily connects (and reconnects after failures). Throws NetError once
  /// every attempt is exhausted.
  [[nodiscard]] std::string roundtrip(const std::string& payload);

  /// Drops the connection (next roundtrip redials).
  void close();

  [[nodiscard]] bool connected() const { return fd_.valid(); }
  [[nodiscard]] const Endpoint& endpoint() const { return ep_; }

  struct Stats {
    std::uint64_t roundtrips = 0;
    std::uint64_t retries = 0;   ///< extra attempts actually taken
    std::uint64_t failures = 0;  ///< roundtrips that exhausted all attempts
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  void ensure_connected();

  Endpoint ep_;
  Options opts_;
  Fd fd_;
  std::unique_ptr<LineReader> reader_;

  Stats stats_;
  obs::Counter& obs_retries_;
  obs::Counter& obs_failures_;
};

}  // namespace dance::net
