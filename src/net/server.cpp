#include "net/server.h"

#include <cerrno>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include "util/env.h"

namespace dance::net {

namespace {

/// Last-resort sanitizer for handler-exception text that must travel inside
/// a JSON string (the wire layer catches its own errors; this only fires on
/// a handler bug).
std::string json_safe(std::string text) {
  for (char& c : text) {
    if (c == '"' || c == '\\' || c == '\n' || c == '\r') c = ' ';
  }
  return text;
}

}  // namespace

Server::Options Server::Options::from_env() {
  Options opts;
  opts.workers = util::env_int("DANCE_CLUSTER_WORKERS", opts.workers, 1, 256);
  opts.backlog = util::env_int("DANCE_CLUSTER_BACKLOG", opts.backlog, 1);
  opts.max_line_bytes = static_cast<std::size_t>(util::env_long(
      "DANCE_CLUSTER_MAX_LINE", static_cast<long>(opts.max_line_bytes), 64));
  return opts;
}

Server::Server(Handler handler, Options opts)
    : handler_(std::move(handler)),
      opts_(std::move(opts)),
      obs_accepted_(obs::Registry::global().counter("cluster.net.accepted")),
      obs_closed_(obs::Registry::global().counter("cluster.net.closed")),
      obs_requests_(obs::Registry::global().counter("cluster.net.requests")),
      obs_bytes_in_(obs::Registry::global().counter("cluster.net.bytes_in")),
      obs_bytes_out_(obs::Registry::global().counter("cluster.net.bytes_out")),
      obs_protocol_errors_(
          obs::Registry::global().counter("cluster.net.protocol_errors")),
      obs_faults_(obs::Registry::global().counter("cluster.net.faults")) {}

Server::~Server() { stop(); }

Endpoint Server::start(const Endpoint& listen_at) {
  if (started_) throw NetError("Server::start called twice");
  if (!opts_.injector) opts_.injector = fault::global_injector();

  listen_fd_ = listen_on(listen_at, opts_.backlog);
  set_nonblocking(listen_fd_.get(), true);
  bound_ = local_endpoint(listen_fd_.get(), listen_at);

  epoll_fd_ = Fd(::epoll_create1(EPOLL_CLOEXEC));
  if (!epoll_fd_.valid()) throw NetError("epoll_create1 failed");
  wake_fd_ = Fd(::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC));
  if (!wake_fd_.valid()) throw NetError("eventfd failed");

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_.get();
  ::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, listen_fd_.get(), &ev);
  ev.data.fd = wake_fd_.get();
  ::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, wake_fd_.get(), &ev);

  started_ = true;
  io_ = std::thread([this] { io_loop(); });
  workers_.reserve(static_cast<std::size_t>(opts_.workers));
  for (int i = 0; i < opts_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  return bound_;
}

void Server::wake_io() {
  if (!wake_fd_.valid()) return;
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t rc =
      ::write(wake_fd_.get(), &one, sizeof(one));
}

bool Server::drain(long timeout_ms) {
  std::unique_lock<std::mutex> lk(mu_);
  if (!started_) return true;
  draining_ = true;
  lk.unlock();
  wake_io();
  lk.lock();
  const auto done = [this] { return pending_ == 0; };
  if (timeout_ms < 0) {
    drain_cv_.wait(lk, done);
    return true;
  }
  return drain_cv_.wait_for(lk, std::chrono::milliseconds(timeout_ms), done);
}

void Server::stop() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (!started_ || stop_) return;
    stop_ = true;
  }
  worker_cv_.notify_all();
  wake_io();
  for (std::thread& t : workers_) t.join();
  workers_.clear();
  if (io_.joinable()) io_.join();

  std::unordered_map<int, ConnPtr> leftover;
  {
    std::lock_guard<std::mutex> lk(mu_);
    leftover.swap(conns_);
    stats_.closed += leftover.size();
  }
  for (auto& [fd, conn] : leftover) {
    ::close(fd);
    obs_closed_.inc();
  }
  epoll_fd_.reset();
  wake_fd_.reset();
  listen_fd_.reset();
  if (bound_.kind == Endpoint::Kind::kUnix && !bound_.path.empty()) {
    ::unlink(bound_.path.c_str());
  }
}

Server::Stats Server::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

void Server::detach(const ConnPtr& conn, bool drop_inbox) {
  bool do_finalize = false;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (!conn->detached) {
      ::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_DEL, conn->fd, nullptr);
      conn->detached = true;
    }
    if (drop_inbox && !conn->inbox.empty()) {
      pending_ -= conn->inbox.size();
      conn->inbox.clear();
      if (draining_ && pending_ == 0) drain_cv_.notify_all();
    }
    do_finalize = !conn->scheduled && conn->inbox.empty();
  }
  if (do_finalize) finalize(conn);
}

void Server::finalize(const ConnPtr& conn) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (conns_.erase(conn->fd) == 0) return;  // already finalized
    ++stats_.closed;
  }
  // Serialize against a straggling response write (workers release
  // write_mu before requesting a close, so this is uncontended in
  // practice; the lock makes the ordering airtight).
  std::lock_guard<std::mutex> wl(conn->write_mu);
  ::close(conn->fd);
  obs_closed_.inc();
}

void Server::handle_readable(const ConnPtr& conn) {
  if (opts_.injector) {
    try {
      opts_.injector->at(kReadSite);
    } catch (const fault::InjectedFault&) {
      {
        std::lock_guard<std::mutex> lk(mu_);
        ++stats_.faults;
      }
      obs_faults_.inc();
      detach(conn, /*drop_inbox=*/true);
      return;
    }
  }

  char buf[16384];
  bool got_eof = false;
  std::vector<std::string> lines;
  std::size_t nbytes = 0;
  while (true) {
    const ssize_t rc = ::read(conn->fd, buf, sizeof(buf));
    if (rc > 0) {
      nbytes += static_cast<std::size_t>(rc);
      try {
        conn->reader.feed(buf, static_cast<std::size_t>(rc));
      } catch (const NetError&) {
        {
          std::lock_guard<std::mutex> lk(mu_);
          ++stats_.protocol_errors;
          stats_.bytes_in += nbytes;
        }
        obs_protocol_errors_.inc();
        obs_bytes_in_.inc(nbytes);
        detach(conn, /*drop_inbox=*/true);
        return;
      }
      while (auto line = conn->reader.next_line()) {
        lines.push_back(std::move(*line));
      }
      if (rc < static_cast<ssize_t>(sizeof(buf))) break;  // likely drained
      continue;
    }
    if (rc == 0) {
      got_eof = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    {
      std::lock_guard<std::mutex> lk(mu_);
      stats_.bytes_in += nbytes;
    }
    obs_bytes_in_.inc(nbytes);
    detach(conn, /*drop_inbox=*/true);  // connection error (e.g. ECONNRESET)
    return;
  }

  if (nbytes > 0) obs_bytes_in_.inc(nbytes);
  bool notify = false;
  {
    std::lock_guard<std::mutex> lk(mu_);
    stats_.bytes_in += nbytes;
    for (std::string& line : lines) {
      conn->inbox.push_back(std::move(line));
      ++pending_;
    }
    if (!conn->scheduled && !conn->inbox.empty()) {
      conn->scheduled = true;
      ready_.push_back(conn);
      notify = true;
    }
    if (got_eof) conn->eof = true;
  }
  if (notify) worker_cv_.notify_one();
  // A half-closed peer sends nothing further: stop polling it, answer what
  // it already sent (responses still flow on the write side), then close.
  if (got_eof) detach(conn, /*drop_inbox=*/false);
}

void Server::io_loop() {
  std::vector<epoll_event> events(64);
  bool drain_begun = false;
  while (true) {
    const int n = ::epoll_wait(epoll_fd_.get(), events.data(),
                               static_cast<int>(events.size()), -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll fd gone: shutting down
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (wake_fd_.valid() && fd == wake_fd_.get()) {
        std::uint64_t drainv = 0;
        while (::read(wake_fd_.get(), &drainv, sizeof(drainv)) > 0) {
        }
        continue;
      }
      if (listen_fd_.valid() && fd == listen_fd_.get()) {
        while (true) {
          const int cfd = ::accept4(listen_fd_.get(), nullptr, nullptr,
                                    SOCK_NONBLOCK | SOCK_CLOEXEC);
          if (cfd < 0) {
            if (errno == EINTR) continue;
            break;  // EAGAIN or transient accept error
          }
          if (opts_.injector) {
            bool faulted = false;
            try {
              opts_.injector->at(kAcceptSite);
            } catch (const fault::InjectedFault&) {
              faulted = true;
            }
            if (faulted) {
              {
                std::lock_guard<std::mutex> lk(mu_);
                ++stats_.faults;
              }
              obs_faults_.inc();
              ::close(cfd);
              continue;
            }
          }
          if (bound_.kind == Endpoint::Kind::kTcp) {
            const int one = 1;
            ::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
          }
          auto conn = std::make_shared<Conn>(cfd, opts_.max_line_bytes);
          {
            std::lock_guard<std::mutex> lk(mu_);
            conns_.emplace(cfd, conn);
            ++stats_.accepted;
          }
          obs_accepted_.inc();
          epoll_event ev{};
          ev.events = EPOLLIN;
          ev.data.fd = cfd;
          ::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, cfd, &ev);
        }
        continue;
      }
      ConnPtr conn;
      {
        std::lock_guard<std::mutex> lk(mu_);
        const auto it = conns_.find(fd);
        if (it != conns_.end()) conn = it->second;
      }
      if (!conn) continue;
      if ((events[i].events & EPOLLERR) != 0) {
        detach(conn, /*drop_inbox=*/true);
        continue;
      }
      handle_readable(conn);
    }

    // Post-event bookkeeping requested via the eventfd: worker close
    // requests, drain begin, stop.
    std::vector<int> to_finalize;
    bool begin_drain = false;
    bool stopping = false;
    {
      std::lock_guard<std::mutex> lk(mu_);
      to_finalize.swap(finalize_fds_);
      if (draining_ && !drain_begun) begin_drain = true;
      stopping = stop_;
    }
    if (begin_drain) {
      drain_begun = true;
      listen_fd_.reset();  // closing removes it from the epoll set
      if (bound_.kind == Endpoint::Kind::kUnix && !bound_.path.empty()) {
        ::unlink(bound_.path.c_str());  // new dials fail fast
      }
      std::vector<ConnPtr> snapshot;
      {
        std::lock_guard<std::mutex> lk(mu_);
        snapshot.reserve(conns_.size());
        for (const auto& [cfd, c] : conns_) snapshot.push_back(c);
      }
      for (const ConnPtr& c : snapshot) detach(c, /*drop_inbox=*/false);
    }
    for (const int fd : to_finalize) {
      ConnPtr conn;
      {
        std::lock_guard<std::mutex> lk(mu_);
        const auto it = conns_.find(fd);
        if (it != conns_.end()) conn = it->second;
      }
      if (conn) detach(conn, /*drop_inbox=*/false);
    }
    if (stopping) break;
  }
}

void Server::worker_loop() {
  while (true) {
    ConnPtr conn;
    std::string line;
    {
      std::unique_lock<std::mutex> lk(mu_);
      worker_cv_.wait(lk, [this] { return stop_ || !ready_.empty(); });
      if (stop_) return;
      conn = ready_.front();
      ready_.pop_front();
      if (conn->inbox.empty()) {
        // Lines were dropped by a connection-level failure while this conn
        // sat in the ready queue.
        conn->scheduled = false;
        if (conn->eof || conn->detached) {
          finalize_fds_.push_back(conn->fd);
          lk.unlock();
          wake_io();
        }
        continue;
      }
      line = std::move(conn->inbox.front());
      conn->inbox.pop_front();
    }

    std::string response;
    try {
      response = handler_(line);
    } catch (const std::exception& e) {
      response =
          "{\"id\": -1, \"error\": \"handler: " + json_safe(e.what()) + "\"}";
    }
    for (char& c : response) {
      if (c == '\n') c = ' ';  // a stray terminator would desync the stream
    }

    bool write_failed = false;
    bool write_faulted = false;
    if (!response.empty()) {
      response.push_back('\n');
      std::lock_guard<std::mutex> wl(conn->write_mu);
      try {
        if (opts_.injector) opts_.injector->at(kWriteSite);
        write_all(conn->fd, response.data(), response.size());
      } catch (const fault::InjectedFault&) {
        write_failed = true;
        write_faulted = true;
      } catch (const NetError&) {
        write_failed = true;
      }
    }

    bool want_wake = false;
    {
      std::lock_guard<std::mutex> lk(mu_);
      ++stats_.requests;
      if (!write_failed && !response.empty()) {
        stats_.bytes_out += response.size();
      }
      if (write_faulted) ++stats_.faults;
      --pending_;
      if (write_failed) {
        pending_ -= conn->inbox.size();
        conn->inbox.clear();
        conn->scheduled = false;
        finalize_fds_.push_back(conn->fd);
        want_wake = true;
      } else if (!conn->inbox.empty()) {
        ready_.push_back(conn);  // stays scheduled; fair round-robin
        worker_cv_.notify_one();
      } else {
        conn->scheduled = false;
        if (conn->eof || conn->detached) {
          finalize_fds_.push_back(conn->fd);
          want_wake = true;
        }
      }
      if (draining_ && pending_ == 0) drain_cv_.notify_all();
    }
    obs_requests_.inc();
    if (!write_failed && !response.empty()) obs_bytes_out_.inc(response.size());
    if (write_faulted) obs_faults_.inc();
    if (want_wake) wake_io();
  }
}

}  // namespace dance::net
