#include "net/client.h"

#include <chrono>
#include <thread>

#include "util/env.h"

namespace dance::net {

Client::Options Client::Options::from_env() {
  Options opts;
  opts.retries = util::env_int("DANCE_CLUSTER_RETRIES", opts.retries, 0, 1000);
  opts.backoff_us =
      util::env_long("DANCE_CLUSTER_BACKOFF_US", opts.backoff_us, 0);
  opts.dial_timeout_ms =
      util::env_long("DANCE_CLUSTER_DIAL_TIMEOUT_MS", opts.dial_timeout_ms, 1);
  return opts;
}

Client::Client(Endpoint ep, Options opts)
    : ep_(std::move(ep)),
      opts_(opts),
      obs_retries_(obs::Registry::global().counter("cluster.client.retries")),
      obs_failures_(
          obs::Registry::global().counter("cluster.client.failures")) {}

void Client::close() {
  fd_.reset();
  reader_.reset();
}

void Client::ensure_connected() {
  if (fd_.valid()) return;
  fd_ = dial_retry(ep_, opts_.dial_timeout_ms);
  reader_ = std::make_unique<LineReader>();
}

std::string Client::roundtrip(const std::string& payload) {
  const std::string frame = encode_line(payload);
  ++stats_.roundtrips;
  std::string last_error;
  for (int attempt = 0; attempt <= opts_.retries; ++attempt) {
    if (attempt > 0) {
      ++stats_.retries;
      obs_retries_.inc();
      if (opts_.backoff_us > 0) {
        std::this_thread::sleep_for(
            std::chrono::microseconds(opts_.backoff_us * attempt));
      }
    }
    try {
      ensure_connected();
      write_all(fd_.get(), frame.data(), frame.size());
      if (auto line = read_line(fd_.get(), *reader_)) return *line;
      // Orderly EOF instead of a response: the server dropped us (drain,
      // injected read fault, protocol error) — retry on a new connection.
      last_error = "connection closed before a response arrived";
    } catch (const NetError& e) {
      last_error = e.what();
    }
    close();
  }
  ++stats_.failures;
  obs_failures_.inc();
  throw NetError("roundtrip to " + ep_.to_string() + " failed after " +
                 std::to_string(opts_.retries + 1) + " attempts: " +
                 last_error);
}

}  // namespace dance::net
