#pragma once

#include <functional>

#include "accel/cost_model.h"

namespace dance::accel {

/// Weights of the linear hardware cost function (Eq. 3):
///   Cost = lambda_e * Energy + lambda_l * Latency + lambda_a * Area.
/// Defaults are the paper's Table 2 setting (lambda_L=4.1, lambda_E=4.8,
/// lambda_A=1.0), applied to (ms, mJ, mm^2).
struct LinearCostWeights {
  double lambda_l = 4.1;
  double lambda_e = 4.8;
  double lambda_a = 1.0;
};

/// Scalar hardware cost function Cost_HW of Eq. 1.
using HwCostFn = std::function<double(const CostMetrics&)>;

/// Eq. 3 linear combination.
[[nodiscard]] inline HwCostFn linear_cost(LinearCostWeights w = {}) {
  return [w](const CostMetrics& m) {
    return w.lambda_l * m.latency_ms + w.lambda_e * m.energy_mj +
           w.lambda_a * m.area_mm2;
  };
}

/// Eq. 4 energy-delay-area product (hyper-parameter free, unitless).
[[nodiscard]] inline HwCostFn edap_cost() {
  return [](const CostMetrics& m) { return m.edap(); };
}

}  // namespace dance::accel
