#include "accel/cost_model.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/env.h"

namespace dance::accel {

CostMode cost_mode_from_env() {
  const std::string v = util::env_string("DANCE_COST", "exact");
  return v == "lut" ? CostMode::kLut : CostMode::kExact;
}

std::string to_string(CostMode mode) {
  return mode == CostMode::kLut ? "lut" : "exact";
}

std::string to_string(Dataflow df) {
  switch (df) {
    case Dataflow::kWeightStationary: return "WS";
    case Dataflow::kOutputStationary: return "OS";
    case Dataflow::kRowStationary: return "RS";
  }
  return "??";
}

std::string AcceleratorConfig::to_string() const {
  return "Accel(PEx=" + std::to_string(pe_x) + " PEy=" + std::to_string(pe_y) +
         " RF=" + std::to_string(rf_size) + " DF=" + accel::to_string(dataflow) +
         ")";
}

namespace {

long cdiv(long a, long b) { return (a + b - 1) / b; }

void validate(const AcceleratorConfig& c, const ConvShape& s) {
  if (c.pe_x <= 0 || c.pe_y <= 0 || c.rf_size <= 0) {
    throw std::invalid_argument("CostModel: non-positive accelerator parameter");
  }
  if (!s.valid()) {
    throw std::invalid_argument("CostModel: invalid layer shape " + s.to_string());
  }
}

/// Words of RF usable for operand staging (a couple of words are reserved
/// for the in-flight operand and partial sum registers).
long rf_avail(const AcceleratorConfig& c) { return std::max(1, c.rf_size - 2); }

}  // namespace

CostModel::CostModel(const TechnologyParams& tech, CostMode mode)
    : tech_(tech), mode_(mode) {
  if (mode_ != CostMode::kLut) return;
  // Compile the technology constants into clamped tables once per model
  // (VLSIGR builds its 1024-entry routing cost tables the same way). Each
  // entry is evaluated with the exact expression, so in-range table hits
  // reproduce the exact value of *that* expression; the LUT-vs-exact
  // divergence comes only from replacing divides with reciprocal
  // multiplies (div_by_int, the roofline terms below).
  inv_lut_.resize(kCostLutBins);
  rf_access_pj_lut_.resize(kCostLutBins);
  inv_lut_[0] = 0.0;  // never read: div_by_int falls back for den <= 0
  for (long i = 1; i < kCostLutBins; ++i) {
    inv_lut_[i] = 1.0 / static_cast<double>(i);
  }
  for (long i = 0; i < kCostLutBins; ++i) {
    rf_access_pj_lut_[i] =
        tech_.rf_energy_base_pj + tech_.rf_energy_per_word_pj * i;
  }
  inv_gb_bw_ = 1.0 / tech_.gb_bandwidth;
  inv_dram_bw_ = 1.0 / tech_.dram_bandwidth;
}

double CostModel::div_by_int(double num, long den) const {
  // Clamp, don't extrapolate: only in-range operands hit the table; at or
  // past the last bin (and for degenerate denominators) the exact divide
  // answers, so the table boundary introduces no discontinuity in domain.
  if (mode_ == CostMode::kLut && den > 0 && den < kCostLutBins) {
    return num * inv_lut_[den];
  }
  return num / static_cast<double>(den);
}

double CostModel::rf_access_energy_pj(int rf_size) const {
  if (mode_ == CostMode::kLut && rf_size >= 0 && rf_size < kCostLutBins) {
    return rf_access_pj_lut_[rf_size];
  }
  return tech_.rf_energy_base_pj + tech_.rf_energy_per_word_pj * rf_size;
}

// --- Weight stationary -----------------------------------------------------
// Output channels K map to the X dimension of the array and input channels
// to the Y dimension; each PE pins its filter's RxS weights in the RF and
// output pixels are streamed through. This is why PE_X "favours the layers
// with more channels" (§4.1) and why depthwise convolutions (c_per_group==1)
// strand all but one row of a WS array — the separable-convolution-on-TPU
// effect the introduction describes.
CostModel::Mapping CostModel::map_weight_stationary(const AcceleratorConfig& c,
                                                    const ConvShape& s) const {
  const long tiles_k = cdiv(s.k, c.pe_x);
  const long tiles_c = cdiv(s.c_per_group(), c.pe_y);
  const long pixels = static_cast<long>(s.n) * s.out_h() * s.out_w();
  const long window = static_cast<long>(s.r) * s.s;
  // If the RF cannot hold a full filter, the pass is split into segments and
  // the activations are re-streamed once per segment.
  const long segments = cdiv(window, rf_avail(c));

  Mapping m;
  // tiles_k spans all K output channels (across every group), so no extra
  // group factor is needed.
  m.compute_cycles = static_cast<double>(tiles_k) * tiles_c *
                     static_cast<double>(pixels) * static_cast<double>(window);
  const double w_vol = static_cast<double>(s.weight_volume());
  const double i_vol = static_cast<double>(s.input_volume());
  const double o_vol = static_cast<double>(s.output_volume());
  const double weights_gb = w_vol * static_cast<double>(segments);
  const double inputs_gb =
      i_vol * static_cast<double>(tiles_k) * static_cast<double>(segments);
  // Partial sums are read-modify-written once per extra input-channel tile.
  const double outputs_gb = o_vol * static_cast<double>(2 * tiles_c - 1);
  m.gb_words = weights_gb + inputs_gb + outputs_gb;
  m.dram_words = w_vol + i_vol + o_vol;
  m.rf_accesses = 3.0 * static_cast<double>(s.macs());
  return m;
}

// --- Output stationary -----------------------------------------------------
// Output pixels map onto the array (OW on X, OH on Y) and each PE
// accumulates its pixel's partial sum locally while weights are broadcast.
// Larger feature maps fill the array better; the RF caches filter rows of
// the input window, so a bigger RF converts into input-traffic reuse.
CostModel::Mapping CostModel::map_output_stationary(const AcceleratorConfig& c,
                                                    const ConvShape& s) const {
  const long tiles_x = cdiv(s.out_w(), c.pe_x);
  const long tiles_y = cdiv(s.out_h(), c.pe_y);
  const long passes = tiles_x * tiles_y * s.n * s.k;
  const long reduction = static_cast<long>(s.c_per_group()) * s.r * s.s;

  Mapping m;
  m.compute_cycles = static_cast<double>(passes) * static_cast<double>(reduction);
  const double w_vol = static_cast<double>(s.weight_volume());
  const double i_vol = static_cast<double>(s.input_volume());
  const double o_vol = static_cast<double>(s.output_volume());
  // Weights are re-broadcast for every spatial tile pass.
  const double weights_gb =
      w_vol * static_cast<double>(tiles_x) * static_cast<double>(tiles_y) * s.n;
  // The RF caches up to rf_avail/S filter rows of the sliding input window,
  // giving up to R-fold vertical reuse of the input fetches.
  const double row_reuse =
      std::clamp(div_by_int(static_cast<double>(rf_avail(c)), s.s), 1.0,
                 static_cast<double>(s.r));
  const double inputs_gb =
      div_by_int(i_vol * static_cast<double>(s.k), s.groups) *
      static_cast<double>(s.r) / row_reuse;
  const double outputs_gb = o_vol;  // psums never leave the PE until done
  m.gb_words = weights_gb + inputs_gb + outputs_gb;
  m.dram_words = w_vol + i_vol + o_vol;
  m.rf_accesses = 3.0 * static_cast<double>(s.macs());
  return m;
}

// --- Row stationary ---------------------------------------------------------
// Eyeriss mapping: PE rows hold filter rows (R on Y, replicated across
// output channels when PE_Y > R), PE columns hold output columns. Each PE
// runs a 1-D row convolution (S MACs per output). The RF holds one filter
// row + one input row window + partial sums; spare RF capacity batches
// multiple input channels per pass, which divides the partial-sum
// read-modify-write traffic — the reason Eyeriss uses big register files.
CostModel::Mapping CostModel::map_row_stationary(const AcceleratorConfig& c,
                                                 const ConvShape& s) const {
  const long fold_r = cdiv(s.r, c.pe_y);
  const long rep_k = std::max(1L, static_cast<long>(c.pe_y) / s.r);
  const long tiles_k = cdiv(s.k, rep_k);
  const long tiles_x = cdiv(s.out_w(), c.pe_x);
  const long row_words = 2L * s.s + 1;  // filter row + input window + psum
  const long chan_batch =
      std::max(1L, rf_avail(c) / row_words);  // channels resident per PE
  const long cg = s.c_per_group();

  Mapping m;
  m.compute_cycles = static_cast<double>(tiles_k) * tiles_x *
                     static_cast<double>(s.n) * static_cast<double>(cg) *
                     static_cast<double>(s.out_h()) * static_cast<double>(s.s) *
                     static_cast<double>(fold_r);
  const double w_vol = static_cast<double>(s.weight_volume());
  const double i_vol = static_cast<double>(s.input_volume());
  const double o_vol = static_cast<double>(s.output_volume());
  const double weights_gb =
      w_vol * static_cast<double>(tiles_x) * std::max(1, s.n);
  const double inputs_gb = i_vol * static_cast<double>(tiles_k);
  const double outputs_gb =
      o_vol * static_cast<double>(2 * cdiv(cg, chan_batch) - 1);
  m.gb_words = weights_gb + inputs_gb + outputs_gb;
  m.dram_words = w_vol + i_vol + o_vol;
  m.rf_accesses = 3.0 * static_cast<double>(s.macs());
  return m;
}

CostModel::ConfigCoeffs CostModel::coeffs_for(
    const AcceleratorConfig& c) const {
  ConfigCoeffs co;
  co.rf_access_pj = rf_access_energy_pj(c.rf_size);
  co.avg_hops = 0.5 * (c.pe_x + c.pe_y);
  return co;
}

CostBreakdown CostModel::explain_with(const ConfigCoeffs& co,
                                      const AcceleratorConfig& config,
                                      const ConvShape& shape) const {
  Mapping m;
  switch (config.dataflow) {
    case Dataflow::kWeightStationary:
      m = map_weight_stationary(config, shape);
      break;
    case Dataflow::kOutputStationary:
      m = map_output_stationary(config, shape);
      break;
    case Dataflow::kRowStationary:
      m = map_row_stationary(config, shape);
      break;
  }

  CostBreakdown b;
  // Roofline: the layer is bound by compute, the global buffer port, or DRAM.
  b.compute_cycles = m.compute_cycles;
  if (mode_ == CostMode::kLut) {
    b.gb_cycles = m.gb_words * inv_gb_bw_;
    b.dram_cycles = m.dram_words * inv_dram_bw_;
  } else {
    b.gb_cycles = m.gb_words / tech_.gb_bandwidth;
    b.dram_cycles = m.dram_words / tech_.dram_bandwidth;
  }
  b.gb_words = m.gb_words;
  b.dram_words = m.dram_words;
  b.rf_accesses = m.rf_accesses;

  const double static_pj_per_cycle_per_pe = 0.02;
  b.mac_pj = static_cast<double>(shape.macs()) * tech_.mac_energy_pj;
  b.rf_pj = m.rf_accesses * co.rf_access_pj;
  b.gb_pj = m.gb_words * tech_.gb_energy_pj;
  b.dram_pj = m.dram_words * tech_.dram_energy_pj;
  b.noc_pj = m.gb_words * co.avg_hops * tech_.noc_energy_per_hop_pj;
  b.static_pj =
      b.total_cycles() * config.num_pes() * static_pj_per_cycle_per_pe;
  return b;
}

CostBreakdown CostModel::explain(const AcceleratorConfig& config,
                                 const ConvShape& shape) const {
  validate(config, shape);
  return explain_with(coeffs_for(config), config, shape);
}

LayerCost CostModel::layer_cost(const AcceleratorConfig& config,
                                const ConvShape& shape) const {
  const CostBreakdown b = explain(config, shape);
  return LayerCost{b.total_cycles(), b.total_energy_pj()};
}

void CostModel::layer_cost_batch(const AcceleratorConfig& config,
                                 std::span<const ConvShape> shapes,
                                 std::span<LayerCost> out) const {
  if (out.size() < shapes.size()) {
    throw std::invalid_argument("CostModel::layer_cost_batch: out too small");
  }
  // The per-config coefficients are hoisted out of the loop; explain_with
  // evaluates the exact same expressions as the per-layer path, so
  // batch results are bit-identical to layer_cost in either CostMode.
  const ConfigCoeffs co = coeffs_for(config);
  for (std::size_t i = 0; i < shapes.size(); ++i) {
    validate(config, shapes[i]);
    const CostBreakdown b = explain_with(co, config, shapes[i]);
    out[i] = LayerCost{b.total_cycles(), b.total_energy_pj()};
  }
}

double CostModel::area_mm2(const AcceleratorConfig& config) const {
  const double pe_area = tech_.mac_area_mm2 + tech_.pe_control_area_mm2 +
                         tech_.rf_area_per_word_mm2 * config.rf_size;
  return config.num_pes() * (pe_area + tech_.noc_area_per_pe_mm2) +
         tech_.gb_area_mm2;
}

CostMetrics CostModel::network_cost(const AcceleratorConfig& config,
                                    std::span<const ConvShape> layers) const {
  double cycles = 0.0;
  double energy_pj = 0.0;
  // Route through the batched entry point in fixed-size chunks: no heap
  // allocation on this hot path (exhaustive search calls it ~14k times per
  // run), while still hoisting the per-config coefficients.
  LayerCost buf[32];
  for (std::size_t off = 0; off < layers.size(); off += std::size(buf)) {
    const std::size_t n = std::min(std::size(buf), layers.size() - off);
    layer_cost_batch(config, layers.subspan(off, n), {buf, n});
    for (std::size_t i = 0; i < n; ++i) {
      cycles += buf[i].cycles;
      energy_pj += buf[i].energy_pj;
    }
  }
  CostMetrics m;
  m.latency_ms = cycles / (tech_.clock_ghz * 1e6);
  m.energy_mj = energy_pj * 1e-9;
  m.area_mm2 = area_mm2(config);
  return m;
}

}  // namespace dance::accel
