#pragma once

#include <span>

#include "accel/accelerator.h"
#include "accel/conv_shape.h"
#include "accel/cost_model.h"

namespace dance::accel {

/// ScaleSim-style systolic-array simulator (Samajdar et al. 2018) — the
/// *other* family of accelerator evaluation software mentioned in §2.2.
///
/// Unlike the closed-form analytical `CostModel`, this walks the execution
/// tile by tile: the convolution is lowered to an im2col GEMM, the GEMM is
/// folded onto the PE_X x PE_Y array, and each fold pays the systolic
/// pipeline fill/drain in addition to the streaming cycles, overlapped with
/// a double-buffered DRAM prefetch. It therefore reports *higher* cycle
/// counts than the ideal-utilization bound, converging to it for large
/// layers — exactly the behaviour ScaleSim exhibits against roofline
/// models.
///
/// Supported mappings mirror ScaleSim's three dataflows; the mapping only
/// changes which GEMM dimensions are pinned to the array's rows/columns.
class SystolicSimulator {
 public:
  explicit SystolicSimulator(const TechnologyParams& tech = {});

  /// Simulated execution of one layer. `energy_pj` uses the same Accelergy
  /// tables as CostModel, with traffic counted from the simulated tiles.
  [[nodiscard]] LayerCost simulate_layer(const AcceleratorConfig& config,
                                         const ConvShape& shape) const;

  /// Whole network: latencies and energies sum over layers; area comes from
  /// the shared area model.
  [[nodiscard]] CostMetrics simulate_network(
      const AcceleratorConfig& config, std::span<const ConvShape> layers) const;

  /// Ideal lower bound for cross-checking: MACs / PEs.
  [[nodiscard]] static double ideal_cycles(const AcceleratorConfig& config,
                                           const ConvShape& shape);

  [[nodiscard]] const TechnologyParams& tech() const { return tech_; }

 private:
  struct Gemm {
    long m = 0;  ///< rows mapped to array rows
    long n = 0;  ///< cols mapped to array cols
    long k = 0;  ///< reduction (streamed through the array)
  };

  /// im2col lowering + dataflow-dependent dimension assignment.
  [[nodiscard]] static Gemm lower_to_gemm(const AcceleratorConfig& config,
                                          const ConvShape& shape);

  TechnologyParams tech_;
};

}  // namespace dance::accel
