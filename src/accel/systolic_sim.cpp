#include "accel/systolic_sim.h"

#include <algorithm>
#include <stdexcept>

namespace dance::accel {

namespace {
long cdiv(long a, long b) { return (a + b - 1) / b; }
}  // namespace

SystolicSimulator::SystolicSimulator(const TechnologyParams& tech)
    : tech_(tech) {}

SystolicSimulator::Gemm SystolicSimulator::lower_to_gemm(
    const AcceleratorConfig& config, const ConvShape& s) {
  // im2col: output pixels x filters, reduced over the receptive field.
  const long pixels = static_cast<long>(s.n) * s.out_h() * s.out_w();
  const long filters = s.k;
  const long window = static_cast<long>(s.c_per_group()) * s.r * s.s;

  Gemm g;
  switch (config.dataflow) {
    case Dataflow::kWeightStationary:
      // Weights pinned: filters on columns, window on rows, pixels streamed.
      g.m = window;
      g.n = filters;
      g.k = pixels;
      break;
    case Dataflow::kOutputStationary:
      // Outputs pinned: pixels on rows, filters on columns, window streamed.
      g.m = pixels;
      g.n = filters;
      g.k = window;
      break;
    case Dataflow::kRowStationary:
      // Row-stationary folds filter rows across the array; at GEMM
      // granularity this behaves like pinning pixels on columns and the
      // window on rows, streaming filters.
      g.m = window;
      g.n = pixels;
      g.k = filters;
      break;
  }
  // Grouped convolutions execute group by group with the same mapping; fold
  // the group count into the streamed dimension.
  g.k *= s.groups;
  return g;
}

LayerCost SystolicSimulator::simulate_layer(const AcceleratorConfig& config,
                                            const ConvShape& shape) const {
  if (config.pe_x <= 0 || config.pe_y <= 0 || config.rf_size <= 0) {
    throw std::invalid_argument("SystolicSimulator: bad configuration");
  }
  if (!shape.valid()) {
    throw std::invalid_argument("SystolicSimulator: invalid shape " +
                                shape.to_string());
  }
  const Gemm g = lower_to_gemm(config, shape);

  // Fold the GEMM onto the array: each (row-fold, col-fold) pass streams the
  // reduction dimension through the pipeline, paying fill + drain.
  const long row_folds = cdiv(g.m, config.pe_y);
  const long col_folds = cdiv(g.n, config.pe_x);

  double compute_cycles = 0.0;
  double dram_words = 0.0;
  for (long rf = 0; rf < row_folds; ++rf) {
    const long rows = std::min<long>(config.pe_y, g.m - rf * config.pe_y);
    for (long cf = 0; cf < col_folds; ++cf) {
      const long cols = std::min<long>(config.pe_x, g.n - cf * config.pe_x);
      // ScaleSim pass model: 2*dims + depth - 2 cycles per fold (fill the
      // diagonal wavefront, stream the reduction, drain the results).
      const double pass_cycles =
          static_cast<double>(rows) + static_cast<double>(cols) +
          static_cast<double>(g.k) - 2.0;
      compute_cycles += std::max(1.0, pass_cycles);
      // Stationary tile (rows x cols) loaded once per pass; moving operands
      // stream rows+cols words per reduction step.
      dram_words += static_cast<double>(rows) * cols +
                    static_cast<double>(g.k) * (rows + cols) /
                        // A bigger RF lets a pass reuse the streamed operand
                        // across neighbouring folds.
                        std::clamp(static_cast<double>(config.rf_size) / 8.0,
                                   1.0, 8.0);
    }
  }

  // Double-buffered prefetch: memory time overlaps compute; the layer is
  // bound by the slower of the two.
  const double dram_cycles = dram_words / tech_.dram_bandwidth;
  LayerCost cost;
  cost.cycles = std::max(compute_cycles, dram_cycles);

  const double rf_access_pj =
      tech_.rf_energy_base_pj + tech_.rf_energy_per_word_pj * config.rf_size;
  const double macs = static_cast<double>(shape.macs());
  cost.energy_pj = macs * tech_.mac_energy_pj + 3.0 * macs * rf_access_pj +
                   dram_words * tech_.dram_energy_pj +
                   dram_words * 0.5 * (config.pe_x + config.pe_y) *
                       tech_.noc_energy_per_hop_pj +
                   cost.cycles * config.num_pes() * 0.02;
  return cost;
}

CostMetrics SystolicSimulator::simulate_network(
    const AcceleratorConfig& config, std::span<const ConvShape> layers) const {
  double cycles = 0.0;
  double energy_pj = 0.0;
  for (const auto& layer : layers) {
    const LayerCost lc = simulate_layer(config, layer);
    cycles += lc.cycles;
    energy_pj += lc.energy_pj;
  }
  CostMetrics m;
  m.latency_ms = cycles / (tech_.clock_ghz * 1e6);
  m.energy_mj = energy_pj * 1e-9;
  // Shared area model keeps the two backends comparable.
  m.area_mm2 = CostModel(tech_).area_mm2(config);
  return m;
}

double SystolicSimulator::ideal_cycles(const AcceleratorConfig& config,
                                       const ConvShape& shape) {
  return static_cast<double>(shape.macs()) /
         static_cast<double>(config.num_pes());
}

}  // namespace dance::accel
