#include "accel/conv_shape.h"

#include <sstream>

namespace dance::accel {

std::string ConvShape::to_string() const {
  std::ostringstream os;
  os << "Conv(N=" << n << " K=" << k << " C=" << c << " H=" << h << " W=" << w
     << " R=" << r << " S=" << s << " stride=" << stride << " groups=" << groups
     << ")";
  return os.str();
}

}  // namespace dance::accel
