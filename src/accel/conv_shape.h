#pragma once

#include <cstdint>
#include <string>

namespace dance::accel {

/// The seven dimensions of a convolutional layer (Fig. 1a of the paper):
/// input activations (H, W, C), weights (R, S, K), batch (N), plus the
/// stride and group count needed to lower MBConv blocks (the depthwise
/// stage is a grouped convolution with groups == C).
struct ConvShape {
  int n = 1;   ///< batch
  int k = 1;   ///< output channels
  int c = 1;   ///< input channels
  int h = 1;   ///< input height
  int w = 1;   ///< input width
  int r = 1;   ///< filter height
  int s = 1;   ///< filter width
  int stride = 1;
  int groups = 1;

  /// Output spatial dims ("same" padding, as in the MBConv backbone).
  [[nodiscard]] int out_h() const { return (h + stride - 1) / stride; }
  [[nodiscard]] int out_w() const { return (w + stride - 1) / stride; }

  /// Channels per group seen by one filter.
  [[nodiscard]] int c_per_group() const { return c / groups; }

  /// Total multiply-accumulate operations.
  [[nodiscard]] std::int64_t macs() const {
    return static_cast<std::int64_t>(n) * k * c_per_group() * out_h() * out_w() *
           r * s;
  }

  /// Weight, input and output tensor volumes (words).
  [[nodiscard]] std::int64_t weight_volume() const {
    return static_cast<std::int64_t>(k) * c_per_group() * r * s;
  }
  [[nodiscard]] std::int64_t input_volume() const {
    return static_cast<std::int64_t>(n) * c * h * w;
  }
  [[nodiscard]] std::int64_t output_volume() const {
    return static_cast<std::int64_t>(n) * k * out_h() * out_w();
  }

  [[nodiscard]] bool valid() const {
    return n > 0 && k > 0 && c > 0 && h > 0 && w > 0 && r > 0 && s > 0 &&
           stride > 0 && groups > 0 && c % groups == 0 && k % groups == 0;
  }

  [[nodiscard]] std::string to_string() const;

  bool operator==(const ConvShape&) const = default;
};

}  // namespace dance::accel
