#pragma once

#include <array>
#include <string>

namespace dance::accel {

/// Loop-ordering strategies (§2.2): which operand stays resident in the PE
/// register file.
enum class Dataflow {
  kWeightStationary,  ///< WS — TPU-style (Jouppi et al. 2017)
  kOutputStationary,  ///< OS — ShiDianNao-style (Du et al. 2015)
  kRowStationary,     ///< RS — Eyeriss-style (Chen et al. 2016)
};

inline constexpr std::array<Dataflow, 3> kAllDataflows = {
    Dataflow::kWeightStationary, Dataflow::kOutputStationary,
    Dataflow::kRowStationary};

[[nodiscard]] std::string to_string(Dataflow df);

/// One point in the hardware search space H (§4.1 of the paper):
/// a two-dimensional PE array (PE_X x PE_Y), a per-PE register file and a
/// dataflow, on an Eyeriss-like backbone.
struct AcceleratorConfig {
  int pe_x = 16;      ///< 8..24; favours channel parallelism
  int pe_y = 16;      ///< 8..24; favours spatial parallelism
  int rf_size = 32;   ///< words per PE, 4..64
  Dataflow dataflow = Dataflow::kRowStationary;

  [[nodiscard]] int num_pes() const { return pe_x * pe_y; }
  [[nodiscard]] std::string to_string() const;

  bool operator==(const AcceleratorConfig&) const = default;
};

/// Technology constants for the Accelergy-style energy/area tables.
/// Values are representative of a 45nm-class process (McPAT/Accelergy
/// ballpark); absolute calibration does not matter for the reproduction,
/// only the relative scaling between components.
struct TechnologyParams {
  double clock_ghz = 1.0;

  // Energy per access (pJ).
  double mac_energy_pj = 1.0;
  double rf_energy_base_pj = 0.3;     ///< fixed cost of an RF access
  double rf_energy_per_word_pj = 0.010;  ///< RF access cost grows with RF size
  double gb_energy_pj = 12.0;         ///< on-chip global buffer access
  double dram_energy_pj = 200.0;      ///< off-chip access
  double noc_energy_per_hop_pj = 0.05;

  // Area (mm^2).
  double mac_area_mm2 = 0.008;
  double rf_area_per_word_mm2 = 0.0006;
  double pe_control_area_mm2 = 0.004;
  double gb_area_mm2 = 2.5;           ///< fixed global buffer
  double noc_area_per_pe_mm2 = 0.0015;

  // Bandwidths (words per cycle).
  double dram_bandwidth = 16.0;
  double gb_bandwidth = 64.0;
};

}  // namespace dance::accel
