#pragma once

#include <algorithm>
#include <span>
#include <vector>

#include "accel/accelerator.h"
#include "accel/conv_shape.h"

namespace dance::accel {

/// Per-layer simulation result (before unit conversion).
struct LayerCost {
  double cycles = 0.0;     ///< execution latency in clock cycles
  double energy_pj = 0.0;  ///< dynamic + static energy in picojoules
};

/// Network-level hardware cost metrics in the units the paper reports.
struct CostMetrics {
  double latency_ms = 0.0;
  double energy_mj = 0.0;
  double area_mm2 = 0.0;

  /// Energy-delay-area product in the paper's unit, J * sec * m^2 * 1e-12
  /// (Eq. 4; Li et al. 2009).
  [[nodiscard]] double edap() const {
    // mJ * ms * mm^2 = 1e-3 J * 1e-3 s * 1e-6 m^2 = 1e-12 J*s*m^2.
    return energy_mj * latency_ms * area_mm2;
  }
};

/// Full per-layer accounting of where cycles and energy go — the kind of
/// report Timeloop/Accelergy print for a mapping. Useful for debugging
/// design points and for the design-space example.
struct CostBreakdown {
  // Latency components (cycles); the layer is bound by the largest.
  double compute_cycles = 0.0;
  double gb_cycles = 0.0;
  double dram_cycles = 0.0;

  // Traffic.
  double gb_words = 0.0;
  double dram_words = 0.0;
  double rf_accesses = 0.0;

  // Energy components (pJ).
  double mac_pj = 0.0;
  double rf_pj = 0.0;
  double gb_pj = 0.0;
  double dram_pj = 0.0;
  double noc_pj = 0.0;
  double static_pj = 0.0;

  [[nodiscard]] double total_cycles() const {
    return std::max({compute_cycles, gb_cycles, dram_cycles});
  }
  [[nodiscard]] double total_energy_pj() const {
    return mac_pj + rf_pj + gb_pj + dram_pj + noc_pj + static_pj;
  }
  /// Which roofline term binds the latency: "compute", "gb" or "dram".
  [[nodiscard]] const char* bottleneck() const {
    if (compute_cycles >= gb_cycles && compute_cycles >= dram_cycles) {
      return "compute";
    }
    return gb_cycles >= dram_cycles ? "gb" : "dram";
  }
};

/// Analytical accelerator evaluation model in the spirit of
/// Timeloop (latency / mapping) + Accelergy (energy / area).
///
/// The model maps each convolution onto the PE array according to the
/// configured dataflow, accounting for:
///  - spatial tiling & array under-utilization (ceil quantization of the
///    mapped dimensions, so e.g. WS favours channel-heavy layers and OS
///    favours large feature maps — the interaction the paper builds on),
///  - register-file capacity (too-small RFs force weight/window refills,
///    large RFs let RS batch channels and cut partial-sum traffic),
///  - a three-level memory hierarchy (RF / global buffer / DRAM) with
///    per-level access counting and a bandwidth roofline for latency,
///  - NoC delivery energy and per-PE static energy, which penalizes large
///    arrays running under-utilized layers.
///
/// It is not cycle-accurate; it reproduces the qualitative cost surface the
/// evaluator network must learn (see DESIGN.md §2).
class CostModel {
 public:
  explicit CostModel(const TechnologyParams& tech = {});

  /// Latency & energy of one layer on one accelerator configuration.
  [[nodiscard]] LayerCost layer_cost(const AcceleratorConfig& config,
                                     const ConvShape& shape) const;

  /// Component-level accounting of the same evaluation (the totals agree
  /// exactly with layer_cost).
  [[nodiscard]] CostBreakdown explain(const AcceleratorConfig& config,
                                      const ConvShape& shape) const;

  /// Die area of a configuration (independent of the workload).
  [[nodiscard]] double area_mm2(const AcceleratorConfig& config) const;

  /// Whole-network metrics: latencies and energies sum over layers.
  [[nodiscard]] CostMetrics network_cost(
      const AcceleratorConfig& config, std::span<const ConvShape> layers) const;

  [[nodiscard]] const TechnologyParams& tech() const { return tech_; }

 private:
  /// Intermediate mapping statistics of one layer on one config.
  struct Mapping {
    double compute_cycles = 0.0;
    double gb_words = 0.0;    ///< global buffer <-> array traffic
    double dram_words = 0.0;  ///< DRAM <-> global buffer traffic
    double rf_accesses = 0.0;
  };

  [[nodiscard]] Mapping map_weight_stationary(const AcceleratorConfig& c,
                                              const ConvShape& s) const;
  [[nodiscard]] Mapping map_output_stationary(const AcceleratorConfig& c,
                                              const ConvShape& s) const;
  [[nodiscard]] Mapping map_row_stationary(const AcceleratorConfig& c,
                                           const ConvShape& s) const;

  TechnologyParams tech_;
};

}  // namespace dance::accel
