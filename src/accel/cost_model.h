#pragma once

#include <algorithm>
#include <span>
#include <string>
#include <vector>

#include "accel/accelerator.h"
#include "accel/conv_shape.h"

namespace dance::accel {

/// How the analytical model evaluates its arithmetic-heavy terms.
///
///  * kExact — every term is computed with the textbook expression
///    (divides for the roofline and RF-reuse terms). This is the historical
///    behaviour and the bit-compatibility baseline for the CostTable.
///  * kLut  — the per-`TechnologyParams` constants are compiled once into
///    clamped lookup tables (reciprocals, per-word RF energies) in the
///    spirit of VLSIGR's 1024-entry routing-cost tables, turning the
///    hot-path divides into table loads + multiplies. Results differ from
///    kExact only by reciprocal-multiply rounding (well inside the PBT
///    |log10| oracle bands; see docs/cost_table.md for the bound).
enum class CostMode { kExact, kLut };

/// Reads the DANCE_COST knob ("exact" | "lut", case-sensitive). Unset,
/// empty or unrecognized values degrade to kExact, matching the
/// fallback-not-clamp convention of the other DANCE_* knobs.
[[nodiscard]] CostMode cost_mode_from_env();

[[nodiscard]] std::string to_string(CostMode mode);

/// Number of bins in the compiled lookup tables (and therefore the largest
/// integer operand they cover). Inputs at or past the last bin fall back to
/// the exact expression — the tables clamp, they never extrapolate.
inline constexpr long kCostLutBins = 1024;

/// Per-layer simulation result (before unit conversion).
struct LayerCost {
  double cycles = 0.0;     ///< execution latency in clock cycles
  double energy_pj = 0.0;  ///< dynamic + static energy in picojoules
};

/// Network-level hardware cost metrics in the units the paper reports.
struct CostMetrics {
  double latency_ms = 0.0;
  double energy_mj = 0.0;
  double area_mm2 = 0.0;

  /// Energy-delay-area product in the paper's unit, J * sec * m^2 * 1e-12
  /// (Eq. 4; Li et al. 2009).
  [[nodiscard]] double edap() const {
    // mJ * ms * mm^2 = 1e-3 J * 1e-3 s * 1e-6 m^2 = 1e-12 J*s*m^2.
    return energy_mj * latency_ms * area_mm2;
  }
};

/// Full per-layer accounting of where cycles and energy go — the kind of
/// report Timeloop/Accelergy print for a mapping. Useful for debugging
/// design points and for the design-space example.
struct CostBreakdown {
  // Latency components (cycles); the layer is bound by the largest.
  double compute_cycles = 0.0;
  double gb_cycles = 0.0;
  double dram_cycles = 0.0;

  // Traffic.
  double gb_words = 0.0;
  double dram_words = 0.0;
  double rf_accesses = 0.0;

  // Energy components (pJ).
  double mac_pj = 0.0;
  double rf_pj = 0.0;
  double gb_pj = 0.0;
  double dram_pj = 0.0;
  double noc_pj = 0.0;
  double static_pj = 0.0;

  [[nodiscard]] double total_cycles() const {
    return std::max({compute_cycles, gb_cycles, dram_cycles});
  }
  [[nodiscard]] double total_energy_pj() const {
    return mac_pj + rf_pj + gb_pj + dram_pj + noc_pj + static_pj;
  }
  /// Which roofline term binds the latency: "compute", "gb" or "dram".
  [[nodiscard]] const char* bottleneck() const {
    if (compute_cycles >= gb_cycles && compute_cycles >= dram_cycles) {
      return "compute";
    }
    return gb_cycles >= dram_cycles ? "gb" : "dram";
  }
};

/// Analytical accelerator evaluation model in the spirit of
/// Timeloop (latency / mapping) + Accelergy (energy / area).
///
/// The model maps each convolution onto the PE array according to the
/// configured dataflow, accounting for:
///  - spatial tiling & array under-utilization (ceil quantization of the
///    mapped dimensions, so e.g. WS favours channel-heavy layers and OS
///    favours large feature maps — the interaction the paper builds on),
///  - register-file capacity (too-small RFs force weight/window refills,
///    large RFs let RS batch channels and cut partial-sum traffic),
///  - a three-level memory hierarchy (RF / global buffer / DRAM) with
///    per-level access counting and a bandwidth roofline for latency,
///  - NoC delivery energy and per-PE static energy, which penalizes large
///    arrays running under-utilized layers.
///
/// It is not cycle-accurate; it reproduces the qualitative cost surface the
/// evaluator network must learn (see DESIGN.md §2).
class CostModel {
 public:
  /// `mode` defaults to the DANCE_COST knob; pass an explicit CostMode to
  /// pin a model to one evaluation strategy regardless of environment.
  explicit CostModel(const TechnologyParams& tech = {},
                     CostMode mode = cost_mode_from_env());

  /// Latency & energy of one layer on one accelerator configuration.
  [[nodiscard]] LayerCost layer_cost(const AcceleratorConfig& config,
                                     const ConvShape& shape) const;

  /// Batched form of layer_cost: evaluates `shapes[i]` into `out[i]` for
  /// every i, hoisting the per-config coefficients (RF access energy,
  /// average NoC hop count) out of the per-layer loop. Bit-identical to
  /// calling layer_cost once per shape, in either CostMode — this is the
  /// single entry point the CostTable build, network_cost and the hwgen
  /// benches all route through. Throws std::invalid_argument when `out` is
  /// smaller than `shapes`.
  void layer_cost_batch(const AcceleratorConfig& config,
                        std::span<const ConvShape> shapes,
                        std::span<LayerCost> out) const;

  /// Component-level accounting of the same evaluation (the totals agree
  /// exactly with layer_cost).
  [[nodiscard]] CostBreakdown explain(const AcceleratorConfig& config,
                                      const ConvShape& shape) const;

  /// Die area of a configuration (independent of the workload).
  [[nodiscard]] double area_mm2(const AcceleratorConfig& config) const;

  /// Whole-network metrics: latencies and energies sum over layers.
  [[nodiscard]] CostMetrics network_cost(
      const AcceleratorConfig& config, std::span<const ConvShape> layers) const;

  [[nodiscard]] const TechnologyParams& tech() const { return tech_; }
  [[nodiscard]] CostMode mode() const { return mode_; }

 private:
  /// Intermediate mapping statistics of one layer on one config.
  struct Mapping {
    double compute_cycles = 0.0;
    double gb_words = 0.0;    ///< global buffer <-> array traffic
    double dram_words = 0.0;  ///< DRAM <-> global buffer traffic
    double rf_accesses = 0.0;
  };

  /// Workload-independent per-config coefficients, computed once per
  /// layer_cost_batch call instead of once per layer.
  struct ConfigCoeffs {
    double rf_access_pj = 0.0;
    double avg_hops = 0.0;
  };

  [[nodiscard]] Mapping map_weight_stationary(const AcceleratorConfig& c,
                                              const ConvShape& s) const;
  [[nodiscard]] Mapping map_output_stationary(const AcceleratorConfig& c,
                                              const ConvShape& s) const;
  [[nodiscard]] Mapping map_row_stationary(const AcceleratorConfig& c,
                                           const ConvShape& s) const;

  [[nodiscard]] ConfigCoeffs coeffs_for(const AcceleratorConfig& c) const;
  [[nodiscard]] CostBreakdown explain_with(const ConfigCoeffs& co,
                                           const AcceleratorConfig& config,
                                           const ConvShape& shape) const;

  /// `num / den` with the reciprocal table in kLut mode. Operands at or
  /// past kCostLutBins (or non-positive) fall back to the exact divide —
  /// no extrapolation past the last bin.
  [[nodiscard]] double div_by_int(double num, long den) const;

  /// RF access energy for a given RF size; table-backed in kLut mode with
  /// the same clamp-or-exact-fallback contract as div_by_int.
  [[nodiscard]] double rf_access_energy_pj(int rf_size) const;

  TechnologyParams tech_;
  CostMode mode_ = CostMode::kExact;
  // Compiled tables (populated only in kLut mode; ~16 KiB total).
  std::vector<double> inv_lut_;           ///< inv_lut_[i] = 1.0 / i, i >= 1
  std::vector<double> rf_access_pj_lut_;  ///< indexed by rf_size
  double inv_gb_bw_ = 0.0;
  double inv_dram_bw_ = 0.0;
};

}  // namespace dance::accel
