#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace dance::runtime {

/// Persistent worker pool behind every parallel loop in the library.
///
/// Workers are spawned once and parked on a condition variable between jobs,
/// so a `parallel_for` costs a wakeup instead of a thread spawn + join. A job
/// is a *statically partitioned* range: [begin, end) is cut into fixed
/// contiguous chunks of at least `grain` elements up-front, and lanes (the
/// workers plus the calling thread, which participates) claim whole chunks.
/// Which lane runs which chunk is scheduling-dependent, but the chunk
/// boundaries — and therefore the (lo, hi) ranges the body observes — depend
/// only on (n, grain, lane count). Bodies that write disjoint outputs per
/// index and keep any accumulation inside a single body invocation produce
/// results bit-identical to a serial run at any thread count.
///
/// Reentrancy: a body that calls back into the same pool runs that inner
/// loop inline on the calling lane (no deadlock, no oversubscription).
/// Distinct external threads may call into one pool concurrently; jobs are
/// serialized internally.
class ThreadPool {
 public:
  /// Type-erased loop body: fn(ctx, lo, hi) processes [lo, hi).
  using RangeFn = void (*)(void* ctx, long lo, long hi);

  /// `num_threads` is the total lane count (>= 1). The pool spawns
  /// `num_threads - 1` workers; the calling thread is always a lane.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Execution lanes available to a job (workers + caller).
  [[nodiscard]] int num_threads() const {
    return static_cast<int>(workers_.size()) + 1;
  }

  /// Blocking type-erased parallel loop. Runs inline when the range is
  /// smaller than `grain`, when the pool has a single lane, when called
  /// from inside one of this pool's jobs, or when serial mode is forced.
  void run(long begin, long end, long grain, RangeFn fn, void* ctx);

  /// Blocking parallel loop; `body(lo, hi)` is invoked on chunk sub-ranges.
  /// No std::function: the body is passed by pointer through `run`, so the
  /// per-call cost is a few atomics and (at most) one condvar broadcast.
  template <typename Body>
  void parallel_for(long begin, long end, long grain, const Body& body) {
    run(begin, end, grain, &invoke_body<Body>,
        const_cast<void*>(static_cast<const void*>(&body)));
  }

 private:
  struct Job {
    RangeFn fn = nullptr;
    void* ctx = nullptr;
    long begin = 0;
    long end = 0;
    long chunk = 0;      ///< elements per partition (static)
    long num_parts = 0;  ///< partition count
    std::atomic<long> next_part{0};
    std::atomic<long> parts_done{0};
  };

  template <typename Body>
  static void invoke_body(void* ctx, long lo, long hi) {
    (*static_cast<const Body*>(ctx))(lo, hi);
  }

  void worker_loop();
  void work_on(Job& job);

  std::vector<std::thread> workers_;
  std::mutex mu_;                   ///< guards job_ / generation_ / stop_
  std::condition_variable cv_job_;  ///< workers park here between jobs
  std::condition_variable cv_done_; ///< caller waits for job completion
  std::shared_ptr<Job> job_;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
  std::mutex submit_mu_;  ///< serializes jobs from distinct external threads
};

/// Chaos/test hook invoked on the *submitting* thread at every pool job
/// boundary — the top of `ThreadPool::run`, before dispatch, including
/// ranges that end up running inline. Because it runs on the caller, the
/// hook may sleep (latency injection) or throw (error injection) and the
/// exception propagates to whoever issued the parallel loop, exactly like a
/// failure inside the loop body would on a serial run. Installed by the
/// dance::fault layer; never invoked while null.
using JobBoundaryHook = void (*)();

/// Atomically installs (or, with nullptr, removes) the job-boundary hook.
void set_job_boundary_hook(JobBoundaryHook hook);

/// Lane count the global pool is built with: `DANCE_NUM_THREADS` if set to a
/// positive integer, else `std::thread::hardware_concurrency()` (min 1).
/// Reads the environment on every call; the global pool samples it once.
[[nodiscard]] int default_num_threads();

/// The process-wide pool. Lazily constructed on first use and kept alive for
/// the process lifetime; thread count is fixed at first touch.
[[nodiscard]] ThreadPool& global_pool();

/// True while the *calling thread* is inside a SerialGuard scope: all pool
/// loops issued from it run inline. Used to compare serial vs. pooled
/// execution (tests, benchmarks) without a second code path.
[[nodiscard]] bool force_serial();

/// RAII switch putting the current thread into forced-serial mode.
class SerialGuard {
 public:
  SerialGuard();
  ~SerialGuard();
  SerialGuard(const SerialGuard&) = delete;
  SerialGuard& operator=(const SerialGuard&) = delete;
};

}  // namespace dance::runtime
