#include "runtime/profiler.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <vector>

#include "util/stats.h"

namespace dance::runtime {

namespace {

std::atomic<bool> g_enabled{[] {
  const char* env = std::getenv("DANCE_PROFILE");
  return env != nullptr && env[0] != '\0' && !(env[0] == '0' && env[1] == '\0');
}()};

/// Aggregate plus the bounded sample ring the percentile columns come from.
struct OpEntry {
  OpStats stats;
  std::vector<double> samples;     ///< at most kProfilerSampleCap entries
  std::size_t next_sample = 0;     ///< ring write cursor once full
};

std::mutex g_mu;
// std::map keeps the registry ordered so equal-total ties report stably.
std::map<std::string, OpEntry>& registry() {
  static std::map<std::string, OpEntry> r;
  return r;
}

}  // namespace

bool profiling_enabled() { return g_enabled.load(std::memory_order_relaxed); }

void set_profiling_enabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

void profiler_record(const char* name, double ms) {
  std::lock_guard<std::mutex> lk(g_mu);
  OpEntry& e = registry()[name];
  OpStats& s = e.stats;
  if (s.calls == 0 || ms < s.min_ms) s.min_ms = ms;
  if (ms > s.max_ms) s.max_ms = ms;
  ++s.calls;
  s.total_ms += ms;
  if (e.samples.size() < kProfilerSampleCap) {
    e.samples.push_back(ms);
  } else {
    e.samples[e.next_sample] = ms;
    e.next_sample = (e.next_sample + 1) % kProfilerSampleCap;
  }
}

std::vector<std::pair<std::string, OpStats>> profiler_snapshot() {
  std::vector<std::pair<std::string, OpStats>> out;
  {
    std::lock_guard<std::mutex> lk(g_mu);
    out.reserve(registry().size());
    for (const auto& [name, entry] : registry()) {
      OpStats s = entry.stats;
      s.p50_ms = util::percentile(entry.samples, 50.0);
      s.p95_ms = util::percentile(entry.samples, 95.0);
      out.emplace_back(name, s);
    }
  }
  std::stable_sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.second.total_ms > b.second.total_ms;
  });
  return out;
}

void profiler_reset() {
  std::lock_guard<std::mutex> lk(g_mu);
  registry().clear();
}

std::string profiler_report() {
  const auto snap = profiler_snapshot();
  if (snap.empty()) return {};
  std::size_t name_w = 4;  // "op"
  for (const auto& [name, stats] : snap) name_w = std::max(name_w, name.size());
  std::string out;
  char line[320];
  std::snprintf(line, sizeof(line),
                "%-*s %10s %12s %10s %10s %10s %10s %10s\n",
                static_cast<int>(name_w), "op", "calls", "total_ms", "mean_ms",
                "p50_ms", "p95_ms", "min_ms", "max_ms");
  out += line;
  out.append(name_w + 80, '-');
  out += '\n';
  for (const auto& [name, stats] : snap) {
    std::snprintf(line, sizeof(line),
                  "%-*s %10llu %12.3f %10.4f %10.4f %10.4f %10.4f %10.4f\n",
                  static_cast<int>(name_w), name.c_str(),
                  static_cast<unsigned long long>(stats.calls), stats.total_ms,
                  stats.mean_ms(), stats.p50_ms, stats.p95_ms, stats.min_ms,
                  stats.max_ms);
    out += line;
  }
  return out;
}

}  // namespace dance::runtime
