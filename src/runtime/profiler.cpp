#include "runtime/profiler.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>

namespace dance::runtime {

namespace {

std::atomic<bool> g_enabled{[] {
  const char* env = std::getenv("DANCE_PROFILE");
  return env != nullptr && env[0] != '\0' && !(env[0] == '0' && env[1] == '\0');
}()};

std::mutex g_mu;
// std::map keeps the registry ordered so equal-total ties report stably.
std::map<std::string, OpStats>& registry() {
  static std::map<std::string, OpStats> r;
  return r;
}

}  // namespace

bool profiling_enabled() { return g_enabled.load(std::memory_order_relaxed); }

void set_profiling_enabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

void profiler_record(const char* name, double ms) {
  std::lock_guard<std::mutex> lk(g_mu);
  OpStats& s = registry()[name];
  if (s.calls == 0 || ms < s.min_ms) s.min_ms = ms;
  if (ms > s.max_ms) s.max_ms = ms;
  ++s.calls;
  s.total_ms += ms;
}

std::vector<std::pair<std::string, OpStats>> profiler_snapshot() {
  std::vector<std::pair<std::string, OpStats>> out;
  {
    std::lock_guard<std::mutex> lk(g_mu);
    out.assign(registry().begin(), registry().end());
  }
  std::stable_sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.second.total_ms > b.second.total_ms;
  });
  return out;
}

void profiler_reset() {
  std::lock_guard<std::mutex> lk(g_mu);
  registry().clear();
}

std::string profiler_report() {
  const auto snap = profiler_snapshot();
  if (snap.empty()) return {};
  std::size_t name_w = 4;  // "op"
  for (const auto& [name, stats] : snap) name_w = std::max(name_w, name.size());
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line), "%-*s %10s %12s %10s %10s %10s\n",
                static_cast<int>(name_w), "op", "calls", "total_ms", "mean_ms",
                "min_ms", "max_ms");
  out += line;
  out.append(name_w + 58, '-');
  out += '\n';
  for (const auto& [name, stats] : snap) {
    std::snprintf(line, sizeof(line),
                  "%-*s %10llu %12.3f %10.4f %10.4f %10.4f\n",
                  static_cast<int>(name_w), name.c_str(),
                  static_cast<unsigned long long>(stats.calls), stats.total_ms,
                  stats.mean_ms(), stats.min_ms, stats.max_ms);
    out += line;
  }
  return out;
}

}  // namespace dance::runtime
