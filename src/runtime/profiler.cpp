#include "runtime/profiler.h"

#include <algorithm>
#include <atomic>

#include "obs/registry.h"
#include "util/env.h"
#include "util/table.h"

namespace dance::runtime {

namespace {

std::atomic<bool> g_enabled{util::env_bool("DANCE_PROFILE", false)};

static_assert(kProfilerSampleCap == obs::kHistogramSampleCap,
              "profiler percentile semantics are defined by the obs ring cap");

}  // namespace

bool profiling_enabled() { return g_enabled.load(std::memory_order_relaxed); }

void set_profiling_enabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

void profiler_record(const char* name, double ms) {
  obs::Registry::global()
      .histogram(std::string(kProfilerMetricPrefix) + name)
      .observe(ms);
}

std::vector<std::pair<std::string, OpStats>> profiler_snapshot() {
  const std::string prefix = kProfilerMetricPrefix;
  std::vector<std::pair<std::string, OpStats>> out;
  const obs::Registry::Snapshot reg = obs::Registry::global().snapshot();
  for (const auto& [name, h] : reg.histograms) {
    if (name.compare(0, prefix.size(), prefix) != 0) continue;
    if (h.count == 0) continue;  // registered but idle (or reset)
    OpStats s;
    s.calls = h.count;
    s.total_ms = h.sum;
    s.min_ms = h.min;
    s.max_ms = h.max;
    s.p50_ms = h.p50;
    s.p95_ms = h.p95;
    out.emplace_back(name.substr(prefix.size()), s);
  }
  // The registry snapshot is name-sorted, so equal-total ties stay stable.
  std::stable_sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.second.total_ms > b.second.total_ms;
  });
  return out;
}

void profiler_reset() {
  obs::Registry::global().reset_prefix(kProfilerMetricPrefix);
}

std::string profiler_report() {
  const auto snap = profiler_snapshot();
  if (snap.empty()) return {};
  util::Table table({"op", "calls", "total_ms", "mean_ms", "p50_ms", "p95_ms",
                     "min_ms", "max_ms"});
  using Align = util::Table::Align;
  table.set_align({Align::kLeft, Align::kRight, Align::kRight, Align::kRight,
                   Align::kRight, Align::kRight, Align::kRight, Align::kRight});
  for (const auto& [name, stats] : snap) {
    table.add_row({name, std::to_string(stats.calls),
                   util::Table::fmt(stats.total_ms, 3),
                   util::Table::fmt(stats.mean_ms(), 4),
                   util::Table::fmt(stats.p50_ms, 4),
                   util::Table::fmt(stats.p95_ms, 4),
                   util::Table::fmt(stats.min_ms, 4),
                   util::Table::fmt(stats.max_ms, 4)});
  }
  return table.to_string(util::Table::Style::plain());
}

}  // namespace dance::runtime
