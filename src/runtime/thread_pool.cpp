#include "runtime/thread_pool.h"

#include <algorithm>
#include <cstdlib>

#include "util/env.h"

namespace dance::runtime {

namespace {

/// Pool whose job the current thread is executing (worker lane or a caller
/// participating in its own job). Nested loops on the same pool run inline.
thread_local const ThreadPool* tl_running_in = nullptr;

/// SerialGuard nesting depth for the current thread.
thread_local int tl_force_serial = 0;

/// Job-boundary chaos hook; null in normal operation (one relaxed-ish
/// atomic load per parallel loop when uninstalled).
std::atomic<JobBoundaryHook> g_job_boundary_hook{nullptr};

}  // namespace

void set_job_boundary_hook(JobBoundaryHook hook) {
  g_job_boundary_hook.store(hook, std::memory_order_release);
}

ThreadPool::ThreadPool(int num_threads) {
  const int extra = std::max(0, num_threads - 1);
  workers_.reserve(static_cast<std::size_t>(extra));
  for (int i = 0; i < extra; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_job_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  tl_running_in = this;
  std::uint64_t seen = 0;
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_job_.wait(lk, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      job = job_;
    }
    if (job) work_on(*job);
  }
}

void ThreadPool::work_on(Job& job) {
  for (;;) {
    const long part = job.next_part.fetch_add(1, std::memory_order_relaxed);
    if (part >= job.num_parts) return;
    const long lo = job.begin + part * job.chunk;
    const long hi = std::min(job.end, lo + job.chunk);
    job.fn(job.ctx, lo, hi);
    if (job.parts_done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        job.num_parts) {
      // Lock pairs with the caller's predicate check so the final wakeup
      // cannot slip between its check and its sleep.
      std::lock_guard<std::mutex> lk(mu_);
      cv_done_.notify_all();
    }
  }
}

void ThreadPool::run(long begin, long end, long grain, RangeFn fn, void* ctx) {
  const long n = end - begin;
  if (n <= 0) return;
  if (JobBoundaryHook hook = g_job_boundary_hook.load(std::memory_order_acquire)) {
    hook();  // runs on the caller: may sleep or throw (fault injection)
  }
  if (grain < 1) grain = 1;
  const long lanes = num_threads();
  long parts = std::min<long>(lanes, (n + grain - 1) / grain);
  if (parts <= 1 || workers_.empty() || tl_running_in == this ||
      force_serial()) {
    fn(ctx, begin, end);
    return;
  }
  const long chunk = (n + parts - 1) / parts;
  parts = (n + chunk - 1) / chunk;

  auto job = std::make_shared<Job>();
  job->fn = fn;
  job->ctx = ctx;
  job->begin = begin;
  job->end = end;
  job->chunk = chunk;
  job->num_parts = parts;

  std::lock_guard<std::mutex> submit(submit_mu_);
  {
    std::lock_guard<std::mutex> lk(mu_);
    job_ = job;
    ++generation_;
  }
  cv_job_.notify_all();

  const ThreadPool* prev = tl_running_in;
  tl_running_in = this;
  work_on(*job);
  tl_running_in = prev;

  {
    std::unique_lock<std::mutex> lk(mu_);
    cv_done_.wait(lk, [&] {
      return job->parts_done.load(std::memory_order_acquire) == job->num_parts;
    });
    job_.reset();
  }
}

int default_num_threads() {
  // Fallback 0 is deliberately out of range: "unset or invalid" falls
  // through to the hardware default below.
  const int v = util::env_int("DANCE_NUM_THREADS", 0, 1, 1024);
  if (v >= 1) return v;
  return static_cast<int>(std::max(1U, std::thread::hardware_concurrency()));
}

ThreadPool& global_pool() {
  static ThreadPool pool(default_num_threads());
  return pool;
}

bool force_serial() { return tl_force_serial > 0; }

SerialGuard::SerialGuard() { ++tl_force_serial; }
SerialGuard::~SerialGuard() { --tl_force_serial; }

}  // namespace dance::runtime
