#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace dance::runtime {

/// Aggregated wall-clock statistics for one op name, read back from the
/// op's histogram in the obs registry (family "runtime.op_ms.<name>"). The
/// percentiles are computed at snapshot time from a bounded ring of the most
/// recent samples (see kProfilerSampleCap), so they describe the recent
/// distribution rather than the full history when an op is called more often
/// than the cap.
struct OpStats {
  std::uint64_t calls = 0;
  double total_ms = 0.0;
  double min_ms = 0.0;
  double max_ms = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;

  [[nodiscard]] double mean_ms() const {
    return calls == 0 ? 0.0 : total_ms / static_cast<double>(calls);
  }
};

/// Per-op samples retained for the percentile columns. Kept equal to
/// obs::kHistogramSampleCap: the profiler's storage IS the obs registry, so
/// the ring semantics are shared with every other histogram in the process.
inline constexpr std::size_t kProfilerSampleCap = 4096;

/// Registry name prefix of the profiler's histogram family: the op "foo.bar"
/// lives at "runtime.op_ms.foo.bar" in obs::Registry::global().
inline constexpr const char* kProfilerMetricPrefix = "runtime.op_ms.";

/// Whether ScopedTimer records anything. Compiled in unconditionally but off
/// by default; flipped at runtime via set_profiling_enabled() or by setting
/// the DANCE_PROFILE environment variable to a non-"0" value at startup.
[[nodiscard]] bool profiling_enabled();
void set_profiling_enabled(bool enabled);

/// Add one timed call to the aggregate for `name` (an observe() on the op's
/// registry histogram). Thread-safe.
void profiler_record(const char* name, double ms);

/// All aggregates with at least one call, sorted by total time descending.
/// Thread-safe snapshot of the registry's runtime.op_ms.* family.
[[nodiscard]] std::vector<std::pair<std::string, OpStats>> profiler_snapshot();

/// Zero all aggregates (registry histograms under runtime.op_ms.*).
void profiler_reset();

/// Fixed-width text table of the snapshot (name, calls, total, mean, p50,
/// p95, min, max), rendered through util::Table like the serve stats report.
/// Empty string when nothing was recorded.
[[nodiscard]] std::string profiler_report();

/// RAII wall-clock scope. When profiling is disabled the constructor is a
/// single relaxed atomic load and the destructor a branch, so scopes can
/// stay in hot paths permanently.
class ScopedTimer {
 public:
  explicit ScopedTimer(const char* name) : name_(name) {
    if (profiling_enabled()) {
      armed_ = true;
      start_ = std::chrono::steady_clock::now();
    }
  }
  ~ScopedTimer() {
    if (armed_) {
      const auto end = std::chrono::steady_clock::now();
      profiler_record(
          name_, std::chrono::duration<double, std::milli>(end - start_).count());
    }
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  const char* name_;
  bool armed_ = false;
  std::chrono::steady_clock::time_point start_;
};

#define DANCE_PROFILE_CONCAT_INNER(a, b) a##b
#define DANCE_PROFILE_CONCAT(a, b) DANCE_PROFILE_CONCAT_INNER(a, b)

/// Time the enclosing scope under `name` (a string literal).
#define DANCE_PROFILE_SCOPE(name)                                  \
  ::dance::runtime::ScopedTimer DANCE_PROFILE_CONCAT(dance_prof_, \
                                                     __LINE__)(name)

}  // namespace dance::runtime
