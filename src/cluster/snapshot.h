#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>

#include "serve/cache.h"

namespace dance::cluster {

/// Raised when a snapshot file is unreadable, truncated, checksum-corrupt,
/// from an unknown format version, or built for a different encoding
/// width. Loads fail atomically: the target cache is untouched on throw.
class SnapshotError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Versioned binary cache snapshot — the cluster warm-start path. A shard
/// saves its memoization cache at drain and reloads it at the next start,
/// so a restarted shard answers its working set from the cache instead of
/// re-querying the backend cold.
///
/// Format (little-endian, version 1):
///   "DSNP"                      4-byte magic
///   u32 version        = 1
///   u32 encoding_width          canonical-key float count (0 = unchecked)
///   u64 entry_count
///   entry_count times:
///     u32 key_len               floats in the key
///     f32[key_len]              canonical key bytes
///     f64 latency_ms, f64 energy_mj, f64 area_mm2
///     i32 pe_x, i32 pe_y, i32 rf_size
///     u8  dataflow              index into accel::kAllDataflows
///     u8  flags          = 0    (cached/degraded are per-query, not stored)
///   u64 checksum                FNV-1a over every preceding byte
///
/// Entries are written in ShardedLruCache::entries() order (LRU-first per
/// shard) and replayed through put(), so recency survives the round trip.
///
/// Obs counters: cluster.snapshot.{saved_entries,loaded_entries,errors}.

/// Writes `cache` to `path` atomically (temp file + rename). Returns the
/// entry count written. Throws SnapshotError on I/O failure.
std::size_t save_snapshot(const serve::ShardedLruCache& cache,
                          int encoding_width, const std::string& path);

/// Replays `path` into `cache` via put(). The whole file is parsed and
/// checksum-verified before the first insertion, so a corrupt file never
/// half-populates the cache. `expected_width` must match the stored width
/// (pass 0 to skip the check). Returns the entry count restored.
std::size_t load_snapshot(const std::string& path, int expected_width,
                          serve::ShardedLruCache& cache);

}  // namespace dance::cluster
