#include "cluster/shard.h"

#include <cstdio>
#include <sys/stat.h>

#include "cluster/snapshot.h"
#include "serve/wire.h"
#include "util/env.h"

namespace dance::cluster {

ShardServer::Options ShardServer::Options::from_env() {
  Options o;
  o.net = net::Server::Options::from_env();
  o.snapshot_path = util::env_string("DANCE_CLUSTER_SNAPSHOT", "");
  return o;
}

ShardServer::ShardServer(serve::Service& service, const arch::ArchSpace& space,
                         Options opts)
    : service_(service),
      space_(space),
      opts_(std::move(opts)),
      server_(opts_.handler_override
                  ? opts_.handler_override
                  : net::Server::Handler([this](const std::string& line) {
                      return serve::wire::answer_line(line, space_, service_);
                    }),
              opts_.net) {}

net::Endpoint ShardServer::start(const net::Endpoint& listen_at) {
  warm_entries_ = 0;
  if (!opts_.snapshot_path.empty() && service_.cache() != nullptr) {
    struct stat st{};
    if (::stat(opts_.snapshot_path.c_str(), &st) == 0) {
      try {
        warm_entries_ = load_snapshot(
            opts_.snapshot_path, space_.encoding_width(), *service_.cache());
      } catch (const SnapshotError& e) {
        // Warm starts are best-effort: a stale or corrupt snapshot must
        // never block serving — log, serve cold.
        std::fprintf(stderr, "[shard] snapshot load skipped: %s\n", e.what());
      }
    }
  }
  return server_.start(listen_at);
}

bool ShardServer::drain_and_stop(long drain_timeout_ms) {
  const bool drained = server_.drain(drain_timeout_ms);
  if (!opts_.snapshot_path.empty() && service_.cache() != nullptr) {
    try {
      save_snapshot(*service_.cache(), space_.encoding_width(),
                    opts_.snapshot_path);
    } catch (const SnapshotError& e) {
      std::fprintf(stderr, "[shard] snapshot save failed: %s\n", e.what());
    }
  }
  server_.stop();
  return drained;
}

}  // namespace dance::cluster
