#include "cluster/snapshot.h"

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <utility>
#include <vector>

#include "obs/registry.h"
#include "util/fs.h"

namespace dance::cluster {

namespace {

constexpr char kMagic[4] = {'D', 'S', 'N', 'P'};
constexpr std::uint32_t kVersion = 1;

std::uint64_t fnv1a(const char* data, std::size_t n,
                    std::uint64_t h = 1469598103934665603ULL) {
  for (std::size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ULL;
  }
  return h;
}

/// Append-only byte sink; everything is staged in memory so the checksum
/// and the atomic rename are trivial (snapshots are cache-sized, small).
struct Buffer {
  std::vector<char> bytes;
  void raw(const void* p, std::size_t n) {
    const char* c = static_cast<const char*>(p);
    bytes.insert(bytes.end(), c, c + n);
  }
  template <typename T>
  void put(T v) {
    raw(&v, sizeof(v));
  }
};

/// Bounds-checked reader over the loaded file image.
struct Cursor {
  const char* p;
  std::size_t left;
  void raw(void* out, std::size_t n) {
    if (n > left) throw SnapshotError("snapshot truncated");
    std::memcpy(out, p, n);
    p += n;
    left -= n;
  }
  template <typename T>
  T get() {
    T v;
    raw(&v, sizeof(v));
    return v;
  }
};

}  // namespace

std::size_t save_snapshot(const serve::ShardedLruCache& cache,
                          int encoding_width, const std::string& path) {
  const auto entries = cache.entries();

  Buffer buf;
  buf.raw(kMagic, sizeof(kMagic));
  buf.put<std::uint32_t>(kVersion);
  buf.put<std::uint32_t>(static_cast<std::uint32_t>(encoding_width));
  buf.put<std::uint64_t>(entries.size());
  for (const auto& [key, r] : entries) {
    buf.put<std::uint32_t>(static_cast<std::uint32_t>(key.size()));
    buf.raw(key.data(), key.size() * sizeof(float));
    buf.put<double>(r.metrics.latency_ms);
    buf.put<double>(r.metrics.energy_mj);
    buf.put<double>(r.metrics.area_mm2);
    buf.put<std::int32_t>(r.config.pe_x);
    buf.put<std::int32_t>(r.config.pe_y);
    buf.put<std::int32_t>(r.config.rf_size);
    buf.put<std::uint8_t>(static_cast<std::uint8_t>(r.config.dataflow));
    buf.put<std::uint8_t>(0);  // flags
  }
  buf.put<std::uint64_t>(fnv1a(buf.bytes.data(), buf.bytes.size()));

  try {
    util::atomic_write_file(
        path, std::string_view(buf.bytes.data(), buf.bytes.size()));
  } catch (const std::runtime_error& e) {
    obs::Registry::global().counter("cluster.snapshot.errors").inc();
    throw SnapshotError(e.what());
  }
  obs::Registry::global()
      .counter("cluster.snapshot.saved_entries")
      .inc(static_cast<std::uint64_t>(entries.size()));
  return entries.size();
}

std::size_t load_snapshot(const std::string& path, int expected_width,
                          serve::ShardedLruCache& cache) {
  auto fail = [](const std::string& why) -> SnapshotError {
    obs::Registry::global().counter("cluster.snapshot.errors").inc();
    return SnapshotError(why);
  };

  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    throw fail("cannot open " + path + ": " + std::strerror(errno));
  }
  std::vector<char> bytes;
  char chunk[1 << 16];
  std::size_t n;
  while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    bytes.insert(bytes.end(), chunk, chunk + n);
  }
  const bool read_ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!read_ok) throw fail("read error on " + path);

  if (bytes.size() < sizeof(kMagic) + 2 * sizeof(std::uint32_t) +
                         2 * sizeof(std::uint64_t)) {
    throw fail("snapshot too small: " + path);
  }
  // Checksum first: everything up to the trailing u64 must hash to it.
  const std::size_t body = bytes.size() - sizeof(std::uint64_t);
  std::uint64_t stored_sum;
  std::memcpy(&stored_sum, bytes.data() + body, sizeof(stored_sum));
  if (fnv1a(bytes.data(), body) != stored_sum) {
    throw fail("snapshot checksum mismatch: " + path);
  }

  Cursor cur{bytes.data(), body};
  char magic[4];
  cur.raw(magic, sizeof(magic));
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw fail("not a snapshot file: " + path);
  }
  const auto version = cur.get<std::uint32_t>();
  if (version != kVersion) {
    throw fail("unsupported snapshot version " + std::to_string(version));
  }
  const auto width = cur.get<std::uint32_t>();
  if (expected_width != 0 && width != 0 &&
      width != static_cast<std::uint32_t>(expected_width)) {
    throw fail("snapshot encoding width " + std::to_string(width) +
               " != expected " + std::to_string(expected_width));
  }
  const auto count = cur.get<std::uint64_t>();

  // Parse fully before the first put() so a truncated/garbled body can
  // never half-populate the cache.
  std::vector<std::pair<serve::ShardedLruCache::Key, serve::Response>> parsed;
  parsed.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto key_len = cur.get<std::uint32_t>();
    if (static_cast<std::size_t>(key_len) * sizeof(float) > cur.left) {
      throw fail("snapshot truncated");
    }
    serve::ShardedLruCache::Key key(key_len);
    cur.raw(key.data(), key_len * sizeof(float));
    serve::Response r;
    r.metrics.latency_ms = cur.get<double>();
    r.metrics.energy_mj = cur.get<double>();
    r.metrics.area_mm2 = cur.get<double>();
    r.config.pe_x = cur.get<std::int32_t>();
    r.config.pe_y = cur.get<std::int32_t>();
    r.config.rf_size = cur.get<std::int32_t>();
    const auto df = cur.get<std::uint8_t>();
    if (df >= accel::kAllDataflows.size()) {
      throw fail("snapshot has invalid dataflow " + std::to_string(df));
    }
    r.config.dataflow = accel::kAllDataflows[df];
    (void)cur.get<std::uint8_t>();  // flags, reserved
    parsed.emplace_back(std::move(key), r);
  }
  if (cur.left != 0) throw fail("snapshot has trailing bytes: " + path);

  for (const auto& [key, response] : parsed) {
    cache.put(key, response);
  }
  obs::Registry::global()
      .counter("cluster.snapshot.loaded_entries")
      .inc(static_cast<std::uint64_t>(parsed.size()));
  return parsed.size();
}

}  // namespace dance::cluster
