#include "cluster/router.h"

#include <stdexcept>
#include <utility>

#include "serve/types.h"
#include "serve/wire.h"

namespace dance::cluster {

namespace {

std::vector<int> ids_of(const std::vector<Router::ShardAddress>& shards) {
  std::vector<int> ids;
  ids.reserve(shards.size());
  for (const auto& s : shards) ids.push_back(s.id);
  return ids;
}

}  // namespace

Router::Options Router::Options::from_env() {
  Options o;
  o.net = net::Server::Options::from_env();
  o.client = net::Client::Options::from_env();
  o.vnodes = HashRing::vnodes_from_env();
  return o;
}

Router::Router(const arch::ArchSpace& space, std::vector<ShardAddress> shards,
               Options opts)
    : space_(space),
      ring_(ids_of(shards), opts.vnodes),
      opts_(std::move(opts)),
      server_([this](const std::string& line) { return handle_line(line); },
              opts_.net),
      obs_forwarded_(obs::Registry::global().counter("cluster.router.forwarded")),
      obs_parse_errors_(
          obs::Registry::global().counter("cluster.router.parse_errors")),
      obs_shard_errors_(
          obs::Registry::global().counter("cluster.router.shard_errors")) {
  if (shards.empty()) {
    throw std::invalid_argument("Router needs at least one shard");
  }
  shards_.reserve(shards.size());
  for (auto& s : shards) {
    auto st = std::make_unique<ShardState>();
    st->address = std::move(s);
    shards_.push_back(std::move(st));
  }
}

net::Endpoint Router::start(const net::Endpoint& listen_at) {
  return server_.start(listen_at);
}

bool Router::drain_and_stop(long drain_timeout_ms) {
  const bool drained = server_.drain(drain_timeout_ms);
  server_.stop();
  return drained;
}

int Router::shard_for_key(const std::vector<float>& canonical_key) const {
  return ring_.lookup_key(canonical_key);
}

Router::ShardState& Router::state_for(int shard_id) {
  for (const auto& st : shards_) {
    if (st->address.id == shard_id) return *st;
  }
  throw std::logic_error("ring returned an unknown shard id");
}

std::string Router::forward(ShardState& shard, const std::string& line) {
  // Borrow a client from the shard's pool (or open a fresh connection when
  // every pooled one is in use); return it on success. A failed client is
  // dropped, not returned — its connection state is suspect.
  std::unique_ptr<net::Client> client;
  {
    std::lock_guard<std::mutex> lk(shard.mu);
    if (!shard.idle.empty()) {
      client = std::move(shard.idle.back());
      shard.idle.pop_back();
    }
  }
  if (!client) {
    client =
        std::make_unique<net::Client>(shard.address.endpoint, opts_.client);
  }
  std::string response = client->roundtrip(line);
  {
    std::lock_guard<std::mutex> lk(shard.mu);
    shard.idle.push_back(std::move(client));
  }
  return response;
}

std::string Router::handle_line(const std::string& line) {
  if (serve::wire::is_blank(line)) return "";
  const serve::wire::ParseOutcome parsed =
      serve::wire::parse_request(line, space_);
  if (!parsed.ok) {
    // Answered locally — same wire::error_line bytes a shard would emit.
    obs_parse_errors_.inc();
    return serve::wire::error_line(parsed.request.id, parsed.error);
  }
  const int shard_id =
      ring_.lookup_key(serve::canonical_key(parsed.request.encoding));
  try {
    std::string response = forward(state_for(shard_id), line);
    obs_forwarded_.inc();
    return response;
  } catch (const net::NetError& e) {
    obs_shard_errors_.inc();
    return serve::wire::error_line(
        parsed.request.id,
        "shard " + std::to_string(shard_id) + " unavailable: " + e.what());
  }
}

}  // namespace dance::cluster
