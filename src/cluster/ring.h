#pragma once

#include <cstdint>
#include <vector>

#include "serve/types.h"

namespace dance::cluster {

/// Consistent-hash ring mapping canonical cost-query keys to shard ids.
///
/// Each shard contributes `vnodes` points on a 64-bit ring (hash of the
/// shard id salted by the vnode index); a key routes to the first point at
/// or clockwise-after its own hash. The classic properties follow:
///
///  - Determinism: the same key always lands on the same shard for a given
///    shard set — routing state lives nowhere, every router/client with the
///    same (ids, vnodes) agrees.
///  - Stability: adding or removing one shard remaps only the keys whose
///    arc the change touched — about 1/N of the space, the rest keep their
///    mapping exactly (tests/test_property_cluster.cpp checks both).
///
/// Vnode count trades ring-build cost (N*vnodes points, sorted once) for
/// load spread; 64 keeps the max/min shard load within a few tens of
/// percent at realistic N. Immutable after construction, so concurrent
/// lookups need no locking.
///
/// Knob: DANCE_CLUSTER_VNODES (default 64) — read by `vnodes_from_env`,
/// constructor argument wins.
class HashRing {
 public:
  /// `shard_ids` need not be contiguous or sorted; duplicates are ignored.
  /// `vnodes < 1` is clamped to 1. An empty ring is legal but `lookup`
  /// on it is a programming error (asserted in debug builds).
  explicit HashRing(const std::vector<int>& shard_ids, int vnodes = 64);

  [[nodiscard]] static int vnodes_from_env();

  /// Shard owning `hash64` (e.g. serve::KeyHash over a canonical key).
  [[nodiscard]] int lookup(std::uint64_t hash64) const;

  /// Convenience: hash a canonical key (serve::canonical_key output) and
  /// look it up. Non-canonical keys route consistently too, but only the
  /// canonical form matches the cache/snapshot key space.
  [[nodiscard]] int lookup_key(const std::vector<float>& canonical_key) const;

  [[nodiscard]] std::size_t size() const { return points_.size(); }
  [[nodiscard]] int num_shards() const { return num_shards_; }

  /// The ring point a shard id + vnode index hashes to (exposed so tests
  /// can reason about the point set).
  [[nodiscard]] static std::uint64_t point_hash(int shard_id, int vnode);

 private:
  struct Point {
    std::uint64_t hash;
    int shard;
  };
  std::vector<Point> points_;  ///< sorted by hash
  int num_shards_ = 0;
};

}  // namespace dance::cluster
