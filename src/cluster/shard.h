#pragma once

#include <string>

#include "arch/space.h"
#include "net/server.h"
#include "serve/service.h"

namespace dance::cluster {

/// One cluster shard: a net::Server whose handler is the shared wire
/// pipeline (serve::wire::answer_line) over this shard's serve::Service.
/// Because every shard speaks the exact same parse/serialize code as the
/// stdin front-end, a shard's response line is byte-identical to
/// serve_jsonl's for the same request — the property the cluster bit-identity
/// tests and the CI byte-diff smoke rely on.
///
/// Warm starts: when `Options::snapshot_path` is set, start() best-effort
/// loads the cache snapshot (a missing or corrupt file logs to stderr and
/// serves cold — a stale snapshot must never block serving), and
/// drain_and_stop() saves the cache back after the last in-flight request
/// finishes. Knob: DANCE_CLUSTER_SNAPSHOT (path; empty = disabled).
class ShardServer {
 public:
  struct Options {
    net::Server::Options net;
    std::string snapshot_path;  ///< empty = snapshots disabled

    /// When set, replaces the default per-line pipeline
    /// (serve::wire::answer_line over the shard's Service) — the hook the
    /// registry layer uses to serve pinned, model-routed requests through
    /// a shard without dance_cluster depending on dance_registry. The
    /// override runs on the server's worker pool under the same
    /// per-connection ordering guarantees as the default handler.
    net::Server::Handler handler_override;

    [[nodiscard]] static Options from_env();
  };

  /// `service` and `space` must outlive the ShardServer.
  ShardServer(serve::Service& service, const arch::ArchSpace& space,
              Options opts);
  ShardServer(serve::Service& service, const arch::ArchSpace& space)
      : ShardServer(service, space, Options::from_env()) {}

  /// Loads the snapshot (if configured and present), then binds and serves.
  /// Returns the bound endpoint. Returns the number of warm entries via
  /// `warm_entries()`.
  net::Endpoint start(const net::Endpoint& listen_at);

  /// Graceful shutdown: drain in-flight requests, save the snapshot (if
  /// configured), stop. Returns false when the drain timed out (the
  /// snapshot is still saved with whatever the cache holds).
  bool drain_and_stop(long drain_timeout_ms = -1);

  [[nodiscard]] net::Server::Stats net_stats() const { return server_.stats(); }
  [[nodiscard]] const net::Endpoint& endpoint() const {
    return server_.endpoint();
  }
  [[nodiscard]] serve::Service& service() { return service_; }
  /// Entries restored by the last start() snapshot load (0 when cold).
  [[nodiscard]] std::size_t warm_entries() const { return warm_entries_; }

 private:
  serve::Service& service_;
  const arch::ArchSpace& space_;
  Options opts_;
  net::Server server_;
  std::size_t warm_entries_ = 0;
};

}  // namespace dance::cluster
