#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "arch/space.h"
#include "cluster/ring.h"
#include "net/client.h"
#include "net/server.h"

namespace dance::cluster {

/// The thin routing tier: a net::Server that consistent-hashes each
/// request's canonical key across the shard set and forwards the RAW
/// request line to the owning shard, relaying the shard's response bytes
/// untouched.
///
/// Why raw-line forwarding: the shard re-parses through the same
/// serve::wire code the router used for routing, so the router adds no
/// second serialization step that could perturb bytes — a cluster answer is
/// the shard's answer is serve_jsonl's answer. Malformed lines never reach
/// a shard; the router answers them locally with the same wire::error_line
/// bytes a shard would have produced.
///
/// Because routing is a pure function of (key, shard set), identical keys
/// always land on the same shard, which makes the per-shard caches as
/// effective as a single process's cache: no key is cached twice, and the
/// "cached" flag in responses matches single-process behavior over any
/// replay.
///
/// Forwarding uses a per-shard pool of retrying net::Clients (borrowed per
/// request, so concurrent handler threads never share a connection). A
/// shard that stays unreachable after the client's retry budget yields an
/// error line naming the shard.
///
/// Obs counters: cluster.router.{forwarded,parse_errors,shard_errors}.
class Router {
 public:
  struct ShardAddress {
    int id = 0;
    net::Endpoint endpoint;
  };

  struct Options {
    net::Server::Options net;       ///< the router's own listener
    net::Client::Options client;    ///< per-forward retry policy
    int vnodes = 64;

    /// net/client knobs from their own from_env();
    /// vnodes from DANCE_CLUSTER_VNODES.
    [[nodiscard]] static Options from_env();
  };

  /// `space` must outlive the Router. `shards` must be non-empty.
  Router(const arch::ArchSpace& space, std::vector<ShardAddress> shards,
         Options opts);
  Router(const arch::ArchSpace& space, std::vector<ShardAddress> shards)
      : Router(space, std::move(shards), Options::from_env()) {}

  /// Binds and serves. Returns the bound endpoint.
  net::Endpoint start(const net::Endpoint& listen_at);
  /// Graceful drain of in-flight forwards, then teardown.
  bool drain_and_stop(long drain_timeout_ms = -1);

  /// The full per-line pipeline (parse -> route -> forward), exposed so
  /// tests and in-process callers can route without a listener.
  [[nodiscard]] std::string handle_line(const std::string& line);

  /// Which shard id owns `canonical_key` (serve::canonical_key output) —
  /// the routing decision, exposed for the shard-selection tests.
  [[nodiscard]] int shard_for_key(const std::vector<float>& canonical_key) const;

  [[nodiscard]] const HashRing& ring() const { return ring_; }
  [[nodiscard]] net::Server::Stats net_stats() const { return server_.stats(); }
  [[nodiscard]] const net::Endpoint& endpoint() const {
    return server_.endpoint();
  }

 private:
  struct ShardState {
    ShardAddress address;
    std::mutex mu;
    std::vector<std::unique_ptr<net::Client>> idle;  ///< connection pool
  };

  /// Forward `line` to the shard owning it; returns the response line.
  std::string forward(ShardState& shard, const std::string& line);
  ShardState& state_for(int shard_id);

  const arch::ArchSpace& space_;
  std::vector<std::unique_ptr<ShardState>> shards_;
  HashRing ring_;
  Options opts_;
  net::Server server_;

  obs::Counter& obs_forwarded_;
  obs::Counter& obs_parse_errors_;
  obs::Counter& obs_shard_errors_;
};

}  // namespace dance::cluster
