#include "cluster/ring.h"

#include <algorithm>
#include <cassert>
#include <set>

#include "util/env.h"

namespace dance::cluster {

namespace {

/// splitmix64 finalizer: a cheap, well-mixed bijection. FNV-1a alone is a
/// weak mixer for short inputs like (shard, vnode) pairs; finalizing spreads
/// the points evenly around the ring.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

std::uint64_t HashRing::point_hash(int shard_id, int vnode) {
  // FNV-1a over the two ints, then finalize. Byte-order independent: feed
  // the values, not their memory.
  std::uint64_t h = 1469598103934665603ULL;
  const auto feed = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xff;
      h *= 1099511628211ULL;
    }
  };
  feed(static_cast<std::uint64_t>(static_cast<std::uint32_t>(shard_id)));
  feed(static_cast<std::uint64_t>(static_cast<std::uint32_t>(vnode)));
  return mix64(h);
}

HashRing::HashRing(const std::vector<int>& shard_ids, int vnodes) {
  const int per_shard = std::max(1, vnodes);
  const std::set<int> unique(shard_ids.begin(), shard_ids.end());
  num_shards_ = static_cast<int>(unique.size());
  points_.reserve(unique.size() * static_cast<std::size_t>(per_shard));
  for (int id : unique) {
    for (int v = 0; v < per_shard; ++v) {
      points_.push_back(Point{point_hash(id, v), id});
    }
  }
  std::sort(points_.begin(), points_.end(),
            [](const Point& a, const Point& b) {
              // Tie-break on shard id so equal hashes (vanishingly rare but
              // possible) still give every ring the same winner.
              return a.hash != b.hash ? a.hash < b.hash : a.shard < b.shard;
            });
}

int HashRing::vnodes_from_env() {
  return util::env_int("DANCE_CLUSTER_VNODES", 64, 1);
}

int HashRing::lookup(std::uint64_t hash64) const {
  assert(!points_.empty() && "lookup on an empty ring");
  // First point strictly after the key, wrapping to the start.
  const auto it = std::upper_bound(
      points_.begin(), points_.end(), hash64,
      [](std::uint64_t h, const Point& p) { return h < p.hash; });
  return it == points_.end() ? points_.front().shard : it->shard;
}

int HashRing::lookup_key(const std::vector<float>& canonical_key) const {
  return lookup(serve::KeyHash{}(canonical_key));
}

}  // namespace dance::cluster
