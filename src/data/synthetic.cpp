#include "data/synthetic.h"

#include <cmath>
#include <stdexcept>

namespace dance::data {

std::pair<tensor::Tensor, std::vector<int>> Dataset::batch(
    const std::vector<int>& indices) const {
  const int d = x.cols();
  tensor::Tensor bx({static_cast<int>(indices.size()), d});
  std::vector<int> by(indices.size());
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const int src = indices[i];
    if (src < 0 || src >= size()) throw std::out_of_range("Dataset::batch");
    for (int c = 0; c < d; ++c) bx.at(static_cast<int>(i), c) = x.at(src, c);
    by[i] = y[static_cast<std::size_t>(src)];
  }
  return {std::move(bx), std::move(by)};
}

namespace {

/// Mild nonlinear warp so linear models can't saturate the task: mixes each
/// coordinate with a sinusoid of its neighbour.
void warp_inplace(tensor::Tensor& x, float strength) {
  const int n = x.rows();
  const int d = x.cols();
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < d; ++c) {
      const float neighbour = x.at(r, (c + 1) % d);
      x.at(r, c) += strength * std::sin(1.3F * neighbour);
    }
  }
}

Dataset generate_split(const SyntheticTaskConfig& cfg, int samples,
                       const std::vector<float>& centers, util::Rng& rng) {
  Dataset ds;
  ds.num_classes = cfg.num_classes;
  ds.x = tensor::Tensor({samples, cfg.input_dim});
  ds.y.resize(static_cast<std::size_t>(samples));
  for (int i = 0; i < samples; ++i) {
    const int cls = rng.randint(0, cfg.num_classes - 1);
    const int cluster = rng.randint(0, cfg.clusters_per_class - 1);
    const std::size_t base =
        (static_cast<std::size_t>(cls) * cfg.clusters_per_class +
         static_cast<std::size_t>(cluster)) *
        static_cast<std::size_t>(cfg.input_dim);
    for (int c = 0; c < cfg.input_dim; ++c) {
      ds.x.at(i, c) =
          centers[base + static_cast<std::size_t>(c)] + rng.normal(0.0F, cfg.noise);
    }
    ds.y[static_cast<std::size_t>(i)] = cls;
  }
  warp_inplace(ds.x, cfg.warp);
  return ds;
}

}  // namespace

SyntheticTask make_synthetic_task(const SyntheticTaskConfig& config) {
  if (config.input_dim <= 0 || config.num_classes < 2 ||
      config.clusters_per_class <= 0 || config.train_samples <= 0 ||
      config.val_samples <= 0) {
    throw std::invalid_argument("make_synthetic_task: bad config");
  }
  util::Rng rng(config.seed);
  // Shared cluster centers for train and val (same underlying distribution).
  std::vector<float> centers(static_cast<std::size_t>(config.num_classes) *
                             config.clusters_per_class * config.input_dim);
  for (auto& v : centers) v = rng.normal(0.0F, config.cluster_spread);

  SyntheticTask task;
  task.config = config;
  task.train = generate_split(config, config.train_samples, centers, rng);
  task.val = generate_split(config, config.val_samples, centers, rng);
  return task;
}

}  // namespace dance::data
