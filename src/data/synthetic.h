#pragma once

#include <vector>

#include "tensor/tensor.h"
#include "util/rng.h"

namespace dance::data {

/// A labelled classification dataset held as one [N, D] tensor.
struct Dataset {
  tensor::Tensor x;          ///< [N, input_dim]
  std::vector<int> y;        ///< class labels, length N
  int num_classes = 0;

  [[nodiscard]] int size() const { return x.rows(); }

  /// Gather a batch by sample indices.
  [[nodiscard]] std::pair<tensor::Tensor, std::vector<int>> batch(
      const std::vector<int>& indices) const;
};

/// Parameters of the synthetic stand-in for CIFAR-10 / ImageNet supernet
/// training (see DESIGN.md §2): a warped Gaussian-mixture classification
/// problem whose difficulty scales with cluster count and noise, so that
/// higher-capacity candidate operations earn measurably higher accuracy.
struct SyntheticTaskConfig {
  int input_dim = 16;
  int num_classes = 10;
  // Defaults calibrated so capacity matters the way it does on CIFAR-10:
  // an all-Zero architecture lands ~10%p below an all-MBConv3x3_e3 one, and
  // the largest candidates gain another ~1%p (cf. Table 2's 93.1-94.5%).
  int clusters_per_class = 8;
  int train_samples = 4096;
  int val_samples = 1024;
  float cluster_spread = 2.0F;  ///< stddev of cluster centers
  float noise = 0.8F;           ///< within-cluster noise
  float warp = 1.5F;            ///< strength of the nonlinear warp
  std::uint64_t seed = 1234;
};

struct SyntheticTask {
  SyntheticTaskConfig config;
  Dataset train;
  Dataset val;
};

/// Deterministically generate the task from its config (same seed ->
/// bit-identical data).
[[nodiscard]] SyntheticTask make_synthetic_task(const SyntheticTaskConfig& config);

}  // namespace dance::data
