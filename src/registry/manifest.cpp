#include "registry/manifest.h"

#include <cstdio>
#include <sstream>
#include <vector>

#include "util/fs.h"

namespace dance::registry {

namespace {

constexpr const char* kHeader = "DANCE-REGISTRY v1";

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream in(line);
  std::string tok;
  while (in >> tok) out.push_back(tok);
  return out;
}

long to_long(const std::string& s, const std::string& what) {
  char* end = nullptr;
  const long v = std::strtol(s.c_str(), &end, 10);
  if (end != s.c_str() + s.size() || s.empty()) {
    throw ManifestError("manifest: bad integer for " + what + ": '" + s + "'");
  }
  return v;
}

double to_double(const std::string& s, const std::string& what) {
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size() || s.empty()) {
    throw ManifestError("manifest: bad number for " + what + ": '" + s + "'");
  }
  return v;
}

ManifestModel parse_model_line(const std::vector<std::string>& toks) {
  if (toks.size() < 2 || toks.size() % 2 != 0) {
    throw ManifestError("manifest: malformed model line");
  }
  ManifestModel m;
  m.name = toks[1];
  if (m.name.empty()) throw ManifestError("manifest: empty model name");
  for (std::size_t i = 2; i + 1 < toks.size(); i += 2) {
    const std::string& key = toks[i];
    const std::string& val = toks[i + 1];
    if (key == "arch_width") {
      m.arch_width = static_cast<int>(to_long(val, key));
    } else if (key == "hwgen_hidden") {
      m.opts.hwgen.hidden_dim = static_cast<int>(to_long(val, key));
    } else if (key == "hwgen_layers") {
      m.opts.hwgen.num_layers = static_cast<int>(to_long(val, key));
    } else if (key == "cost_hidden") {
      m.opts.cost.hidden_dim = static_cast<int>(to_long(val, key));
    } else if (key == "cost_layers") {
      m.opts.cost.num_layers = static_cast<int>(to_long(val, key));
    } else if (key == "ff") {
      m.opts.cost.feature_forwarding = to_long(val, key) != 0;
    } else if (key == "tau") {
      m.opts.gumbel_tau = static_cast<float>(to_double(val, key));
    } else if (key == "hard") {
      m.opts.gumbel_hard = to_long(val, key) != 0;
    } else if (key == "live") {
      m.live = static_cast<std::uint64_t>(to_long(val, key));
    } else if (key == "candidate") {
      m.candidate = static_cast<std::uint64_t>(to_long(val, key));
    } else {
      // Unknown keys are rejected, not skipped: a manifest from a newer
      // format revision must not be half-understood and then served.
      throw ManifestError("manifest: unknown model key '" + key + "'");
    }
  }
  if (m.arch_width <= 0) {
    throw ManifestError("manifest: model " + m.name + " has no arch_width");
  }
  return m;
}

}  // namespace

Manifest Manifest::parse(const std::string& text) {
  Manifest out;
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != kHeader) {
    throw ManifestError("manifest: missing '" + std::string(kHeader) +
                        "' header");
  }
  bool ended = false;
  while (std::getline(in, line)) {
    if (ended) throw ManifestError("manifest: content after 'end'");
    const auto toks = tokenize(line);
    if (toks.empty()) continue;
    if (toks[0] == "end") {
      ended = true;
    } else if (toks[0] == "model") {
      ManifestModel m = parse_model_line(toks);
      if (!out.models.emplace(m.name, std::move(m)).second) {
        throw ManifestError("manifest: duplicate model " + toks[1]);
      }
    } else if (toks[0] == "gen") {
      if (toks.size() != 4) throw ManifestError("manifest: malformed gen line");
      const auto it = out.models.find(toks[1]);
      if (it == out.models.end()) {
        throw ManifestError("manifest: gen line for unknown model " + toks[1]);
      }
      const auto gen = static_cast<std::uint64_t>(to_long(toks[2], "gen"));
      if (gen == 0) throw ManifestError("manifest: generation 0 is reserved");
      if (!it->second.generations.emplace(gen, toks[3]).second) {
        throw ManifestError("manifest: duplicate generation " + toks[2] +
                            " for model " + toks[1]);
      }
    } else {
      throw ManifestError("manifest: unknown record '" + toks[0] + "'");
    }
  }
  if (!ended) {
    throw ManifestError("manifest: missing 'end' marker (truncated file?)");
  }
  for (const auto& [name, m] : out.models) {
    if (m.live != 0 && m.generations.find(m.live) == m.generations.end()) {
      throw ManifestError("manifest: model " + name + " live generation " +
                          std::to_string(m.live) + " is not listed");
    }
    if (m.candidate != 0 &&
        m.generations.find(m.candidate) == m.generations.end()) {
      throw ManifestError("manifest: model " + name +
                          " candidate generation " +
                          std::to_string(m.candidate) + " is not listed");
    }
  }
  return out;
}

std::string Manifest::serialize() const {
  std::ostringstream out;
  out << kHeader << "\n";
  for (const auto& [name, m] : models) {
    out << "model " << name << " arch_width " << m.arch_width
        << " hwgen_hidden " << m.opts.hwgen.hidden_dim << " hwgen_layers "
        << m.opts.hwgen.num_layers << " cost_hidden " << m.opts.cost.hidden_dim
        << " cost_layers " << m.opts.cost.num_layers << " ff "
        << (m.opts.cost.feature_forwarding ? 1 : 0) << " tau "
        << m.opts.gumbel_tau << " hard " << (m.opts.gumbel_hard ? 1 : 0)
        << " live " << m.live << " candidate " << m.candidate << "\n";
    for (const auto& [gen, prefix] : m.generations) {
      out << "gen " << name << " " << gen << " " << prefix << "\n";
    }
  }
  out << "end\n";
  return out.str();
}

std::string Manifest::path_in(const std::string& dir) {
  return dir + "/MANIFEST";
}

Manifest Manifest::load(const std::string& dir) {
  std::string text;
  try {
    text = util::read_file(path_in(dir));
  } catch (const std::runtime_error& e) {
    throw ManifestError(e.what());
  }
  return parse(text);
}

void Manifest::save(const std::string& dir) const {
  util::atomic_write_file(path_in(dir), serialize());
}

}  // namespace dance::registry
