#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "registry/registry.h"
#include "serve/types.h"
#include "util/rng.h"

namespace dance::registry {

/// Shadow A/B traffic mirror: a seeded sample of live queries is replayed
/// against the model's staged candidate generation off the response path
/// (a background worker, or inline in synchronous mode for tests), and the
/// candidate's answer is compared to the live answer actually served:
///
///   * value agreement — every metric within the |log10(candidate/live)|
///     error band (the PR 2 calibration bands; DANCE_REGISTRY_SHADOW_BAND)
///     and the same decoded hardware configuration;
///   * cost-ordering agreement — consecutive mirrored queries must be
///     ranked the same way by both generations (scalar cost = the EDAP-
///     style latency*energy*area product), the property co-search actually
///     consumes.
///
/// Live response bytes are never affected: mirroring copies the encoding
/// and the already-serialized live answer. Metrics: serve.shadow.mirrored,
/// serve.shadow.disagreements (counters), serve.shadow.agreement_rate and
/// serve.shadow.order_agreement_rate (gauges).
class ShadowMirror {
 public:
  struct Options {
    double pct = 0.0;             ///< fraction of traffic mirrored [0, 1]
    std::uint64_t seed = 0x5AAD;  ///< sampling stream seed
    double band = 3.0;  ///< |log10| error band (PR 2 calibrated default)
    bool synchronous = false;  ///< tests: mirror inline, no worker thread
    /// DANCE_REGISTRY_SHADOW_PCT / _SEED / _BAND.
    [[nodiscard]] static Options from_env();
  };

  ShadowMirror(ModelRegistry& registry, Options opts);
  ~ShadowMirror();

  ShadowMirror(const ShadowMirror&) = delete;
  ShadowMirror& operator=(const ShadowMirror&) = delete;

  /// Called on the serving path after the live answer is produced. Samples
  /// the seeded stream; a selected query is enqueued (or, in synchronous
  /// mode, compared inline) against the candidate generation of `model`.
  /// Queries for models with no staged candidate are counted as sampled
  /// but not mirrored.
  void observe(const std::string& model, const std::vector<float>& encoding,
               const serve::Response& live);

  /// Blocks until every enqueued mirror has been compared (tests; also
  /// called before a front-end reports stats at EOF).
  void drain();

  struct Stats {
    std::uint64_t sampled = 0;   ///< selected by the seeded coin
    std::uint64_t mirrored = 0;  ///< actually compared against a candidate
    std::uint64_t disagreements = 0;  ///< value-band or config mismatches
    std::uint64_t order_pairs = 0;
    std::uint64_t order_agreements = 0;
    [[nodiscard]] double agreement_rate() const {
      return mirrored == 0
                 ? 1.0
                 : 1.0 - static_cast<double>(disagreements) /
                             static_cast<double>(mirrored);
    }
    [[nodiscard]] double order_agreement_rate() const {
      return order_pairs == 0 ? 1.0
                              : static_cast<double>(order_agreements) /
                                    static_cast<double>(order_pairs);
    }
  };
  [[nodiscard]] Stats stats() const;

 private:
  struct Item {
    std::string model;
    std::vector<float> encoding;
    serve::Response live;
  };

  void worker_loop();
  void compare(const Item& item);

  ModelRegistry& registry_;
  Options opts_;

  mutable std::mutex mu_;
  util::Rng rng_;  ///< guarded by mu_
  std::deque<Item> queue_;
  Stats stats_;
  /// Previous mirrored sample's scalar costs (live, candidate) for the
  /// consecutive-pair ordering check; reset never (stream-wide).
  std::optional<std::pair<double, double>> prev_costs_;
  bool stop_ = false;
  std::size_t in_flight_ = 0;
  std::condition_variable cv_;
  std::condition_variable drained_cv_;
  std::thread worker_;
};

}  // namespace dance::registry
