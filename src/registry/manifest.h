#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>

#include "evalnet/evaluator.h"

namespace dance::registry {

/// Raised for any malformed, truncated or inconsistent MANIFEST. The
/// registry never activates a partially parsed manifest: parsing either
/// yields a fully validated Manifest or throws this.
struct ManifestError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// One named model in the registry: its evaluator geometry (enough to
/// reconstruct an Evaluator that the generation checkpoints load into),
/// the live and candidate generation numbers, and the checkpoint file
/// prefix of every retained generation. Generation numbers increase
/// monotonically per model and are never reused.
struct ManifestModel {
  std::string name;
  int arch_width = 0;
  evalnet::Evaluator::Options opts;
  std::uint64_t live = 0;       ///< 0 = never published
  std::uint64_t candidate = 0;  ///< 0 = no candidate staged
  /// generation -> checkpoint prefix, relative to the registry directory.
  /// The files are `<prefix>.hwgen.ckpt` and `<prefix>.cost.ckpt`.
  std::map<std::uint64_t, std::string> generations;
};

/// The parsed on-disk MANIFEST. Text format, one record per line:
///
///   DANCE-REGISTRY v1
///   model <name> arch_width <W> hwgen_hidden <H> hwgen_layers <L>
///         cost_hidden <H> cost_layers <L> ff <0|1> tau <f> hard <0|1>
///         live <N> candidate <M>        (single line, keys in any order)
///   gen <model> <N> <prefix>
///   end
///
/// The trailing `end` marker makes a truncated file detectable even
/// without the atomic writer; live/candidate must reference listed
/// generations. Parsing validates everything before returning — the
/// registry activates a manifest only after `parse` succeeds in full.
struct Manifest {
  std::map<std::string, ManifestModel> models;

  [[nodiscard]] static Manifest parse(const std::string& text);
  [[nodiscard]] std::string serialize() const;

  /// Load/save `<dir>/MANIFEST`. `save` goes through
  /// util::atomic_write_file, so readers in other shard processes see
  /// either the old manifest or the new one, never a torn prefix.
  [[nodiscard]] static Manifest load(const std::string& dir);
  void save(const std::string& dir) const;

  [[nodiscard]] static std::string path_in(const std::string& dir);
};

}  // namespace dance::registry
