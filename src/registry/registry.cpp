#include "registry/registry.h"

#include <atomic>
#include <stdexcept>
#include <utility>

#include "obs/registry.h"
#include "util/rng.h"

namespace dance::registry {

namespace {

std::atomic<std::uint64_t> g_resident{0};

obs::Counter& publishes_counter() {
  return obs::Registry::global().counter("registry.publishes");
}
obs::Counter& swaps_counter() {
  return obs::Registry::global().counter("registry.swaps");
}

}  // namespace

std::uint64_t model_name_hash(const std::string& name) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

ModelVersion::ModelVersion(std::string model, std::uint64_t generation,
                           std::uint64_t model_hash,
                           std::unique_ptr<evalnet::Evaluator> evaluator)
    : model_(std::move(model)),
      generation_(generation),
      model_hash_(model_hash),
      evaluator_(std::move(evaluator)),
      backend_(std::make_unique<serve::SurrogateBackend>(*evaluator_)) {
  g_resident.fetch_add(1, std::memory_order_relaxed);
  obs::Registry::global()
      .gauge("registry.pinned_generations")
      .set(static_cast<double>(resident_count()));
}

ModelVersion::~ModelVersion() {
  g_resident.fetch_sub(1, std::memory_order_relaxed);
  obs::Registry::global()
      .gauge("registry.pinned_generations")
      .set(static_cast<double>(resident_count()));
}

std::uint64_t ModelVersion::resident_count() {
  return g_resident.load(std::memory_order_relaxed);
}

std::vector<serve::Response> ModelVersion::answer(
    std::span<const serve::Request> requests) const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<serve::Response> responses = backend_->query_batch(requests);
  for (auto& r : responses) r.generation = generation_;
  return responses;
}

ModelRegistry::ModelRegistry(std::string dir,
                             const hwgen::HwSearchSpace& hw_space)
    : dir_(std::move(dir)), hw_space_(hw_space) {
  manifest_ = Manifest::load(dir_);
  for (const auto& [name, m] : manifest_.models) {
    Entry e;
    if (m.live != 0) e.live = load_version(m, m.live);
    if (m.candidate != 0) e.candidate = load_version(m, m.candidate);
    entries_.emplace(name, std::move(e));
  }
}

void ModelRegistry::init(const std::string& dir) {
  Manifest{}.save(dir);
}

std::unique_ptr<evalnet::Evaluator> ModelRegistry::build_evaluator(
    const ManifestModel& m, std::uint64_t generation) const {
  const auto gen = m.generations.find(generation);
  if (gen == m.generations.end()) {
    throw std::runtime_error("registry: model " + m.name +
                             " has no generation " +
                             std::to_string(generation));
  }
  // The RNG only seeds the initial weights, which the checkpoint loads
  // replace entirely; any seed yields the same evaluator.
  util::Rng rng(13);
  auto evaluator = std::make_unique<evalnet::Evaluator>(m.arch_width,
                                                        hw_space_, rng, m.opts);
  const std::string base = dir_ + "/" + gen->second;
  evaluator->hwgen_net().load(base + ".hwgen.ckpt");
  evaluator->cost_net().load(base + ".cost.ckpt");
  return evaluator;
}

std::unique_ptr<evalnet::Evaluator> ModelRegistry::load_evaluator(
    const std::string& model, std::uint64_t generation) const {
  ManifestModel m;
  {
    std::lock_guard<std::mutex> lk(mu_);
    const auto it = manifest_.models.find(model);
    if (it == manifest_.models.end()) {
      throw std::runtime_error("registry: unknown model " + model);
    }
    m = it->second;
  }
  return build_evaluator(m, generation);
}

VersionPtr ModelRegistry::load_version(const ManifestModel& m,
                                       std::uint64_t generation) const {
  return std::make_shared<const ModelVersion>(m.name, generation,
                                              model_name_hash(m.name),
                                              build_evaluator(m, generation));
}

VersionPtr ModelRegistry::pin(const std::string& model) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = entries_.find(model);
  if (it == entries_.end()) {
    throw std::runtime_error("registry: unknown model " + model);
  }
  if (!it->second.live) {
    throw std::runtime_error("registry: model " + model +
                             " has no live generation");
  }
  return it->second.live;
}

VersionPtr ModelRegistry::pin_candidate(const std::string& model) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = entries_.find(model);
  return it == entries_.end() ? nullptr : it->second.candidate;
}

serve::Request ModelRegistry::make_request(const VersionPtr& version,
                                           std::vector<float> encoding) {
  serve::Request r;
  r.encoding = std::move(encoding);
  r.scope_model = version->model_hash();
  r.scope_generation = version->generation();
  r.pin = version;
  return r;
}

std::uint64_t ModelRegistry::publish(const std::string& model,
                                     evalnet::Evaluator& evaluator,
                                     bool as_candidate) {
  // Snapshot manifest state; do the slow work (checkpoint writes, reload)
  // outside the lock so pins and queries proceed during a publish.
  ManifestModel m;
  {
    std::lock_guard<std::mutex> lk(mu_);
    const auto it = manifest_.models.find(model);
    if (it != manifest_.models.end()) {
      m = it->second;
    } else {
      // First publish of this model: geometry comes from the evaluator.
      m.name = model;
      m.arch_width = evaluator.arch_encoding_width();
      m.opts = evaluator.options();
    }
  }
  const std::uint64_t gen =
      m.generations.empty() ? 1 : m.generations.rbegin()->first + 1;
  const std::string prefix = model + "-gen" + std::to_string(gen);
  const std::string base = dir_ + "/" + prefix;
  evaluator.hwgen_net().save(base + ".hwgen.ckpt");
  evaluator.cost_net().save(base + ".cost.ckpt");

  m.generations.emplace(gen, prefix);
  if (as_candidate) {
    m.candidate = gen;
  } else {
    m.live = gen;
  }

  // Load the resident copy back from the files just written: validates the
  // round-trip and guarantees the served weights are exactly the on-disk
  // bytes every other shard will load.
  VersionPtr fresh = load_version(m, gen);

  std::lock_guard<std::mutex> lk(mu_);
  manifest_.models[model] = m;
  manifest_.save(dir_);
  Entry& e = entries_[model];
  if (as_candidate) {
    e.candidate = fresh;
  } else {
    e.live = fresh;  // the RCU swap: old pins keep the old version alive
    if (m.candidate == 0) e.candidate = nullptr;
    swaps_counter().inc();
  }
  publishes_counter().inc();
  return gen;
}

std::uint64_t ModelRegistry::promote(const std::string& model) {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = manifest_.models.find(model);
  if (it == manifest_.models.end()) {
    throw std::runtime_error("registry: unknown model " + model);
  }
  ManifestModel& m = it->second;
  if (m.candidate == 0) return 0;
  const std::uint64_t gen = m.candidate;
  m.live = gen;
  m.candidate = 0;
  manifest_.save(dir_);
  Entry& e = entries_[model];
  e.live = e.candidate;
  e.candidate = nullptr;
  swaps_counter().inc();
  return gen;
}

std::size_t ModelRegistry::reload() {
  Manifest fresh = Manifest::load(dir_);

  // Decide what needs (re)loading against the current residency, load
  // outside the lock, then swap.
  struct Pending {
    std::string model;
    std::uint64_t live = 0;       ///< 0 = keep current
    std::uint64_t candidate = 0;  ///< 0 = keep/clear per manifest
  };
  std::vector<Pending> pending;
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (const auto& [name, m] : fresh.models) {
      const auto it = entries_.find(name);
      Pending p{name, 0, 0};
      const std::uint64_t cur_live =
          (it != entries_.end() && it->second.live)
              ? it->second.live->generation()
              : 0;
      const std::uint64_t cur_cand =
          (it != entries_.end() && it->second.candidate)
              ? it->second.candidate->generation()
              : 0;
      if (m.live != 0 && m.live != cur_live) p.live = m.live;
      if (m.candidate != 0 && m.candidate != cur_cand) {
        p.candidate = m.candidate;
      }
      if (p.live != 0 || p.candidate != 0) pending.push_back(p);
    }
  }

  std::size_t swapped = 0;
  std::map<std::string, Entry> loaded;
  for (const auto& p : pending) {
    const ManifestModel& m = fresh.models.at(p.model);
    Entry e;
    if (p.live != 0) e.live = load_version(m, p.live);
    if (p.candidate != 0) e.candidate = load_version(m, p.candidate);
    loaded.emplace(p.model, std::move(e));
  }

  std::lock_guard<std::mutex> lk(mu_);
  manifest_ = std::move(fresh);
  for (auto& [name, e] : loaded) {
    Entry& cur = entries_[name];
    if (e.live) {
      cur.live = std::move(e.live);
      swaps_counter().inc();
      ++swapped;
    }
    if (e.candidate) {
      cur.candidate = std::move(e.candidate);
      ++swapped;
    }
  }
  // A candidate the new manifest no longer stages is dropped (promoted
  // elsewhere or abandoned); pins keep it alive until they drain.
  for (auto& [name, e] : entries_) {
    const auto it = manifest_.models.find(name);
    if (it != manifest_.models.end() && it->second.candidate == 0) {
      e.candidate = nullptr;
    }
  }
  return swapped;
}

std::vector<std::string> ModelRegistry::models() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<std::string> out;
  out.reserve(manifest_.models.size());
  for (const auto& [name, m] : manifest_.models) out.push_back(name);
  return out;
}

std::uint64_t ModelRegistry::live_generation(const std::string& model) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = manifest_.models.find(model);
  return it == manifest_.models.end() ? 0 : it->second.live;
}

std::vector<serve::Response> RegistryBackend::query_batch(
    std::span<const serve::Request> requests) {
  std::vector<serve::Response> out(requests.size());
  // Group by pinned version, preserving order within each group. Batches
  // usually hold one version; the map stays tiny.
  std::map<const ModelVersion*, std::vector<std::size_t>> groups;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const auto* version =
        static_cast<const ModelVersion*>(requests[i].pin.get());
    if (version == nullptr) {
      throw std::runtime_error(
          "registry backend: request carries no generation pin");
    }
    groups[version].push_back(i);
  }
  for (const auto& [version, indices] : groups) {
    std::vector<serve::Request> sub;
    sub.reserve(indices.size());
    for (const std::size_t i : indices) sub.push_back(requests[i]);
    const auto answered = version->answer(sub);
    for (std::size_t k = 0; k < indices.size(); ++k) {
      out[indices[k]] = answered[k];
    }
  }
  return out;
}

}  // namespace dance::registry
