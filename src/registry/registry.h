#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "evalnet/evaluator.h"
#include "hwgen/search_space.h"
#include "registry/manifest.h"
#include "serve/backend.h"
#include "serve/types.h"

namespace dance::registry {

/// One resident (model, generation): the evaluator reconstructed from its
/// checkpoints plus its own SurrogateBackend — i.e. its own compiled
/// infer::Plan (the fused/int8 tiers recompile per generation at
/// construction). Versions are held and handed out as
/// `shared_ptr<const ModelVersion>`: a query pins one version for its whole
/// lifetime, so `publish()` can swap the live pointer while in-flight
/// queries keep answering — and keep their Plan alive — on the generation
/// they started on. The last pin to drop frees the version (RCU by
/// shared_ptr).
class ModelVersion {
 public:
  ModelVersion(std::string model, std::uint64_t generation,
               std::uint64_t model_hash,
               std::unique_ptr<evalnet::Evaluator> evaluator);
  ~ModelVersion();

  [[nodiscard]] const std::string& model() const { return model_; }
  [[nodiscard]] std::uint64_t generation() const { return generation_; }
  [[nodiscard]] std::uint64_t model_hash() const { return model_hash_; }

  /// Answers a batch on this generation, with `generation` stamped into
  /// every response. Thread-safe: the backend's scratch arena is
  /// single-threaded, so calls are serialized per version — the live
  /// batcher and the shadow worker can share one candidate safely.
  [[nodiscard]] std::vector<serve::Response> answer(
      std::span<const serve::Request> requests) const;

  /// Number of ModelVersion objects currently alive in the process (live +
  /// candidates + retired-but-pinned). Mirrored to the
  /// `registry.pinned_generations` gauge on every construction/destruction.
  [[nodiscard]] static std::uint64_t resident_count();

 private:
  std::string model_;
  std::uint64_t generation_;
  std::uint64_t model_hash_;
  std::unique_ptr<evalnet::Evaluator> evaluator_;
  mutable std::mutex mu_;  ///< serializes backend_ (mutable arena)
  mutable std::unique_ptr<serve::SurrogateBackend> backend_;
};

using VersionPtr = std::shared_ptr<const ModelVersion>;

/// The versioned, multi-tenant checkpoint registry: a directory of
/// checkpoint files plus a MANIFEST mapping model name -> generations ->
/// files (docs/registry.md). The registry keeps the live (and, when
/// staged, candidate) generation of every model resident, hands out pins,
/// and hot-swaps on publish/promote/reload without dropping in-flight
/// queries.
///
/// Multi-process: shards share one registry directory read-only and pick
/// up externally published generations via `reload()` (wire `{"cmd":
/// "reload"}` or SIGHUP). Writers (`init`/`publish`/`promote`) assume a
/// single publisher at a time; MANIFEST and checkpoint writes are atomic,
/// so readers never observe torn state.
class ModelRegistry {
 public:
  /// Opens `dir`, parses the MANIFEST in full, and loads the live and
  /// candidate generations of every model. Throws ManifestError /
  /// std::runtime_error on any inconsistency — a registry either opens
  /// completely or not at all.
  ModelRegistry(std::string dir, const hwgen::HwSearchSpace& hw_space);

  /// Creates an empty registry directory manifest (admin bootstrap).
  static void init(const std::string& dir);

  /// Pins the live generation of `model`. The returned version stays fully
  /// usable until the pin is dropped, regardless of later publishes.
  /// Throws std::runtime_error for unknown models or models with no live
  /// generation.
  [[nodiscard]] VersionPtr pin(const std::string& model) const;

  /// Pins the staged candidate, or nullptr when none is staged.
  [[nodiscard]] VersionPtr pin_candidate(const std::string& model) const;

  /// Builds a scoped, pinned request for `version`: the (model hash,
  /// generation) namespace is folded into the cache key and the version is
  /// kept alive for the request's lifetime.
  [[nodiscard]] static serve::Request make_request(
      const VersionPtr& version, std::vector<float> encoding);

  /// Publishes `evaluator` as the next generation of `model` (creating the
  /// model entry on first publish): checkpoints are written atomically, the
  /// MANIFEST is rewritten atomically, and a fresh resident version is
  /// loaded back from the files just written (round-trip validated) and
  /// swapped in — as the live generation, or staged as the candidate when
  /// `as_candidate` is set. Returns the new generation number.
  std::uint64_t publish(const std::string& model,
                        evalnet::Evaluator& evaluator,
                        bool as_candidate = false);

  /// Promotes the staged candidate to live (shadow validation passed).
  /// Returns the promoted generation, or 0 when no candidate is staged.
  std::uint64_t promote(const std::string& model);

  /// Re-reads the MANIFEST and swaps in any generation published by
  /// another process. Returns the number of versions swapped/loaded.
  std::size_t reload();

  [[nodiscard]] std::vector<std::string> models() const;
  [[nodiscard]] std::uint64_t live_generation(const std::string& model) const;
  [[nodiscard]] const std::string& dir() const { return dir_; }
  [[nodiscard]] const hwgen::HwSearchSpace& hw_space() const {
    return hw_space_;
  }

  /// Reconstructs an Evaluator from a generation's checkpoints (training
  /// state: default). Used internally for residency and by the
  /// recalibration driver as the fine-tuning starting point.
  [[nodiscard]] std::unique_ptr<evalnet::Evaluator> load_evaluator(
      const std::string& model, std::uint64_t generation) const;

 private:
  struct Entry {
    VersionPtr live;
    VersionPtr candidate;
  };

  /// Lock-free builders over an explicit ManifestModel snapshot (callers
  /// either hold no lock and own the snapshot, or run before the entry is
  /// visible).
  [[nodiscard]] std::unique_ptr<evalnet::Evaluator> build_evaluator(
      const ManifestModel& m, std::uint64_t generation) const;
  [[nodiscard]] VersionPtr load_version(const ManifestModel& m,
                                        std::uint64_t generation) const;

  std::string dir_;
  const hwgen::HwSearchSpace& hw_space_;
  mutable std::mutex mu_;  ///< guards manifest_ + entries_
  Manifest manifest_;
  std::map<std::string, Entry> entries_;
};

/// Registry-aware serve backend: routes every request to the generation it
/// is pinned to. A batch coalesced by the MicroBatcher may span pins (two
/// queries that straddled a publish, or different models entirely); the
/// batch is grouped by version and each group answered on its own
/// generation, so responses are never cross-generation blends. Requests
/// without a pin are rejected (std::runtime_error -> wire error line).
class RegistryBackend : public serve::CostQueryBackend {
 public:
  [[nodiscard]] std::vector<serve::Response> query_batch(
      std::span<const serve::Request> requests) override;
  [[nodiscard]] const char* name() const override { return "registry"; }
};

/// FNV-1a of the model name (the cache-namespace model hash).
[[nodiscard]] std::uint64_t model_name_hash(const std::string& name);

}  // namespace dance::registry
