#include "registry/recalibrate.h"

#include <utility>

#include "evalnet/trainer.h"
#include "obs/registry.h"
#include "util/env.h"

namespace dance::registry {

Recalibrator::Options Recalibrator::Options::from_env() {
  Options o;
  o.min_samples = util::env_int("DANCE_REGISTRY_RECAL_MIN", o.min_samples, 1);
  o.epochs = util::env_int("DANCE_REGISTRY_RECAL_EPOCHS", o.epochs, 1);
  o.batch_size = util::env_int("DANCE_REGISTRY_RECAL_BATCH", o.batch_size, 1);
  o.seed = util::env_u64("DANCE_REGISTRY_RECAL_SEED", o.seed);
  return o;
}

Recalibrator::Recalibrator(ModelRegistry& registry, std::string model,
                           serve::CostQueryBackend& oracle, Options opts)
    : registry_(registry),
      model_(std::move(model)),
      oracle_(oracle),
      opts_(opts) {
  if (!opts_.synchronous) {
    worker_ = std::thread([this] { worker_loop(); });
  }
}

Recalibrator::~Recalibrator() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (worker_.joinable()) worker_.join();
}

void Recalibrator::observe(const std::vector<float>& encoding) {
  std::vector<float> key = serve::canonical_key(encoding);
  std::lock_guard<std::mutex> lk(mu_);
  ++stats_.observed;
  if (!seen_.insert(std::move(key)).second) return;  // already labeled/queued
  queue_.push_back(encoding);
  cv_.notify_one();
}

void Recalibrator::label_queued(std::deque<std::vector<float>> batch) {
  if (batch.empty()) return;
  std::vector<serve::Request> requests;
  requests.reserve(batch.size());
  for (auto& enc : batch) requests.push_back(serve::Request{std::move(enc)});
  // Ground-truth labeling. The oracle is the raw exact backend (never the
  // resilient decorator): a degraded answer must not become a label.
  const std::vector<serve::Response> answers = oracle_.query_batch(requests);

  const hwgen::HwSearchSpace& hw = registry_.hw_space();
  std::vector<evalnet::EvalSample> labeled;
  labeled.reserve(answers.size());
  for (std::size_t i = 0; i < answers.size(); ++i) {
    const serve::Response& r = answers[i];
    if (r.degraded) continue;
    evalnet::EvalSample s;
    s.arch_enc = requests[i].encoding;
    s.hw_labels = {hw.pe_index(r.config.pe_x), hw.pe_index(r.config.pe_y),
                   hw.rf_index(r.config.rf_size),
                   hw.dataflow_index(r.config.dataflow)};
    s.hw_enc = hw.encode(r.config);
    s.metrics = {r.metrics.latency_ms, r.metrics.energy_mj,
                 r.metrics.area_mm2};
    labeled.push_back(std::move(s));
  }

  std::lock_guard<std::mutex> lk(mu_);
  stats_.labeled += labeled.size();
  obs::Registry::global()
      .counter("registry.recal.labeled")
      .inc(labeled.size());
  for (auto& s : labeled) buffer_.push_back(std::move(s));
}

std::uint64_t Recalibrator::maybe_train() {
  std::vector<evalnet::EvalSample> snapshot;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (buffer_.size() < static_cast<std::size_t>(opts_.min_samples)) {
      return 0;
    }
    snapshot.swap(buffer_);
  }
  // Fine-tuning starts from the live generation's weights; with nothing
  // published yet there is nothing to recalibrate.
  const std::uint64_t live = registry_.live_generation(model_);
  if (live == 0) return 0;

  evalnet::EvaluatorDataset ds;
  ds.arch_encoding_width = static_cast<int>(snapshot.front().arch_enc.size());
  ds.hw_encoding_width = registry_.hw_space().encoding_width();
  ds.samples = std::move(snapshot);

  evalnet::TrainOptions topts;
  topts.epochs = opts_.epochs;
  topts.batch_size = opts_.batch_size;
  topts.seed = opts_.seed;
  auto evaluator = registry_.load_evaluator(model_, live);
  // Validation on the training buffer itself: the buffer is small and the
  // numbers only feed logs; shadow A/B is the real acceptance gate.
  evalnet::train_hwgen_net(evaluator->hwgen_net(), ds, ds, topts);
  evalnet::train_cost_net(evaluator->cost_net(), ds, ds, topts);

  const std::uint64_t gen =
      registry_.publish(model_, *evaluator, /*as_candidate=*/true);
  obs::Registry::global().counter("registry.recal.trainings").inc();
  std::lock_guard<std::mutex> lk(mu_);
  ++stats_.trainings;
  stats_.last_published = gen;
  return gen;
}

std::uint64_t Recalibrator::train_now() {
  std::deque<std::vector<float>> batch;
  {
    std::lock_guard<std::mutex> lk(mu_);
    batch.swap(queue_);
  }
  label_queued(std::move(batch));
  return maybe_train();
}

void Recalibrator::worker_loop() {
  for (;;) {
    std::deque<std::vector<float>> batch;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [this] { return stop_ || !queue_.empty(); });
      if (stop_) return;  // shutdown drops unlabeled queue (cheap to redo)
      batch.swap(queue_);
    }
    label_queued(std::move(batch));
    (void)maybe_train();
  }
}

Recalibrator::Stats Recalibrator::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

std::size_t Recalibrator::buffered() const {
  std::lock_guard<std::mutex> lk(mu_);
  return buffer_.size();
}

}  // namespace dance::registry
