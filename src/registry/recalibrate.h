#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "evalnet/dataset.h"
#include "registry/registry.h"
#include "serve/backend.h"

namespace dance::registry {

/// Continual-recalibration driver (the DOSA one-loop): served queries are
/// labeled with ground truth by an exact oracle off the response path, the
/// labeled samples accumulate in an evalnet::dataset buffer, and once the
/// buffer reaches `min_samples` the live evaluator generation is fine-tuned
/// on the fresh data and the result is published back into the registry as
/// a *candidate* generation — to be shadow-validated (ShadowMirror) and
/// then promoted, never swapped into the live path sight-unseen.
///
/// Labeling deduplicates by canonical key: repeated traffic on one hot key
/// contributes one sample, so the fine-tuning set stays diverse.
class Recalibrator {
 public:
  struct Options {
    int min_samples = 64;  ///< fine-tune once this many unique samples
    int epochs = 4;        ///< few-epoch fine-tune, not a full retrain
    int batch_size = 32;
    std::uint64_t seed = 29;
    bool synchronous = false;  ///< tests: no worker thread, use train_now()
    /// DANCE_REGISTRY_RECAL_MIN / _EPOCHS / _BATCH / _SEED.
    [[nodiscard]] static Options from_env();
  };

  /// `oracle` answers ground truth (serve::ExactBackend over any
  /// arch::CostProvider — an in-memory CostTable, or an MmapCostTable when
  /// the process was started with a compiled --table artifact so
  /// recalibration shares the serving table's pages); it is only ever
  /// called from the worker thread (or train_now() in synchronous mode),
  /// never on the serving path.
  Recalibrator(ModelRegistry& registry, std::string model,
               serve::CostQueryBackend& oracle, Options opts);
  ~Recalibrator();

  Recalibrator(const Recalibrator&) = delete;
  Recalibrator& operator=(const Recalibrator&) = delete;

  /// Called on the serving path: enqueues the encoding for background
  /// labeling. Cheap (one dedup probe + one queue push under a mutex).
  void observe(const std::vector<float>& encoding);

  /// Synchronously labels everything queued and, if the buffer has reached
  /// min_samples, fine-tunes and publishes a candidate generation. Returns
  /// the published generation, or 0 when below threshold. Used by tests
  /// and for a final flush at front-end EOF.
  std::uint64_t train_now();

  struct Stats {
    std::uint64_t observed = 0;  ///< encodings offered (pre-dedup)
    std::uint64_t labeled = 0;   ///< unique samples ground-truthed
    std::uint64_t trainings = 0;
    std::uint64_t last_published = 0;  ///< most recent candidate generation
  };
  [[nodiscard]] Stats stats() const;
  [[nodiscard]] std::size_t buffered() const;

 private:
  void worker_loop();
  void label_queued(std::deque<std::vector<float>> batch);
  [[nodiscard]] std::uint64_t maybe_train();

  ModelRegistry& registry_;
  std::string model_;
  serve::CostQueryBackend& oracle_;
  Options opts_;

  mutable std::mutex mu_;
  std::deque<std::vector<float>> queue_;
  std::unordered_set<std::vector<float>, serve::KeyHash, serve::KeyEq> seen_;
  std::vector<evalnet::EvalSample> buffer_;
  Stats stats_;
  bool stop_ = false;
  std::condition_variable cv_;
  std::thread worker_;
};

}  // namespace dance::registry
