#pragma once

#include <string>

#include "arch/space.h"
#include "registry/recalibrate.h"
#include "registry/registry.h"
#include "registry/shadow.h"
#include "serve/service.h"

namespace dance::registry {

/// Registry-aware wire pipeline: the serve::wire::answer_line equivalent
/// used by registry front-ends (serve_jsonl --registry, cluster shards in
/// registry mode). Differences from the plain pipeline:
///
///   * every request is pinned to one generation before it enters the
///     service, and the pin scope is folded into the cache key;
///   * an optional `"model": "name"` request field selects among resident
///     models (default: the front-end's --model);
///   * `{"cmd": "reload"}` re-reads the MANIFEST and hot-swaps externally
///     published generations, answering `{"reloaded": true, "swaps": N}`;
///   * after the live answer is produced, the query is offered to the
///     shadow mirror and the recalibration driver (both optional, both off
///     the response path).
class Frontend {
 public:
  /// `service` must be backed by a RegistryBackend. `shadow` and `recal`
  /// may be null.
  Frontend(ModelRegistry& registry, serve::Service& service,
           std::string default_model, ShadowMirror* shadow = nullptr,
           Recalibrator* recal = nullptr);

  /// Full per-line pipeline; same contract as serve::wire::answer_line
  /// (empty string for blank lines, error lines instead of exceptions).
  [[nodiscard]] std::string answer_line(const std::string& line,
                                        const arch::ArchSpace& space);

  /// Re-reads the MANIFEST (SIGHUP handler path). Returns swap count; any
  /// error is reported to the returned string's consumer via exception.
  std::size_t reload() { return registry_.reload(); }

  [[nodiscard]] const std::string& default_model() const {
    return default_model_;
  }

 private:
  ModelRegistry& registry_;
  serve::Service& service_;
  std::string default_model_;
  ShadowMirror* shadow_;
  Recalibrator* recal_;
};

}  // namespace dance::registry
