#include "registry/shadow.h"

#include <cmath>
#include <limits>

#include "obs/registry.h"
#include "util/env.h"

namespace dance::registry {

namespace {

double scalar_cost(const accel::CostMetrics& m) {
  return m.latency_ms * m.energy_mj * m.area_mm2;
}

/// |log10(a/b)| with the conventions of the PR 2 calibration bands: equal
/// values (including both zero) agree exactly; a sign flip or exactly one
/// zero is an infinite error.
double log10_error(double a, double b) {
  if (a == b) return 0.0;
  if (a <= 0.0 || b <= 0.0) return std::numeric_limits<double>::infinity();
  return std::fabs(std::log10(a / b));
}

bool same_config(const accel::AcceleratorConfig& a,
                 const accel::AcceleratorConfig& b) {
  return a.pe_x == b.pe_x && a.pe_y == b.pe_y && a.rf_size == b.rf_size &&
         a.dataflow == b.dataflow;
}

}  // namespace

ShadowMirror::Options ShadowMirror::Options::from_env() {
  Options o;
  o.pct = util::env_double("DANCE_REGISTRY_SHADOW_PCT", o.pct, 0.0, 1.0);
  o.seed = util::env_u64("DANCE_REGISTRY_SHADOW_SEED", o.seed);
  o.band = util::env_double("DANCE_REGISTRY_SHADOW_BAND", o.band, 0.0);
  return o;
}

ShadowMirror::ShadowMirror(ModelRegistry& registry, Options opts)
    : registry_(registry), opts_(opts), rng_(opts.seed) {
  if (!opts_.synchronous) {
    worker_ = std::thread([this] { worker_loop(); });
  }
}

ShadowMirror::~ShadowMirror() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (worker_.joinable()) worker_.join();
}

void ShadowMirror::observe(const std::string& model,
                           const std::vector<float>& encoding,
                           const serve::Response& live) {
  if (opts_.pct <= 0.0) return;
  Item item{model, encoding, live};
  {
    std::lock_guard<std::mutex> lk(mu_);
    // Seeded, stream-positional sampling: with a fixed seed the same query
    // sequence selects the same subset, so the mirrored fraction is
    // reproducible (property-tested).
    if (static_cast<double>(rng_.uniform()) >= opts_.pct) return;
    ++stats_.sampled;
    if (opts_.synchronous) {
      ++in_flight_;
    } else {
      queue_.push_back(std::move(item));
      cv_.notify_one();
      return;
    }
  }
  // Synchronous mode runs the comparison inline on the caller's thread —
  // deterministic for tests, still off the response bytes (the live
  // response was already produced).
  compare(item);
  {
    std::lock_guard<std::mutex> lk(mu_);
    --in_flight_;
  }
  drained_cv_.notify_all();
}

void ShadowMirror::worker_loop() {
  for (;;) {
    Item item;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      item = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    compare(item);
    {
      std::lock_guard<std::mutex> lk(mu_);
      --in_flight_;
    }
    drained_cv_.notify_all();
  }
}

void ShadowMirror::drain() {
  std::unique_lock<std::mutex> lk(mu_);
  drained_cv_.wait(lk, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ShadowMirror::compare(const Item& item) {
  const VersionPtr candidate = registry_.pin_candidate(item.model);
  if (!candidate) return;  // nothing staged: sampled but not mirrored

  serve::Request request =
      ModelRegistry::make_request(candidate, item.encoding);
  const std::vector<serve::Response> answered =
      candidate->answer({&request, 1});
  const serve::Response& shadow = answered.front();

  const bool config_agree = same_config(shadow.config, item.live.config);
  const bool band_agree =
      log10_error(shadow.metrics.latency_ms, item.live.metrics.latency_ms) <=
          opts_.band &&
      log10_error(shadow.metrics.energy_mj, item.live.metrics.energy_mj) <=
          opts_.band &&
      log10_error(shadow.metrics.area_mm2, item.live.metrics.area_mm2) <=
          opts_.band;
  const bool agree = config_agree && band_agree;

  const double live_cost = scalar_cost(item.live.metrics);
  const double cand_cost = scalar_cost(shadow.metrics);

  auto& reg = obs::Registry::global();
  std::lock_guard<std::mutex> lk(mu_);
  ++stats_.mirrored;
  if (!agree) ++stats_.disagreements;
  if (prev_costs_) {
    ++stats_.order_pairs;
    const auto [prev_live, prev_cand] = *prev_costs_;
    const int live_order = (live_cost > prev_live) - (live_cost < prev_live);
    const int cand_order = (cand_cost > prev_cand) - (cand_cost < prev_cand);
    if (live_order == cand_order) ++stats_.order_agreements;
  }
  prev_costs_ = {live_cost, cand_cost};

  reg.counter("serve.shadow.mirrored").inc();
  if (!agree) reg.counter("serve.shadow.disagreements").inc();
  reg.gauge("serve.shadow.agreement_rate").set(stats_.agreement_rate());
  reg.gauge("serve.shadow.order_agreement_rate")
      .set(stats_.order_agreement_rate());
}

ShadowMirror::Stats ShadowMirror::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

}  // namespace dance::registry
