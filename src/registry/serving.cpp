#include "registry/serving.h"

#include <exception>
#include <utility>

#include "obs/span.h"
#include "serve/wire.h"

namespace dance::registry {

Frontend::Frontend(ModelRegistry& registry, serve::Service& service,
                   std::string default_model, ShadowMirror* shadow,
                   Recalibrator* recal)
    : registry_(registry),
      service_(service),
      default_model_(std::move(default_model)),
      shadow_(shadow),
      recal_(recal) {}

std::string Frontend::answer_line(const std::string& line,
                                  const arch::ArchSpace& space) {
  namespace wire = serve::wire;
  if (wire::is_blank(line)) return "";

  if (const auto cmd = wire::parse_string_field(line, "cmd")) {
    if (*cmd == "reload") {
      try {
        const std::size_t swaps = reload();
        return "{\"reloaded\": true, \"swaps\": " + std::to_string(swaps) +
               "}";
      } catch (const std::exception& e) {
        return wire::error_line(-1, e.what());
      }
    }
    return wire::error_line(-1, "unknown cmd: " + *cmd);
  }

  const wire::ParseOutcome parsed = wire::parse_request(line, space);
  if (!parsed.ok) return wire::error_line(parsed.request.id, parsed.error);
  const std::string model =
      wire::parse_string_field(line, "model").value_or(default_model_);

  try {
    obs::ScopedSpan request_span("serve.wire.request");
    // The pin taken here rides inside the Request through the cache, the
    // batcher and the backend: this query answers on this generation even
    // if a publish lands while it is in flight.
    const VersionPtr pin = registry_.pin(model);
    serve::Response response = service_.query(
        ModelRegistry::make_request(pin, parsed.request.encoding));
    // Authoritative even for cache hits (a hit's key carries this exact
    // generation by construction) and snapshot-restored entries.
    response.generation = pin->generation();
    if (shadow_ != nullptr) {
      shadow_->observe(model, parsed.request.encoding, response);
    }
    if (recal_ != nullptr && !response.degraded) {
      recal_->observe(parsed.request.encoding);
    }
    return wire::response_line(parsed.request.id, response);
  } catch (const std::exception& e) {
    return wire::error_line(parsed.request.id, e.what());
  }
}

}  // namespace dance::registry
