#pragma once

#include <memory>
#include <string>

#include "fault/fault.h"
#include "serve/backend.h"

namespace dance::fault {

/// Chaos decorator for any CostQueryBackend: visits an injection site
/// before delegating, so a faulted call sleeps and/or throws *instead of*
/// producing an answer, and an un-faulted call returns the inner backend's
/// responses untouched (bit-identical — the decorator never rewrites a
/// Response). One site visit per query_batch call, matching the batcher's
/// unit of work.
class FaultyBackend : public serve::CostQueryBackend {
 public:
  /// `injector` must outlive the backend (shared ownership makes that
  /// automatic); `site` defaults to the standard backend site.
  FaultyBackend(serve::CostQueryBackend& inner,
                std::shared_ptr<FaultInjector> injector,
                std::string site = kBackendSite);

  [[nodiscard]] std::vector<serve::Response> query_batch(
      std::span<const serve::Request> requests) override;
  [[nodiscard]] const char* name() const override { return name_.c_str(); }

  [[nodiscard]] serve::CostQueryBackend& inner() { return inner_; }

 private:
  serve::CostQueryBackend& inner_;
  std::shared_ptr<FaultInjector> injector_;
  std::string site_;
  std::string name_;  ///< "faulty(<inner>)", built once
};

}  // namespace dance::fault
