#include "fault/faulty_backend.h"

#include <stdexcept>
#include <utility>

namespace dance::fault {

FaultyBackend::FaultyBackend(serve::CostQueryBackend& inner,
                             std::shared_ptr<FaultInjector> injector,
                             std::string site)
    : inner_(inner),
      injector_(std::move(injector)),
      site_(std::move(site)),
      name_(std::string("faulty(") + inner.name() + ")") {
  if (!injector_) {
    throw std::invalid_argument("FaultyBackend: null injector");
  }
}

std::vector<serve::Response> FaultyBackend::query_batch(
    std::span<const serve::Request> requests) {
  injector_->at(site_);
  return inner_.query_batch(requests);
}

}  // namespace dance::fault
