#include "fault/fault.h"

#include <chrono>
#include <cstdlib>
#include <thread>
#include <utility>

#include "runtime/thread_pool.h"
#include "testing/property.h"
#include "util/env.h"

namespace dance::fault {

namespace {

std::string trim(const std::string& s) {
  std::size_t lo = s.find_first_not_of(" \t");
  if (lo == std::string::npos) return "";
  std::size_t hi = s.find_last_not_of(" \t");
  return s.substr(lo, hi - lo + 1);
}

[[noreturn]] void bad_spec(const std::string& what, const std::string& token) {
  throw std::invalid_argument("FaultSpec: " + what + " '" + token + "'");
}

double parse_rate(const std::string& token) {
  const std::string t = trim(token);
  char* end = nullptr;
  const double v = std::strtod(t.c_str(), &end);
  if (t.empty() || end != t.c_str() + t.size() || !(v >= 0.0) || !(v <= 1.0)) {
    bad_spec("rate must be a number in [0, 1], got", token);
  }
  return v;
}

long parse_micros(const std::string& token) {
  const std::string t = trim(token);
  char* end = nullptr;
  const long v = std::strtol(t.c_str(), &end, 10);
  if (t.empty() || end != t.c_str() + t.size() || v <= 0) {
    bad_spec("duration must be a positive integer (microseconds), got", token);
  }
  return v;
}

/// FNV-1a over the site name; folded into the base seed so each site gets
/// an independent, name-stable draw stream.
std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// `rate [':' micros]` for the latency/hang kinds.
void parse_timed(const std::string& value, double* rate, long* us) {
  const std::size_t colon = value.find(':');
  if (colon == std::string::npos) {
    *rate = parse_rate(value);
  } else {
    *rate = parse_rate(value.substr(0, colon));
    *us = parse_micros(value.substr(colon + 1));
  }
}

}  // namespace

FaultSpec FaultSpec::parse(const std::string& text) {
  FaultSpec out;
  std::size_t clause_begin = 0;
  while (clause_begin <= text.size()) {
    std::size_t clause_end = text.find(';', clause_begin);
    if (clause_end == std::string::npos) clause_end = text.size();
    const std::string clause =
        trim(text.substr(clause_begin, clause_end - clause_begin));
    clause_begin = clause_end + 1;
    if (clause.empty()) continue;

    // A ':' before the first '=' is a site prefix (the ':' inside
    // latency=P:US comes after the '=').
    std::string site = kBackendSite;
    std::string body = clause;
    const std::size_t colon = clause.find(':');
    const std::size_t eq = clause.find('=');
    if (colon != std::string::npos &&
        (eq == std::string::npos || colon < eq)) {
      site = trim(clause.substr(0, colon));
      body = clause.substr(colon + 1);
      if (site.empty()) bad_spec("empty site name in clause", clause);
    }

    SiteSpec& s = out.sites[site];
    std::size_t pair_begin = 0;
    while (pair_begin <= body.size()) {
      std::size_t pair_end = body.find(',', pair_begin);
      if (pair_end == std::string::npos) pair_end = body.size();
      const std::string pair =
          trim(body.substr(pair_begin, pair_end - pair_begin));
      pair_begin = pair_end + 1;
      if (pair.empty()) continue;

      const std::size_t pair_eq = pair.find('=');
      if (pair_eq == std::string::npos) {
        bad_spec("expected kind=value, got", pair);
      }
      const std::string kind = trim(pair.substr(0, pair_eq));
      const std::string value = pair.substr(pair_eq + 1);
      if (kind == "error") {
        s.error_rate = parse_rate(value);
      } else if (kind == "latency") {
        parse_timed(value, &s.latency_rate, &s.latency_us);
      } else if (kind == "hang") {
        parse_timed(value, &s.hang_rate, &s.hang_us);
      } else {
        bad_spec("unknown fault kind", kind);
      }
    }
  }
  return out;
}

FaultSpec FaultSpec::from_env() {
  const std::string text = util::env_string("DANCE_FAULT", "");
  if (text.empty()) return {};
  return parse(text);
}

bool FaultSpec::active_at(const std::string& site) const {
  const auto it = sites.find(site);
  return it != sites.end() && it->second.any();
}

FaultInjector::FaultInjector(FaultSpec spec, std::uint64_t seed)
    : spec_(std::move(spec)),
      seed_(seed),
      obs_errors_(obs::Registry::global().counter("fault.injected.errors")),
      obs_latency_(obs::Registry::global().counter("fault.injected.latency")),
      obs_hangs_(obs::Registry::global().counter("fault.injected.hangs")) {
  for (const auto& [name, site_spec] : spec_.sites) {
    auto site = std::make_unique<Site>(testing::mix_seed(seed_, fnv1a(name)));
    site->spec = site_spec;
    sites_.emplace(name, std::move(site));
  }
}

void FaultInjector::at(const std::string& site) {
  const auto it = sites_.find(site);
  if (it == sites_.end()) return;
  Site& s = *it->second;

  bool do_latency = false;
  bool do_hang = false;
  bool do_error = false;
  long latency_us = 0;
  long hang_us = 0;
  {
    std::lock_guard<std::mutex> lk(s.mu);
    // Always draw all three, in a fixed order, so the stream position after
    // a visit is independent of which kinds the spec enables.
    const double u_latency = static_cast<double>(s.rng.uniform());
    const double u_hang = static_cast<double>(s.rng.uniform());
    const double u_error = static_cast<double>(s.rng.uniform());
    do_latency = u_latency < s.spec.latency_rate;
    do_hang = u_hang < s.spec.hang_rate;
    do_error = u_error < s.spec.error_rate;
    latency_us = s.spec.latency_us;
    hang_us = s.spec.hang_us;
  }
  visits_.fetch_add(1, std::memory_order_relaxed);

  if (do_latency) {
    latency_.fetch_add(1, std::memory_order_relaxed);
    obs_latency_.inc();
    std::this_thread::sleep_for(std::chrono::microseconds(latency_us));
  }
  if (do_hang) {
    hangs_.fetch_add(1, std::memory_order_relaxed);
    obs_hangs_.inc();
    std::this_thread::sleep_for(std::chrono::microseconds(hang_us));
  }
  if (do_error) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    obs_errors_.inc();
    throw InjectedFault("injected fault at site '" + site + "'");
  }
}

FaultInjector::Stats FaultInjector::stats() const {
  Stats out;
  out.visits = visits_.load(std::memory_order_relaxed);
  out.errors = errors_.load(std::memory_order_relaxed);
  out.latency_spikes = latency_.load(std::memory_order_relaxed);
  out.hangs = hangs_.load(std::memory_order_relaxed);
  return out;
}

namespace {

std::mutex g_injector_mu;
std::shared_ptr<FaultInjector> g_injector;  // NOLINT: guarded by g_injector_mu

/// The pool's job-boundary hook. Copies the shared_ptr out under the lock
/// so an uninstall racing a pool job cannot free the injector mid-visit.
void pool_boundary_hook() {
  std::shared_ptr<FaultInjector> injector;
  {
    std::lock_guard<std::mutex> lk(g_injector_mu);
    injector = g_injector;
  }
  if (injector) injector->at(kPoolSite);
}

}  // namespace

void install_global(std::shared_ptr<FaultInjector> injector) {
  const bool want_pool_hook =
      injector != nullptr && injector->spec().active_at(kPoolSite);
  {
    std::lock_guard<std::mutex> lk(g_injector_mu);
    g_injector = std::move(injector);
  }
  runtime::set_job_boundary_hook(want_pool_hook ? &pool_boundary_hook
                                                : nullptr);
}

std::shared_ptr<FaultInjector> global_injector() {
  std::lock_guard<std::mutex> lk(g_injector_mu);
  return g_injector;
}

std::shared_ptr<FaultInjector> install_from_env() {
  FaultSpec spec = FaultSpec::from_env();
  if (spec.empty()) {
    install_global(nullptr);
    return nullptr;
  }
  const std::uint64_t seed = util::env_u64("DANCE_FAULT_SEED", 0xFA17);
  auto injector = std::make_shared<FaultInjector>(std::move(spec), seed);
  install_global(injector);
  return injector;
}

}  // namespace dance::fault
