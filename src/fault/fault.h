#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>

#include "obs/registry.h"
#include "util/rng.h"

namespace dance::fault {

/// The error an injector raises at a faulted site. Deliberately a plain
/// std::runtime_error subtype: resilience code must treat it like any other
/// transient backend failure, and tests can still catch it by exact type to
/// prove a failure was injected rather than organic.
class InjectedFault : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Injection sites wired up by this library. Backends decorated with
/// FaultyBackend visit `kBackendSite` once per query_batch; the runtime
/// thread pool visits `kPoolSite` once per submitted job (via the
/// job-boundary hook) when a global injector with an active pool site is
/// installed. Specs may name other sites; they are simply never visited
/// until someone calls `FaultInjector::at` with that name.
inline constexpr const char* kBackendSite = "backend";
inline constexpr const char* kPoolSite = "pool";

/// Fault probabilities for one injection site. Rates are per *visit*
/// (per backend batch call / per pool job), independent draws.
struct SiteSpec {
  double error_rate = 0.0;    ///< P(throw InjectedFault)
  double latency_rate = 0.0;  ///< P(sleep latency_us)
  long latency_us = 1000;     ///< latency-spike magnitude
  double hang_rate = 0.0;     ///< P(sleep hang_us) — a "bounded hang"
  long hang_us = 50000;       ///< hang magnitude (long enough to trip
                              ///< deadlines, short enough to finish)

  [[nodiscard]] bool any() const {
    return error_rate > 0.0 || latency_rate > 0.0 || hang_rate > 0.0;
  }
};

/// Parsed form of a DANCE_FAULT chaos spec.
///
/// Grammar (whitespace around tokens ignored):
///   spec    := clause (';' clause)*
///   clause  := [site ':'] pair (',' pair)*
///   pair    := 'error'   '=' rate
///            | 'latency' '=' rate [':' micros]
///            | 'hang'    '=' rate [':' micros]
/// A clause without a site prefix targets "backend". Examples:
///   error=0.1
///   backend:error=0.1,latency=0.05:2000;pool:hang=0.01:10000
/// Rates must parse and lie in [0, 1]; durations must be positive integers.
/// Unlike the env knobs (fallback on garbage), a malformed chaos spec
/// throws std::invalid_argument — silently not injecting the faults an
/// operator asked for would make a chaos run vacuously green.
struct FaultSpec {
  std::map<std::string, SiteSpec> sites;

  [[nodiscard]] static FaultSpec parse(const std::string& text);
  /// Parses DANCE_FAULT; empty spec when unset/empty.
  [[nodiscard]] static FaultSpec from_env();

  [[nodiscard]] bool empty() const { return sites.empty(); }
  /// True when `site` is configured with at least one nonzero rate.
  [[nodiscard]] bool active_at(const std::string& site) const;
};

/// Seeded fault source shared by every injection site in a process.
///
/// Each site owns an independent util::Rng stream derived from
/// testing::mix_seed(seed, fnv1a(site)), and every visit draws the same
/// three uniforms (latency, hang, error — in that order) regardless of
/// which fault kinds are configured. Two runs with the same seed, spec and
/// per-site visit sequence therefore fault the exact same visits, even if
/// one run's spec zeroes a rate the other sets — the replay convention the
/// testing layer's PBT seeds established. Visits to sites the spec does not
/// name are no-ops. Thread-safe; draws happen under a per-site mutex, the
/// sleeps and the throw happen outside it.
class FaultInjector {
 public:
  FaultInjector(FaultSpec spec, std::uint64_t seed);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Visit `site`: possibly sleep (latency and/or hang), then possibly
  /// throw InjectedFault. Mirrors every trigger into the process-global
  /// obs counters fault.injected.{latency,hangs,errors}.
  void at(const std::string& site);

  struct Stats {
    std::uint64_t visits = 0;
    std::uint64_t errors = 0;
    std::uint64_t latency_spikes = 0;
    std::uint64_t hangs = 0;
  };
  [[nodiscard]] Stats stats() const;
  [[nodiscard]] const FaultSpec& spec() const { return spec_; }
  [[nodiscard]] std::uint64_t seed() const { return seed_; }

 private:
  struct Site {
    std::mutex mu;
    util::Rng rng;
    SiteSpec spec;
    explicit Site(std::uint64_t s) : rng(s) {}
  };

  FaultSpec spec_;
  std::uint64_t seed_;
  std::map<std::string, std::unique_ptr<Site>> sites_;

  std::atomic<std::uint64_t> visits_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<std::uint64_t> latency_{0};
  std::atomic<std::uint64_t> hangs_{0};
  obs::Counter& obs_errors_;
  obs::Counter& obs_latency_;
  obs::Counter& obs_hangs_;
};

/// Installs `injector` as the process-global fault source (nullptr
/// uninstalls). When the injector's spec has an active "pool" site this
/// also arms the runtime thread pool's job-boundary hook; otherwise the
/// hook is cleared, so fault-free operation costs the pool one null check.
void install_global(std::shared_ptr<FaultInjector> injector);

/// The currently installed global injector (may be null).
[[nodiscard]] std::shared_ptr<FaultInjector> global_injector();

/// Convenience for main()s: parse DANCE_FAULT (+ DANCE_FAULT_SEED, default
/// 0xFA17), build and install the injector, and return it. Returns null —
/// and uninstalls any previous global — when DANCE_FAULT is unset/empty.
/// Throws std::invalid_argument on a malformed spec.
std::shared_ptr<FaultInjector> install_from_env();

}  // namespace dance::fault
