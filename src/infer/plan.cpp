#include "infer/plan.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "evalnet/evaluator.h"
#include "obs/registry.h"
#include "runtime/profiler.h"
#include "tensor/gemm.h"
#include "util/env.h"
#include "util/parallel.h"

namespace dance::infer {

namespace gemm = tensor::gemm;

const char* to_string(Mode mode) {
  switch (mode) {
    case Mode::kAutograd:
      return "autograd";
    case Mode::kFused:
      return "fused";
    case Mode::kInt8:
      return "int8";
  }
  return "unknown";
}

bool parse_mode(const std::string& text, Mode& out) {
  if (text == "autograd") {
    out = Mode::kAutograd;
    return true;
  }
  if (text == "fused") {
    out = Mode::kFused;
    return true;
  }
  if (text == "int8") {
    out = Mode::kInt8;
    return true;
  }
  return false;
}

Mode mode_from_env() {
  const std::string text = util::env_string("DANCE_INFER", "autograd");
  Mode mode = Mode::kAutograd;
  if (!parse_mode(text, mode)) mode = Mode::kAutograd;
  return mode;
}

// ---------------------------------------------------------------------------
// Arena

void Arena::prepare(const Plan& plan, int rows) {
  if (rows <= 0) throw std::invalid_argument("Arena::prepare: rows <= 0");
  if (rows <= rows_) return;
  const auto r = static_cast<std::size_t>(rows);
  f32_.resize(r * plan.floats_per_row());
  q8_.resize(r * static_cast<std::size_t>(plan.max_in_width_));
  i32_.resize(r * static_cast<std::size_t>(plan.max_out_width_));
  rows_ = rows;
}

float* Arena::stage_input(int rows, int width) {
  const std::size_t need =
      static_cast<std::size_t>(rows) * static_cast<std::size_t>(width);
  if (input_.size() < need) input_.resize(need);
  return input_.data();
}

// ---------------------------------------------------------------------------
// Compilation

Plan::Trunk Plan::compile_trunk(const nn::FrozenMlp& mlp) {
  if (mlp.layers.size() < 2) {
    throw std::invalid_argument("Plan: frozen trunk needs >= 2 layers");
  }
  Trunk trunk;
  trunk.in_dim = mlp.in_dim;
  trunk.hidden_dim = mlp.hidden_dim;
  trunk.out_dim = mlp.out_dim;
  trunk.steps.reserve(mlp.layers.size());
  for (const auto& layer : mlp.layers) {
    Step step;
    step.in = layer.linear.in;
    step.out = layer.linear.out;
    if (layer.linear.weight.rank() != 2 ||
        layer.linear.weight.rows() != step.in ||
        layer.linear.weight.cols() != step.out) {
      throw std::invalid_argument("Plan: frozen weight shape mismatch");
    }
    step.weight = layer.linear.weight;
    step.bias = layer.linear.bias;
    if (step.bias.numel() != 0 &&
        step.bias.numel() != static_cast<std::size_t>(step.out)) {
      throw std::invalid_argument("Plan: frozen bias shape mismatch");
    }
    step.b_finite = gemm::all_finite(step.weight.data(), step.weight.numel());
    if (layer.has_norm) {
      const auto width = static_cast<std::size_t>(step.out);
      if (layer.norm.gamma.numel() != width ||
          layer.norm.inv_std.numel() != width) {
        throw std::invalid_argument("Plan: frozen norm shape mismatch");
      }
      step.gamma = layer.norm.gamma;
      step.beta = layer.norm.beta;
      step.mean = layer.norm.mean;
      step.inv_std = layer.norm.inv_std;
      step.has_norm = true;
    }
    step.relu = layer.relu;
    step.residual = layer.residual;
    trunk.steps.push_back(std::move(step));
  }
  return trunk;
}

Plan Plan::compile(const evalnet::FrozenEvaluator& frozen) {
  Plan plan;
  plan.hwgen_ = compile_trunk(frozen.hwgen_trunk);
  plan.cost_ = compile_trunk(frozen.cost_trunk);
  plan.head_ranges_ = frozen.head_ranges;
  plan.output_scale_ = frozen.output_scale;
  plan.feature_forwarding_ = frozen.feature_forwarding;
  plan.arch_width_ = frozen.arch_width;
  plan.hw_width_ = frozen.hw_width;

  if (plan.hwgen_.in_dim != plan.arch_width_ ||
      plan.hwgen_.out_dim != plan.hw_width_) {
    throw std::invalid_argument("Plan: hwgen trunk width mismatch");
  }
  // Heads must tile [0, hw_width) in order: the one-hot encoding is the
  // concat of per-head argmaxes, exactly as forward_encoded_deterministic
  // concatenates its hard_max_st slices.
  int cursor = 0;
  for (const auto& [begin, end] : plan.head_ranges_) {
    if (begin != cursor || end <= begin) {
      throw std::invalid_argument("Plan: head ranges must tile the encoding");
    }
    cursor = end;
  }
  if (cursor != plan.hw_width_) {
    throw std::invalid_argument("Plan: head ranges must cover the encoding");
  }
  plan.cost_in_width_ =
      plan.feature_forwarding_ ? plan.arch_width_ + plan.hw_width_
                               : plan.arch_width_;
  if (plan.cost_.in_dim != plan.cost_in_width_ || plan.cost_.out_dim != 3) {
    throw std::invalid_argument("Plan: cost trunk width mismatch");
  }
  for (const auto* trunk : {&plan.hwgen_, &plan.cost_}) {
    for (const auto& step : trunk->steps) {
      plan.max_in_width_ = std::max(plan.max_in_width_, step.in);
      plan.max_out_width_ = std::max(plan.max_out_width_, step.out);
    }
  }
  obs::Registry::global().counter("infer.plan.compiles").inc();
  return plan;
}

Plan Plan::compile(evalnet::Evaluator& evaluator) {
  const evalnet::FrozenEvaluator frozen = evaluator.freeze();
  return compile(frozen);
}

std::size_t Plan::num_steps() const {
  return hwgen_.steps.size() + cost_.steps.size();
}

std::size_t Plan::floats_per_row() const {
  // hwgen h + z, logits, (optional) cost concat input, cost h + z. Metrics
  // land directly in the caller's output buffer.
  std::size_t per_row = 2 * static_cast<std::size_t>(hwgen_.hidden_dim) +
                        static_cast<std::size_t>(hw_width_) +
                        2 * static_cast<std::size_t>(cost_.hidden_dim);
  if (feature_forwarding_) per_row += static_cast<std::size_t>(cost_in_width_);
  return per_row;
}

// ---------------------------------------------------------------------------
// Execution

namespace {

/// Fused epilogue for one output row: bias add, eval-mode batch norm, ReLU.
/// Each stage uses the exact expressions of its autograd op (ops::add_rowvec,
/// the eval branch of ops::batchnorm, ops::relu) in the same order, so the
/// chain is bit-identical to running those ops back to back.
inline void epilogue_row(float* row, int width, const float* bias,
                         const float* gamma, const float* beta,
                         const float* mean, const float* inv_std, bool relu) {
  for (int c = 0; c < width; ++c) {
    float v = row[c];
    if (bias != nullptr) v += bias[c];
    if (gamma != nullptr) {
      const float xh = (v - mean[c]) * inv_std[c];
      v = gamma[c] * xh + beta[c];
    }
    if (relu) v = std::max(0.0F, v);
    row[c] = v;
  }
}

inline std::int8_t quantize_one(float scaled) {
  if (scaled != scaled) return 0;  // NaN: the int8 tier has no poison contract
  if (scaled >= 127.0F) return 127;
  if (scaled <= -127.0F) return -127;
  return static_cast<std::int8_t>(std::lrintf(scaled));
}

/// Unsigned activation grid (0..255), stored through the same int8 buffer;
/// the accumulate loop reads it back as uint8.
inline std::int8_t quantize_one_unsigned(float scaled) {
  if (scaled != scaled) return 0;
  if (scaled >= 255.0F) return static_cast<std::int8_t>(std::uint8_t{255});
  if (scaled <= 0.0F) return 0;
  return static_cast<std::int8_t>(
      static_cast<std::uint8_t>(std::lrintf(scaled)));
}

}  // namespace

void Plan::run_trunk_rows(const Trunk& trunk, long lo, long hi,
                          const float* in, float* h, float* z, float* out,
                          Arena& arena, Mode mode) const {
  for (std::size_t s = 0; s < trunk.steps.size(); ++s) {
    const Step& step = trunk.steps[s];
    const bool is_head = s + 1 == trunk.steps.size();
    const float* src = (s == 0) ? in : h;
    float* dst = is_head ? out : (step.residual ? z : h);

    if (mode == Mode::kInt8) {
      // Dynamic per-row activation quantization: the scale comes from the
      // row being quantized, so there is no calibration-range mismatch and
      // no clipping regardless of the serving distribution. Rows whose
      // inputs are all non-negative (ReLU outputs, residual sums of ReLUs,
      // one-hot/probability encodings — every layer of these nets in
      // practice) use the unsigned 0..255 grid for double resolution.
      // Per-row scales depend only on that row, so results stay invariant
      // under any pool partition and the tier remains a pure function of
      // the request. (u)int8 x int8 -> int32 accumulate, then dequant.
      for (long r = lo; r < hi; ++r) {
        const float* src_row = src + r * step.in;
        float mx = 0.0F;
        bool neg = false;
        for (int c = 0; c < step.in; ++c) {
          const float v = src_row[c];
          if (v < 0.0F) neg = true;
          const float a = std::fabs(v);
          if (std::isfinite(a) && a > mx) mx = a;
        }
        const float scale = mx / (neg ? 127.0F : 255.0F);
        const float inv = scale > 0.0F ? 1.0F / scale : 0.0F;
        std::int8_t* q = arena.q8_.data() + r * max_in_width_;
        if (neg) {
          for (int c = 0; c < step.in; ++c) {
            q[c] = quantize_one(src_row[c] * inv);
          }
        } else {
          for (int c = 0; c < step.in; ++c) {
            q[c] = quantize_one_unsigned(src_row[c] * inv);
          }
        }
        std::int32_t* acc = arena.i32_.data() + r * max_out_width_;
        std::fill(acc, acc + step.out, 0);
        for (int kk = 0; kk < step.in; ++kk) {
          const std::int32_t qv =
              neg ? static_cast<std::int32_t>(q[kk])
                  : static_cast<std::int32_t>(static_cast<std::uint8_t>(q[kk]));
          if (qv == 0) continue;
          const std::int8_t* wrow =
              step.qweight.data() + static_cast<std::size_t>(kk) * step.out;
          for (int j = 0; j < step.out; ++j) acc[j] += qv * wrow[j];
        }
        float* dst_row = dst + r * step.out;
        for (int j = 0; j < step.out; ++j) {
          dst_row[j] = static_cast<float>(acc[j]) *
                       (scale * step.wscale[static_cast<std::size_t>(j)]);
        }
      }
    } else {
      // The shared blocked kernel: same code object as ops::matmul forward.
      std::fill(dst + lo * step.out, dst + hi * step.out, 0.0F);
      gemm::gemm_rows(src, step.weight.data(), dst, lo, hi, step.in, step.out,
                      step.b_finite);
    }

    const float* bias = step.bias.numel() != 0 ? step.bias.data() : nullptr;
    const float* gamma = step.has_norm ? step.gamma.data() : nullptr;
    for (long r = lo; r < hi; ++r) {
      float* dst_row = dst + r * step.out;
      epilogue_row(dst_row, step.out, bias, gamma,
                   step.has_norm ? step.beta.data() : nullptr,
                   step.has_norm ? step.mean.data() : nullptr,
                   step.has_norm ? step.inv_std.data() : nullptr, step.relu);
      if (step.residual) {
        // h = z + h, the operand order of ops::add(z, h) in ResidualMlp.
        float* h_row = h + r * step.out;
        for (int c = 0; c < step.out; ++c) h_row[c] = dst_row[c] + h_row[c];
      }
    }
  }
}

void Plan::run_rows(long lo, long hi, int n, const float* input,
                    float* metrics_out, float* hw_out, Arena& arena,
                    Mode mode) const {
  // Arena slab layout (stride n rows, in this order).
  float* base = arena.f32_.data();
  float* hw_h = base;
  float* hw_z = hw_h + static_cast<std::size_t>(n) * hwgen_.hidden_dim;
  float* logits = hw_z + static_cast<std::size_t>(n) * hwgen_.hidden_dim;
  float* cost_in = logits + static_cast<std::size_t>(n) * hw_width_;
  float* cost_h =
      cost_in + (feature_forwarding_
                     ? static_cast<std::size_t>(n) * cost_in_width_
                     : 0);
  float* cost_z = cost_h + static_cast<std::size_t>(n) * cost_.hidden_dim;

  run_trunk_rows(hwgen_, lo, hi, input, hw_h, hw_z, logits, arena, mode);

  // Per-head hard argmax of the logits -> one-hot hardware encoding. Strict
  // > scan from the head's first column: first-max-wins, matching
  // hard_max_st over each slice (and leaving the head all-zero only never —
  // some column is always selected, index `begin` when all compare false).
  for (long r = lo; r < hi; ++r) {
    const float* lg = logits + r * hw_width_;
    float* hw_row = hw_out + r * hw_width_;
    std::fill(hw_row, hw_row + hw_width_, 0.0F);
    for (const auto& [begin, end] : head_ranges_) {
      int best = begin;
      for (int c = begin + 1; c < end; ++c) {
        if (lg[c] > lg[best]) best = c;
      }
      hw_row[best] = 1.0F;
    }
  }

  // Feature forwarding: cost input = [arch | hw one-hot], the concat_cols
  // layout. Without it the cost trunk reads the arch encoding directly.
  const float* cost_src = input;
  if (feature_forwarding_) {
    for (long r = lo; r < hi; ++r) {
      float* ci = cost_in + r * cost_in_width_;
      std::memcpy(ci, input + r * arch_width_,
                  static_cast<std::size_t>(arch_width_) * sizeof(float));
      std::memcpy(ci + arch_width_, hw_out + r * hw_width_,
                  static_cast<std::size_t>(hw_width_) * sizeof(float));
    }
    cost_src = cost_in;
  }

  run_trunk_rows(cost_, lo, hi, cost_src, cost_h, cost_z, metrics_out, arena,
                 mode);

  // Output scaling: ops::mul_rowvec with the float-cast scales.
  for (long r = lo; r < hi; ++r) {
    float* m = metrics_out + r * 3;
    for (int c = 0; c < 3; ++c) m[c] *= output_scale_[static_cast<std::size_t>(c)];
  }
}

void Plan::run(const float* input, int n, float* metrics_out, float* hw_out,
               Arena& arena, Mode mode) const {
  if (n <= 0) throw std::invalid_argument("Plan::run: n <= 0");
  if (mode == Mode::kAutograd) {
    throw std::invalid_argument(
        "Plan::run: the autograd tier is served by the Evaluator, not the "
        "plan");
  }
  if (mode == Mode::kInt8 && !int8_ready_) {
    throw std::logic_error("Plan::run: int8 tier requires calibrate() first");
  }
  arena.prepare(*this, n);
  DANCE_PROFILE_SCOPE("infer.plan.run");
  // The whole schedule is row-parallel: every step (GEMM rows, epilogues,
  // argmax, concat, scaling) touches only its own rows of the arena slabs,
  // so one pool pass covers all layers and a row's activations stay hot in
  // cache from first GEMM to final scale. Bit-identity to serial execution
  // follows from per-row independence (the pool's static-partition
  // contract).
  util::parallel_for(
      0, n,
      [&](long lo, long hi) {
        run_rows(lo, hi, n, input, metrics_out, hw_out, arena, mode);
      },
      /*grain=*/1);
}

// ---------------------------------------------------------------------------
// int8 calibration

void Plan::calibrate(const std::vector<std::vector<float>>& rows) {
  if (rows.empty()) {
    throw std::invalid_argument("Plan::calibrate: empty calibration set");
  }
  for (const auto& r : rows) {
    if (static_cast<int>(r.size()) != arch_width_) {
      throw std::invalid_argument(
          "Plan::calibrate: calibration row width != arch_width");
    }
  }
  DANCE_PROFILE_SCOPE("infer.plan.calibrate");

  // Symmetric per-output-column weight quantization. Activation scales are
  // not baked here: the executor derives them per row at run time (dynamic
  // quantization), so serving inputs outside the calibration range cannot
  // clip. Everything in this pass is deterministic — no RNG — so a
  // calibrated plan stays a pure function of its input (the serve-cache
  // prerequisite).
  auto quantize_trunk = [](Trunk& trunk) {
    for (Step& step : trunk.steps) {
      const auto in = static_cast<std::size_t>(step.in);
      const auto out = static_cast<std::size_t>(step.out);
      step.wscale.assign(out, 0.0F);
      const float* w = step.weight.data();
      for (std::size_t j = 0; j < out; ++j) {
        float m = 0.0F;
        for (std::size_t kk = 0; kk < in; ++kk) {
          m = std::max(m, std::fabs(w[kk * out + j]));
        }
        step.wscale[j] = m / 127.0F;
      }
      step.qweight.assign(in * out, 0);
      for (std::size_t kk = 0; kk < in; ++kk) {
        for (std::size_t j = 0; j < out; ++j) {
          const float ws = step.wscale[j];
          step.qweight[kk * out + j] =
              ws > 0.0F ? quantize_one(w[kk * out + j] / ws) : std::int8_t{0};
        }
      }
    }
  };
  quantize_trunk(hwgen_);
  quantize_trunk(cost_);
  int8_ready_ = true;

  // Self-check: run the calibration rows through both tiers (serially) and
  // record the tier's empirical quality — worst metric error as a fraction
  // of each column's dynamic range (over rows where both tiers decoded the
  // same hardware config) and the config agreement rate. Serving code and
  // the benches surface these via calibration_error / calibration_agreement.
  const int n = static_cast<int>(rows.size());
  Arena arena;
  arena.prepare(*this, n);
  float* input = arena.stage_input(n, arch_width_);
  for (int i = 0; i < n; ++i) {
    std::memcpy(input + static_cast<std::size_t>(i) * arch_width_,
                rows[static_cast<std::size_t>(i)].data(),
                static_cast<std::size_t>(arch_width_) * sizeof(float));
  }
  const auto nn = static_cast<std::size_t>(n);
  const auto hw_w = static_cast<std::size_t>(hw_width_);
  std::vector<float> mf(nn * 3);
  std::vector<float> mq(nn * 3);
  std::vector<float> hf(nn * hw_w);
  std::vector<float> hq(nn * hw_w);
  run_rows(0, n, n, input, mf.data(), hf.data(), arena, Mode::kFused);
  run_rows(0, n, n, input, mq.data(), hq.data(), arena, Mode::kInt8);
  std::array<float, 3> col_scale{};
  for (std::size_t r = 0; r < nn; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      col_scale[c] = std::max(col_scale[c], std::fabs(mf[r * 3 + c]));
    }
  }
  int agree = 0;
  float worst = 0.0F;
  for (std::size_t r = 0; r < nn; ++r) {
    if (std::memcmp(hf.data() + r * hw_w, hq.data() + r * hw_w,
                    hw_w * sizeof(float)) != 0) {
      continue;
    }
    ++agree;
    for (std::size_t c = 0; c < 3; ++c) {
      const float err = std::fabs(mq[r * 3 + c] - mf[r * 3 + c]);
      worst = std::max(worst,
                       col_scale[c] > 0.0F ? err / col_scale[c] : err);
    }
  }
  calib_error_ = worst;
  calib_agreement_ = static_cast<float>(agree) / static_cast<float>(n);
  obs::Registry::global().counter("infer.plan.calibrations").inc();
}

}  // namespace dance::infer
