#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "evalnet/frozen.h"

namespace dance::evalnet {
class Evaluator;
}

namespace dance::infer {

/// Which implementation answers a surrogate cost query.
///   kAutograd  walk the generic nn::Module graph (the training machinery)
///   kFused     frozen plan, fp32 fused kernels — bit-identical to autograd
///   kInt8      frozen plan, int8 weights/activations — approximate, fast
enum class Mode { kAutograd, kFused, kInt8 };

[[nodiscard]] const char* to_string(Mode mode);
/// Parses "autograd" / "fused" / "int8" (exact, lowercase). Returns false on
/// anything else and leaves `out` untouched.
[[nodiscard]] bool parse_mode(const std::string& text, Mode& out);
/// The DANCE_INFER environment knob, default autograd (the historical
/// behavior); unrecognized values degrade to the default, matching the
/// util::env convention. The read is recorded in the obs registry.
[[nodiscard]] Mode mode_from_env();

class Plan;

/// Per-caller scratch for plan execution: every intermediate activation the
/// schedule touches, laid out as [rows, width] slabs in one allocation per
/// dtype. Grows monotonically to the largest batch seen and is then reused,
/// so steady-state execution performs zero heap allocation.
///
/// Threading: one Arena serves all pool lanes of a single Plan::run call
/// (lanes write disjoint row ranges). Distinct concurrent run calls need
/// distinct Arenas; the Plan itself is immutable after compile/quantize and
/// may be shared freely.
class Arena {
 public:
  Arena() = default;

  /// Resize for `rows` rows of `plan`'s schedule (no-op when already big
  /// enough).
  void prepare(const Plan& plan, int rows);

  /// Staging slab for stacking request rows into the [n, width] input the
  /// plan consumes, so callers can batch without a per-batch Tensor.
  [[nodiscard]] float* stage_input(int rows, int width);

  [[nodiscard]] std::size_t bytes() const {
    return f32_.capacity() * sizeof(float) + input_.capacity() * sizeof(float) +
           q8_.capacity() + i32_.capacity() * sizeof(std::int32_t);
  }

 private:
  friend class Plan;
  std::vector<float> f32_;
  std::vector<float> input_;
  std::vector<std::int8_t> q8_;
  std::vector<std::int32_t> i32_;
  int rows_ = 0;
};

/// A frozen-inference plan: an evalnet::Evaluator checkpoint flattened into
/// a linear schedule of fused Linear[+BatchNorm][+ReLU][+residual] steps,
/// hard-argmax head decoding and output scaling, executed over an Arena with
/// the shared blocked GEMM (tensor/gemm.h).
///
/// Contracts:
///   * run(Mode::kFused) is bit-identical to
///     Evaluator::forward_deterministic / forward_batch on the same
///     checkpoint (property-tested; see docs/inference.md for why each step
///     preserves bits).
///   * run(Mode::kInt8) requires a prior calibrate() and trades bit-exactness
///     for speed; its error is exercised against the PBT |log10| bands and
///     its cost-ordering agreement rate is reported by the serve benches.
///   * A Plan is an immutable snapshot: training or loading a checkpoint
///     after compile() does not change it — recompile to pick up new
///     weights.
class Plan {
 public:
  /// Compiles a frozen snapshot (Evaluator::freeze()). Throws
  /// std::invalid_argument when the snapshot is structurally inconsistent
  /// (head ranges vs trunk widths, feature forwarding vs cost input width).
  [[nodiscard]] static Plan compile(const evalnet::FrozenEvaluator& frozen);
  /// Convenience: freeze + compile. Requires eval mode (Evaluator::freeze).
  [[nodiscard]] static Plan compile(evalnet::Evaluator& evaluator);

  /// Executes the plan for `n` stacked rows at `input` ([n, arch_width]).
  /// Writes predicted metrics to `metrics_out` ([n, 3], latency/energy/area
  /// order) and the one-hot hardware encoding to `hw_out` ([n, hw_width]).
  /// `mode` must be kFused or kInt8 (kInt8 additionally requires a prior
  /// calibrate()); pass Mode::kAutograd and it throws — that tier is served
  /// by the Evaluator itself.
  void run(const float* input, int n, float* metrics_out, float* hw_out,
           Arena& arena, Mode mode = Mode::kFused) const;

  /// Calibrates the int8 tier: quantizes every Linear's weights to
  /// per-output-channel symmetric int8, then runs `rows` through both the
  /// fp32 and int8 paths to record the tier's empirical error and
  /// hardware-config agreement rate (see calibration_error /
  /// calibration_agreement). Activation scales are NOT baked in — the
  /// executor derives them per row at run time (dynamic quantization), so
  /// serving inputs outside the calibration range cannot clip. Deterministic
  /// (no RNG), so a calibrated plan stays a pure function of its input — the
  /// serve-cache prerequisite. Throws std::invalid_argument on an empty
  /// calibration set or width-mismatched rows.
  void calibrate(const std::vector<std::vector<float>>& rows);
  [[nodiscard]] bool int8_ready() const { return int8_ready_; }
  /// Worst |int8 - fp32| metric error over the calibration rows, as a
  /// fraction of each metric column's dynamic range (measured on rows where
  /// both tiers decoded the same hardware config). 0 before calibrate().
  [[nodiscard]] float calibration_error() const { return calib_error_; }
  /// Fraction of calibration rows whose int8 hardware one-hot bit-matches
  /// the fp32 decode. 1 before calibrate().
  [[nodiscard]] float calibration_agreement() const {
    return calib_agreement_;
  }

  [[nodiscard]] int arch_width() const { return arch_width_; }
  [[nodiscard]] int hw_width() const { return hw_width_; }
  [[nodiscard]] const std::array<std::pair<int, int>, 4>& head_ranges() const {
    return head_ranges_;
  }
  /// Fused steps in the schedule (Linear-rooted steps across both trunks).
  [[nodiscard]] std::size_t num_steps() const;
  /// Scratch floats one row of the schedule needs (arena sizing).
  [[nodiscard]] std::size_t floats_per_row() const;

 private:
  struct Step {
    // Fused Linear [+ BatchNorm] [+ ReLU] [+ residual] parameters. Weight
    // and bias alias the frozen snapshot copies made at compile time.
    tensor::Tensor weight;  ///< [in, out]
    tensor::Tensor bias;    ///< [out] or empty
    bool b_finite = true;   ///< all_finite(weight): enables the GEMM zero-skip
    tensor::Tensor gamma, beta, mean, inv_std;
    bool has_norm = false;
    bool relu = false;
    bool residual = false;
    int in = 0;
    int out = 0;
    // int8 tier (filled by calibrate()). Activations carry no static scale:
    // the executor quantizes them dynamically per row (see run_trunk_rows).
    std::vector<std::int8_t> qweight;  ///< [in, out], per-column symmetric
    std::vector<float> wscale;         ///< [out], dequant scale per column
  };
  struct Trunk {
    std::vector<Step> steps;
    int in_dim = 0;
    int hidden_dim = 0;
    int out_dim = 0;
  };

  static Trunk compile_trunk(const nn::FrozenMlp& mlp);

  /// Executes rows [lo, hi) of the whole schedule on the calling lane.
  /// `n` is the full batch (arena slab stride).
  void run_rows(long lo, long hi, int n, const float* input,
                float* metrics_out, float* hw_out, Arena& arena,
                Mode mode) const;
  void run_trunk_rows(const Trunk& trunk, long lo, long hi, const float* in,
                      float* h, float* z, float* out, Arena& arena,
                      Mode mode) const;

  Trunk hwgen_;
  Trunk cost_;
  std::array<std::pair<int, int>, 4> head_ranges_{};
  std::array<float, 3> output_scale_{1.0F, 1.0F, 1.0F};
  bool feature_forwarding_ = true;
  int arch_width_ = 0;
  int hw_width_ = 0;
  int cost_in_width_ = 0;
  int max_in_width_ = 0;   ///< widest Linear input (int8 staging)
  int max_out_width_ = 0;  ///< widest Linear output (int8 accumulators)
  bool int8_ready_ = false;
  float calib_error_ = 0.0F;
  float calib_agreement_ = 1.0F;

  friend class Arena;  ///< arena sizing reads the width fields
};

}  // namespace dance::infer
