#pragma once

#include "runtime/thread_pool.h"

namespace dance::util {

/// Statically partitioned parallel loop over [begin, end) on the process-wide
/// runtime::ThreadPool. The callable receives a sub-range [lo, hi). Ranges
/// smaller than `grain` run inline so tiny tensors don't pay scheduling
/// overhead; larger ranges are cut into at most one chunk per pool lane.
///
/// This is a thin template wrapper over runtime::ThreadPool::parallel_for:
/// no std::function allocation, no per-call thread spawn. See
/// docs/runtime.md for the determinism contract.
template <typename Body>
inline void parallel_for(long begin, long end, const Body& body,
                         long grain = 1024) {
  runtime::global_pool().parallel_for(begin, end, grain, body);
}

}  // namespace dance::util
