#pragma once

#include <algorithm>
#include <functional>
#include <thread>
#include <vector>

namespace dance::util {

/// Statically partitioned parallel loop over [begin, end). The callable
/// receives a sub-range [lo, hi). Falls back to inline execution for small
/// ranges (< grain) so tiny tensors don't pay thread overhead.
inline void parallel_for(long begin, long end,
                         const std::function<void(long, long)>& body,
                         long grain = 1) {
  const long n = end - begin;
  if (n <= 0) return;
  const unsigned hw = std::max(1U, std::thread::hardware_concurrency());
  const long max_threads = std::min<long>(hw, (n + grain - 1) / grain);
  if (max_threads <= 1) {
    body(begin, end);
    return;
  }
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(max_threads));
  const long chunk = (n + max_threads - 1) / max_threads;
  for (long t = 0; t < max_threads; ++t) {
    const long lo = begin + t * chunk;
    const long hi = std::min(end, lo + chunk);
    if (lo >= hi) break;
    workers.emplace_back([&body, lo, hi] { body(lo, hi); });
  }
  for (auto& w : workers) w.join();
}

}  // namespace dance::util
