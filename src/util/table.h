#pragma once

#include <string>
#include <vector>

namespace dance::util {

/// Fixed-width ASCII table. One formatter serves every report in the repo:
/// the paper-style benchmark tables (markdown style), the runtime profiler's
/// per-op report and the serve stats block (plain style), so column
/// alignment and padding are identical by construction.
class Table {
 public:
  enum class Align { kLeft, kRight };

  /// Rendering options. The default reproduces the historical markdown-ish
  /// look (`| a | b |` with a dash rule); plain() is the report style used
  /// by profiler_report()/stats_report(): space-separated columns with a
  /// dash rule under the header and no pipes.
  struct Style {
    bool pipes = true;   ///< "| a | b |" vs "a  b"
    bool rule = true;    ///< dash rule under the header
    int gutter = 2;      ///< spaces between plain-style columns

    [[nodiscard]] static Style plain() {
      return Style{.pipes = false, .rule = true, .gutter = 2};
    }
  };

  explicit Table(std::vector<std::string> header);

  /// Per-column alignment; missing trailing entries default to kLeft.
  /// The header cell is aligned like its column.
  void set_align(std::vector<Align> align);

  void add_row(std::vector<std::string> row);

  [[nodiscard]] bool empty() const { return rows_.empty(); }

  /// Render with column-aligned padding (markdown style).
  [[nodiscard]] std::string to_string() const { return to_string(Style{}); }
  [[nodiscard]] std::string to_string(const Style& style) const;

  /// Format a double with fixed precision (helper for row building).
  static std::string fmt(double v, int precision = 2);

 private:
  std::vector<std::string> header_;
  std::vector<Align> align_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dance::util
