#pragma once

#include <string>
#include <vector>

namespace dance::util {

/// Minimal fixed-width ASCII table used by the benchmark harnesses to print
/// paper-style result tables.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Render with column-aligned padding and a header separator.
  [[nodiscard]] std::string to_string() const;

  /// Format a double with fixed precision (helper for row building).
  static std::string fmt(double v, int precision = 2);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dance::util
