#include "util/env.h"

#include <cctype>
#include <cstdlib>
#include <cstring>

#include "obs/registry.h"

namespace dance::util {

namespace {

/// Raw lookup: nullptr when unset, the value otherwise (may be empty).
const char* raw(const char* name) { return std::getenv(name); }

void record(const char* name, const std::string& effective, bool from_env) {
  obs::Registry::global().record_env(name, effective, from_env);
}

bool iequals(const char* s, const char* lower) {
  for (; *s != '\0' && *lower != '\0'; ++s, ++lower) {
    if (std::tolower(static_cast<unsigned char>(*s)) != *lower) return false;
  }
  return *s == '\0' && *lower == '\0';
}

}  // namespace

std::string env_string(const char* name, const std::string& fallback) {
  const char* env = raw(name);
  const bool from_env = env != nullptr && *env != '\0';
  const std::string value = from_env ? env : fallback;
  record(name, value, from_env);
  return value;
}

bool env_bool(const char* name, bool fallback) {
  const char* env = raw(name);
  bool value = fallback;
  bool from_env = false;
  if (env != nullptr && *env != '\0') {
    from_env = true;
    value = !(std::strcmp(env, "0") == 0 || iequals(env, "false") ||
              iequals(env, "off") || iequals(env, "no"));
  }
  record(name, value ? "1" : "0", from_env);
  return value;
}

long env_long(const char* name, long fallback, long min_value,
              long max_value) {
  const char* env = raw(name);
  long value = fallback;
  bool from_env = false;
  if (env != nullptr && *env != '\0') {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v >= min_value && v <= max_value) {
      value = v;
      from_env = true;
    }
  }
  record(name, std::to_string(value), from_env);
  return value;
}

int env_int(const char* name, int fallback, int min_value, int max_value) {
  return static_cast<int>(env_long(name, fallback, min_value, max_value));
}

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* env = raw(name);
  std::uint64_t value = fallback;
  bool from_env = false;
  if (env != nullptr && *env != '\0') {
    char* end = nullptr;
    const std::uint64_t v = std::strtoull(env, &end, 0);
    if (end != env && *end == '\0') {
      value = v;
      from_env = true;
    }
  }
  record(name, std::to_string(value), from_env);
  return value;
}

double env_double(const char* name, double fallback, double min_value,
                  double max_value) {
  const char* env = raw(name);
  double value = fallback;
  bool from_env = false;
  if (env != nullptr && *env != '\0') {
    char* end = nullptr;
    const double v = std::strtod(env, &end);
    if (end != env && *end == '\0' && v >= min_value && v <= max_value) {
      value = v;
      from_env = true;
    }
  }
  record(name, std::to_string(value), from_env);
  return value;
}

}  // namespace dance::util
