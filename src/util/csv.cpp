#include "util/csv.h"

#include <stdexcept>

namespace dance::util {

namespace {
std::string join(const std::vector<std::string>& cells) {
  std::string line;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) line += ',';
    line += cells[i];
  }
  return line;
}
}  // namespace

CsvWriter::CsvWriter(const std::string& path, std::vector<std::string> header)
    : out_(path), columns_(header.size()) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
  out_ << join(header) << '\n';
}

void CsvWriter::add_row(const std::vector<std::string>& row) {
  if (row.size() != columns_) {
    throw std::invalid_argument("CsvWriter::add_row: column count mismatch");
  }
  out_ << join(row) << '\n';
}

void CsvWriter::flush() { out_.flush(); }

}  // namespace dance::util
