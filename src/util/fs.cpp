#include "util/fs.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>

namespace dance::util {

void atomic_write_file(const std::string& path, std::string_view bytes) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    throw std::runtime_error("atomic_write_file: cannot open " + tmp + ": " +
                             std::strerror(errno));
  }
  const std::size_t wrote = std::fwrite(bytes.data(), 1, bytes.size(), f);
  const bool flushed = std::fclose(f) == 0;
  if (wrote != bytes.size() || !flushed) {
    std::remove(tmp.c_str());
    throw std::runtime_error("atomic_write_file: short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("atomic_write_file: cannot rename " + tmp +
                             " to " + path + ": " + std::strerror(errno));
  }
}

std::string read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    throw std::runtime_error("read_file: cannot open " + path + ": " +
                             std::strerror(errno));
  }
  std::string bytes;
  char chunk[1 << 16];
  std::size_t n;
  while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    bytes.append(chunk, n);
  }
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!ok) throw std::runtime_error("read_file: read error on " + path);
  return bytes;
}

}  // namespace dance::util
