#pragma once

#include <cmath>
#include <cstdint>
#include <random>
#include <stdexcept>
#include <vector>

namespace dance::util {

/// Deterministic random source used across the library.
///
/// Every stochastic component (data generation, weight init, Gumbel noise,
/// path sampling) takes an explicit `Rng&` so experiments are reproducible
/// from a single seed.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed) : engine_(seed) {}

  /// Uniform float in [lo, hi).
  float uniform(float lo = 0.0F, float hi = 1.0F) {
    return std::uniform_real_distribution<float>(lo, hi)(engine_);
  }

  /// Standard normal sample scaled to `mean`/`stddev`.
  float normal(float mean = 0.0F, float stddev = 1.0F) {
    return std::normal_distribution<float>(mean, stddev)(engine_);
  }

  /// Uniform integer in [lo, hi] (inclusive).
  int randint(int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(engine_);
  }

  /// Gumbel(0,1) sample, used by Gumbel-softmax.
  float gumbel() {
    // -log(-log(u)) with u clamped away from 0/1 for numerical safety.
    float u = std::uniform_real_distribution<float>(1e-10F, 1.0F - 1e-10F)(engine_);
    return -std::log(-std::log(u));
  }

  /// Sample an index from an (unnormalized) non-negative weight vector.
  /// Degenerate inputs are handled explicitly instead of handing
  /// std::discrete_distribution input it leaves implementation-defined: an
  /// empty vector throws, and an all-zero vector falls back to a uniform
  /// draw over the indices.
  int categorical(const std::vector<float>& weights) {
    if (weights.empty()) {
      throw std::invalid_argument("Rng::categorical: empty weight vector");
    }
    bool any_positive = false;
    for (float w : weights) {
      if (w > 0.0F) {
        any_positive = true;
        break;
      }
    }
    if (!any_positive) {
      return randint(0, static_cast<int>(weights.size()) - 1);
    }
    std::discrete_distribution<int> dist(weights.begin(), weights.end());
    return dist(engine_);
  }

  /// Fisher-Yates shuffle of an index permutation [0, n).
  std::vector<int> permutation(int n) {
    std::vector<int> idx(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) idx[static_cast<std::size_t>(i)] = i;
    for (int i = n - 1; i > 0; --i) {
      std::swap(idx[static_cast<std::size_t>(i)],
                idx[static_cast<std::size_t>(randint(0, i))]);
    }
    return idx;
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace dance::util
