#pragma once

#include <string>
#include <string_view>

namespace dance::util {

/// Atomically replaces `path` with `bytes`: the content is written to a
/// sibling temp file (`<path>.tmp`) and renamed over the target, so a crash
/// mid-write leaves either the old file or the new one — never a torn
/// prefix. This is the single save idiom shared by the cluster cache
/// snapshots, nn checkpoint saves and the registry MANIFEST; every writer
/// that stages its bytes in memory goes through here.
///
/// Throws std::runtime_error (with the failing path and strerror text) on
/// open/short-write/rename failure; the temp file is removed on the error
/// paths that created it.
void atomic_write_file(const std::string& path, std::string_view bytes);

/// Reads a whole file into a string. Throws std::runtime_error when the
/// file cannot be opened or a read error occurs (a missing file is an
/// error — callers that treat absence as "no data" should stat first).
[[nodiscard]] std::string read_file(const std::string& path);

}  // namespace dance::util
