#include "util/table.h"

#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace dance::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("Table::add_row: column count mismatch");
  }
  rows_.push_back(std::move(row));
}

std::string Table::fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << "| " << std::left << std::setw(static_cast<int>(width[c])) << row[c]
         << ' ';
    }
    os << "|\n";
  };
  emit(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << "|" << std::string(width[c] + 2, '-');
  }
  os << "|\n";
  for (const auto& row : rows_) emit(row);
  return os.str();
}

}  // namespace dance::util
