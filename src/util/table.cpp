#include "util/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace dance::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::set_align(std::vector<Align> align) {
  if (align.size() > header_.size()) {
    throw std::invalid_argument("Table::set_align: more entries than columns");
  }
  align_ = std::move(align);
}

void Table::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("Table::add_row: column count mismatch");
  }
  rows_.push_back(std::move(row));
}

std::string Table::fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::to_string(const Style& style) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  const auto align_of = [this](std::size_t c) {
    return c < align_.size() ? align_[c] : Align::kLeft;
  };

  std::ostringstream os;
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (style.pipes) {
        os << "| ";
      } else if (c != 0) {
        os << std::string(static_cast<std::size_t>(std::max(1, style.gutter)),
                          ' ');
      }
      os << (align_of(c) == Align::kRight ? std::right : std::left)
         << std::setw(static_cast<int>(width[c])) << row[c];
      if (style.pipes) os << ' ';
    }
    if (style.pipes) os << '|';
    os << '\n';
  };

  emit(header_);
  if (style.rule) {
    if (style.pipes) {
      for (std::size_t c = 0; c < header_.size(); ++c) {
        os << "|" << std::string(width[c] + 2, '-');
      }
      os << "|\n";
    } else {
      std::size_t total = 0;
      for (std::size_t c = 0; c < header_.size(); ++c) {
        total += width[c];
        if (c != 0) total += static_cast<std::size_t>(std::max(1, style.gutter));
      }
      os << std::string(total, '-') << '\n';
    }
  }
  for (const auto& row : rows_) emit(row);
  return os.str();
}

}  // namespace dance::util
