#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dance::util {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double acc = 0.0;
  for (double x : xs) acc += x;
  return acc / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

double mean_relative_error(std::span<const double> pred,
                           std::span<const double> truth, double eps) {
  if (pred.size() != truth.size()) {
    throw std::invalid_argument("mean_relative_error: size mismatch");
  }
  double acc = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    if (std::abs(truth[i]) < eps) continue;
    acc += std::abs(1.0 - pred[i] / truth[i]);
    ++n;
  }
  return n == 0 ? 0.0 : acc / static_cast<double>(n);
}

double regression_accuracy_pct(std::span<const double> pred,
                               std::span<const double> truth) {
  const double err = mean_relative_error(pred, truth);
  return std::clamp(100.0 * (1.0 - err), 0.0, 100.0);
}

double classification_accuracy_pct(std::span<const int> pred,
                                   std::span<const int> truth) {
  if (pred.size() != truth.size()) {
    throw std::invalid_argument("classification_accuracy_pct: size mismatch");
  }
  if (pred.empty()) return 0.0;
  std::size_t hit = 0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    if (pred[i] == truth[i]) ++hit;
  }
  return 100.0 * static_cast<double>(hit) / static_cast<double>(pred.size());
}

}  // namespace dance::util
