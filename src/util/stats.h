#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <span>
#include <vector>

namespace dance::util {

/// Arithmetic mean; returns 0 for an empty span.
double mean(std::span<const double> xs);

/// p-th percentile (p in [0, 100], clamped) with linear interpolation
/// between closest ranks (the R-7/NumPy default): rank = p/100 * (n-1).
/// The input need not be sorted; 0 for an empty span. Non-finite samples
/// (NaN propagated from a poisoned pipeline, ±inf from an overflowed timer
/// delta) are dropped before ranking: NaN compares false against
/// everything, so handing it to std::sort is undefined ordering and in
/// practice made the profiler / serve p50/p95 depend on the incoming sample
/// order. The percentile of the finite subset is returned instead (0 when
/// nothing finite remains). Header-only so dance_runtime (which sits below
/// dance_util in the link order) can use it for the profiler's p50/p95
/// columns without a dependency cycle.
inline double percentile(std::span<const double> xs, double p) {
  p = std::clamp(p, 0.0, 100.0);
  std::vector<double> sorted;
  sorted.reserve(xs.size());
  for (const double x : xs) {
    if (std::isfinite(x)) sorted.push_back(x);
  }
  if (sorted.empty()) return 0.0;
  std::sort(sorted.begin(), sorted.end());
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

/// Sample standard deviation (n-1 denominator); 0 for n < 2.
double stddev(std::span<const double> xs);

/// Mean absolute relative error mean(|1 - pred/truth|).
/// Entries with |truth| < eps are skipped.
double mean_relative_error(std::span<const double> pred,
                           std::span<const double> truth,
                           double eps = 1e-12);

/// Paper-style "accuracy" for a regression head:
/// 100 * (1 - mean_relative_error), clamped to [0, 100].
double regression_accuracy_pct(std::span<const double> pred,
                               std::span<const double> truth);

/// Classification accuracy in percent.
double classification_accuracy_pct(std::span<const int> pred,
                                   std::span<const int> truth);

}  // namespace dance::util
