#pragma once

#include <cstddef>
#include <span>

namespace dance::util {

/// Arithmetic mean; returns 0 for an empty span.
double mean(std::span<const double> xs);

/// Sample standard deviation (n-1 denominator); 0 for n < 2.
double stddev(std::span<const double> xs);

/// Mean absolute relative error mean(|1 - pred/truth|).
/// Entries with |truth| < eps are skipped.
double mean_relative_error(std::span<const double> pred,
                           std::span<const double> truth,
                           double eps = 1e-12);

/// Paper-style "accuracy" for a regression head:
/// 100 * (1 - mean_relative_error), clamped to [0, 100].
double regression_accuracy_pct(std::span<const double> pred,
                               std::span<const double> truth);

/// Classification accuracy in percent.
double classification_accuracy_pct(std::span<const int> pred,
                                   std::span<const int> truth);

}  // namespace dance::util
