#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace dance::util {

/// Append-style CSV writer used by benches to dump figure data
/// (e.g. the Fig. 5 error-EDAP scatter) for external plotting.
class CsvWriter {
 public:
  CsvWriter(const std::string& path, std::vector<std::string> header);

  void add_row(const std::vector<std::string>& row);

  /// Flush happens on destruction as well; explicit for tests.
  void flush();

 private:
  std::ofstream out_;
  std::size_t columns_;
};

}  // namespace dance::util
