#pragma once

#include <cstdint>
#include <limits>
#include <string>

namespace dance::util {

/// Typed readers for the DANCE_* environment knobs.
///
/// Shared semantics:
///   * unset or empty variable            -> fallback
///   * unparseable value                  -> fallback
///   * parsed value outside [min, max]    -> fallback (never clamped, so a
///     typo'd knob degrades to the compiled-in default instead of a
///     surprising boundary value)
/// The fallback itself is returned verbatim even when it lies outside the
/// given range (callers use that for "unset means compute a dynamic
/// default", e.g. DANCE_NUM_THREADS -> hardware_concurrency()).
///
/// Every read records the knob's name, effective value and source
/// (environment vs default) in the obs registry, so obs::export_json()
/// documents the configuration a run actually used. Values are re-read on
/// every call; nothing is cached here.
[[nodiscard]] std::string env_string(const char* name,
                                     const std::string& fallback);

/// "0", "false", "off", "no" (case-insensitive) -> false; any other
/// non-empty value -> true.
[[nodiscard]] bool env_bool(const char* name, bool fallback);

[[nodiscard]] long env_long(const char* name, long fallback,
                            long min_value = std::numeric_limits<long>::min(),
                            long max_value = std::numeric_limits<long>::max());

[[nodiscard]] int env_int(const char* name, int fallback,
                          int min_value = std::numeric_limits<int>::min(),
                          int max_value = std::numeric_limits<int>::max());

/// Decimal or 0x-prefixed hex (strtoull base 0); used by the PBT seed knob.
[[nodiscard]] std::uint64_t env_u64(const char* name, std::uint64_t fallback);

[[nodiscard]] double env_double(
    const char* name, double fallback,
    double min_value = std::numeric_limits<double>::lowest(),
    double max_value = std::numeric_limits<double>::max());

}  // namespace dance::util
