#pragma once

#include <cstddef>

namespace dance::tensor::gemm {

/// Blocked, cache-tiled single-precision GEMM shared by the autograd matmul
/// forward (tensor::ops::matmul) and the frozen-inference plan executor
/// (dance::infer). Keeping one kernel is what makes the fused inference path
/// bit-identical to the autograd path by construction.
///
/// Semantics: C += A * B for row-major A [n, k], B [k, m], C [n, m]. The
/// caller zero-initializes C (or passes a partial sum to accumulate into).
///
/// Bit-identity contract:
///   * Each C element accumulates its k products in ascending-kk order, the
///     same order as the textbook i/kk/j triple loop, so the blocked kernel
///     is bit-identical to the naive one. Blocking only re-tiles the i and
///     kk loops for cache locality; it never reorders the additions that
///     land in one element.
///   * Rows of C are computed independently and the kernel parallelizes over
///     row ranges on runtime::global_pool(), so results are bit-identical to
///     a serial run at any thread count (the pool's static-partitioning
///     contract, docs/runtime.md).
///   * Zero-skip: a_ik == 0 rows of the inner loop are skipped only while B
///     is finite everywhere — 0 * NaN and 0 * inf must poison C, not vanish
///     (the PR 5 matmul regression). `b_finite` is the caller-supplied
///     answer to all_finite(B); pass it when already known, or use the
///     two-argument overload which scans B itself.
void gemm(const float* a, const float* b, float* c, int n, int k, int m,
          bool b_finite);
void gemm(const float* a, const float* b, float* c, int n, int k, int m);

/// True iff every element is finite (no NaN / ±inf).
[[nodiscard]] bool all_finite(const float* p, std::size_t count);

/// Serial single-range variant: computes rows [row_lo, row_hi) of C on the
/// calling thread with the same blocking and accumulation order as `gemm`.
/// The plan executor uses it to nest GEMMs inside an outer pool job without
/// re-entering the pool per layer.
void gemm_rows(const float* a, const float* b, float* c, long row_lo,
               long row_hi, int k, int m, bool b_finite);

}  // namespace dance::tensor::gemm
