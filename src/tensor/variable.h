#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "tensor/tensor.h"

namespace dance::tensor {

/// One node of the reverse-mode autograd tape.
///
/// `backward` consumes this node's accumulated `grad` and adds the
/// appropriate contributions into each parent's `grad`. Gradients are only
/// materialized for nodes with `requires_grad` set (the flag propagates
/// through ops).
struct Node {
  Tensor value;
  Tensor grad;
  bool requires_grad = false;
  std::vector<std::shared_ptr<Node>> parents;
  std::function<void(Node&)> backward;

  void ensure_grad() {
    if (grad.numel() == 0) grad = Tensor::zeros(value.shape());
  }
};

/// Lightweight handle to a `Node`; copying a Variable aliases the node.
class Variable {
 public:
  Variable() = default;

  /// Wrap a constant (no gradient) or a leaf parameter (requires_grad).
  explicit Variable(Tensor value, bool requires_grad = false);

  [[nodiscard]] bool defined() const { return node_ != nullptr; }
  [[nodiscard]] const Tensor& value() const { return node_->value; }
  Tensor& value() { return node_->value; }
  [[nodiscard]] const Tensor& grad() const { return node_->grad; }
  [[nodiscard]] bool requires_grad() const { return node_ && node_->requires_grad; }

  [[nodiscard]] const std::vector<int>& shape() const { return node_->value.shape(); }

  std::shared_ptr<Node>& node() { return node_; }
  [[nodiscard]] const std::shared_ptr<Node>& node() const { return node_; }

  /// Run reverse-mode accumulation from this (scalar) variable.
  /// Seeds d(this)/d(this) = 1 and walks the tape in reverse topological
  /// order. Throws if this variable is not a scalar. (Const because a
  /// Variable is a shared handle; the underlying node's grad buffers are
  /// mutated.)
  void backward() const;

  /// Zero this node's gradient buffer (if allocated).
  void zero_grad() const;

  static Variable from_node(std::shared_ptr<Node> node);

 private:
  std::shared_ptr<Node> node_;
};

}  // namespace dance::tensor
