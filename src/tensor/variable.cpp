#include "tensor/variable.h"

#include <stdexcept>
#include <unordered_set>

namespace dance::tensor {

Variable::Variable(Tensor value, bool requires_grad) : node_(std::make_shared<Node>()) {
  node_->value = std::move(value);
  node_->requires_grad = requires_grad;
}

Variable Variable::from_node(std::shared_ptr<Node> node) {
  Variable v;
  v.node_ = std::move(node);
  return v;
}

void Variable::zero_grad() const {
  if (node_ && node_->grad.numel() != 0) node_->grad.fill(0.0F);
}

namespace {
void topo_sort(const std::shared_ptr<Node>& root,
               std::vector<std::shared_ptr<Node>>& order) {
  // Iterative post-order DFS; the tape can be thousands of nodes deep for a
  // long training graph, so recursion is avoided.
  std::unordered_set<const Node*> visited;
  struct Frame {
    std::shared_ptr<Node> node;
    std::size_t next_parent = 0;
  };
  std::vector<Frame> stack;
  stack.push_back({root});
  visited.insert(root.get());
  while (!stack.empty()) {
    Frame& top = stack.back();
    if (top.next_parent < top.node->parents.size()) {
      auto parent = top.node->parents[top.next_parent++];
      if (parent && parent->requires_grad && !visited.contains(parent.get())) {
        visited.insert(parent.get());
        stack.push_back({std::move(parent)});
      }
    } else {
      order.push_back(top.node);
      stack.pop_back();
    }
  }
}
}  // namespace

void Variable::backward() const {
  if (!node_) throw std::logic_error("Variable::backward on empty variable");
  if (node_->value.numel() != 1) {
    throw std::logic_error("Variable::backward requires a scalar output");
  }
  std::vector<std::shared_ptr<Node>> order;
  topo_sort(node_, order);
  node_->ensure_grad();
  node_->grad[0] = 1.0F;
  // order is post-order (parents before children); traverse in reverse so the
  // output's gradient is fully accumulated before it is pushed to parents.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Node& n = **it;
    if (n.backward && n.requires_grad) {
      n.ensure_grad();
      for (auto& p : n.parents) {
        if (p && p->requires_grad) p->ensure_grad();
      }
      n.backward(n);
    }
  }
}

}  // namespace dance::tensor
